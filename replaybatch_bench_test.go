package vtrain_bench

import (
	"fmt"
	"testing"

	"vtrain/internal/comm"
	"vtrain/internal/gpu"
	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/opgraph"
	"vtrain/internal/parallel"
	"vtrain/internal/profiler"
	"vtrain/internal/taskgraph"
)

// BenchmarkReplayBatch isolates the batched replay core: one structural
// graph (Megatron 3.6B, pipeline depth 4, 16 micro-batches at operator
// fidelity), replayed for 1, 4, and 16 bound duration tables per pass. The
// ms_per_plan metric is the per-plan cost of a replay at that width — the
// drop from width 1 to 16 is the structural walk (FIFO traversal, CSR
// decoding, dependency counting) amortizing across lanes while each lane's
// float work stays constant.
func BenchmarkReplayBatch(b *testing.B) {
	m := model.Megatron3_6B()
	c := hw.PaperCluster(8)
	prof := profiler.New(gpu.NewDevice(c.Node.GPU))
	cm := comm.NewModel(c)

	// All tables bind one structure: tensor and data widths never change
	// the graph, so the batch mimics a sweep's shape group.
	base := parallel.Plan{Pipeline: 4, MicroBatch: 1, GlobalBatch: 64, GradientBuckets: 2}
	og, err := opgraph.Build(m, withWidths(base, 1, 1), c)
	if err != nil {
		b.Fatal(err)
	}
	g := taskgraph.Lower(og, prof, taskgraph.OperatorLevel)

	var tables []*taskgraph.DurationTable
	for _, t := range []int{1, 2, 4, 8} {
		for _, d := range []int{1, 2, 4, 8} {
			tables = append(tables, g.Bind(prof, cm, withWidths(base, t, d), c))
		}
	}

	for _, width := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			batch := tables[:width]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.ReplayBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			perPlan := b.Elapsed().Seconds() * 1e3 / float64(b.N) / float64(width)
			b.ReportMetric(perPlan, "ms_per_plan")
		})
	}
}

// withWidths returns base with the given tensor and data widths, keeping
// the micro-batch count fixed by scaling the global batch with d.
func withWidths(base parallel.Plan, t, d int) parallel.Plan {
	p := base
	p.Tensor, p.Data = t, d
	p.GlobalBatch = base.GlobalBatch * d
	return p
}
