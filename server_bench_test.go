package vtrain_bench

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"vtrain/internal/server"
)

// serverLoadBodies is the vtrain-server request mix: small cluster-design
// sweeps over two GPU generations. Cluster sweeps are the structural
// cache's stress case under serving — every request builds fresh
// per-candidate simulators whose report caches start cold, so a warm
// server answers repeats almost entirely from the shared structural
// cache. (Repeated one-shot simulates are absorbed by the report cache
// without touching the structural counters, so they cannot demonstrate
// concentration.)
var serverLoadBodies = []string{
	`{
  "model": {"preset": "megatron-3.6b"},
  "global_batch": 64,
  "total_tokens": 20000000000,
  "node_counts": [1],
  "offerings": ["a100-sxm-80gb"],
  "tensor_widths": [2, 4],
  "data_widths": [2, 4],
  "pipeline_depths": [1],
  "micro_batches": [1]
}`,
	`{
  "model": {"preset": "megatron-3.6b"},
  "global_batch": 64,
  "total_tokens": 20000000000,
  "node_counts": [2],
  "offerings": ["h100-sxm-80gb"],
  "tensor_widths": [2, 4],
  "data_widths": [4, 8],
  "pipeline_depths": [1],
  "micro_batches": [1]
}`,
}

// canonicalClusterPoints sorts a clusterdse NDJSON stream's point lines
// and drops the summary (whose cumulative cache counters legitimately
// grow with server age). Point order across structural shapes is
// scheduler-dependent; point bytes are not.
func canonicalClusterPoints(stream string) string {
	lines := strings.Split(strings.TrimRight(stream, "\n"), "\n")
	if n := len(lines); n > 0 && strings.Contains(lines[n-1], `"summary"`) {
		lines = lines[:n-1]
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// BenchmarkServerLoad measures the long-lived serving layer under
// concurrent mixed load: one op = one /v1/clusterdse request against a
// shared warm vtrain-server. The acceptance bar is the reason the server
// exists — after a cold warm-up pass, the steady-state structural-cache
// hit rate must be >= 90% (requests ride graphs lowered by earlier
// requests instead of re-lowering), and every warm response must be
// byte-identical to the cold baseline: shared caches are an optimization,
// never a semantic.
func BenchmarkServerLoad(b *testing.B) {
	srv := server.New(server.Config{MaxInflightSweeps: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body string) string {
		resp, err := http.Post(ts.URL+"/v1/clusterdse", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		return string(data)
	}

	// Cold pass: pays every lowering once and pins the baseline bytes.
	baseline := make(map[string]string, len(serverLoadBodies))
	for _, body := range serverLoadBodies {
		baseline[body] = canonicalClusterPoints(post(body))
	}
	cold := srv.Engine().CacheStats()

	var divergence atomic.Value
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			body := serverLoadBodies[int(next.Add(1))%len(serverLoadBodies)]
			if got := canonicalClusterPoints(post(body)); got != baseline[body] {
				divergence.Store(fmt.Sprintf("warm response diverged from cold baseline:\n--- got ---\n%s\n--- want ---\n%s", got, baseline[body]))
				return
			}
		}
	})
	b.StopTimer()
	if msg := divergence.Load(); msg != nil {
		b.Fatal(msg)
	}

	warm := srv.Engine().CacheStats()
	hits := warm.StructHits - cold.StructHits
	misses := warm.StructMisses - cold.StructMisses
	hitPct := 100 * float64(hits) / float64(max(hits+misses, 1))
	b.ReportMetric(hitPct, "warm_struct_hit_pct")
	b.ReportMetric(float64(warm.BatchReplays), "batch_replays")
	once("server-load", func() {
		fmt.Printf("\nServer load — %d warm requests, struct cache %d hits / %d misses (%.1f%% hit):\n",
			b.N, hits, misses, hitPct)
	})

	// The serving-layer acceptance bar: a warm server must answer from
	// shared structures. Any steady-state miss means a request re-lowered
	// a graph the pool had already paid for.
	if b.N >= len(serverLoadBodies) && hitPct < 90 {
		b.Fatalf("warm structural-cache hit rate %.1f%% (%d hits, %d misses), want >= 90%%",
			hitPct, hits, misses)
	}
}
