package vtrain_bench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"vtrain/internal/clusterdse"
	"vtrain/internal/core"
	"vtrain/internal/dse"
	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/resilience"
	"vtrain/internal/taskgraph"
)

// clusterSweepSpace is the BenchmarkClusterSweep search space: the full
// hardware catalog (4 offerings spanning 3 GPU generations) crossed with
// every interconnect tier, at four cluster sizes, each exploring a
// realistic plan grid.
// Hardware candidates multiply the design points but, because task-graph
// structure is hardware-invariant, add no lowerings — the redundancy the
// shared structural cache exploits.
func clusterSweepSpace() clusterdse.Space {
	var offerings []hw.Offering
	for _, o := range hw.Catalog() {
		offerings = append(offerings, o)
		for _, ic := range hw.Interconnects() {
			if ic.Name != o.Interconnect.Name {
				offerings = append(offerings, o.WithInterconnect(ic))
			}
		}
	}
	return clusterdse.Space{
		Offerings:  offerings,
		NodeCounts: []int{4, 8, 16, 32},
		Plans: dse.Space{
			TensorWidths:    []int{1, 2, 4, 8},
			DataWidths:      []int{1, 2, 4, 8, 16, 32, 64},
			PipelineDepths:  []int{1, 2, 4, 8},
			MicroBatches:    []int{1, 2, 4},
			GlobalBatch:     512,
			GradientBuckets: 2,
			MaxMicroBatches: 64,
		},
		TotalTokens: 300e9,
	}
}

// BenchmarkClusterSweep measures one cold joint cluster-design sweep end to
// end: a fresh simulator (empty caches, report cache disabled) ranking
// (GPU generation x node count x interconnect x plan) for Megatron 18.4B.
// One op = one whole sweep. The structural-cache metrics pin the
// hardware-invariance win: lowerings counts the graphs actually lowered,
// and must stay far below the design-point count because every hardware
// variant of a plan shape shares one structure.
func BenchmarkClusterSweep(b *testing.B) {
	m := model.Megatron18_4B()
	space := clusterSweepSpace()
	var (
		points []clusterdse.Point
		sim    *core.Simulator
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		sim, err = clusterdse.NewSimulator(space,
			core.WithFidelity(taskgraph.OperatorLevel), core.WithCacheSize(0))
		if err != nil {
			b.Fatal(err)
		}
		points, err = clusterdse.Explore(sim, m, space)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := sim.CacheStats()
	hitPct := 100 * float64(st.StructHits) / float64(max(st.StructHits+st.StructMisses, 1))
	b.ReportMetric(float64(len(points)), "design_points")
	b.ReportMetric(float64(st.StructMisses), "lowerings")
	b.ReportMetric(hitPct, "struct_hit_pct")
	b.ReportMetric(float64(st.BatchedPlans)/float64(max(st.BatchReplays, 1)), "batch_width")
	once("cluster-sweep", func() {
		front := clusterdse.ParetoFrontier(points)
		fmt.Printf("\nCluster-design sweep — Megatron 18.4B, 300B tokens, %d points, %d lowerings (%.1f%% hit):\n",
			len(points), st.StructMisses, hitPct)
		for _, p := range front {
			fmt.Printf("  $%7.2fM %7.2f days  %-14s %2d nodes %4d GPUs  %s\n",
				p.Training.TotalDollars/1e6, p.Training.Days,
				p.Offering.Name, p.Nodes, p.GPUs(), p.Plan)
		}
	})
	// The acceptance bar for the joint sweep: the hardware axes must ride
	// the structural cache, not re-lower per cluster. >= 90% hit rate means
	// >= 10 design points served per lowering.
	if hitPct < 90 {
		b.Fatalf("structural-cache hit rate %.1f%% (%d points, %d lowerings), want >= 90%%",
			hitPct, len(points), st.StructMisses)
	}
}

// BenchmarkClusterSweepResilient is BenchmarkClusterSweep with failure and
// checkpoint-restart pricing enabled (the clusterdse default). Resilience
// is a pure post-processing layer over each candidate's cost report, so
// the sweep must hit the identical structural-cache profile — same
// lowerings, same >= 90% bar — and essentially the same wall-clock as the
// ideal sweep; a drop here means goodput modeling leaked into the
// simulation path.
func BenchmarkClusterSweepResilient(b *testing.B) {
	m := model.Megatron18_4B()
	space := clusterSweepSpace()
	space.Resilience = &resilience.Options{}
	var (
		points []clusterdse.Point
		sim    *core.Simulator
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		sim, err = clusterdse.NewSimulator(space,
			core.WithFidelity(taskgraph.OperatorLevel), core.WithCacheSize(0))
		if err != nil {
			b.Fatal(err)
		}
		points, err = clusterdse.Explore(sim, m, space)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := sim.CacheStats()
	hitPct := 100 * float64(st.StructHits) / float64(max(st.StructHits+st.StructMisses, 1))
	b.ReportMetric(float64(len(points)), "design_points")
	b.ReportMetric(float64(st.StructMisses), "lowerings")
	b.ReportMetric(hitPct, "struct_hit_pct")
	if hitPct < 90 {
		b.Fatalf("structural-cache hit rate %.1f%% (%d points, %d lowerings), want >= 90%% — resilience must stay post-processing",
			hitPct, len(points), st.StructMisses)
	}
	for _, p := range points {
		if p.Resilience.GoodputFraction <= 0 || p.Resilience.GoodputFraction >= 1 {
			b.Fatalf("point %v: goodput %v outside (0,1)", p.Candidate, p.Resilience.GoodputFraction)
		}
	}
}

// contendedSweepDigest is the SHA-256 of the contended sweep's full point
// set (offering, cluster size, plan, and every Report/Training float at
// bit precision), pinned against the pre-ledger append-and-scan
// implementation. The epoch-bucketed occupancy ledger is an exact
// reformulation of the interval-overlap count, so the digest must never
// move: a divergence means the ledger changed *what* is counted, not just
// how fast.
const contendedSweepDigest = "be05f8452f7def91f3e9cb38e6e0a78a1d5481c1c7d061569f5abefa0fad1761"

// sweepDigest collapses a sweep's ranked points into one order-sensitive
// hash, bit-exact over every derived float, for fixture pinning.
func sweepDigest(points []clusterdse.Point) string {
	h := sha256.New()
	bits := math.Float64bits
	for _, p := range points {
		fmt.Fprintf(h, "%s|%d|%v|%016x|%016x|%016x|%016x|%016x|%016x|%016x|%016x\n",
			p.Offering.Name, p.Nodes, p.Plan,
			bits(p.Report.IterTime), bits(p.Report.Utilization),
			bits(p.Report.HardwareFLOPs), bits(p.Report.ComputeSeconds),
			bits(p.Report.CommSeconds), bits(p.Report.BubbleFraction),
			bits(p.Training.TotalDollars), bits(p.Training.Days))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// BenchmarkClusterSweepContention is BenchmarkClusterSweep with the
// topology-aware congestion fidelity level enabled. Contention binds at
// replay time, never into the lowered structure, so the contended sweep
// must hit the identical structural-cache profile as the ideal one — the
// same 38 lowerings over the full hardware grid and the same >= 90% bar.
// The contended report itself is pinned to the pre-ledger fixture digest,
// and the untimed tail enforces the perf bar (contended wall-clock <= 8x
// one ideal sweep, measured in-process) plus the knob-off equivalence
// lock, byte-identical to a sweep that never saw the knob — all enforced
// on every commit at full sweep scale.
func BenchmarkClusterSweepContention(b *testing.B) {
	m := model.Megatron18_4B()
	space := clusterSweepSpace()
	space.Contention = true
	var (
		points []clusterdse.Point
		sim    *core.Simulator
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		sim, err = clusterdse.NewSimulator(space,
			core.WithFidelity(taskgraph.OperatorLevel), core.WithCacheSize(0))
		if err != nil {
			b.Fatal(err)
		}
		points, err = clusterdse.Explore(sim, m, space)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := sim.CacheStats()
	hitPct := 100 * float64(st.StructHits) / float64(max(st.StructHits+st.StructMisses, 1))
	b.ReportMetric(float64(len(points)), "design_points")
	b.ReportMetric(float64(st.StructMisses), "lowerings")
	b.ReportMetric(hitPct, "struct_hit_pct")
	// Structure is contention-invariant: the congestion knob must not cost
	// a single extra lowering against the ideal sweep's pinned count.
	if st.StructMisses != 38 {
		b.Fatalf("contended sweep lowered %d graphs, want the ideal sweep's 38 — contention leaked into the structural key",
			st.StructMisses)
	}
	if hitPct < 90 {
		b.Fatalf("structural-cache hit rate %.1f%% (%d points, %d lowerings), want >= 90%%",
			hitPct, len(points), st.StructMisses)
	}
	// Correctness lock: the ledger rewrite must reproduce the append-and-scan
	// implementation's contended report bit for bit.
	if d := sweepDigest(points); d != contendedSweepDigest {
		b.Fatalf("contended sweep digest %s diverges from the pre-ledger fixture %s — the occupancy ledger changed contended results",
			d, contendedSweepDigest)
	}

	// Untimed tail. First the perf bar: one contended sweep and one ideal
	// sweep timed back to back in this process — the ledger must hold the
	// contention tax under 8x (the append-and-scan implementation sat near
	// 85x). Then the equivalence guard: with the knob off the sweep must be
	// byte-identical — points and cache counters — to one that predates it.
	sweep := func(s clusterdse.Space) ([]clusterdse.Point, core.CacheStats, time.Duration) {
		start := time.Now()
		sim, err := clusterdse.NewSimulator(s,
			core.WithFidelity(taskgraph.OperatorLevel), core.WithCacheSize(0))
		if err != nil {
			b.Fatal(err)
		}
		pts, err := clusterdse.Explore(sim, m, s)
		if err != nil {
			b.Fatal(err)
		}
		return pts, sim.CacheStats(), time.Since(start)
	}
	contSpace := clusterSweepSpace()
	contSpace.Contention = true
	_, _, contElapsed := sweep(contSpace)
	offSpace := clusterSweepSpace()
	offSpace.Contention = false
	offPoints, offStats, idealElapsed := sweep(offSpace)
	ratio := float64(contElapsed) / float64(max(idealElapsed, 1))
	b.ReportMetric(ratio, "contention_tax_x")
	if ratio > 8 {
		b.Fatalf("contended sweep took %v vs ideal %v (%.1fx), want <= 8x",
			contElapsed, idealElapsed, ratio)
	}
	defPoints, defStats, _ := sweep(clusterSweepSpace())
	if !reflect.DeepEqual(offPoints, defPoints) {
		b.Fatal("contention-off sweep is not byte-identical to the default sweep")
	}
	if offStats != defStats {
		b.Fatalf("contention-off cache stats diverge from default: %+v vs %+v", offStats, defStats)
	}
}
