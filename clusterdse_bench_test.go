package vtrain_bench

import (
	"fmt"
	"reflect"
	"testing"

	"vtrain/internal/clusterdse"
	"vtrain/internal/core"
	"vtrain/internal/dse"
	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/resilience"
	"vtrain/internal/taskgraph"
)

// clusterSweepSpace is the BenchmarkClusterSweep search space: the full
// hardware catalog (4 offerings spanning 3 GPU generations) crossed with
// every interconnect tier, at four cluster sizes, each exploring a
// realistic plan grid.
// Hardware candidates multiply the design points but, because task-graph
// structure is hardware-invariant, add no lowerings — the redundancy the
// shared structural cache exploits.
func clusterSweepSpace() clusterdse.Space {
	var offerings []hw.Offering
	for _, o := range hw.Catalog() {
		offerings = append(offerings, o)
		for _, ic := range hw.Interconnects() {
			if ic.Name != o.Interconnect.Name {
				offerings = append(offerings, o.WithInterconnect(ic))
			}
		}
	}
	return clusterdse.Space{
		Offerings:  offerings,
		NodeCounts: []int{4, 8, 16, 32},
		Plans: dse.Space{
			TensorWidths:    []int{1, 2, 4, 8},
			DataWidths:      []int{1, 2, 4, 8, 16, 32, 64},
			PipelineDepths:  []int{1, 2, 4, 8},
			MicroBatches:    []int{1, 2, 4},
			GlobalBatch:     512,
			GradientBuckets: 2,
			MaxMicroBatches: 64,
		},
		TotalTokens: 300e9,
	}
}

// BenchmarkClusterSweep measures one cold joint cluster-design sweep end to
// end: a fresh simulator (empty caches, report cache disabled) ranking
// (GPU generation x node count x interconnect x plan) for Megatron 18.4B.
// One op = one whole sweep. The structural-cache metrics pin the
// hardware-invariance win: lowerings counts the graphs actually lowered,
// and must stay far below the design-point count because every hardware
// variant of a plan shape shares one structure.
func BenchmarkClusterSweep(b *testing.B) {
	m := model.Megatron18_4B()
	space := clusterSweepSpace()
	var (
		points []clusterdse.Point
		sim    *core.Simulator
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		sim, err = clusterdse.NewSimulator(space,
			core.WithFidelity(taskgraph.OperatorLevel), core.WithCacheSize(0))
		if err != nil {
			b.Fatal(err)
		}
		points, err = clusterdse.Explore(sim, m, space)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := sim.CacheStats()
	hitPct := 100 * float64(st.StructHits) / float64(max(st.StructHits+st.StructMisses, 1))
	b.ReportMetric(float64(len(points)), "design_points")
	b.ReportMetric(float64(st.StructMisses), "lowerings")
	b.ReportMetric(hitPct, "struct_hit_pct")
	b.ReportMetric(float64(st.BatchedPlans)/float64(max(st.BatchReplays, 1)), "batch_width")
	once("cluster-sweep", func() {
		front := clusterdse.ParetoFrontier(points)
		fmt.Printf("\nCluster-design sweep — Megatron 18.4B, 300B tokens, %d points, %d lowerings (%.1f%% hit):\n",
			len(points), st.StructMisses, hitPct)
		for _, p := range front {
			fmt.Printf("  $%7.2fM %7.2f days  %-14s %2d nodes %4d GPUs  %s\n",
				p.Training.TotalDollars/1e6, p.Training.Days,
				p.Offering.Name, p.Nodes, p.GPUs(), p.Plan)
		}
	})
	// The acceptance bar for the joint sweep: the hardware axes must ride
	// the structural cache, not re-lower per cluster. >= 90% hit rate means
	// >= 10 design points served per lowering.
	if hitPct < 90 {
		b.Fatalf("structural-cache hit rate %.1f%% (%d points, %d lowerings), want >= 90%%",
			hitPct, len(points), st.StructMisses)
	}
}

// BenchmarkClusterSweepResilient is BenchmarkClusterSweep with failure and
// checkpoint-restart pricing enabled (the clusterdse default). Resilience
// is a pure post-processing layer over each candidate's cost report, so
// the sweep must hit the identical structural-cache profile — same
// lowerings, same >= 90% bar — and essentially the same wall-clock as the
// ideal sweep; a drop here means goodput modeling leaked into the
// simulation path.
func BenchmarkClusterSweepResilient(b *testing.B) {
	m := model.Megatron18_4B()
	space := clusterSweepSpace()
	space.Resilience = &resilience.Options{}
	var (
		points []clusterdse.Point
		sim    *core.Simulator
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		sim, err = clusterdse.NewSimulator(space,
			core.WithFidelity(taskgraph.OperatorLevel), core.WithCacheSize(0))
		if err != nil {
			b.Fatal(err)
		}
		points, err = clusterdse.Explore(sim, m, space)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := sim.CacheStats()
	hitPct := 100 * float64(st.StructHits) / float64(max(st.StructHits+st.StructMisses, 1))
	b.ReportMetric(float64(len(points)), "design_points")
	b.ReportMetric(float64(st.StructMisses), "lowerings")
	b.ReportMetric(hitPct, "struct_hit_pct")
	if hitPct < 90 {
		b.Fatalf("structural-cache hit rate %.1f%% (%d points, %d lowerings), want >= 90%% — resilience must stay post-processing",
			hitPct, len(points), st.StructMisses)
	}
	for _, p := range points {
		if p.Resilience.GoodputFraction <= 0 || p.Resilience.GoodputFraction >= 1 {
			b.Fatalf("point %v: goodput %v outside (0,1)", p.Candidate, p.Resilience.GoodputFraction)
		}
	}
}

// BenchmarkClusterSweepContention is BenchmarkClusterSweep with the
// topology-aware congestion fidelity level enabled. Contention binds at
// replay time, never into the lowered structure, so the contended sweep
// must hit the identical structural-cache profile as the ideal one — the
// same 38 lowerings over the full hardware grid and the same >= 90% bar.
// After the timed passes it re-runs the sweep with the knob off and holds
// it byte-identical to a sweep that never saw the knob: the equivalence
// lock, enforced on every commit at full sweep scale.
func BenchmarkClusterSweepContention(b *testing.B) {
	m := model.Megatron18_4B()
	space := clusterSweepSpace()
	space.Contention = true
	var (
		points []clusterdse.Point
		sim    *core.Simulator
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		sim, err = clusterdse.NewSimulator(space,
			core.WithFidelity(taskgraph.OperatorLevel), core.WithCacheSize(0))
		if err != nil {
			b.Fatal(err)
		}
		points, err = clusterdse.Explore(sim, m, space)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := sim.CacheStats()
	hitPct := 100 * float64(st.StructHits) / float64(max(st.StructHits+st.StructMisses, 1))
	b.ReportMetric(float64(len(points)), "design_points")
	b.ReportMetric(float64(st.StructMisses), "lowerings")
	b.ReportMetric(hitPct, "struct_hit_pct")
	// Structure is contention-invariant: the congestion knob must not cost
	// a single extra lowering against the ideal sweep's pinned count.
	if st.StructMisses != 38 {
		b.Fatalf("contended sweep lowered %d graphs, want the ideal sweep's 38 — contention leaked into the structural key",
			st.StructMisses)
	}
	if hitPct < 90 {
		b.Fatalf("structural-cache hit rate %.1f%% (%d points, %d lowerings), want >= 90%%",
			hitPct, len(points), st.StructMisses)
	}

	// Equivalence guard, untimed: with the knob off the sweep must be
	// byte-identical — points and cache counters — to one that predates it.
	sweep := func(s clusterdse.Space) ([]clusterdse.Point, core.CacheStats) {
		sim, err := clusterdse.NewSimulator(s,
			core.WithFidelity(taskgraph.OperatorLevel), core.WithCacheSize(0))
		if err != nil {
			b.Fatal(err)
		}
		pts, err := clusterdse.Explore(sim, m, s)
		if err != nil {
			b.Fatal(err)
		}
		return pts, sim.CacheStats()
	}
	offSpace := clusterSweepSpace()
	offSpace.Contention = false
	offPoints, offStats := sweep(offSpace)
	defPoints, defStats := sweep(clusterSweepSpace())
	if !reflect.DeepEqual(offPoints, defPoints) {
		b.Fatal("contention-off sweep is not byte-identical to the default sweep")
	}
	if offStats != defStats {
		b.Fatalf("contention-off cache stats diverge from default: %+v vs %+v", offStats, defStats)
	}
}
