// Package vtrain_bench regenerates every table and figure of the paper's
// evaluation as Go benchmarks. Each benchmark runs the experiment behind
// one exhibit, prints the regenerated rows once, and reports the headline
// quantities as benchmark metrics:
//
//	BenchmarkFigure1        — training days vs. GPU utilization (GPT-3 175B)
//	BenchmarkFigure9a       — single-node validation MAPE / R²
//	BenchmarkFigure9b       — multi-node validation MAPE / R²
//	BenchmarkFigure10       — MT-NLG (t,d,p) design-space sweep
//	BenchmarkFigure11       — t=8 slice: iteration time vs. utilization
//	BenchmarkTable1         — MT-NLG plans vs. vTrain findings, economics
//	BenchmarkTable2         — 64/256/512-GPU plan validation, [40] vs. ours
//	BenchmarkFigure12       — multi-tenant deadline satisfactory ratio
//	BenchmarkFigure13       — multi-tenant average JCT
//	BenchmarkFigure14       — multi-tenant makespan
//	BenchmarkTable4         — compute-optimal Chinchilla points
//
// Run with: go test -bench=. -benchmem
package vtrain_bench

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"vtrain/internal/chinchilla"
	"vtrain/internal/cluster"
	"vtrain/internal/core"
	"vtrain/internal/cost"
	"vtrain/internal/dse"
	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/parallel"
	"vtrain/internal/taskgraph"
	"vtrain/internal/testbed"
	"vtrain/internal/trace"
	"vtrain/internal/validate"
)

// printOnce keys exhibit output so repeated b.N iterations print one table.
var printOnce sync.Map

func once(key string, f func()) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		f()
	}
}

func newSim(b *testing.B, nodes int) *core.Simulator {
	b.Helper()
	sim, err := core.New(hw.PaperCluster(nodes), core.WithFidelity(taskgraph.OperatorLevel))
	if err != nil {
		b.Fatal(err)
	}
	return sim
}

func mtnlgPlan(t, d, p int) parallel.Plan {
	return parallel.Plan{
		Tensor: t, Data: d, Pipeline: p, MicroBatch: 1, GlobalBatch: 1920,
		GradientBuckets: 2, Recompute: true,
	}
}

// BenchmarkFigure1 regenerates Fig. 1: GPT-3 175B wall-clock training time
// as a function of GPU compute utilization on 1,024 A100s.
func BenchmarkFigure1(b *testing.B) {
	m := model.GPT3175B()
	g := hw.A100SXM80GB()
	var d40, d50 float64
	for i := 0; i < b.N; i++ {
		d40 = cost.TimeForUtilization(m, 300e9, 1024, 0.40, g)
		d50 = cost.TimeForUtilization(m, 300e9, 1024, 0.50, g)
	}
	once("fig1", func() {
		fmt.Println("\nFigure 1 — GPT-3 175B, 300B tokens, 1,024 A100s:")
		for u := 30; u <= 70; u += 10 {
			days := cost.TimeForUtilization(m, 300e9, 1024, float64(u)/100, g)
			c := days * 24 * 1024 * 5.0
			fmt.Printf("  util %2d%%: %6.1f days  ($%.2fM)\n", u, days, c/1e6)
		}
	})
	b.ReportMetric(d40-d50, "days_lost_50to40pct")
}

// BenchmarkFigure9a regenerates the single-node validation campaign.
func BenchmarkFigure9a(b *testing.B) {
	cases := validate.SingleNodeCases()
	var res validate.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = validate.Run(hw.PaperCluster(1), cases, testbed.DefaultConfig(), 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	once("fig9a", func() {
		fmt.Printf("\nFigure 9a — single-node validation: %d points, MAPE %.2f%%, R² %.4f (paper: 1,440 points, 8.37%%, 0.9896)\n",
			len(cases), res.MAPE, res.R2)
	})
	b.ReportMetric(res.MAPE, "MAPE_pct")
	b.ReportMetric(res.R2, "R2")
}

// BenchmarkFigure9b regenerates the multi-node validation campaign.
func BenchmarkFigure9b(b *testing.B) {
	cases := validate.MultiNodeCases()
	var res validate.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = validate.Run(hw.PaperCluster(64), cases, testbed.DefaultConfig(), 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	once("fig9b", func() {
		fmt.Printf("\nFigure 9b — multi-node validation: %d points, MAPE %.2f%%, R² %.4f (paper: 116 points, 14.73%%, 0.9887)\n",
			len(cases), res.MAPE, res.R2)
	})
	b.ReportMetric(res.MAPE, "MAPE_pct")
	b.ReportMetric(res.R2, "R2")
}

// figure10Space is a representative slice of the paper's full sweep (the
// complete tmax=16/dmax=32/pmax=105 space is cmd/vtrain-dse's job).
func figure10Space() dse.Space {
	return dse.Space{
		TensorWidths:    []int{4, 8, 16},
		DataWidths:      []int{4, 6, 8, 10, 12, 16, 20, 24, 32},
		PipelineDepths:  []int{3, 5, 7, 15, 21, 35},
		MicroBatches:    []int{1},
		GlobalBatch:     1920,
		GradientBuckets: 2,
		MaxMicroBatches: 512,
	}
}

// BenchmarkFigure10 regenerates the MT-NLG design-space exploration:
// iteration time and utilization across the (t,d,p) grid.
func BenchmarkFigure10(b *testing.B) {
	sim := newSim(b, 6720)
	m := model.MTNLG530B()
	var points []dse.Point
	var err error
	for i := 0; i < b.N; i++ {
		points, err = dse.Explore(sim, m, figure10Space())
		if err != nil {
			b.Fatal(err)
		}
	}
	once("fig10", func() {
		fast, _ := dse.Fastest(points)
		fmt.Printf("\nFigure 10 — MT-NLG design space (%d points):\n", len(points))
		fmt.Printf("  fastest plan: %s (%d GPUs) iter %.2fs util %.1f%%\n",
			fast.Plan, fast.Plan.GPUs(), fast.Report.IterTime, 100*fast.Report.Utilization)
		var bestUtil dse.Point
		for _, p := range points {
			if p.Report.Utilization > bestUtil.Report.Utilization {
				bestUtil = p
			}
		}
		fmt.Printf("  best utilization: %s (%d GPUs) iter %.2fs util %.1f%%\n",
			bestUtil.Plan, bestUtil.Plan.GPUs(), bestUtil.Report.IterTime, 100*bestUtil.Report.Utilization)
		// The paper's observation: the fastest point wastes GPUs.
		fmt.Printf("  fastest uses %.1fx the GPUs of the best-utilization point\n",
			float64(fast.Plan.GPUs())/float64(bestUtil.Plan.GPUs()))
	})
	fast, _ := dse.Fastest(points)
	b.ReportMetric(float64(len(points)), "design_points")
	b.ReportMetric(fast.Report.IterTime, "fastest_iter_s")
}

// BenchmarkFigure11 regenerates the t=8 slice: MT-NLG's three heuristic
// points versus the three vTrain-uncovered points in the (iteration time,
// utilization) plane.
func BenchmarkFigure11(b *testing.B) {
	sim := newSim(b, 420)
	m := model.MTNLG530B()
	baselines := []parallel.Plan{mtnlgPlan(8, 8, 35), mtnlgPlan(8, 10, 35), mtnlgPlan(8, 12, 35)}
	findings := []parallel.Plan{mtnlgPlan(8, 12, 21), mtnlgPlan(8, 16, 21), mtnlgPlan(8, 20, 21)}
	reports := make([]core.Report, 6)
	for i := 0; i < b.N; i++ {
		for j, p := range append(append([]parallel.Plan{}, baselines...), findings...) {
			rep, err := sim.Simulate(m, p)
			if err != nil {
				b.Fatal(err)
			}
			reports[j] = rep
		}
	}
	once("fig11", func() {
		fmt.Println("\nFigure 11 — t=8 slice, iteration time vs. utilization:")
		labels := []string{"MT-NLG (8,8,35)", "MT-NLG (8,10,35)", "MT-NLG (8,12,35)",
			"ours (8,12,21)", "ours (8,16,21)", "ours (8,20,21)"}
		for j, r := range reports {
			fmt.Printf("  %-18s iter %6.2fs  util %5.2f%%\n", labels[j], r.IterTime, 100*r.Utilization)
		}
	})
	// Headline: every "ours" point has higher utilization than its
	// GPU-budget-matched baseline.
	gain := 0.0
	for j := 0; j < 3; j++ {
		gain += reports[3+j].Utilization - reports[j].Utilization
	}
	b.ReportMetric(100*gain/3, "avg_util_gain_points")
}

// BenchmarkTable1 regenerates Table I: full economics of the six plans.
func BenchmarkTable1(b *testing.B) {
	sim := newSim(b, 420)
	m := model.MTNLG530B()
	rows := []struct {
		label string
		plan  parallel.Plan
	}{
		{"MT-NLG (8,8,35)", mtnlgPlan(8, 8, 35)},
		{"MT-NLG (8,10,35)", mtnlgPlan(8, 10, 35)},
		{"MT-NLG (8,12,35)", mtnlgPlan(8, 12, 35)},
		{"ours (8,12,21)", mtnlgPlan(8, 12, 21)},
		{"ours (8,16,21)", mtnlgPlan(8, 16, 21)},
		{"ours (8,20,21)", mtnlgPlan(8, 20, 21)},
	}
	trainings := make([]cost.Training, len(rows))
	for i := 0; i < b.N; i++ {
		for j, r := range rows {
			rep, err := sim.Simulate(m, r.plan)
			if err != nil {
				b.Fatal(err)
			}
			trainings[j] = cost.Train(m, 1920, rep.IterTime, r.plan.GPUs(), 270e9, sim.Cluster())
		}
	}
	once("table1", func() {
		fmt.Println("\nTable I — MT-NLG training plans vs. vTrain findings (270B tokens):")
		fmt.Printf("  %-18s %6s %9s %8s %7s %9s %10s\n", "plan", "GPUs", "iter(s)", "days", "util%", "$/hour", "$total(M)")
		for j, r := range rows {
			tr := trainings[j]
			fmt.Printf("  %-18s %6d %9.2f %8.2f %7.2f %9.0f %10.2f\n",
				r.label, r.plan.GPUs(), tr.IterTime, tr.Days, 100*tr.Utilization, tr.DollarsPerHour, tr.TotalDollars/1e6)
		}
		fmt.Printf("  (paper row 1: 42.59s / 33.52d / 42.67%% / $9.01M vs 45.29s / 35.64d / 44.58%% / $8.62M)\n")
	})
	b.ReportMetric(trainings[0].TotalDollars/1e6, "baseline_cost_M")
	b.ReportMetric(trainings[3].TotalDollars/1e6, "ours_cost_M")
}

// BenchmarkTable2 regenerates Table II: Megatron-LM's published plans vs.
// plans uncovered by vTrain's exact-GPU search, validated against the
// testbed ("measured").
func BenchmarkTable2(b *testing.B) {
	type row struct {
		m        model.Config
		gpus     int
		batch    int
		megatron parallel.Plan
	}
	rows := []row{
		// The 3.6B plan's 16-sequence micro-batch forces activation
		// checkpointing under the Megatron memory model.
		{model.Megatron3_6B(), 64, 512,
			parallel.Plan{Tensor: 2, Data: 32, Pipeline: 1, MicroBatch: 16, GlobalBatch: 512, GradientBuckets: 2, Recompute: true}},
		{model.Megatron18_4B(), 256, 1024,
			parallel.Plan{Tensor: 8, Data: 32, Pipeline: 1, MicroBatch: 4, GlobalBatch: 1024, GradientBuckets: 2, Recompute: true}},
		{model.Megatron39_1B(), 512, 1536,
			parallel.Plan{Tensor: 8, Data: 32, Pipeline: 2, MicroBatch: 4, GlobalBatch: 1536, GradientBuckets: 2, Recompute: true}},
	}
	sim := newSim(b, 64)
	tb := testbed.New(sim.Cluster(), testbed.DefaultConfig(), 42)

	type result struct {
		megaPred, megaMeas, ourPred, ourMeas float64
		ourPlan                              parallel.Plan
	}
	results := make([]result, len(rows))
	for i := 0; i < b.N; i++ {
		for j, r := range rows {
			rep, err := sim.Simulate(r.m, r.megatron)
			if err != nil {
				b.Fatal(err)
			}
			meas, err := tb.Measure(r.m, r.megatron)
			if err != nil {
				b.Fatal(err)
			}
			space := dse.DefaultSpace(r.m, r.batch)
			space.ExactGPUs = r.gpus
			space.TensorWidths = []int{1, 2, 4, 8}
			space.MaxMicroBatches = 256
			// Exact-GPU searches need the full data-parallel range
			// (the paper's 3.6B finding is (1, 64, 1, 8)).
			space.DataWidths = nil
			for d := 1; d <= 64; d++ {
				if r.batch%d == 0 {
					space.DataWidths = append(space.DataWidths, d)
				}
			}
			points, err := dse.Explore(sim, r.m, space)
			if err != nil {
				b.Fatal(err)
			}
			best, ok := dse.Fastest(points)
			if !ok {
				b.Fatalf("no plan for %s on %d GPUs", r.m.Name, r.gpus)
			}
			ourMeas, err := tb.Measure(r.m, best.Plan)
			if err != nil {
				b.Fatal(err)
			}
			results[j] = result{
				megaPred: rep.IterTime, megaMeas: meas,
				ourPred: best.Report.IterTime, ourMeas: ourMeas,
				ourPlan: best.Plan,
			}
		}
	}
	once("table2", func() {
		fmt.Println("\nTable II — [40] plans vs. vTrain-uncovered plans (predicted / measured iteration seconds):")
		for j, r := range rows {
			res := results[j]
			fmt.Printf("  %-15s %4d GPUs  [40] %-34.34s %7.3f / %7.3f\n", r.m.Name, r.gpus,
				r.megatron, res.megaPred, res.megaMeas)
			fmt.Printf("  %-15s %9s  ours %-34.34s %7.3f / %7.3f  (%.0f%% / %.0f%% faster)\n", "", "",
				res.ourPlan, res.ourPred, res.ourMeas,
				100*(1-res.ourPred/res.megaPred), 100*(1-res.ourMeas/res.megaMeas))
		}
	})
	// Headline: ours is at least as fast on BOTH predicted and measured.
	for j := range rows {
		if results[j].ourPred > results[j].megaPred*1.0001 || results[j].ourMeas > results[j].megaMeas*1.01 {
			b.Fatalf("row %d: vTrain plan not consistently faster", j)
		}
	}
	b.ReportMetric(100*(1-results[2].ourMeas/results[2].megaMeas), "row3_measured_gain_pct")
}

// clusterProfiles builds the case-study-2 offline profiles once.
var (
	clusterOnce sync.Once
	clusterBase *cluster.ProfileSet
	clusterVT   *cluster.ProfileSet
	clusterErr  error
)

func clusterSetup(b *testing.B) (*cluster.ProfileSet, *cluster.ProfileSet) {
	b.Helper()
	clusterOnce.Do(func() {
		var sim *core.Simulator
		sim, clusterErr = core.New(hw.PaperCluster(128), core.WithFidelity(taskgraph.OperatorLevel))
		if clusterErr != nil {
			return
		}
		clusterBase, clusterErr = cluster.BuildProfiles(sim, cluster.Baseline, 1024)
		if clusterErr != nil {
			return
		}
		clusterVT, clusterErr = cluster.BuildProfiles(sim, cluster.VTrainEnabled, 1024)
	})
	if clusterErr != nil {
		b.Fatal(clusterErr)
	}
	return clusterBase, clusterVT
}

// BenchmarkFigure12 regenerates the deadline-satisfactory-ratio experiment.
func BenchmarkFigure12(b *testing.B) {
	base, vt := clusterSetup(b)
	b.ResetTimer()
	type ratios struct{ base, vt float64 }
	results := map[int][]ratios{}
	for i := 0; i < b.N; i++ {
		results = map[int][]ratios{}
		for _, n := range []int{64, 128} {
			for id := 1; id <= 3; id++ {
				jobs, err := trace.Generate(id, trace.DefaultOptions(n))
				if err != nil {
					b.Fatal(err)
				}
				ob, err := cluster.NewScheduler(1024, base).Run(jobs)
				if err != nil {
					b.Fatal(err)
				}
				ov, err := cluster.NewScheduler(1024, vt).Run(jobs)
				if err != nil {
					b.Fatal(err)
				}
				results[n] = append(results[n], ratios{ob.DeadlineSatisfactoryRatio, ov.DeadlineSatisfactoryRatio})
			}
		}
	}
	gain := map[int]float64{}
	once("fig12", func() {
		fmt.Println("\nFigure 12 — deadline satisfactory ratio (3 traces; paper avg gain: 1.09x @64, 1.23x @128):")
		for _, n := range []int{64, 128} {
			var sb, sv float64
			for id, r := range results[n] {
				fmt.Printf("  %3d jobs trace %d: ElasticFlow %.3f  vTrain %.3f\n", n, id+1, r.base, r.vt)
				sb += r.base
				sv += r.vt
			}
			fmt.Printf("  %3d jobs average gain: %.2fx\n", n, sv/sb)
		}
	})
	for _, n := range []int{64, 128} {
		var sb, sv float64
		for _, r := range results[n] {
			sb += r.base
			sv += r.vt
		}
		gain[n] = sv / sb
	}
	b.ReportMetric(gain[64], "gain_64jobs")
	b.ReportMetric(gain[128], "gain_128jobs")
}

// BenchmarkFigure13 regenerates the JCT experiment on deadline-free traces.
func BenchmarkFigure13(b *testing.B) {
	base, vt := clusterSetup(b)
	b.ResetTimer()
	opts := trace.DefaultOptions(32)
	opts.WithDeadlines = false
	var norm float64
	var norms []float64
	for i := 0; i < b.N; i++ {
		norms = norms[:0]
		for id := 1; id <= 3; id++ {
			jobs, err := trace.Generate(id, opts)
			if err != nil {
				b.Fatal(err)
			}
			ob, err := cluster.NewScheduler(1024, base).Run(jobs)
			if err != nil {
				b.Fatal(err)
			}
			ov, err := cluster.NewScheduler(1024, vt).Run(jobs)
			if err != nil {
				b.Fatal(err)
			}
			norms = append(norms, ov.AvgJCT/ob.AvgJCT)
		}
	}
	norm = 0
	for _, x := range norms {
		norm += x
	}
	norm /= float64(len(norms))
	once("fig13", func() {
		fmt.Printf("\nFigure 13 — normalized JCT over 3 deadline-free 32-job traces: %.3f (paper: 0.848 avg; lower is better)\n", norm)
	})
	b.ReportMetric(norm, "normalized_JCT")
}

// BenchmarkFigure14 regenerates the makespan experiment.
func BenchmarkFigure14(b *testing.B) {
	base, vt := clusterSetup(b)
	b.ResetTimer()
	jobCounts := []int{16, 32, 48, 64, 72}
	norms := make([]float64, len(jobCounts))
	for i := 0; i < b.N; i++ {
		for j, n := range jobCounts {
			jobs, err := trace.Generate(100+n, trace.Options{Jobs: n, MinIterations: 500, MaxIterations: 5000})
			if err != nil {
				b.Fatal(err)
			}
			ob, err := cluster.NewScheduler(1024, base).Run(jobs)
			if err != nil {
				b.Fatal(err)
			}
			ov, err := cluster.NewScheduler(1024, vt).Run(jobs)
			if err != nil {
				b.Fatal(err)
			}
			norms[j] = ov.Makespan / ob.Makespan
		}
	}
	once("fig14", func() {
		fmt.Println("\nFigure 14 — normalized makespan, simultaneous submissions (paper: up to 23% reduction):")
		for j, n := range jobCounts {
			fmt.Printf("  %3d jobs: %.3f\n", n, norms[j])
		}
	})
	b.ReportMetric(norms[len(norms)-1], "normalized_makespan_72jobs")
}

// BenchmarkSchedulerPolicies compares EDF (ElasticFlow's policy) against
// the FIFO and SRTF baselines on the same vTrain-informed profiles — an
// extension beyond the paper's exhibits.
func BenchmarkSchedulerPolicies(b *testing.B) {
	_, vt := clusterSetup(b)
	b.ResetTimer()
	jobs, err := trace.Generate(2, trace.DefaultOptions(128))
	if err != nil {
		b.Fatal(err)
	}
	policies := []cluster.Policy{cluster.EDF, cluster.FIFO, cluster.SRTF}
	ratios := make([]float64, len(policies))
	for i := 0; i < b.N; i++ {
		for j, pol := range policies {
			sched := cluster.NewScheduler(1024, vt)
			sched.Policy = pol
			out, err := sched.Run(jobs)
			if err != nil {
				b.Fatal(err)
			}
			ratios[j] = out.DeadlineSatisfactoryRatio
		}
	}
	once("sched-policies", func() {
		fmt.Println("\nScheduler policies — deadline satisfactory ratio, 128-job trace (vTrain profiles):")
		for j, pol := range policies {
			fmt.Printf("  %-5v %.3f\n", pol, ratios[j])
		}
	})
	if ratios[0] < ratios[1] {
		b.Fatalf("EDF (%.3f) below FIFO (%.3f) under deadline pressure", ratios[0], ratios[1])
	}
	b.ReportMetric(ratios[0]-ratios[1], "EDF_vs_FIFO_ratio_gain")
}

// BenchmarkTable4 regenerates the compute-optimal Chinchilla search.
func BenchmarkTable4(b *testing.B) {
	sim := newSim(b, 420)
	var res chinchilla.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = chinchilla.Search(sim, 3360, 3360, 30)
		if err != nil {
			b.Fatal(err)
		}
	}
	once("table4", func() {
		fmt.Println("\nTable IV — Chinchilla points under effective utilization (3,360 GPUs, 30 days):")
		fmt.Printf("  naive point: %.2fB params, %.0fB tokens (paper: 145.61B, 2,912B)\n",
			res.NaiveParams/1e9, res.NaiveTokens/1e9)
		for _, p := range res.Points {
			fmt.Printf("  h=%5d L=%3d %8.2fB  (%d,%d,%d)  util %5.2f%%  %6.1f days\n",
				p.Model.Hidden, p.Model.Layers, p.Params/1e9,
				p.Plan.Tensor, p.Plan.Data, p.Plan.Pipeline,
				100*p.Utilization, p.Days)
		}
		fmt.Printf("  realistic optimum: %.2fB (%.0f%% below naive; paper: 76.04B, 48%% below)\n",
			res.Optimal.Params/1e9, 100*(1-res.Optimal.Params/res.NaiveParams))
	})
	b.ReportMetric(res.Optimal.Params/1e9, "optimal_params_B")
	b.ReportMetric(100*(1-res.Optimal.Params/res.NaiveParams), "shrink_vs_naive_pct")
}

// BenchmarkSimulatorThroughput measures raw Algorithm 1 replay speed on a
// large task graph (an engineering metric, not a paper exhibit). The
// plan-level report cache is disabled so every iteration binds durations
// and replays; the structural graph is lowered once and served from the
// shape-keyed cache thereafter, so this is the marginal cost a sweep pays
// per plan whose shape is already resident (the cold per-shape cost shows
// up in BenchmarkDSESweep's lowerings metric).
func BenchmarkSimulatorThroughput(b *testing.B) {
	sim, err := core.New(hw.PaperCluster(64), core.WithCacheSize(0)) // TaskLevel fidelity
	if err != nil {
		b.Fatal(err)
	}
	m := model.Megatron18_4B()
	plan := parallel.Plan{Tensor: 8, Data: 8, Pipeline: 8, MicroBatch: 1, GlobalBatch: 256, GradientBuckets: 2}
	var tasks int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sim.Simulate(m, plan)
		if err != nil {
			b.Fatal(err)
		}
		tasks = rep.Tasks
	}
	b.ReportMetric(float64(tasks), "tasks_per_iteration")
}

// dseSweepSpace is the BenchmarkDSESweep search space: a realistic
// multi-hundred-point (t, d, p, m) grid over Megatron 39.1B. Many plans
// share a structural shape — the same (schedule, pipeline depth,
// micro-batch count, layer split) with different tensor/data widths — which
// is exactly the redundancy the simulator's shape-keyed structural cache
// exploits.
func dseSweepSpace() dse.Space {
	return dse.Space{
		TensorWidths:    []int{1, 2, 4, 8, 16},
		DataWidths:      []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64},
		PipelineDepths:  []int{1, 2, 4, 6, 8, 12},
		MicroBatches:    []int{1, 2, 3, 4},
		GlobalBatch:     384,
		GradientBuckets: 2,
		MaxMicroBatches: 64,
	}
}

// BenchmarkDSESweep measures one cold design-space sweep end to end: a
// fresh simulator (empty caches) evaluating every plan of dseSweepSpace with
// the plan-level report cache disabled, so each point pays its true
// simulation cost. One op = one whole sweep. The structural-cache metrics
// pin the shape-sharing win: lowerings counts the graphs actually lowered
// per sweep, struct_hit_pct the fraction of points served a shared
// structure.
func BenchmarkDSESweep(b *testing.B) {
	m := model.Megatron39_1B()
	cluster := hw.PaperCluster(256)
	var points []dse.Point
	var sim *core.Simulator
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		sim, err = core.New(cluster, core.WithFidelity(taskgraph.OperatorLevel), core.WithCacheSize(0))
		if err != nil {
			b.Fatal(err)
		}
		points, err = dse.Explore(sim, m, dseSweepSpace())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := sim.CacheStats()
	lowerings := float64(st.Lowerings)
	width := float64(st.BatchedPlans) / float64(max(st.BatchReplays, 1))
	b.ReportMetric(float64(len(points)), "design_points")
	b.ReportMetric(lowerings, "lowerings")
	b.ReportMetric(100*float64(st.StructHits)/float64(st.StructHits+st.StructMisses), "struct_hit_pct")
	b.ReportMetric(width, "batch_width")
	// The refactor's acceptance bar: structural sharing must cut lowering
	// invocations at least 3x versus one lowering per design point.
	if ratio := float64(len(points)) / lowerings; ratio < 3 {
		b.Fatalf("structural cache only saved %.1fx lowerings (%d points, %.0f lowerings), want >= 3x",
			ratio, len(points), lowerings)
	}
	// The batched-replay acceptance bar: the sweep must actually drive
	// multiple duration tables per structural walk.
	if width <= 1 {
		b.Fatalf("mean batch width %.2f (%d plans over %d replays), want > 1",
			width, st.BatchedPlans, st.BatchReplays)
	}
}

// BenchmarkDSESweepWarmDisk measures the persistent artifact tier: the
// same 563-point sweep as BenchmarkDSESweep, but served by a fresh
// simulator (empty memory caches — a new process, in effect) over an
// artifact directory a previous sweep populated. One op = one whole warm
// sweep. The cold baseline is the first-ever run with the same artifact
// directory enabled — the run a user actually pays for once per machine:
// it lowers every structure AND persists it. The acceptance bars are
// hard: every structural load must come from disk (disk_hit_pct = 100,
// zero lowerings), and the warm sweep must be at least 3x faster than
// that cold first run.
//
// The cold baseline is captured once per process: under -count=N every run
// still populates its own directory, but a repeat populate inside a warm
// process (grown heap, primed scratch pools) understates the cost a truly
// cold process pays, so only the first — genuinely cold — measurement
// stands as the baseline.
var coldSweepOnce sync.Once
var coldSweep time.Duration

func BenchmarkDSESweepWarmDisk(b *testing.B) {
	m := model.Megatron39_1B()
	cluster := hw.PaperCluster(256)
	dir := b.TempDir()

	// Cold baseline: the first run against an empty artifact directory
	// pays lowering plus marshal/checksum/write for every structure. This
	// is also what populates the directory for the warm runs below.
	popSim, err := core.New(cluster, core.WithFidelity(taskgraph.OperatorLevel), core.WithCacheSize(0), core.WithArtifactDir(dir))
	if err != nil {
		b.Fatal(err)
	}
	coldStart := time.Now()
	if _, err := dse.Explore(popSim, m, dseSweepSpace()); err != nil {
		b.Fatal(err)
	}
	coldSweepOnce.Do(func() { coldSweep = time.Since(coldStart) })
	cold := coldSweep

	var points []dse.Point
	var sim *core.Simulator
	var warm time.Duration // fastest warm sweep observed
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iterStart := time.Now()
		sim, err = core.New(cluster, core.WithFidelity(taskgraph.OperatorLevel), core.WithCacheSize(0), core.WithArtifactDir(dir))
		if err != nil {
			b.Fatal(err)
		}
		points, err = dse.Explore(sim, m, dseSweepSpace())
		if err != nil {
			b.Fatal(err)
		}
		// The speedup gate compares the minimum iteration, not the mean:
		// scheduler preemption and GC pauses only ever add time, so the
		// minimum is the noise-robust estimate of the intrinsic warm cost.
		if d := time.Since(iterStart); warm == 0 || d < warm {
			warm = d
		}
	}
	b.StopTimer()
	st := sim.CacheStats()
	hitPct := 100 * float64(st.DiskHits) / float64(max(st.DiskHits+st.DiskMisses, 1))
	b.ReportMetric(float64(len(points)), "design_points")
	b.ReportMetric(hitPct, "disk_hit_pct")
	b.ReportMetric(float64(st.Lowerings), "lowerings")
	b.ReportMetric(cold.Seconds()/warm.Seconds(), "speedup_vs_cold")
	if hitPct < 100 {
		b.Fatalf("disk hit rate %.1f%% (%d hits, %d misses), want 100%%", hitPct, st.DiskHits, st.DiskMisses)
	}
	if st.Lowerings != 0 {
		b.Fatalf("warm sweep lowered %d graphs, want 0", st.Lowerings)
	}
	if warm*3 > cold {
		b.Fatalf("warm sweep %v not >= 3x faster than cold first run %v", warm, cold)
	}
}

// BenchmarkSimulatorThroughputCached measures the same configuration served
// from the plan-level result cache — the cost repeated configurations pay
// inside design-space sweeps, scheduler profiling, and Chinchilla searches.
func BenchmarkSimulatorThroughputCached(b *testing.B) {
	sim, err := core.New(hw.PaperCluster(64)) // TaskLevel fidelity, default cache
	if err != nil {
		b.Fatal(err)
	}
	m := model.Megatron18_4B()
	plan := parallel.Plan{Tensor: 8, Data: 8, Pipeline: 8, MicroBatch: 1, GlobalBatch: 256, GradientBuckets: 2}
	if _, err := sim.Simulate(m, plan); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Simulate(m, plan); err != nil {
			b.Fatal(err)
		}
	}
	st := sim.CacheStats()
	if st.ReportMisses != 1 {
		b.Fatalf("cached benchmark re-simulated: %d misses, want 1 (the warm-up)", st.ReportMisses)
	}
}
