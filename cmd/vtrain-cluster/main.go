// Command vtrain-cluster runs the case-study-2 multi-tenant scheduling
// experiments (Section V-B): ElasticFlow-style deadline-aware elastic
// scheduling on a 1,024-GPU cluster, with baseline (data-parallel-only)
// profiles versus vTrain-informed optimal-plan profiles.
//
//	-deadlines   Fig. 12 — deadline satisfactory ratio over traces
//	-jct         Fig. 13 — average JCT on deadline-free 32-job traces
//	-makespan    Fig. 14 — makespan with simultaneous submissions
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"vtrain/internal/cluster"
	"vtrain/internal/core"
	"vtrain/internal/hw"
	"vtrain/internal/taskgraph"
	"vtrain/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vtrain-cluster: ")

	deadlines := flag.Bool("deadlines", false, "run the Fig. 12 deadline experiments")
	jct := flag.Bool("jct", false, "run the Fig. 13 JCT experiments")
	makespan := flag.Bool("makespan", false, "run the Fig. 14 makespan experiments")
	traces := flag.Int("traces", 9, "number of synthetic traces per experiment")
	gpus := flag.Int("gpus", 1024, "total cluster GPUs")
	flag.Parse()

	if !*deadlines && !*jct && !*makespan {
		*deadlines, *jct, *makespan = true, true, true
	}

	start := time.Now()
	sim, err := core.New(hw.PaperCluster(*gpus/8), core.WithFidelity(taskgraph.OperatorLevel))
	if err != nil {
		log.Fatal(err)
	}
	base, err := cluster.BuildProfiles(sim, cluster.Baseline, *gpus)
	if err != nil {
		log.Fatal(err)
	}
	vt, err := cluster.BuildProfiles(sim, cluster.VTrainEnabled, *gpus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline profiles built in %v\n\n", time.Since(start).Round(time.Millisecond))

	run := func(jobs []trace.Job) (b, v cluster.Outcome) {
		ob, err := cluster.NewScheduler(*gpus, base).Run(jobs)
		if err != nil {
			log.Fatal(err)
		}
		ov, err := cluster.NewScheduler(*gpus, vt).Run(jobs)
		if err != nil {
			log.Fatal(err)
		}
		return ob, ov
	}

	if *deadlines {
		for _, n := range []int{64, 128} {
			fmt.Printf("Fig. 12 — deadline satisfactory ratio, %d jobs:\n", n)
			fmt.Printf("%8s %12s %10s %8s\n", "trace", "ElasticFlow", "vTrain", "gain")
			var sb, sv float64
			for id := 1; id <= *traces; id++ {
				jobs, err := trace.Generate(id, trace.DefaultOptions(n))
				if err != nil {
					log.Fatal(err)
				}
				ob, ov := run(jobs)
				fmt.Printf("%8d %12.3f %10.3f %7.2fx\n", id,
					ob.DeadlineSatisfactoryRatio, ov.DeadlineSatisfactoryRatio,
					ov.DeadlineSatisfactoryRatio/ob.DeadlineSatisfactoryRatio)
				sb += ob.DeadlineSatisfactoryRatio
				sv += ov.DeadlineSatisfactoryRatio
			}
			fmt.Printf("%8s %12.3f %10.3f %7.2fx\n\n", "avg",
				sb/float64(*traces), sv/float64(*traces), sv/sb)
		}
	}

	if *jct {
		fmt.Println("Fig. 13 — average JCT, deadline-free 32-job traces (normalized to ElasticFlow):")
		fmt.Printf("%8s %12s %10s %12s\n", "trace", "base (h)", "vTrain (h)", "normalized")
		opts := trace.DefaultOptions(32)
		opts.WithDeadlines = false
		var sum float64
		for id := 1; id <= *traces; id++ {
			jobs, err := trace.Generate(id, opts)
			if err != nil {
				log.Fatal(err)
			}
			ob, ov := run(jobs)
			norm := ov.AvgJCT / ob.AvgJCT
			sum += norm
			fmt.Printf("%8d %12.2f %10.2f %12.3f\n", id, ob.AvgJCT/3600, ov.AvgJCT/3600, norm)
		}
		fmt.Printf("%8s %35.3f\n\n", "avg", sum/float64(*traces))
	}

	if *makespan {
		fmt.Println("Fig. 14 — makespan, simultaneous submission (normalized to ElasticFlow):")
		fmt.Printf("%8s %12s %10s %12s\n", "jobs", "base (h)", "vTrain (h)", "normalized")
		for _, n := range []int{16, 32, 48, 64, 72} {
			jobs, err := trace.Generate(100+n, trace.Options{Jobs: n, MinIterations: 500, MaxIterations: 5000})
			if err != nil {
				log.Fatal(err)
			}
			ob, ov := run(jobs)
			fmt.Printf("%8d %12.2f %10.2f %12.3f\n", n,
				ob.Makespan/3600, ov.Makespan/3600, ov.Makespan/ob.Makespan)
		}
		fmt.Println()
	}
	fmt.Printf("total %v\n", time.Since(start).Round(time.Millisecond))
}
