// Command vtrain-cluster runs the case-study-2 multi-tenant scheduling
// experiments (Section V-B): ElasticFlow-style deadline-aware elastic
// scheduling on a 1,024-GPU cluster, with baseline (data-parallel-only)
// profiles versus vTrain-informed optimal-plan profiles.
//
// By default both systems schedule against failure-adjusted throughput
// profiles: every allocation's iteration time is derated by the goodput
// the resilience model (internal/resilience) predicts for that model at
// that GPU count, so deadlines and JCTs include failures and
// checkpoint-restart overhead. -no-resilience reproduces the ideal
// failure-free experiments; -mtbf and -ckpt-bw override the catalog's
// failure and storage assumptions.
//
//	-deadlines   Fig. 12 — deadline satisfactory ratio over traces
//	-jct         Fig. 13 — average JCT on deadline-free 32-job traces
//	-makespan    Fig. 14 — makespan with simultaneous submissions
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"vtrain/internal/cluster"
	"vtrain/internal/core"
	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/resilience"
	"vtrain/internal/taskgraph"
	"vtrain/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vtrain-cluster: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the whole command behind a testable seam: golden CLI tests drive
// it in-process with a buffer for stdout.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("vtrain-cluster", flag.ContinueOnError)
	deadlines := fs.Bool("deadlines", false, "run the Fig. 12 deadline experiments")
	jct := fs.Bool("jct", false, "run the Fig. 13 JCT experiments")
	makespan := fs.Bool("makespan", false, "run the Fig. 14 makespan experiments")
	traces := fs.Int("traces", 9, "number of synthetic traces per experiment")
	gpus := fs.Int("gpus", 1024, "total cluster GPUs")
	mtbf := fs.Float64("mtbf", 0, "per-GPU mean time between failures in hours (0 = catalog default)")
	ckptBW := fs.Float64("ckpt-bw", 0, "checkpoint storage write bandwidth in GB/s (0 = catalog default)")
	restart := fs.Float64("restart", 0, "failure-recovery latency in seconds (0 = default)")
	noRes := fs.Bool("no-resilience", false, "schedule against ideal failure-free profiles")
	contention := fs.Bool("contention", false, "model topology-aware link congestion between concurrent collectives")
	timing := fs.Bool("timing", true, "report wall-clock progress")
	cacheDir := fs.String("cache-dir", "", "persistent structural-artifact cache directory (empty = no disk cache)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *mtbf < 0 || *ckptBW < 0 || *restart < 0 {
		return fmt.Errorf("-mtbf, -ckpt-bw, and -restart must be non-negative (got %v, %v, %v)", *mtbf, *ckptBW, *restart)
	}
	if !*deadlines && !*jct && !*makespan {
		*deadlines, *jct, *makespan = true, true, true
	}

	start := time.Now()
	cl := hw.PaperCluster(*gpus / 8)
	simOpts := []core.Option{core.WithFidelity(taskgraph.OperatorLevel), core.WithContention(*contention)}
	if *cacheDir != "" {
		simOpts = append(simOpts, core.WithArtifactDir(*cacheDir))
	}
	sim, err := core.New(cl, simOpts...)
	if err != nil {
		return err
	}
	base, err := cluster.BuildProfiles(sim, cluster.Baseline, *gpus)
	if err != nil {
		return err
	}
	vt, err := cluster.BuildProfiles(sim, cluster.VTrainEnabled, *gpus)
	if err != nil {
		return err
	}
	if *timing {
		fmt.Fprintf(stdout, "offline profiles built in %v\n\n", time.Since(start).Round(time.Millisecond))
	}

	if !*noRes {
		opts := resilience.Options{MTBF: *mtbf * 3600, WriteBandwidth: *ckptBW * 1e9, Restart: *restart}
		if base, err = base.WithResilience(cl, opts); err != nil {
			return err
		}
		if vt, err = vt.WithResilience(cl, opts); err != nil {
			return err
		}
		printGoodput(stdout, cl, *gpus, opts)
	} else {
		fmt.Fprintf(stdout, "resilience: disabled — profiles assume uninterrupted runs\n\n")
	}

	runBoth := func(jobs []trace.Job) (b, v cluster.Outcome, err error) {
		ob, err := cluster.NewScheduler(*gpus, base).Run(jobs)
		if err != nil {
			return b, v, err
		}
		ov, err := cluster.NewScheduler(*gpus, vt).Run(jobs)
		if err != nil {
			return b, v, err
		}
		return ob, ov, nil
	}

	if *deadlines {
		for _, n := range []int{64, 128} {
			fmt.Fprintf(stdout, "Fig. 12 — deadline satisfactory ratio, %d jobs:\n", n)
			fmt.Fprintf(stdout, "%8s %12s %10s %8s\n", "trace", "ElasticFlow", "vTrain", "gain")
			var sb, sv float64
			for id := 1; id <= *traces; id++ {
				jobs, err := trace.Generate(id, trace.DefaultOptions(n))
				if err != nil {
					return err
				}
				ob, ov, err := runBoth(jobs)
				if err != nil {
					return err
				}
				fmt.Fprintf(stdout, "%8d %12.3f %10.3f %7.2fx\n", id,
					ob.DeadlineSatisfactoryRatio, ov.DeadlineSatisfactoryRatio,
					ov.DeadlineSatisfactoryRatio/ob.DeadlineSatisfactoryRatio)
				sb += ob.DeadlineSatisfactoryRatio
				sv += ov.DeadlineSatisfactoryRatio
			}
			fmt.Fprintf(stdout, "%8s %12.3f %10.3f %7.2fx\n\n", "avg",
				sb/float64(*traces), sv/float64(*traces), sv/sb)
		}
	}

	if *jct {
		fmt.Fprintln(stdout, "Fig. 13 — average JCT, deadline-free 32-job traces (normalized to ElasticFlow):")
		fmt.Fprintf(stdout, "%8s %12s %10s %12s\n", "trace", "base (h)", "vTrain (h)", "normalized")
		opts := trace.DefaultOptions(32)
		opts.WithDeadlines = false
		var sum float64
		for id := 1; id <= *traces; id++ {
			jobs, err := trace.Generate(id, opts)
			if err != nil {
				return err
			}
			ob, ov, err := runBoth(jobs)
			if err != nil {
				return err
			}
			norm := ov.AvgJCT / ob.AvgJCT
			sum += norm
			fmt.Fprintf(stdout, "%8d %12.2f %10.2f %12.3f\n", id, ob.AvgJCT/3600, ov.AvgJCT/3600, norm)
		}
		fmt.Fprintf(stdout, "%8s %35.3f\n\n", "avg", sum/float64(*traces))
	}

	if *makespan {
		fmt.Fprintln(stdout, "Fig. 14 — makespan, simultaneous submission (normalized to ElasticFlow):")
		fmt.Fprintf(stdout, "%8s %12s %10s %12s\n", "jobs", "base (h)", "vTrain (h)", "normalized")
		for _, n := range []int{16, 32, 48, 64, 72} {
			jobs, err := trace.Generate(100+n, trace.Options{Jobs: n, MinIterations: 500, MaxIterations: 5000})
			if err != nil {
				return err
			}
			ob, ov, err := runBoth(jobs)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%8d %12.2f %10.2f %12.3f\n", n,
				ob.Makespan/3600, ov.Makespan/3600, ov.Makespan/ob.Makespan)
		}
		fmt.Fprintln(stdout)
	}
	if *timing {
		fmt.Fprintf(stdout, "total %v\n", time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// printGoodput prints the goodput column of the derated profiles: per
// Table III model class, the checkpoint size and the effective-throughput
// fraction at one node and at the whole cluster — the range over which the
// scheduler's elastic allocations move.
func printGoodput(w io.Writer, cl hw.Cluster, gpus int, o resilience.Options) {
	mtbf := cl.Node.GPU.MTBF
	if o.MTBF > 0 {
		mtbf = o.MTBF
	}
	bw := cl.CheckpointBandwidth
	if o.WriteBandwidth > 0 {
		bw = o.WriteBandwidth
	}
	fmt.Fprintf(w, "resilience: per-GPU MTBF %gh, checkpoint bandwidth %g GB/s — profiles derated by goodput\n",
		mtbf/3600, bw/1e9)
	fmt.Fprintf(w, "%16s %10s %10s %10s\n", "model", "ckpt(GiB)", "good%@8", fmt.Sprintf("good%%@%d", gpus))
	for _, row := range model.TableIII() {
		line := fmt.Sprintf("%16s %10.1f", row.Config.Name, float64(row.Config.CheckpointBytes())/(1<<30))
		for _, g := range []int{8, gpus} {
			if mod, err := resilience.For(row.Config, cl, g, o); err == nil {
				line += fmt.Sprintf(" %10.2f", 100*mod.Goodput)
			} else {
				line += fmt.Sprintf(" %10s", "-")
			}
		}
		fmt.Fprintln(w, line)
	}
	fmt.Fprintln(w)
}
