package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// golden runs the scheduler command in-process on a small cluster and one
// trace and pins stdout — the regression lock on flag plumbing, the
// goodput table, and the experiment output format.
func golden(t *testing.T, name string, args []string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/vtrain-cluster -update` to create)", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, out.Bytes(), want)
	}
	return out.String()
}

func schedArgs(extra ...string) []string {
	args := []string{"-deadlines", "-traces", "1", "-gpus", "64", "-timing=false"}
	return append(args, extra...)
}

// TestGoldenResilient pins the default run: the goodput table (the
// "goodput column" of the derated profiles) followed by the Fig. 12
// experiment on failure-adjusted profiles.
func TestGoldenResilient(t *testing.T) {
	out := golden(t, "resilient.golden", schedArgs())
	if !strings.Contains(out, "good%@8") || !strings.Contains(out, "good%@64") {
		t.Error("resilient run missing the goodput columns")
	}
	if !strings.Contains(out, "derated by goodput") {
		t.Error("resilient run missing the derating banner")
	}
}

// TestGoldenNoResilience pins -no-resilience: ideal profiles, no goodput
// table, and the explicit disabled banner.
func TestGoldenNoResilience(t *testing.T) {
	out := golden(t, "no-resilience.golden", schedArgs("-no-resilience"))
	if strings.Contains(out, "good%@") {
		t.Error("-no-resilience run still prints goodput columns")
	}
	if !strings.Contains(out, "resilience: disabled") {
		t.Error("-no-resilience run missing the disabled banner")
	}
}

// TestGoldenMTBFOverride pins the -mtbf/-ckpt-bw plumbing end to end: the
// banner reflects the overrides rather than the catalog values.
func TestGoldenMTBFOverride(t *testing.T) {
	out := golden(t, "mtbf-override.golden", schedArgs("-mtbf", "5000", "-ckpt-bw", "5"))
	if !strings.Contains(out, "per-GPU MTBF 5000h") || !strings.Contains(out, "bandwidth 5 GB/s") {
		t.Error("override banner does not reflect -mtbf/-ckpt-bw")
	}
}
