// Command vtrain-server runs the vTrain simulator as a long-lived HTTP
// service. Unlike the one-shot CLIs, its simulator pool keeps report and
// structural caches warm across requests, so a team hammering the same
// models concentrates onto shared lowered graphs instead of each request
// paying cold lowering.
//
// Endpoints:
//
//	POST /v1/simulate    one configuration; body is a descfile description,
//	                     response is the exact `vtrain -json` report
//	POST /v1/sweep       plan-space sweep; streams NDJSON points + summary
//	POST /v1/clusterdse  joint (hardware x plan) sweep; streams NDJSON
//	GET  /healthz        liveness (503 while draining)
//	GET  /metrics        Prometheus text: cache counters, request counts,
//	                     latency histograms
//
// Usage:
//
//	vtrain-server [-addr :8080] [-max-sweeps 4] [-simulate-timeout 2m]
//
// SIGINT/SIGTERM drain gracefully: health checks fail first, then the
// listener closes once in-flight requests (including streaming sweeps)
// finish, bounded by -drain-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vtrain/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vtrain-server: ")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], log.Default(), sig, nil); err != nil {
		log.Fatal(err)
	}
}

// run is the whole command behind a testable seam: tests drive it
// in-process with a private signal channel and an onReady hook that
// reports the bound address (so -addr 127.0.0.1:0 smoke tests can find
// the listener). A value on sig starts the graceful drain; a clean drain
// returns nil.
func run(args []string, logger *log.Logger, sig <-chan os.Signal, onReady func(net.Addr)) error {
	fs := flag.NewFlagSet("vtrain-server", flag.ContinueOnError)
	fs.SetOutput(logger.Writer())
	addr := fs.String("addr", ":8080", "listen address")
	maxSweeps := fs.Int("max-sweeps", 4, "max concurrently executing sweep streams (excess gets 429)")
	simTimeout := fs.Duration("simulate-timeout", 2*time.Minute, "per-request /v1/simulate timeout")
	drainTimeout := fs.Duration("drain-timeout", 5*time.Minute, "how long shutdown waits for in-flight requests")
	maxBody := fs.Int64("max-body-bytes", 1<<20, "request body size limit")
	cacheDir := fs.String("cache-dir", "", "persistent structural-artifact cache directory (empty = no disk cache)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var eng *server.Engine
	if *cacheDir != "" {
		eng = server.NewEngine(server.WithArtifactDir(*cacheDir))
	}
	srv := server.New(server.Config{
		Engine:            eng,
		MaxBodyBytes:      *maxBody,
		SimulateTimeout:   *simTimeout,
		MaxInflightSweeps: *maxSweeps,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Printf("listening on %s", l.Addr())
	if onReady != nil {
		onReady(l.Addr())
	}

	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	select {
	case err := <-done:
		return err
	case s := <-sig:
		logger.Printf("received %v, draining (timeout %v)", s, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		logger.Printf("drained cleanly")
		return nil
	}
}
