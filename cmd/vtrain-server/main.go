// Command vtrain-server runs the vTrain simulator as a long-lived HTTP
// service. Unlike the one-shot CLIs, its simulator pool keeps report and
// structural caches warm across requests, so a team hammering the same
// models concentrates onto shared lowered graphs instead of each request
// paying cold lowering.
//
// Endpoints:
//
//	POST /v1/simulate    one configuration; body is a descfile description,
//	                     response is the exact `vtrain -json` report
//	POST /v1/sweep       plan-space sweep; streams NDJSON points + summary
//	POST /v1/clusterdse  joint (hardware x plan) sweep; streams NDJSON
//	GET  /healthz        liveness (503 while draining)
//	GET  /metrics        Prometheus text: cache counters, request counts,
//	                     latency histograms
//
// Usage:
//
//	vtrain-server [-addr :8080] [-max-sweeps 4] [-simulate-timeout 2m]
//
// SIGINT/SIGTERM drain gracefully: health checks fail first, then the
// listener closes once in-flight requests (including streaming sweeps)
// finish, bounded by -drain-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vtrain/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vtrain-server: ")

	addr := flag.String("addr", ":8080", "listen address")
	maxSweeps := flag.Int("max-sweeps", 4, "max concurrently executing sweep streams (excess gets 429)")
	simTimeout := flag.Duration("simulate-timeout", 2*time.Minute, "per-request /v1/simulate timeout")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Minute, "how long shutdown waits for in-flight requests")
	maxBody := flag.Int64("max-body-bytes", 1<<20, "request body size limit")
	cacheDir := flag.String("cache-dir", "", "persistent structural-artifact cache directory (empty = no disk cache)")
	flag.Parse()

	var eng *server.Engine
	if *cacheDir != "" {
		eng = server.NewEngine(server.WithArtifactDir(*cacheDir))
	}
	srv := server.New(server.Config{
		Engine:            eng,
		MaxBodyBytes:      *maxBody,
		SimulateTimeout:   *simTimeout,
		MaxInflightSweeps: *maxSweeps,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s", l.Addr())

	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-done:
		log.Fatal(err)
	case s := <-sig:
		log.Printf("received %v, draining (timeout %v)", s, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		log.Printf("drained cleanly")
	}
}
