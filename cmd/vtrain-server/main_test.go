package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

func testLogger(buf io.Writer) *log.Logger {
	return log.New(buf, "", 0)
}

// TestBadFlags pins the seam's error path: unknown flags surface as an
// error from run, not a process exit.
func TestBadFlags(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, testLogger(io.Discard), nil, nil); err == nil {
		t.Fatal("unknown flag did not error")
	}
}

// TestBadListenAddr pins the listener error path: an unusable -addr comes
// back as an error instead of log.Fatal.
func TestBadListenAddr(t *testing.T) {
	if err := run([]string{"-addr", "256.256.256.256:0"}, testLogger(io.Discard), nil, nil); err == nil {
		t.Fatal("unlistenable address did not error")
	}
}

// TestStartupShutdownSmoke boots the real server on an ephemeral port,
// verifies it serves /healthz, then delivers a SIGTERM through the seam's
// signal channel and requires a clean (nil-error) graceful drain.
func TestStartupShutdownSmoke(t *testing.T) {
	sig := make(chan os.Signal, 1)
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	var logs strings.Builder
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0"}, testLogger(&logs),
			sig, func(a net.Addr) { ready <- a })
	}()

	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v\nlogs:\n%s", err, logs.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", resp.StatusCode)
	}

	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful drain returned %v\nlogs:\n%s", err, logs.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}
	if !strings.Contains(logs.String(), "drained cleanly") {
		t.Errorf("drain log line missing; logs:\n%s", logs.String())
	}
}
