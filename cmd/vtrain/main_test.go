package main

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"vtrain/internal/server"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// descPath points at the shared example descfiles so the CLI goldens and
// the quickstart documentation exercise the same inputs.
func descPath(name string) string {
	return filepath.Join("..", "..", "examples", "descfiles", name)
}

func golden(t *testing.T, name string, args []string) []byte {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out, io.Discard); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	compareGolden(t, name, out.Bytes())
	return out.Bytes()
}

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/vtrain -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestGoldenHuman pins the human-readable report for a resilient H100
// run: every printed line (plan, iteration time, memory, end-to-end cost,
// failure-adjusted cost) is format-locked.
func TestGoldenHuman(t *testing.T) {
	golden(t, "human.golden", []string{"-f", descPath("megatron-18b-h100-resilience.json")})
}

// TestGoldenHumanIdeal covers the resilience-disabled path: no "with
// failures" line, and the custom (non-preset) model name.
func TestGoldenHumanIdeal(t *testing.T) {
	golden(t, "human-ideal.golden", []string{"-f", descPath("tiny-custom-ideal.json")})
}

// TestGoldenJSON pins the machine-readable report. The same bytes are
// re-checked against the HTTP server in TestCLIServerEquivalence.
func TestGoldenJSON(t *testing.T) {
	golden(t, "json.golden", []string{"-json", "-f", descPath("megatron-18b-h100-resilience.json")})
}

// TestCLIServerEquivalence is the thin-client lock: `vtrain -json` and a
// POST of the same descfile to /v1/simulate must produce byte-identical
// output. The CLI is not a reimplementation of the server — it is the
// server's engine run in-process — and this test keeps it that way.
func TestCLIServerEquivalence(t *testing.T) {
	for _, name := range []string{
		"megatron-18b-h100-resilience.json",
		"tiny-custom-ideal.json",
	} {
		t.Run(name, func(t *testing.T) {
			var cli bytes.Buffer
			if err := run([]string{"-json", "-f", descPath(name)}, &cli, io.Discard); err != nil {
				t.Fatalf("run: %v", err)
			}

			body, err := os.ReadFile(descPath(name))
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(server.New(server.Config{}).Handler())
			defer ts.Close()
			resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			got, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("/v1/simulate status %d: %s", resp.StatusCode, got)
			}
			if !bytes.Equal(got, cli.Bytes()) {
				t.Errorf("CLI and server output diverged for %s.\n--- vtrain -json ---\n%s\n--- /v1/simulate ---\n%s",
					name, cli.Bytes(), got)
			}
		})
	}
}

// TestMissingFile keeps the error path an error: no descfile, no silent
// default.
func TestMissingFile(t *testing.T) {
	if err := run(nil, io.Discard, io.Discard); err == nil {
		t.Fatal("run with no -f succeeded")
	}
}
