// Command vtrain simulates one LLM training configuration described by an
// input description file (Fig. 4) and reports the predicted single-iteration
// training time, utilization, memory, and end-to-end cost projection.
//
// It is a thin client of internal/server: the same SimulateRequest the
// long-lived vtrain-server answers over HTTP runs here in-process, so
// `vtrain -json` output and a /v1/simulate response body for the same
// descfile are byte-identical (golden-locked in main_test.go).
//
// Usage:
//
//	vtrain -f description.json [-json] [-fidelity task|operator] [-cache-dir DIR] [-cache-stats]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"vtrain/internal/core"
	"vtrain/internal/cost"
	"vtrain/internal/descfile"
	"vtrain/internal/server"
	"vtrain/internal/taskgraph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vtrain: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run is the whole command behind a testable seam: golden CLI tests drive
// it in-process with a buffer for stdout.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("vtrain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	file := fs.String("f", "", "path to the input description file (JSON)")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	fidelity := fs.String("fidelity", "task", "simulation granularity: task or operator")
	contention := fs.Bool("contention", false, "model topology-aware link congestion between concurrent collectives")
	tracePath := fs.String("trace", "", "write the execution timeline as a Chrome trace to this file")
	cacheDir := fs.String("cache-dir", "", "persistent structural-artifact cache directory (empty = no disk cache)")
	cacheStats := fs.Bool("cache-stats", false, "print the tiered cache counters on stderr after the run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		fs.Usage()
		return fmt.Errorf("missing -f description file")
	}
	desc, err := descfile.Load(*file)
	if err != nil {
		return err
	}
	req := server.SimulateRequest{Description: desc, Fidelity: *fidelity, Contention: *contention}

	// One-shot process: nothing repeats, so skip the result cache. A
	// -cache-dir still pays off across *processes*: the lowered graph is
	// loaded from (or persisted to) the artifact tier.
	opts := []server.EngineOption{server.WithSimulatorOptions(core.WithCacheSize(0))}
	if *cacheDir != "" {
		opts = append(opts, server.WithArtifactDir(*cacheDir))
	}
	eng := server.NewEngine(opts...)

	var out server.SimulateOutcome
	if *tracePath != "" {
		var spans []taskgraph.Span
		out, spans, err = eng.SimulateTrace(req)
		if err != nil {
			return err
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := taskgraph.WriteChromeTrace(f, spans); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %d spans to %s\n", len(spans), *tracePath)
	} else {
		out, err = eng.Simulate(req)
		if err != nil {
			return err
		}
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out.Result()); err != nil {
			return err
		}
		if *cacheStats {
			printCacheStats(stderr, eng.CacheStats())
		}
		return nil
	}

	rep := out.Report
	fmt.Fprintf(stdout, "model:           %s\n", out.Model)
	fmt.Fprintf(stdout, "plan:            %s  (%d GPUs)\n", out.Plan, out.Plan.GPUs())
	fmt.Fprintf(stdout, "iteration time:  %.3f s  (%d tasks)\n", rep.IterTime, rep.Tasks)
	fmt.Fprintf(stdout, "GPU utilization: %.2f %%\n", 100*rep.Utilization)
	fmt.Fprintf(stdout, "compute / comm:  %.3f s / %.3f s per stage, bubble %.1f %%\n",
		rep.ComputeSeconds, rep.CommSeconds, 100*rep.BubbleFraction)
	fmt.Fprintf(stdout, "peak memory:     %.1f GiB per GPU (fits: %v)\n",
		float64(rep.PeakMemoryBytes)/(1<<30), rep.FitsMemory)
	if out.Training != nil {
		fmt.Fprintf(stdout, "end-to-end:      %d iterations, %.2f days, $%.2fM ($%.0f/hour)\n",
			out.Training.Iterations, out.Training.Days, out.Training.TotalDollars/1e6, out.Training.DollarsPerHour)
	}
	if out.Resilience != nil {
		res := out.Resilience
		fmt.Fprintf(stdout, "with failures:   %.2f days, $%.2fM at %.2f%% goodput (ckpt every %s, ~%.0f failures expected)\n",
			res.EffectiveDays, res.EffectiveDollars/1e6, 100*res.GoodputFraction,
			cost.Duration(res.CheckpointIntervalSeconds).Round(time.Second), res.ExpectedFailures)
	}
	if *cacheStats {
		printCacheStats(stderr, eng.CacheStats())
	}
	return nil
}

// printCacheStats renders the full tiered counter set in one place:
// plan-level reports, shape-keyed structures (with the graphs actually
// lowered — misses served from disk don't lower), the persistent disk
// tier, and batched replay. Written to stderr so -json output stays a
// clean report document.
func printCacheStats(w io.Writer, st core.CacheStats) {
	fmt.Fprintf(w, "cache: reports %d hit / %d miss\n", st.ReportHits, st.ReportMisses)
	fmt.Fprintf(w, "cache: structures %d hit / %d miss (%d graphs lowered)\n",
		st.StructHits, st.StructMisses, st.Lowerings)
	fmt.Fprintf(w, "cache: disk %d hit / %d miss / %d written\n",
		st.DiskHits, st.DiskMisses, st.DiskWrites)
	fmt.Fprintf(w, "cache: batched replay %d plans over %d passes\n",
		st.BatchedPlans, st.BatchReplays)
}
