// Command vtrain simulates one LLM training configuration described by an
// input description file (Fig. 4) and reports the predicted single-iteration
// training time, utilization, memory, and end-to-end cost projection.
//
// Usage:
//
//	vtrain -f description.json [-json] [-fidelity task|operator]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"vtrain/internal/core"
	"vtrain/internal/cost"
	"vtrain/internal/descfile"
	"vtrain/internal/resilience"
	"vtrain/internal/taskgraph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vtrain: ")

	file := flag.String("f", "", "path to the input description file (JSON)")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	fidelity := flag.String("fidelity", "task", "simulation granularity: task or operator")
	tracePath := flag.String("trace", "", "write the execution timeline as a Chrome trace to this file")
	flag.Parse()

	if *file == "" {
		flag.Usage()
		os.Exit(2)
	}
	desc, err := descfile.Load(*file)
	if err != nil {
		log.Fatal(err)
	}
	m, plan, cluster, err := desc.Resolve()
	if err != nil {
		log.Fatal(err)
	}

	fid := taskgraph.TaskLevel
	switch *fidelity {
	case "task":
	case "operator":
		fid = taskgraph.OperatorLevel
	default:
		log.Fatalf("unknown fidelity %q (want task or operator)", *fidelity)
	}

	// One-shot simulation: nothing repeats, so skip the result cache.
	sim, err := core.New(cluster, core.WithFidelity(fid), core.WithCacheSize(0))
	if err != nil {
		log.Fatal(err)
	}
	var rep core.Report
	if *tracePath != "" {
		var spans []taskgraph.Span
		rep, spans, err = sim.SimulateTrace(m, plan)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := taskgraph.WriteChromeTrace(f, spans); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d spans to %s\n", len(spans), *tracePath)
	} else {
		rep, err = sim.Simulate(m, plan)
		if err != nil {
			log.Fatal(err)
		}
	}

	var train *cost.Training
	var res *cost.Resilience
	if desc.TotalTokens > 0 {
		tr := cost.Train(m, plan.GlobalBatch, rep.IterTime, plan.GPUs(), desc.TotalTokens, cluster)
		train = &tr
		if opts, enabled := desc.ResilienceOptions(); enabled {
			mod, err := resilience.For(m, cluster, plan.GPUs(), opts)
			if err != nil {
				log.Fatal(err)
			}
			r := cost.ApplyResilience(tr, mod)
			res = &r
		}
	}

	if *asJSON {
		out := struct {
			Model         string           `json:"model"`
			Plan          string           `json:"plan"`
			GPUs          int              `json:"gpus"`
			IterTime      float64          `json:"iteration_time_s"`
			Utilization   float64          `json:"gpu_utilization"`
			PeakMemoryGiB float64          `json:"peak_memory_gib"`
			FitsMemory    bool             `json:"fits_memory"`
			Tasks         int              `json:"tasks"`
			Training      *cost.Training   `json:"training,omitempty"`
			Resilience    *cost.Resilience `json:"resilience,omitempty"`
		}{
			Model: m.String(), Plan: plan.String(), GPUs: plan.GPUs(),
			IterTime: rep.IterTime, Utilization: rep.Utilization,
			PeakMemoryGiB: float64(rep.PeakMemoryBytes) / (1 << 30),
			FitsMemory:    rep.FitsMemory, Tasks: rep.Tasks, Training: train,
			Resilience: res,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("model:           %s\n", m)
	fmt.Printf("plan:            %s  (%d GPUs)\n", plan, plan.GPUs())
	fmt.Printf("iteration time:  %.3f s  (%d tasks)\n", rep.IterTime, rep.Tasks)
	fmt.Printf("GPU utilization: %.2f %%\n", 100*rep.Utilization)
	fmt.Printf("compute / comm:  %.3f s / %.3f s per stage, bubble %.1f %%\n",
		rep.ComputeSeconds, rep.CommSeconds, 100*rep.BubbleFraction)
	fmt.Printf("peak memory:     %.1f GiB per GPU (fits: %v)\n",
		float64(rep.PeakMemoryBytes)/(1<<30), rep.FitsMemory)
	if train != nil {
		fmt.Printf("end-to-end:      %d iterations, %.2f days, $%.2fM ($%.0f/hour)\n",
			train.Iterations, train.Days, train.TotalDollars/1e6, train.DollarsPerHour)
	}
	if res != nil {
		fmt.Printf("with failures:   %.2f days, $%.2fM at %.2f%% goodput (ckpt every %s, ~%.0f failures expected)\n",
			res.EffectiveDays, res.EffectiveDollars/1e6, 100*res.GoodputFraction,
			cost.Duration(res.CheckpointIntervalSeconds).Round(time.Second), res.ExpectedFailures)
	}
}
