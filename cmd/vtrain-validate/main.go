// Command vtrain-validate regenerates the paper's accuracy experiments:
//
//	-fig1    Fig. 1  — GPT-3 175B training days vs. GPU utilization
//	-single  Fig. 9a — 1,440-point single-node validation (MAPE, R²)
//	-multi   Fig. 9b — 116-point multi-node validation (MAPE, R²)
//
// With -csv, the scatter points (measured, predicted) are written out for
// plotting.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"vtrain/internal/cost"
	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/testbed"
	"vtrain/internal/validate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vtrain-validate: ")

	fig1 := flag.Bool("fig1", false, "print Fig. 1: training time vs. utilization")
	single := flag.Bool("single", false, "run the Fig. 9a single-node campaign")
	multi := flag.Bool("multi", false, "run the Fig. 9b multi-node campaign")
	seed := flag.Uint64("seed", 42, "testbed noise seed")
	csvPath := flag.String("csv", "", "write (measured, predicted) pairs to this CSV file")
	flag.Parse()

	if !*fig1 && !*single && !*multi {
		*fig1, *single, *multi = true, true, true
	}

	if *fig1 {
		printFig1()
	}
	if *single {
		runCampaign("Fig. 9a single-node (8 GPUs)", hw.PaperCluster(1), validate.SingleNodeCases(), *seed, *csvPath, "8.37%, R²=0.9896")
	}
	if *multi {
		runCampaign("Fig. 9b multi-node (512 GPUs)", hw.PaperCluster(64), validate.MultiNodeCases(), *seed, *csvPath, "14.73%, R²=0.9887")
	}
}

func printFig1() {
	m := model.GPT3175B()
	g := hw.A100SXM80GB()
	fmt.Println("Fig. 1 — GPT-3 175B on 1,024 A100s, 300B tokens:")
	fmt.Printf("%12s %15s\n", "util (%)", "training (days)")
	for u := 30; u <= 70; u += 5 {
		days := cost.TimeForUtilization(m, 300e9, 1024, float64(u)/100, g)
		fmt.Printf("%12d %15.1f\n", u, days)
	}
	fmt.Println()
}

func runCampaign(name string, cluster hw.Cluster, cases []validate.Case, seed uint64, csvPath, paper string) {
	start := time.Now()
	res, err := validate.Run(cluster, cases, testbed.DefaultConfig(), seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d points in %v\n", name, len(cases), time.Since(start).Round(time.Millisecond))
	fmt.Printf("  MAPE = %.2f %%   R² = %.4f   (paper: %s)\n\n", res.MAPE, res.R2, paper)

	if csvPath != "" {
		path := csvPath + "." + sanitize(name) + ".csv"
		if err := dump(path, res); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wrote %s\n", path)
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func dump(path string, res validate.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"measured_s", "predicted_s", "model", "plan"}); err != nil {
		return err
	}
	for i := range res.Measured {
		err := w.Write([]string{
			strconv.FormatFloat(res.Measured[i], 'f', 6, 64),
			strconv.FormatFloat(res.Predicted[i], 'f', 6, 64),
			res.Cases[i].Model.Name,
			res.Cases[i].Plan.String(),
		})
		if err != nil {
			return err
		}
	}
	return nil
}
