// Command vtrain-dse runs the case-study-1 design-space exploration
// (Section V-A): it sweeps the (t, d, p, m) space for a model, prints the
// fastest and most cost-effective plans, and can dump every design point
// for Fig. 10 / Fig. 11 style plots.
//
// Usage:
//
//	vtrain-dse -model mt-nlg-530b -batch 1920 -nodes 6720 -tokens 270e9 [-top 10] [-csv points.csv]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"time"

	"vtrain/internal/core"
	"vtrain/internal/cost"
	"vtrain/internal/descfile"
	"vtrain/internal/dse"
	"vtrain/internal/hw"
	"vtrain/internal/taskgraph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vtrain-dse: ")

	preset := flag.String("model", "mt-nlg-530b", "model preset (see descfile presets)")
	batch := flag.Int("batch", 1920, "global batch size in sequences")
	nodes := flag.Int("nodes", 6720, "cluster nodes (8 GPUs each); bounds the sweep")
	tokens := flag.Float64("tokens", 270e9, "total training tokens for cost projection")
	top := flag.Int("top", 10, "how many fastest plans to print")
	maxGPUs := flag.Int("max-gpus", 0, "optional cap on t*d*p")
	csvPath := flag.String("csv", "", "write every design point to this CSV file")
	flag.Parse()

	m, err := descfile.LookupModel(*preset)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := core.New(hw.PaperCluster(*nodes), core.WithFidelity(taskgraph.OperatorLevel))
	if err != nil {
		log.Fatal(err)
	}

	space := dse.DefaultSpace(m, *batch)
	space.MaxGPUs = *maxGPUs
	space.MaxMicroBatches = 512

	start := time.Now()
	// Stream the sweep so long explorations show progress; points arrive
	// in completion order and are ranked afterwards. The cache lines keep
	// the two levels of reuse visible: reports deduplicate repeated
	// (model, plan) configurations, structures deduplicate plans sharing a
	// topology — the shape-keyed lowering cache.
	var points []dse.Point
	err = dse.ExploreFunc(sim, m, space, func(p dse.Point) {
		points = append(points, p)
		if len(points)%1000 == 0 {
			st := sim.CacheStats()
			fmt.Fprintf(os.Stderr, "... %d points evaluated (%v) — reports %d hit / %d miss, structures %d hit / %d lowered\n",
				len(points), time.Since(start).Round(time.Millisecond),
				st.ReportHits, st.ReportMisses, st.StructHits, st.StructMisses)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Better(points[j]) })
	elapsed := time.Since(start)
	st := sim.CacheStats()
	fmt.Printf("explored %d design points in %v (%d graphs lowered, %.1f%% structural-cache hit rate)\n",
		len(points), elapsed.Round(time.Millisecond),
		st.StructMisses, 100*float64(st.StructHits)/float64(max(st.StructHits+st.StructMisses, 1)))
	fmt.Printf("batched replay: %d plans over %d replays, mean batch width %.1f — plans sharing a shape replay one graph together\n\n",
		st.BatchedPlans, st.BatchReplays,
		float64(st.BatchedPlans)/float64(max(st.BatchReplays, 1)))

	fmt.Printf("%-28s %8s %8s %7s %8s %10s %9s\n",
		"plan", "GPUs", "iter(s)", "util%", "days", "$/hour", "$total(M)")
	n := *top
	if n > len(points) {
		n = len(points)
	}
	for _, p := range points[:n] {
		tr := cost.Train(m, *batch, p.Report.IterTime, p.Plan.GPUs(), uint64(*tokens), sim.Cluster())
		fmt.Printf("%-28s %8d %8.2f %7.2f %8.2f %10.0f %9.2f\n",
			p.Plan, p.Plan.GPUs(), p.Report.IterTime, 100*p.Report.Utilization,
			tr.Days, tr.DollarsPerHour, tr.TotalDollars/1e6)
	}

	if best, tr, ok := dse.Cheapest(sim, points, uint64(*tokens)); ok {
		fmt.Printf("\ncheapest plan: %s — %.2f days, $%.2fM, %.2f%% utilization\n",
			best.Plan, tr.Days, tr.TotalDollars/1e6, 100*tr.Utilization)
	}

	if *csvPath != "" {
		if err := dumpCSV(*csvPath, sim, points, m.Name, *batch, uint64(*tokens)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d points to %s\n", len(points), *csvPath)
	}
}

func dumpCSV(path string, sim *core.Simulator, points []dse.Point, name string, batch int, tokens uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"model", "t", "d", "p", "m", "gpus", "iter_s", "util", "days", "dollars"}); err != nil {
		return err
	}
	for _, p := range points {
		tr := cost.Train(p.Report.Model, batch, p.Report.IterTime, p.Plan.GPUs(), tokens, sim.Cluster())
		rec := []string{
			name,
			strconv.Itoa(p.Plan.Tensor), strconv.Itoa(p.Plan.Data),
			strconv.Itoa(p.Plan.Pipeline), strconv.Itoa(p.Plan.MicroBatch),
			strconv.Itoa(p.Plan.GPUs()),
			strconv.FormatFloat(p.Report.IterTime, 'f', 4, 64),
			strconv.FormatFloat(p.Report.Utilization, 'f', 4, 64),
			strconv.FormatFloat(tr.Days, 'f', 2, 64),
			strconv.FormatFloat(tr.TotalDollars, 'f', 0, 64),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}
