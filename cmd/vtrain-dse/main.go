// Command vtrain-dse runs the case-study-1 design-space exploration
// (Section V-A): it sweeps the (t, d, p, m) space for a model, prints the
// fastest and most cost-effective plans, and can dump every design point
// for Fig. 10 / Fig. 11 style plots.
//
// It is a thin client of internal/server: the same SweepRequest the
// long-lived vtrain-server streams over /v1/sweep runs here in-process.
//
// Usage:
//
//	vtrain-dse -model mt-nlg-530b -batch 1920 -nodes 6720 -tokens 270e9 [-top 10] [-csv points.csv]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"time"

	"vtrain/internal/cost"
	"vtrain/internal/descfile"
	"vtrain/internal/dse"
	"vtrain/internal/hw"
	"vtrain/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vtrain-dse: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run is the whole command behind a testable seam: golden CLI tests drive
// it in-process with a buffer for stdout.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("vtrain-dse", flag.ContinueOnError)
	fs.SetOutput(stderr)
	preset := fs.String("model", "mt-nlg-530b", "model preset (see descfile presets)")
	batch := fs.Int("batch", 1920, "global batch size in sequences")
	nodes := fs.Int("nodes", 6720, "cluster nodes (8 GPUs each); bounds the sweep")
	tokens := fs.Float64("tokens", 270e9, "total training tokens for cost projection")
	top := fs.Int("top", 10, "how many fastest plans to print")
	maxGPUs := fs.Int("max-gpus", 0, "optional cap on t*d*p")
	csvPath := fs.String("csv", "", "write every design point to this CSV file")
	progress := fs.Bool("progress", true, "report sweep progress on stderr")
	contention := fs.Bool("contention", false, "model topology-aware link congestion between concurrent collectives")
	cacheDir := fs.String("cache-dir", "", "persistent structural-artifact cache directory (empty = no disk cache)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var engOpts []server.EngineOption
	if *cacheDir != "" {
		engOpts = append(engOpts, server.WithArtifactDir(*cacheDir))
	}
	eng := server.NewEngine(engOpts...)
	sweep, err := eng.PrepareSweep(server.SweepRequest{
		Model:       descfile.ModelSection{Preset: *preset},
		Cluster:     descfile.ClusterSection{Nodes: *nodes},
		GlobalBatch: *batch,
		TotalTokens: uint64(*tokens),
		MaxGPUs:     *maxGPUs,
		Contention:  *contention,
	})
	if err != nil {
		return err
	}
	cluster := sweep.Cluster()

	start := time.Now()
	// Stream the sweep so long explorations show progress; points arrive
	// in completion order and are ranked afterwards. The cache lines keep
	// the two levels of reuse visible: reports deduplicate repeated
	// (model, plan) configurations, structures deduplicate plans sharing a
	// topology — the shape-keyed lowering cache.
	var points []dse.Point
	sum, err := sweep.Run(func(p dse.Point) {
		points = append(points, p)
		if *progress && len(points)%1000 == 0 {
			st := sweep.CacheStats()
			fmt.Fprintf(stderr, "... %d points evaluated (%v) — reports %d hit / %d miss, structures %d hit / %d lowered\n",
				len(points), time.Since(start).Round(time.Millisecond),
				st.ReportHits, st.ReportMisses, st.StructHits, st.StructMisses)
		}
	})
	if err != nil {
		return err
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Better(points[j]) })
	elapsed := time.Since(start)
	st := sum.Cache
	fmt.Fprintf(stdout, "explored %d design points in %v (%d graphs lowered, %.1f%% structural-cache hit rate)\n",
		len(points), elapsed.Round(time.Millisecond),
		st.Lowerings, 100*float64(st.StructHits)/float64(max(st.StructHits+st.StructMisses, 1)))
	fmt.Fprintf(stdout, "batched replay: %d plans over %d replays, mean batch width %.1f — plans sharing a shape replay one graph together\n\n",
		st.BatchedPlans, st.BatchReplays,
		float64(st.BatchedPlans)/float64(max(st.BatchReplays, 1)))

	fmt.Fprintf(stdout, "%-28s %8s %8s %7s %8s %10s %9s\n",
		"plan", "GPUs", "iter(s)", "util%", "days", "$/hour", "$total(M)")
	n := *top
	if n > len(points) {
		n = len(points)
	}
	for _, p := range points[:n] {
		tr := cost.Train(p.Report.Model, *batch, p.Report.IterTime, p.Plan.GPUs(), uint64(*tokens), cluster)
		fmt.Fprintf(stdout, "%-28s %8d %8.2f %7.2f %8.2f %10.0f %9.2f\n",
			p.Plan, p.Plan.GPUs(), p.Report.IterTime, 100*p.Report.Utilization,
			tr.Days, tr.DollarsPerHour, tr.TotalDollars/1e6)
	}

	if best, tr, ok := dse.CheapestOn(cluster, points, uint64(*tokens)); ok {
		fmt.Fprintf(stdout, "\ncheapest plan: %s — %.2f days, $%.2fM, %.2f%% utilization\n",
			best.Plan, tr.Days, tr.TotalDollars/1e6, 100*tr.Utilization)
	}

	if *csvPath != "" {
		if err := dumpCSV(*csvPath, cluster, points, *batch, uint64(*tokens)); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d points to %s\n", len(points), *csvPath)
	}
	return nil
}

func dumpCSV(path string, c hw.Cluster, points []dse.Point, batch int, tokens uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"model", "t", "d", "p", "m", "gpus", "iter_s", "util", "days", "dollars"}); err != nil {
		return err
	}
	for _, p := range points {
		tr := cost.Train(p.Report.Model, batch, p.Report.IterTime, p.Plan.GPUs(), tokens, c)
		rec := []string{
			p.Report.Model.Name,
			strconv.Itoa(p.Plan.Tensor), strconv.Itoa(p.Plan.Data),
			strconv.Itoa(p.Plan.Pipeline), strconv.Itoa(p.Plan.MicroBatch),
			strconv.Itoa(p.Plan.GPUs()),
			strconv.FormatFloat(p.Report.IterTime, 'f', 4, 64),
			strconv.FormatFloat(p.Report.Utilization, 'f', 4, 64),
			strconv.FormatFloat(tr.Days, 'f', 2, 64),
			strconv.FormatFloat(tr.TotalDollars, 'f', 0, 64),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}
