package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// elapsedRE matches the wall-clock figure in the summary line ("explored N
// design points in 12ms (...)"), the only nondeterministic part of stdout.
var elapsedRE = regexp.MustCompile(`design points in [^(]+\(`)

// golden runs the command in-process, scrubs the elapsed time, and compares
// stdout (and, when csvName is non-empty, the CSV it wrote) against pinned
// golden files — the regression lock on flag plumbing and column formats.
func golden(t *testing.T, name, csvName string, args []string) {
	t.Helper()
	if csvName != "" {
		csvPath := filepath.Join(t.TempDir(), "points.csv")
		args = append(args, "-csv", csvPath)
		defer func() {
			data, err := os.ReadFile(csvPath)
			if err != nil {
				t.Fatal(err)
			}
			compareGolden(t, csvName, data)
		}()
	}
	var out bytes.Buffer
	if err := run(args, &out, io.Discard); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	stdout := elapsedRE.ReplaceAll(out.Bytes(), []byte("design points in ELAPSED ("))
	if csvName != "" {
		// The trailing "wrote N points to <tempdir>" line embeds the temp
		// path; strip it before comparing.
		if j := bytes.LastIndex(stdout, []byte("wrote ")); j >= 0 {
			stdout = stdout[:j]
		}
	}
	compareGolden(t, name, stdout)
}

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/vtrain-dse -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// sweepArgs is a sweep small enough for a unit test but wide enough to
// exercise the ranking table, the cheapest-plan line, and the CSV dump.
func sweepArgs(extra ...string) []string {
	args := []string{
		"-model", "megatron-3.6b", "-batch", "64", "-tokens", "20e9",
		"-nodes", "2", "-top", "5", "-progress=false",
	}
	return append(args, extra...)
}

// TestGoldenSweep pins the default plan-space sweep output: cache summary
// lines, the ranked plan table, the cheapest-plan line, and the CSV.
func TestGoldenSweep(t *testing.T) {
	golden(t, "sweep.golden", "sweep.csv.golden", sweepArgs())
}

// TestGoldenSweepContended pins the -contention output and holds the two
// goldens to the knob's contract: the contended sweep explores the same
// points through the same number of lowerings, and no plan gets faster.
func TestGoldenSweepContended(t *testing.T) {
	golden(t, "sweep-contended.golden", "", sweepArgs("-contention"))

	def, err := os.ReadFile(filepath.Join("testdata", "sweep.golden"))
	if err != nil {
		t.Fatal(err)
	}
	cont, err := os.ReadFile(filepath.Join("testdata", "sweep-contended.golden"))
	if err != nil {
		t.Fatal(err)
	}
	defHead, contHead := summaryLine(string(def)), summaryLine(string(cont))
	if defHead == "" || contHead == "" {
		t.Fatal("no summary lines parsed from goldens")
	}
	if defHead != contHead {
		t.Errorf("contention changed the exploration itself, not just timing:\n ideal: %s\n  cont: %s", defHead, contHead)
	}
}

// summaryLine returns the "explored N design points ..." header with the
// elapsed scrub already applied — point count, lowerings, and hit rate.
func summaryLine(out string) string {
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "explored ") {
			return line
		}
	}
	return ""
}

// TestBadFlags pins the seam's error path: unknown flags surface as an
// error from run, not a process exit.
func TestBadFlags(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, io.Discard, io.Discard); err == nil {
		t.Fatal("unknown flag did not error")
	}
}
