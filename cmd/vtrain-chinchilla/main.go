// Command vtrain-chinchilla runs case study 3 (Section V-C / Table IV):
// naive versus effective-utilization compute-optimal model sizing under a
// fixed compute budget.
//
// Usage:
//
//	vtrain-chinchilla [-gpus 3360] [-days 30] [-batch 3360]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"vtrain/internal/chinchilla"
	"vtrain/internal/core"
	"vtrain/internal/hw"
	"vtrain/internal/taskgraph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vtrain-chinchilla: ")

	gpus := flag.Int("gpus", 3360, "GPU budget (the paper uses 420 DGX A100 nodes)")
	days := flag.Float64("days", 30, "wall-clock budget in days")
	batch := flag.Int("batch", 3360, "global batch in sequences")
	cacheDir := flag.String("cache-dir", "", "persistent structural-artifact cache directory (empty = no disk cache)")
	flag.Parse()

	if *gpus%8 != 0 {
		log.Fatalf("gpus must be a multiple of 8, got %d", *gpus)
	}
	simOpts := []core.Option{core.WithFidelity(taskgraph.OperatorLevel)}
	if *cacheDir != "" {
		simOpts = append(simOpts, core.WithArtifactDir(*cacheDir))
	}
	sim, err := core.New(hw.PaperCluster(*gpus/8), simOpts...)
	if err != nil {
		log.Fatal(err)
	}

	c := chinchilla.Budget(*gpus, *days, sim.Cluster().Node.GPU.PeakTensorFLOPS)
	fmt.Printf("compute budget: %d GPUs x %.0f days = %.3g FLOPs (at 100%% utility)\n", *gpus, *days, c)
	n, tok := chinchilla.NaivePoint(c)
	fmt.Printf("naive Chinchilla point: N = %.2fB params, T = %.0fB tokens\n\n", n/1e9, tok/1e9)

	start := time.Now()
	res, err := chinchilla.Search(sim, *gpus, *batch, *days)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Table IV — compute-optimal Chinchilla points under effective utilization:")
	fmt.Printf("%7s %5s %10s %10s %-22s %7s %12s\n",
		"h", "L", "params(B)", "tokens(B)", "optimal (t,d,p,m)", "util%", "days")
	for _, p := range res.Points {
		fmt.Printf("%7d %5d %10.2f %10.0f %-22s %7.2f %12.1f\n",
			p.Model.Hidden, p.Model.Layers, p.Params/1e9, p.Tokens/1e9,
			fmt.Sprintf("(%d,%d,%d,%d)", p.Plan.Tensor, p.Plan.Data, p.Plan.Pipeline, p.Plan.MicroBatch),
			100*p.Utilization, p.Days)
	}
	fmt.Printf("\nrealistic compute-optimal model: %.2fB params (%.0f%% smaller than the naive %.2fB), trains %.0fB tokens in %.1f days\n",
		res.Optimal.Params/1e9, 100*(1-res.Optimal.Params/res.NaiveParams),
		res.NaiveParams/1e9, res.Optimal.Tokens/1e9, res.Optimal.Days)
	fmt.Printf("search took %v\n", time.Since(start).Round(time.Millisecond))
}
