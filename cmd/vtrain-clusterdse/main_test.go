package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// golden runs the command in-process and compares stdout (and, when
// csvName is non-empty, the CSV it wrote) against pinned golden files —
// the regression lock on flag plumbing and column formats.
func golden(t *testing.T, name, csvName string, args []string) {
	t.Helper()
	if csvName != "" {
		csvPath := filepath.Join(t.TempDir(), "points.csv")
		args = append(args, "-csv", csvPath)
		defer func() {
			data, err := os.ReadFile(csvPath)
			if err != nil {
				t.Fatal(err)
			}
			compareGolden(t, csvName, data)
		}()
	}
	var out bytes.Buffer
	if err := run(args, &out, io.Discard); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	stdout := out.Bytes()
	if csvName != "" {
		// The trailing "wrote N points to <tempdir>" line embeds the
		// temp path; strip it before comparing.
		if j := bytes.LastIndex(stdout, []byte("\nwrote ")); j >= 0 {
			stdout = stdout[:j+1]
		}
	}
	compareGolden(t, name, stdout)
}

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/vtrain-clusterdse -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// sweepArgs is a sweep small enough for a unit test but wide enough to
// cover two GPU generations, the deadline path, and the CSV dump.
func sweepArgs(extra ...string) []string {
	args := []string{
		"-model", "megatron-3.6b", "-batch", "64", "-tokens", "20e9",
		"-nodes", "1,2", "-offerings", "a100-sxm-80gb,h100-sxm-80gb",
		"-deadline", "30", "-top", "5", "-progress=false",
	}
	return append(args, extra...)
}

// TestGoldenResilient pins the default (failure-adjusted) output: the
// goodput column, effective days/dollars, and the CSV's resilience fields.
func TestGoldenResilient(t *testing.T) {
	golden(t, "resilient.golden", "resilient.csv.golden", sweepArgs())
}

// TestGoldenNoResilience pins the -no-resilience output: the pre-PR
// columns, ideal economics, and empty resilience CSV fields.
func TestGoldenNoResilience(t *testing.T) {
	golden(t, "no-resilience.golden", "no-resilience.csv.golden", sweepArgs("-no-resilience"))
}

// TestGoldenOverrides pins the -mtbf/-ckpt-bw flag plumbing: a harsher
// failure environment must lower every goodput below the default run's.
func TestGoldenOverrides(t *testing.T) {
	golden(t, "overrides.golden", "", sweepArgs("-mtbf", "2000", "-ckpt-bw", "1"))

	def, err := os.ReadFile(filepath.Join("testdata", "resilient.golden"))
	if err != nil {
		t.Fatal(err)
	}
	hard, err := os.ReadFile(filepath.Join("testdata", "overrides.golden"))
	if err != nil {
		t.Fatal(err)
	}
	defGood, hardGood := goodputColumn(t, string(def)), goodputColumn(t, string(hard))
	if len(defGood) == 0 || len(hardGood) == 0 {
		t.Fatal("no goodput columns parsed from goldens")
	}
	max := func(xs []float64) float64 {
		m := xs[0]
		for _, x := range xs {
			if x > m {
				m = x
			}
		}
		return m
	}
	if max(hardGood) >= max(defGood) {
		t.Errorf("override run best goodput %.2f not below default %.2f", max(hardGood), max(defGood))
	}
}

// goodputColumn extracts the good% column from ranked-table lines.
func goodputColumn(t *testing.T, out string) []float64 {
	t.Helper()
	var vals []float64
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		// offering nodes GPUs plan iter util good eff-days eff-$
		if len(f) == 9 && (strings.HasPrefix(f[0], "a100") || strings.HasPrefix(f[0], "h100") || strings.HasPrefix(f[0], "v100")) {
			g, err := strconv.ParseFloat(f[6], 64)
			if err != nil {
				continue
			}
			vals = append(vals, g)
		}
	}
	return vals
}
