// Command vtrain-clusterdse runs the joint cluster-design exploration: it
// sweeps (GPU generation x node count x interconnect x parallel plan) for a
// model, prices every candidate with the hardware catalog, and prints the
// cost-ranked candidates, the (cost, days) Pareto frontier, and — given a
// deadline — the cheapest cluster that meets it. This is the paper's
// Table II question ("which cluster should train this model?") opened into
// a search instead of a hand comparison.
//
// Usage:
//
//	vtrain-clusterdse -model megatron-18.4b -batch 1024 -tokens 300e9 \
//	    -nodes 4,8,16,32 [-offerings all] [-deadline 30] [-cross-interconnects] \
//	    [-top 10] [-csv points.csv]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"vtrain/internal/clusterdse"
	"vtrain/internal/core"
	"vtrain/internal/descfile"
	"vtrain/internal/hw"
	"vtrain/internal/taskgraph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vtrain-clusterdse: ")

	preset := flag.String("model", "megatron-18.4b", "model preset (see descfile presets)")
	batch := flag.Int("batch", 1024, "global batch size in sequences")
	tokens := flag.Float64("tokens", 300e9, "total training tokens for cost projection")
	nodesList := flag.String("nodes", "4,8,16,32", "comma-separated cluster sizes to provision, in nodes")
	offerings := flag.String("offerings", "all", `comma-separated catalog offerings, or "all"`)
	cross := flag.Bool("cross-interconnects", false, "also try every node type with every interconnect tier")
	deadline := flag.Float64("deadline", 0, "training deadline in days (0 = no deadline)")
	top := flag.Int("top", 10, "how many cheapest configurations to print")
	csvPath := flag.String("csv", "", "write every design point to this CSV file")
	flag.Parse()

	m, err := descfile.LookupModel(*preset)
	if err != nil {
		log.Fatal(err)
	}
	nodeCounts, err := parseInts(*nodesList)
	if err != nil {
		log.Fatal(err)
	}
	offs, err := selectOfferings(*offerings, *cross)
	if err != nil {
		log.Fatal(err)
	}

	space := clusterdse.DefaultSpace(m, *batch, uint64(*tokens), nodeCounts)
	space.Offerings = offs

	sim, err := clusterdse.NewSimulator(space, core.WithFidelity(taskgraph.OperatorLevel))
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	var points []clusterdse.Point
	err = clusterdse.ExploreFunc(sim, m, space, func(p clusterdse.Point) {
		points = append(points, p)
		if len(points)%1000 == 0 {
			st := sim.CacheStats()
			fmt.Fprintf(os.Stderr, "... %d points evaluated (%v) — structures %d hit / %d lowered\n",
				len(points), time.Since(start).Round(time.Millisecond), st.StructHits, st.StructMisses)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	sorted := append([]clusterdse.Point(nil), points...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Better(sorted[j]) })
	st := sim.CacheStats()
	fmt.Printf("explored %d (offering x nodes x plan) points across %d hardware candidates in %v\n",
		len(points), len(offs)*len(nodeCounts), time.Since(start).Round(time.Millisecond))
	fmt.Printf("structural cache: %d graphs lowered, %.1f%% hit rate — hardware variants of a shape share one lowering\n\n",
		st.StructMisses, 100*float64(st.StructHits)/float64(max(st.StructHits+st.StructMisses, 1)))

	fmt.Printf("%d cheapest configurations for %s (%.0fB tokens):\n", *top, m, *tokens/1e9)
	printHeader()
	for i, p := range sorted {
		if i >= *top {
			break
		}
		printPoint(p)
	}

	front := clusterdse.ParetoFrontier(sorted)
	fmt.Printf("\nPareto frontier — no cluster is both cheaper and faster (%d points):\n", len(front))
	printHeader()
	for _, p := range front {
		printPoint(p)
	}

	if *deadline > 0 {
		if best, ok := clusterdse.CheapestWithinDeadline(sorted, *deadline); ok {
			fmt.Printf("\ncheapest cluster meeting the %.0f-day deadline:\n", *deadline)
			printHeader()
			printPoint(best)
		} else {
			fmt.Printf("\nno configuration trains %s within %.0f days — add nodes or offerings\n", m.Name, *deadline)
		}
	}

	if *csvPath != "" {
		if err := dumpCSV(*csvPath, sorted, m.Name); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %d points to %s\n", len(sorted), *csvPath)
	}
}

func printHeader() {
	fmt.Printf("  %-14s %6s %6s %-24s %8s %7s %8s %9s %10s\n",
		"offering", "nodes", "GPUs", "plan", "iter(s)", "util%", "days", "$/hour", "$total(M)")
}

func printPoint(p clusterdse.Point) {
	fmt.Printf("  %-14s %6d %6d %-24s %8.2f %7.2f %8.2f %9.0f %10.2f\n",
		p.Offering.Name, p.Nodes, p.GPUs(), p.Plan,
		p.Report.IterTime, 100*p.Report.Utilization,
		p.Training.Days, p.Training.DollarsPerHour, p.Training.TotalDollars/1e6)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad node count %q: %w", f, err)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no node counts given")
	}
	return out, nil
}

func selectOfferings(names string, cross bool) ([]hw.Offering, error) {
	var base []hw.Offering
	if names == "all" {
		base = hw.Catalog()
	} else {
		for _, n := range strings.Split(names, ",") {
			o, err := hw.LookupOffering(strings.TrimSpace(n))
			if err != nil {
				return nil, err
			}
			base = append(base, o)
		}
	}
	if !cross {
		return base, nil
	}
	// Cross every node type with every fabric tier (keeping the node's
	// price): the "same machines, different network" axis.
	var out []hw.Offering
	for _, o := range base {
		out = append(out, o)
		for _, ic := range hw.Interconnects() {
			if ic.Name == o.Interconnect.Name {
				continue
			}
			out = append(out, o.WithInterconnect(ic))
		}
	}
	return out, nil
}

func dumpCSV(path string, points []clusterdse.Point, name string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"model", "offering", "interconnect", "nodes", "gpus",
		"t", "d", "p", "m", "iter_s", "util", "days", "gpu_hours", "dollars"}); err != nil {
		return err
	}
	for _, p := range points {
		rec := []string{
			name, p.Offering.Name, p.Offering.Interconnect.Name,
			strconv.Itoa(p.Nodes), strconv.Itoa(p.GPUs()),
			strconv.Itoa(p.Plan.Tensor), strconv.Itoa(p.Plan.Data),
			strconv.Itoa(p.Plan.Pipeline), strconv.Itoa(p.Plan.MicroBatch),
			strconv.FormatFloat(p.Report.IterTime, 'f', 4, 64),
			strconv.FormatFloat(p.Report.Utilization, 'f', 4, 64),
			strconv.FormatFloat(p.Training.Days, 'f', 2, 64),
			strconv.FormatFloat(p.Training.GPUHours, 'f', 0, 64),
			strconv.FormatFloat(p.Training.TotalDollars, 'f', 0, 64),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
