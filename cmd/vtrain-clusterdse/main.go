// Command vtrain-clusterdse runs the joint cluster-design exploration: it
// sweeps (GPU generation x node count x interconnect x parallel plan) for a
// model, prices every candidate with the hardware catalog, and prints the
// cost-ranked candidates, the (cost, days) Pareto frontier, and — given a
// deadline — the cheapest cluster that meets it. This is the paper's
// Table II question ("which cluster should train this model?") opened into
// a search instead of a hand comparison.
//
// By default every candidate is priced with the resilience model of
// internal/resilience: failures (catalog-pinned per-GPU MTBF) and
// Young–Daly checkpoint-restart overhead stretch the run by 1/goodput, so
// bigger-but-faster clusters pay a visible reliability tax. -no-resilience
// reproduces the ideal failure-free ranking.
//
// It is a thin client of internal/server: the same ClusterDSERequest the
// long-lived vtrain-server streams over /v1/clusterdse runs here
// in-process.
//
// Usage:
//
//	vtrain-clusterdse -model megatron-18.4b -batch 1024 -tokens 300e9 \
//	    -nodes 4,8,16,32 [-offerings all] [-deadline 30] [-cross-interconnects] \
//	    [-mtbf 50000] [-ckpt-bw 25] [-no-resilience] [-top 10] [-csv points.csv]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"vtrain/internal/clusterdse"
	"vtrain/internal/descfile"
	"vtrain/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vtrain-clusterdse: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run is the whole command behind a testable seam: golden CLI tests drive
// it in-process with a buffer for stdout.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("vtrain-clusterdse", flag.ContinueOnError)
	fs.SetOutput(stderr)
	preset := fs.String("model", "megatron-18.4b", "model preset (see descfile presets)")
	batch := fs.Int("batch", 1024, "global batch size in sequences")
	tokens := fs.Float64("tokens", 300e9, "total training tokens for cost projection")
	nodesList := fs.String("nodes", "4,8,16,32", "comma-separated cluster sizes to provision, in nodes")
	offerings := fs.String("offerings", "all", `comma-separated catalog offerings, or "all"`)
	cross := fs.Bool("cross-interconnects", false, "also try every node type with every interconnect tier")
	deadline := fs.Float64("deadline", 0, "training deadline in days (0 = no deadline)")
	top := fs.Int("top", 10, "how many cheapest configurations to print")
	csvPath := fs.String("csv", "", "write every design point to this CSV file")
	mtbf := fs.Float64("mtbf", 0, "per-GPU mean time between failures in hours (0 = catalog default per generation)")
	ckptBW := fs.Float64("ckpt-bw", 0, "checkpoint storage write bandwidth in GB/s (0 = catalog default per offering)")
	restart := fs.Float64("restart", 0, "failure-recovery latency in seconds (0 = default)")
	noRes := fs.Bool("no-resilience", false, "rank by ideal failure-free cost (pre-resilience behavior)")
	contention := fs.Bool("contention", false, "model topology-aware link congestion between concurrent collectives")
	progress := fs.Bool("progress", true, "report sweep progress on stderr")
	cacheDir := fs.String("cache-dir", "", "persistent structural-artifact cache directory (empty = no disk cache)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	nodeCounts, err := parseInts(*nodesList)
	if err != nil {
		return err
	}
	if *mtbf < 0 || *ckptBW < 0 || *restart < 0 {
		return fmt.Errorf("-mtbf, -ckpt-bw, and -restart must be non-negative (got %v, %v, %v)", *mtbf, *ckptBW, *restart)
	}
	var offNames []string
	if *offerings != "all" {
		for _, n := range strings.Split(*offerings, ",") {
			offNames = append(offNames, strings.TrimSpace(n))
		}
	}
	resSection := &descfile.ResilienceSection{
		Disabled:               *noRes,
		MTBFHours:              *mtbf,
		CheckpointBandwidthGBs: *ckptBW,
		RestartSeconds:         *restart,
	}

	var engOpts []server.EngineOption
	if *cacheDir != "" {
		engOpts = append(engOpts, server.WithArtifactDir(*cacheDir))
	}
	eng := server.NewEngine(engOpts...)
	sweep, err := eng.PrepareClusterDSE(server.ClusterDSERequest{
		Model:              descfile.ModelSection{Preset: *preset},
		GlobalBatch:        *batch,
		TotalTokens:        uint64(*tokens),
		NodeCounts:         nodeCounts,
		Offerings:          offNames,
		CrossInterconnects: *cross,
		Resilience:         resSection,
		Contention:         *contention,
	})
	if err != nil {
		return err
	}
	m := sweep.Model()
	res := sweep.Resilient()

	start := time.Now()
	var points []clusterdse.Point
	sum, err := sweep.Run(func(p clusterdse.Point) {
		points = append(points, p)
		if *progress && len(points)%1000 == 0 {
			st := sweep.CacheStats()
			fmt.Fprintf(stderr, "... %d points evaluated (%v) — structures %d hit / %d lowered\n",
				len(points), time.Since(start).Round(time.Millisecond), st.StructHits, st.StructMisses)
		}
	})
	if err != nil {
		return err
	}
	sorted := append([]clusterdse.Point(nil), points...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Better(sorted[j]) })
	st := sum.Cache
	fmt.Fprintf(stdout, "explored %d (offering x nodes x plan) points across %d hardware candidates\n",
		len(points), sum.Candidates)
	fmt.Fprintf(stdout, "structural cache: %d graphs lowered, %.1f%% hit rate — hardware variants of a shape share one lowering\n",
		st.Lowerings, 100*float64(st.StructHits)/float64(max(st.StructHits+st.StructMisses, 1)))
	fmt.Fprintf(stdout, "batched replay: %d plans over %d replays, mean batch width %.1f — shapes batch across hardware candidates\n",
		st.BatchedPlans, st.BatchReplays,
		float64(st.BatchedPlans)/float64(max(st.BatchReplays, 1)))
	if res {
		fmt.Fprintf(stdout, "resilience: failure + checkpoint-restart overhead priced in (Young–Daly intervals; -no-resilience for the ideal ranking)\n\n")
	} else {
		fmt.Fprintf(stdout, "resilience: disabled — costs assume an uninterrupted run\n\n")
	}

	fmt.Fprintf(stdout, "%d cheapest configurations for %s (%.0fB tokens):\n", *top, m, *tokens/1e9)
	printHeader(stdout, res)
	for i, p := range sorted {
		if i >= *top {
			break
		}
		printPoint(stdout, p, res)
	}

	front := clusterdse.ParetoFrontier(sorted)
	fmt.Fprintf(stdout, "\nPareto frontier — no cluster is both cheaper and faster (%d points):\n", len(front))
	printHeader(stdout, res)
	for _, p := range front {
		printPoint(stdout, p, res)
	}

	if *deadline > 0 {
		if best, ok := clusterdse.CheapestWithinDeadline(sorted, *deadline); ok {
			fmt.Fprintf(stdout, "\ncheapest cluster meeting the %.0f-day deadline:\n", *deadline)
			printHeader(stdout, res)
			printPoint(stdout, best, res)
		} else {
			fmt.Fprintf(stdout, "\nno configuration trains %s within %.0f days — add nodes or offerings\n", m.Name, *deadline)
		}
	}

	if *csvPath != "" {
		if err := dumpCSV(*csvPath, sorted, m.Name); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nwrote %d points to %s\n", len(sorted), *csvPath)
	}
	return nil
}

func printHeader(w io.Writer, res bool) {
	if res {
		fmt.Fprintf(w, "  %-14s %6s %6s %-24s %8s %7s %6s %9s %10s\n",
			"offering", "nodes", "GPUs", "plan", "iter(s)", "util%", "good%", "eff-days", "eff-$(M)")
		return
	}
	fmt.Fprintf(w, "  %-14s %6s %6s %-24s %8s %7s %8s %9s %10s\n",
		"offering", "nodes", "GPUs", "plan", "iter(s)", "util%", "days", "$/hour", "$total(M)")
}

func printPoint(w io.Writer, p clusterdse.Point, res bool) {
	if res {
		fmt.Fprintf(w, "  %-14s %6d %6d %-24s %8.2f %7.2f %6.2f %9.2f %10.2f\n",
			p.Offering.Name, p.Nodes, p.GPUs(), p.Plan,
			p.Report.IterTime, 100*p.Report.Utilization,
			100*p.Resilience.GoodputFraction, p.Resilience.EffectiveDays, p.Resilience.EffectiveDollars/1e6)
		return
	}
	fmt.Fprintf(w, "  %-14s %6d %6d %-24s %8.2f %7.2f %8.2f %9.0f %10.2f\n",
		p.Offering.Name, p.Nodes, p.GPUs(), p.Plan,
		p.Report.IterTime, 100*p.Report.Utilization,
		p.Training.Days, p.Training.DollarsPerHour, p.Training.TotalDollars/1e6)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad node count %q: %w", f, err)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no node counts given")
	}
	return out, nil
}

func dumpCSV(path string, points []clusterdse.Point, name string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"model", "offering", "interconnect", "nodes", "gpus",
		"t", "d", "p", "m", "iter_s", "util", "days", "gpu_hours", "dollars",
		"goodput", "eff_days", "eff_dollars"}); err != nil {
		return err
	}
	for _, p := range points {
		rec := []string{
			name, p.Offering.Name, p.Offering.Interconnect.Name,
			strconv.Itoa(p.Nodes), strconv.Itoa(p.GPUs()),
			strconv.Itoa(p.Plan.Tensor), strconv.Itoa(p.Plan.Data),
			strconv.Itoa(p.Plan.Pipeline), strconv.Itoa(p.Plan.MicroBatch),
			strconv.FormatFloat(p.Report.IterTime, 'f', 4, 64),
			strconv.FormatFloat(p.Report.Utilization, 'f', 4, 64),
			strconv.FormatFloat(p.Training.Days, 'f', 2, 64),
			strconv.FormatFloat(p.Training.GPUHours, 'f', 0, 64),
			strconv.FormatFloat(p.Training.TotalDollars, 'f', 0, 64),
			"", "", "",
		}
		if p.Resilience.GoodputFraction > 0 {
			rec[14] = strconv.FormatFloat(p.Resilience.GoodputFraction, 'f', 4, 64)
			rec[15] = strconv.FormatFloat(p.Resilience.EffectiveDays, 'f', 2, 64)
			rec[16] = strconv.FormatFloat(p.Resilience.EffectiveDollars, 'f', 0, 64)
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
