module vtrain

go 1.24
