package hw

import "testing"

func TestPaperClusterShape(t *testing.T) {
	c := PaperCluster(64)
	if got, want := c.TotalGPUs(), 512; got != want {
		t.Fatalf("TotalGPUs = %d, want %d (Section IV multi-node testbed)", got, want)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// 4 x 200 Gbps HDR InfiniBand = 100 GB/s.
	if c.InterNodeBandwidth != 100e9 {
		t.Fatalf("InterNodeBandwidth = %g, want 100e9", c.InterNodeBandwidth)
	}
	// Table I pricing: 2,240 GPUs at $11,200/hour => $5/GPU-hour.
	if c.DollarsPerGPUHour != 5.0 {
		t.Fatalf("DollarsPerGPUHour = %v, want 5.0", c.DollarsPerGPUHour)
	}
}

func TestA100Datasheet(t *testing.T) {
	g := A100SXM80GB()
	if g.PeakTensorFLOPS != 312e12 {
		t.Errorf("PeakTensorFLOPS = %g, want 312e12", g.PeakTensorFLOPS)
	}
	if g.MemCapacity != 80<<30 {
		t.Errorf("MemCapacity = %d, want 80 GiB", g.MemCapacity)
	}
	if g.SMCount != 108 {
		t.Errorf("SMCount = %d, want 108", g.SMCount)
	}
}

func TestValidateRejections(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Cluster)
	}{
		{"zero nodes", func(c *Cluster) { c.NodeCount = 0 }},
		{"zero gpus per node", func(c *Cluster) { c.Node.GPUsPerNode = 0 }},
		{"zero peak flops", func(c *Cluster) { c.Node.GPU.PeakTensorFLOPS = 0 }},
		{"zero memory", func(c *Cluster) { c.Node.GPU.MemCapacity = 0 }},
		{"zero inter-node bw multi-node", func(c *Cluster) { c.InterNodeBandwidth = 0 }},
		{"alpha zero", func(c *Cluster) { c.Alpha = 0 }},
		{"alpha above one", func(c *Cluster) { c.Alpha = 1.5 }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			c := PaperCluster(4)
			tc.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Fatal("Validate() = nil, want error")
			}
		})
	}
}

func TestSingleNodeNeedsNoInterconnect(t *testing.T) {
	c := PaperCluster(1)
	c.InterNodeBandwidth = 0
	if err := c.Validate(); err != nil {
		t.Fatalf("single-node cluster should not require inter-node bandwidth: %v", err)
	}
}
