// Package hw describes the hardware substrate vTrain simulates against:
// GPU devices, multi-GPU server nodes, and multi-node clusters.
//
// The paper's testbed is an NVIDIA A100-based system: 8-GPU DGX-style nodes
// connected internally by NVLink/NVSwitch and externally by four 200 Gbps
// InfiniBand HCAs arranged in a two-level non-blocking fat tree. All of those
// machines are modeled here as plain data: the kernel-level timing model in
// internal/gpu and the collective-communication models in internal/comm
// consume these descriptions.
//
// Beyond the paper's single testbed, catalog.go holds a catalog of
// datasheet-pinned GPU generations, node types, interconnect tiers, and
// rental prices, so cluster-design exploration (internal/clusterdse) can
// sweep the hardware axis the paper's Table II compares by hand.
package hw

import "fmt"

// Arch identifies a GPU micro-architecture generation. The analytical
// kernel model in internal/gpu keys its empirical efficiency knobs (tensor
// core efficiency ceiling, CTA tile shape, achievable memory bandwidth
// fraction) on it; the zero value is treated as Ampere, the paper's
// generation.
type Arch string

const (
	// Volta is the V100 generation (1st-gen tensor cores, HBM2, NVLink 2).
	Volta Arch = "volta"
	// Ampere is the A100 generation the paper profiles on.
	Ampere Arch = "ampere"
	// Hopper is the H100 generation (4th-gen tensor cores, HBM3, NVLink 4).
	Hopper Arch = "hopper"
)

// GPU describes a single accelerator device. Times derived from a GPU are
// functions of these published datasheet numbers plus the empirical
// efficiency factors in internal/gpu.
type GPU struct {
	// Name is the marketing name, e.g. "A100-SXM4-80GB".
	Name string
	// Arch is the micro-architecture generation; it selects the
	// generation-dependent efficiency knobs in internal/gpu. Empty means
	// Ampere.
	Arch Arch
	// PeakTensorFLOPS is the peak dense FP16 tensor-core throughput in
	// FLOP/s (for the A100: 312e12).
	PeakTensorFLOPS float64
	// PeakVectorFLOPS is the peak non-tensor-core FP32 throughput in
	// FLOP/s, used by element-wise kernels (A100: 19.5e12).
	PeakVectorFLOPS float64
	// MemBandwidth is HBM bandwidth in bytes/s (A100 80GB: ~2.0e12).
	MemBandwidth float64
	// MemCapacity is device memory in bytes.
	MemCapacity uint64
	// SMCount is the number of streaming multiprocessors; it drives wave
	// quantization in the GEMM model (A100: 108).
	SMCount int
	// KernelLaunchOverhead is the fixed host-side cost of launching one
	// kernel, in seconds (~4 microseconds on a busy training node).
	KernelLaunchOverhead float64
	// MTBF is the per-device mean time between failures in seconds,
	// catalog-pinned per generation from published large-scale training
	// failure rates; internal/resilience divides it by the cluster's GPU
	// count to price failures and checkpoint-restart into training cost.
	// Zero means "unknown" — resilience modeling then needs an explicit
	// override.
	MTBF float64
}

// Node is a multi-GPU server.
type Node struct {
	// GPU is the device type installed; nodes are homogeneous.
	GPU GPU
	// GPUsPerNode is the device count (8 for DGX A100).
	GPUsPerNode int
	// NVLinkBandwidth is the per-GPU intra-node interconnect bandwidth in
	// bytes/s usable by collectives (A100 NVSwitch: 300 GB/s per
	// direction; NCCL ring all-reduce achieves ~230-250 GB/s bus
	// bandwidth, which the comm profile table captures).
	NVLinkBandwidth float64
	// NVLinkLatency is the per-hop latency of the intra-node fabric in
	// seconds (a few microseconds including NCCL kernel launch).
	NVLinkLatency float64
}

// Cluster is a multi-node training system.
type Cluster struct {
	Node Node
	// NodeCount is the number of server nodes.
	NodeCount int
	// InterNodeBandwidth is the aggregate per-node network bandwidth in
	// bytes/s (paper: 4 x 200 Gbps HDR InfiniBand = 100 GB/s).
	InterNodeBandwidth float64
	// InterNodeLatency is the base latency of an inter-node transfer in
	// seconds.
	InterNodeLatency float64
	// Alpha is the bandwidth-effectiveness factor from Eq. 1; the paper
	// sweeps 0.1..1.0 and settles on 1.0 for its fat-tree testbed.
	Alpha float64
	// DollarsPerGPUHour prices rented GPU time. The paper uses AWS EC2
	// P4d as the proxy: Table I shows 2,240 GPUs at $11,200/hour, i.e.
	// $5 per GPU-hour.
	DollarsPerGPUHour float64
	// CheckpointBandwidth is the aggregate bytes/s the cluster sustains
	// writing training checkpoints to persistent storage (parallel
	// filesystem or object store). internal/resilience derives the
	// Young–Daly checkpoint interval from it. Zero means "unknown" —
	// resilience modeling then needs an explicit override.
	CheckpointBandwidth float64

	// The three fields below describe the cluster's network as a two-level
	// fat tree — node-local NVSwitch fabrics under leaf switches under a
	// spine layer — which the contention fidelity level (see internal/comm
	// and taskgraph.BindContention) derates concurrent collectives on.
	// All three are plain comparable scalars whose zero value means
	// "unknown, use defaults", so existing cluster literals (and the
	// struct-equality map keys the serving layer builds from Cluster)
	// keep working unchanged.

	// NetworkLinks is the number of inter-node links (HCAs) per node that
	// make up InterNodeBandwidth — the paper's testbed has 4 x 200 Gbps
	// HDR HCAs per node. Zero is treated as one aggregated link.
	NetworkLinks int
	// NodesPerLeaf is the number of nodes attached to one leaf switch of
	// the fat tree. Zero means the whole cluster hangs off a single leaf
	// and no transfer crosses the spine.
	NodesPerLeaf int
	// Oversubscription is the leaf-to-spine oversubscription ratio:
	// 1 is non-blocking (the paper's testbed), 2 means leaf uplink
	// bandwidth is half the downlink. Zero is treated as 1 (non-blocking).
	Oversubscription float64
}

// DefaultNodesPerLeaf is the leaf-switch radix the catalog assumes: a
// 40-port switch split half down, half up — 20 nodes per leaf, the DGX
// reference fat-tree building block.
const DefaultNodesPerLeaf = 20

// TotalGPUs returns the number of GPUs in the cluster.
func (c Cluster) TotalGPUs() int { return c.NodeCount * c.Node.GPUsPerNode }

// Validate reports an error for physically meaningless descriptions.
func (c Cluster) Validate() error {
	if c.NodeCount <= 0 {
		return fmt.Errorf("hw: cluster needs at least one node, got %d", c.NodeCount)
	}
	if c.Node.GPUsPerNode <= 0 {
		return fmt.Errorf("hw: node needs at least one GPU, got %d", c.Node.GPUsPerNode)
	}
	if c.Node.GPU.PeakTensorFLOPS <= 0 || c.Node.GPU.MemBandwidth <= 0 {
		return fmt.Errorf("hw: GPU %q has non-positive peak throughput", c.Node.GPU.Name)
	}
	if c.Node.GPU.MemCapacity == 0 {
		return fmt.Errorf("hw: GPU %q has zero memory capacity", c.Node.GPU.Name)
	}
	if c.InterNodeBandwidth <= 0 && c.NodeCount > 1 {
		return fmt.Errorf("hw: multi-node cluster needs inter-node bandwidth")
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("hw: bandwidth effectiveness factor alpha must be in (0,1], got %v", c.Alpha)
	}
	if c.DollarsPerGPUHour < 0 {
		return fmt.Errorf("hw: negative GPU-hour price %v", c.DollarsPerGPUHour)
	}
	if c.Node.GPU.MTBF < 0 {
		return fmt.Errorf("hw: GPU %q has negative MTBF %v", c.Node.GPU.Name, c.Node.GPU.MTBF)
	}
	if c.CheckpointBandwidth < 0 {
		return fmt.Errorf("hw: negative checkpoint write bandwidth %v", c.CheckpointBandwidth)
	}
	if c.NetworkLinks < 0 {
		return fmt.Errorf("hw: negative per-node network link count %d", c.NetworkLinks)
	}
	if c.NodesPerLeaf < 0 {
		return fmt.Errorf("hw: negative nodes-per-leaf count %d", c.NodesPerLeaf)
	}
	if c.Oversubscription < 0 {
		return fmt.Errorf("hw: negative fat-tree oversubscription ratio %v", c.Oversubscription)
	}
	return nil
}

// A100SXM80GB returns the datasheet description of the paper's GPU.
func A100SXM80GB() GPU {
	return GPU{
		Name:                 "A100-SXM4-80GB",
		Arch:                 Ampere,
		PeakTensorFLOPS:      312e12,
		PeakVectorFLOPS:      19.5e12,
		MemBandwidth:         2.0e12,
		MemCapacity:          80 << 30,
		SMCount:              108,
		KernelLaunchOverhead: 4e-6,
		MTBF:                 AmpereMTBF,
	}
}

// DGXA100 returns an 8-GPU NVSwitch node matching the paper's testbed.
func DGXA100() Node {
	return Node{
		GPU:             A100SXM80GB(),
		GPUsPerNode:     8,
		NVLinkBandwidth: 240e9, // achievable NCCL bus bandwidth
		NVLinkLatency:   8e-6,
	}
}

// PaperCluster returns an n-node cluster matching Section IV's testbed:
// DGX A100 nodes, 4 x 200 Gbps HDR InfiniBand per node in a two-level
// non-blocking fat tree, alpha = 1.0, $5/GPU-hour, with the A100-era
// checkpoint storage defaults of the catalog.
func PaperCluster(nodes int) Cluster {
	return Cluster{
		Node:                DGXA100(),
		NodeCount:           nodes,
		InterNodeBandwidth:  100e9, // 800 Gbps
		InterNodeLatency:    12e-6,
		Alpha:               1.0,
		DollarsPerGPUHour:   5.0,
		CheckpointBandwidth: AmpereCheckpointBandwidth,
		NetworkLinks:        4, // 4 x 200 Gbps HDR HCAs per node
		NodesPerLeaf:        DefaultNodesPerLeaf,
		Oversubscription:    1.0, // non-blocking fat tree
	}
}
