package hw

import (
	"math"
	"reflect"
	"testing"
)

// TestGPUDatasheets pins every catalog GPU against its published datasheet:
// peak dense FP16 tensor throughput, FP32 vector throughput, HBM bandwidth
// and capacity, and SM count.
func TestGPUDatasheets(t *testing.T) {
	tests := []struct {
		gpu         GPU
		arch        Arch
		tensorFLOPS float64
		vectorFLOPS float64
		memBW       float64
		memCap      uint64
		sms         int
	}{
		{V100SXM32GB(), Volta, 125e12, 15.7e12, 900e9, 32 << 30, 80},
		{A100SXM40GB(), Ampere, 312e12, 19.5e12, 1.555e12, 40 << 30, 108},
		{A100SXM80GB(), Ampere, 312e12, 19.5e12, 2.0e12, 80 << 30, 108},
		{H100SXM80GB(), Hopper, 989.4e12, 67e12, 3.35e12, 80 << 30, 132},
	}
	for _, tc := range tests {
		t.Run(tc.gpu.Name, func(t *testing.T) {
			g := tc.gpu
			if g.Arch != tc.arch {
				t.Errorf("Arch = %q, want %q", g.Arch, tc.arch)
			}
			if g.PeakTensorFLOPS != tc.tensorFLOPS {
				t.Errorf("PeakTensorFLOPS = %g, want %g", g.PeakTensorFLOPS, tc.tensorFLOPS)
			}
			if g.PeakVectorFLOPS != tc.vectorFLOPS {
				t.Errorf("PeakVectorFLOPS = %g, want %g", g.PeakVectorFLOPS, tc.vectorFLOPS)
			}
			if g.MemBandwidth != tc.memBW {
				t.Errorf("MemBandwidth = %g, want %g", g.MemBandwidth, tc.memBW)
			}
			if g.MemCapacity != tc.memCap {
				t.Errorf("MemCapacity = %d, want %d", g.MemCapacity, tc.memCap)
			}
			if g.SMCount != tc.sms {
				t.Errorf("SMCount = %d, want %d", g.SMCount, tc.sms)
			}
			if g.KernelLaunchOverhead <= 0 {
				t.Errorf("KernelLaunchOverhead = %g, want > 0", g.KernelLaunchOverhead)
			}
		})
	}
}

// TestInterconnectTiers pins each fabric tier's aggregate per-node
// bandwidth against its link math (links x Gbps / 8).
func TestInterconnectTiers(t *testing.T) {
	tests := []struct {
		ic    Interconnect
		perBW float64
		links int
	}{
		{IBEDRx4(), 50e9, 4},
		{IBHDRx4(), 100e9, 4},
		{IBNDRx4(), 200e9, 4},
		{IBNDRx8(), 400e9, 8},
	}
	for _, tc := range tests {
		t.Run(tc.ic.Name, func(t *testing.T) {
			if err := tc.ic.Validate(); err != nil {
				t.Fatal(err)
			}
			if got := tc.ic.PerNodeBandwidth(); math.Abs(got-tc.perBW) > 1 {
				t.Errorf("PerNodeBandwidth = %g, want %g", got, tc.perBW)
			}
			if tc.ic.Links != tc.links {
				t.Errorf("Links = %d, want %d", tc.ic.Links, tc.links)
			}
			if tc.ic.Latency <= 0 {
				t.Errorf("Latency = %g, want > 0", tc.ic.Latency)
			}
		})
	}
}

// TestCatalogOfferings checks every offering validates, carries a positive
// price, 8-GPU nodes, and a positive intra-node fabric.
func TestCatalogOfferings(t *testing.T) {
	cat := Catalog()
	if len(cat) < 4 {
		t.Fatalf("catalog has %d offerings, want >= 4 (>= 3 GPU generations)", len(cat))
	}
	archs := map[Arch]bool{}
	for _, o := range cat {
		t.Run(o.Name, func(t *testing.T) {
			if err := o.Validate(); err != nil {
				t.Fatal(err)
			}
			if o.DollarsPerGPUHour <= 0 {
				t.Errorf("price = %v, want > 0", o.DollarsPerGPUHour)
			}
			if o.Node.GPUsPerNode != 8 {
				t.Errorf("GPUsPerNode = %d, want 8 (DGX-style nodes)", o.Node.GPUsPerNode)
			}
			if o.Node.NVLinkBandwidth <= 0 || o.Node.NVLinkLatency <= 0 {
				t.Errorf("NVLink tier not positive: bw=%g lat=%g", o.Node.NVLinkBandwidth, o.Node.NVLinkLatency)
			}
			c := o.Cluster(4)
			if err := c.Validate(); err != nil {
				t.Fatalf("Cluster(4): %v", err)
			}
			if c.InterNodeBandwidth != o.Interconnect.PerNodeBandwidth() {
				t.Errorf("cluster inter-node bandwidth %g != tier %g", c.InterNodeBandwidth, o.Interconnect.PerNodeBandwidth())
			}
		})
		archs[o.Node.GPU.Arch] = true
	}
	if len(archs) < 3 {
		t.Errorf("catalog spans %d architectures, want >= 3 generations", len(archs))
	}
}

// TestPaperOfferingMatchesPaperCluster pins the a100-sxm-80gb offering to
// the paper's testbed: materializing it must reproduce PaperCluster
// byte-for-byte, so the catalog path and the legacy path cannot drift.
func TestPaperOfferingMatchesPaperCluster(t *testing.T) {
	off, err := LookupOffering("a100-sxm-80gb")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := off.Cluster(64), PaperCluster(64); !reflect.DeepEqual(got, want) {
		t.Errorf("offering cluster = %+v\nwant paper cluster %+v", got, want)
	}
}

// TestOfferingValidateRejections covers malformed heterogeneous
// configurations a hand-assembled offering could produce.
func TestOfferingValidateRejections(t *testing.T) {
	base := func() Offering {
		return Offering{Name: "custom", Node: DGXA100(), Interconnect: IBHDRx4(), DollarsPerGPUHour: 5}
	}
	tests := []struct {
		name   string
		mutate func(*Offering)
	}{
		{"empty name", func(o *Offering) { o.Name = "" }},
		{"free lunch", func(o *Offering) { o.DollarsPerGPUHour = 0 }},
		{"negative price", func(o *Offering) { o.DollarsPerGPUHour = -1 }},
		{"no links", func(o *Offering) { o.Interconnect.Links = 0 }},
		{"zero link rate", func(o *Offering) { o.Interconnect.LinkGbps = 0 }},
		{"negative fabric latency", func(o *Offering) { o.Interconnect.Latency = -1e-6 }},
		{"unnamed interconnect", func(o *Offering) { o.Interconnect.Name = "" }},
		{"gpuless node", func(o *Offering) { o.Node.GPUsPerNode = 0 }},
		{"memoryless gpu", func(o *Offering) { o.Node.GPU.MemCapacity = 0 }},
		{"zero tensor peak", func(o *Offering) { o.Node.GPU.PeakTensorFLOPS = 0 }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			o := base()
			tc.mutate(&o)
			if err := o.Validate(); err == nil {
				t.Fatal("Validate() = nil, want error")
			}
		})
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("unmutated base offering should validate: %v", err)
	}
}

// TestWithInterconnect checks the cross-tier axis keeps price and node but
// swaps the fabric (and renames, so crossed offerings stay distinguishable).
func TestWithInterconnect(t *testing.T) {
	o, err := LookupOffering("a100-sxm-80gb")
	if err != nil {
		t.Fatal(err)
	}
	up := o.WithInterconnect(IBNDRx8())
	if up.Interconnect.Name != IBNDRx8().Name {
		t.Errorf("interconnect = %q, want %q", up.Interconnect.Name, IBNDRx8().Name)
	}
	if up.DollarsPerGPUHour != o.DollarsPerGPUHour {
		t.Errorf("price changed: %v -> %v", o.DollarsPerGPUHour, up.DollarsPerGPUHour)
	}
	if up.Name == o.Name {
		t.Error("crossed offering kept the base name")
	}
	if err := up.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := up.Cluster(4).InterNodeBandwidth, 400e9; got != want {
		t.Errorf("upgraded bandwidth = %g, want %g", got, want)
	}
}

// TestLookupOffering covers resolution, case-insensitivity, and the error
// path listing the catalog.
func TestLookupOffering(t *testing.T) {
	if _, err := LookupOffering("H100-SXM-80GB"); err != nil {
		t.Errorf("case-insensitive lookup failed: %v", err)
	}
	if _, err := LookupOffering("tpu-v5"); err == nil {
		t.Error("unknown offering should error")
	}
	if got, want := len(OfferingNames()), len(Catalog()); got != want {
		t.Errorf("OfferingNames lists %d, catalog has %d", got, want)
	}
}

// TestResilienceCatalogData pins the failure/checkpoint data the resilience
// model consumes: every generation carries a plausible MTBF, every offering
// a positive era-appropriate checkpoint bandwidth, and both survive the
// trip through Offering.Cluster.
func TestResilienceCatalogData(t *testing.T) {
	wantMTBF := map[Arch]float64{
		Volta:  VoltaMTBF,
		Ampere: AmpereMTBF,
		Hopper: HopperMTBF,
	}
	wantBW := map[string]float64{
		"v100-sxm-32gb": VoltaCheckpointBandwidth,
		"a100-sxm-40gb": AmpereCheckpointBandwidth,
		"a100-sxm-80gb": AmpereCheckpointBandwidth,
		"h100-sxm-80gb": HopperCheckpointBandwidth,
	}
	for _, o := range Catalog() {
		g := o.Node.GPU
		if g.MTBF != wantMTBF[g.Arch] {
			t.Errorf("%s: MTBF %v, want generation constant %v", o.Name, g.MTBF, wantMTBF[g.Arch])
		}
		if g.MTBF < 1000*3600 || g.MTBF > 1e6*3600 {
			t.Errorf("%s: implausible per-GPU MTBF %v hours", o.Name, g.MTBF/3600)
		}
		if o.CheckpointBandwidth != wantBW[o.Name] {
			t.Errorf("%s: checkpoint bandwidth %v, want era constant %v", o.Name, o.CheckpointBandwidth, wantBW[o.Name])
		}
		c := o.Cluster(4)
		if c.CheckpointBandwidth != o.CheckpointBandwidth {
			t.Errorf("%s: Cluster dropped checkpoint bandwidth (%v != %v)", o.Name, c.CheckpointBandwidth, o.CheckpointBandwidth)
		}
		if c.Node.GPU.MTBF != g.MTBF {
			t.Errorf("%s: Cluster dropped GPU MTBF", o.Name)
		}
	}
	// Newer generations checkpoint faster: the storage deployed alongside
	// each era improved monotonically.
	if !(VoltaCheckpointBandwidth < AmpereCheckpointBandwidth && AmpereCheckpointBandwidth < HopperCheckpointBandwidth) {
		t.Error("checkpoint bandwidth must improve across generations")
	}
}

// TestClusterValidateResilienceFields pins that negative resilience data is
// rejected while zero ("unknown") stays allowed for hand-built clusters.
func TestClusterValidateResilienceFields(t *testing.T) {
	c := PaperCluster(2)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.Node.GPU.MTBF = 0
	c.CheckpointBandwidth = 0
	if err := c.Validate(); err != nil {
		t.Errorf("zero resilience data must stay valid (means unknown): %v", err)
	}
	c.Node.GPU.MTBF = -1
	if err := c.Validate(); err == nil {
		t.Error("negative MTBF accepted")
	}
	c = PaperCluster(2)
	c.CheckpointBandwidth = -5
	if err := c.Validate(); err == nil {
		t.Error("negative checkpoint bandwidth accepted")
	}
}
