package hw

import (
	"fmt"
	"strings"
)

// This file is the hardware catalog: datasheet-pinned GPU generations, the
// DGX-style server nodes they ship in, the InfiniBand tiers that connect
// those nodes, and a per-GPU-hour rental price for each pairing. An Offering
// bundles one (node type, interconnect tier, price) triple; Offering.Cluster
// materializes it at a node count, producing the same hw.Cluster the rest of
// the simulator consumes. The paper evaluates one fixed offering (DGX A100 +
// 4x HDR at $5/GPU-hour); the catalog opens the hardware axis its Table II
// varies by hand, so internal/clusterdse can sweep (GPU generation x node
// count x interconnect) jointly with the parallel plan.

// Per-GPU mean time between failures, in seconds, pinned per generation.
// The anchors are published large-scale training postmortems rather than
// vendor datasheets (GPUs fail far more often under sustained training
// load than MTBF specs suggest): Meta's Llama 3 run saw 466 job
// interruptions over 54 days on 16,384 H100s — a per-GPU MTBF of roughly
// 45k hours — and OPT-175B-era A100 fleets and first-generation V100
// clusters were respectively somewhat better and notably worse than that.
const (
	// VoltaMTBF reflects early-fleet V100 reliability (~30k hours).
	VoltaMTBF = 30000 * 3600.0
	// AmpereMTBF reflects mature A100 fleets (~55k hours).
	AmpereMTBF = 55000 * 3600.0
	// HopperMTBF reflects the Llama 3 H100 failure rate (~45k hours).
	HopperMTBF = 45000 * 3600.0
)

// Aggregate checkpoint storage write bandwidth, in bytes/s, pinned per
// generation era: the parallel filesystems deployed alongside each DGX
// generation (Lustre/GPFS tiers for V100, NetApp/DDN A100 reference
// architectures, and the NVMe-backed stores of H100 SuperPODs).
const (
	VoltaCheckpointBandwidth  = 10e9
	AmpereCheckpointBandwidth = 25e9
	HopperCheckpointBandwidth = 60e9
)

// V100SXM32GB returns the datasheet description of the Volta-generation
// V100-SXM2-32GB: 125 TFLOPS FP16 tensor, 15.7 TFLOPS FP32, 900 GB/s HBM2,
// 80 SMs.
func V100SXM32GB() GPU {
	return GPU{
		Name:                 "V100-SXM2-32GB",
		Arch:                 Volta,
		PeakTensorFLOPS:      125e12,
		PeakVectorFLOPS:      15.7e12,
		MemBandwidth:         900e9,
		MemCapacity:          32 << 30,
		SMCount:              80,
		KernelLaunchOverhead: 4e-6,
		MTBF:                 VoltaMTBF,
	}
}

// A100SXM40GB returns the 40 GB A100 variant: identical compute to the
// 80 GB part, half the HBM capacity at 1.555 TB/s.
func A100SXM40GB() GPU {
	return GPU{
		Name:                 "A100-SXM4-40GB",
		Arch:                 Ampere,
		PeakTensorFLOPS:      312e12,
		PeakVectorFLOPS:      19.5e12,
		MemBandwidth:         1.555e12,
		MemCapacity:          40 << 30,
		SMCount:              108,
		KernelLaunchOverhead: 4e-6,
		MTBF:                 AmpereMTBF,
	}
}

// H100SXM80GB returns the Hopper-generation H100-SXM5-80GB: 989.4 TFLOPS
// dense FP16 tensor, 67 TFLOPS FP32, 3.35 TB/s HBM3, 132 SMs.
func H100SXM80GB() GPU {
	return GPU{
		Name:                 "H100-SXM5-80GB",
		Arch:                 Hopper,
		PeakTensorFLOPS:      989.4e12,
		PeakVectorFLOPS:      67e12,
		MemBandwidth:         3.35e12,
		MemCapacity:          80 << 30,
		SMCount:              132,
		KernelLaunchOverhead: 4e-6,
		MTBF:                 HopperMTBF,
	}
}

// DGX1V returns an 8-GPU DGX-1 node: V100s on the NVLink-2 hybrid cube
// mesh. The bandwidth is the NCCL-achievable ring bus bandwidth, not the
// 300 GB/s link aggregate.
func DGX1V() Node {
	return Node{
		GPU:             V100SXM32GB(),
		GPUsPerNode:     8,
		NVLinkBandwidth: 130e9,
		NVLinkLatency:   10e-6,
	}
}

// DGXA100At40GB returns the paper's DGX A100 node populated with the 40 GB
// A100 variant.
func DGXA100At40GB() Node {
	n := DGXA100()
	n.GPU = A100SXM40GB()
	return n
}

// DGXH100 returns an 8-GPU DGX H100 node: H100s behind 4th-generation
// NVLink/NVSwitch (900 GB/s per GPU aggregate; ~370 GB/s achievable NCCL
// bus bandwidth).
func DGXH100() Node {
	return Node{
		GPU:             H100SXM80GB(),
		GPUsPerNode:     8,
		NVLinkBandwidth: 370e9,
		NVLinkLatency:   7e-6,
	}
}

// Interconnect is one inter-node fabric tier: identical links aggregated
// per node, as in the paper's "4 x 200 Gbps HDR" testbed.
type Interconnect struct {
	// Name labels the tier, e.g. "4xHDR-200G".
	Name string
	// LinkGbps is the signaling rate of one link in Gbit/s.
	LinkGbps float64
	// Links is the number of HCAs per node.
	Links int
	// Latency is the base latency of an inter-node transfer in seconds.
	Latency float64
}

// PerNodeBandwidth returns the aggregate per-node bandwidth in bytes/s —
// the Bmax that Eq. 1's alpha scales.
func (ic Interconnect) PerNodeBandwidth() float64 {
	return float64(ic.Links) * ic.LinkGbps * 1e9 / 8
}

// Validate reports an error for physically meaningless fabric tiers.
func (ic Interconnect) Validate() error {
	if ic.Name == "" {
		return fmt.Errorf("hw: interconnect needs a name")
	}
	if ic.LinkGbps <= 0 {
		return fmt.Errorf("hw: interconnect %q has non-positive link rate %v Gbps", ic.Name, ic.LinkGbps)
	}
	if ic.Links <= 0 {
		return fmt.Errorf("hw: interconnect %q needs at least one link, got %d", ic.Name, ic.Links)
	}
	if ic.Latency < 0 {
		return fmt.Errorf("hw: interconnect %q has negative latency", ic.Name)
	}
	return nil
}

// IBEDRx4 is the V100-era tier: 4 x 100 Gbps EDR InfiniBand (50 GB/s).
func IBEDRx4() Interconnect {
	return Interconnect{Name: "4xEDR-100G", LinkGbps: 100, Links: 4, Latency: 14e-6}
}

// IBHDRx4 is the paper's tier: 4 x 200 Gbps HDR InfiniBand (100 GB/s).
func IBHDRx4() Interconnect {
	return Interconnect{Name: "4xHDR-200G", LinkGbps: 200, Links: 4, Latency: 12e-6}
}

// IBNDRx4 is a mid NDR tier: 4 x 400 Gbps NDR InfiniBand (200 GB/s).
func IBNDRx4() Interconnect {
	return Interconnect{Name: "4xNDR-400G", LinkGbps: 400, Links: 4, Latency: 10e-6}
}

// IBNDRx8 is the DGX H100 tier: 8 x 400 Gbps NDR InfiniBand (400 GB/s).
func IBNDRx8() Interconnect {
	return Interconnect{Name: "8xNDR-400G", LinkGbps: 400, Links: 8, Latency: 10e-6}
}

// Interconnects lists the catalog's fabric tiers, slowest first.
func Interconnects() []Interconnect {
	return []Interconnect{IBEDRx4(), IBHDRx4(), IBNDRx4(), IBNDRx8()}
}

// Offering is one rentable cluster configuration: a node type, the fabric
// tier connecting the nodes, and the per-GPU-hour price. It is the unit the
// cluster-design search ranks.
type Offering struct {
	// Name identifies the offering in reports and lookups.
	Name string
	// Node is the server type (GPU generation, count, NVLink tier).
	Node Node
	// Interconnect is the inter-node fabric tier.
	Interconnect Interconnect
	// DollarsPerGPUHour is the rental price. The catalog prices follow the
	// paper's AWS proxy method (Table I uses EC2 P4d at $5/GPU-hour):
	// p3dn (V100), p4d (A100-40), p4de (A100-80, rounded to the paper's
	// $5), and p5 (H100) on-demand rates divided by 8 GPUs.
	DollarsPerGPUHour float64
	// CheckpointBandwidth is the aggregate checkpoint-storage write
	// bandwidth in bytes/s the offering ships with (era-pinned defaults
	// above); internal/resilience prices checkpoint-restart from it.
	CheckpointBandwidth float64
}

// Validate reports an error for malformed offerings — the checks cover
// hand-assembled heterogeneous configurations, not just catalog entries.
func (o Offering) Validate() error {
	if o.Name == "" {
		return fmt.Errorf("hw: offering needs a name")
	}
	if err := o.Interconnect.Validate(); err != nil {
		return fmt.Errorf("hw: offering %q: %w", o.Name, err)
	}
	if o.DollarsPerGPUHour <= 0 {
		return fmt.Errorf("hw: offering %q has non-positive price $%v/GPU-hour", o.Name, o.DollarsPerGPUHour)
	}
	// Reuse the cluster checks for the node itself: a two-node rendering
	// exercises every per-node field plus the interconnect.
	if err := o.Cluster(2).Validate(); err != nil {
		return fmt.Errorf("hw: offering %q: %w", o.Name, err)
	}
	return nil
}

// WithInterconnect returns a copy of the offering upgraded (or downgraded)
// to another fabric tier, keeping the node price — the "same machines,
// different network" axis of a cluster-design sweep.
func (o Offering) WithInterconnect(ic Interconnect) Offering {
	o.Interconnect = ic
	o.Name = o.Name + "+" + ic.Name
	return o
}

// Cluster materializes the offering at a node count. The interconnect's
// per-node link count carries into the cluster's fat-tree topology fields,
// so the contention fidelity level can resolve which HCAs a collective
// occupies; the catalog assumes the reference non-blocking two-level tree
// (DefaultNodesPerLeaf nodes per leaf switch).
func (o Offering) Cluster(nodes int) Cluster {
	return Cluster{
		Node:                o.Node,
		NodeCount:           nodes,
		InterNodeBandwidth:  o.Interconnect.PerNodeBandwidth(),
		InterNodeLatency:    o.Interconnect.Latency,
		Alpha:               1.0,
		DollarsPerGPUHour:   o.DollarsPerGPUHour,
		CheckpointBandwidth: o.CheckpointBandwidth,
		NetworkLinks:        o.Interconnect.Links,
		NodesPerLeaf:        DefaultNodesPerLeaf,
		Oversubscription:    1.0,
	}
}

// Catalog returns the canonical offerings, one per GPU generation, each
// paired with its era's fabric tier, oldest generation first.
func Catalog() []Offering {
	return []Offering{
		{Name: "v100-sxm-32gb", Node: DGX1V(), Interconnect: IBEDRx4(), DollarsPerGPUHour: 3.90, CheckpointBandwidth: VoltaCheckpointBandwidth},
		{Name: "a100-sxm-40gb", Node: DGXA100At40GB(), Interconnect: IBHDRx4(), DollarsPerGPUHour: 4.10, CheckpointBandwidth: AmpereCheckpointBandwidth},
		{Name: "a100-sxm-80gb", Node: DGXA100(), Interconnect: IBHDRx4(), DollarsPerGPUHour: 5.00, CheckpointBandwidth: AmpereCheckpointBandwidth},
		{Name: "h100-sxm-80gb", Node: DGXH100(), Interconnect: IBNDRx8(), DollarsPerGPUHour: 12.29, CheckpointBandwidth: HopperCheckpointBandwidth},
	}
}

// OfferingNames lists the catalog offering names in catalog order.
func OfferingNames() []string {
	cat := Catalog()
	out := make([]string, len(cat))
	for i, o := range cat {
		out[i] = o.Name
	}
	return out
}

// LookupOffering resolves a catalog offering by name (case-insensitive).
func LookupOffering(name string) (Offering, error) {
	for _, o := range Catalog() {
		if strings.EqualFold(o.Name, name) {
			return o, nil
		}
	}
	return Offering{}, fmt.Errorf("hw: unknown offering %q (have %v)", name, OfferingNames())
}
