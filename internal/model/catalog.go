package model

// Catalog of the model configurations that appear in the paper's
// evaluation. Hyperparameters follow Megatron-LM (Narayanan et al., SC'21)
// table 1, the MT-NLG paper, and Table III of the vTrain paper.

// megatronVocab is the padded GPT-2 BPE vocabulary Megatron-LM uses.
const megatronVocab = 51200

// GPT3175B is OpenAI's GPT-3 with 175B parameters (Fig. 1).
func GPT3175B() Config {
	return Config{Name: "GPT-3 175B", Hidden: 12288, Layers: 96, SeqLen: 2048, Heads: 96, Vocab: megatronVocab}
}

// MTNLG530B is Megatron-Turing NLG 530B (case study 1): h=20480, L=105,
// n=128, s=2048.
func MTNLG530B() Config {
	return Config{Name: "MT-NLG 530B", Hidden: 20480, Layers: 105, SeqLen: 2048, Heads: 128, Vocab: megatronVocab}
}

// Megatron3_6B is the 3.6B-parameter scale-down from [40] used in Table II.
func Megatron3_6B() Config {
	return Config{Name: "Megatron 3.6B", Hidden: 3072, Layers: 30, SeqLen: 2048, Heads: 32, Vocab: megatronVocab}
}

// Megatron18_4B is the 18.4B-parameter configuration (Tables II and III).
func Megatron18_4B() Config {
	return Config{Name: "Megatron 18.4B", Hidden: 6144, Layers: 40, SeqLen: 2048, Heads: 48, Vocab: megatronVocab}
}

// Megatron39_1B is the 39.1B-parameter configuration (Tables II and III).
func Megatron39_1B() Config {
	return Config{Name: "Megatron 39.1B", Hidden: 8192, Layers: 48, SeqLen: 2048, Heads: 64, Vocab: megatronVocab}
}

// Megatron81_2B is the 81.2B-parameter configuration from Table III.
func Megatron81_2B() Config {
	return Config{Name: "Megatron 81.2B", Hidden: 10240, Layers: 64, SeqLen: 2048, Heads: 80, Vocab: megatronVocab}
}

// Custom builds an anonymous configuration with the Megatron vocabulary,
// used by the Chinchilla search which sweeps (h, L) freely.
func Custom(hidden, layers, seqLen, heads int) Config {
	return Config{
		Name:   "custom",
		Hidden: hidden, Layers: layers, SeqLen: seqLen, Heads: heads,
		Vocab: megatronVocab,
	}
}

// TableIII returns the three cluster-experiment models with their global
// batch sizes (Table III of the paper).
func TableIII() []struct {
	Config Config
	Batch  int
} {
	return []struct {
		Config Config
		Batch  int
	}{
		{Megatron18_4B(), 1024},
		{Megatron39_1B(), 1536},
		{Megatron81_2B(), 1792},
	}
}
