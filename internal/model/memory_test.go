package model

import (
	"testing"
	"testing/quick"
)

func TestModelStateBytesSharding(t *testing.T) {
	c := Megatron18_4B()
	full := c.ModelStateBytes(1, 1)
	// 18 bytes per parameter, single shard: within 5% of 18 * params
	// (the single-stage shard also charges embeddings once).
	if lo, hi := 17*c.Params(), 19*c.Params(); full < lo || full > hi {
		t.Fatalf("ModelStateBytes(1,1) = %d, want in [%d, %d]", full, lo, hi)
	}
	// Tensor parallelism divides states exactly.
	if got, want := c.ModelStateBytes(8, 1), full/8; got != want {
		t.Fatalf("ModelStateBytes(8,1) = %d, want %d", got, want)
	}
	// Pipeline parallelism shrinks the per-stage share.
	if got := c.ModelStateBytes(1, 8); got >= full {
		t.Fatalf("ModelStateBytes(1,8) = %d, not smaller than %d", got, full)
	}
}

func TestModelStateBytesClampsDegrees(t *testing.T) {
	c := Megatron3_6B()
	if c.ModelStateBytes(0, 0) != c.ModelStateBytes(1, 1) {
		t.Fatal("degrees below 1 must clamp to 1")
	}
}

func TestActivationBytesScaleWithMicroBatch(t *testing.T) {
	c := Megatron18_4B()
	one := c.ActivationBytesPerMicroBatch(1, 1, 1)
	four := c.ActivationBytesPerMicroBatch(4, 1, 1)
	if four < 3*one || four > 5*one {
		t.Fatalf("activations should scale ~linearly with micro-batch: 1->%d, 4->%d", one, four)
	}
}

func TestActivationBytesShrinkWithTensorParallel(t *testing.T) {
	c := Megatron18_4B()
	t1 := c.ActivationBytesPerMicroBatch(1, 1, 1)
	t8 := c.ActivationBytesPerMicroBatch(1, 8, 1)
	if t8 >= t1 {
		t.Fatalf("tensor parallelism must shrink activations: t=1 %d, t=8 %d", t1, t8)
	}
	// The unshardable portion keeps t8 above a naive 1/8.
	if t8 < t1/8 {
		t.Fatalf("t=8 activations %d below the shardable floor %d", t8, t1/8)
	}
}

func TestRecomputeShrinksActivations(t *testing.T) {
	c := MTNLG530B()
	full := c.ActivationBytesPerMicroBatch(1, 8, 35)
	ckpt := c.RecomputeActivationBytesPerMicroBatch(1, 8, 35)
	if ckpt >= full {
		t.Fatalf("recompute checkpoint %d not smaller than full activations %d", ckpt, full)
	}
	// Checkpoint keeps exactly 2·s·b·h per layer.
	layers := (c.Layers + 34) / 35
	want := uint64(2*c.SeqLen*c.Hidden) * uint64(layers)
	if ckpt != want {
		t.Fatalf("checkpoint bytes = %d, want %d", ckpt, want)
	}
}

func TestMTNLGPlanFitsOnlyWithRecompute(t *testing.T) {
	// The paper's (8, 8, 35) MT-NLG plan exceeds 80 GB without
	// activation recomputation and fits with it — the reason MT-NLG
	// trained with checkpointing.
	c := MTNLG530B()
	const cap80 = 80 << 30
	without := c.PeakMemoryBytes(1, 8, 35, 35)
	with := c.PeakMemoryBytesRecompute(1, 8, 35, 35)
	if without <= cap80 {
		t.Errorf("without recompute: %d bytes unexpectedly fits 80 GiB", without)
	}
	if with > cap80 {
		t.Errorf("with recompute: %d bytes does not fit 80 GiB", with)
	}
}

func TestPeakMemoryMonotoneInInFlight(t *testing.T) {
	f := func(inflight uint8) bool {
		c := Megatron18_4B()
		n := int(inflight)%16 + 1
		return c.PeakMemoryBytes(1, 2, 4, n+1) >= c.PeakMemoryBytes(1, 2, 4, n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPeakMemoryInFlightClamp(t *testing.T) {
	c := Megatron3_6B()
	if c.PeakMemoryBytes(1, 1, 1, 0) != c.PeakMemoryBytes(1, 1, 1, 1) {
		t.Fatal("inFlight below 1 must clamp to 1")
	}
	if c.PeakMemoryBytesRecompute(1, 1, 1, 0) != c.PeakMemoryBytesRecompute(1, 1, 1, 1) {
		t.Fatal("recompute inFlight below 1 must clamp to 1")
	}
}

func TestRecomputePeakBelowFullPeakWhenDeepPipeline(t *testing.T) {
	// With many in-flight micro-batches, recompute must always win.
	c := Megatron39_1B()
	full := c.PeakMemoryBytes(2, 4, 8, 8)
	rec := c.PeakMemoryBytesRecompute(2, 4, 8, 8)
	if rec >= full {
		t.Fatalf("recompute peak %d >= full peak %d", rec, full)
	}
}

// TestCheckpointBytes pins the checkpoint sizing: 14 bytes per parameter
// (FP16 weights + FP32 master + Adam moments, no gradients), independent of
// sharding, and strictly below the resident 18-byte training state.
func TestCheckpointBytes(t *testing.T) {
	m := MTNLG530B()
	if got, want := m.CheckpointBytes(), m.Params()*BytesPerParamCheckpoint; got != want {
		t.Fatalf("CheckpointBytes = %d, want Params x %d = %d", got, BytesPerParamCheckpoint, want)
	}
	if BytesPerParamCheckpoint >= BytesPerParamState {
		t.Fatal("checkpoint must be smaller than resident state (gradients are not persisted)")
	}
	// MT-NLG 530B: ~530e9 params x 14 B = ~7.4 TB, the scale that makes
	// checkpoint bandwidth matter at 2,240 GPUs.
	if tb := float64(m.CheckpointBytes()) / 1e12; tb < 7 || tb > 8 {
		t.Errorf("MT-NLG checkpoint = %.2f TB, want ~7.4 TB", tb)
	}
}
