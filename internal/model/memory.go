package model

// Memory modeling follows Megatron-LM's mixed-precision training recipe,
// which the paper's testbed (Megatron-DeepSpeed, FP16) uses:
//
//   - model states: 18 bytes per parameter (FP16 weights 2 + FP16 gradients 2
//     + FP32 master weights 4 + Adam first/second moments 8), sharded across
//     tensor-parallel and pipeline-parallel ranks;
//   - activations: per micro-batch, per layer, s·b·h·(34 + 5·n·s/h) bytes
//     without tensor parallelism (Korthikanti et al.), with the
//     tensor-parallel shardable portion divided by t.
//
// These numbers prune infeasible (t,d,p,m) points during design-space
// exploration exactly as real Megatron runs would OOM.

// BytesPerParamState is the mixed-precision Adam state size per parameter.
const BytesPerParamState = 18

// BytesPerParamCheckpoint is the per-parameter size of the state a
// checkpoint must persist to resume training exactly: FP16 weights (2) +
// FP32 master weights (4) + Adam first/second moments (8). Gradients are
// recomputed on restart, so the checkpoint is 4 bytes/param smaller than
// the resident BytesPerParamState.
const BytesPerParamCheckpoint = 14

// CheckpointBytes returns the size of one full training checkpoint: every
// parameter's persistent optimizer state, independent of how the model is
// sharded (each rank writes its shard, the aggregate is the whole model).
// internal/resilience derives checkpoint-write time from it.
func (c Config) CheckpointBytes() uint64 {
	return c.Params() * BytesPerParamCheckpoint
}

// ModelStateBytes returns the per-GPU bytes of weights, gradients, and
// optimizer state when the model is sharded t-way tensor parallel and p-way
// pipeline parallel. Data parallelism replicates states, so d does not
// appear. Embeddings shard across t like everything else in Megatron.
func (c Config) ModelStateBytes(t, p int) uint64 {
	if t < 1 {
		t = 1
	}
	if p < 1 {
		p = 1
	}
	// The pipeline partitions layers; the first stage additionally holds
	// the embedding and the last the LM head (tied weights). Charge the
	// worst stage: ceil(L/p) layers plus the embedding table.
	h := uint64(c.Hidden)
	layersPerStage := (uint64(c.Layers) + uint64(p) - 1) / uint64(p)
	perLayer := 12*h*h + 13*h
	stageParams := layersPerStage*perLayer + uint64(c.Vocab)*h + uint64(c.SeqLen)*h
	return stageParams * BytesPerParamState / uint64(t)
}

// ActivationBytesPerMicroBatch returns the activation memory of one
// micro-batch of microBatch sequences resident on one pipeline stage, with
// t-way tensor parallelism and no activation recomputation.
func (c Config) ActivationBytesPerMicroBatch(microBatch, t, p int) uint64 {
	if t < 1 {
		t = 1
	}
	if p < 1 {
		p = 1
	}
	s := float64(c.SeqLen)
	b := float64(microBatch)
	h := float64(c.Hidden)
	n := float64(c.Heads)
	tf := float64(t)
	// Per-layer: sbh·(10 + 24/t + 5ns/(ht)); the constant 10 covers the
	// unshardable LayerNorm/dropout/residual tensors.
	perLayer := s * b * h * (10 + 24/tf + 5*n*s/(h*tf))
	layersPerStage := (c.Layers + p - 1) / p
	return uint64(perLayer) * uint64(layersPerStage)
}

// PeakMemoryBytes estimates per-GPU peak memory for a training configuration:
// model states plus activations for the number of in-flight micro-batches
// (inFlight = pipeline depth p under 1F1B, total micro-batch count under
// GPipe).
func (c Config) PeakMemoryBytes(microBatch, t, p, inFlight int) uint64 {
	if inFlight < 1 {
		inFlight = 1
	}
	return c.ModelStateBytes(t, p) + uint64(inFlight)*c.ActivationBytesPerMicroBatch(microBatch, t, p)
}

// RecomputeActivationBytesPerMicroBatch returns the stored activation
// memory per in-flight micro-batch under full activation recomputation:
// only each layer's FP16 input (2·s·b·h bytes, sharded across t by sequence
// parallelism in modern Megatron; we keep the unsharded checkpoint as the
// conservative classic behavior).
func (c Config) RecomputeActivationBytesPerMicroBatch(microBatch, t, p int) uint64 {
	if p < 1 {
		p = 1
	}
	layersPerStage := (c.Layers + p - 1) / p
	perLayer := 2 * uint64(c.SeqLen) * uint64(microBatch) * uint64(c.Hidden)
	return perLayer * uint64(layersPerStage)
}

// PeakMemoryBytesRecompute is PeakMemoryBytes under full activation
// recomputation: checkpointed layer inputs for every in-flight micro-batch
// plus one layer's full working set (the layer currently being recomputed).
func (c Config) PeakMemoryBytesRecompute(microBatch, t, p, inFlight int) uint64 {
	if inFlight < 1 {
		inFlight = 1
	}
	// ActivationBytesPerMicroBatch charges a full stage; p = Layers makes
	// that exactly one layer — the recompute working set.
	working := c.ActivationBytesPerMicroBatch(microBatch, t, c.Layers)
	return c.ModelStateBytes(t, p) +
		uint64(inFlight)*c.RecomputeActivationBytesPerMicroBatch(microBatch, t, p) +
		working
}
