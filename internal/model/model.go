// Package model describes decoder-only transformer LLM architectures and the
// analytic quantities vTrain derives from them: parameter counts, FLOP
// counts, and activation-memory footprints.
//
// A model is characterized exactly as in Section II-A of the paper: hidden
// size h, number of decoder layers L, maximum sequence length s, number of
// attention heads n, plus the vocabulary size V that sizes the embedding and
// LM head.
package model

import "fmt"

// Config is a decoder-only transformer architecture.
type Config struct {
	// Name labels the configuration in reports.
	Name string
	// Hidden is the hidden size h.
	Hidden int
	// Layers is the number of decoder layers L.
	Layers int
	// SeqLen is the maximum sequence length s (tokens per sample).
	SeqLen int
	// Heads is the number of attention heads n; Hidden must be divisible
	// by Heads.
	Heads int
	// Vocab is the vocabulary size V. Megatron pads the vocabulary to a
	// multiple of 128*t; we keep the nominal size and let callers round.
	Vocab int
}

// Validate reports an error for inconsistent architectures.
func (c Config) Validate() error {
	switch {
	case c.Hidden <= 0:
		return fmt.Errorf("model %s: hidden size must be positive, got %d", c.Name, c.Hidden)
	case c.Layers <= 0:
		return fmt.Errorf("model %s: layer count must be positive, got %d", c.Name, c.Layers)
	case c.SeqLen <= 0:
		return fmt.Errorf("model %s: sequence length must be positive, got %d", c.Name, c.SeqLen)
	case c.Heads <= 0:
		return fmt.Errorf("model %s: head count must be positive, got %d", c.Name, c.Heads)
	case c.Vocab <= 0:
		return fmt.Errorf("model %s: vocabulary must be positive, got %d", c.Name, c.Vocab)
	case c.Hidden%c.Heads != 0:
		return fmt.Errorf("model %s: hidden size %d not divisible by %d heads", c.Name, c.Hidden, c.Heads)
	}
	return nil
}

// HeadDim returns the per-head dimension h/n.
func (c Config) HeadDim() int { return c.Hidden / c.Heads }

// Params returns the total parameter count: L·(12h²+13h) for the decoder
// stack (QKV + attention output projections = 4h², FFN = 8h², plus biases
// and the two LayerNorms), the tied word embedding V·h, positional
// embeddings s·h, and the final LayerNorm.
func (c Config) Params() uint64 {
	h := uint64(c.Hidden)
	perLayer := 12*h*h + 13*h
	return uint64(c.Layers)*perLayer + uint64(c.Vocab)*h + uint64(c.SeqLen)*h + 2*h
}

// ParamsBillions returns Params in units of 1e9, convenient for reports.
func (c Config) ParamsBillions() float64 { return float64(c.Params()) / 1e9 }

// FLOPsPerIteration returns the total FLOPs of one training iteration over a
// global batch of batchSeqs sequences, using the Megatron-LM analytic model
// (Narayanan et al., SC'21):
//
//	F = 96·B·s·L·h² · (1 + s/(6h) + V/(16·L·h))
//
// which accounts for forward+backward matmuls (factor 6 over the 16·B·s·L·h²
// forward GEMM FLOPs), the quadratic attention term, and the LM head.
func (c Config) FLOPsPerIteration(batchSeqs int) float64 {
	b := float64(batchSeqs)
	s := float64(c.SeqLen)
	l := float64(c.Layers)
	h := float64(c.Hidden)
	v := float64(c.Vocab)
	return 96 * b * s * l * h * h * (1 + s/(6*h) + v/(16*l*h))
}

// TokensPerIteration returns batch tokens for a given global batch size in
// sequences.
func (c Config) TokensPerIteration(batchSeqs int) uint64 {
	return uint64(batchSeqs) * uint64(c.SeqLen)
}

// Iterations returns the number of training iterations needed to consume
// totalTokens with the given global batch (sequences), rounding up.
func (c Config) Iterations(totalTokens uint64, batchSeqs int) uint64 {
	per := c.TokensPerIteration(batchSeqs)
	if per == 0 {
		return 0
	}
	return (totalTokens + per - 1) / per
}

// String implements fmt.Stringer.
func (c Config) String() string {
	return fmt.Sprintf("%s(h=%d,L=%d,s=%d,n=%d,V=%d,%.1fB)",
		c.Name, c.Hidden, c.Layers, c.SeqLen, c.Heads, c.Vocab, c.ParamsBillions())
}
