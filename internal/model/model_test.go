package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{"valid", func(c *Config) {}, false},
		{"zero hidden", func(c *Config) { c.Hidden = 0 }, true},
		{"negative hidden", func(c *Config) { c.Hidden = -1 }, true},
		{"zero layers", func(c *Config) { c.Layers = 0 }, true},
		{"zero seq", func(c *Config) { c.SeqLen = 0 }, true},
		{"zero heads", func(c *Config) { c.Heads = 0 }, true},
		{"zero vocab", func(c *Config) { c.Vocab = 0 }, true},
		{"heads not dividing hidden", func(c *Config) { c.Heads = 7 }, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			c := GPT3175B()
			tc.mutate(&c)
			err := c.Validate()
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate() error = %v, wantErr = %v", err, tc.wantErr)
			}
		})
	}
}

func TestParamsMatchPublishedCounts(t *testing.T) {
	// The catalog names embed the published parameter counts; the
	// analytic formula must reproduce them within 2 %.
	tests := []struct {
		cfg  Config
		want float64 // billions
	}{
		{GPT3175B(), 175},
		{MTNLG530B(), 530},
		{Megatron3_6B(), 3.6},
		{Megatron18_4B(), 18.4},
		{Megatron39_1B(), 39.1},
		{Megatron81_2B(), 81.2},
	}
	for _, tc := range tests {
		got := tc.cfg.ParamsBillions()
		if rel := math.Abs(got-tc.want) / tc.want; rel > 0.02 {
			t.Errorf("%s: params = %.2fB, want %.2fB (rel err %.1f%%)", tc.cfg.Name, got, tc.want, 100*rel)
		}
	}
}

func TestHeadDim(t *testing.T) {
	c := GPT3175B()
	if got, want := c.HeadDim(), 128; got != want {
		t.Fatalf("HeadDim() = %d, want %d", got, want)
	}
}

func TestFLOPsPerIterationAgainstSixND(t *testing.T) {
	// The Megatron analytic FLOPs must exceed the 6·N·D lower bound
	// (it adds attention and LM-head terms) but stay within ~1.6x.
	for _, c := range []Config{GPT3175B(), MTNLG530B(), Megatron18_4B()} {
		batch := 1024
		got := c.FLOPsPerIteration(batch)
		lower := 6 * float64(c.Params()) * float64(c.TokensPerIteration(batch))
		if got < lower {
			t.Errorf("%s: FLOPs %.3g below 6·N·D bound %.3g", c.Name, got, lower)
		}
		if got > 1.6*lower {
			t.Errorf("%s: FLOPs %.3g implausibly above 6·N·D bound %.3g", c.Name, got, lower)
		}
	}
}

func TestIterations(t *testing.T) {
	c := MTNLG530B()
	// MT-NLG: 270B tokens at batch 1920 x 2048 tokens -> ~68,000 iters
	// (the paper's Section V-A).
	iters := c.Iterations(270e9, 1920)
	if iters < 65000 || iters > 71000 {
		t.Fatalf("Iterations = %d, want ~68,000", iters)
	}
}

func TestIterationsRoundsUp(t *testing.T) {
	c := Config{Name: "t", Hidden: 64, Layers: 2, SeqLen: 10, Heads: 2, Vocab: 100}
	if got := c.Iterations(25, 1); got != 3 { // 10 tokens/iter, 25 tokens
		t.Fatalf("Iterations(25, 1) = %d, want 3", got)
	}
	if got := c.Iterations(0, 1); got != 0 {
		t.Fatalf("Iterations(0, 1) = %d, want 0", got)
	}
}

func TestTokensPerIterationZeroBatchGuard(t *testing.T) {
	c := GPT3175B()
	if got := c.Iterations(100, 0); got != 0 {
		t.Fatalf("Iterations with zero batch = %d, want 0", got)
	}
}

func TestParamsMonotoneInDimensions(t *testing.T) {
	// Property: params grow monotonically in hidden size and layers.
	f := func(h8, l uint8) bool {
		h := (int(h8)%32 + 1) * 128
		layers := int(l)%48 + 1
		base := Config{Name: "p", Hidden: h, Layers: layers, SeqLen: 512, Heads: 1, Vocab: 1000}
		bigger := base
		bigger.Hidden += 128
		deeper := base
		deeper.Layers++
		return bigger.Params() > base.Params() && deeper.Params() > base.Params()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableIII(t *testing.T) {
	rows := TableIII()
	if len(rows) != 3 {
		t.Fatalf("TableIII has %d rows, want 3", len(rows))
	}
	wantBatch := []int{1024, 1536, 1792}
	for i, r := range rows {
		if err := r.Config.Validate(); err != nil {
			t.Errorf("row %d: %v", i, err)
		}
		if r.Batch != wantBatch[i] {
			t.Errorf("row %d: batch %d, want %d", i, r.Batch, wantBatch[i])
		}
	}
}

func TestCustomUsesMegatronVocab(t *testing.T) {
	c := Custom(1024, 24, 2048, 16)
	if c.Vocab != megatronVocab {
		t.Fatalf("Custom vocab = %d, want %d", c.Vocab, megatronVocab)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStringIncludesShape(t *testing.T) {
	s := GPT3175B().String()
	for _, want := range []string{"h=12288", "L=96", "174.6B"} {
		if !contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
