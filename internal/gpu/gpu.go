// Package gpu is the simulated silicon: an analytical timing model of
// NVIDIA data-center GPUs (V100, A100, H100 — selected by hw.GPU.Arch)
// that stands in for the real GPU the paper's profiling module (CUPTI)
// measures. The model is calibrated on the paper's A100; other generations
// reuse its structure with generation-specific efficiency knobs.
//
// The model preserves the structure that drives vTrain's results:
//
//   - dense FP16 tensor-core GEMMs follow a roofline with tile quantization
//     (partial CTA tiles waste lanes), wave quantization (the last wave of
//     CTAs underfills the 108 SMs), and a K-depth pipeline efficiency term,
//     so small or skinny GEMMs achieve a small fraction of peak while large
//     square GEMMs approach the ~80 % of peak that cuBLAS sustains on A100
//     (the remaining gap to the end-to-end utilizations the paper reports
//     comes from activation recomputation, pipeline bubbles, and
//     communication — all modeled at the graph level, not here);
//   - element-wise, softmax, LayerNorm, and embedding kernels are memory-
//     bandwidth bound;
//   - every kernel pays a fixed launch overhead.
//
// Kernel timings are deterministic, mirroring the paper's observation that
// "the execution time of each individual LLM graph node over a target GPU
// architecture is highly deterministic and exhibits little variance".
package gpu

import (
	"fmt"
	"math"

	"vtrain/internal/hw"
)

// Kernel is one simulated CUDA kernel: what CUPTI would report.
type Kernel struct {
	// Name mimics a CUDA kernel symbol, e.g.
	// "ampere_fp16_s16816gemm_256x128_tn".
	Name string
	// Duration is the wall-clock execution time in seconds, excluding
	// launch overhead (reported separately so schedulers can decide
	// whether launches overlap).
	Duration float64
	// FLOPs is the arithmetic work of the kernel.
	FLOPs float64
	// Bytes is the DRAM traffic of the kernel.
	Bytes float64
}

// Device evaluates kernel timings for one GPU specification.
type Device struct {
	// Spec is the datasheet description.
	Spec hw.GPU

	// MaxTensorEff is the ceiling fraction of peak tensor FLOPS a
	// perfectly shaped GEMM sustains (cuBLAS on A100: ~0.80-0.85).
	MaxTensorEff float64
	// MemEff is the achievable fraction of peak DRAM bandwidth for
	// streaming kernels (~0.8).
	MemEff float64

	// tileM, tileN are the CTA tile dimensions of the modeled GEMM
	// kernel; kChunk is the K depth at which the multiply-accumulate
	// pipeline reaches half its asymptotic efficiency.
	tileM, tileN, kChunk int
	// gemmKernel is the architecture's GEMM kernel-symbol prefix.
	gemmKernel string
}

// archKnobs are the generation-dependent empirical factors of the GEMM
// model: how close to peak a perfect GEMM gets, the CTA tile the
// generation's cuBLAS kernels use (tile/wave quantization granularity), the
// K depth hiding the MMA pipeline, and the kernel-symbol family. The
// ampere row reproduces the paper's A100 calibration exactly; volta and
// hopper extend it with that generation's published cuBLAS behavior
// (1st-gen tensor cores sustain a lower fraction of peak; Hopper's larger
// wgmma tiles need deeper K to fill their pipeline).
type archKnobs struct {
	maxTensorEff, memEff float64
	tileM, tileN, kChunk int
	gemmKernel           string
}

func knobsFor(a hw.Arch) archKnobs {
	switch a {
	case hw.Volta:
		return archKnobs{0.72, 0.75, 64, 64, 32, "volta_fp16_s884gemm_fp16"}
	case hw.Hopper:
		return archKnobs{0.80, 0.80, 128, 256, 96, "hopper_fp16_s64x128gemm_fp16"}
	default: // Ampere, and the zero value for hand-built specs
		return archKnobs{0.82, 0.78, 128, 128, 64, "ampere_fp16_s16816gemm_fp16"}
	}
}

// NewDevice builds the timing model for a GPU specification, selecting the
// efficiency knobs of its architecture generation (Spec.Arch; the zero
// value models Ampere, the paper's generation).
func NewDevice(spec hw.GPU) *Device {
	k := knobsFor(spec.Arch)
	return &Device{
		Spec:         spec,
		MaxTensorEff: k.maxTensorEff,
		MemEff:       k.memEff,
		tileM:        k.tileM,
		tileN:        k.tileN,
		kChunk:       k.kChunk,
		gemmKernel:   k.gemmKernel,
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// gemmEfficiency returns the fraction of peak tensor throughput achieved by
// a (batch × M×N×K) GEMM.
func (d *Device) gemmEfficiency(batch, m, n, k int) float64 {
	// Tile quantization: partial tiles still occupy a full CTA.
	tm := float64(m) / float64(ceilDiv(m, d.tileM)*d.tileM)
	tn := float64(n) / float64(ceilDiv(n, d.tileN)*d.tileN)
	// Wave quantization: the tail wave underfills the SM array.
	ctas := ceilDiv(m, d.tileM) * ceilDiv(n, d.tileN) * batch
	waves := ceilDiv(ctas, d.Spec.SMCount)
	wq := float64(ctas) / float64(waves*d.Spec.SMCount)
	// K-depth pipeline efficiency: short accumulations cannot hide
	// the MMA pipeline latency.
	ke := float64(k) / float64(k+d.kChunk)
	return d.MaxTensorEff * tm * tn * wq * ke
}

// GEMM times a half-precision batched matrix multiply C[MxN] = A[MxK] x
// B[KxN] repeated batch times. transposed layouts do not change the model.
func (d *Device) GEMM(batch, m, n, k int) Kernel {
	if batch < 1 {
		batch = 1
	}
	flops := 2 * float64(batch) * float64(m) * float64(n) * float64(k)
	bytes := 2 * float64(batch) * (float64(m)*float64(k) + float64(k)*float64(n) + float64(m)*float64(n))
	eff := d.gemmEfficiency(batch, m, n, k)
	compute := flops / (d.Spec.PeakTensorFLOPS * eff)
	memory := bytes / (d.Spec.MemBandwidth * d.MemEff)
	dur := math.Max(compute, memory)
	return Kernel{
		Name:     fmt.Sprintf("%s_%dx%d_ldg8_b%d_m%d_n%d_k%d", d.gemmKernel, d.tileM, d.tileN, batch, m, n, k),
		Duration: dur,
		FLOPs:    flops,
		Bytes:    bytes,
	}
}

// Elementwise times a memory-bound kernel touching elems elements with
// bytesPerElem total DRAM traffic each (reads + writes). flopsPerElem
// models unusually arithmetic-heavy pointwise ops (e.g. GELU ~ 8 flops).
func (d *Device) Elementwise(name string, elems int, bytesPerElem, flopsPerElem float64) Kernel {
	bytes := float64(elems) * bytesPerElem
	flops := float64(elems) * flopsPerElem
	memory := bytes / (d.Spec.MemBandwidth * d.MemEff)
	compute := flops / d.Spec.PeakVectorFLOPS
	return Kernel{
		Name:     fmt.Sprintf("vectorized_elementwise_%s_n%d", name, elems),
		Duration: math.Max(memory, compute),
		FLOPs:    flops,
		Bytes:    bytes,
	}
}

// Softmax times a row-wise softmax over rows x cols half-precision
// elements: one read pass for the max/sum reduction fused with the exp, one
// write pass (cuDNN-style warp softmax).
func (d *Device) Softmax(rows, cols int) Kernel {
	elems := float64(rows) * float64(cols)
	bytes := elems * 4 // fp16 read + fp16 write
	flops := elems * 5 // exp + sub + div + 2 reduction ops
	memory := bytes / (d.Spec.MemBandwidth * d.MemEff)
	compute := flops / d.Spec.PeakVectorFLOPS
	return Kernel{
		Name:     fmt.Sprintf("softmax_warp_forward_r%d_c%d", rows, cols),
		Duration: math.Max(memory, compute),
		FLOPs:    flops,
		Bytes:    bytes,
	}
}

// LayerNorm times a LayerNorm over rows of width cols: two passes over the
// data (statistics + normalize) in fp16 with fp32 accumulation.
func (d *Device) LayerNorm(rows, cols int) Kernel {
	elems := float64(rows) * float64(cols)
	bytes := elems * 6 // read twice + write once, fp16
	flops := elems * 8
	memory := bytes / (d.Spec.MemBandwidth * d.MemEff)
	compute := flops / d.Spec.PeakVectorFLOPS
	return Kernel{
		Name:     fmt.Sprintf("layer_norm_forward_r%d_c%d", rows, cols),
		Duration: math.Max(memory, compute),
		FLOPs:    flops,
		Bytes:    bytes,
	}
}

// Embedding times the embedding-table gather writing tokens x hidden fp16
// activations (reads are scattered; charge 2x the contiguous cost).
func (d *Device) Embedding(tokens, hidden int) Kernel {
	elems := float64(tokens) * float64(hidden)
	bytes := elems * 2 * 3 // scattered read (2x penalty) + write
	return Kernel{
		Name:     fmt.Sprintf("embedding_lookup_t%d_h%d", tokens, hidden),
		Duration: bytes / (d.Spec.MemBandwidth * d.MemEff),
		FLOPs:    0,
		Bytes:    bytes,
	}
}

// AdamStep times the fused Adam optimizer update over params parameters in
// mixed precision: reads fp16 grad + fp32 master + two fp32 moments, writes
// fp32 master + moments + fp16 weight.
func (d *Device) AdamStep(params uint64) Kernel {
	bytes := float64(params) * (2 + 4 + 8 + 4 + 8 + 2)
	flops := float64(params) * 12
	memory := bytes / (d.Spec.MemBandwidth * d.MemEff)
	compute := flops / d.Spec.PeakVectorFLOPS
	return Kernel{
		Name:     fmt.Sprintf("multi_tensor_adam_n%d", params),
		Duration: math.Max(memory, compute),
		FLOPs:    flops,
		Bytes:    bytes,
	}
}
