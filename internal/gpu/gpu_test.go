package gpu

import (
	"math"
	"testing"
	"testing/quick"

	"vtrain/internal/hw"
)

func dev() *Device { return NewDevice(hw.A100SXM80GB()) }

func TestGEMMLargeSquareApproachesCeiling(t *testing.T) {
	d := dev()
	k := d.GEMM(1, 8192, 8192, 8192)
	achieved := k.FLOPs / k.Duration / d.Spec.PeakTensorFLOPS
	if achieved < 0.70 || achieved > d.MaxTensorEff+1e-9 {
		t.Fatalf("8Kx8Kx8K GEMM achieves %.2f of peak, want in [0.70, %.2f]", achieved, d.MaxTensorEff)
	}
}

func TestGEMMSmallIsInefficient(t *testing.T) {
	d := dev()
	k := d.GEMM(1, 64, 64, 64)
	achieved := k.FLOPs / k.Duration / d.Spec.PeakTensorFLOPS
	if achieved > 0.05 {
		t.Fatalf("tiny GEMM achieves %.3f of peak, expected < 0.05 (memory/quantization bound)", achieved)
	}
}

func TestGEMMTileQuantizationPenalty(t *testing.T) {
	d := dev()
	// At SM saturation, a 129-wide N wastes nearly half of the second
	// 128-column tile; per-flop time must be worse than the aligned
	// shape. (Below saturation the extra CTA parallelism hides the
	// waste, as on real hardware.)
	aligned := d.GEMM(1, 108*128, 128, 4096)
	ragged := d.GEMM(1, 108*128, 129, 4096)
	perFlopAligned := aligned.Duration / aligned.FLOPs
	perFlopRagged := ragged.Duration / ragged.FLOPs
	if perFlopRagged <= perFlopAligned {
		t.Fatalf("ragged GEMM per-flop time %.3g not worse than aligned %.3g", perFlopRagged, perFlopAligned)
	}
}

func TestGEMMDurationMonotoneInK(t *testing.T) {
	f := func(k16 uint16) bool {
		d := dev()
		k := int(k16)%4096 + 1
		a := d.GEMM(1, 1024, 1024, k)
		b := d.GEMM(1, 1024, 1024, k+128)
		return b.Duration > a.Duration
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGEMMBatchClamp(t *testing.T) {
	d := dev()
	if got, want := d.GEMM(0, 128, 128, 128).Duration, d.GEMM(1, 128, 128, 128).Duration; got != want {
		t.Fatal("batch 0 must clamp to 1")
	}
}

func TestGEMMFLOPsExact(t *testing.T) {
	d := dev()
	k := d.GEMM(3, 100, 200, 50)
	if want := 2.0 * 3 * 100 * 200 * 50; k.FLOPs != want {
		t.Fatalf("FLOPs = %g, want %g", k.FLOPs, want)
	}
}

func TestMemoryBoundKernels(t *testing.T) {
	d := dev()
	// All streaming kernels must be within 30% of the bandwidth bound
	// and never exceed it.
	kernels := []Kernel{
		d.Elementwise("relu", 1<<24, 4, 1),
		d.Softmax(1<<14, 2048),
		d.LayerNorm(1<<14, 4096),
		d.Embedding(1<<20, 1024),
		d.AdamStep(1 << 26),
	}
	for _, k := range kernels {
		bound := k.Bytes / (d.Spec.MemBandwidth * d.MemEff)
		if k.Duration < bound-1e-12 {
			t.Errorf("%s: duration %.3g below bandwidth bound %.3g", k.Name, k.Duration, bound)
		}
		if k.Duration > 1.3*bound {
			t.Errorf("%s: duration %.3g far above bandwidth bound %.3g (should be memory bound)", k.Name, k.Duration, bound)
		}
	}
}

func TestElementwiseComputeBoundCase(t *testing.T) {
	d := dev()
	// Absurd flops-per-elem flips the kernel to compute bound.
	k := d.Elementwise("heavy", 1<<20, 4, 1e6)
	if math.Abs(k.Duration-k.FLOPs/d.Spec.PeakVectorFLOPS) > 1e-12 {
		t.Fatal("compute-heavy elementwise must be compute bound")
	}
}

func TestKernelNamesDistinguishShapes(t *testing.T) {
	d := dev()
	a := d.GEMM(1, 128, 256, 512).Name
	b := d.GEMM(1, 128, 256, 1024).Name
	if a == b {
		t.Fatal("kernel names must encode shapes for CUPTI-style traces")
	}
}

func TestDeterminism(t *testing.T) {
	d := dev()
	a := d.GEMM(4, 2048, 512, 768)
	b := d.GEMM(4, 2048, 512, 768)
	if a != b {
		t.Fatal("kernel timing must be deterministic")
	}
}

func TestDurationsAlwaysPositive(t *testing.T) {
	f := func(b, m, n, k uint8) bool {
		d := dev()
		kn := d.GEMM(int(b)%8+1, int(m)+1, int(n)+1, int(k)+1)
		return kn.Duration > 0 && !math.IsNaN(kn.Duration) && !math.IsInf(kn.Duration, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWaveQuantization(t *testing.T) {
	d := dev()
	// 109 CTAs on 108 SMs needs two waves: per-flop efficiency drops
	// sharply versus 108 CTAs.
	e108 := d.gemmEfficiency(108, 128, 128, 4096)
	e109 := d.gemmEfficiency(109, 128, 128, 4096)
	if e109 >= e108*0.65 {
		t.Fatalf("wave quantization too weak: 108 CTAs %.3f vs 109 CTAs %.3f", e108, e109)
	}
}

// TestArchKnobsSelectGeneration checks NewDevice wires the
// generation-dependent efficiency curve: the zero-value Arch behaves as
// Ampere (the paper's calibration), and each generation gets its own GEMM
// kernel family.
func TestArchKnobsSelectGeneration(t *testing.T) {
	volta := NewDevice(hw.V100SXM32GB())
	ampere := NewDevice(hw.A100SXM80GB())
	hopper := NewDevice(hw.H100SXM80GB())

	legacy := hw.A100SXM80GB()
	legacy.Arch = "" // hand-built specs predating the catalog
	if d := NewDevice(legacy); *d != func() Device { a := *ampere; a.Spec.Arch = ""; return a }() {
		t.Error("zero-value Arch must model Ampere exactly")
	}

	if !(volta.MaxTensorEff < ampere.MaxTensorEff) {
		t.Errorf("Volta tensor efficiency ceiling %.2f not below Ampere's %.2f", volta.MaxTensorEff, ampere.MaxTensorEff)
	}
	names := map[string]string{
		"volta":  volta.GEMM(1, 4096, 4096, 4096).Name,
		"ampere": ampere.GEMM(1, 4096, 4096, 4096).Name,
		"hopper": hopper.GEMM(1, 4096, 4096, 4096).Name,
	}
	for arch, name := range names {
		if len(name) < len(arch) || name[:len(arch)] != arch {
			t.Errorf("%s GEMM kernel %q does not carry its architecture family", arch, name)
		}
	}
}

// TestGenerationsOrderLargeGEMM pins the headline hardware ordering: on a
// large training-shaped GEMM, each newer generation is strictly faster.
func TestGenerationsOrderLargeGEMM(t *testing.T) {
	shape := func(d *Device) float64 { return d.GEMM(1, 8192, 8192, 8192).Duration }
	v := shape(NewDevice(hw.V100SXM32GB()))
	a := shape(NewDevice(hw.A100SXM80GB()))
	h := shape(NewDevice(hw.H100SXM80GB()))
	if !(h < a && a < v) {
		t.Fatalf("8K GEMM durations not ordered H100 < A100 < V100: %g, %g, %g", h, a, v)
	}
	// The gap must stay below the raw peak ratio (efficiency knobs cannot
	// make a newer part *more* than proportionally faster).
	if ratio := v / h; ratio > 989.4e12/125e12*1.2 {
		t.Errorf("V100->H100 speedup %.1fx exceeds plausible peak ratio", ratio)
	}
}

// TestMemoryBoundKernelsScaleWithHBM checks streaming kernels follow HBM
// bandwidth across generations.
func TestMemoryBoundKernelsScaleWithHBM(t *testing.T) {
	v := NewDevice(hw.V100SXM32GB()).LayerNorm(16384, 4096).Duration
	h := NewDevice(hw.H100SXM80GB()).LayerNorm(16384, 4096).Duration
	if !(h < v) {
		t.Fatalf("H100 LayerNorm (%g s) not faster than V100 (%g s)", h, v)
	}
}
