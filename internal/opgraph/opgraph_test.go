package opgraph

import (
	"strings"
	"testing"
	"testing/quick"

	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/parallel"
	"vtrain/internal/profiler"
)

func tinyModel() model.Config {
	return model.Config{Name: "tiny", Hidden: 256, Layers: 4, SeqLen: 128, Heads: 4, Vocab: 1024}
}

func build(t *testing.T, m model.Config, plan parallel.Plan, nodes int) *Graph {
	t.Helper()
	g, err := Build(m, plan, hw.PaperCluster(nodes))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func count(g *Graph, kind NodeKind) int {
	n := 0
	for id := 0; id < g.NumNodes(); id++ {
		if g.Node(id).Kind == kind {
			n++
		}
	}
	return n
}

// checkAcyclic verifies IDs are topologically ordered (every dep precedes
// its dependent), which implies acyclicity.
func checkAcyclic(t *testing.T, g *Graph) {
	t.Helper()
	for id := 0; id < g.NumNodes(); id++ {
		for _, d := range g.Deps(id) {
			if int(d) >= id {
				t.Fatalf("node %d (%s) depends on later node %d", id, g.Label(id), d)
			}
		}
	}
}

func TestDataParallelBucketing(t *testing.T) {
	m := tinyModel()
	// Fig. 5a: with bucketing enabled, one All-Reduce per bucket.
	plan := parallel.Plan{Tensor: 1, Data: 4, Pipeline: 1, MicroBatch: 1, GlobalBatch: 8, GradientBuckets: 2}
	g := build(t, m, plan, 1)
	if got := count(g, AllReduceDP); got != 2 {
		t.Fatalf("bucketed DP All-Reduces = %d, want 2", got)
	}

	// Fig. 5b: without bucketing, a single All-Reduce at backward end.
	plan.GradientBuckets = 0
	g = build(t, m, plan, 1)
	if got := count(g, AllReduceDP); got != 1 {
		t.Fatalf("unbucketed DP All-Reduces = %d, want 1", got)
	}

	// No data parallelism, no gradient All-Reduce.
	plan = parallel.Plan{Tensor: 1, Data: 1, Pipeline: 1, MicroBatch: 1, GlobalBatch: 2, GradientBuckets: 4}
	g = build(t, m, plan, 1)
	if got := count(g, AllReduceDP); got != 0 {
		t.Fatalf("d=1 DP All-Reduces = %d, want 0", got)
	}
}

func TestBucketOverlapDependencies(t *testing.T) {
	// A bucket's All-Reduce must depend on a backward compute node of the
	// final micro-batch, not on the end of the whole backward pass — that
	// is what lets it overlap (Fig. 5a).
	m := tinyModel()
	plan := parallel.Plan{Tensor: 1, Data: 4, Pipeline: 1, MicroBatch: 1, GlobalBatch: 8, GradientBuckets: 2}
	g := build(t, m, plan, 1)
	var arIDs []int
	lastComputeID := int32(-1)
	for id := 0; id < g.NumNodes(); id++ {
		n := g.Node(id)
		if n.Kind == AllReduceDP {
			arIDs = append(arIDs, id)
		}
		if n.Kind == Compute && n.Op != profiler.WeightUpdate {
			lastComputeID = n.ID
		}
	}
	// The bucket covering the later layers must be ready before the
	// backward pass fully completes: its dependency ID < lastComputeID.
	early := false
	for _, id := range arIDs {
		for _, d := range g.Deps(id) {
			if d < lastComputeID {
				early = true
			}
		}
	}
	if !early {
		t.Fatal("no gradient bucket overlaps the backward pass")
	}
}

func TestTensorParallelAllReduceInsertion(t *testing.T) {
	m := tinyModel()
	// Fig. 6: one All-Reduce after MHA and one after FFN, forward and
	// backward, per layer per micro-batch.
	plan := parallel.Plan{Tensor: 4, Data: 1, Pipeline: 1, MicroBatch: 1, GlobalBatch: 2}
	g := build(t, m, plan, 1)
	nmb := plan.MicroBatches() // 2
	want := 4 * m.Layers * nmb
	if got := count(g, AllReduceTP); got != want {
		t.Fatalf("TP All-Reduces = %d, want %d", got, want)
	}
	// t=1 inserts none.
	plan.Tensor = 1
	g = build(t, m, plan, 1)
	if got := count(g, AllReduceTP); got != 0 {
		t.Fatalf("t=1 TP All-Reduces = %d, want 0", got)
	}
}

func TestRecomputeAddsForwardOpsAndAllReduces(t *testing.T) {
	m := tinyModel()
	plan := parallel.Plan{Tensor: 4, Data: 1, Pipeline: 1, MicroBatch: 1, GlobalBatch: 2}
	base := build(t, m, plan, 1)
	plan.Recompute = true
	rec := build(t, m, plan, 1)
	nmb := plan.MicroBatches()
	// Recompute re-runs the forward TP All-Reduces: 2 extra per layer
	// per micro-batch.
	if got, want := count(rec, AllReduceTP)-count(base, AllReduceTP), 2*m.Layers*nmb; got != want {
		t.Fatalf("recompute added %d TP All-Reduces, want %d", got, want)
	}
	if got, want := count(rec, Compute)-count(base, Compute), 2*m.Layers*nmb; got != want {
		t.Fatalf("recompute added %d compute ops, want %d", got, want)
	}
}

func TestPipelineP2PInsertion(t *testing.T) {
	m := tinyModel()
	plan := parallel.Plan{Tensor: 1, Data: 1, Pipeline: 4, MicroBatch: 1, GlobalBatch: 4}
	g := build(t, m, plan, 1)
	nmb := plan.MicroBatches() // 4
	// Forward: 3 boundaries; backward: 3 boundaries; per micro-batch.
	if got, want := count(g, P2P), 2*3*nmb; got != want {
		t.Fatalf("P2P nodes = %d, want %d", got, want)
	}
	// p=1 has none.
	plan = parallel.Plan{Tensor: 1, Data: 1, Pipeline: 1, MicroBatch: 1, GlobalBatch: 4}
	g = build(t, m, plan, 1)
	if got := count(g, P2P); got != 0 {
		t.Fatalf("p=1 P2P nodes = %d, want 0", got)
	}
}

func TestEmbeddingAndHeadPlacement(t *testing.T) {
	m := tinyModel()
	plan := parallel.Plan{Tensor: 1, Data: 1, Pipeline: 4, MicroBatch: 1, GlobalBatch: 2}
	g := build(t, m, plan, 1)
	for id := 0; id < g.NumNodes(); id++ {
		n := g.Node(id)
		if n.Kind != Compute {
			continue
		}
		switch n.Op {
		case profiler.FwdEmbedding, profiler.BwdEmbedding:
			if n.Stage != 0 {
				t.Fatalf("%v on stage %d, want 0", n.Op, n.Stage)
			}
		case profiler.FwdLMHead, profiler.BwdLMHead:
			if int(n.Stage) != plan.Pipeline-1 {
				t.Fatalf("%v on stage %d, want %d", n.Op, n.Stage, plan.Pipeline-1)
			}
		}
	}
}

func TestWeightUpdatePerStage(t *testing.T) {
	m := tinyModel()
	plan := parallel.Plan{Tensor: 2, Data: 2, Pipeline: 4, MicroBatch: 1, GlobalBatch: 4, GradientBuckets: 1}
	g := build(t, m, plan, 8)
	wu := 0
	for id := 0; id < g.NumNodes(); id++ {
		n := g.Node(id)
		if n.Kind == Compute && n.Op == profiler.WeightUpdate {
			wu++
			// Weight update must wait for the stage's gradient
			// All-Reduce.
			foundAR := false
			for _, d := range g.Deps(id) {
				if g.Node(int(d)).Kind == AllReduceDP {
					foundAR = true
				}
			}
			if !foundAR {
				t.Fatalf("weight update %d lacks gradient All-Reduce dependency", id)
			}
		}
	}
	if wu != plan.Pipeline {
		t.Fatalf("weight updates = %d, want %d", wu, plan.Pipeline)
	}
}

func TestGPipeVsOneFOneBSlotOrder(t *testing.T) {
	// Fig. 7: GPipe runs all forwards before any backward; 1F1B
	// interleaves after the warm-up.
	gp := scheduleSlots(parallel.Plan{Schedule: parallel.GPipe}, 0, 2, 4, nil)
	for i := 0; i < 4; i++ {
		if !gp[i].forward {
			t.Fatalf("GPipe slot %d is backward, want forward", i)
		}
	}
	// GPipe backwards run in reverse micro-batch order.
	if gp[4].micro != 3 || gp[7].micro != 0 {
		t.Fatalf("GPipe backward order = %v", gp[4:])
	}

	// 1F1B stage 0 of 2, 4 micro-batches: F0 F1 B0 F2 B1 F3 B2 B3.
	fb := scheduleSlots(parallel.Plan{Schedule: parallel.OneFOneB}, 0, 2, 4, nil)
	want := []slot{
		{forward: true, micro: 0}, {forward: true, micro: 1},
		{forward: false, micro: 0}, {forward: true, micro: 2},
		{forward: false, micro: 1}, {forward: true, micro: 3},
		{forward: false, micro: 2}, {forward: false, micro: 3},
	}
	if len(fb) != len(want) {
		t.Fatalf("1F1B slots = %d, want %d", len(fb), len(want))
	}
	for i := range want {
		if fb[i] != want[i] {
			t.Fatalf("1F1B slot %d = %+v, want %+v (full: %+v)", i, fb[i], want[i], fb)
		}
	}
	// Last stage alternates from the start: F0 B0 F1 B1 ...
	last := scheduleSlots(parallel.Plan{Schedule: parallel.OneFOneB}, 1, 2, 4, nil)
	if !last[0].forward || last[1].forward || last[1].micro != 0 {
		t.Fatalf("1F1B last stage = %+v", last[:2])
	}
}

func TestScheduleSlotsCoverEveryMicroBatchOnce(t *testing.T) {
	f := func(st, p8, n8 uint8) bool {
		p := int(p8)%6 + 1
		stage := int(st) % p
		nmb := int(n8)%12 + 1
		for _, sched := range []parallel.Schedule{parallel.OneFOneB, parallel.GPipe} {
			slots := scheduleSlots(parallel.Plan{Schedule: sched}, stage, p, nmb, nil)
			if len(slots) != 2*nmb {
				return false
			}
			fwd := make(map[int]int)
			bwd := make(map[int]int)
			for _, s := range slots {
				if s.forward {
					fwd[s.micro]++
				} else {
					bwd[s.micro]++
				}
			}
			for j := 0; j < nmb; j++ {
				if fwd[j] != 1 || bwd[j] != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOneFOneBForwardPrecedesBackwardPerMicroBatch(t *testing.T) {
	f := func(st, p8, n8 uint8) bool {
		p := int(p8)%6 + 1
		stage := int(st) % p
		nmb := int(n8)%12 + 1
		slots := scheduleSlots(parallel.Plan{Schedule: parallel.OneFOneB}, stage, p, nmb, nil)
		seen := make(map[int]bool)
		for _, s := range slots {
			if s.forward {
				seen[s.micro] = true
			} else if !seen[s.micro] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGraphAcyclicAcrossPlans(t *testing.T) {
	m := tinyModel()
	plans := []parallel.Plan{
		{Tensor: 1, Data: 1, Pipeline: 1, MicroBatch: 1, GlobalBatch: 1},
		{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 8, GradientBuckets: 2},
		{Tensor: 4, Data: 2, Pipeline: 4, MicroBatch: 2, GlobalBatch: 16, Schedule: parallel.GPipe},
		{Tensor: 1, Data: 4, Pipeline: 4, MicroBatch: 1, GlobalBatch: 12, Recompute: true},
	}
	for _, plan := range plans {
		g := build(t, m, plan, 8)
		checkAcyclic(t, g)
	}
}

func TestGraphAcyclicProperty(t *testing.T) {
	m := tinyModel()
	c := hw.PaperCluster(16)
	f := func(t8, d8, p8, n8 uint8, sched bool) bool {
		plan := parallel.Plan{
			Tensor:     []int{1, 2, 4}[t8%3],
			Data:       int(d8)%4 + 1,
			Pipeline:   int(p8)%4 + 1,
			MicroBatch: 1,
		}
		nmb := int(n8)%8 + 1
		plan.GlobalBatch = plan.Data * nmb
		if sched {
			plan.Schedule = parallel.GPipe
		}
		g, err := Build(m, plan, c)
		if err != nil {
			return false
		}
		for id := 0; id < g.NumNodes(); id++ {
			for _, d := range g.Deps(id) {
				if int(d) >= id {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossStageDependencies(t *testing.T) {
	m := tinyModel()
	plan := parallel.Plan{Tensor: 1, Data: 1, Pipeline: 2, MicroBatch: 1, GlobalBatch: 2}
	g := build(t, m, plan, 1)
	// Every forward receive on stage 1 must depend on a stage-0 node.
	for id := 0; id < g.NumNodes(); id++ {
		n := g.Node(id)
		if n.Kind == P2P && n.Stage == 1 && strings.HasPrefix(n.Label(), "Recv Fwd") {
			ok := false
			for _, d := range g.Deps(id) {
				if g.Node(int(d)).Stage == 0 {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("forward receive %q lacks cross-stage dependency", n.Label())
			}
		}
	}
}

func TestCommScopes(t *testing.T) {
	m := model.Config{Name: "scope", Hidden: 512, Layers: 8, SeqLen: 128, Heads: 8, Vocab: 1024}
	// t=8 fills a node: TP is intra-node, DP (stride 8) is inter-node,
	// stage boundaries are inter-node.
	plan := parallel.Plan{Tensor: 8, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 4, GradientBuckets: 1}
	g := build(t, m, plan, 4)
	for id := 0; id < g.NumNodes(); id++ {
		n := g.Node(id)
		switch n.Kind {
		case AllReduceTP:
			if !n.IntraNode {
				t.Fatal("t=8 TP All-Reduce should be intra-node")
			}
		case AllReduceDP:
			if n.IntraNode {
				t.Fatal("t=8,d=2 DP All-Reduce should be inter-node")
			}
		case P2P:
			if n.IntraNode {
				t.Fatal("t=8 stage boundary should be inter-node")
			}
		}
	}
	// t=2,d=2: everything in one node for the representative replica.
	plan = parallel.Plan{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 4, GradientBuckets: 1}
	g = build(t, m, plan, 4)
	for id := 0; id < g.NumNodes(); id++ {
		n := g.Node(id)
		if n.Kind == AllReduceDP && !n.IntraNode {
			t.Fatal("t=2,d=2 DP All-Reduce should be intra-node")
		}
		if n.Kind == P2P && !n.IntraNode {
			t.Fatal("t=2,d=2,p=2 stage boundary (ranks 0-4) should stay intra-node")
		}
	}
}

func TestBuildValidates(t *testing.T) {
	m := tinyModel()
	bad := parallel.Plan{Tensor: 0, Data: 1, Pipeline: 1, MicroBatch: 1, GlobalBatch: 1}
	if _, err := Build(m, bad, hw.PaperCluster(1)); err == nil {
		t.Fatal("invalid plan must be rejected")
	}
	badModel := m
	badModel.Hidden = 0
	good := parallel.Plan{Tensor: 1, Data: 1, Pipeline: 1, MicroBatch: 1, GlobalBatch: 1}
	if _, err := Build(badModel, good, hw.PaperCluster(1)); err == nil {
		t.Fatal("invalid model must be rejected")
	}
}

func TestNodeKindString(t *testing.T) {
	for kind, want := range map[NodeKind]string{
		Compute: "Compute", AllReduceTP: "AllReduceTP", AllReduceDP: "AllReduceDP", P2P: "P2P",
	} {
		if kind.String() != want {
			t.Fatalf("NodeKind %d string = %q, want %q", kind, kind.String(), want)
		}
	}
}
