// Package opgraph constructs the operator-granularity execution graph of
// one LLM training iteration (Section III-B of the paper).
//
// A graph vertex (layer-node) is either a computation operator (profiled by
// internal/profiler) or a communication operator inserted by the 3D
// parallelism plan:
//
//   - data parallelism inserts gradient All-Reduce operators, either one per
//     gradient bucket overlapping the backward pass (Fig. 5a) or a single
//     one at the end (Fig. 5b);
//   - tensor parallelism inserts an All-Reduce after the MHA and FFN blocks
//     of every layer, in both forward and backward passes (Fig. 6);
//   - pipeline parallelism inserts Send-Receive operators at stage
//     boundaries, ordered by the GPipe or 1F1B schedule (Fig. 7), with
//     intra-GPU slot order and cross-GPU micro-batch dependencies both
//     enforced (Fig. 8).
//
// Beyond the paper's two schedules, the builder also supports Megatron-LM's
// interleaved 1F1B: each device hosts v model chunks (virtual pipeline
// stages), shrinking the bubble at the cost of v times more inter-stage
// communication.
//
// Following the paper's Fig. 8 abstraction, the d data-parallel replicas and
// t tensor-parallel ranks execute identical work in lockstep, so the graph
// instantiates one logical device per pipeline stage: tensor parallelism
// appears as sharded operator shapes plus intra-node All-Reduce vertices,
// data parallelism as gradient All-Reduce vertices.
package opgraph

import (
	"fmt"

	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/parallel"
	"vtrain/internal/profiler"
)

// NodeKind classifies graph vertices.
type NodeKind int

const (
	// Compute is a profiled computation operator.
	Compute NodeKind = iota
	// AllReduceTP is the tensor-parallel activation All-Reduce.
	AllReduceTP
	// AllReduceDP is the data-parallel gradient(-bucket) All-Reduce.
	AllReduceDP
	// P2P is the pipeline-parallel Send-Receive at a stage boundary,
	// charged on the receiving stage's communication stream.
	P2P
)

// String implements fmt.Stringer.
func (k NodeKind) String() string {
	switch k {
	case Compute:
		return "Compute"
	case AllReduceTP:
		return "AllReduceTP"
	case AllReduceDP:
		return "AllReduceDP"
	case P2P:
		return "P2P"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is one layer-node of the operator-granularity graph.
type Node struct {
	// ID is the index in Graph.Nodes.
	ID int
	// Kind classifies the vertex.
	Kind NodeKind
	// Stage is the pipeline stage (logical device) executing the node.
	Stage int
	// Micro is the micro-batch index, or -1 for per-iteration nodes
	// (gradient All-Reduce, weight update).
	Micro int
	// Chunk is the model-chunk index under interleaving (0 otherwise).
	Chunk int
	// Op is the computation operator (Kind == Compute).
	Op profiler.Operator
	// Bytes is the transfer size of communication nodes.
	Bytes float64
	// Group is the participant count of collective nodes.
	Group int
	// IntraNode reports whether the communication stays on NVLink.
	IntraNode bool
	// Deps are IDs of nodes that must finish before this one starts.
	Deps []int
	// Label is a human-readable tag for traces, e.g. "Fwd MHA L3 mb2".
	Label string
}

// Graph is the operator-granularity execution graph of one iteration.
type Graph struct {
	// Nodes in insertion order; IDs index this slice.
	Nodes []*Node
	// Stages is the number of logical devices (pipeline depth).
	Stages int
	// Plan and Model record what the graph was built from.
	Plan  parallel.Plan
	Model model.Config
}

func (g *Graph) add(n *Node) *Node {
	n.ID = len(g.Nodes)
	g.Nodes = append(g.Nodes, n)
	return n
}

// dep appends a dependency edge from -> to (to depends on from).
func dep(to *Node, from *Node) {
	if from != nil {
		to.Deps = append(to.Deps, from.ID)
	}
}

// slot identifies one schedule entry: a forward or backward pass of one
// micro-batch of one model chunk on one stage.
type slot struct {
	forward bool
	micro   int
	chunk   int
}

// scheduleSlots returns the execution order of stage i under the plan's
// pipeline schedule.
func scheduleSlots(plan parallel.Plan, stage, stages, microBatches int) []slot {
	if plan.Interleaved() {
		return interleavedSlots(stage, stages, plan.VirtualStages, microBatches)
	}
	slots := make([]slot, 0, 2*microBatches)
	switch plan.Schedule {
	case parallel.GPipe:
		// All forwards, then all backwards in reverse micro-batch
		// order (Fig. 7a).
		for j := 0; j < microBatches; j++ {
			slots = append(slots, slot{forward: true, micro: j})
		}
		for j := microBatches - 1; j >= 0; j-- {
			slots = append(slots, slot{forward: false, micro: j})
		}
	default: // 1F1B
		// Warm-up forwards fill the pipeline, then strict
		// one-forward-one-backward alternation, then cool-down
		// backwards (Fig. 7b).
		warmup := stages - stage
		if warmup > microBatches {
			warmup = microBatches
		}
		for j := 0; j < warmup; j++ {
			slots = append(slots, slot{forward: true, micro: j})
		}
		for j := warmup; j < microBatches; j++ {
			slots = append(slots, slot{forward: false, micro: j - warmup})
			slots = append(slots, slot{forward: true, micro: j})
		}
		for j := microBatches - warmup; j < microBatches; j++ {
			slots = append(slots, slot{forward: false, micro: j})
		}
	}
	return slots
}

// interleavedSlots generates Megatron-LM's interleaved 1F1B order for one
// device: micro-batches advance in groups of p per model chunk, with
// (p - stage - 1)·2 + (v-1)·p warm-up forward slots.
func interleavedSlots(stage, p, v, microBatches int) []slot {
	total := microBatches * v
	fwdAt := func(k int) slot {
		return slot{
			forward: true,
			micro:   (k/(p*v))*p + k%p,
			chunk:   (k % (p * v)) / p,
		}
	}
	bwdAt := func(k int) slot {
		return slot{
			forward: false,
			micro:   (k/(p*v))*p + k%p,
			chunk:   v - 1 - (k%(p*v))/p,
		}
	}
	warmup := 2*(p-stage-1) + (v-1)*p
	if warmup > total {
		warmup = total
	}
	slots := make([]slot, 0, 2*total)
	for k := 0; k < warmup; k++ {
		slots = append(slots, fwdAt(k))
	}
	for k := warmup; k < total; k++ {
		slots = append(slots, fwdAt(k))
		slots = append(slots, bwdAt(k-warmup))
	}
	for k := total - warmup; k < total; k++ {
		slots = append(slots, bwdAt(k))
	}
	return slots
}

// Build constructs the execution graph for one training iteration of m
// under plan on cluster c.
func Build(m model.Config, plan parallel.Plan, c hw.Cluster) (*Graph, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := plan.Validate(m, c); err != nil {
		return nil, err
	}
	nmb := plan.MicroBatches()
	if nmb < 1 {
		return nil, fmt.Errorf("opgraph: plan %s yields zero micro-batches", plan)
	}

	b := newBuilder(m, plan, c, nmb)
	b.build()
	return b.g, nil
}

// key addresses one (stage, chunk, micro) pass.
type key struct{ stage, chunk, micro int }

type builder struct {
	g    *Graph
	m    model.Config
	plan parallel.Plan
	c    hw.Cluster
	nmb  int
	v    int // virtual stages per device (1 = no interleaving)

	// fwdOut / bwdOut are the boundary nodes cross-stage P2P receives
	// depend on.
	fwdOut map[key]*Node
	bwdOut map[key]*Node
	// lastBwdOfLayer[stage][layer] is the final-micro-batch backward
	// operator producing the layer's gradients (bucket All-Reduce deps).
	lastBwdOfLayer map[[2]int]*Node
}

func newBuilder(m model.Config, plan parallel.Plan, c hw.Cluster, nmb int) *builder {
	v := plan.VirtualStages
	if v < 1 {
		v = 1
	}
	return &builder{
		g:              &Graph{Stages: plan.Pipeline, Plan: plan, Model: m},
		m:              m,
		plan:           plan,
		c:              c,
		nmb:            nmb,
		v:              v,
		fwdOut:         make(map[key]*Node),
		bwdOut:         make(map[key]*Node),
		lastBwdOfLayer: make(map[[2]int]*Node),
	}
}

// virtualStage flattens (chunk, device) into Megatron's virtual stage id.
func (b *builder) virtualStage(stage, chunk int) int { return chunk*b.plan.Pipeline + stage }

// virtualCoords inverts virtualStage.
func (b *builder) virtualCoords(s int) (stage, chunk int) {
	return s % b.plan.Pipeline, s / b.plan.Pipeline
}

// lastVirtual is the id of the final virtual stage.
func (b *builder) lastVirtual() int { return b.plan.Pipeline*b.v - 1 }

// activationBytes is the FP16 activation tensor crossing block and stage
// boundaries: micro-batch x sequence x hidden.
func (b *builder) activationBytes() float64 {
	return 2 * float64(b.plan.MicroBatch) * float64(b.m.SeqLen) * float64(b.m.Hidden)
}

// tpIntraNode reports whether the tensor-parallel group fits on NVLink.
func (b *builder) tpIntraNode() bool { return b.plan.Tensor <= b.c.Node.GPUsPerNode }

// dpIntraNode reports whether a data-parallel group fits inside one node
// (group stride t, size d, contiguous placement).
func (b *builder) dpIntraNode() bool {
	return b.plan.Tensor*b.plan.Data <= b.c.Node.GPUsPerNode
}

// devicesSameNode reports whether two pipeline devices share a server node
// for the representative (tensor 0, data 0) replica.
func (b *builder) devicesSameNode(a, bdev int) bool {
	stride := b.plan.Tensor * b.plan.Data
	gpn := b.c.Node.GPUsPerNode
	return (a*stride)/gpn == (bdev*stride)/gpn
}

// chunkRange returns the global index of the first decoder layer of
// (stage, chunk) and the number of layers it holds.
func (b *builder) chunkRange(stage, chunk int) (first, count int) {
	if b.v > 1 {
		cl := b.m.Layers / (b.plan.Pipeline * b.v)
		return b.virtualStage(stage, chunk) * cl, cl
	}
	for i := 0; i < stage; i++ {
		first += b.plan.StageLayers(b.m, i)
	}
	return first, b.plan.StageLayers(b.m, stage)
}

func (b *builder) op(kind profiler.OpKind, params uint64) profiler.Operator {
	return profiler.Operator{
		Kind:       kind,
		Model:      b.m,
		MicroBatch: b.plan.MicroBatch,
		Tensor:     b.plan.Tensor,
		Params:     params,
	}
}

func (b *builder) build() {
	p := b.plan.Pipeline
	// Per-stage pointer to the previous slot's terminal node: enforces
	// the intra-GPU execution order of the schedule.
	prevSlotEnd := make([]*Node, p)

	// Interleave construction stage-major but resolve cross-stage
	// dependencies through fwdOut/bwdOut, which are filled in slot order.
	// Build in global "schedule round" order so that a receive's
	// dependency node already exists: construct per-stage slot lists and
	// emit slots in topological waves.
	type pending struct {
		slots []slot
		next  int
	}
	pend := make([]pending, p)
	for i := 0; i < p; i++ {
		pend[i] = pending{slots: scheduleSlots(b.plan, i, p, b.nmb)}
	}
	// Emit until all slots are placed. A slot is emittable when its
	// cross-stage producer has been emitted: a forward needs the previous
	// virtual stage's forward of the same micro-batch, a backward needs
	// the next virtual stage's backward.
	remaining := 0
	for i := range pend {
		remaining += len(pend[i].slots)
	}
	for remaining > 0 {
		progress := false
		for i := 0; i < p; i++ {
			for pend[i].next < len(pend[i].slots) {
				s := pend[i].slots[pend[i].next]
				vs := b.virtualStage(i, s.chunk)
				if s.forward && vs > 0 {
					ps, pc := b.virtualCoords(vs - 1)
					if _, ok := b.fwdOut[key{ps, pc, s.micro}]; !ok {
						break
					}
				}
				if !s.forward && vs < b.lastVirtual() {
					ns, nc := b.virtualCoords(vs + 1)
					if _, ok := b.bwdOut[key{ns, nc, s.micro}]; !ok {
						break
					}
				}
				prevSlotEnd[i] = b.emitSlot(i, s, prevSlotEnd[i])
				pend[i].next++
				remaining--
				progress = true
			}
		}
		if !progress {
			panic(fmt.Sprintf("opgraph: schedule deadlock building %s", b.plan))
		}
	}

	b.emitGradientSync(prevSlotEnd)
}

// emitSlot builds the operator chain of one forward or backward slot and
// returns its terminal node.
func (b *builder) emitSlot(stage int, s slot, prev *Node) *Node {
	if s.forward {
		return b.emitForward(stage, s.chunk, s.micro, prev)
	}
	return b.emitBackward(stage, s.chunk, s.micro, prev)
}

// chain links n to run after the current tail and returns n.
func (b *builder) chain(tail *Node, n *Node) *Node {
	dep(n, tail)
	return n
}

func (b *builder) tpAllReduce(stage, chunk, micro int, tail *Node, label string) *Node {
	if b.plan.Tensor <= 1 {
		return tail
	}
	n := b.g.add(&Node{
		Kind:      AllReduceTP,
		Stage:     stage,
		Micro:     micro,
		Chunk:     chunk,
		Bytes:     b.activationBytes(),
		Group:     b.plan.Tensor,
		IntraNode: b.tpIntraNode(),
		Label:     label,
	})
	return b.chain(tail, n)
}

func (b *builder) compute(stage, chunk, micro int, kind profiler.OpKind, tail *Node, label string) *Node {
	n := b.g.add(&Node{
		Kind:  Compute,
		Stage: stage,
		Micro: micro,
		Chunk: chunk,
		Op:    b.op(kind, 0),
		Label: label,
	})
	return b.chain(tail, n)
}

// recv emits the P2P vertex receiving an activation (or gradient) produced
// by device from, sequenced after prev on the receiving device.
func (b *builder) recv(stage, chunk, micro, from int, producer, prev *Node, label string) *Node {
	n := b.g.add(&Node{
		Kind:      P2P,
		Stage:     stage,
		Micro:     micro,
		Chunk:     chunk,
		Bytes:     b.activationBytes(),
		Group:     2,
		IntraNode: b.devicesSameNode(from, stage),
		Label:     label,
	})
	dep(n, producer)
	dep(n, prev) // a stage cannot consume a future slot early
	return n
}

func (b *builder) emitForward(stage, chunk, micro int, prev *Node) *Node {
	vs := b.virtualStage(stage, chunk)
	tail := prev
	if vs == 0 {
		tail = b.compute(stage, chunk, micro, profiler.FwdEmbedding, tail, fmt.Sprintf("Fwd Embedding mb%d", micro))
	} else {
		ps, pc := b.virtualCoords(vs - 1)
		tail = b.recv(stage, chunk, micro, ps, b.fwdOut[key{ps, pc, micro}], prev,
			fmt.Sprintf("Recv Fwd c%d mb%d", chunk, micro))
	}
	first, layers := b.chunkRange(stage, chunk)
	for l := 0; l < layers; l++ {
		gl := first + l
		tail = b.compute(stage, chunk, micro, profiler.FwdMHA, tail, fmt.Sprintf("Fwd MHA L%d mb%d", gl, micro))
		tail = b.tpAllReduce(stage, chunk, micro, tail, fmt.Sprintf("AR-TP Fwd MHA L%d mb%d", gl, micro))
		tail = b.compute(stage, chunk, micro, profiler.FwdFFN, tail, fmt.Sprintf("Fwd FFN L%d mb%d", gl, micro))
		tail = b.tpAllReduce(stage, chunk, micro, tail, fmt.Sprintf("AR-TP Fwd FFN L%d mb%d", gl, micro))
	}
	if vs == b.lastVirtual() {
		tail = b.compute(stage, chunk, micro, profiler.FwdLMHead, tail, fmt.Sprintf("Fwd LMHead mb%d", micro))
	}
	b.fwdOut[key{stage, chunk, micro}] = tail
	return tail
}

func (b *builder) emitBackward(stage, chunk, micro int, prev *Node) *Node {
	vs := b.virtualStage(stage, chunk)
	tail := prev
	if vs == b.lastVirtual() {
		tail = b.compute(stage, chunk, micro, profiler.BwdLMHead, tail, fmt.Sprintf("Bwd LMHead mb%d", micro))
	} else {
		ns, nc := b.virtualCoords(vs + 1)
		tail = b.recv(stage, chunk, micro, ns, b.bwdOut[key{ns, nc, micro}], prev,
			fmt.Sprintf("Recv Bwd c%d mb%d", chunk, micro))
	}
	// The backward of (chunk, micro) consumes its forward activations.
	dep(tail, b.fwdOut[key{stage, chunk, micro}])
	first, layers := b.chunkRange(stage, chunk)
	for l := layers - 1; l >= 0; l-- {
		gl := first + l
		if b.plan.Recompute {
			// Full activation recomputation: re-execute the layer's
			// forward pass (including its tensor-parallel
			// All-Reduces) from the checkpointed input before
			// running its backward.
			tail = b.compute(stage, chunk, micro, profiler.FwdMHA, tail, fmt.Sprintf("Recompute Fwd MHA L%d mb%d", gl, micro))
			tail = b.tpAllReduce(stage, chunk, micro, tail, fmt.Sprintf("AR-TP Recompute MHA L%d mb%d", gl, micro))
			tail = b.compute(stage, chunk, micro, profiler.FwdFFN, tail, fmt.Sprintf("Recompute Fwd FFN L%d mb%d", gl, micro))
			tail = b.tpAllReduce(stage, chunk, micro, tail, fmt.Sprintf("AR-TP Recompute FFN L%d mb%d", gl, micro))
		}
		tail = b.compute(stage, chunk, micro, profiler.BwdFFN, tail, fmt.Sprintf("Bwd FFN L%d mb%d", gl, micro))
		tail = b.tpAllReduce(stage, chunk, micro, tail, fmt.Sprintf("AR-TP Bwd FFN L%d mb%d", gl, micro))
		tail = b.compute(stage, chunk, micro, profiler.BwdMHA, tail, fmt.Sprintf("Bwd MHA L%d mb%d", gl, micro))
		tail = b.tpAllReduce(stage, chunk, micro, tail, fmt.Sprintf("AR-TP Bwd MHA L%d mb%d", gl, micro))
		if micro == b.nmb-1 {
			b.lastBwdOfLayer[[2]int{stage, gl}] = tail
		}
	}
	if vs == 0 {
		tail = b.compute(stage, chunk, micro, profiler.BwdEmbedding, tail, fmt.Sprintf("Bwd Embedding mb%d", micro))
	}
	b.bwdOut[key{stage, chunk, micro}] = tail
	return tail
}

// stageLayerList returns the global layer indices a device owns, in
// ascending-chunk order.
func (b *builder) stageLayerList(stage int) []int {
	var out []int
	for c := 0; c < b.v; c++ {
		first, count := b.chunkRange(stage, c)
		for l := 0; l < count; l++ {
			out = append(out, first+l)
		}
	}
	return out
}

// emitGradientSync inserts the data-parallel gradient All-Reduce operators
// (bucketed per Fig. 5a, or a single one per Fig. 5b) and the weight-update
// operator on every stage.
func (b *builder) emitGradientSync(lastSlotEnd []*Node) {
	h := uint64(b.m.Hidden)
	perLayerParams := 12*h*h + 13*h
	for stage := 0; stage < b.plan.Pipeline; stage++ {
		layerList := b.stageLayerList(stage)
		layers := len(layerList)
		stageParams := uint64(layers) * perLayerParams
		if stage == 0 || stage == b.plan.Pipeline-1 {
			stageParams += uint64(b.m.Vocab) * h // embedding / tied LM head
		}
		shardParams := stageParams / uint64(b.plan.Tensor)

		var syncs []*Node
		if b.plan.Data > 1 {
			buckets := b.plan.GradientBuckets
			if buckets <= 0 {
				buckets = 1 // Fig. 5b: one All-Reduce at backward end
			}
			if b.v > 1 && buckets > 1 {
				// Interleaved devices synchronize per model chunk.
				buckets = b.v
			}
			if buckets > layers {
				buckets = layers
			}
			// Partition the stage's layers into contiguous buckets.
			// Buckets covering later layers become ready earlier in
			// the backward pass (Fig. 5a) because backward visits
			// layers in reverse.
			for bk := 0; bk < buckets; bk++ {
				lo := layerList[bk*layers/buckets]
				hi := layerList[(bk+1)*layers/buckets-1] + 1
				bucketParams := shardParams / uint64(buckets)
				ar := b.g.add(&Node{
					Kind:      AllReduceDP,
					Stage:     stage,
					Micro:     -1,
					Bytes:     2 * float64(bucketParams), // FP16 gradients
					Group:     b.plan.Data,
					IntraNode: b.dpIntraNode(),
					Label:     fmt.Sprintf("AR-DP bucket%d L[%d,%d) s%d", bk, lo, hi, stage),
				})
				// Ready when the earliest layer of the bucket has
				// produced its gradient in the final micro-batch.
				if n := b.lastBwdOfLayer[[2]int{stage, lo}]; n != nil {
					dep(ar, n)
				} else {
					dep(ar, lastSlotEnd[stage])
				}
				syncs = append(syncs, ar)
			}
		}

		wu := b.g.add(&Node{
			Kind:  Compute,
			Stage: stage,
			Micro: -1,
			Op:    b.op(profiler.WeightUpdate, maxU64(shardParams, 1)),
			Label: fmt.Sprintf("WeightUpdate s%d", stage),
		})
		dep(wu, lastSlotEnd[stage])
		for _, ar := range syncs {
			dep(wu, ar)
		}
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
