// Package opgraph constructs the operator-granularity execution graph of
// one LLM training iteration (Section III-B of the paper).
//
// A graph vertex (layer-node) is either a computation operator (profiled by
// internal/profiler) or a communication operator inserted by the 3D
// parallelism plan:
//
//   - data parallelism inserts gradient All-Reduce operators, either one per
//     gradient bucket overlapping the backward pass (Fig. 5a) or a single
//     one at the end (Fig. 5b);
//   - tensor parallelism inserts an All-Reduce after the MHA and FFN blocks
//     of every layer, in both forward and backward passes (Fig. 6);
//   - pipeline parallelism inserts Send-Receive operators at stage
//     boundaries, ordered by the GPipe or 1F1B schedule (Fig. 7), with
//     intra-GPU slot order and cross-GPU micro-batch dependencies both
//     enforced (Fig. 8).
//
// Beyond the paper's two schedules, the builder also supports Megatron-LM's
// interleaved 1F1B: each device hosts v model chunks (virtual pipeline
// stages), shrinking the bubble at the cost of v times more inter-stage
// communication.
//
// Following the paper's Fig. 8 abstraction, the d data-parallel replicas and
// t tensor-parallel ranks execute identical work in lockstep, so the graph
// instantiates one logical device per pipeline stage: tensor parallelism
// appears as sharded operator shapes plus intra-node All-Reduce vertices,
// data parallelism as gradient All-Reduce vertices.
//
// # Representation
//
// The graph is built for the same sweep-heavy workload the replay engine in
// internal/taskgraph serves: thousands of (t, d, p) plans constructed and
// lowered back to back. Nodes are therefore plain values in a slab-grown
// arena (no per-node heap allocation), dependency edges live in CSR-style
// index slices finalized by a two-pass builder, and node labels are lazy —
// a node carries only its (kind, op, stage, chunk, micro, layer)
// coordinates, and Node.Label composes the human-readable string on demand
// for trace rendering and tests. A built Graph is immutable: nothing in
// this package mutates it after Build returns, so it is safe to share
// across goroutines.
package opgraph

import (
	"fmt"

	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/parallel"
	"vtrain/internal/profiler"
)

// NodeKind classifies graph vertices.
type NodeKind int

const (
	// Compute is a profiled computation operator.
	Compute NodeKind = iota
	// AllReduceTP is the tensor-parallel activation All-Reduce.
	AllReduceTP
	// AllReduceDP is the data-parallel gradient(-bucket) All-Reduce.
	AllReduceDP
	// P2P is the pipeline-parallel Send-Receive at a stage boundary,
	// charged on the receiving stage's communication stream.
	P2P
)

// String implements fmt.Stringer.
func (k NodeKind) String() string {
	switch k {
	case Compute:
		return "Compute"
	case AllReduceTP:
		return "AllReduceTP"
	case AllReduceDP:
		return "AllReduceDP"
	case P2P:
		return "P2P"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is one layer-node of the operator-granularity graph. Nodes are plain
// values stored in the graph's slab arena; they carry no label string (see
// Node.Label) and no adjacency (see Graph.Deps). A Node is immutable once
// Build returns.
type Node struct {
	// ID is the node's dense index in the graph: 0 <= ID < NumNodes().
	ID int32
	// Kind classifies the vertex.
	Kind NodeKind
	// Stage is the pipeline stage (logical device) executing the node.
	Stage int32
	// Micro is the micro-batch index, or -1 for per-iteration nodes
	// (gradient All-Reduce, weight update).
	Micro int32
	// Chunk is the model-chunk index under interleaving (0 otherwise).
	Chunk int32
	// Layer is the global decoder-layer index for per-layer nodes; for
	// AllReduceDP nodes it is the first layer of the gradient bucket.
	Layer int32
	// LayerEnd is one past the last layer of an AllReduceDP bucket.
	LayerEnd int32
	// Bucket is the gradient-bucket index of an AllReduceDP node.
	Bucket int32
	// Buckets is the gradient-bucket count of the node's stage (AllReduceDP
	// nodes). Together with StageParams it lets a lowering price the bucket
	// for any plan sharing this graph's structural shape.
	Buckets int32
	// FromStage is the producing pipeline stage of a P2P node. Unlike
	// IntraNode (which bakes in this plan's tensor/data widths), the stage
	// pair is shape-invariant, so duration binding can re-derive node
	// placement for any plan sharing the structure.
	FromStage int32
	// label selects the lazy label format (see label.go).
	label labelKind
	// Op is the computation operator kind (Kind == Compute). The full
	// profiler.Operator is graph-wide state plus this kind and Params;
	// Graph.OperatorOf composes it.
	Op profiler.OpKind
	// Params is the parameter-shard size of WeightUpdate nodes, already
	// divided by this plan's tensor width. Valid only for the plan the
	// graph was built from; shape-sharing lowerings derive the shard from
	// StageParams instead.
	Params uint64
	// StageParams is the unsharded parameter count of the node's whole
	// pipeline stage (WeightUpdate and AllReduceDP nodes): the
	// tensor-width-independent quantity from which any plan sharing this
	// graph's structure derives its shard and gradient-bucket sizes.
	StageParams uint64
	// Bytes is the transfer size of communication nodes. Like Params it
	// bakes in the plan the graph was built from (micro-batch size, tensor
	// width); duration binding for other plans of the same shape recomputes
	// it from StageParams / the activation shape.
	Bytes float64
	// Group is the participant count of collective nodes.
	Group int32
	// IntraNode reports whether the communication stays on NVLink under the
	// plan the graph was built from.
	IntraNode bool
}

// Graph is the operator-granularity execution graph of one iteration: a
// value-typed node arena plus CSR-style dependency slices. Build returns it
// fully finalized and it is never mutated afterwards, so one Graph may be
// shared and lowered from any number of goroutines.
type Graph struct {
	arena nodeArena
	// CSR dependencies: the dependencies of node i are
	// deps[depStart[i]:depStart[i+1]], in edge-insertion order.
	depStart []int32
	deps     []int32

	// Stages is the number of logical devices (pipeline depth).
	Stages int
	// Plan and Model record what the graph was built from; together with a
	// node's Op and Params fields they determine the node's operator
	// (see OperatorOf).
	Plan  parallel.Plan
	Model model.Config
}

// NumNodes returns the number of nodes; IDs are dense in [0, NumNodes).
func (g *Graph) NumNodes() int { return g.arena.n }

// Node returns the node with the given ID. The returned pointer aliases the
// graph's arena and must be treated as read-only.
func (g *Graph) Node(id int) *Node { return g.arena.at(id) }

// Deps returns the IDs of the nodes that must finish before node id starts.
// The slice aliases the graph's CSR storage and must not be modified. IDs
// are topologically ordered: every dependency precedes its dependent.
func (g *Graph) Deps(id int) []int32 {
	return g.deps[g.depStart[id]:g.depStart[id+1]]
}

// Label composes the human-readable label of node id on demand; see
// Node.Label for the laziness contract.
func (g *Graph) Label(id int) string { return g.arena.at(id).Label() }

// OperatorOf composes the full profiler operator of a Compute node from the
// graph-wide model and plan plus the node's operator kind and parameter
// count. All nodes of one graph share (model, micro-batch, tensor width),
// so storing only the kind keeps nodes small.
func (g *Graph) OperatorOf(n *Node) profiler.Operator {
	return profiler.Operator{
		Kind:       n.Op,
		Model:      g.Model,
		MicroBatch: g.Plan.MicroBatch,
		Tensor:     g.Plan.Tensor,
		Params:     n.Params,
	}
}

// Validate checks (m, plan, c) exactly as Build does, without constructing
// the graph. Callers that skip Build — e.g. a structural-graph cache serving
// a plan whose shape was already lowered — use it so invalid plans are still
// rejected per plan, not per shape.
func Validate(m model.Config, plan parallel.Plan, c hw.Cluster) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if err := plan.Validate(m, c); err != nil {
		return err
	}
	if plan.MicroBatches() < 1 {
		return fmt.Errorf("opgraph: plan %s yields zero micro-batches", plan)
	}
	return nil
}

// Build constructs the execution graph for one training iteration of m
// under plan on cluster c. The returned graph is immutable.
func Build(m model.Config, plan parallel.Plan, c hw.Cluster) (*Graph, error) {
	if err := Validate(m, plan, c); err != nil {
		return nil, err
	}

	b := newBuilder(m, plan, c, plan.MicroBatches())
	b.build()
	b.finalize()
	return b.release(), nil
}

// Recycle returns the graph's storage (arena slabs, dependency CSR) to the
// construction pool for reuse by a future Build. Only an exclusive owner may
// call it, and the graph — including every Node pointer and Deps slice
// obtained from it — is invalid afterwards. A lowering that copies what it
// needs out of the graph (taskgraph.Lower does, label snapshot included)
// recycles it to keep sweep allocation flat; a graph that is retained must
// simply never be recycled.
func (g *Graph) Recycle() {
	graphPool.Put(g)
}
