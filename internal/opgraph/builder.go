package opgraph

import (
	"fmt"
	"sync"

	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/parallel"
	"vtrain/internal/profiler"
)

// builder accumulates nodes into the graph's arena through a small
// append-only API (add/edge) and finalizes the recorded edge pairs into the
// graph's CSR slices. All cross-references during construction are node
// indices, never pointers; -1 means "absent".
//
// Builders (and, via Graph.Recycle, graph storage) are pooled: a sweep
// building thousands of graphs back to back reuses the same edge list,
// schedule buffers, and arena slabs instead of reallocating them per plan.
type builder struct {
	g    *Graph
	m    model.Config
	plan parallel.Plan
	c    hw.Cluster
	nmb  int
	v    int // virtual stages per device (1 = no interleaving)

	// edges records (from, to) dependency pairs — "to depends on from" —
	// in emission order; finalize turns them into CSR form.
	edges [][2]int32

	// fwdOut / bwdOut hold the terminal node of each emitted
	// (virtual stage, micro) pass — the producers cross-stage P2P
	// receives depend on. Indexed by virtualStage*nmb + micro; -1 until
	// the pass is emitted (the emittability test of the deadlock check).
	fwdOut []int32
	bwdOut []int32
	// lastBwdOfLayer, indexed by stage*Layers + layer, is the
	// final-micro-batch backward operator producing the layer's gradients
	// (gradient-bucket All-Reduce dependencies); -1 until emitted.
	lastBwdOfLayer []int32

	// Pooled construction scratch: the per-stage previous-slot cursor, the
	// pending schedule lists and their backing slot storage (build), and
	// the CSR fill cursor (finalize).
	prevSlotEnd []int32
	pend        []pending
	slotBuf     []slot
	cursor      []int32
}

// pending tracks how far a stage's schedule has been emitted.
type pending struct {
	slots []slot
	next  int
}

var builderPool = sync.Pool{New: func() any { return new(builder) }}

// graphPool recycles graph storage (arena slabs, CSR slices) between
// Recycle and the next Build.
var graphPool = sync.Pool{New: func() any { return new(Graph) }}

func newBuilder(m model.Config, plan parallel.Plan, c hw.Cluster, nmb int) *builder {
	v := plan.VirtualStages
	if v < 1 {
		v = 1
	}
	g := graphPool.Get().(*Graph)
	*g = Graph{
		arena:    nodeArena{slabs: g.arena.slabs},
		depStart: g.depStart,
		deps:     g.deps,
		Stages:   plan.Pipeline,
		Plan:     plan,
		Model:    m,
	}
	b := builderPool.Get().(*builder)
	b.g = g
	b.m, b.plan, b.c = m, plan, c
	b.nmb, b.v = nmb, v
	b.edges = b.edges[:0]
	b.fwdOut = fitRaw(b.fwdOut, plan.Pipeline*v*nmb)
	b.bwdOut = fitRaw(b.bwdOut, plan.Pipeline*v*nmb)
	b.lastBwdOfLayer = fitRaw(b.lastBwdOfLayer, plan.Pipeline*m.Layers)
	fill(b.fwdOut, -1)
	fill(b.bwdOut, -1)
	fill(b.lastBwdOfLayer, -1)
	return b
}

// release returns the builder (with its graph pointer detached) to the pool.
func (b *builder) release() *Graph {
	g := b.g
	b.g = nil
	builderPool.Put(b)
	return g
}

func fill(s []int32, v int32) {
	for i := range s {
		s[i] = v
	}
}

// fitRaw mirrors the replay-scratch sizing policy in internal/taskgraph:
// reuse pooled capacity when adequate, drop it when more than 4x oversized
// so one huge build cannot pin worst-case storage forever. The caller fully
// overwrites the slice before reading it.
func fitRaw[T int32 | slot](s []T, n int) []T {
	if c := cap(s); c < n || c > 4*n {
		return make([]T, n)
	}
	return s[:n]
}

// add places a node in the arena, assigning and returning its ID.
func (b *builder) add(n Node) int32 {
	nd, id := b.g.arena.alloc()
	*nd = n
	nd.ID = id
	return id
}

// edge records that node to depends on node from; from < 0 is "no edge".
func (b *builder) edge(from, to int32) {
	if from >= 0 {
		b.edges = append(b.edges, [2]int32{from, to})
	}
}

// finalize builds the graph's CSR dependency slices from the recorded edge
// pairs in two passes: count per-node degrees, then fill. Per-node
// dependency order equals edge-recording order.
func (b *builder) finalize() {
	g := b.g
	n := g.arena.n
	g.depStart = fitRaw(g.depStart, n+1)
	clear(g.depStart)
	for _, e := range b.edges {
		g.depStart[e[1]+1]++
	}
	for i := 0; i < n; i++ {
		g.depStart[i+1] += g.depStart[i]
	}
	g.deps = fitRaw(g.deps, len(b.edges))
	cursor := fitRaw(b.cursor, n)
	b.cursor = cursor
	copy(cursor, g.depStart[:n])
	for _, e := range b.edges {
		g.deps[cursor[e[1]]] = e[0]
		cursor[e[1]]++
	}
	b.edges = b.edges[:0]
}

// out indexes fwdOut/bwdOut by (stage, chunk, micro).
func (b *builder) out(stage, chunk, micro int) int {
	return b.virtualStage(stage, chunk)*b.nmb + micro
}

// virtualStage flattens (chunk, device) into Megatron's virtual stage id.
func (b *builder) virtualStage(stage, chunk int) int { return chunk*b.plan.Pipeline + stage }

// virtualCoords inverts virtualStage.
func (b *builder) virtualCoords(s int) (stage, chunk int) {
	return s % b.plan.Pipeline, s / b.plan.Pipeline
}

// lastVirtual is the id of the final virtual stage.
func (b *builder) lastVirtual() int { return b.plan.Pipeline*b.v - 1 }

// activationBytes is the FP16 activation tensor crossing block and stage
// boundaries: micro-batch x sequence x hidden.
func (b *builder) activationBytes() float64 {
	return 2 * float64(b.plan.MicroBatch) * float64(b.m.SeqLen) * float64(b.m.Hidden)
}

// tpIntraNode reports whether the tensor-parallel group fits on NVLink.
func (b *builder) tpIntraNode() bool { return b.plan.Tensor <= b.c.Node.GPUsPerNode }

// dpIntraNode reports whether a data-parallel group fits inside one node
// (group stride t, size d, contiguous placement).
func (b *builder) dpIntraNode() bool {
	return b.plan.Tensor*b.plan.Data <= b.c.Node.GPUsPerNode
}

// devicesSameNode reports whether two pipeline devices share a server node
// for the representative (tensor 0, data 0) replica.
func (b *builder) devicesSameNode(a, bdev int) bool {
	stride := b.plan.Tensor * b.plan.Data
	gpn := b.c.Node.GPUsPerNode
	return (a*stride)/gpn == (bdev*stride)/gpn
}

// chunkRange returns the global index of the first decoder layer of
// (stage, chunk) and the number of layers it holds.
func (b *builder) chunkRange(stage, chunk int) (first, count int) {
	if b.v > 1 {
		cl := b.m.Layers / (b.plan.Pipeline * b.v)
		return b.virtualStage(stage, chunk) * cl, cl
	}
	for i := 0; i < stage; i++ {
		first += b.plan.StageLayers(b.m, i)
	}
	return first, b.plan.StageLayers(b.m, stage)
}

func (b *builder) build() {
	p := b.plan.Pipeline
	// Per-stage index of the previous slot's terminal node: enforces the
	// intra-GPU execution order of the schedule.
	prevSlotEnd := fitRaw(b.prevSlotEnd, p)
	b.prevSlotEnd = prevSlotEnd
	fill(prevSlotEnd, -1)

	// Interleave construction stage-major but resolve cross-stage
	// dependencies through fwdOut/bwdOut, which are filled in slot order.
	// Build in global "schedule round" order so that a receive's
	// dependency node already exists: construct per-stage slot lists and
	// emit slots in topological waves. Every stage's schedule has exactly
	// 2·nmb·v slots (each micro-batch of each chunk appears as one forward
	// and one backward), so the lists are carved from one pooled buffer.
	per := 2 * b.nmb * b.v
	buf := fitRaw(b.slotBuf, p*per)
	b.slotBuf = buf
	if cap(b.pend) < p {
		b.pend = make([]pending, p)
	}
	pend := b.pend[:p]
	for i := 0; i < p; i++ {
		pend[i] = pending{slots: scheduleSlots(b.plan, i, p, b.nmb, buf[i*per:i*per:(i+1)*per])}
	}
	// Emit until all slots are placed. A slot is emittable when its
	// cross-stage producer has been emitted: a forward needs the previous
	// virtual stage's forward of the same micro-batch, a backward needs
	// the next virtual stage's backward. Emitted passes are looked up by
	// index in fwdOut/bwdOut (-1 = not yet emitted), so the deadlock
	// check never touches node pointers.
	remaining := 0
	for i := range pend {
		remaining += len(pend[i].slots)
	}
	for remaining > 0 {
		progress := false
		for i := 0; i < p; i++ {
			for pend[i].next < len(pend[i].slots) {
				s := pend[i].slots[pend[i].next]
				vs := b.virtualStage(i, s.chunk)
				if s.forward && vs > 0 {
					if b.fwdOut[(vs-1)*b.nmb+s.micro] < 0 {
						break
					}
				}
				if !s.forward && vs < b.lastVirtual() {
					if b.bwdOut[(vs+1)*b.nmb+s.micro] < 0 {
						break
					}
				}
				prevSlotEnd[i] = b.emitSlot(i, s, prevSlotEnd[i])
				pend[i].next++
				remaining--
				progress = true
			}
		}
		if !progress {
			panic(fmt.Sprintf("opgraph: schedule deadlock building %s", b.plan))
		}
	}

	b.emitGradientSync(prevSlotEnd)
}

// emitSlot builds the operator chain of one forward or backward slot and
// returns the index of its terminal node.
func (b *builder) emitSlot(stage int, s slot, prev int32) int32 {
	if s.forward {
		return b.emitForward(stage, s.chunk, s.micro, prev)
	}
	return b.emitBackward(stage, s.chunk, s.micro, prev)
}

// tpAllReduce chains a tensor-parallel All-Reduce after tail (a no-op when
// t = 1) and returns the new tail index.
func (b *builder) tpAllReduce(stage, chunk, micro, layer int, tail int32, lk labelKind) int32 {
	if b.plan.Tensor <= 1 {
		return tail
	}
	id := b.add(Node{
		Kind:      AllReduceTP,
		Stage:     int32(stage),
		Micro:     int32(micro),
		Chunk:     int32(chunk),
		Layer:     int32(layer),
		Bytes:     b.activationBytes(),
		Group:     int32(b.plan.Tensor),
		IntraNode: b.tpIntraNode(),
		label:     lk,
	})
	b.edge(tail, id)
	return id
}

// compute chains a computation operator after tail and returns its index.
func (b *builder) compute(stage, chunk, micro, layer int, kind profiler.OpKind, tail int32, lk labelKind) int32 {
	id := b.add(Node{
		Kind:  Compute,
		Stage: int32(stage),
		Micro: int32(micro),
		Chunk: int32(chunk),
		Layer: int32(layer),
		Op:    kind,
		label: lk,
	})
	b.edge(tail, id)
	return id
}

// recv emits the P2P vertex receiving an activation (or gradient) produced
// by device from, sequenced after prev on the receiving device.
func (b *builder) recv(stage, chunk, micro, from int, producer, prev int32, lk labelKind) int32 {
	id := b.add(Node{
		Kind:      P2P,
		Stage:     int32(stage),
		Micro:     int32(micro),
		Chunk:     int32(chunk),
		FromStage: int32(from),
		Bytes:     b.activationBytes(),
		Group:     2,
		IntraNode: b.devicesSameNode(from, stage),
		label:     lk,
	})
	b.edge(producer, id)
	b.edge(prev, id) // a stage cannot consume a future slot early
	return id
}

func (b *builder) emitForward(stage, chunk, micro int, prev int32) int32 {
	vs := b.virtualStage(stage, chunk)
	tail := prev
	if vs == 0 {
		tail = b.compute(stage, chunk, micro, 0, profiler.FwdEmbedding, tail, lbFwdEmbedding)
	} else {
		ps, pc := b.virtualCoords(vs - 1)
		tail = b.recv(stage, chunk, micro, ps, b.fwdOut[b.out(ps, pc, micro)], prev, lbRecvFwd)
	}
	first, layers := b.chunkRange(stage, chunk)
	for l := 0; l < layers; l++ {
		gl := first + l
		tail = b.compute(stage, chunk, micro, gl, profiler.FwdMHA, tail, lbFwdMHA)
		tail = b.tpAllReduce(stage, chunk, micro, gl, tail, lbARTPFwdMHA)
		tail = b.compute(stage, chunk, micro, gl, profiler.FwdFFN, tail, lbFwdFFN)
		tail = b.tpAllReduce(stage, chunk, micro, gl, tail, lbARTPFwdFFN)
	}
	if vs == b.lastVirtual() {
		tail = b.compute(stage, chunk, micro, 0, profiler.FwdLMHead, tail, lbFwdLMHead)
	}
	b.fwdOut[b.out(stage, chunk, micro)] = tail
	return tail
}

func (b *builder) emitBackward(stage, chunk, micro int, prev int32) int32 {
	vs := b.virtualStage(stage, chunk)
	tail := prev
	if vs == b.lastVirtual() {
		tail = b.compute(stage, chunk, micro, 0, profiler.BwdLMHead, tail, lbBwdLMHead)
	} else {
		ns, nc := b.virtualCoords(vs + 1)
		tail = b.recv(stage, chunk, micro, ns, b.bwdOut[b.out(ns, nc, micro)], prev, lbRecvBwd)
	}
	// The backward of (chunk, micro) consumes its forward activations.
	b.edge(b.fwdOut[b.out(stage, chunk, micro)], tail)
	first, layers := b.chunkRange(stage, chunk)
	for l := layers - 1; l >= 0; l-- {
		gl := first + l
		if b.plan.Recompute {
			// Full activation recomputation: re-execute the layer's
			// forward pass (including its tensor-parallel
			// All-Reduces) from the checkpointed input before
			// running its backward.
			tail = b.compute(stage, chunk, micro, gl, profiler.FwdMHA, tail, lbRecompMHA)
			tail = b.tpAllReduce(stage, chunk, micro, gl, tail, lbARTPRecompMHA)
			tail = b.compute(stage, chunk, micro, gl, profiler.FwdFFN, tail, lbRecompFFN)
			tail = b.tpAllReduce(stage, chunk, micro, gl, tail, lbARTPRecompFFN)
		}
		tail = b.compute(stage, chunk, micro, gl, profiler.BwdFFN, tail, lbBwdFFN)
		tail = b.tpAllReduce(stage, chunk, micro, gl, tail, lbARTPBwdFFN)
		tail = b.compute(stage, chunk, micro, gl, profiler.BwdMHA, tail, lbBwdMHA)
		tail = b.tpAllReduce(stage, chunk, micro, gl, tail, lbARTPBwdMHA)
		if micro == b.nmb-1 {
			b.lastBwdOfLayer[stage*b.m.Layers+gl] = tail
		}
	}
	if vs == 0 {
		tail = b.compute(stage, chunk, micro, 0, profiler.BwdEmbedding, tail, lbBwdEmbedding)
	}
	b.bwdOut[b.out(stage, chunk, micro)] = tail
	return tail
}

// stageLayerList returns the global layer indices a device owns, in
// ascending-chunk order.
func (b *builder) stageLayerList(stage int) []int {
	var out []int
	for c := 0; c < b.v; c++ {
		first, count := b.chunkRange(stage, c)
		for l := 0; l < count; l++ {
			out = append(out, first+l)
		}
	}
	return out
}

// emitGradientSync inserts the data-parallel gradient All-Reduce operators
// (bucketed per Fig. 5a, or a single one per Fig. 5b) and the weight-update
// operator on every stage.
func (b *builder) emitGradientSync(lastSlotEnd []int32) {
	h := uint64(b.m.Hidden)
	perLayerParams := 12*h*h + 13*h
	for stage := 0; stage < b.plan.Pipeline; stage++ {
		layerList := b.stageLayerList(stage)
		layers := len(layerList)
		stageParams := uint64(layers) * perLayerParams
		if stage == 0 || stage == b.plan.Pipeline-1 {
			stageParams += uint64(b.m.Vocab) * h // embedding / tied LM head
		}
		shardParams := stageParams / uint64(b.plan.Tensor)

		var syncs []int32
		if b.plan.Data > 1 {
			buckets := b.plan.GradientBuckets
			if buckets <= 0 {
				buckets = 1 // Fig. 5b: one All-Reduce at backward end
			}
			if b.v > 1 && buckets > 1 {
				// Interleaved devices synchronize per model chunk.
				buckets = b.v
			}
			if buckets > layers {
				buckets = layers
			}
			// Partition the stage's layers into contiguous buckets.
			// Buckets covering later layers become ready earlier in
			// the backward pass (Fig. 5a) because backward visits
			// layers in reverse.
			for bk := 0; bk < buckets; bk++ {
				lo := layerList[bk*layers/buckets]
				hi := layerList[(bk+1)*layers/buckets-1] + 1
				bucketParams := shardParams / uint64(buckets)
				ar := b.add(Node{
					Kind:        AllReduceDP,
					Stage:       int32(stage),
					Micro:       -1,
					Layer:       int32(lo),
					LayerEnd:    int32(hi),
					Bucket:      int32(bk),
					Buckets:     int32(buckets),
					StageParams: stageParams,
					Bytes:       2 * float64(bucketParams), // FP16 gradients
					Group:       int32(b.plan.Data),
					IntraNode:   b.dpIntraNode(),
					label:       lbARDP,
				})
				// Ready when the earliest layer of the bucket has
				// produced its gradient in the final micro-batch.
				if n := b.lastBwdOfLayer[stage*b.m.Layers+lo]; n >= 0 {
					b.edge(n, ar)
				} else {
					b.edge(lastSlotEnd[stage], ar)
				}
				syncs = append(syncs, ar)
			}
		}

		wu := b.add(Node{
			Kind:        Compute,
			Stage:       int32(stage),
			Micro:       -1,
			Op:          profiler.WeightUpdate,
			Params:      max(shardParams, 1),
			StageParams: stageParams,
			label:       lbWeightUpdate,
		})
		b.edge(lastSlotEnd[stage], wu)
		for _, ar := range syncs {
			b.edge(ar, wu)
		}
	}
}
