package opgraph

const (
	slabShift = 11
	slabSize  = 1 << slabShift
	slabMask  = slabSize - 1
)

// nodeArena stores nodes as plain values in fixed-size slabs. Growing the
// arena appends one new slab (a single allocation per slabSize nodes);
// already-placed nodes never move, so pointers handed out during
// construction stay valid and no append-doubling copy is ever paid.
type nodeArena struct {
	slabs [][]Node
	n     int
}

// alloc returns the next node slot and its ID. Slabs are reused across
// pooled builds (see Graph.Recycle), so the slot may hold a stale node; the
// builder fully overwrites it.
func (a *nodeArena) alloc() (*Node, int32) {
	if a.n>>slabShift == len(a.slabs) {
		a.slabs = append(a.slabs, make([]Node, slabSize))
	}
	id := int32(a.n)
	nd := &a.slabs[a.n>>slabShift][a.n&slabMask]
	a.n++
	return nd, id
}

// at returns the node with the given ID. IDs are dense: 0 <= id < n.
func (a *nodeArena) at(id int) *Node { return &a.slabs[id>>slabShift][id&slabMask] }
