package opgraph

import (
	"testing"
	"testing/quick"

	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/parallel"
	"vtrain/internal/profiler"
)

func interleavedPlan(p, v, nmb int) parallel.Plan {
	return parallel.Plan{
		Tensor: 1, Data: 1, Pipeline: p, MicroBatch: 1, GlobalBatch: nmb,
		Schedule: parallel.OneFOneB, VirtualStages: v,
	}
}

func TestInterleavedSlotsMatchMegatron(t *testing.T) {
	// p=2, v=2, nmb=2. Last device (stage 1) warms up with
	// 2*(2-1-1) + (2-1)*2 = 2 forwards, then alternates:
	// F(m0,c0) F(m1,c0) F(m0,c1) B(m0,c1) F(m1,c1) B(m1,c1) B(m0,c0) B(m1,c0).
	got := interleavedSlots(1, 2, 2, 2, nil)
	want := []slot{
		{forward: true, micro: 0, chunk: 0},
		{forward: true, micro: 1, chunk: 0},
		{forward: true, micro: 0, chunk: 1},
		{forward: false, micro: 0, chunk: 1},
		{forward: true, micro: 1, chunk: 1},
		{forward: false, micro: 1, chunk: 1},
		{forward: false, micro: 0, chunk: 0},
		{forward: false, micro: 1, chunk: 0},
	}
	if len(got) != len(want) {
		t.Fatalf("slots = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d = %+v, want %+v (full: %+v)", i, got[i], want[i], got)
		}
	}
}

func TestInterleavedSlotsCoverEveryChunkMicroOnce(t *testing.T) {
	f := func(st, p8, v8, g8 uint8) bool {
		p := int(p8)%4 + 2
		stage := int(st) % p
		v := int(v8)%3 + 2
		nmb := (int(g8)%3 + 1) * p // divisible by p
		slots := interleavedSlots(stage, p, v, nmb, nil)
		if len(slots) != 2*nmb*v {
			return false
		}
		fwd := make(map[[2]int]int)
		bwd := make(map[[2]int]int)
		for _, s := range slots {
			if s.micro < 0 || s.micro >= nmb || s.chunk < 0 || s.chunk >= v {
				return false
			}
			if s.forward {
				fwd[[2]int{s.micro, s.chunk}]++
			} else {
				bwd[[2]int{s.micro, s.chunk}]++
			}
		}
		for j := 0; j < nmb; j++ {
			for c := 0; c < v; c++ {
				if fwd[[2]int{j, c}] != 1 || bwd[[2]int{j, c}] != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedForwardPrecedesBackwardPerChunk(t *testing.T) {
	f := func(st, p8, v8 uint8) bool {
		p := int(p8)%4 + 2
		stage := int(st) % p
		v := int(v8)%3 + 2
		nmb := 2 * p
		seen := make(map[[2]int]bool)
		for _, s := range interleavedSlots(stage, p, v, nmb, nil) {
			k := [2]int{s.micro, s.chunk}
			if s.forward {
				seen[k] = true
			} else if !seen[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedGraphBuilds(t *testing.T) {
	m := tinyModel() // 4 layers
	plan := interleavedPlan(2, 2, 4)
	g := build(t, m, plan, 1)
	checkAcyclic(t, g)

	// v chunks x (p-1 fwd + p-1 bwd internal boundaries) plus the
	// wrap-around hops: total virtual boundaries = p*v-1 per direction.
	wantP2P := 2 * (2*2 - 1) * plan.MicroBatches()
	if got := count(g, P2P); got != wantP2P {
		t.Fatalf("interleaved P2P nodes = %d, want %d", got, wantP2P)
	}

	// Embedding still on stage 0 (chunk 0), LM head on the last device
	// (chunk v-1).
	for id := 0; id < g.NumNodes(); id++ {
		n := g.Node(id)
		if n.Kind != Compute {
			continue
		}
		switch n.Op {
		case profiler.FwdEmbedding:
			if n.Stage != 0 || n.Chunk != 0 {
				t.Fatalf("embedding on (stage %d, chunk %d)", n.Stage, n.Chunk)
			}
		case profiler.FwdLMHead:
			if n.Stage != 1 || n.Chunk != 1 {
				t.Fatalf("LM head on (stage %d, chunk %d)", n.Stage, n.Chunk)
			}
		}
	}
}

func TestInterleavedLayerCoverage(t *testing.T) {
	// Every decoder layer appears exactly nmb times forward and backward.
	m := model.Config{Name: "cov", Hidden: 128, Layers: 8, SeqLen: 64, Heads: 2, Vocab: 256}
	plan := interleavedPlan(2, 2, 2)
	g := build(t, m, plan, 1)
	fwdMHA := make(map[string]int)
	for id := 0; id < g.NumNodes(); id++ {
		n := g.Node(id)
		if n.Kind == Compute && n.Op == profiler.FwdMHA {
			fwdMHA[n.Label()]++
		}
	}
	// 8 layers x 2 micro-batches of distinct labels, each once.
	if len(fwdMHA) != 16 {
		t.Fatalf("distinct FwdMHA labels = %d, want 16", len(fwdMHA))
	}
	for label, c := range fwdMHA {
		if c != 1 {
			t.Fatalf("label %q appears %d times", label, c)
		}
	}
}

func TestInterleavedGraphAcyclicProperty(t *testing.T) {
	c := hw.PaperCluster(8)
	f := func(p8, v8, g8 uint8) bool {
		p := int(p8)%2 + 2 // 2..3
		v := int(v8)%2 + 2 // 2..3
		layers := p * v * (int(g8)%2 + 1)
		m := model.Config{Name: "q", Hidden: 64, Layers: layers, SeqLen: 32, Heads: 2, Vocab: 64}
		nmb := p * (int(g8)%3 + 1)
		plan := parallel.Plan{
			Tensor: 1, Data: 1, Pipeline: p, MicroBatch: 1, GlobalBatch: nmb,
			VirtualStages: v,
		}
		g, err := Build(m, plan, c)
		if err != nil {
			return false
		}
		for id := 0; id < g.NumNodes(); id++ {
			for _, d := range g.Deps(id) {
				if int(d) >= id {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedChunkGradientBuckets(t *testing.T) {
	m := model.Config{Name: "b", Hidden: 128, Layers: 8, SeqLen: 64, Heads: 2, Vocab: 256}
	plan := parallel.Plan{
		Tensor: 1, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 4,
		VirtualStages: 2, GradientBuckets: 4,
	}
	g := build(t, m, plan, 2)
	// One bucket per chunk per stage: 2 stages x 2 chunks.
	if got := count(g, AllReduceDP); got != 4 {
		t.Fatalf("interleaved DP All-Reduces = %d, want 4", got)
	}
}
