package opgraph

import "strconv"

// labelKind selects the format of a node's lazily-composed label. Nodes
// store only this one byte plus their coordinate fields; the human-readable
// string is produced on demand by Node.Label, so graphs built for plain
// simulation (no trace capture) never pay any string formatting.
type labelKind uint8

const (
	lbFwdEmbedding labelKind = iota
	lbRecvFwd
	lbFwdMHA
	lbARTPFwdMHA
	lbFwdFFN
	lbARTPFwdFFN
	lbFwdLMHead
	lbBwdLMHead
	lbRecvBwd
	lbRecompMHA
	lbARTPRecompMHA
	lbRecompFFN
	lbARTPRecompFFN
	lbBwdFFN
	lbARTPBwdFFN
	lbBwdMHA
	lbARTPBwdMHA
	lbBwdEmbedding
	lbARDP
	lbWeightUpdate
)

// labelForm says which coordinate fields a label renders after its prefix.
type labelForm uint8

const (
	formMB     labelForm = iota // "<prefix>mb<micro>"
	formCMB                     // "<prefix>c<chunk> mb<micro>"
	formLMB                     // "<prefix>L<layer> mb<micro>"
	formS                       // "<prefix>s<stage>"
	formBucket                  // "<prefix>bucket<b> L[<lo>,<hi>) s<stage>"
)

var labelSpecs = [...]struct {
	prefix string
	form   labelForm
}{
	lbFwdEmbedding:  {"Fwd Embedding ", formMB},
	lbRecvFwd:       {"Recv Fwd ", formCMB},
	lbFwdMHA:        {"Fwd MHA ", formLMB},
	lbARTPFwdMHA:    {"AR-TP Fwd MHA ", formLMB},
	lbFwdFFN:        {"Fwd FFN ", formLMB},
	lbARTPFwdFFN:    {"AR-TP Fwd FFN ", formLMB},
	lbFwdLMHead:     {"Fwd LMHead ", formMB},
	lbBwdLMHead:     {"Bwd LMHead ", formMB},
	lbRecvBwd:       {"Recv Bwd ", formCMB},
	lbRecompMHA:     {"Recompute Fwd MHA ", formLMB},
	lbARTPRecompMHA: {"AR-TP Recompute MHA ", formLMB},
	lbRecompFFN:     {"Recompute Fwd FFN ", formLMB},
	lbARTPRecompFFN: {"AR-TP Recompute FFN ", formLMB},
	lbBwdFFN:        {"Bwd FFN ", formLMB},
	lbARTPBwdFFN:    {"AR-TP Bwd FFN ", formLMB},
	lbBwdMHA:        {"Bwd MHA ", formLMB},
	lbARTPBwdMHA:    {"AR-TP Bwd MHA ", formLMB},
	lbBwdEmbedding:  {"Bwd Embedding ", formMB},
	lbARDP:          {"AR-DP ", formBucket},
	lbWeightUpdate:  {"WeightUpdate ", formS},
}

// labelRec is the complete coordinate set a label renders: the one-byte
// format selector plus the node fields the formats reference. It exists so
// labels can outlive the graph (see Graph.LabelSnapshot) at a few bytes per
// node instead of retaining the whole arena.
type labelRec struct {
	label                                        labelKind
	stage, micro, chunk, layer, layerEnd, bucket int32
}

// rec extracts the node's label coordinates.
func (n *Node) rec() labelRec {
	return labelRec{
		label: n.label,
		stage: n.Stage, micro: n.Micro, chunk: n.Chunk,
		layer: n.Layer, layerEnd: n.LayerEnd, bucket: n.Bucket,
	}
}

// compose renders the record's human-readable label.
func (r labelRec) compose() string {
	sp := &labelSpecs[r.label]
	buf := make([]byte, 0, 48)
	buf = append(buf, sp.prefix...)
	switch sp.form {
	case formMB:
		buf = append(buf, 'm', 'b')
		buf = strconv.AppendInt(buf, int64(r.micro), 10)
	case formCMB:
		buf = append(buf, 'c')
		buf = strconv.AppendInt(buf, int64(r.chunk), 10)
		buf = append(buf, ' ', 'm', 'b')
		buf = strconv.AppendInt(buf, int64(r.micro), 10)
	case formLMB:
		buf = append(buf, 'L')
		buf = strconv.AppendInt(buf, int64(r.layer), 10)
		buf = append(buf, ' ', 'm', 'b')
		buf = strconv.AppendInt(buf, int64(r.micro), 10)
	case formS:
		buf = append(buf, 's')
		buf = strconv.AppendInt(buf, int64(r.stage), 10)
	case formBucket:
		buf = append(buf, "bucket"...)
		buf = strconv.AppendInt(buf, int64(r.bucket), 10)
		buf = append(buf, ' ', 'L', '[')
		buf = strconv.AppendInt(buf, int64(r.layer), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(r.layerEnd), 10)
		buf = append(buf, ')', ' ', 's')
		buf = strconv.AppendInt(buf, int64(r.stage), 10)
	}
	return string(buf)
}

// Label composes the node's human-readable tag, e.g. "Fwd MHA L3 mb2".
// Labels are lazy: nothing is formatted at graph-construction time, and the
// output is byte-identical to the eager fmt.Sprintf labels earlier versions
// stored on every node. Only trace rendering and tests should call this; the
// simulation hot path never does.
func (n *Node) Label() string { return n.rec().compose() }

// LabelSnapshot returns a label resolver equivalent to Graph.Label that
// does not retain the graph: it copies the per-node label coordinates
// (a labelRec per node) and composes strings from those on demand. Callers
// that cache lowered task graphs long-term use it so the cached structure
// does not pin the operator graph's arena and CSR storage.
func (g *Graph) LabelSnapshot() func(id int) string {
	recs := make([]labelRec, g.NumNodes())
	for i := range recs {
		recs[i] = g.arena.at(i).rec()
	}
	return func(id int) string { return recs[id].compose() }
}
