package opgraph

import "strconv"

// labelKind selects the format of a node's lazily-composed label. Nodes
// store only this one byte plus their coordinate fields; the human-readable
// string is produced on demand by Node.Label, so graphs built for plain
// simulation (no trace capture) never pay any string formatting.
type labelKind uint8

const (
	lbFwdEmbedding labelKind = iota
	lbRecvFwd
	lbFwdMHA
	lbARTPFwdMHA
	lbFwdFFN
	lbARTPFwdFFN
	lbFwdLMHead
	lbBwdLMHead
	lbRecvBwd
	lbRecompMHA
	lbARTPRecompMHA
	lbRecompFFN
	lbARTPRecompFFN
	lbBwdFFN
	lbARTPBwdFFN
	lbBwdMHA
	lbARTPBwdMHA
	lbBwdEmbedding
	lbARDP
	lbWeightUpdate
)

// labelForm says which coordinate fields a label renders after its prefix.
type labelForm uint8

const (
	formMB     labelForm = iota // "<prefix>mb<micro>"
	formCMB                     // "<prefix>c<chunk> mb<micro>"
	formLMB                     // "<prefix>L<layer> mb<micro>"
	formS                       // "<prefix>s<stage>"
	formBucket                  // "<prefix>bucket<b> L[<lo>,<hi>) s<stage>"
)

var labelSpecs = [...]struct {
	prefix string
	form   labelForm
}{
	lbFwdEmbedding:  {"Fwd Embedding ", formMB},
	lbRecvFwd:       {"Recv Fwd ", formCMB},
	lbFwdMHA:        {"Fwd MHA ", formLMB},
	lbARTPFwdMHA:    {"AR-TP Fwd MHA ", formLMB},
	lbFwdFFN:        {"Fwd FFN ", formLMB},
	lbARTPFwdFFN:    {"AR-TP Fwd FFN ", formLMB},
	lbFwdLMHead:     {"Fwd LMHead ", formMB},
	lbBwdLMHead:     {"Bwd LMHead ", formMB},
	lbRecvBwd:       {"Recv Bwd ", formCMB},
	lbRecompMHA:     {"Recompute Fwd MHA ", formLMB},
	lbARTPRecompMHA: {"AR-TP Recompute MHA ", formLMB},
	lbRecompFFN:     {"Recompute Fwd FFN ", formLMB},
	lbARTPRecompFFN: {"AR-TP Recompute FFN ", formLMB},
	lbBwdFFN:        {"Bwd FFN ", formLMB},
	lbARTPBwdFFN:    {"AR-TP Bwd FFN ", formLMB},
	lbBwdMHA:        {"Bwd MHA ", formLMB},
	lbARTPBwdMHA:    {"AR-TP Bwd MHA ", formLMB},
	lbBwdEmbedding:  {"Bwd Embedding ", formMB},
	lbARDP:          {"AR-DP ", formBucket},
	lbWeightUpdate:  {"WeightUpdate ", formS},
}

// NumLabelKinds bounds the valid label-format selectors: a LabelRec with
// Kind >= NumLabelKinds is invalid and composes to "". Decoders reading
// label records from untrusted bytes reject such records up front.
const NumLabelKinds = len(labelSpecs)

// LabelRec is the complete coordinate set a label renders: the one-byte
// format selector plus the node fields the formats reference. It exists so
// labels can outlive the graph (see Graph.LabelRecs) at a few bytes per
// node instead of retaining the whole arena, and — unlike a closure — it
// can be serialized, which is what lets lowered task graphs round-trip
// through the on-disk artifact store with their labels intact.
type LabelRec struct {
	Kind                                         uint8
	Stage, Micro, Chunk, Layer, LayerEnd, Bucket int32
}

// Valid reports whether the record's format selector is in range.
func (r LabelRec) Valid() bool { return int(r.Kind) < NumLabelKinds }

// rec extracts the node's label coordinates.
func (n *Node) rec() LabelRec {
	return LabelRec{
		Kind:  uint8(n.label),
		Stage: n.Stage, Micro: n.Micro, Chunk: n.Chunk,
		Layer: n.Layer, LayerEnd: n.LayerEnd, Bucket: n.Bucket,
	}
}

// Compose renders the record's human-readable label. Invalid records
// compose to the empty string rather than panicking.
func (r LabelRec) Compose() string {
	if !r.Valid() {
		return ""
	}
	sp := &labelSpecs[r.Kind]
	buf := make([]byte, 0, 48)
	buf = append(buf, sp.prefix...)
	switch sp.form {
	case formMB:
		buf = append(buf, 'm', 'b')
		buf = strconv.AppendInt(buf, int64(r.Micro), 10)
	case formCMB:
		buf = append(buf, 'c')
		buf = strconv.AppendInt(buf, int64(r.Chunk), 10)
		buf = append(buf, ' ', 'm', 'b')
		buf = strconv.AppendInt(buf, int64(r.Micro), 10)
	case formLMB:
		buf = append(buf, 'L')
		buf = strconv.AppendInt(buf, int64(r.Layer), 10)
		buf = append(buf, ' ', 'm', 'b')
		buf = strconv.AppendInt(buf, int64(r.Micro), 10)
	case formS:
		buf = append(buf, 's')
		buf = strconv.AppendInt(buf, int64(r.Stage), 10)
	case formBucket:
		buf = append(buf, "bucket"...)
		buf = strconv.AppendInt(buf, int64(r.Bucket), 10)
		buf = append(buf, ' ', 'L', '[')
		buf = strconv.AppendInt(buf, int64(r.Layer), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(r.LayerEnd), 10)
		buf = append(buf, ')', ' ', 's')
		buf = strconv.AppendInt(buf, int64(r.Stage), 10)
	}
	return string(buf)
}

// Label composes the node's human-readable tag, e.g. "Fwd MHA L3 mb2".
// Labels are lazy: nothing is formatted at graph-construction time, and the
// output is byte-identical to the eager fmt.Sprintf labels earlier versions
// stored on every node. Only trace rendering and tests should call this; the
// simulation hot path never does.
func (n *Node) Label() string { return n.rec().Compose() }

// LabelRecs copies the per-node label coordinates out of the graph: a
// LabelRec per node, composable into the exact string Node.Label returns,
// without retaining the graph's arena or CSR storage.
func (g *Graph) LabelRecs() []LabelRec {
	recs := make([]LabelRec, g.NumNodes())
	for i := range recs {
		recs[i] = g.arena.at(i).rec()
	}
	return recs
}

// LabelSnapshot returns a label resolver equivalent to Graph.Label that
// does not retain the graph: it wraps LabelRecs in a closure for callers
// that want a function rather than the records themselves.
func (g *Graph) LabelSnapshot() func(id int) string {
	recs := g.LabelRecs()
	return func(id int) string { return recs[id].Compose() }
}

// LabelTable is the columnar form of LabelRecs: one flat column per
// coordinate instead of a slice of structs. Lowered task graphs carry
// their labels in this form because it is exactly the artifact store's
// on-disk layout — a disk-loaded graph aliases the columns straight out
// of the read buffer, with no per-record assembly loop — and the columns
// compress a record's padding away in memory too. Columns are read-only
// once built; At materializes a record on demand (trace rendering only).
type LabelTable struct {
	Kinds                                        []uint8
	Stage, Micro, Chunk, Layer, LayerEnd, Bucket []int32
}

// Len returns the number of records in the table.
func (t *LabelTable) Len() int { return len(t.Kinds) }

// At materializes record i.
func (t *LabelTable) At(i int) LabelRec {
	return LabelRec{
		Kind:  t.Kinds[i],
		Stage: t.Stage[i], Micro: t.Micro[i], Chunk: t.Chunk[i],
		Layer: t.Layer[i], LayerEnd: t.LayerEnd[i], Bucket: t.Bucket[i],
	}
}

// LabelTable copies the per-node label coordinates out of the graph in
// columnar form, without retaining the graph's arena or CSR storage.
func (g *Graph) LabelTable() *LabelTable {
	n := g.NumNodes()
	t := &LabelTable{
		Kinds: make([]uint8, n),
		Stage: make([]int32, n), Micro: make([]int32, n), Chunk: make([]int32, n),
		Layer: make([]int32, n), LayerEnd: make([]int32, n), Bucket: make([]int32, n),
	}
	for i := 0; i < n; i++ {
		nd := g.arena.at(i)
		t.Kinds[i] = uint8(nd.label)
		t.Stage[i], t.Micro[i], t.Chunk[i] = nd.Stage, nd.Micro, nd.Chunk
		t.Layer[i], t.LayerEnd[i], t.Bucket[i] = nd.Layer, nd.LayerEnd, nd.Bucket
	}
	return t
}
