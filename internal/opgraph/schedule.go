package opgraph

import "vtrain/internal/parallel"

// slot identifies one schedule entry: a forward or backward pass of one
// micro-batch of one model chunk on one stage.
type slot struct {
	forward bool
	micro   int
	chunk   int
}

// scheduleSlots returns the execution order of stage i under the plan's
// pipeline schedule, appending into buf (a pooled, capacity-limited slice;
// every schedule emits exactly two slots per micro-batch per chunk).
func scheduleSlots(plan parallel.Plan, stage, stages, microBatches int, buf []slot) []slot {
	if plan.Interleaved() {
		return interleavedSlots(stage, stages, plan.VirtualStages, microBatches, buf)
	}
	slots := buf[:0]
	switch plan.Schedule {
	case parallel.GPipe:
		// All forwards, then all backwards in reverse micro-batch
		// order (Fig. 7a).
		for j := 0; j < microBatches; j++ {
			slots = append(slots, slot{forward: true, micro: j})
		}
		for j := microBatches - 1; j >= 0; j-- {
			slots = append(slots, slot{forward: false, micro: j})
		}
	default: // 1F1B
		// Warm-up forwards fill the pipeline, then strict
		// one-forward-one-backward alternation, then cool-down
		// backwards (Fig. 7b).
		warmup := stages - stage
		if warmup > microBatches {
			warmup = microBatches
		}
		for j := 0; j < warmup; j++ {
			slots = append(slots, slot{forward: true, micro: j})
		}
		for j := warmup; j < microBatches; j++ {
			slots = append(slots, slot{forward: false, micro: j - warmup})
			slots = append(slots, slot{forward: true, micro: j})
		}
		for j := microBatches - warmup; j < microBatches; j++ {
			slots = append(slots, slot{forward: false, micro: j})
		}
	}
	return slots
}

// interleavedSlots generates Megatron-LM's interleaved 1F1B order for one
// device: micro-batches advance in groups of p per model chunk, with
// (p - stage - 1)·2 + (v-1)·p warm-up forward slots.
func interleavedSlots(stage, p, v, microBatches int, buf []slot) []slot {
	total := microBatches * v
	fwdAt := func(k int) slot {
		return slot{
			forward: true,
			micro:   (k/(p*v))*p + k%p,
			chunk:   (k % (p * v)) / p,
		}
	}
	bwdAt := func(k int) slot {
		return slot{
			forward: false,
			micro:   (k/(p*v))*p + k%p,
			chunk:   v - 1 - (k%(p*v))/p,
		}
	}
	warmup := 2*(p-stage-1) + (v-1)*p
	if warmup > total {
		warmup = total
	}
	slots := buf[:0]
	for k := 0; k < warmup; k++ {
		slots = append(slots, fwdAt(k))
	}
	for k := warmup; k < total; k++ {
		slots = append(slots, fwdAt(k))
		slots = append(slots, bwdAt(k-warmup))
	}
	for k := total - warmup; k < total; k++ {
		slots = append(slots, bwdAt(k))
	}
	return slots
}
