package taskgraph

import (
	"vtrain/internal/comm"
	"vtrain/internal/hw"
	"vtrain/internal/parallel"
)

// This file implements the contention fidelity level: instead of pricing
// every collective on an ideal uncontended link, the replay tracks which
// communication tasks are simultaneously in flight on shared fat-tree links
// (node NVSwitches, per-node HCA bundles, the spine) and derates their
// durations by comm.Congestion's per-class weights.
//
// The split mirrors the structure/timing split. BindContention resolves the
// plan- and cluster-dependent classification once per (graph, plan,
// cluster) — which descriptor is a collective, how many nodes it spans,
// which nodes a P2P transfer connects — into an immutable ContentionTable.
// The replay-time part (contention.go's occupancy state, owned per replay
// call and per batch lane) then needs only O(1) arithmetic per comm task to
// find its link classes, plus an interval-overlap count against the flows
// already recorded on those classes. Contention never changes the graph's
// structure, so structural caching, artifact round-trips, and cross-plan
// sharing are untouched; with a nil table every replay entry point performs
// bit-identical float operations to the contention-free path.

// contKind classifies a descriptor's contention behavior.
type contKind uint8

const (
	// contNone marks compute descriptors: no link occupancy.
	contNone contKind = iota
	// contColl marks collectives; the representative node derives from the
	// task's stage at replay time.
	contColl
	// contP2P marks pipeline transfers between two bind-time-known nodes.
	contP2P
)

// ContentionTable is the per-(plan, cluster) contention binding of one
// structural graph: for every duration descriptor, which fat-tree links its
// tasks occupy. Like a DurationTable it is immutable after binding, so one
// table can back any number of concurrent replays — the mutable occupancy
// state lives in a per-replay contState.
type ContentionTable struct {
	cg comm.Congestion
	// kind, span, fromNode, toNode are per-descriptor, parallel to
	// Graph.descs. span is a collective's node span (1 = node-local);
	// fromNode/toNode are a P2P transfer's endpoints.
	kind     []contKind
	span     []int32
	fromNode []int32
	toNode   []int32
	// stride and gpn map a task's stage to its representative node.
	stride, gpn int
	// classes is the link-class count: spine, then (nv, hca) per node.
	classes int
}

// Link-class layout: class 0 is the spine; node k's NVSwitch is 1+2k and
// its HCA bundle 2+2k.
func nvClass(node int) int  { return 1 + 2*node }
func hcaClass(node int) int { return 2 + 2*node }

// BindContention resolves the graph's communication descriptors against the
// cluster's fat-tree topology for one concrete plan. It returns nil for
// hand-built eager graphs (no descriptors): their durations were priced by
// an arbitrary external process the topology knows nothing about, and a nil
// table makes every contended entry point equivalent to its ideal twin.
func (g *Graph) BindContention(plan parallel.Plan, c hw.Cluster) *ContentionTable {
	if g.descs == nil {
		return nil
	}
	gpn := c.Node.GPUsPerNode
	stride := plan.Tensor * plan.Data
	ct := &ContentionTable{
		cg:       comm.NewCongestion(c),
		kind:     make([]contKind, len(g.descs)),
		span:     make([]int32, len(g.descs)),
		fromNode: make([]int32, len(g.descs)),
		toNode:   make([]int32, len(g.descs)),
		stride:   stride,
		gpn:      gpn,
	}
	maxNode := ((g.Devices-1)*stride + stride - 1) / gpn
	for i := range g.descs {
		d := &g.descs[i]
		switch d.kind {
		case descAllReduceTP:
			n, intra := allReduceTPArgs(plan, gpn)
			ct.kind[i] = contColl
			if intra {
				n = 1
			}
			ct.span[i] = int32(n)
		case descAllReduceDP:
			n, intra := allReduceDPArgs(plan, gpn)
			ct.kind[i] = contColl
			if intra {
				n = 1
			}
			ct.span[i] = int32(n)
		case descP2P:
			ct.kind[i] = contP2P
			ct.fromNode[i] = int32(int(d.from) * stride / gpn)
			ct.toNode[i] = int32(int(d.to) * stride / gpn)
		}
	}
	ct.classes = hcaClass(maxNode) + 1
	return ct
}

// interval is one recorded occupancy of a link class.
type interval struct{ start, end float64 }

// contState is the mutable occupancy ledger of one replay (or one batch
// lane): per link class, the time intervals of the flows recorded so far.
// Replay visits tasks in topological (not time) order, so a flow only
// contends with flows recorded before it — a deterministic, conservative
// under-count that keeps the replay single-pass.
type contState struct {
	occ [][]interval
}

func newContState(ct *ContentionTable) *contState {
	return &contState{occ: make([][]interval, ct.classes)}
}

// overlaps counts recorded flows on class whose interval intersects
// [start, end).
func (st *contState) overlaps(class int, start, end float64) int {
	n := 0
	for _, iv := range st.occ[class] {
		if iv.start < end && iv.end > start {
			n++
		}
	}
	return n
}

// contend derates the base duration of the comm task in slot with
// descriptor di, given its dependency-and-stream start time, and records
// the derated flow on its link classes. Tasks whose path occupies no shared
// link (and zero-duration tasks, e.g. width-1 collectives) pass through
// unchanged. The returned duration is always >= dur: every weight is
// non-negative and the overlap counts only grow with concurrency.
func (ct *ContentionTable) contend(st *contState, slot int32, di int32, start, dur float64) float64 {
	if ct.kind[di] == contNone || dur <= 0 {
		return dur
	}
	var path comm.Path
	if ct.kind[di] == contColl {
		node := int(slot>>1) * ct.stride / ct.gpn
		path = ct.cg.CollectivePath(node, int(ct.span[di]))
	} else {
		path = ct.cg.SendRecvPath(int(ct.fromNode[di]), int(ct.toNode[di]))
	}
	if path.None() {
		return dur
	}
	end := start + dur
	nv, hca, spine := 0, 0, 0
	if path.NVNode >= 0 {
		nv = st.overlaps(nvClass(path.NVNode), start, end)
	}
	for _, n := range path.HCANodes {
		if n >= 0 {
			hca += st.overlaps(hcaClass(n), start, end)
		}
	}
	if path.Spine {
		spine = st.overlaps(0, start, end)
	}
	dur *= ct.cg.Derate(nv, hca, spine)
	iv := interval{start: start, end: start + dur}
	if path.NVNode >= 0 {
		c := nvClass(path.NVNode)
		st.occ[c] = append(st.occ[c], iv)
	}
	for _, n := range path.HCANodes {
		if n >= 0 {
			c := hcaClass(n)
			st.occ[c] = append(st.occ[c], iv)
		}
	}
	if path.Spine {
		st.occ[0] = append(st.occ[0], iv)
	}
	return dur
}

// ReplayContended is Replay under the contention fidelity level: comm tasks
// sharing fat-tree links with concurrently in-flight comm tasks run slower
// by the congestion model's derate factors. A nil table reproduces Replay
// bit for bit.
func (g *Graph) ReplayContended(tbl *DurationTable, ct *ContentionTable) (Result, error) {
	res, _, err := g.replay(tbl, ct, false)
	return res, err
}

// ReplayTraceContended is ReplayContended plus the full execution timeline;
// span durations reflect the derated comm tasks.
func (g *Graph) ReplayTraceContended(tbl *DurationTable, ct *ContentionTable) (Result, []Span, error) {
	return g.replay(tbl, ct, true)
}
