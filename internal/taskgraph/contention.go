package taskgraph

import (
	"math"
	"sort"
	"sync"

	"vtrain/internal/comm"
	"vtrain/internal/hw"
	"vtrain/internal/parallel"
)

// This file implements the contention fidelity level: instead of pricing
// every collective on an ideal uncontended link, the replay tracks which
// communication tasks are simultaneously in flight on shared fat-tree links
// (node NVSwitches, per-node HCA bundles, the spine) and derates their
// durations by comm.Congestion's per-class weights.
//
// The split mirrors the structure/timing split. BindContention resolves the
// plan- and cluster-dependent classification once per (graph, plan,
// cluster) — which descriptor is a collective, how many nodes it spans,
// which nodes a P2P transfer connects — into an immutable ContentionTable.
// The replay-time part (this file's occupancy ledger, pooled and owned per
// replay call and per batch lane) then needs only O(1) arithmetic per comm
// task to find its link classes, plus an interval-overlap count against the
// flows already recorded on those classes. Contention never changes the
// graph's structure, so structural caching, artifact round-trips, and
// cross-plan sharing are untouched; with a nil table every replay entry
// point performs bit-identical float operations to the contention-free path.
//
// The overlap count is sub-linear in recorded flows. Each link class keeps
// an epoch-bucketed ledger: time is cut into fixed-width epochs (width =
// the bound table's median comm-task duration), and per class the ledger
// histograms the *start* values and *end* values of recorded flows over
// epochs — a Fenwick tree per histogram for O(log epochs) prefix counts,
// plus an exact per-epoch spill chain of the raw values. Because every
// recorded interval and every query has end > start, "overlaps [s, e)"
// decomposes exactly into
//
//	n  -  #(recorded end <= s)  -  #(recorded start >= e)
//
// (the two exclusion sets cannot intersect), and each exclusion count is a
// Fenwick prefix sum over whole epochs plus an exact scan of the one
// boundary epoch's spill chain. The count — and therefore the derate
// arithmetic — is bit-identical to the flat append-and-scan it replaces;
// only the cost changes, from O(flows) per query to O(log epochs +
// boundary-epoch occupancy).

// contKind classifies a descriptor's contention behavior.
type contKind uint8

const (
	// contNone marks compute descriptors: no link occupancy.
	contNone contKind = iota
	// contColl marks collectives; the representative node derives from the
	// task's stage at replay time.
	contColl
	// contP2P marks pipeline transfers between two bind-time-known nodes.
	contP2P
)

// contEpochTarget is the epoch count the replay horizon estimate is spread
// over: the ledger widens its epochs beyond the median comm duration when
// the horizon would otherwise shatter into so many epochs that the per-class
// arrays outgrow the cache (their cost is O(max epoch touched), not
// O(flows)).
const contEpochTarget = 1024

// contEpochCap bounds the epoch index (4x the target, headroom for horizon
// underestimates). Times at or beyond the cap share the last epoch: the
// clamp is monotone, so counts stay exact — the final epoch merely degrades
// toward a linear scan for pathological widths.
const contEpochCap = 1 << 12

// defaultContEpochWidth (seconds) prices epochs when the bound table offers
// no positive comm duration to derive a width from. The width only steers
// bucketing granularity — never results.
const defaultContEpochWidth = 1e-3

// ContentionTable is the per-(plan, cluster) contention binding of one
// structural graph: for every duration descriptor, which fat-tree links its
// tasks occupy. Like a DurationTable it is immutable after binding, so one
// table can back any number of concurrent replays — the mutable occupancy
// state lives in a per-replay contState.
type ContentionTable struct {
	cg comm.Congestion
	// kind, span, fromNode, toNode are per-descriptor, parallel to
	// Graph.descs. span is a collective's node span (1 = node-local);
	// fromNode/toNode are a P2P transfer's endpoints.
	kind     []contKind
	span     []int32
	fromNode []int32
	toNode   []int32
	// stride and gpn map a task's stage to its representative node.
	stride, gpn int
	// classes is the link-class count: spine, then (nv, hca) per node.
	classes int
	// invW is the reciprocal epoch width of the occupancy ledgers, derived
	// from the bound table's median comm duration.
	invW float64
}

// Link-class layout: class 0 is the spine; node k's NVSwitch is 1+2k and
// its HCA bundle 2+2k.
func nvClass(node int) int  { return 1 + 2*node }
func hcaClass(node int) int { return 2 + 2*node }

// BindContention resolves the graph's communication descriptors against the
// cluster's fat-tree topology for one concrete plan. tbl, the plan's bound
// DurationTable, sizes the occupancy ledgers' epoch width from the median
// comm-task duration; it may be nil (a default width is used — width is a
// performance knob, never a results one). BindContention returns nil for
// hand-built eager graphs (no descriptors): their durations were priced by
// an arbitrary external process the topology knows nothing about, and a nil
// table makes every contended entry point equivalent to its ideal twin.
func (g *Graph) BindContention(plan parallel.Plan, c hw.Cluster, tbl *DurationTable) *ContentionTable {
	if g.descs == nil {
		return nil
	}
	gpn := c.Node.GPUsPerNode
	stride := plan.Tensor * plan.Data
	ct := &ContentionTable{
		cg:       comm.NewCongestion(c),
		kind:     make([]contKind, len(g.descs)),
		span:     make([]int32, len(g.descs)),
		fromNode: make([]int32, len(g.descs)),
		toNode:   make([]int32, len(g.descs)),
		stride:   stride,
		gpn:      gpn,
	}
	maxNode := ((g.Devices-1)*stride + stride - 1) / gpn
	for i := range g.descs {
		d := &g.descs[i]
		switch d.kind {
		case descAllReduceTP:
			n, intra := allReduceTPArgs(plan, gpn)
			ct.kind[i] = contColl
			if intra {
				n = 1
			}
			ct.span[i] = int32(n)
		case descAllReduceDP:
			n, intra := allReduceDPArgs(plan, gpn)
			ct.kind[i] = contColl
			if intra {
				n = 1
			}
			ct.span[i] = int32(n)
		case descP2P:
			ct.kind[i] = contP2P
			ct.fromNode[i] = int32(int(d.from) * stride / gpn)
			ct.toNode[i] = int32(int(d.to) * stride / gpn)
		}
	}
	ct.classes = hcaClass(maxNode) + 1
	w := g.commEpochWidth(ct, tbl)
	if w <= 0 {
		w = defaultContEpochWidth
	}
	ct.invW = 1 / w
	return ct
}

// commEpochWidth derives the ledgers' epoch width from tbl: the
// task-count-weighted median duration of the graph's contending comm tasks,
// widened if needed so an estimate of the replay horizon (total bound work
// per device, doubled for bubbles and derating) spans at most
// contEpochTarget epochs. It returns 0 when the table offers no width (nil,
// mismatched, or no positive comm durations).
func (g *Graph) commEpochWidth(ct *ContentionTable, tbl *DurationTable) float64 {
	if tbl == nil || tbl.Len() != g.NumTasks() {
		return 0
	}
	var median, total float64
	if tbl.byDesc {
		// Descriptor-gather tables price per descriptor; weight each priced
		// duration by its task population (descCnt), so the whole derivation
		// is O(descriptors) — no per-task pass.
		type weighted struct {
			d float64
			w int64
		}
		var ws []weighted
		var commTasks int64
		for i := range g.descs {
			w := int64(g.descCnt[i])
			if w == 0 {
				continue
			}
			d := tbl.vals[i].dur
			total += float64(w) * d
			if ct.kind[i] != contNone && d > 0 {
				ws = append(ws, weighted{d, w})
				commTasks += w
			}
		}
		if commTasks == 0 {
			return 0
		}
		sort.Slice(ws, func(a, b int) bool { return ws[a].d < ws[b].d })
		half := (commTasks + 1) / 2
		var acc int64
		for _, w := range ws {
			if acc += w.w; acc >= half {
				median = w.d
				break
			}
		}
	} else {
		// Stateful timers fan out to per-task columns; gather and sort those.
		var durs []float64
		for id, di := range g.durIdx {
			d := tbl.dur[id]
			total += d
			if ct.kind[di] != contNone && d > 0 {
				durs = append(durs, d)
			}
		}
		if len(durs) == 0 {
			return 0
		}
		sort.Float64s(durs)
		median = durs[(len(durs)-1)/2]
	}
	if horizon := 2 * total / float64(g.Devices); horizon/contEpochTarget > median {
		return horizon / contEpochTarget
	}
	return median
}

// epochOf maps a time to its ledger epoch: monotone (a < b never maps a
// after b), clamped to [0, contEpochCap), and NaN-safe.
func epochOf(t, invW float64) int32 {
	e := t * invW
	if !(e > 0) {
		return 0
	}
	if e >= contEpochCap-1 {
		return contEpochCap - 1
	}
	return int32(e)
}

// epochHist is one epoch-bucketed histogram of float64 values (the starts,
// or the ends, of one link class's recorded flows):
//
//   - cnt[e] is the number of values in epoch e;
//   - fen is a Fenwick tree over cnt, for O(log epochs) prefix counts
//     (fen[j] aggregates classic 1-based Fenwick index j+1 — node coverage
//     is length-independent, so growing rebuilds from cnt);
//   - head[e] chains epoch e's exact values through the contState node
//     pool (head stores node index + 1; 0 is the empty chain).
//
// All three arrays share one length and grow together by doubling; the
// epoch cap keeps them small enough that plain slices with a clear-on-reuse
// reset beat any generation-tagging scheme in the hot loops.
type epochHist struct {
	cnt  []uint32
	fen  []uint32
	head []uint32
}

func (h *epochHist) clear() {
	clear(h.cnt)
	clear(h.fen)
	clear(h.head)
}

func (h *epochHist) drop() {
	*h = epochHist{}
}

// insert records value v (in epoch e) into the histogram, chaining its
// exact value through cs's node pool.
func (h *epochHist) insert(cs *contState, e int32, v float64) {
	if int(e) >= len(h.cnt) {
		h.grow(e)
	}
	h.cnt[e]++
	f := h.fen
	for i := int(e) + 1; i <= len(f); i += i & (-i) {
		f[i-1]++
	}
	idx := cs.pushNode(v, h.head[e])
	h.head[e] = idx + 1
}

// grow widens the arrays to the next power of two above e, preserving the
// recorded counts and chains; the Fenwick tree is rebuilt from cnt — seed
// each node with its own epoch's count, then fold each node into its
// parent. O(length), amortized by doubling.
func (h *epochHist) grow(e int32) {
	n := 64
	for n <= int(e) {
		n *= 2
	}
	cnt := make([]uint32, n)
	copy(cnt, h.cnt)
	h.cnt = cnt
	head := make([]uint32, n)
	copy(head, h.head)
	h.head = head
	f := make([]uint32, n)
	copy(f, cnt)
	for i := 1; i <= n; i++ {
		if j := i + i&(-i); j <= n {
			f[j-1] += f[i-1]
		}
	}
	h.fen = f
}

// prefix returns the number of recorded values in epochs [0, e]. Epochs the
// arrays never grew to hold are empty, so e clamps to the allocated range.
func (h *epochHist) prefix(e int32) int32 {
	f := h.fen
	ei := int(e)
	if ei >= len(f) {
		ei = len(f) - 1
	}
	s := uint32(0)
	for i := ei + 1; i > 0; i -= i & (-i) {
		s += f[i-1]
	}
	return int32(s)
}

// chainCountLE counts epoch e's exact values <= v; chainCountGE counts
// those >= v. Both scan only the one boundary epoch's spill chain.
func (h *epochHist) chainCountLE(cs *contState, e int32, v float64) int32 {
	if int(e) >= len(h.head) {
		return 0
	}
	c := int32(0)
	for p := h.head[e]; p != 0; p = uint32(cs.nodeNext[p-1]) {
		if cs.nodeVal[p-1] <= v {
			c++
		}
	}
	return c
}

func (h *epochHist) chainCountGE(cs *contState, e int32, v float64) int32 {
	if int(e) >= len(h.head) {
		return 0
	}
	c := int32(0)
	for p := h.head[e]; p != 0; p = uint32(cs.nodeNext[p-1]) {
		if cs.nodeVal[p-1] >= v {
			c++
		}
	}
	return c
}

// classLedger is one link class's occupancy ledger: the start and end
// histograms of the flows recorded on that class this replay, plus the
// high-water epoch driving the hysteretic shrink of its epoch arrays.
// minStart/maxEnd bound the recorded intervals: a query outside them
// overlaps nothing and skips the histograms entirely — the common case on
// classes whose flows are serialized by a dependency chain (one comm
// stream feeding one NVSwitch), where each flow starts at or after the
// previous one's end.
type classLedger struct {
	starts   epochHist
	ends     epochHist
	n        int32
	hi       int32
	minStart float64
	maxEnd   float64
	// oversized counts consecutive resets whose epoch capacity exceeded 4x
	// the previous replay's high-water epoch (see wantShrink).
	oversized int8
}

func (led *classLedger) reset() {
	epochLen := len(led.starts.cnt)
	if l := len(led.ends.cnt); l > epochLen {
		epochLen = l
	}
	if wantShrink(epochLen, int(led.hi)+1, &led.oversized) {
		led.starts.drop()
		led.ends.drop()
	} else if led.n > 0 {
		// Classes untouched since the last reset are already zero; only
		// dirty ledgers pay the clear, and the epoch cap bounds it.
		led.starts.clear()
		led.ends.clear()
	}
	led.n = 0
	led.hi = -1
	led.minStart = math.Inf(1)
	led.maxEnd = math.Inf(-1)
}

// contState is the mutable occupancy ledger of one replay (or one batch
// lane): per link class, the epoch-bucketed start/end histograms of the
// flows recorded so far. Replay visits tasks in topological (not time)
// order, so a flow only contends with flows recorded before it — a
// deterministic, conservative under-count that keeps the replay
// single-pass. States are pooled (getContState / putContState): resets are
// O(classes) generation bumps, and storage follows the same wantShrink
// hysteresis as the rest of the replay scratch.
type contState struct {
	led []classLedger
	// nodeVal/nodeNext form the shared spill-chain node pool of every
	// histogram: nodeVal holds the exact recorded values, nodeNext the
	// chain links (index + 1; 0 terminates).
	nodeVal  []float64
	nodeNext []int32
	nNodes   int32
	invW     float64
	// oversizedLed / oversizedNodes are the wantShrink counters of the
	// ledger slice and the node pool.
	oversizedLed   int8
	oversizedNodes int8
}

var contStatePool = sync.Pool{New: func() any { return new(contState) }}

// getContState returns a pooled occupancy ledger reset for ct. Must be
// released with putContState when the replay completes.
func getContState(ct *ContentionTable) *contState {
	cs := contStatePool.Get().(*contState)
	cs.reset(ct)
	return cs
}

func putContState(cs *contState) {
	if cs != nil {
		contStatePool.Put(cs)
	}
}

func (cs *contState) reset(ct *ContentionTable) {
	if wantShrink(cap(cs.led), ct.classes, &cs.oversizedLed) {
		cs.led = make([]classLedger, ct.classes)
	} else if len(cs.led) < ct.classes {
		// Append growth can leave cap > len, so a later intermediate class
		// count must reslice within capacity rather than append from cap
		// (which would make a negative-length tail).
		if cap(cs.led) < ct.classes {
			cs.led = append(cs.led, make([]classLedger, ct.classes-len(cs.led))...)
		} else {
			cs.led = cs.led[:ct.classes]
		}
	}
	for c := 0; c < ct.classes; c++ {
		cs.led[c].reset()
	}
	if wantShrink(cap(cs.nodeVal), int(cs.nNodes), &cs.oversizedNodes) {
		cs.nodeVal, cs.nodeNext = nil, nil
	}
	cs.nNodes = 0
	cs.invW = ct.invW
}

// pushNode appends value v to the node pool with next as its chain link,
// returning its index.
func (cs *contState) pushNode(v float64, next uint32) uint32 {
	idx := cs.nNodes
	if int(idx) < len(cs.nodeVal) {
		cs.nodeVal[idx] = v
		cs.nodeNext[idx] = int32(next)
	} else {
		cs.nodeVal = append(cs.nodeVal, v)
		cs.nodeNext = append(cs.nodeNext, int32(next))
	}
	cs.nNodes = idx + 1
	return uint32(idx)
}

// overlaps counts recorded flows on class whose interval intersects
// [start, end) — exactly the flows with iv.start < end && iv.end > start.
// Every recorded interval and every query has end > start, so the
// complement decomposes into the two disjoint exclusion counts below.
func (cs *contState) overlaps(class int, start, end float64) int {
	led := &cs.led[class]
	// Overlap needs iv.end > start and iv.start < end; outside the recorded
	// bounds (or on an empty ledger) the count is zero, no lookup needed.
	if led.n == 0 || start >= led.maxEnd || end <= led.minStart {
		return 0
	}
	es := epochOf(start, cs.invW)
	endsLE := led.ends.prefix(es-1) + led.ends.chainCountLE(cs, es, start)
	ee := epochOf(end, cs.invW)
	startsGE := led.n - led.starts.prefix(ee) + led.starts.chainCountGE(cs, ee, end)
	return int(led.n - endsLE - startsGE)
}

// record adds [start, end) to class's ledger.
func (cs *contState) record(class int, start, end float64) {
	led := &cs.led[class]
	led.n++
	if start < led.minStart {
		led.minStart = start
	}
	if end > led.maxEnd {
		led.maxEnd = end
	}
	es := epochOf(start, cs.invW)
	ee := epochOf(end, cs.invW)
	if es > led.hi {
		led.hi = es
	}
	if ee > led.hi {
		led.hi = ee
	}
	led.starts.insert(cs, es, start)
	led.ends.insert(cs, ee, end)
}

// contend derates the base duration of the comm task in slot with
// descriptor di, given its dependency-and-stream start time, and records
// the derated flow on its link classes. Tasks whose path occupies no shared
// link (and zero-duration tasks, e.g. width-1 collectives) pass through
// unchanged. The returned duration is always >= dur: every weight is
// non-negative and the overlap counts only grow with concurrency.
func (ct *ContentionTable) contend(st *contState, slot int32, di int32, start, dur float64) float64 {
	if ct.kind[di] == contNone || dur <= 0 {
		return dur
	}
	var path comm.Path
	if ct.kind[di] == contColl {
		node := int(slot>>1) * ct.stride / ct.gpn
		path = ct.cg.CollectivePath(node, int(ct.span[di]))
	} else {
		path = ct.cg.SendRecvPath(int(ct.fromNode[di]), int(ct.toNode[di]))
	}
	if path.None() {
		return dur
	}
	end := start + dur
	nv, hca, spine := 0, 0, 0
	if path.NVNode >= 0 {
		nv = st.overlaps(nvClass(path.NVNode), start, end)
	}
	for _, n := range path.HCANodes {
		if n >= 0 {
			hca += st.overlaps(hcaClass(n), start, end)
		}
	}
	if path.Spine {
		spine = st.overlaps(0, start, end)
	}
	dur *= ct.cg.Derate(nv, hca, spine)
	fend := start + dur
	if path.NVNode >= 0 {
		st.record(nvClass(path.NVNode), start, fend)
	}
	for _, n := range path.HCANodes {
		if n >= 0 {
			st.record(hcaClass(n), start, fend)
		}
	}
	if path.Spine {
		st.record(0, start, fend)
	}
	return dur
}

// ReplayContended is Replay under the contention fidelity level: comm tasks
// sharing fat-tree links with concurrently in-flight comm tasks run slower
// by the congestion model's derate factors. A nil table reproduces Replay
// bit for bit.
func (g *Graph) ReplayContended(tbl *DurationTable, ct *ContentionTable) (Result, error) {
	res, _, err := g.replay(tbl, ct, false)
	return res, err
}

// ReplayTraceContended is ReplayContended plus the full execution timeline;
// span durations reflect the derated comm tasks.
func (g *Graph) ReplayTraceContended(tbl *DurationTable, ct *ContentionTable) (Result, []Span, error) {
	return g.replay(tbl, ct, true)
}
