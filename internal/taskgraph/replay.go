package taskgraph

import (
	"fmt"
	"sync"
)

// scratch holds all mutable replay state for one Simulate call. Pooling it
// keeps the hot path of design-space sweeps allocation-lean: a worker that
// replays thousands of graphs reuses the same slices across calls.
type scratch struct {
	// ref counts outstanding dependencies per task ("ref" in Algorithm 1).
	ref []int32
	// ready is the earliest start permitted by dependencies ("start" in
	// Algorithm 1).
	ready []float64
	// free is the timeline T, flattened: free[2*device+stream].
	free []float64
	// queue is the FIFO task queue Q.
	queue []int32
	// classSec accumulates busy seconds per interned class.
	classSec []float64
	// oversized counts consecutive resets whose pooled capacity exceeded 4x
	// the request (see wantShrink).
	oversized int8
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// reset sizes the scratch for a graph with n tasks, devices devices, and
// classes distinct classes, zeroing what the replay reads. Pooled storage
// grown by one huge graph is dropped rather than pinned forever, per the
// hysteretic policy of wantShrink.
func (sc *scratch) reset(n, devices, classes int) {
	drop := wantShrink(cap(sc.ready), n, &sc.oversized)
	sc.ref = fitRaw(sc.ref, n, drop)
	sc.ready = fitZero(sc.ready, n, drop)
	if cap(sc.queue) < n || drop {
		sc.queue = make([]int32, 0, n)
	}
	sc.queue = sc.queue[:0]
	sc.free = fitZero(sc.free, 2*devices, drop)
	sc.classSec = fitZero(sc.classSec, classes, drop)
}

// replay runs Algorithm 1 over the immutable graph using pooled scratch
// state. It never writes to g (or tbl, or ct), so concurrent replays of one
// graph are safe. tbl supplies the per-plan durations of a structural
// graph; for hand-built graphs it may be nil, falling back to the tasks'
// eager values. ct, when non-nil, derates communication tasks by their
// link-sharing concurrency (the contention fidelity level); the occupancy
// ledger is pooled and owned per call, so contended replays of one graph
// are as concurrency-safe as ideal ones. With ct nil the loop performs
// exactly the float operations it always has.
func (g *Graph) replay(tbl *DurationTable, ct *ContentionTable, capture bool) (Result, []Span, error) {
	n := g.NumTasks()
	if n == 0 {
		return Result{}, nil, fmt.Errorf("taskgraph: graph has no tasks")
	}
	if g.descs != nil && tbl == nil {
		return Result{}, nil, fmt.Errorf("taskgraph: structural graph has no durations; Bind a DurationTable and use Replay")
	}
	var durs, flops []float64
	var vals []descVal
	var durIdx []int32
	if tbl != nil {
		if tbl.Len() != n {
			return Result{}, nil, fmt.Errorf("taskgraph: duration table binds %d tasks, graph has %d", tbl.Len(), n)
		}
		if tbl.byDesc {
			vals, durIdx = tbl.vals, tbl.durIdx
		} else {
			durs, flops = tbl.dur, tbl.flops
		}
	}
	sc := scratchPool.Get().(*scratch)
	sc.reset(n, g.Devices, len(g.classes))
	var cst *contState
	if ct != nil {
		cst = getContState(ct)
	}

	res := Result{
		ComputeBusy: make([]float64, g.Devices),
		CommBusy:    make([]float64, g.Devices),
	}
	var spans []Span
	if capture {
		spans = make([]Span, 0, n)
	}

	copy(sc.ref, g.indeg)
	queue := append(sc.queue, g.roots...)

	executed := 0
	for head := 0; head < len(queue); head++ {
		id := queue[head] // fetch in FIFO order
		// slotOf keeps the loop off the wide Task values: a structural
		// replay touches only the flat per-task arrays.
		slot := int(g.slotOf[id])
		var dur, fl float64
		switch {
		case vals != nil:
			// Descriptor-gather binding: the priced table is a few dozen
			// L1-resident entries, indexed through the graph's durIdx slab.
			v := &vals[durIdx[id]]
			dur, fl = v.dur, v.flops
		case durs != nil:
			dur, fl = durs[id], flops[id]
		default:
			u := &g.Tasks[id]
			dur, fl = u.Duration, u.FLOPs
		}
		start := sc.ready[id]
		if f := sc.free[slot]; f > start {
			start = f
		}
		if cst != nil && slot&1 == int(CommStream) {
			dur = ct.contend(cst, int32(slot), g.durIdx[id], start, dur)
		}
		finish := start + dur
		sc.free[slot] = finish // proceed the timeline
		if slot&1 == int(CommStream) {
			res.CommBusy[slot>>1] += dur
		} else {
			res.ComputeBusy[slot>>1] += dur
		}
		sc.classSec[g.classOf[id]] += dur
		res.FLOPs += fl
		executed++
		if capture {
			label := ""
			if tbl != nil {
				label = tbl.taskLabel(g, int(id))
			} else {
				label = g.TaskLabel(int(id))
			}
			spans = append(spans, Span{Device: slot >> 1, Stream: Stream(slot & 1), Start: start, End: finish, Label: label})
		}
		for _, cid := range g.Children(int(id)) {
			if finish > sc.ready[cid] {
				sc.ready[cid] = finish // update the child task
			}
			sc.ref[cid]--
			if sc.ref[cid] == 0 {
				queue = append(queue, cid) // update the task queue
			}
		}
	}
	res.Executed = executed
	for _, f := range sc.free {
		if f > res.IterTime {
			res.IterTime = f
		}
	}
	res.ClassSeconds = make(map[string]float64, len(g.classes))
	for i, s := range sc.classSec {
		res.ClassSeconds[g.classes[i]] = s
	}

	sc.queue = queue[:0]
	scratchPool.Put(sc)
	putContState(cst)

	if executed != n {
		return res, spans, fmt.Errorf("taskgraph: deadlock, executed %d of %d tasks", executed, n)
	}
	return res, spans, nil
}
