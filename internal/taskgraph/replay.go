package taskgraph

import (
	"fmt"
	"sync"
)

// scratch holds all mutable replay state for one Simulate call. Pooling it
// keeps the hot path of design-space sweeps allocation-lean: a worker that
// replays thousands of graphs reuses the same slices across calls.
type scratch struct {
	// ref counts outstanding dependencies per task ("ref" in Algorithm 1).
	ref []int32
	// ready is the earliest start permitted by dependencies ("start" in
	// Algorithm 1).
	ready []float64
	// free is the timeline T, flattened: free[2*device+stream].
	free []float64
	// queue is the FIFO task queue Q.
	queue []int32
	// classSec accumulates busy seconds per interned class.
	classSec []float64
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// reset sizes the scratch for a graph with n tasks, devices devices, and
// classes distinct classes, zeroing what the replay reads.
func (sc *scratch) reset(n, devices, classes int) {
	if cap(sc.ref) < n {
		sc.ref = make([]int32, n)
		sc.ready = make([]float64, n)
		sc.queue = make([]int32, 0, n)
	}
	sc.ref = sc.ref[:n]
	sc.ready = sc.ready[:n]
	for i := range sc.ready {
		sc.ready[i] = 0
	}
	if cap(sc.free) < 2*devices {
		sc.free = make([]float64, 2*devices)
	}
	sc.free = sc.free[:2*devices]
	for i := range sc.free {
		sc.free[i] = 0
	}
	if cap(sc.classSec) < classes {
		sc.classSec = make([]float64, classes)
	}
	sc.classSec = sc.classSec[:classes]
	for i := range sc.classSec {
		sc.classSec[i] = 0
	}
	sc.queue = sc.queue[:0]
}

// replay runs Algorithm 1 over the immutable graph using pooled scratch
// state. It never writes to g (or tbl), so concurrent replays of one graph
// are safe. tbl supplies the per-plan durations of a structural graph; for
// hand-built graphs it may be nil, falling back to the tasks' eager values.
func (g *Graph) replay(tbl *DurationTable, capture bool) (Result, []Span, error) {
	n := len(g.Tasks)
	if n == 0 {
		return Result{}, nil, fmt.Errorf("taskgraph: graph has no tasks")
	}
	if g.descs != nil && tbl == nil {
		return Result{}, nil, fmt.Errorf("taskgraph: structural graph has no durations; Bind a DurationTable and use Replay")
	}
	var durs, flops []float64
	if tbl != nil {
		if len(tbl.dur) != n {
			return Result{}, nil, fmt.Errorf("taskgraph: duration table binds %d tasks, graph has %d", len(tbl.dur), n)
		}
		durs, flops = tbl.dur, tbl.flops
	}
	sc := scratchPool.Get().(*scratch)
	sc.reset(n, g.Devices, len(g.classes))

	res := Result{
		ComputeBusy: make([]float64, g.Devices),
		CommBusy:    make([]float64, g.Devices),
	}
	var spans []Span
	if capture {
		spans = make([]Span, 0, n)
	}

	copy(sc.ref, g.indeg)
	queue := append(sc.queue, g.roots...)

	executed := 0
	for head := 0; head < len(queue); head++ {
		id := queue[head] // fetch in FIFO order
		u := &g.Tasks[id]
		dur, fl := u.Duration, u.FLOPs
		if durs != nil {
			dur, fl = durs[id], flops[id]
		}
		start := sc.ready[id]
		slot := 2*u.Device + int(u.Stream)
		if f := sc.free[slot]; f > start {
			start = f
		}
		finish := start + dur
		sc.free[slot] = finish // proceed the timeline
		switch u.Stream {
		case ComputeStream:
			res.ComputeBusy[u.Device] += dur
		case CommStream:
			res.CommBusy[u.Device] += dur
		}
		sc.classSec[g.classOf[id]] += dur
		res.FLOPs += fl
		executed++
		if capture {
			label := ""
			if tbl != nil {
				label = tbl.taskLabel(g, int(id))
			} else {
				label = g.TaskLabel(int(id))
			}
			spans = append(spans, Span{Device: u.Device, Stream: u.Stream, Start: start, End: finish, Label: label})
		}
		for _, cid := range g.Children(int(id)) {
			if finish > sc.ready[cid] {
				sc.ready[cid] = finish // update the child task
			}
			sc.ref[cid]--
			if sc.ref[cid] == 0 {
				queue = append(queue, cid) // update the task queue
			}
		}
	}
	res.Executed = executed
	for _, f := range sc.free {
		if f > res.IterTime {
			res.IterTime = f
		}
	}
	res.ClassSeconds = make(map[string]float64, len(g.classes))
	for i, s := range sc.classSec {
		res.ClassSeconds[g.classes[i]] = s
	}

	sc.queue = queue[:0]
	scratchPool.Put(sc)

	if executed != n {
		return res, spans, fmt.Errorf("taskgraph: deadlock, executed %d of %d tasks", executed, n)
	}
	return res, spans, nil
}
