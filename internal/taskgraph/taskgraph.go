// Package taskgraph lowers an operator-granularity execution graph into the
// task-granularity execution graph of Section III-D and replays it with the
// event-driven simulation of Algorithm 1 to estimate single-iteration
// training time.
//
// Each computation operator is replaced by the sequence of profiled kernels
// from the operator-to-task lookup table; each communication operator
// becomes a task priced by the communication model. Every logical device
// (pipeline stage) owns two resources: a compute stream executing kernels
// in order, and a communication stream, so gradient-bucket All-Reduces can
// overlap backward computation (Fig. 5a) while tensor-parallel All-Reduces
// remain serialized through their dependency edges.
//
// A lowered Graph is immutable: all per-replay state (dependency reference
// counts, earliest-start times, resource timelines) lives in a pooled
// scratch structure, so one graph can be replayed repeatedly and from many
// goroutines concurrently — the property design-space sweeps rely on.
package taskgraph

import (
	"fmt"

	"vtrain/internal/comm"
	"vtrain/internal/opgraph"
	"vtrain/internal/profiler"
)

// Stream selects which per-device resource a task occupies.
type Stream int

const (
	// ComputeStream executes kernels.
	ComputeStream Stream = iota
	// CommStream executes collective and point-to-point transfers.
	CommStream
)

// Fidelity selects the lowering granularity.
type Fidelity int

const (
	// TaskLevel expands every operator into its individual kernels —
	// the paper's task-granularity graph, used for validation and
	// detailed single-configuration reports.
	TaskLevel Fidelity = iota
	// OperatorLevel keeps one task per operator with the summed kernel
	// durations — bit-identical iteration times for chained kernels at a
	// fraction of the cost, used inside design-space sweeps.
	OperatorLevel
)

// Task is one vertex of the task-granularity execution graph. Tasks are
// plain values stored in the graph's arena; they carry no mutable replay
// state.
type Task struct {
	// ID indexes Graph.Tasks.
	ID int
	// Device is the logical device (pipeline stage).
	Device int
	// Stream is the device resource the task occupies.
	Stream Stream
	// Duration is the execution time in seconds.
	Duration float64
	// FLOPs is the arithmetic work (zero for communication).
	FLOPs float64
	// CommBytes is the transfer size (zero for computation).
	CommBytes float64
	// Source is the originating operator-graph node ID.
	Source int
	// Class is the accounting bucket: the operator kind for computation
	// ("FwdMHA", "WeightUpdate", ...) or the communication kind
	// ("AllReduceTP", "AllReduceDP", "P2P").
	Class string
	// Label is an optional eager label for hand-built graphs. Lower
	// leaves it empty: lowered tasks resolve their labels lazily through
	// the source operator graph (see Graph.TaskLabel), so the simulation
	// hot path never formats a string.
	Label string
	// Kernel is the kernel name for task-granularity lowering (empty at
	// operator granularity). Kept separate from the label so the hot path
	// never concatenates strings; TaskLabel joins them for traces.
	Kernel string
}

// Graph is the task-granularity execution graph: a value-typed task arena
// plus CSR-style flat adjacency. Once built it is never mutated, so it is
// safe to share across goroutines and replay any number of times.
type Graph struct {
	// Tasks is the value-typed task arena in ID order. Read-only after
	// Build; replay never mutates it.
	Tasks []Task
	// Devices is the number of logical devices (pipeline stages), each
	// owning one compute and one communication stream.
	Devices int

	// CSR adjacency: the children of task i are
	// children[childStart[i]:childStart[i+1]], in edge-insertion order.
	childStart []int32
	children   []int32
	// indeg is the dependency count of each task (the initial "ref" of
	// Algorithm 1); copied into replay scratch, never mutated.
	indeg []int32
	// roots are the zero-dependency tasks in ID order, seeding the queue.
	roots []int32
	// classes interns the distinct Class strings; classOf maps each task
	// to its class index so replay accumulates into a flat slice instead
	// of a map.
	classes []string
	classOf []int32
	// labelOf lazily resolves a task's base label from its Source node in
	// the originating operator graph; nil for hand-built graphs, which
	// fall back to Task.Label. Only trace capture calls it.
	labelOf func(source int) string
}

// Children returns the dependent task IDs of task id.
func (g *Graph) Children(id int) []int32 {
	return g.children[g.childStart[id]:g.childStart[id+1]]
}

// TaskLabel composes the human-readable trace tag of task id: the source
// operator's (lazily rendered) label, qualified by the kernel name at task
// granularity. Labels are formatted only when this is called — plain
// Simulate replays never pay for them.
func (g *Graph) TaskLabel(id int) string {
	t := &g.Tasks[id]
	base := t.Label
	if base == "" && g.labelOf != nil {
		base = g.labelOf(t.Source)
	}
	if t.Kernel == "" {
		return base
	}
	return base + "/" + t.Kernel
}

// Builder accumulates tasks and dependency edges and finalizes them into an
// immutable Graph. Lower uses it internally; tests use it to hand-build
// graphs.
type Builder struct {
	g       Graph
	edges   [][2]int32
	classID map[string]int32
}

// NewBuilder starts a graph over the given number of logical devices.
func NewBuilder(devices int) *Builder {
	return &Builder{
		g:       Graph{Devices: devices},
		classID: make(map[string]int32),
	}
}

// Reserve pre-allocates capacity for the given task and edge counts,
// avoiding append-doubling waste when the caller knows the graph size.
func (b *Builder) Reserve(tasks, edges int) {
	b.g.Tasks = make([]Task, 0, tasks)
	b.g.classOf = make([]int32, 0, tasks)
	b.edges = make([][2]int32, 0, edges)
}

// AddTask appends a task to the arena, assigning and returning its ID.
func (b *Builder) AddTask(t Task) int {
	t.ID = len(b.g.Tasks)
	cid, ok := b.classID[t.Class]
	if !ok {
		cid = int32(len(b.g.classes))
		b.g.classes = append(b.g.classes, t.Class)
		b.classID[t.Class] = cid
	}
	b.g.Tasks = append(b.g.Tasks, t)
	b.g.classOf = append(b.g.classOf, cid)
	return t.ID
}

// AddEdge records that task to depends on task from.
func (b *Builder) AddEdge(from, to int) {
	b.edges = append(b.edges, [2]int32{int32(from), int32(to)})
}

// SetLabeler installs a lazy label resolver mapping a task's Source ID to
// its base label; Lower points it at the operator graph. Tasks with a
// non-empty Label keep their eager label.
func (b *Builder) SetLabeler(f func(source int) string) {
	b.g.labelOf = f
}

// Build finalizes the accumulated tasks and edges into CSR form. The
// builder must not be reused afterwards.
func (b *Builder) Build() *Graph {
	g := &b.g
	n := len(g.Tasks)
	g.childStart = make([]int32, n+1)
	g.indeg = make([]int32, n)
	for _, e := range b.edges {
		g.childStart[e[0]+1]++
		g.indeg[e[1]]++
	}
	for i := 0; i < n; i++ {
		g.childStart[i+1] += g.childStart[i]
	}
	g.children = make([]int32, len(b.edges))
	cursor := make([]int32, n)
	copy(cursor, g.childStart[:n])
	for _, e := range b.edges {
		g.children[cursor[e[0]]] = e[1]
		cursor[e[0]]++
	}
	for i := 0; i < n; i++ {
		if g.indeg[i] == 0 {
			g.roots = append(g.roots, int32(i))
		}
	}
	return g
}

// CommTimer prices communication operators during lowering. *comm.Model
// implements it; the testbed wraps it with contention effects.
type CommTimer interface {
	AllReduce(bytes float64, n int, intraNode bool) float64
	SendRecv(bytes float64, sameNode bool) float64
}

var _ CommTimer = (*comm.Model)(nil)

// Lower translates the operator graph into a task graph using the
// operator-to-task lookup table maintained by prof and the communication
// model cm.
func Lower(g *opgraph.Graph, prof *profiler.Profiler, cm CommTimer, fid Fidelity) *Graph {
	b := NewBuilder(g.Stages)
	// Lowered tasks resolve labels lazily through the operator graph: no
	// label string exists until a trace is rendered.
	b.SetLabeler(g.Label)
	nNodes := g.NumNodes()
	// Pre-count tasks and edges so the arena and edge list are allocated
	// exactly once; Profile results are cached by the profiler, so the
	// extra pass costs lookups, not profiling work.
	nTasks, nEdges := 0, 0
	for id := 0; id < nNodes; id++ {
		n := g.Node(id)
		k := 1
		if n.Kind == opgraph.Compute && fid == TaskLevel {
			k = len(prof.Profile(g.OperatorOf(n)))
		}
		nTasks += k
		nEdges += k - 1 + len(g.Deps(id))
	}
	b.Reserve(nTasks, nEdges)
	// first/last task of each operator-graph node, for edge translation.
	firstTask := make([]int, nNodes)
	lastTask := make([]int, nNodes)

	for nid := 0; nid < nNodes; nid++ {
		n := g.Node(nid)
		switch n.Kind {
		case opgraph.Compute:
			tasks := prof.Profile(g.OperatorOf(n))
			class := n.Op.String()
			if fid == OperatorLevel || len(tasks) == 1 {
				var dur, flops float64
				for _, k := range tasks {
					dur += k.Duration
					flops += k.Kernel.FLOPs
				}
				id := b.AddTask(Task{Device: int(n.Stage), Stream: ComputeStream, Duration: dur, FLOPs: flops, Source: nid, Class: class})
				firstTask[nid], lastTask[nid] = id, id
			} else {
				prev := -1
				for i, k := range tasks {
					id := b.AddTask(Task{
						Device: int(n.Stage), Stream: ComputeStream,
						Duration: k.Duration, FLOPs: k.Kernel.FLOPs,
						Source: nid, Class: class,
						Kernel: k.Kernel.Name,
					})
					if i == 0 {
						firstTask[nid] = id
					} else {
						b.AddEdge(prev, id)
					}
					prev = id
				}
				lastTask[nid] = prev
			}
		case opgraph.AllReduceTP, opgraph.AllReduceDP:
			dur := cm.AllReduce(n.Bytes, int(n.Group), n.IntraNode)
			id := b.AddTask(Task{Device: int(n.Stage), Stream: CommStream, Duration: dur, CommBytes: n.Bytes, Source: nid, Class: n.Kind.String()})
			firstTask[nid], lastTask[nid] = id, id
		case opgraph.P2P:
			dur := cm.SendRecv(n.Bytes, n.IntraNode)
			id := b.AddTask(Task{Device: int(n.Stage), Stream: CommStream, Duration: dur, CommBytes: n.Bytes, Source: nid, Class: n.Kind.String()})
			firstTask[nid], lastTask[nid] = id, id
		default:
			panic(fmt.Sprintf("taskgraph: unknown node kind %v", n.Kind))
		}
		// Operator-graph edges: node starts after all its deps finish.
		for _, d := range g.Deps(nid) {
			b.AddEdge(lastTask[d], firstTask[nid])
		}
	}
	return b.Build()
}

// Result summarizes one simulated iteration.
type Result struct {
	// IterTime is the predicted single-iteration training time.
	IterTime float64
	// ComputeBusy / CommBusy are per-device busy seconds per stream.
	ComputeBusy []float64
	CommBusy    []float64
	// FLOPs is the total executed arithmetic across all simulated
	// devices (the folded representative replica set).
	FLOPs float64
	// Executed is the number of tasks replayed.
	Executed int
	// ClassSeconds attributes busy time to accounting buckets (operator
	// kinds and communication kinds), summed across devices.
	ClassSeconds map[string]float64
}

// Simulate replays the task graph per Algorithm 1: a FIFO ready queue,
// per-device timelines (split into compute and communication streams), and
// dependency reference counts. It is deterministic, does not mutate the
// graph, and is safe to call concurrently on one Graph.
func (g *Graph) Simulate() (Result, error) {
	res, _, err := g.replay(false)
	return res, err
}
