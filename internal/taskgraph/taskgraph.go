// Package taskgraph lowers an operator-granularity execution graph into the
// task-granularity execution graph of Section III-D and replays it with the
// event-driven simulation of Algorithm 1 to estimate single-iteration
// training time.
//
// Each computation operator is replaced by the sequence of profiled kernels
// from the operator-to-task lookup table; each communication operator
// becomes a task priced by the communication model. Every logical device
// (pipeline stage) owns two resources: a compute stream executing kernels
// in order, and a communication stream, so gradient-bucket All-Reduces can
// overlap backward computation (Fig. 5a) while tensor-parallel All-Reduces
// remain serialized through their dependency edges.
package taskgraph

import (
	"fmt"

	"vtrain/internal/comm"
	"vtrain/internal/opgraph"
	"vtrain/internal/profiler"
)

// Stream selects which per-device resource a task occupies.
type Stream int

const (
	// ComputeStream executes kernels.
	ComputeStream Stream = iota
	// CommStream executes collective and point-to-point transfers.
	CommStream
)

// Fidelity selects the lowering granularity.
type Fidelity int

const (
	// TaskLevel expands every operator into its individual kernels —
	// the paper's task-granularity graph, used for validation and
	// detailed single-configuration reports.
	TaskLevel Fidelity = iota
	// OperatorLevel keeps one task per operator with the summed kernel
	// durations — bit-identical iteration times for chained kernels at a
	// fraction of the cost, used inside design-space sweeps.
	OperatorLevel
)

// Task is one vertex of the task-granularity execution graph.
type Task struct {
	// ID indexes Graph.Tasks.
	ID int
	// Device is the logical device (pipeline stage).
	Device int
	// Stream is the device resource the task occupies.
	Stream Stream
	// Duration is the execution time in seconds.
	Duration float64
	// FLOPs is the arithmetic work (zero for communication).
	FLOPs float64
	// CommBytes is the transfer size (zero for computation).
	CommBytes float64
	// Source is the originating operator-graph node ID.
	Source int
	// Class is the accounting bucket: the operator kind for computation
	// ("FwdMHA", "WeightUpdate", ...) or the communication kind
	// ("AllReduceTP", "AllReduceDP", "P2P").
	Class string
	// Label is inherited from the operator graph for traces.
	Label string

	children []int
	ref      int
	// ready is the earliest start permitted by dependencies ("start" in
	// Algorithm 1); mutated during simulation.
	ready float64
}

// Children returns the IDs of dependent tasks.
func (t *Task) Children() []int { return t.children }

// Graph is the task-granularity execution graph.
type Graph struct {
	Tasks   []*Task
	Devices int
}

// CommTimer prices communication operators during lowering. *comm.Model
// implements it; the testbed wraps it with contention effects.
type CommTimer interface {
	AllReduce(bytes float64, n int, intraNode bool) float64
	SendRecv(bytes float64, sameNode bool) float64
}

var _ CommTimer = (*comm.Model)(nil)

// Lower translates the operator graph into a task graph using the
// operator-to-task lookup table maintained by prof and the communication
// model cm.
func Lower(g *opgraph.Graph, prof *profiler.Profiler, cm CommTimer, fid Fidelity) *Graph {
	tg := &Graph{Devices: g.Stages}
	// first/last task of each operator-graph node, for edge translation.
	firstTask := make([]int, len(g.Nodes))
	lastTask := make([]int, len(g.Nodes))

	addTask := func(t *Task) *Task {
		t.ID = len(tg.Tasks)
		tg.Tasks = append(tg.Tasks, t)
		return t
	}
	link := func(from, to int) {
		tg.Tasks[from].children = append(tg.Tasks[from].children, to)
		tg.Tasks[to].ref++
	}

	for _, n := range g.Nodes {
		switch n.Kind {
		case opgraph.Compute:
			tasks := prof.Profile(n.Op)
			class := n.Op.Kind.String()
			if fid == OperatorLevel || len(tasks) == 1 {
				var dur, flops float64
				for _, k := range tasks {
					dur += k.Duration
					flops += k.Kernel.FLOPs
				}
				t := addTask(&Task{Device: n.Stage, Stream: ComputeStream, Duration: dur, FLOPs: flops, Source: n.ID, Class: class, Label: n.Label})
				firstTask[n.ID], lastTask[n.ID] = t.ID, t.ID
			} else {
				prev := -1
				for i, k := range tasks {
					t := addTask(&Task{
						Device: n.Stage, Stream: ComputeStream,
						Duration: k.Duration, FLOPs: k.Kernel.FLOPs,
						Source: n.ID, Class: class,
						Label: fmt.Sprintf("%s/%s", n.Label, k.Kernel.Name),
					})
					if i == 0 {
						firstTask[n.ID] = t.ID
					} else {
						link(prev, t.ID)
					}
					prev = t.ID
				}
				lastTask[n.ID] = prev
			}
		case opgraph.AllReduceTP, opgraph.AllReduceDP:
			dur := cm.AllReduce(n.Bytes, n.Group, n.IntraNode)
			t := addTask(&Task{Device: n.Stage, Stream: CommStream, Duration: dur, CommBytes: n.Bytes, Source: n.ID, Class: n.Kind.String(), Label: n.Label})
			firstTask[n.ID], lastTask[n.ID] = t.ID, t.ID
		case opgraph.P2P:
			dur := cm.SendRecv(n.Bytes, n.IntraNode)
			t := addTask(&Task{Device: n.Stage, Stream: CommStream, Duration: dur, CommBytes: n.Bytes, Source: n.ID, Class: n.Kind.String(), Label: n.Label})
			firstTask[n.ID], lastTask[n.ID] = t.ID, t.ID
		default:
			panic(fmt.Sprintf("taskgraph: unknown node kind %v", n.Kind))
		}
		// Operator-graph edges: node starts after all its deps finish.
		for _, d := range n.Deps {
			link(lastTask[d], firstTask[n.ID])
		}
	}
	return tg
}

// Result summarizes one simulated iteration.
type Result struct {
	// IterTime is the predicted single-iteration training time.
	IterTime float64
	// ComputeBusy / CommBusy are per-device busy seconds per stream.
	ComputeBusy []float64
	CommBusy    []float64
	// FLOPs is the total executed arithmetic across all simulated
	// devices (the folded representative replica set).
	FLOPs float64
	// Executed is the number of tasks replayed.
	Executed int
	// ClassSeconds attributes busy time to accounting buckets (operator
	// kinds and communication kinds), summed across devices.
	ClassSeconds map[string]float64
}

// Simulate replays the task graph per Algorithm 1: a FIFO ready queue,
// per-device timelines (split into compute and communication streams), and
// dependency reference counts. It is deterministic.
func (g *Graph) Simulate() (Result, error) {
	res, _, err := g.simulate(false)
	return res, err
}

func (g *Graph) simulate(capture bool) (Result, []Span, error) {
	res := Result{
		ComputeBusy:  make([]float64, g.Devices),
		CommBusy:     make([]float64, g.Devices),
		ClassSeconds: make(map[string]float64),
	}
	var spans []Span
	if capture {
		spans = make([]Span, 0, len(g.Tasks))
	}
	// Timeline T: one entry per (device, stream) resource.
	free := make([][2]float64, g.Devices)

	// Task queue Q seeded with zero-reference tasks in ID order.
	queue := make([]int, 0, len(g.Tasks))
	for _, t := range g.Tasks {
		if t.ref == 0 {
			queue = append(queue, t.ID)
		}
	}

	executed := 0
	for head := 0; head < len(queue); head++ {
		u := g.Tasks[queue[head]] // fetch in FIFO order
		start := u.ready
		if f := free[u.Device][u.Stream]; f > start {
			start = f
		}
		finish := start + u.Duration
		free[u.Device][u.Stream] = finish // proceed the timeline
		switch u.Stream {
		case ComputeStream:
			res.ComputeBusy[u.Device] += u.Duration
		case CommStream:
			res.CommBusy[u.Device] += u.Duration
		}
		res.ClassSeconds[u.Class] += u.Duration
		res.FLOPs += u.FLOPs
		executed++
		if capture {
			spans = append(spans, Span{Device: u.Device, Stream: u.Stream, Start: start, End: finish, Label: u.Label})
		}
		for _, cid := range u.children {
			c := g.Tasks[cid]
			if finish > c.ready {
				c.ready = finish // update the child task
			}
			c.ref--
			if c.ref == 0 {
				queue = append(queue, cid) // update the task queue
			}
		}
	}
	if executed != len(g.Tasks) {
		return res, spans, fmt.Errorf("taskgraph: deadlock, executed %d of %d tasks", executed, len(g.Tasks))
	}
	res.Executed = executed
	for _, f := range free {
		for _, v := range f {
			if v > res.IterTime {
				res.IterTime = v
			}
		}
	}
	// Restore reference counts so the graph can be simulated again.
	for _, t := range g.Tasks {
		t.ready = 0
	}
	for _, t := range g.Tasks {
		for _, cid := range t.children {
			g.Tasks[cid].ref++
		}
	}
	return res, spans, nil
}
