// Package taskgraph lowers an operator-granularity execution graph into the
// task-granularity execution graph of Section III-D and replays it with the
// event-driven simulation of Algorithm 1 to estimate single-iteration
// training time.
//
// Each computation operator is replaced by the sequence of profiled kernels
// from the operator-to-task lookup table; each communication operator
// becomes a task priced by the communication model. Every logical device
// (pipeline stage) owns two resources: a compute stream executing kernels
// in order, and a communication stream, so gradient-bucket All-Reduces can
// overlap backward computation (Fig. 5a) while tensor-parallel All-Reduces
// remain serialized through their dependency edges.
//
// # Structure vs. timing
//
// Lowering is split into two phases so design-space sweeps can share work
// across plans:
//
//   - Lower builds the structural graph: tasks, dependency edges, and a
//     compact duration descriptor per task — but no numbers. The structure
//     depends only on the plan's shape (schedule, pipeline depth,
//     micro-batch count, interleaving, layer split, fidelity), so one
//     structural graph serves every (t, d, micro-batch-size) variant of
//     that shape.
//   - Bind resolves each descriptor against the profiler and the
//     communication model for one concrete plan, producing a DurationTable:
//     a flat per-task duration (and FLOPs) array that Replay combines with
//     the shared structure.
//
// A lowered Graph is immutable: all per-replay state (dependency reference
// counts, earliest-start times, resource timelines) lives in a pooled
// scratch structure, and all per-plan numbers live in the DurationTable,
// so one graph can be bound and replayed repeatedly and from many
// goroutines concurrently — the property design-space sweeps rely on.
package taskgraph

import (
	"fmt"
	"sync"

	"vtrain/internal/comm"
	"vtrain/internal/model"
	"vtrain/internal/opgraph"
	"vtrain/internal/profiler"
)

// Stream selects which per-device resource a task occupies.
type Stream int

const (
	// ComputeStream executes kernels.
	ComputeStream Stream = iota
	// CommStream executes collective and point-to-point transfers.
	CommStream
)

// Fidelity selects the lowering granularity.
type Fidelity int

const (
	// TaskLevel expands every operator into its individual kernels —
	// the paper's task-granularity graph, used for validation and
	// detailed single-configuration reports.
	TaskLevel Fidelity = iota
	// OperatorLevel keeps one task per operator with the summed kernel
	// durations — bit-identical iteration times for chained kernels at a
	// fraction of the cost, used inside design-space sweeps.
	OperatorLevel
)

// Task is one vertex of the task-granularity execution graph. Tasks are
// plain values stored in the graph's arena; they carry no mutable replay
// state.
//
// Lowered (structural) graphs leave Duration, FLOPs, CommBytes, and Kernel
// at their zero values: those quantities depend on the concrete plan and
// are bound per plan into a DurationTable. The fields remain for hand-built
// graphs, whose eager values Replay falls back to when no table is given.
type Task struct {
	// ID indexes Graph.Tasks.
	ID int
	// Device is the logical device (pipeline stage).
	Device int
	// Stream is the device resource the task occupies.
	Stream Stream
	// Duration is the execution time in seconds (hand-built graphs only;
	// structural graphs bind durations per plan — see Graph.Bind).
	Duration float64
	// FLOPs is the arithmetic work (zero for communication; hand-built
	// graphs only, like Duration).
	FLOPs float64
	// CommBytes is the transfer size (zero for computation; hand-built
	// graphs only).
	CommBytes float64
	// Source is the originating operator-graph node ID.
	Source int
	// Class is the accounting bucket: the operator kind for computation
	// ("FwdMHA", "WeightUpdate", ...) or the communication kind
	// ("AllReduceTP", "AllReduceDP", "P2P").
	Class string
	// Label is an optional eager label for hand-built graphs. Lower
	// leaves it empty: lowered tasks resolve their labels lazily through
	// the source operator graph (see Graph.TaskLabel), so the simulation
	// hot path never formats a string.
	Label string
	// Kernel is an optional eager kernel name for hand-built graphs. Lower
	// leaves it empty: a structural task's kernel name depends on the bound
	// plan (kernel symbols embed tensor shapes), so traces resolve it
	// through the DurationTable.
	Kernel string
}

// Graph is the task-granularity execution graph: flat per-task slabs plus
// CSR-style adjacency. Once built it is never mutated, so it is safe to
// share across goroutines and replay any number of times.
//
// Structural graphs (produced by Lower) are slab-only: Tasks stays nil,
// and every per-task attribute lives in a flat slice (slotOf, classOf,
// durIdx, sources). A structural task would carry nothing but indices —
// its durations bind per plan, its label resolves through the source
// operator — so materializing a 100-byte Task value per task would only
// burn allocation, zeroing, and GC scan time in the sweep hot path, and
// would make disk-loaded graphs pay a per-task decode loop. Hand-built
// graphs (tests, ad-hoc experiments) keep the eager arena.
type Graph struct {
	// Tasks is the value-typed task arena in ID order for hand-built
	// graphs; nil for structural graphs, whose per-task attributes live
	// in the flat slabs below (use NumTasks and TaskAt). Read-only after
	// Build; replay never mutates it.
	Tasks []Task
	// Devices is the number of logical devices (pipeline stages), each
	// owning one compute and one communication stream.
	Devices int
	// Model is the model the graph was lowered from (zero for hand-built
	// graphs). The model is part of the structural shape — the layer split
	// depends on it — so Bind prices operators against it directly.
	Model model.Config

	// CSR adjacency: the children of task i are
	// children[childStart[i]:childStart[i+1]], in edge-insertion order.
	childStart []int32
	children   []int32
	// indeg is the dependency count of each task (the initial "ref" of
	// Algorithm 1); copied into replay scratch, never mutated.
	indeg []int32
	// roots are the zero-dependency tasks in ID order, seeding the queue.
	roots []int32
	// classes interns the distinct Class strings; classOf maps each task
	// to its class index so replay accumulates into a flat slice instead
	// of a map.
	classes []string
	classOf []int32
	// slotOf maps each task to its resource slot 2*Device + Stream. The
	// replay loop reads it instead of the Task values: tasks are large
	// (they carry strings and trace fields), so touching one per pop would
	// cost a cache miss per task. It is filled for every graph and doubles
	// as the per-task length (see NumTasks).
	slotOf []int32
	// sources maps each task to its originating operator-graph node. A nil
	// slice means the identity mapping — at operator granularity the task
	// graph is isomorphic to the operator graph, so storing 4 bytes per
	// task (in memory and in every disk artifact) would encode nothing.
	sources []int32
	// descs is the compact duration-descriptor table of a structural
	// graph (nil for hand-built graphs): every distinct way a task can be
	// priced, deduplicated. durIdx maps each task to its descriptor. Bind
	// resolves descriptors into concrete per-task durations for one plan.
	descs  []durDesc
	durIdx []int32
	// descCnt counts the tasks sharing each descriptor (parallel to descs,
	// derived from durIdx at Build/decode time, never persisted). Bindings
	// use it to weight per-descriptor values by task population without an
	// O(tasks) pass per bind.
	descCnt []int32
	// labels holds the per-source-node label coordinates captured from the
	// operator graph at lowering time, in columnar form; TaskLabel composes
	// them on demand. Unlike the labelOf closure they are plain data, so a
	// lowered graph (labels included) can round-trip through the on-disk
	// artifact store — and because the columns match the on-disk layout,
	// a loaded graph aliases them out of the read buffer with zero copies.
	// Disk-loaded graphs start label-less (labels are over half a graph's
	// bytes and sweeps never render one): labels stays nil, nLabels records
	// how many records the label artifact holds, and labelSrc — installed
	// via SetLabelSource — fetches them once, on the first TaskLabel call.
	labels   *opgraph.LabelTable
	nLabels  int
	labelSrc func() *opgraph.LabelTable
	// labelOnce makes the lazy fetch single-flight and publishes labels
	// safely to concurrent TaskLabel callers.
	labelOnce sync.Once
	// labelOf lazily resolves a task's base label from its Source node;
	// hand-built graphs may install one via SetLabeler. Lowered graphs use
	// labels instead. Only trace capture calls it.
	labelOf func(source int) string
}

// countDescTasks tallies how many tasks share each duration descriptor —
// the derived slab behind Graph.descCnt, rebuilt rather than persisted.
func countDescTasks(descs []durDesc, durIdx []int32) []int32 {
	if descs == nil {
		return nil
	}
	cnt := make([]int32, len(descs))
	for _, di := range durIdx {
		cnt[di]++
	}
	return cnt
}

// Structural reports whether the graph was lowered without durations and
// therefore needs a Bind-produced DurationTable to replay.
func (g *Graph) Structural() bool { return g.descs != nil }

// NumTasks returns the number of tasks in the graph. Unlike len(Tasks) it
// is meaningful for structural graphs, which keep no eager task arena.
func (g *Graph) NumTasks() int { return len(g.slotOf) }

// source returns the operator-graph node task id lowered from.
func (g *Graph) source(id int) int {
	if g.sources == nil {
		return id
	}
	return int(g.sources[id])
}

// TaskAt materializes the task value for id. For hand-built graphs this is
// Tasks[id]; for structural graphs the value is assembled from the slabs
// (durations, FLOPs, and kernel names stay zero — they are per-plan
// quantities a structural task does not carry).
func (g *Graph) TaskAt(id int) Task {
	if g.Tasks != nil {
		return g.Tasks[id]
	}
	slot := g.slotOf[id]
	return Task{
		ID:     id,
		Device: int(slot / 2),
		Stream: Stream(slot % 2),
		Source: g.source(id),
		Class:  g.classes[g.classOf[id]],
	}
}

// Children returns the dependent task IDs of task id.
func (g *Graph) Children(id int) []int32 {
	return g.children[g.childStart[id]:g.childStart[id+1]]
}

// SetLabelSource installs a lazy fetcher for a disk-loaded graph's label
// table. The artifact tier stores labels separately from structure, so a
// loaded graph defers their cost until a trace actually composes a label;
// the source runs at most once, and its result is shared by all callers.
// Call before the graph is published to other goroutines.
func (g *Graph) SetLabelSource(f func() *opgraph.LabelTable) { g.labelSrc = f }

// LabelCount returns the number of label records the graph's label table
// holds (or, for a disk-loaded graph whose labels are not yet resident,
// will hold). Source indices are always below this bound.
func (g *Graph) LabelCount() int {
	if g.labels != nil {
		return g.labels.Len()
	}
	return g.nLabels
}

// Labels returns the graph's label table, fetching it through the lazy
// source on first use. Nil when the graph carries no labels and no source.
func (g *Graph) Labels() *opgraph.LabelTable {
	if g.labelSrc != nil {
		g.labelOnce.Do(func() { g.labels = g.labelSrc() })
	}
	return g.labels
}

// TaskLabel composes the human-readable trace tag of task id: the source
// operator's (lazily rendered) label, qualified by the kernel name at task
// granularity. Labels are formatted only when this is called — plain
// Simulate replays never pay for them, and a disk-loaded graph does not
// even load its label bytes until the first call.
func (g *Graph) TaskLabel(id int) string {
	if g.Tasks == nil {
		// Structural graphs carry no eager labels or kernel names; the
		// base label composes from the source node's coordinates.
		src := g.source(id)
		if labels := g.Labels(); labels != nil {
			return labels.At(src).Compose()
		}
		if g.labelOf != nil {
			return g.labelOf(src)
		}
		return ""
	}
	t := &g.Tasks[id]
	base := t.Label
	if base == "" {
		if labels := g.Labels(); labels != nil {
			base = labels.At(t.Source).Compose()
		} else if g.labelOf != nil {
			base = g.labelOf(t.Source)
		}
	}
	if t.Kernel == "" {
		return base
	}
	return base + "/" + t.Kernel
}

// Builder accumulates tasks and dependency edges and finalizes them into an
// immutable Graph. Lower uses it internally; tests use it to hand-build
// graphs.
type Builder struct {
	g       Graph
	edges   [][2]int32
	classID map[string]int32
	descID  map[durDesc]int32
	reserve int
}

// NewBuilder starts a graph over the given number of logical devices.
func NewBuilder(devices int) *Builder {
	return &Builder{
		g:       Graph{Devices: devices},
		classID: make(map[string]int32),
	}
}

// Reserve pre-allocates capacity for the given task and edge counts,
// avoiding append-doubling waste when the caller knows the graph size.
func (b *Builder) Reserve(tasks, edges int) {
	b.reserve = tasks
	b.g.classOf = make([]int32, 0, tasks)
	b.edges = make([][2]int32, 0, edges)
}

// intern returns the class index for name, adding it on first use.
func (b *Builder) intern(name string) int32 {
	cid, ok := b.classID[name]
	if !ok {
		cid = int32(len(b.g.classes))
		b.g.classes = append(b.g.classes, name)
		b.classID[name] = cid
	}
	return cid
}

// addTaskDesc appends a task together with its interned duration
// descriptor — the structural-lowering path. Structural tasks live only in
// the flat slabs (no Task arena; see Graph). A builder must use either
// AddTask (eager durations) or addTaskDesc (descriptors) exclusively.
func (b *Builder) addTaskDesc(t Task, d durDesc) int {
	id := len(b.g.classOf)
	if b.descID == nil {
		b.descID = make(map[durDesc]int32)
		n := cap(b.g.classOf)
		b.g.durIdx = make([]int32, 0, n)
		b.g.slotOf = make([]int32, 0, n)
		b.g.sources = make([]int32, 0, n)
	}
	b.g.classOf = append(b.g.classOf, b.intern(t.Class))
	b.g.slotOf = append(b.g.slotOf, int32(2*t.Device)+int32(t.Stream))
	b.g.sources = append(b.g.sources, int32(t.Source))
	di, ok := b.descID[d]
	if !ok {
		di = int32(len(b.g.descs))
		b.g.descs = append(b.g.descs, d)
		b.descID[d] = di
	}
	b.g.durIdx = append(b.g.durIdx, di)
	return id
}

// AddTask appends a task to the arena, assigning and returning its ID.
func (b *Builder) AddTask(t Task) int {
	if b.g.Tasks == nil && b.reserve > 0 {
		b.g.Tasks = make([]Task, 0, b.reserve)
	}
	t.ID = len(b.g.Tasks)
	b.g.Tasks = append(b.g.Tasks, t)
	b.g.classOf = append(b.g.classOf, b.intern(t.Class))
	return t.ID
}

// AddEdge records that task to depends on task from.
func (b *Builder) AddEdge(from, to int) {
	b.edges = append(b.edges, [2]int32{int32(from), int32(to)})
}

// SetLabeler installs a lazy label resolver mapping a task's Source ID to
// its base label. Tasks with a non-empty Label keep their eager label.
func (b *Builder) SetLabeler(f func(source int) string) {
	b.g.labelOf = f
}

// SetLabels installs the per-source label coordinates lowered graphs
// resolve TaskLabel through; Lower copies them out of the operator graph.
// Unlike SetLabeler's closure, the label table is serializable, which is
// what lets a lowered graph round-trip through the artifact store.
func (b *Builder) SetLabels(t *opgraph.LabelTable) {
	b.g.labels = t
}

// Build finalizes the accumulated tasks and edges into CSR form. The
// builder must not be reused afterwards.
func (b *Builder) Build() *Graph {
	g := &b.g
	n := len(g.classOf)
	if g.descs != nil {
		if len(g.durIdx) != n || len(g.Tasks) != 0 {
			panic("taskgraph: builder mixed eager tasks with duration descriptors")
		}
	} else if len(g.Tasks) != n {
		panic("taskgraph: builder mixed eager tasks with duration descriptors")
	}
	g.childStart = make([]int32, n+1)
	g.indeg = make([]int32, n)
	for _, e := range b.edges {
		g.childStart[e[0]+1]++
		g.indeg[e[1]]++
	}
	for i := 0; i < n; i++ {
		g.childStart[i+1] += g.childStart[i]
	}
	g.children = make([]int32, len(b.edges))
	cursor := make([]int32, n)
	copy(cursor, g.childStart[:n])
	for _, e := range b.edges {
		g.children[cursor[e[0]]] = e[1]
		cursor[e[0]]++
	}
	if g.Tasks != nil {
		// Hand-built path: derive the slabs from the eager arena.
		g.slotOf = make([]int32, n)
		for i := 0; i < n; i++ {
			g.slotOf[i] = int32(2*g.Tasks[i].Device) + int32(g.Tasks[i].Stream)
		}
	} else {
		// Structural path: normalize an identity source mapping to nil so
		// operator-level graphs — isomorphic to their operator graph —
		// don't carry (or persist) a slab that encodes nothing.
		ident := true
		for i, s := range g.sources {
			if int(s) != i {
				ident = false
				break
			}
		}
		if ident {
			g.sources = nil
		}
		g.descCnt = countDescTasks(g.descs, g.durIdx)
	}
	for i := 0; i < n; i++ {
		if g.indeg[i] == 0 {
			g.roots = append(g.roots, int32(i))
		}
	}
	return g
}

// CommTimer prices communication operators during duration binding.
// *comm.Model implements it; the testbed wraps it with contention effects.
// Bind calls it once per communication task in task-ID order, so stateful
// implementations see the same call sequence a from-scratch lowering would.
type CommTimer interface {
	AllReduce(bytes float64, n int, intraNode bool) float64
	SendRecv(bytes float64, sameNode bool) float64
}

var _ CommTimer = (*comm.Model)(nil)

// StatelessCommTimer is a CommTimer whose prices are pure functions of the
// call arguments — no per-call state, no call-order dependence. Bind prices
// communication for such timers at descriptor granularity (once per distinct
// descriptor, like compute) instead of once per task. Implementations opt in
// with the StatelessComm marker method; *comm.Model qualifies, the testbed's
// congestion-sampling wrapper deliberately does not.
type StatelessCommTimer interface {
	CommTimer
	StatelessComm()
}

var (
	_ StatelessCommTimer = (*comm.Model)(nil)
	// comm.Calibrated is a pure function of its fixed correction factors;
	// without the marker, binding silently priced its collectives once per
	// task instead of once per descriptor (the validate.RunCalibrated path).
	_ StatelessCommTimer = comm.Calibrated{}
)

// Lower translates the operator graph into a structural task graph: tasks,
// dependency edges, and one duration descriptor per task — no durations.
// The result depends only on the plan's structural shape (schedule,
// pipeline depth, micro-batch count, interleaving, layer split, fidelity),
// so it can be cached and shared across every plan of that shape; Bind
// resolves the descriptors into per-plan durations.
//
// prof is consulted only for the kernel count of each operator (fixed per
// operator kind), never for durations.
func Lower(g *opgraph.Graph, prof *profiler.Profiler, fid Fidelity) *Graph {
	if fid == OperatorLevel {
		// At operator granularity the task graph is isomorphic to the
		// operator graph (one task per node), so a direct translation
		// skips the builder entirely — the sweep hot path. It produces
		// exactly lowerBuilder's graph (asserted by tests).
		return lowerOperatorLevel(g)
	}
	return lowerBuilder(g, prof, fid)
}

// lowerBuilder is the general builder-based lowering, used at TaskLevel
// (where one operator expands into several kernel tasks) and as the
// reference implementation the operator-level fast path is tested against.
func lowerBuilder(g *opgraph.Graph, prof *profiler.Profiler, fid Fidelity) *Graph {
	b := NewBuilder(g.Stages)
	// Lowered tasks resolve labels lazily through a copy of the operator
	// graph's label coordinates: no label string exists until a trace is
	// rendered, and the (cacheable, long-lived) task graph does not pin
	// the operator graph's storage.
	b.SetLabels(g.LabelTable())
	b.g.Model = g.Model
	nNodes := g.NumNodes()
	// Pre-count tasks and edges so the arena and edge list are allocated
	// exactly once; Profile results are cached by the profiler, so the
	// extra pass costs lookups, not profiling work.
	nTasks, nEdges := 0, 0
	for id := 0; id < nNodes; id++ {
		n := g.Node(id)
		k := 1
		if n.Kind == opgraph.Compute && fid == TaskLevel {
			k = len(prof.Profile(g.OperatorOf(n)))
		}
		nTasks += k
		nEdges += k - 1 + len(g.Deps(id))
	}
	b.Reserve(nTasks, nEdges)
	// first/last task of each operator-graph node, for edge translation.
	firstTask := make([]int, nNodes)
	lastTask := make([]int, nNodes)

	for nid := 0; nid < nNodes; nid++ {
		n := g.Node(nid)
		switch n.Kind {
		case opgraph.Compute:
			class := n.Op.String()
			kernels := 1
			if fid == TaskLevel {
				kernels = len(prof.Profile(g.OperatorOf(n)))
			}
			if kernels == 1 {
				id := b.addTaskDesc(
					Task{Device: int(n.Stage), Stream: ComputeStream, Source: nid, Class: class},
					durDesc{kind: descOperator, op: n.Op, stageParams: n.StageParams},
				)
				firstTask[nid], lastTask[nid] = id, id
			} else {
				prev := -1
				for i := 0; i < kernels; i++ {
					id := b.addTaskDesc(
						Task{Device: int(n.Stage), Stream: ComputeStream, Source: nid, Class: class},
						durDesc{kind: descKernel, op: n.Op, kernel: int32(i), stageParams: n.StageParams},
					)
					if i == 0 {
						firstTask[nid] = id
					} else {
						b.AddEdge(prev, id)
					}
					prev = id
				}
				lastTask[nid] = prev
			}
		case opgraph.AllReduceTP:
			id := b.addTaskDesc(
				Task{Device: int(n.Stage), Stream: CommStream, Source: nid, Class: n.Kind.String()},
				durDesc{kind: descAllReduceTP},
			)
			firstTask[nid], lastTask[nid] = id, id
		case opgraph.AllReduceDP:
			id := b.addTaskDesc(
				Task{Device: int(n.Stage), Stream: CommStream, Source: nid, Class: n.Kind.String()},
				durDesc{kind: descAllReduceDP, stageParams: n.StageParams, buckets: n.Buckets},
			)
			firstTask[nid], lastTask[nid] = id, id
		case opgraph.P2P:
			id := b.addTaskDesc(
				Task{Device: int(n.Stage), Stream: CommStream, Source: nid, Class: n.Kind.String()},
				durDesc{kind: descP2P, from: n.FromStage, to: n.Stage},
			)
			firstTask[nid], lastTask[nid] = id, id
		default:
			panic(fmt.Sprintf("taskgraph: unknown node kind %v", n.Kind))
		}
		// Operator-graph edges: node starts after all its deps finish.
		for _, d := range g.Deps(nid) {
			b.AddEdge(lastTask[d], firstTask[nid])
		}
	}
	return b.Build()
}

// Result summarizes one simulated iteration.
type Result struct {
	// IterTime is the predicted single-iteration training time.
	IterTime float64
	// ComputeBusy / CommBusy are per-device busy seconds per stream.
	ComputeBusy []float64
	CommBusy    []float64
	// FLOPs is the total executed arithmetic across all simulated
	// devices (the folded representative replica set).
	FLOPs float64
	// Executed is the number of tasks replayed.
	Executed int
	// ClassSeconds attributes busy time to accounting buckets (operator
	// kinds and communication kinds), summed across devices.
	ClassSeconds map[string]float64
}

// Simulate replays the task graph per Algorithm 1: a FIFO ready queue,
// per-device timelines (split into compute and communication streams), and
// dependency reference counts. It is deterministic, does not mutate the
// graph, and is safe to call concurrently on one Graph.
//
// Simulate uses the tasks' eager durations and therefore only works on
// hand-built graphs; a structural graph (produced by Lower) must be bound
// to a plan first and replayed with Replay.
func (g *Graph) Simulate() (Result, error) {
	res, _, err := g.replay(nil, nil, false)
	return res, err
}

// Replay simulates the graph using the per-plan durations bound in tbl.
// The graph and table are both read-only during replay, so one shared
// structural graph may be replayed under many tables concurrently.
func (g *Graph) Replay(tbl *DurationTable) (Result, error) {
	res, _, err := g.replay(tbl, nil, false)
	return res, err
}
