package taskgraph

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"

	"vtrain/internal/parallel"
)

func traceGraph(t *testing.T) (boundGraph, Result, []Span) {
	t.Helper()
	plan := parallel.Plan{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 8, GradientBuckets: 2}
	g := lower(t, plan, TaskLevel)
	res, spans, err := g.g.ReplayTrace(g.tbl)
	if err != nil {
		t.Fatal(err)
	}
	return g, res, spans
}

func TestSimulateTraceMatchesSimulate(t *testing.T) {
	g, res, spans := traceGraph(t)
	plain, err := g.g.Replay(g.tbl)
	if err != nil {
		t.Fatal(err)
	}
	if res.IterTime != plain.IterTime || res.Executed != plain.Executed {
		t.Fatal("trace capture changed the simulation result")
	}
	if len(spans) != res.Executed {
		t.Fatalf("spans = %d, executed = %d", len(spans), res.Executed)
	}
}

func TestSpansWellFormed(t *testing.T) {
	_, res, spans := traceGraph(t)
	for _, s := range spans {
		if s.End < s.Start {
			t.Fatalf("span %q ends before it starts", s.Label)
		}
		if s.End > res.IterTime+1e-12 {
			t.Fatalf("span %q ends after the iteration", s.Label)
		}
	}
}

func TestSpansNonOverlappingPerResource(t *testing.T) {
	// Two tasks on the same (device, stream) must never overlap — the
	// resource exclusivity at the heart of Algorithm 1.
	_, _, spans := traceGraph(t)
	byRes := map[[2]int][]Span{}
	for _, s := range spans {
		k := [2]int{s.Device, int(s.Stream)}
		byRes[k] = append(byRes[k], s)
	}
	for k, ss := range byRes {
		sort.Slice(ss, func(i, j int) bool { return ss[i].Start < ss[j].Start })
		for i := 1; i < len(ss); i++ {
			if ss[i].Start < ss[i-1].End-1e-12 {
				t.Fatalf("resource %v: %q overlaps %q", k, ss[i].Label, ss[i-1].Label)
			}
		}
	}
}

func TestClassSecondsAccounted(t *testing.T) {
	_, res, _ := traceGraph(t)
	for _, class := range []string{"FwdMHA", "BwdFFN", "WeightUpdate", "AllReduceTP", "AllReduceDP", "P2P"} {
		if res.ClassSeconds[class] <= 0 {
			t.Errorf("class %q has no attributed time", class)
		}
	}
	// Class totals must equal total busy time.
	var classTotal, busyTotal float64
	for _, v := range res.ClassSeconds {
		classTotal += v
	}
	for i := range res.ComputeBusy {
		busyTotal += res.ComputeBusy[i] + res.CommBusy[i]
	}
	if diff := classTotal - busyTotal; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("class seconds %.6g != busy seconds %.6g", classTotal, busyTotal)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	_, _, spans := traceGraph(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
			PID   int     `json:"pid"`
			TID   int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(spans) {
		t.Fatalf("events = %d, want %d", len(doc.TraceEvents), len(spans))
	}
	for _, e := range doc.TraceEvents {
		if e.Phase != "X" || e.Dur < 0 || e.TS < 0 {
			t.Fatalf("malformed event %+v", e)
		}
		if e.TID != 0 && e.TID != 1 {
			t.Fatalf("unexpected thread id %d", e.TID)
		}
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("empty trace is not valid JSON")
	}
}
