package taskgraph

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"vtrain/internal/comm"
	"vtrain/internal/gpu"
	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/opgraph"
	"vtrain/internal/parallel"
	"vtrain/internal/profiler"
)

func tinyModel() model.Config {
	return model.Config{Name: "tiny", Hidden: 256, Layers: 4, SeqLen: 128, Heads: 4, Vocab: 1024}
}

// boundGraph pairs a structural graph with the duration table bound for
// the plan it was lowered from — the unit most tests replay.
type boundGraph struct {
	g   *Graph
	tbl *DurationTable
}

func lower(t *testing.T, plan parallel.Plan, fid Fidelity) boundGraph {
	t.Helper()
	c := hw.PaperCluster(8)
	og, err := opgraph.Build(tinyModel(), plan, c)
	if err != nil {
		t.Fatal(err)
	}
	prof := profiler.New(gpu.NewDevice(c.Node.GPU))
	g := Lower(og, prof, fid)
	return boundGraph{g: g, tbl: g.Bind(prof, comm.NewModel(c), plan, c)}
}

func simulate(t *testing.T, b boundGraph) Result {
	t.Helper()
	res, err := b.g.Replay(b.tbl)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFidelitiesAgree(t *testing.T) {
	// Kernels within an operator are chained sequentially, so replaying
	// at task granularity and operator granularity must give the same
	// iteration time.
	plans := []parallel.Plan{
		{Tensor: 1, Data: 1, Pipeline: 1, MicroBatch: 1, GlobalBatch: 2},
		{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 8, GradientBuckets: 2},
		{Tensor: 1, Data: 1, Pipeline: 4, MicroBatch: 1, GlobalBatch: 8, Schedule: parallel.GPipe},
	}
	for _, plan := range plans {
		taskRes := simulate(t, lower(t, plan, TaskLevel))
		opRes := simulate(t, lower(t, plan, OperatorLevel))
		if rel := math.Abs(taskRes.IterTime-opRes.IterTime) / taskRes.IterTime; rel > 1e-9 {
			t.Fatalf("plan %s: task-level %.9g vs op-level %.9g (rel %g)", plan, taskRes.IterTime, opRes.IterTime, rel)
		}
		if taskRes.Executed <= opRes.Executed {
			t.Fatalf("task-level should replay more tasks: %d vs %d", taskRes.Executed, opRes.Executed)
		}
	}
}

func TestSimulateDeterministicAndRepeatable(t *testing.T) {
	plan := parallel.Plan{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 8, GradientBuckets: 2}
	g := lower(t, plan, TaskLevel)
	a := simulate(t, g)
	b := simulate(t, g) // reference counts must be restored
	if a.IterTime != b.IterTime || a.Executed != b.Executed {
		t.Fatalf("re-simulation diverged: %v vs %v", a.IterTime, b.IterTime)
	}
}

func TestIterTimeAtLeastCriticalChain(t *testing.T) {
	// With a single device and no parallel streams' overlap possible on
	// compute, iteration time >= sum of compute durations on the device.
	plan := parallel.Plan{Tensor: 1, Data: 1, Pipeline: 1, MicroBatch: 1, GlobalBatch: 2}
	g := lower(t, plan, TaskLevel)
	res := simulate(t, g)
	if res.IterTime < res.ComputeBusy[0]-1e-12 {
		t.Fatalf("iteration %.6g below device busy time %.6g", res.IterTime, res.ComputeBusy[0])
	}
}

func TestPipelineBubbleGrowsWithDepth(t *testing.T) {
	// Same total work, fewer micro-batches per stage: deeper pipelines
	// must show a larger bubble (idle) fraction with fixed micro-batches.
	mk := func(p int) float64 {
		plan := parallel.Plan{Tensor: 1, Data: 1, Pipeline: p, MicroBatch: 1, GlobalBatch: 4}
		res := simulate(t, lower(t, plan, OperatorLevel))
		var busy float64
		for _, b := range res.ComputeBusy {
			busy += b
		}
		return 1 - busy/(float64(p)*res.IterTime)
	}
	if b2, b4 := mk(2), mk(4); b4 <= b2 {
		t.Fatalf("bubble fraction should grow with depth: p=2 %.3f, p=4 %.3f", b2, b4)
	}
}

func TestGPipeSlowerOrEqualToOneFOneB(t *testing.T) {
	// With equal micro-batch counts the two schedules have identical
	// bubble structure in a two-stage pipeline, but GPipe can never be
	// faster.
	base := parallel.Plan{Tensor: 1, Data: 1, Pipeline: 4, MicroBatch: 1, GlobalBatch: 16}
	gpipe := base
	gpipe.Schedule = parallel.GPipe
	r1 := simulate(t, lower(t, base, OperatorLevel))
	r2 := simulate(t, lower(t, gpipe, OperatorLevel))
	if r2.IterTime < r1.IterTime-1e-12 {
		t.Fatalf("GPipe %.6g faster than 1F1B %.6g", r2.IterTime, r1.IterTime)
	}
}

func TestMoreMicroBatchesAmortizeBubble(t *testing.T) {
	mk := func(nmb int) float64 {
		plan := parallel.Plan{Tensor: 1, Data: 1, Pipeline: 4, MicroBatch: 1, GlobalBatch: nmb}
		res := simulate(t, lower(t, plan, OperatorLevel))
		return res.IterTime / float64(nmb)
	}
	// Per-micro-batch cost shrinks as the bubble amortizes.
	if a, b := mk(4), mk(16); b >= a {
		t.Fatalf("per-micro-batch time should shrink: nmb=4 %.6g, nmb=16 %.6g", a, b)
	}
}

func TestDPAllReduceOverlapsBackward(t *testing.T) {
	// The gradient-bucket All-Reduce runs on the comm stream: its time
	// must not be fully serialized into the iteration. Compare d=2
	// bucketed vs an artificial serialization bound.
	plan := parallel.Plan{Tensor: 1, Data: 2, Pipeline: 1, MicroBatch: 1, GlobalBatch: 8, GradientBuckets: 4}
	g := lower(t, plan, OperatorLevel)
	res := simulate(t, g)
	serial := res.ComputeBusy[0] + res.CommBusy[0]
	if res.IterTime >= serial-1e-12 {
		t.Fatalf("no communication overlap: iter %.6g, serial bound %.6g", res.IterTime, serial)
	}
}

func TestCommTimesCounted(t *testing.T) {
	plan := parallel.Plan{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 8, GradientBuckets: 1}
	res := simulate(t, lower(t, plan, TaskLevel))
	for i, c := range res.CommBusy {
		if c <= 0 {
			t.Fatalf("stage %d has zero communication time under 3D parallelism", i)
		}
	}
	if res.FLOPs <= 0 {
		t.Fatal("FLOPs accounting missing")
	}
}

// brokenComm prices everything at zero, to exercise lowering edge cases.
type zeroComm struct{}

func (zeroComm) AllReduce(bytes float64, n int, intra bool) float64 { return 0 }
func (zeroComm) SendRecv(bytes float64, sameNode bool) float64      { return 0 }

func TestZeroCommStillSimulates(t *testing.T) {
	c := hw.PaperCluster(8)
	plan := parallel.Plan{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 8, GradientBuckets: 1}
	og, err := opgraph.Build(tinyModel(), plan, c)
	if err != nil {
		t.Fatal(err)
	}
	prof := profiler.New(gpu.NewDevice(c.Node.GPU))
	g := Lower(og, prof, OperatorLevel)
	res := simulate(t, boundGraph{g: g, tbl: g.Bind(prof, zeroComm{}, plan, c)})
	if res.IterTime <= 0 {
		t.Fatal("zero-comm simulation produced non-positive time")
	}
}

func TestSimulationMonotoneInKernelDurations(t *testing.T) {
	// Property: slowing down the device can never speed up the
	// iteration (monotonicity of the replay).
	c := hw.PaperCluster(8)
	plan := parallel.Plan{Tensor: 2, Data: 1, Pipeline: 2, MicroBatch: 1, GlobalBatch: 4}
	og, err := opgraph.Build(tinyModel(), plan, c)
	if err != nil {
		t.Fatal(err)
	}
	cm := comm.NewModel(c)
	run := func(dev *gpu.Device) (Result, error) {
		prof := profiler.New(dev)
		g := Lower(og, prof, OperatorLevel)
		return g.Replay(g.Bind(prof, cm, plan, c))
	}
	f := func(slowdown8 uint8) bool {
		slow := 1 + float64(slowdown8)/64
		fast := gpu.NewDevice(c.Node.GPU)
		slower := gpu.NewDevice(c.Node.GPU)
		slower.MaxTensorEff = fast.MaxTensorEff / slow
		slower.MemEff = fast.MemEff / slow
		rFast, err1 := run(fast)
		rSlow, err2 := run(slower)
		return err1 == nil && err2 == nil && rSlow.IterTime >= rFast.IterTime-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestAllTasksExecuted(t *testing.T) {
	plan := parallel.Plan{Tensor: 1, Data: 2, Pipeline: 4, MicroBatch: 1, GlobalBatch: 8, GradientBuckets: 2, Recompute: true}
	g := lower(t, plan, TaskLevel)
	res := simulate(t, g)
	if res.Executed != g.g.NumTasks() {
		t.Fatalf("executed %d of %d tasks", res.Executed, g.g.NumTasks())
	}
}

func TestZeroTaskGraphErrors(t *testing.T) {
	// Regression: a graph with no tasks used to replay "successfully" into
	// an all-zero Result, which core then dressed up as a plausible
	// all-zero Report. It must be an explicit error on every replay path.
	g := NewBuilder(1).Build()
	if _, err := g.Simulate(); err == nil {
		t.Fatal("Simulate on a zero-task graph must error")
	}
	if _, _, err := g.SimulateTrace(); err == nil {
		t.Fatal("SimulateTrace on a zero-task graph must error")
	}
	if _, err := g.Replay(nil); err == nil {
		t.Fatal("Replay on a zero-task graph must error")
	}
}

func TestStructuralGraphRequiresBinding(t *testing.T) {
	// A structural graph has no durations of its own: replaying it without
	// a bound table (or with a table of the wrong size) must fail loudly
	// rather than simulate every task at zero seconds.
	plan := parallel.Plan{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 8, GradientBuckets: 2}
	b := lower(t, plan, OperatorLevel)
	if !b.g.Structural() {
		t.Fatal("Lower produced a non-structural graph")
	}
	if _, err := b.g.Simulate(); err == nil {
		t.Fatal("Simulate on an unbound structural graph must error")
	}
	if _, err := b.g.Replay(nil); err == nil {
		t.Fatal("Replay(nil) on a structural graph must error")
	}
	other := lower(t, parallel.Plan{Tensor: 1, Data: 1, Pipeline: 1, MicroBatch: 1, GlobalBatch: 2}, OperatorLevel)
	if _, err := b.g.Replay(other.tbl); err == nil {
		t.Fatal("Replay with a mismatched table must error")
	}
}

func TestBindSharedGraphAcrossPlans(t *testing.T) {
	// One structural graph, two bindings: the plan with double the tensor
	// width must see different durations through the same structure, and
	// binding must leave the graph untouched.
	c := hw.PaperCluster(8)
	base := parallel.Plan{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 8, GradientBuckets: 2}
	wide := parallel.Plan{Tensor: 4, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 8, GradientBuckets: 2}
	og, err := opgraph.Build(tinyModel(), base, c)
	if err != nil {
		t.Fatal(err)
	}
	prof := profiler.New(gpu.NewDevice(c.Node.GPU))
	g := Lower(og, prof, OperatorLevel)
	cm := comm.NewModel(c)

	rBase, err := g.Replay(g.Bind(prof, cm, base, c))
	if err != nil {
		t.Fatal(err)
	}
	rWide, err := g.Replay(g.Bind(prof, cm, wide, c))
	if err != nil {
		t.Fatal(err)
	}
	if rWide.IterTime == rBase.IterTime || rWide.FLOPs == rBase.FLOPs {
		t.Fatalf("t=4 binding should differ from t=2: iter %.6g vs %.6g", rWide.IterTime, rBase.IterTime)
	}
	// Rebinding the first plan reproduces its result exactly: nothing about
	// the wide binding leaked into the shared structure.
	rAgain, err := g.Replay(g.Bind(prof, cm, base, c))
	if err != nil {
		t.Fatal(err)
	}
	if rAgain.IterTime != rBase.IterTime || rAgain.FLOPs != rBase.FLOPs {
		t.Fatalf("re-binding diverged: %.9g vs %.9g", rAgain.IterTime, rBase.IterTime)
	}
}

func TestDeadlockDetection(t *testing.T) {
	// A hand-built cyclic graph must be reported, not spin.
	b := NewBuilder(1)
	x := b.AddTask(Task{Duration: 1})
	y := b.AddTask(Task{Duration: 1})
	b.AddEdge(x, y)
	b.AddEdge(y, x)
	if _, err := b.Build().Simulate(); err == nil {
		t.Fatal("cycle must produce a deadlock error")
	}
}

func TestBuilderAdjacency(t *testing.T) {
	b := NewBuilder(1)
	a := b.AddTask(Task{Duration: 1, Class: "A"})
	c := b.AddTask(Task{Duration: 1, Class: "B"})
	d := b.AddTask(Task{Duration: 1, Class: "A"})
	b.AddEdge(a, c)
	b.AddEdge(a, d)
	g := b.Build()
	if got := g.Children(a); len(got) != 2 || got[0] != int32(c) || got[1] != int32(d) {
		t.Fatalf("Children(%d) = %v, want [%d %d]", a, got, c, d)
	}
	if len(g.Children(c)) != 0 {
		t.Fatal("leaf has children")
	}
	res, err := g.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 3 || res.ClassSeconds["A"] != 2 || res.ClassSeconds["B"] != 1 {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestConcurrentReplaysAgree(t *testing.T) {
	// The acceptance property of the immutable-graph refactor: one
	// lowered graph replayed from many goroutines (run under -race)
	// yields identical results, repeatedly.
	plan := parallel.Plan{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 8, GradientBuckets: 2}
	g := lower(t, plan, TaskLevel)
	want := simulate(t, g)

	const replays = 32
	results := make([]Result, replays)
	errs := make([]error, replays)
	var wg sync.WaitGroup
	for i := 0; i < replays; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = g.g.Replay(g.tbl)
		}(i)
	}
	wg.Wait()
	for i := 0; i < replays; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		got := results[i]
		if got.IterTime != want.IterTime || got.Executed != want.Executed || got.FLOPs != want.FLOPs {
			t.Fatalf("replay %d diverged: %+v vs %+v", i, got, want)
		}
		for class, sec := range want.ClassSeconds {
			if got.ClassSeconds[class] != sec {
				t.Fatalf("replay %d class %q = %g, want %g", i, class, got.ClassSeconds[class], sec)
			}
		}
		for d := range want.ComputeBusy {
			if got.ComputeBusy[d] != want.ComputeBusy[d] || got.CommBusy[d] != want.CommBusy[d] {
				t.Fatalf("replay %d device %d busy time diverged", i, d)
			}
		}
	}
}

func TestRecomputeIncreasesIterationTime(t *testing.T) {
	base := parallel.Plan{Tensor: 1, Data: 1, Pipeline: 2, MicroBatch: 1, GlobalBatch: 4}
	rec := base
	rec.Recompute = true
	r1 := simulate(t, lower(t, base, OperatorLevel))
	r2 := simulate(t, lower(t, rec, OperatorLevel))
	if r2.IterTime <= r1.IterTime {
		t.Fatalf("recompute should cost time: %.6g vs %.6g", r2.IterTime, r1.IterTime)
	}
	// The overhead is bounded by the forward pass (~1/3 of fwd+bwd).
	if r2.IterTime > 1.6*r1.IterTime {
		t.Fatalf("recompute overhead implausible: %.6g vs %.6g", r2.IterTime, r1.IterTime)
	}
}
