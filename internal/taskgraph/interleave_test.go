package taskgraph

import (
	"testing"

	"vtrain/internal/comm"
	"vtrain/internal/gpu"
	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/opgraph"
	"vtrain/internal/parallel"
	"vtrain/internal/profiler"
)

// deepModel has enough layers for p=4, v=2 chunking.
func deepModel() model.Config {
	return model.Config{Name: "deep8", Hidden: 256, Layers: 8, SeqLen: 128, Heads: 4, Vocab: 1024}
}

// lowerDeep lowers a plan over the 8-layer model and binds its durations.
func lowerDeep(t *testing.T, plan parallel.Plan, fid Fidelity) boundGraph {
	t.Helper()
	c := hw.PaperCluster(8)
	og, err := opgraph.Build(deepModel(), plan, c)
	if err != nil {
		t.Fatal(err)
	}
	prof := profiler.New(gpu.NewDevice(c.Node.GPU))
	g := Lower(og, prof, fid)
	return boundGraph{g: g, tbl: g.Bind(prof, comm.NewModel(c), plan, c)}
}

// bubbleFraction runs a plan and returns the mean compute-idle fraction.
func bubbleFraction(t *testing.T, plan parallel.Plan) float64 {
	t.Helper()
	res := simulate(t, lowerDeep(t, plan, OperatorLevel))
	var busy float64
	for _, b := range res.ComputeBusy {
		busy += b
	}
	return 1 - busy/(float64(len(res.ComputeBusy))*res.IterTime)
}

func TestInterleavingReducesPipelineBubble(t *testing.T) {
	// The headline property of virtual pipeline stages: with the same
	// (p, nmb), splitting each device into v chunks shrinks the bubble
	// from ~(p-1)/(nmb+p-1) toward ~(p-1)/v /(nmb+...) — strictly less
	// idle time.
	base := parallel.Plan{Tensor: 1, Data: 1, Pipeline: 4, MicroBatch: 1, GlobalBatch: 8}
	inter := base
	inter.VirtualStages = 2
	b0 := bubbleFraction(t, base)
	b2 := bubbleFraction(t, inter)
	if b2 >= b0 {
		t.Fatalf("interleaving did not shrink the bubble: v=1 %.3f, v=2 %.3f", b0, b2)
	}
}

func TestInterleavingIterTimeImproves(t *testing.T) {
	// For a bubble-dominated configuration (few micro-batches), the
	// wall-clock iteration should improve despite the extra P2P hops.
	base := parallel.Plan{Tensor: 1, Data: 1, Pipeline: 4, MicroBatch: 1, GlobalBatch: 8}
	inter := base
	inter.VirtualStages = 2
	r0 := simulate(t, lowerDeep(t, base, OperatorLevel))
	r2 := simulate(t, lowerDeep(t, inter, OperatorLevel))
	if r2.IterTime >= r0.IterTime {
		t.Fatalf("interleaving slower: v=1 %.4g, v=2 %.4g", r0.IterTime, r2.IterTime)
	}
}

func TestInterleavedTotalComputeUnchanged(t *testing.T) {
	// Interleaving reshuffles work; it must not change the executed
	// FLOPs (same layers, same micro-batches).
	base := parallel.Plan{Tensor: 1, Data: 1, Pipeline: 4, MicroBatch: 1, GlobalBatch: 8}
	inter := base
	inter.VirtualStages = 2
	r0 := simulate(t, lowerDeep(t, base, OperatorLevel))
	r2 := simulate(t, lowerDeep(t, inter, OperatorLevel))
	if rel := (r2.FLOPs - r0.FLOPs) / r0.FLOPs; rel > 1e-9 || rel < -1e-9 {
		t.Fatalf("interleaving changed FLOPs: %.6g vs %.6g", r0.FLOPs, r2.FLOPs)
	}
}

func TestInterleavedSimulationDeterministic(t *testing.T) {
	plan := parallel.Plan{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 8, VirtualStages: 2, GradientBuckets: 2}
	g := lowerDeep(t, plan, TaskLevel)
	a := simulate(t, g)
	b := simulate(t, g)
	if a.IterTime != b.IterTime {
		t.Fatal("interleaved replay not deterministic")
	}
}

func TestDeeperInterleavingMonotone(t *testing.T) {
	// With abundant micro-batches and cheap P2P, more chunks should not
	// increase the bubble (v=1 -> v=2 -> v=4) on the 8-layer model.
	prev := 2.0
	for _, v := range []int{1, 2, 4} {
		plan := parallel.Plan{Tensor: 1, Data: 1, Pipeline: 2, MicroBatch: 1, GlobalBatch: 8}
		if v > 1 {
			plan.VirtualStages = v
		}
		b := bubbleFraction(t, plan)
		if b > prev+0.02 { // small tolerance: extra P2P can add jitter
			t.Fatalf("bubble grew at v=%d: %.3f > %.3f", v, b, prev)
		}
		prev = b
	}
}
