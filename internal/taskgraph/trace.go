package taskgraph

import (
	"encoding/json"
	"fmt"
	"io"
)

// Span is one executed task on the simulated timeline.
type Span struct {
	// Device and Stream locate the resource.
	Device int
	Stream Stream
	// Start and End are simulation seconds.
	Start, End float64
	// Label is the task's human-readable tag.
	Label string
}

// SimulateTrace replays the graph like Simulate and additionally returns
// the full execution timeline, suitable for Chrome-trace export. Like
// Simulate it works only on hand-built graphs; structural graphs use
// ReplayTrace with a bound DurationTable.
func (g *Graph) SimulateTrace() (Result, []Span, error) {
	return g.replay(nil, nil, true)
}

// ReplayTrace is Replay plus the full execution timeline. Span labels
// resolve through the table's binding, so kernel names reflect the bound
// plan's tensor shapes exactly as a from-scratch lowering would.
func (g *Graph) ReplayTrace(tbl *DurationTable) (Result, []Span, error) {
	return g.replay(tbl, nil, true)
}

// chromeEvent is one Chrome trace-event-format record ("X" complete event).
type chromeEvent struct {
	Name     string  `json:"name"`
	Phase    string  `json:"ph"`
	TSMicros float64 `json:"ts"`
	DurMicro float64 `json:"dur"`
	PID      int     `json:"pid"`
	TID      int     `json:"tid"`
}

// WriteChromeTrace writes the timeline in Chrome's trace-event format
// (load via chrome://tracing or Perfetto): one process per simulated
// device, thread 0 = compute stream, thread 1 = communication stream.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		events = append(events, chromeEvent{
			Name:     s.Label,
			Phase:    "X",
			TSMicros: s.Start * 1e6,
			DurMicro: (s.End - s.Start) * 1e6,
			PID:      s.Device,
			TID:      int(s.Stream),
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events}); err != nil {
		return fmt.Errorf("taskgraph: writing chrome trace: %w", err)
	}
	return nil
}
