package taskgraph

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"vtrain/internal/comm"
	"vtrain/internal/hw"
	"vtrain/internal/parallel"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files")

// TestContendedTraceGolden pins the contended timeline end to end: the
// Chrome trace emitted by ReplayTraceContended must show the *derated*
// comm durations — span End times and Result.CommBusy both stretch by the
// congestion model's factors, never the ideal durations the contention-off
// path would report. The fixture is the monotone ledger graph (four
// node-local gradient All-Reduces serialized on one NVSwitch), whose
// derates are exactly 1 + NVShare*i, so every span duration is pinned in
// closed form before the golden bytes are compared.
func TestContendedTraceGolden(t *testing.T) {
	c := hw.PaperCluster(8)
	const stages = 4
	b := NewBuilder(stages)
	desc := durDesc{kind: descAllReduceDP, stageParams: 1 << 20, buckets: 1}
	for dev := 0; dev < stages; dev++ {
		b.addTaskDesc(Task{Device: dev, Stream: CommStream, Class: "AllReduceDP"}, desc)
	}
	g := b.Build()

	plan := parallel.Plan{Tensor: 1, Data: 2, Pipeline: stages, MicroBatch: 1, GlobalBatch: 2 * stages}
	tbl := g.Bind(nil, comm.NewModel(c), plan, c)
	defer tbl.Release()
	ct := g.BindContention(plan, c, tbl)
	if ct == nil {
		t.Fatal("BindContention returned nil for a descriptor graph")
	}

	ideal, idealSpans, err := g.ReplayTrace(tbl)
	if err != nil {
		t.Fatal(err)
	}
	res, spans, err := g.ReplayTraceContended(tbl, ct)
	if err != nil {
		t.Fatal(err)
	}

	// Every span must carry the derated duration — base * (1 + NVShare*i)
	// for the i flows already on the NVSwitch — and each device's CommBusy
	// must equal its span's derated duration exactly. The ideal replay is
	// compared alongside to prove the golden pins contended, not ideal,
	// numbers.
	base := tbl.Duration(0)
	cg := comm.NewCongestion(c)
	for i, sp := range spans {
		want := base * cg.Derate(i, 0, 0)
		if got := sp.End - sp.Start; got != want {
			t.Fatalf("span %d: duration %v, want derated %v", i, got, want)
		}
		if i > 0 && sp.End-sp.Start <= idealSpans[i].End-idealSpans[i].Start {
			t.Fatalf("span %d: contended duration %v not above ideal %v",
				i, sp.End-sp.Start, idealSpans[i].End-idealSpans[i].Start)
		}
		if got := res.CommBusy[sp.Device]; got != want {
			t.Fatalf("device %d: CommBusy %v, want derated %v", sp.Device, got, want)
		}
		if i > 0 && res.CommBusy[sp.Device] <= ideal.CommBusy[sp.Device] {
			t.Fatalf("device %d: contended CommBusy %v not above ideal %v",
				sp.Device, res.CommBusy[sp.Device], ideal.CommBusy[sp.Device])
		}
	}

	var out bytes.Buffer
	if err := WriteChromeTrace(&out, spans); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "contended_trace.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("contended Chrome trace diverges from golden %s:\ngot:\n%s\nwant:\n%s",
			path, out.Bytes(), want)
	}
}
