package taskgraph

import (
	"sync"

	"vtrain/internal/hw"
	"vtrain/internal/parallel"
	"vtrain/internal/profiler"
)

// descKind classifies duration descriptors.
type descKind uint8

const (
	// descOperator prices a whole computation operator (the summed kernel
	// durations — operator-level fidelity, or a single-kernel operator).
	descOperator descKind = iota
	// descKernel prices one kernel of a multi-kernel operator.
	descKernel
	// descAllReduceTP prices the tensor-parallel activation All-Reduce.
	descAllReduceTP
	// descAllReduceDP prices one data-parallel gradient-bucket All-Reduce.
	descAllReduceDP
	// descP2P prices a pipeline Send-Receive between two stages.
	descP2P
)

// durDesc is one entry of a structural graph's duration-descriptor table:
// everything needed to price a task for any plan sharing the graph's shape,
// expressed in shape-invariant terms. Descriptors are value-comparable and
// deduplicated during lowering, so the table stays tiny (one entry per
// operator kind / kernel index / stage-parameter class / stage pair) even
// for graphs with tens of thousands of tasks.
type durDesc struct {
	kind descKind
	// op is the computation operator kind (descOperator, descKernel).
	op profiler.OpKind
	// kernel is the kernel index within the operator (descKernel).
	kernel int32
	// stageParams is the unsharded parameter count of the task's pipeline
	// stage (WeightUpdate operators and gradient All-Reduces); the bound
	// plan's tensor width derives the shard from it.
	stageParams uint64
	// buckets is the gradient-bucket count of the stage (descAllReduceDP).
	buckets int32
	// from and to are the producer and consumer stages (descP2P), from
	// which binding derives node placement for the bound plan.
	from, to int32
}

// descVal is one priced descriptor: the duration and FLOPs every task of
// that descriptor shares under one plan.
type descVal struct{ dur, flops float64 }

// DurationTable holds the per-plan numbers of one (structural graph, plan)
// binding. It has two representations. A stateless binding — the sweep hot
// path — stores one priced value per *descriptor* (vals, a few dozen
// entries that live in L1) plus a reference to the graph's durIdx slab;
// replay gathers vals[durIdx[id]] on the fly, so binding never materializes
// — or even touches — a per-task array. Stateful communication timers and
// hand-built graphs still fan out to flat per-task columns (dur, flops),
// because their values genuinely vary per task. Either way the table is
// read-only during replay, so one shared structural graph can be bound to
// many plans and replayed concurrently.
type DurationTable struct {
	n     int
	dur   []float64
	flops []float64
	// byDesc selects the descriptor-gather representation.
	byDesc bool
	vals   []descVal
	durIdx []int32

	// Binding context, retained so trace capture can resolve the
	// plan-dependent parts of task labels (kernel symbols embed tensor
	// shapes) lazily.
	prof *profiler.Profiler
	plan parallel.Plan

	// oversized counts consecutive pooled reuses whose capacity exceeded 4x
	// the request (see wantShrink).
	oversized int8
}

// taskValues returns the bound (duration, FLOPs) of task id regardless of
// representation.
func (t *DurationTable) taskValues(id int) (float64, float64) {
	if t.byDesc {
		v := t.vals[t.durIdx[id]]
		return v.dur, v.flops
	}
	return t.dur[id], t.flops[id]
}

// Duration returns the bound execution time of task id in seconds.
func (t *DurationTable) Duration(id int) float64 {
	d, _ := t.taskValues(id)
	return d
}

// Len returns the number of bound tasks.
func (t *DurationTable) Len() int { return t.n }

// tablePool recycles DurationTables across Bind/Release cycles, keeping
// sweep workers allocation-lean: a worker that binds thousands of plans
// reuses the same slices.
var tablePool = sync.Pool{New: func() any { return new(DurationTable) }}

// tableFor returns a pooled table bound to n tasks. The per-task columns
// are sized lazily (fitTasks) because the stateless binding path never
// touches them.
func tableFor(n int) *DurationTable {
	t := tablePool.Get().(*DurationTable)
	t.n = n
	t.byDesc = false
	return t
}

// fitTasks sizes the per-task columns for the fan-out representation. Like
// replay scratch, capacity beyond 4x the requested size is shed per the
// hysteretic policy of wantShrink, so one huge graph cannot pin worst-case
// storage forever.
func (t *DurationTable) fitTasks(n int) {
	drop := wantShrink(cap(t.dur), n, &t.oversized)
	t.dur = fitRaw(t.dur, n, drop)
	t.flops = fitRaw(t.flops, n, drop)
}

// Release returns the table to the binding pool. Callers that are done with
// a bound replay should release its table; using the table afterwards is a
// bug. Release is optional — an unreleased table is ordinary garbage.
func (t *DurationTable) Release() {
	if t == nil {
		return
	}
	t.prof = nil
	t.plan = parallel.Plan{}
	t.byDesc = false
	t.durIdx = nil // graph slab: do not pin the graph through the pool
	tablePool.Put(t)
}

// ceilDiv is ceiling integer division for positive operands.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// allReduceTPArgs returns the (participants, intraNode) a tensor-parallel
// activation All-Reduce presents to the communication model. A group wider
// than one node reduces hierarchically: ranks sharing a node combine over
// NVSwitch first, so the Eq. 1 inter-node phase rings over the
// participating *nodes* at per-node bandwidth, not over every rank.
func allReduceTPArgs(plan parallel.Plan, gpn int) (int, bool) {
	if plan.Tensor <= gpn {
		return plan.Tensor, true
	}
	return ceilDiv(plan.Tensor, gpn), false
}

// allReduceDPArgs is allReduceTPArgs for a data-parallel gradient
// All-Reduce. Under Megatron placement consecutive group members sit t
// ranks apart, so the d-member group spans ceil(d*t/gpn) nodes — but never
// more nodes than members (with t > gpn each member owns a distinct node).
func allReduceDPArgs(plan parallel.Plan, gpn int) (int, bool) {
	stride := plan.Tensor * plan.Data
	if stride <= gpn {
		return plan.Data, true
	}
	return min(plan.Data, ceilDiv(plan.Data*plan.Tensor, gpn)), false
}

// operatorFor composes the profiler operator of a compute descriptor for
// one concrete plan, reproducing exactly the parameter arithmetic the
// per-plan graph builder uses (integer shard division, minimum 1).
func (d *durDesc) operatorFor(g *Graph, plan parallel.Plan) profiler.Operator {
	op := profiler.Operator{
		Kind:       d.op,
		Model:      g.Model,
		MicroBatch: plan.MicroBatch,
		Tensor:     plan.Tensor,
	}
	if d.stageParams != 0 {
		op.Params = max(d.stageParams/uint64(plan.Tensor), 1)
	}
	return op
}

// Bind resolves the graph's duration descriptors against the profiler and
// the communication model for one concrete plan, producing the per-task
// DurationTable that Replay combines with the shared structure.
//
// Binding never mutates the graph, so many goroutines may bind one shared
// structural graph concurrently — the property shape-keyed caching relies
// on. Compute descriptors are priced once per distinct descriptor (the
// profiler memoizes kernel decompositions per operator shape).
// Communication descriptors are priced the same way when cm is a
// StatelessCommTimer; otherwise communication tasks are priced individually
// in task-ID order, preserving the call sequence a from-scratch lowering
// would present to a stateful CommTimer.
//
// On a hand-built graph (no descriptors) Bind copies the tasks' eager
// durations, so Replay behaves identically to Simulate.
func (g *Graph) Bind(prof *profiler.Profiler, cm CommTimer, plan parallel.Plan, c hw.Cluster) *DurationTable {
	n := g.NumTasks()
	tbl := tableFor(n)
	tbl.prof = prof
	tbl.plan = plan
	if g.descs == nil {
		tbl.fitTasks(n)
		for i := range g.Tasks {
			tbl.dur[i] = g.Tasks[i].Duration
			tbl.flops[i] = g.Tasks[i].FLOPs
		}
		return tbl
	}

	// The arithmetic below mirrors the operator-graph builder exactly
	// (multiplication order included) so bound durations are bit-identical
	// to a from-scratch lowering of the same plan.
	gpn := c.Node.GPUsPerNode
	stride := plan.Tensor * plan.Data
	actBytes := 2 * float64(plan.MicroBatch) * float64(g.Model.SeqLen) * float64(g.Model.Hidden)

	// Price the pure compute descriptors once each. A stateless timer
	// additionally lets communication descriptors be priced here — once per
	// distinct descriptor instead of once per task; a stateful timer keeps
	// the per-task call sequence (see CommTimer).
	_, stateless := cm.(StatelessCommTimer)
	if cap(tbl.vals) < len(g.descs) {
		tbl.vals = make([]descVal, len(g.descs))
	}
	vals := tbl.vals[:len(g.descs)]
	clear(vals) // pooled reuse may carry stale entries
	tbl.vals = vals
	for i := range g.descs {
		d := &g.descs[i]
		switch d.kind {
		case descOperator:
			var dur, flops float64
			for _, k := range prof.Profile(d.operatorFor(g, plan)) {
				dur += k.Duration
				flops += k.Kernel.FLOPs
			}
			vals[i] = descVal{dur, flops}
		case descKernel:
			k := prof.Profile(d.operatorFor(g, plan))[d.kernel]
			vals[i] = descVal{k.Duration, k.Kernel.FLOPs}
		case descAllReduceTP:
			if stateless {
				n, intra := allReduceTPArgs(plan, gpn)
				vals[i] = descVal{dur: cm.AllReduce(actBytes, n, intra)}
			}
		case descAllReduceDP:
			if stateless {
				bucketParams := d.stageParams / uint64(plan.Tensor) / uint64(d.buckets)
				n, intra := allReduceDPArgs(plan, gpn)
				vals[i] = descVal{dur: cm.AllReduce(2*float64(bucketParams), n, intra)}
			}
		case descP2P:
			if stateless {
				same := (int(d.from)*stride)/gpn == (int(d.to)*stride)/gpn
				vals[i] = descVal{dur: cm.SendRecv(actBytes, same)}
			}
		}
	}

	if stateless {
		// Every descriptor is fully priced: hand replay the per-descriptor
		// table and the graph's durIdx slab instead of fanning out ~2 eight-
		// byte writes per task — binding becomes O(#descriptors).
		tbl.byDesc = true
		tbl.durIdx = g.durIdx
		return tbl
	}

	// Fan out to tasks, pricing communication per task in ID order — the
	// call sequence a from-scratch lowering would present to a stateful
	// CommTimer.
	tbl.fitTasks(n)
	for i := 0; i < n; i++ {
		d := &g.descs[g.durIdx[i]]
		switch d.kind {
		case descOperator, descKernel:
			v := vals[g.durIdx[i]]
			tbl.dur[i] = v.dur
			tbl.flops[i] = v.flops
		case descAllReduceTP:
			n, intra := allReduceTPArgs(plan, gpn)
			tbl.dur[i] = cm.AllReduce(actBytes, n, intra)
			tbl.flops[i] = 0
		case descAllReduceDP:
			bucketParams := d.stageParams / uint64(plan.Tensor) / uint64(d.buckets)
			n, intra := allReduceDPArgs(plan, gpn)
			tbl.dur[i] = cm.AllReduce(2*float64(bucketParams), n, intra)
			tbl.flops[i] = 0
		case descP2P:
			same := (int(d.from)*stride)/gpn == (int(d.to)*stride)/gpn
			tbl.dur[i] = cm.SendRecv(actBytes, same)
			tbl.flops[i] = 0
		}
	}
	return tbl
}

// taskLabel composes the trace label of task id under this binding: the
// structural base label qualified by the bound plan's kernel symbol for
// kernel-granularity tasks. Only trace capture calls it.
func (t *DurationTable) taskLabel(g *Graph, id int) string {
	base := g.TaskLabel(id)
	if g.descs == nil {
		return base
	}
	d := &g.descs[g.durIdx[id]]
	if d.kind != descKernel {
		return base
	}
	return base + "/" + t.prof.Profile(d.operatorFor(g, t.plan))[d.kernel].Kernel.Name
}
