package taskgraph

import (
	"strings"
	"testing"

	"vtrain/internal/comm"
	"vtrain/internal/gpu"
	"vtrain/internal/hw"
	"vtrain/internal/opgraph"
	"vtrain/internal/parallel"
	"vtrain/internal/profiler"
)

// batchFixture lowers one structural graph and binds a table per plan, the
// way SimulateBatch feeds ReplayBatch: all plans share the graph's shape,
// only their bound durations differ.
func batchFixture(t *testing.T, plans []parallel.Plan) (*Graph, []*DurationTable) {
	t.Helper()
	c := hw.PaperCluster(8)
	prof := profiler.New(gpu.NewDevice(c.Node.GPU))
	og, err := opgraph.Build(tinyModel(), plans[0], c)
	if err != nil {
		t.Fatal(err)
	}
	g := Lower(og, prof, OperatorLevel)
	cm := comm.NewModel(c)
	tables := make([]*DurationTable, len(plans))
	for i, plan := range plans {
		tables[i] = g.Bind(prof, cm, plan, c)
	}
	return g, tables
}

// requireIdentical fails unless got and want are bit-identical — float
// equality is exact, not approximate, because each batch lane must perform
// the sequential replay's operations in the same order.
func requireIdentical(t *testing.T, lane int, got, want Result) {
	t.Helper()
	if got.IterTime != want.IterTime {
		t.Fatalf("lane %d: IterTime %v != sequential %v", lane, got.IterTime, want.IterTime)
	}
	if got.FLOPs != want.FLOPs {
		t.Fatalf("lane %d: FLOPs %v != sequential %v", lane, got.FLOPs, want.FLOPs)
	}
	if got.Executed != want.Executed {
		t.Fatalf("lane %d: Executed %d != sequential %d", lane, got.Executed, want.Executed)
	}
	for d := range want.ComputeBusy {
		if got.ComputeBusy[d] != want.ComputeBusy[d] {
			t.Fatalf("lane %d: ComputeBusy[%d] %v != sequential %v", lane, d, got.ComputeBusy[d], want.ComputeBusy[d])
		}
		if got.CommBusy[d] != want.CommBusy[d] {
			t.Fatalf("lane %d: CommBusy[%d] %v != sequential %v", lane, d, got.CommBusy[d], want.CommBusy[d])
		}
	}
	if len(got.ClassSeconds) != len(want.ClassSeconds) {
		t.Fatalf("lane %d: %d classes != sequential %d", lane, len(got.ClassSeconds), len(want.ClassSeconds))
	}
	for class, sec := range want.ClassSeconds {
		if got.ClassSeconds[class] != sec {
			t.Fatalf("lane %d: ClassSeconds[%q] %v != sequential %v", lane, class, got.ClassSeconds[class], sec)
		}
	}
}

// TestReplayBatchEquivalence pins the tentpole contract: ReplayBatch over K
// tables returns exactly what K sequential Replay calls return — bit for
// bit — at width 1, at width > 1, and for a shape group mixing micro-batch
// sizes (same micro-batch count, so one structure; different data widths,
// so different durations per lane).
func TestReplayBatchEquivalence(t *testing.T) {
	// All plans share (pipeline depth 2, 8 micro-batches): d=1,mb=2 and
	// d=2,mb=1 both split GlobalBatch 16 into 8 micro-batches, and tensor
	// width never affects structure. One graph, eight distinct tables.
	plans := []parallel.Plan{
		{Tensor: 1, Data: 1, Pipeline: 2, MicroBatch: 2, GlobalBatch: 16, GradientBuckets: 2},
		{Tensor: 2, Data: 1, Pipeline: 2, MicroBatch: 2, GlobalBatch: 16, GradientBuckets: 2},
		{Tensor: 1, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 16, GradientBuckets: 2},
		{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 16, GradientBuckets: 2},
		{Tensor: 4, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 16, GradientBuckets: 2},
		{Tensor: 4, Data: 1, Pipeline: 2, MicroBatch: 2, GlobalBatch: 16, GradientBuckets: 2},
		{Tensor: 1, Data: 4, Pipeline: 2, MicroBatch: 2, GlobalBatch: 64, GradientBuckets: 2},
		{Tensor: 2, Data: 4, Pipeline: 2, MicroBatch: 2, GlobalBatch: 64, GradientBuckets: 2},
	}
	g, tables := batchFixture(t, plans)

	want := make([]Result, len(tables))
	for i, tbl := range tables {
		res, err := g.Replay(tbl)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	for _, k := range []int{1, 3, len(tables)} {
		got, err := g.ReplayBatch(tables[:k])
		if err != nil {
			t.Fatalf("width %d: %v", k, err)
		}
		if len(got) != k {
			t.Fatalf("width %d: got %d results", k, len(got))
		}
		for lane := 0; lane < k; lane++ {
			requireIdentical(t, lane, got[lane], want[lane])
		}
	}

	// Batch composition must not leak between lanes: the same table in a
	// different lane position still reproduces its sequential result.
	perm := []*DurationTable{tables[5], tables[0], tables[3]}
	got, err := g.ReplayBatch(perm)
	if err != nil {
		t.Fatal(err)
	}
	for lane, wi := range []int{5, 0, 3} {
		requireIdentical(t, lane, got[lane], want[wi])
	}
}

// TestReplayBatchValidation pins the error contract: empty batches are a
// nil no-op, nil and mis-sized tables are rejected before any replay work.
func TestReplayBatchValidation(t *testing.T) {
	plans := []parallel.Plan{
		{Tensor: 1, Data: 1, Pipeline: 2, MicroBatch: 2, GlobalBatch: 16, GradientBuckets: 2},
	}
	g, tables := batchFixture(t, plans)

	if res, err := g.ReplayBatch(nil); res != nil || err != nil {
		t.Fatalf("empty batch: got (%v, %v), want (nil, nil)", res, err)
	}
	if _, err := g.ReplayBatch([]*DurationTable{tables[0], nil}); err == nil || !strings.Contains(err.Error(), "nil") {
		t.Fatalf("nil table: err = %v", err)
	}

	other := parallel.Plan{Tensor: 1, Data: 1, Pipeline: 4, MicroBatch: 1, GlobalBatch: 8}
	_, wrong := batchFixture(t, []parallel.Plan{other})
	if _, err := g.ReplayBatch([]*DurationTable{wrong[0]}); err == nil || !strings.Contains(err.Error(), "binds") {
		t.Fatalf("mis-sized table: err = %v", err)
	}
}
