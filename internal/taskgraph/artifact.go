package taskgraph

// Artifact encoding: the flat, versioned, little-endian serialization of a
// lowered structural Graph that the persistent artifact tier
// (internal/artifact) writes to disk. The layout mirrors the in-memory
// representation exactly — value slabs, CSR adjacency, a deduplicated
// descriptor table, columnar label coordinates — and every slab section is
// padded to a 4-byte payload offset, so on little-endian hosts a load
// aliases the slabs straight out of the read buffer: no per-task decode
// loop, no bulk copies, O(#slabs) pointer work plus validation scans.
// Durations are not stored: a structural graph has none, which is exactly
// why one artifact serves every plan of its shape on any hardware.
//
// The container around this payload (magic, format version, checksum) is
// internal/artifact's concern; UnmarshalArtifact still validates every
// count and index it reads, so corrupt bytes that somehow pass the
// checksum produce an error, never a panic.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"unsafe"

	"vtrain/internal/model"
	"vtrain/internal/opgraph"
	"vtrain/internal/profiler"
)

// EncodingVersion identifies the artifact payload layout produced by
// Graph.MarshalArtifact. It is embedded in the payload and in the artifact
// store's content hash, so a version bump makes old files silent cache
// misses instead of misdecodes.
const EncodingVersion = 1

// ErrBadArtifact is returned by UnmarshalArtifact for any malformed
// payload: wrong version, truncated data, trailing bytes, or an index out
// of range. Callers treat it as a cache miss and re-lower.
var ErrBadArtifact = errors.New("taskgraph: malformed artifact payload")

// maxDescKernel bounds the kernel index a decoded descriptor may carry; the
// largest real operator decomposition is 13 kernels, so anything near the
// bound signals corruption.
const maxDescKernel = 64

// hostLittle reports whether the host stores integers little-endian, in
// which case slab encode/decode is a single byte-reinterpreting copy.
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// int32Bytes reinterprets an int32 slab as its in-memory bytes. Only
// meaningful on little-endian hosts (the stored byte order).
func int32Bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 4*len(s))
}

func appendInt32Slab(b []byte, s []int32) []byte {
	if hostLittle {
		return append(b, int32Bytes(s)...)
	}
	for _, v := range s {
		b = binary.LittleEndian.AppendUint32(b, uint32(v))
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

// pad4 zero-pads the payload to the next 4-byte boundary. Every int32
// section is padded to a 4-aligned payload offset so the decoder can alias
// it straight out of the (heap-aligned) read buffer instead of copying.
func pad4(b []byte) []byte {
	for len(b)%4 != 0 {
		b = append(b, 0)
	}
	return b
}

// MarshalArtifact serializes a lowered structural graph — structure only.
// Labels are deliberately excluded (see MarshalLabels): they are over half
// the graph's bytes and only trace rendering reads them, so the sweeping
// hot path should never pay to load them. The payload still records the
// label count, which bounds the source indices and tells a lazy label
// loader how many records to expect. Only graphs produced by Lower
// qualify: hand-built graphs carry eager durations and closures the
// encoding cannot represent.
func (g *Graph) MarshalArtifact() ([]byte, error) {
	if !g.Structural() || g.labels == nil {
		return nil, errors.New("taskgraph: only lowered structural graphs can be marshaled")
	}
	n := g.NumTasks()
	nL := g.labels.Len()
	size := 4 + 4 + len(g.Model.Name) + 6*8 + 6*8 +
		len(g.descs)*33 + 4*(4*n+1) + 4 + 4*len(g.children) + 8
	for _, c := range g.classes {
		size += 4 + len(c)
	}
	buf := make([]byte, 0, size)

	buf = binary.LittleEndian.AppendUint32(buf, EncodingVersion)
	buf = appendString(buf, g.Model.Name)
	for _, v := range []int{g.Model.Hidden, g.Model.Layers, g.Model.SeqLen, g.Model.Heads, g.Model.Vocab, g.Devices} {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(v)))
	}
	// A zero source count means the identity mapping (operator-level
	// graphs), costing nothing on disk instead of 4 bytes per task.
	for _, v := range []int{n, len(g.children), len(g.classes), len(g.descs), nL, len(g.sources)} {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(v)))
	}
	for _, c := range g.classes {
		buf = appendString(buf, c)
	}
	for _, d := range g.descs {
		buf = append(buf, byte(d.kind))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(d.op)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d.kernel))
		buf = binary.LittleEndian.AppendUint64(buf, d.stageParams)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d.buckets))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d.from))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d.to))
	}
	buf = pad4(buf)
	buf = appendInt32Slab(buf, g.sources)
	buf = appendInt32Slab(buf, g.classOf)
	buf = appendInt32Slab(buf, g.durIdx)
	buf = appendInt32Slab(buf, g.slotOf)
	buf = appendInt32Slab(buf, g.childStart)
	buf = appendInt32Slab(buf, g.children)
	return buf, nil
}

// MarshalLabels serializes the graph's label table as a standalone
// payload: the artifact store keeps labels in their own file so warm
// sweeps — which never render a label — load pure structure, and traces
// fetch the label bytes on first use (see SetLabelSource). The columns are
// already the on-disk layout, so encoding is a handful of slab dumps.
func (g *Graph) MarshalLabels() ([]byte, error) {
	if g.labels == nil {
		return nil, errors.New("taskgraph: graph carries no label table")
	}
	nL := g.labels.Len()
	buf := make([]byte, 0, 4+8+nL*25+4)
	buf = binary.LittleEndian.AppendUint32(buf, EncodingVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(nL))
	buf = append(buf, g.labels.Kinds...)
	buf = pad4(buf)
	for _, c := range [6][]int32{
		g.labels.Stage, g.labels.Micro, g.labels.Chunk,
		g.labels.Layer, g.labels.LayerEnd, g.labels.Bucket,
	} {
		buf = appendInt32Slab(buf, c)
	}
	return buf, nil
}

// UnmarshalLabels decodes a payload produced by MarshalLabels, aliasing
// the columns out of data where alignment allows (the caller must not
// modify data afterwards). Any malformed input returns ErrBadArtifact.
func UnmarshalLabels(data []byte) (*opgraph.LabelTable, error) {
	r := &artifactReader{data: data}
	if v := r.u32(); r.bad || v != EncodingVersion {
		return nil, fmt.Errorf("%w: version", ErrBadArtifact)
	}
	nL := r.count()
	t := &opgraph.LabelTable{Kinds: r.u8Slab(nL)}
	r.align4()
	t.Stage = r.i32Slab(nL)
	t.Micro = r.i32Slab(nL)
	t.Chunk = r.i32Slab(nL)
	t.Layer = r.i32Slab(nL)
	t.LayerEnd = r.i32Slab(nL)
	t.Bucket = r.i32Slab(nL)
	if r.bad || r.off != len(r.data) {
		return nil, fmt.Errorf("%w: truncated or trailing bytes", ErrBadArtifact)
	}
	for _, k := range t.Kinds {
		if int(k) >= opgraph.NumLabelKinds {
			return nil, fmt.Errorf("%w: label kind", ErrBadArtifact)
		}
	}
	return t, nil
}

// artifactReader walks an artifact payload, latching the first failure so
// callers can read a whole section and check err once. Every read bounds
// itself against the remaining bytes before allocating.
type artifactReader struct {
	data []byte
	off  int
	bad  bool
}

func (r *artifactReader) fail() {
	r.bad = true
}

func (r *artifactReader) u8() byte {
	if r.bad || r.off >= len(r.data) {
		r.fail()
		return 0
	}
	v := r.data[r.off]
	r.off++
	return v
}

func (r *artifactReader) u32() uint32 {
	if r.bad || r.off+4 > len(r.data) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *artifactReader) u64() uint64 {
	if r.bad || r.off+8 > len(r.data) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

// count reads a u64 section length and rejects anything that cannot
// possibly fit in the remaining payload (each element costs at least one
// byte), bounding every downstream allocation by len(data).
func (r *artifactReader) count() int {
	v := r.u64()
	if r.bad || v > uint64(len(r.data)-r.off) {
		r.fail()
		return 0
	}
	return int(v)
}

func (r *artifactReader) str() string {
	n := int(r.u32())
	if r.bad || n < 0 || r.off+n > len(r.data) {
		r.fail()
		return ""
	}
	s := string(r.data[r.off : r.off+n])
	r.off += n
	return s
}

// align4 skips the zero padding the encoder inserted before a 4-aligned
// section.
func (r *artifactReader) align4() {
	pad := (4 - r.off%4) % 4
	if r.bad || r.off+pad > len(r.data) {
		r.fail()
		return
	}
	r.off += pad
}

// u8Slab returns the next n bytes, aliasing the payload buffer: decoded
// slabs are read-only (Graph is immutable once built), so sharing the
// buffer is safe and saves the copy.
func (r *artifactReader) u8Slab(n int) []byte {
	if r.bad || n < 0 || r.off+n > len(r.data) {
		r.fail()
		return nil
	}
	out := r.data[r.off : r.off+n : r.off+n]
	r.off += n
	return out
}

// i32Slab returns the next n little-endian int32s. On a little-endian host
// with the section 4-aligned in memory — the encoder pads sections so any
// heap-backed buffer qualifies — the slab is a pointer reinterpretation of
// the payload bytes: zero copies, zero allocations, which is what makes a
// disk load O(#slabs) instead of O(bytes). The copying path remains as the
// fallback for big-endian hosts and unaligned buffers (e.g. fuzzed
// subslices).
func (r *artifactReader) i32Slab(n int) []int32 {
	if r.bad || n < 0 || n > (len(r.data)-r.off)/4 {
		r.fail()
		return nil
	}
	if n == 0 {
		return []int32{}
	}
	base := &r.data[r.off]
	if hostLittle && uintptr(unsafe.Pointer(base))%4 == 0 {
		out := unsafe.Slice((*int32)(unsafe.Pointer(base)), n)
		r.off += 4 * n
		return out
	}
	out := make([]int32, n)
	if hostLittle {
		copy(int32Bytes(out), r.data[r.off:r.off+4*n])
	} else {
		for i := range out {
			out[i] = int32(binary.LittleEndian.Uint32(r.data[r.off+4*i:]))
		}
	}
	r.off += 4 * n
	return out
}

// UnmarshalArtifact decodes a payload produced by MarshalArtifact into a
// structural Graph equivalent to the freshly lowered one: same tasks, same
// CSR adjacency, same descriptor table. Labels are not part of the
// structure payload — the graph comes back label-less, and callers that
// render traces install a lazy source via SetLabelSource. The dependency
// counts and roots are recomputed from the adjacency rather than trusted
// from the payload. Any malformed input returns ErrBadArtifact.
//
// The returned Graph aliases data where alignment allows: the caller must
// not modify the payload afterwards. The artifact store reads a fresh
// buffer per load, so it satisfies this for free.
func UnmarshalArtifact(data []byte) (*Graph, error) {
	r := &artifactReader{data: data}
	if v := r.u32(); r.bad || v != EncodingVersion {
		return nil, fmt.Errorf("%w: version", ErrBadArtifact)
	}
	g := &Graph{}
	g.Model = model.Config{
		Name:   r.str(),
		Hidden: int(int64(r.u64())),
		Layers: int(int64(r.u64())),
		SeqLen: int(int64(r.u64())),
		Heads:  int(int64(r.u64())),
		Vocab:  int(int64(r.u64())),
	}
	g.Devices = int(int64(r.u64()))
	nTasks := r.count()
	nEdges := r.count()
	nClasses := r.count()
	nDescs := r.count()
	nLabels := r.count()
	nSources := r.count()
	if r.bad || nTasks < 1 || g.Devices < 1 || g.Devices > nTasks {
		return nil, fmt.Errorf("%w: header", ErrBadArtifact)
	}
	// Sources are either absent (identity mapping: every task labels
	// through its own node, so nLabels must cover the task range) or one
	// per task.
	if nSources != 0 && nSources != nTasks {
		return nil, fmt.Errorf("%w: source count", ErrBadArtifact)
	}
	if nSources == 0 && nLabels != nTasks {
		return nil, fmt.Errorf("%w: label count", ErrBadArtifact)
	}

	g.classes = make([]string, nClasses)
	for i := range g.classes {
		g.classes[i] = r.str()
	}
	if r.bad || nDescs > (len(r.data)-r.off)/33 {
		return nil, fmt.Errorf("%w: classes", ErrBadArtifact)
	}
	g.descs = make([]durDesc, nDescs)
	for i := range g.descs {
		d := &g.descs[i]
		d.kind = descKind(r.u8())
		d.op = profiler.OpKind(int64(r.u64()))
		d.kernel = int32(r.u32())
		d.stageParams = r.u64()
		d.buckets = int32(r.u32())
		d.from = int32(r.u32())
		d.to = int32(r.u32())
		if r.bad {
			return nil, fmt.Errorf("%w: descriptors", ErrBadArtifact)
		}
		switch d.kind {
		case descOperator, descKernel:
			if d.op < 0 || d.op > profiler.WeightUpdate {
				return nil, fmt.Errorf("%w: descriptor operator", ErrBadArtifact)
			}
			if d.kernel < 0 || d.kernel >= maxDescKernel {
				return nil, fmt.Errorf("%w: descriptor kernel", ErrBadArtifact)
			}
		case descAllReduceTP:
		case descAllReduceDP:
			if d.buckets < 1 {
				return nil, fmt.Errorf("%w: descriptor buckets", ErrBadArtifact)
			}
		case descP2P:
			if d.from < 0 || int(d.from) >= g.Devices || d.to < 0 || int(d.to) >= g.Devices {
				return nil, fmt.Errorf("%w: descriptor stages", ErrBadArtifact)
			}
		default:
			return nil, fmt.Errorf("%w: descriptor kind", ErrBadArtifact)
		}
	}

	r.align4()
	if nSources > 0 {
		g.sources = r.i32Slab(nSources)
	}
	g.classOf = r.i32Slab(nTasks)
	g.durIdx = r.i32Slab(nTasks)
	g.slotOf = r.i32Slab(nTasks)
	g.childStart = r.i32Slab(nTasks + 1)
	g.children = r.i32Slab(nEdges)
	if r.bad || r.off != len(r.data) {
		return nil, fmt.Errorf("%w: truncated or trailing bytes", ErrBadArtifact)
	}
	// Labels live in their own artifact (see MarshalLabels); the decoded
	// graph records only their count, and composes none until a label
	// source is installed (SetLabelSource) and a trace asks for one.
	g.nLabels = nLabels

	// Index validation: everything the replay loop, Bind, and TaskLabel
	// will dereference must be in range.
	if g.childStart[0] != 0 || int(g.childStart[nTasks]) != nEdges {
		return nil, fmt.Errorf("%w: adjacency bounds", ErrBadArtifact)
	}
	for i := 0; i < nTasks; i++ {
		if g.childStart[i] > g.childStart[i+1] {
			return nil, fmt.Errorf("%w: adjacency order", ErrBadArtifact)
		}
		if uint32(g.classOf[i]) >= uint32(nClasses) ||
			uint32(g.durIdx[i]) >= uint32(nDescs) ||
			uint32(g.slotOf[i]) >= uint32(2*g.Devices) {
			return nil, fmt.Errorf("%w: task indices", ErrBadArtifact)
		}
	}
	for _, s := range g.sources {
		if uint32(s) >= uint32(nLabels) {
			return nil, fmt.Errorf("%w: task source", ErrBadArtifact)
		}
	}
	// Rebuild the derived slabs (indeg, roots) instead of trusting them
	// from disk: recomputing from the validated adjacency guarantees
	// internal consistency, and the recomputation doubles as the edge-target
	// bounds check. No task arena is materialized — a structural graph is
	// its slabs (see Graph), so the artifact loads with O(#slabs) work plus
	// these validation scans.
	g.indeg = make([]int32, nTasks)
	for _, c := range g.children {
		if uint32(c) >= uint32(nTasks) {
			return nil, fmt.Errorf("%w: edge target", ErrBadArtifact)
		}
		g.indeg[c]++
	}
	for i := 0; i < nTasks; i++ {
		if g.indeg[i] == 0 {
			g.roots = append(g.roots, int32(i))
		}
	}
	if len(g.roots) == 0 {
		return nil, fmt.Errorf("%w: no roots", ErrBadArtifact)
	}
	g.descCnt = countDescTasks(g.descs, g.durIdx)
	return g, nil
}
