package taskgraph

import (
	"reflect"
	"testing"

	"vtrain/internal/comm"
	"vtrain/internal/gpu"
	"vtrain/internal/hw"
	"vtrain/internal/opgraph"
	"vtrain/internal/parallel"
	"vtrain/internal/profiler"
)

// TestOperatorLowerFastPathMatchesBuilder pins the operator-level fast path
// to the builder-based reference lowering: every slice of the structural
// graph — tasks, CSR adjacency, class and descriptor tables — must match
// exactly, across schedules, interleaving, uneven layer splits, and
// recomputation.
func TestOperatorLowerFastPathMatchesBuilder(t *testing.T) {
	c := hw.PaperCluster(8)
	prof := profiler.New(gpu.NewDevice(c.Node.GPU))
	plans := []parallel.Plan{
		{Tensor: 1, Data: 1, Pipeline: 1, MicroBatch: 1, GlobalBatch: 2},
		{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 8, GradientBuckets: 2},
		{Tensor: 1, Data: 2, Pipeline: 4, MicroBatch: 1, GlobalBatch: 8, Schedule: parallel.GPipe},
		{Tensor: 2, Data: 1, Pipeline: 2, MicroBatch: 2, GlobalBatch: 16, Recompute: true},
		{Tensor: 1, Data: 1, Pipeline: 2, MicroBatch: 1, GlobalBatch: 8, VirtualStages: 2},
	}
	for _, plan := range plans {
		og, err := opgraph.Build(tinyModel(), plan, c)
		if err != nil {
			t.Fatal(err)
		}
		fast := lowerOperatorLevel(og)
		ref := lowerBuilder(og, prof, OperatorLevel)

		if got, want := fast.NumTasks(), ref.NumTasks(); got != want {
			t.Fatalf("plan %s: %d tasks, want %d", plan, got, want)
		}
		check := func(name string, got, want any) {
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("plan %s: %s = %v, want %v", plan, name, got, want)
			}
		}
		check("Devices", fast.Devices, ref.Devices)
		check("Model", fast.Model, ref.Model)
		check("childStart", fast.childStart, ref.childStart)
		check("children", fast.children, ref.children)
		check("indeg", fast.indeg, ref.indeg)
		check("roots", fast.roots, ref.roots)
		check("classes", fast.classes, ref.classes)
		check("classOf", fast.classOf, ref.classOf)
		check("descs", fast.descs, ref.descs)
		check("durIdx", fast.durIdx, ref.durIdx)
		check("slotOf", fast.slotOf, ref.slotOf)
		check("sources", fast.sources, ref.sources)
		check("labels", fast.labels, ref.labels)
		if fast.labels == nil {
			t.Fatalf("plan %s: fast path lost the label records", plan)
		}
	}
}

// TestBindStatelessMatchesStateful pins the stateless descriptor-level
// communication pricing to the per-task path: a stateless timer hidden
// behind a plain CommTimer wrapper (forcing the per-task path) must produce
// bit-identical tables.
func TestBindStatelessMatchesStateful(t *testing.T) {
	c := hw.PaperCluster(8)
	prof := profiler.New(gpu.NewDevice(c.Node.GPU))
	plan := parallel.Plan{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 8, GradientBuckets: 2}
	og, err := opgraph.Build(tinyModel(), plan, c)
	if err != nil {
		t.Fatal(err)
	}
	g := Lower(og, prof, OperatorLevel)

	cm := comm.NewModel(c)
	if _, ok := CommTimer(cm).(StatelessCommTimer); !ok {
		t.Fatal("comm model should be stateless")
	}
	fast := g.Bind(prof, cm, plan, c)
	slow := g.Bind(prof, hideStateless{cm}, plan, c)
	for i := 0; i < g.NumTasks(); i++ {
		fd, ff := fast.taskValues(i)
		sd, sf := slow.taskValues(i)
		if fd != sd || ff != sf {
			t.Fatalf("task %d: stateless bind (%g, %g) != per-task bind (%g, %g)",
				i, fd, ff, sd, sf)
		}
	}
}

// hideStateless strips the StatelessComm marker from a timer, forcing Bind
// onto the per-task communication path.
type hideStateless struct{ cm StatelessCommTimer }

func (h hideStateless) AllReduce(bytes float64, n int, intraNode bool) float64 {
	return h.cm.AllReduce(bytes, n, intraNode)
}
func (h hideStateless) SendRecv(bytes float64, sameNode bool) float64 {
	return h.cm.SendRecv(bytes, sameNode)
}
