package taskgraph

import (
	"math/rand"
	"testing"

	"vtrain/internal/comm"
	"vtrain/internal/gpu"
	"vtrain/internal/hw"
	"vtrain/internal/parallel"
	"vtrain/internal/profiler"
)

// TestReplayContendedNilMatchesReplay pins the equivalence lock of the
// contention fidelity level: with a nil ContentionTable, every contended
// entry point — sequential, trace, and batch — performs bit-identical float
// operations to its ideal twin, so the contention-off path is exactly the
// pre-knob simulator.
func TestReplayContendedNilMatchesReplay(t *testing.T) {
	plans := []parallel.Plan{
		{Tensor: 1, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 16, GradientBuckets: 2},
		{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 16, GradientBuckets: 2},
		{Tensor: 4, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 16, GradientBuckets: 2},
	}
	g, tables := batchFixture(t, plans)

	for i, tbl := range tables {
		want, err := g.Replay(tbl)
		if err != nil {
			t.Fatal(err)
		}
		got, err := g.ReplayContended(tbl, nil)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, i, got, want)

		wantRes, wantSpans, err := g.ReplayTrace(tbl)
		if err != nil {
			t.Fatal(err)
		}
		gotRes, gotSpans, err := g.ReplayTraceContended(tbl, nil)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, i, gotRes, wantRes)
		if len(gotSpans) != len(wantSpans) {
			t.Fatalf("table %d: %d contended spans != %d ideal", i, len(gotSpans), len(wantSpans))
		}
		for s := range wantSpans {
			if gotSpans[s] != wantSpans[s] {
				t.Fatalf("table %d span %d: %+v != %+v", i, s, gotSpans[s], wantSpans[s])
			}
		}
	}

	want, err := g.ReplayBatch(tables)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.ReplayBatchContended(tables, nil)
	if err != nil {
		t.Fatal(err)
	}
	for lane := range want {
		requireIdentical(t, lane, got[lane], want[lane])
	}
	// A non-nil cts slice whose entries are all nil is the same contract
	// per lane.
	got, err = g.ReplayBatchContended(tables, make([]*ContentionTable, len(tables)))
	if err != nil {
		t.Fatal(err)
	}
	for lane := range want {
		requireIdentical(t, lane, got[lane], want[lane])
	}
	if _, err := g.ReplayBatchContended(tables, make([]*ContentionTable, 1)); err == nil {
		t.Fatal("mismatched cts length: expected an error")
	}
}

// TestContendedBatchMatchesSequential pins the batch contract under
// contention: each lane of ReplayBatchContended is bit-identical to a
// sequential ReplayContended of the same (table, contention table) pair —
// occupancy ledgers are per lane and never leak across lanes.
func TestContendedBatchMatchesSequential(t *testing.T) {
	c := hw.PaperCluster(8)
	plans := []parallel.Plan{
		{Tensor: 1, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 16, GradientBuckets: 2},
		{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 16, GradientBuckets: 2},
		{Tensor: 4, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 16, GradientBuckets: 2},
		{Tensor: 8, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 16, GradientBuckets: 2},
	}
	g, tables := batchFixture(t, plans)
	cts := make([]*ContentionTable, len(plans))
	for i, plan := range plans {
		cts[i] = g.BindContention(plan, c, tables[i])
		if cts[i] == nil {
			t.Fatalf("plan %d: BindContention returned nil for a structural graph", i)
		}
	}
	// Leave one lane ideal: mixed batches must stay well-defined.
	cts[1] = nil

	want := make([]Result, len(tables))
	for i, tbl := range tables {
		res, err := g.ReplayContended(tbl, cts[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	// Width 16 cycles the four (table, contention table) pairs: lanes are
	// independent, so duplicated lanes must reproduce the same sequential
	// result — and a full-width batch exercises the per-lane ledger pool at
	// the widest fan-out the core batching layer emits.
	for _, k := range []int{1, 4, 16} {
		wideTables := make([]*DurationTable, k)
		wideCts := make([]*ContentionTable, k)
		for i := range wideTables {
			wideTables[i] = tables[i%len(tables)]
			wideCts[i] = cts[i%len(cts)]
		}
		got, err := g.ReplayBatchContended(wideTables, wideCts)
		if err != nil {
			t.Fatalf("width %d: %v", k, err)
		}
		for lane := 0; lane < k; lane++ {
			requireIdentical(t, lane, got[lane], want[lane%len(want)])
		}
	}
}

// TestContentionLedgerExactCounts pins the tentpole's exactness contract:
// the epoch-bucketed occupancy ledger returns the same overlap count as a
// flat scan over every recorded interval, for any interleaving of inserts
// and queries — including boundary-touching intervals (end == query start),
// times beyond the epoch cap, zero times, and pooled reuse across resets
// with different epoch widths.
func TestContentionLedgerExactCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type iv struct{ start, end float64 }
	for round := 0; round < 6; round++ {
		// Vary the width across rounds: fine widths force deep epochs (and
		// the clamp at contEpochCap), coarse widths force long spill chains.
		invW := []float64{1e-4, 1, 64, 1e9, 1e12, 0.25}[round]
		ct := &ContentionTable{classes: 3, invW: invW}
		cs := getContState(ct)
		ref := make([][]iv, ct.classes)
		for op := 0; op < 4000; op++ {
			class := rng.Intn(ct.classes)
			start := rng.Float64() * 100
			var end float64
			switch rng.Intn(4) {
			case 0:
				end = start + rng.Float64()*0.01 // short flow
			case 1:
				end = start + rng.Float64()*50 // long flow
			case 2:
				end = start + 1e-12 // near-degenerate
			default:
				// Reuse a recorded boundary so equal-endpoint comparisons
				// (overlap is half-open: [s, e) vs [s2, e2)) are exercised.
				if r := ref[class]; len(r) > 0 {
					prev := r[rng.Intn(len(r))]
					start, end = prev.end, prev.end+rng.Float64()*5
				} else {
					end = start + 1
				}
			}
			want := 0
			for _, p := range ref[class] {
				if p.start < end && p.end > start {
					want++
				}
			}
			if got := cs.overlaps(class, start, end); got != want {
				t.Fatalf("round %d (invW=%g) op %d: overlaps(%d, %g, %g) = %d, want %d (n=%d)",
					round, invW, op, class, start, end, got, want, len(ref[class]))
			}
			if rng.Intn(3) > 0 {
				cs.record(class, start, end)
				ref[class] = append(ref[class], iv{start, end})
			}
		}
		// Release and reacquire: the pooled state must come back clean.
		putContState(cs)
		cs = getContState(ct)
		for class := 0; class < ct.classes; class++ {
			if got := cs.overlaps(class, 0, 1e18); got != 0 {
				t.Fatalf("round %d: pooled ledger not reset, class %d reports %d overlaps", round, class, got)
			}
		}
		putContState(cs)
	}
}

// TestContStateResetAcrossClassCounts pins pooled-state reuse across
// clusters of different sizes (cluster sweeps, the warm server pool share
// one contStatePool). Growing the ledger by append can leave cap > len, so
// a later reset with len < classes <= cap must reslice within capacity —
// the 10 -> 13 -> 15 sequence used to compute a negative make length and
// panic with "makeslice: len out of range".
func TestContStateResetAcrossClassCounts(t *testing.T) {
	cs := new(contState)
	for _, classes := range []int{10, 13, 15, 4, 11, 64, 20} {
		ct := &ContentionTable{classes: classes, invW: 1}
		cs.reset(ct)
		if len(cs.led) < classes {
			t.Fatalf("classes=%d: ledger len %d after reset", classes, len(cs.led))
		}
		for class := 0; class < classes; class++ {
			if got := cs.overlaps(class, 0, 1e18); got != 0 {
				t.Fatalf("classes=%d: class %d not reset, reports %d overlaps", classes, class, got)
			}
			cs.record(class, float64(class), float64(class)+2)
			if got := cs.overlaps(class, float64(class)+1, float64(class)+3); got != 1 {
				t.Fatalf("classes=%d: class %d overlaps = %d, want 1", classes, class, got)
			}
		}
	}
}

// TestContentionMonotone is the tentpole's property test: adding
// link-sharing concurrent collectives never decreases any comm task's
// duration. A hand-built graph of independent data-parallel All-Reduces on
// one node's NVSwitch pops them in ID order, so task i overlaps exactly the
// i flows recorded before it and its derate factor is 1 + NVShare*i —
// nondecreasing in concurrency, and never below the ideal duration.
func TestContentionMonotone(t *testing.T) {
	c := hw.PaperCluster(8)
	const stages = 4
	b := NewBuilder(stages)
	desc := durDesc{kind: descAllReduceDP, stageParams: 1 << 20, buckets: 1}
	for dev := 0; dev < stages; dev++ {
		b.addTaskDesc(Task{Device: dev, Stream: CommStream, Class: "AllReduceDP"}, desc)
	}
	g := b.Build()

	// Data width 2 at stride 2 on 8-GPU nodes: the group is node-local, so
	// every stage's collective shares node 0's NVSwitch.
	plan := parallel.Plan{Tensor: 1, Data: 2, Pipeline: stages, MicroBatch: 1, GlobalBatch: 2 * stages}
	cm := comm.NewModel(c)
	tbl := g.Bind(nil, cm, plan, c)
	defer tbl.Release()
	ct := g.BindContention(plan, c, tbl)
	if ct == nil {
		t.Fatal("BindContention returned nil for a descriptor graph")
	}

	base := tbl.Duration(0)
	if base <= 0 {
		t.Fatalf("ideal All-Reduce duration %v, want > 0", base)
	}
	_, spans, err := g.ReplayTraceContended(tbl, ct)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != stages {
		t.Fatalf("got %d spans, want %d", len(spans), stages)
	}
	cg := comm.NewCongestion(c)
	prev := 0.0
	for i, sp := range spans {
		dur := sp.End - sp.Start
		if dur < base {
			t.Fatalf("span %d: contended duration %v < ideal %v", i, dur, base)
		}
		if dur < prev {
			t.Fatalf("span %d: duration %v decreased below span %d's %v under growing concurrency", i, dur, i-1, prev)
		}
		if want := base * cg.Derate(i, 0, 0); dur != want {
			t.Fatalf("span %d: duration %v, want base*(1+NVShare*%d) = %v", i, dur, i, want)
		}
		prev = dur
	}

	// The same property must hold on a real lowered graph: every comm span
	// is at least its ideal twin, compute spans are untouched, and the
	// iteration time never shrinks.
	plan = parallel.Plan{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 16, GradientBuckets: 2}
	bg := lower(t, plan, OperatorLevel)
	ideal, idealSpans, err := bg.g.ReplayTrace(bg.tbl)
	if err != nil {
		t.Fatal(err)
	}
	lct := bg.g.BindContention(plan, c, bg.tbl)
	cont, contSpans, err := bg.g.ReplayTraceContended(bg.tbl, lct)
	if err != nil {
		t.Fatal(err)
	}
	if cont.IterTime < ideal.IterTime {
		t.Fatalf("contended IterTime %v < ideal %v", cont.IterTime, ideal.IterTime)
	}
	// Busy seconds accumulate the replayed durations directly, so the
	// comparison is exact: compute streams are untouched, comm streams only
	// ever grow.
	for d := range ideal.ComputeBusy {
		if cont.ComputeBusy[d] != ideal.ComputeBusy[d] {
			t.Fatalf("device %d: compute busy changed %v -> %v", d, ideal.ComputeBusy[d], cont.ComputeBusy[d])
		}
		if cont.CommBusy[d] < ideal.CommBusy[d] {
			t.Fatalf("device %d: comm busy %v < ideal %v", d, cont.CommBusy[d], ideal.CommBusy[d])
		}
	}
	if len(contSpans) != len(idealSpans) {
		t.Fatalf("%d contended spans != %d ideal", len(contSpans), len(idealSpans))
	}
	// Span durations are reconstructed as End-Start, so shifted start times
	// cost up to an ulp; compare with a relative tolerance.
	const tol = 1e-12
	for i := range idealSpans {
		id, cd := idealSpans[i].End-idealSpans[i].Start, contSpans[i].End-contSpans[i].Start
		if cd < id*(1-tol) {
			t.Fatalf("span %d (%v stream): contended duration %v < ideal %v", i, contSpans[i].Stream, cd, id)
		}
	}
}

// TestHierarchicalAllReduceParticipants pins the inter-node participant
// count of hierarchical collectives (the Eq. 1 fix): a data-parallel group
// of 8 ranks spread 4-per-node over 2 nodes reduces node-local first, so
// the inter-node ring phase sees 2 participants — the nodes — not 8.
func TestHierarchicalAllReduceParticipants(t *testing.T) {
	c := hw.PaperCluster(2)
	c.Node.GPUsPerNode = 4

	const stageParams = 1 << 22
	b := NewBuilder(1)
	b.addTaskDesc(Task{Device: 0, Stream: CommStream, Class: "AllReduceDP"},
		durDesc{kind: descAllReduceDP, stageParams: stageParams, buckets: 1})
	g := b.Build()

	plan := parallel.Plan{Tensor: 1, Data: 8, Pipeline: 1, MicroBatch: 1, GlobalBatch: 8}
	m := comm.NewModel(c)
	tbl := g.Bind(nil, m, plan, c)
	defer tbl.Release()

	want := m.AllReduceInter(2*float64(stageParams), 2)
	if got := tbl.Duration(0); got != want {
		t.Fatalf("2-node x 4-rank gradient All-Reduce priced %v, want the 2-participant inter-node ring %v (got n=ranks? %v)",
			got, want, m.AllReduceInter(2*float64(stageParams), 8))
	}
	if want >= m.AllReduceInter(2*float64(stageParams), 8) {
		t.Fatal("sanity: the 2-participant ring should be cheaper than the 8-participant one")
	}

	// The node-count arithmetic itself, over the corner cases: intra-node
	// groups, exact node multiples, and t > gpn (each member on its own
	// node, capped at the member count).
	cases := []struct {
		t, d, gpn string
		plan      parallel.Plan
		gpnVal    int
		wantN     int
		wantIntra bool
		dp        bool
	}{
		{plan: parallel.Plan{Tensor: 4, Data: 1}, gpnVal: 8, wantN: 4, wantIntra: true},
		{plan: parallel.Plan{Tensor: 16, Data: 1}, gpnVal: 8, wantN: 2, wantIntra: false},
		{plan: parallel.Plan{Tensor: 1, Data: 8}, gpnVal: 8, wantN: 8, wantIntra: true, dp: true},
		{plan: parallel.Plan{Tensor: 4, Data: 8}, gpnVal: 8, wantN: 4, wantIntra: false, dp: true},
		{plan: parallel.Plan{Tensor: 16, Data: 4}, gpnVal: 8, wantN: 4, wantIntra: false, dp: true},
	}
	for _, tc := range cases {
		var n int
		var intra bool
		if tc.dp {
			n, intra = allReduceDPArgs(tc.plan, tc.gpnVal)
		} else {
			n, intra = allReduceTPArgs(tc.plan, tc.gpnVal)
		}
		if n != tc.wantN || intra != tc.wantIntra {
			t.Errorf("t=%d d=%d gpn=%d (dp=%v): got (%d, %v), want (%d, %v)",
				tc.plan.Tensor, tc.plan.Data, tc.gpnVal, tc.dp, n, intra, tc.wantN, tc.wantIntra)
		}
	}
}

// noMarkerTimer wraps comm.Calibrated while hiding its StatelessComm
// marker, reproducing the pre-fix binding behavior: without the marker,
// Bind prices every communication task individually in task-ID order.
type noMarkerTimer struct{ c comm.Calibrated }

func (w noMarkerTimer) AllReduce(bytes float64, n int, intraNode bool) float64 {
	return w.c.AllReduce(bytes, n, intraNode)
}
func (w noMarkerTimer) SendRecv(bytes float64, sameNode bool) float64 {
	return w.c.SendRecv(bytes, sameNode)
}

// TestCalibratedStatelessEquivalence pins the comm.Calibrated marker fix:
// the calibrated timer is a pure function of its fixed correction factors,
// so descriptor-granularity binding (the marker path) must price every task
// exactly like the per-task fallback — and therefore replay identically.
func TestCalibratedStatelessEquivalence(t *testing.T) {
	c := hw.PaperCluster(8)
	plan := parallel.Plan{Tensor: 4, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 16, GradientBuckets: 2}
	bg := lower(t, plan, OperatorLevel)
	prof := profiler.New(gpu.NewDevice(c.Node.GPU))
	cal := comm.DefaultCalibration(comm.NewModel(c), plan.Tensor)

	fast := bg.g.Bind(prof, cal, plan, c)
	defer fast.Release()
	slow := bg.g.Bind(prof, noMarkerTimer{c: cal}, plan, c)
	defer slow.Release()

	if !fast.byDesc {
		t.Fatal("Calibrated must bind at descriptor granularity (StatelessComm marker missing?)")
	}
	if slow.byDesc {
		t.Fatal("the marker-less wrapper must take the per-task fallback")
	}
	for id := 0; id < bg.g.NumTasks(); id++ {
		if fast.Duration(id) != slow.Duration(id) {
			t.Fatalf("task %d: descriptor binding %v != per-task binding %v", id, fast.Duration(id), slow.Duration(id))
		}
	}
	a, err := bg.g.Replay(fast)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bg.g.Replay(slow)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, 0, a, b)
}
