package taskgraph

import (
	"fmt"

	"vtrain/internal/opgraph"
)

// lowerOperatorLevel is the operator-granularity lowering fast path. At
// OperatorLevel every operator-graph node lowers to exactly one task, so the
// task graph is isomorphic to the operator graph: task id == node id, the
// children CSR is the transpose of the dependency CSR, and indeg[i] is
// len(Deps(i)). That lets the lowering write the graph's flat slices
// directly — no builder, no edge list, no per-task map lookups — while
// producing a Graph identical (task for task, edge for edge, descriptor for
// descriptor) to what the builder path would build:
//
//   - children of task f are filled by scanning nodes in ascending id and
//     appending each to its dependencies' child lists, which reproduces the
//     builder's edge-insertion order (edges were emitted per consumer node
//     in ascending id, per dependency in Deps order);
//   - classes and descriptors intern in first-appearance order, like the
//     builder's maps — but through tiny per-kind caches (the operator kinds
//     are a dense enum) with a map fallback only for the rare
//     parameter-bearing descriptors.
func lowerOperatorLevel(og *opgraph.Graph) *Graph {
	n := og.NumNodes()
	g := &Graph{
		Devices: og.Stages,
		Model:   og.Model,
		labels:  og.LabelTable(),
	}
	g.classOf = make([]int32, n)
	g.durIdx = make([]int32, n)
	g.indeg = make([]int32, n)
	g.slotOf = make([]int32, n)
	g.childStart = make([]int32, n+1)

	// Per-kind intern caches, -1 = not seen. opClass/opDesc cover the dense
	// profiler.OpKind range; kindClass covers the communication node kinds.
	// Parameter-bearing descriptors (WeightUpdate, AllReduceDP, P2P — a
	// handful per graph) fall back to a map keyed by the full descriptor.
	var opClass, opDesc [16]int32
	var kindClass [8]int32
	for i := range opClass {
		opClass[i], opDesc[i] = -1, -1
	}
	for i := range kindClass {
		kindClass[i] = -1
	}
	tpDesc := int32(-1)
	var descID map[durDesc]int32

	internClass := func(name string) int32 {
		for ci, c := range g.classes {
			if c == name {
				return int32(ci)
			}
		}
		g.classes = append(g.classes, name)
		return int32(len(g.classes) - 1)
	}
	internDesc := func(d durDesc) int32 {
		if di, ok := descID[d]; ok {
			return di
		}
		if descID == nil {
			descID = make(map[durDesc]int32)
		}
		di := int32(len(g.descs))
		g.descs = append(g.descs, d)
		descID[d] = di
		return di
	}

	nEdges := 0
	for id := 0; id < n; id++ {
		nd := og.Node(id)
		deps := og.Deps(id)
		nEdges += len(deps)
		g.indeg[id] = int32(len(deps))
		for _, d := range deps {
			g.childStart[d+1]++
		}

		// Task id lowers from node id (the isomorphism): Source is the
		// identity mapping, which the Graph encodes as a nil sources slab.
		stream := ComputeStream
		switch nd.Kind {
		case opgraph.Compute:
			op := int(nd.Op)
			ci := int32(-1)
			if op >= 0 && op < len(opClass) {
				ci = opClass[op]
			}
			if ci < 0 {
				ci = internClass(nd.Op.String())
				if op >= 0 && op < len(opClass) {
					opClass[op] = ci
				}
			}
			di := int32(-1)
			if nd.StageParams == 0 && op >= 0 && op < len(opDesc) {
				di = opDesc[op]
			}
			if di < 0 {
				di = internDesc(durDesc{kind: descOperator, op: nd.Op, stageParams: nd.StageParams})
				if nd.StageParams == 0 && op >= 0 && op < len(opDesc) {
					opDesc[op] = di
				}
			}
			g.classOf[id], g.durIdx[id] = ci, di
		case opgraph.AllReduceTP:
			stream = CommStream
			ci := kindClass[nd.Kind]
			if ci < 0 {
				ci = internClass(nd.Kind.String())
				kindClass[nd.Kind] = ci
			}
			if tpDesc < 0 {
				tpDesc = internDesc(durDesc{kind: descAllReduceTP})
			}
			g.classOf[id], g.durIdx[id] = ci, tpDesc
		case opgraph.AllReduceDP:
			stream = CommStream
			ci := kindClass[nd.Kind]
			if ci < 0 {
				ci = internClass(nd.Kind.String())
				kindClass[nd.Kind] = ci
			}
			di := internDesc(durDesc{kind: descAllReduceDP, stageParams: nd.StageParams, buckets: nd.Buckets})
			g.classOf[id], g.durIdx[id] = ci, di
		case opgraph.P2P:
			stream = CommStream
			ci := kindClass[nd.Kind]
			if ci < 0 {
				ci = internClass(nd.Kind.String())
				kindClass[nd.Kind] = ci
			}
			di := internDesc(durDesc{kind: descP2P, from: nd.FromStage, to: nd.Stage})
			g.classOf[id], g.durIdx[id] = ci, di
		default:
			panic(fmt.Sprintf("taskgraph: unknown node kind %v", nd.Kind))
		}
		g.slotOf[id] = 2*nd.Stage + int32(stream)
	}

	for i := 0; i < n; i++ {
		g.childStart[i+1] += g.childStart[i]
	}
	g.children = make([]int32, nEdges)
	cursor := make([]int32, n)
	copy(cursor, g.childStart[:n])
	for id := 0; id < n; id++ {
		for _, d := range og.Deps(id) {
			g.children[cursor[d]] = int32(id)
			cursor[d]++
		}
	}
	for i := 0; i < n; i++ {
		if g.indeg[i] == 0 {
			g.roots = append(g.roots, int32(i))
		}
	}
	g.descCnt = countDescTasks(g.descs, g.durIdx)
	return g
}
