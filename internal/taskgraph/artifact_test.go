package taskgraph

import (
	"bytes"
	"reflect"
	"testing"

	"vtrain/internal/comm"
	"vtrain/internal/gpu"
	"vtrain/internal/hw"
	"vtrain/internal/opgraph"
	"vtrain/internal/parallel"
	"vtrain/internal/profiler"
)

// artifactPlans exercises every structural feature the encoding must carry:
// schedules, interleaving, gradient buckets, recomputation.
func artifactPlans() []parallel.Plan {
	return []parallel.Plan{
		{Tensor: 1, Data: 1, Pipeline: 1, MicroBatch: 1, GlobalBatch: 2},
		{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 8, GradientBuckets: 2},
		{Tensor: 1, Data: 2, Pipeline: 4, MicroBatch: 1, GlobalBatch: 8, Schedule: parallel.GPipe},
		{Tensor: 2, Data: 1, Pipeline: 2, MicroBatch: 2, GlobalBatch: 16, Recompute: true},
		{Tensor: 1, Data: 1, Pipeline: 2, MicroBatch: 1, GlobalBatch: 8, VirtualStages: 2},
	}
}

// TestArtifactRoundTrip pins the on-disk encoding to the in-memory graph:
// marshal → unmarshal must reproduce the freshly lowered graph exactly
// (reflect.DeepEqual over every slab), at both fidelities, and the decoded
// graph must bind, replay, and label identically.
func TestArtifactRoundTrip(t *testing.T) {
	c := hw.PaperCluster(8)
	prof := profiler.New(gpu.NewDevice(c.Node.GPU))
	cm := comm.NewModel(c)
	for _, fid := range []Fidelity{TaskLevel, OperatorLevel} {
		for _, plan := range artifactPlans() {
			og, err := opgraph.Build(tinyModel(), plan, c)
			if err != nil {
				t.Fatal(err)
			}
			g := Lower(og, prof, fid)
			data, err := g.MarshalArtifact()
			if err != nil {
				t.Fatalf("fid %v plan %s: marshal: %v", fid, plan, err)
			}
			again, err := g.MarshalArtifact()
			if err != nil || !bytes.Equal(data, again) {
				t.Fatalf("fid %v plan %s: marshal is not deterministic", fid, plan)
			}
			got, err := UnmarshalArtifact(data)
			if err != nil {
				t.Fatalf("fid %v plan %s: unmarshal: %v", fid, plan, err)
			}

			// Labels travel as their own payload; round-trip them too, then
			// graft the decoded table onto the decoded graph so the final
			// DeepEqual covers every slab of both payloads.
			ldata, err := g.MarshalLabels()
			if err != nil {
				t.Fatalf("fid %v plan %s: marshal labels: %v", fid, plan, err)
			}
			lagain, err := g.MarshalLabels()
			if err != nil || !bytes.Equal(ldata, lagain) {
				t.Fatalf("fid %v plan %s: label marshal is not deterministic", fid, plan)
			}
			lt, err := UnmarshalLabels(ldata)
			if err != nil {
				t.Fatalf("fid %v plan %s: unmarshal labels: %v", fid, plan, err)
			}
			if !reflect.DeepEqual(lt, g.labels) {
				t.Fatalf("fid %v plan %s: decoded labels differ from lowered labels", fid, plan)
			}
			if got.labels != nil || got.LabelCount() != g.LabelCount() {
				t.Fatalf("fid %v plan %s: decoded graph label count %d (resident %v), want %d lazy",
					fid, plan, got.LabelCount(), got.labels != nil, g.LabelCount())
			}
			got.labels, got.nLabels = lt, 0
			if !reflect.DeepEqual(got, g) {
				t.Fatalf("fid %v plan %s: decoded graph differs from lowered graph", fid, plan)
			}

			ref, err := g.Replay(g.Bind(prof, cm, plan, c))
			if err != nil {
				t.Fatal(err)
			}
			res, err := got.Replay(got.Bind(prof, cm, plan, c))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res, ref) {
				t.Fatalf("fid %v plan %s: replay of decoded graph = %+v, want %+v", fid, plan, res, ref)
			}
			for i := 0; i < g.NumTasks(); i++ {
				if got.TaskLabel(i) != g.TaskLabel(i) {
					t.Fatalf("fid %v plan %s: task %d label %q, want %q",
						fid, plan, i, got.TaskLabel(i), g.TaskLabel(i))
				}
			}
		}
	}
}

// TestArtifactContentionEquivalence locks the contention fidelity level
// over the persistent artifact tier: a disk-decoded structural graph must
// produce a BindContention table and a contended replay byte-identical to
// the freshly lowered graph's. The table comparison covers every
// topology-derived field (kind/span/fromNode/toNode, stride/gpn/classes,
// epoch width) — any descriptor field the codec failed to round-trip would
// surface here as a diverging classification or a diverging report.
func TestArtifactContentionEquivalence(t *testing.T) {
	c := hw.PaperCluster(8)
	prof := profiler.New(gpu.NewDevice(c.Node.GPU))
	cm := comm.NewModel(c)
	for _, fid := range []Fidelity{TaskLevel, OperatorLevel} {
		for _, plan := range artifactPlans() {
			og, err := opgraph.Build(tinyModel(), plan, c)
			if err != nil {
				t.Fatal(err)
			}
			g := Lower(og, prof, fid)
			data, err := g.MarshalArtifact()
			if err != nil {
				t.Fatalf("fid %v plan %s: marshal: %v", fid, plan, err)
			}
			dec, err := UnmarshalArtifact(data)
			if err != nil {
				t.Fatalf("fid %v plan %s: unmarshal: %v", fid, plan, err)
			}

			tbl := g.Bind(prof, cm, plan, c)
			dtbl := dec.Bind(prof, cm, plan, c)
			ct := g.BindContention(plan, c, tbl)
			dct := dec.BindContention(plan, c, dtbl)
			if ct == nil || dct == nil {
				t.Fatalf("fid %v plan %s: BindContention returned nil (fresh %v, decoded %v)",
					fid, plan, ct == nil, dct == nil)
			}
			if !reflect.DeepEqual(ct, dct) {
				t.Fatalf("fid %v plan %s: decoded contention table differs from fresh:\n%+v\nvs\n%+v",
					fid, plan, dct, ct)
			}

			ref, refSpans, err := g.ReplayTraceContended(tbl, ct)
			if err != nil {
				t.Fatal(err)
			}
			got, gotSpans, err := dec.ReplayTraceContended(dtbl, dct)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("fid %v plan %s: contended replay of decoded graph = %+v, want %+v",
					fid, plan, got, ref)
			}
			for s := range refSpans {
				if gotSpans[s].Device != refSpans[s].Device ||
					gotSpans[s].Stream != refSpans[s].Stream ||
					gotSpans[s].Start != refSpans[s].Start ||
					gotSpans[s].End != refSpans[s].End {
					t.Fatalf("fid %v plan %s span %d: decoded %+v, fresh %+v",
						fid, plan, s, gotSpans[s], refSpans[s])
				}
			}
			tbl.Release()
			dtbl.Release()
		}
	}
}

// TestLazyLabelSource pins the deferred label path a disk-loaded graph
// takes: TaskLabel must fetch the table through the installed source
// exactly once, labels must match the lowered graph's, and a source that
// fails (returns nil) must degrade to empty labels, never panic.
func TestLazyLabelSource(t *testing.T) {
	c := hw.PaperCluster(8)
	prof := profiler.New(gpu.NewDevice(c.Node.GPU))
	plan := artifactPlans()[1]
	og, err := opgraph.Build(tinyModel(), plan, c)
	if err != nil {
		t.Fatal(err)
	}
	g := Lower(og, prof, OperatorLevel)
	data, err := g.MarshalArtifact()
	if err != nil {
		t.Fatal(err)
	}
	ldata, err := g.MarshalLabels()
	if err != nil {
		t.Fatal(err)
	}

	got, err := UnmarshalArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	got.SetLabelSource(func() *opgraph.LabelTable {
		calls++
		lt, err := UnmarshalLabels(ldata)
		if err != nil {
			t.Fatal(err)
		}
		return lt
	})
	for i := 0; i < g.NumTasks(); i++ {
		if got.TaskLabel(i) != g.TaskLabel(i) {
			t.Fatalf("task %d label %q, want %q", i, got.TaskLabel(i), g.TaskLabel(i))
		}
	}
	if calls != 1 {
		t.Fatalf("label source ran %d times, want 1", calls)
	}

	broken, err := UnmarshalArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	broken.SetLabelSource(func() *opgraph.LabelTable { return nil })
	if lbl := broken.TaskLabel(0); lbl != "" {
		t.Fatalf("label with failed source = %q, want empty", lbl)
	}
}

// TestMarshalArtifactRejectsHandBuilt: hand-built graphs carry eager
// durations and label closures the encoding cannot represent; marshaling
// one must error rather than silently drop information.
func TestMarshalArtifactRejectsHandBuilt(t *testing.T) {
	b := NewBuilder(1)
	b.AddTask(Task{Duration: 1, Class: "X"})
	g := b.Build()
	if _, err := g.MarshalArtifact(); err == nil {
		t.Fatal("marshaling a hand-built graph should fail")
	}
}

// FuzzUnmarshalArtifact throws mutated encodings at the decoder: whatever
// the bytes, it must return a graph or ErrBadArtifact — never panic and
// never hang on an attacker-chosen allocation size. Seeded with real
// encodings so mutations explore the format's interior, not just the
// header.
func FuzzUnmarshalArtifact(f *testing.F) {
	c := hw.PaperCluster(8)
	prof := profiler.New(gpu.NewDevice(c.Node.GPU))
	for _, plan := range artifactPlans()[:2] {
		og, err := opgraph.Build(tinyModel(), plan, c)
		if err != nil {
			f.Fatal(err)
		}
		for _, fid := range []Fidelity{TaskLevel, OperatorLevel} {
			data, err := Lower(og, prof, fid).MarshalArtifact()
			if err != nil {
				f.Fatal(err)
			}
			f.Add(data)
		}
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := UnmarshalArtifact(data)
		if err == nil && g == nil {
			t.Fatal("nil graph without error")
		}
	})
}

// FuzzUnmarshalLabels is FuzzUnmarshalArtifact for the label payload.
func FuzzUnmarshalLabels(f *testing.F) {
	c := hw.PaperCluster(8)
	prof := profiler.New(gpu.NewDevice(c.Node.GPU))
	og, err := opgraph.Build(tinyModel(), artifactPlans()[1], c)
	if err != nil {
		f.Fatal(err)
	}
	for _, fid := range []Fidelity{TaskLevel, OperatorLevel} {
		data, err := Lower(og, prof, fid).MarshalLabels()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		lt, err := UnmarshalLabels(data)
		if err == nil && lt == nil {
			t.Fatal("nil label table without error")
		}
	})
}
