package taskgraph

import (
	"fmt"
	"sync"
)

// shrinkAfter is the hysteresis window of the pooled-scratch capacity-drop
// policy: a pooled object sheds oversized storage (capacity beyond 4x the
// requested size) only after this many consecutive oversized reuses. One
// huge graph therefore cannot pin worst-case capacity forever, but a sweep
// that interleaves large and small graphs keeps its high-water buffer
// instead of reallocating on every size swing.
const shrinkAfter = 8

// wantShrink advances a pooled object's hysteresis counter given the
// capacity of its driving buffer and the currently requested size, and
// reports whether this reset should drop oversized storage.
func wantShrink(c, need int, oversized *int8) bool {
	if c <= 4*need {
		*oversized = 0
		return false
	}
	if *oversized++; *oversized >= shrinkAfter {
		*oversized = 0
		return true
	}
	return false
}

// fitZero returns a zeroed slice of length n, reusing s's storage unless it
// is too small or drop demands oversized capacity be shed.
func fitZero[T int32 | float64](s []T, n int, drop bool) []T {
	if cap(s) < n || drop {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// fitRaw is fitZero without the zeroing, for buffers the caller fully
// overwrites before reading.
func fitRaw[T int32 | float64](s []T, n int, drop bool) []T {
	if cap(s) < n || drop {
		return make([]T, n)
	}
	return s[:n]
}

// batchScratch holds all mutable state of one ReplayBatch call: the shared
// structural traversal (ref counts, FIFO queue — one per batch, since
// topological order is structure-only) plus the columnar per-lane clocks.
// The per-task columns are lane-major ([task][lane] flattened), so the hot
// inner loop advances k adjacent lanes with contiguous loads and stores.
type batchScratch struct {
	// ref and queue drive the single shared traversal (Algorithm 1's
	// dependency counts and FIFO queue, shared by every lane).
	ref   []int32
	queue []int32
	// dur and flops hold each lane's bound table columns; the replay reads
	// them in place (k parallel sequential streams as the queue advances —
	// stacking them lane-major would cost a strided transpose pass that
	// overwhelms the walk it saves). Lanes bound by descriptor instead carry
	// their table's priced-value slice and durIdx slab in vals and durIdx,
	// with dur/flops nil.
	dur    [][]float64
	flops  [][]float64
	vals   [][]descVal
	durIdx [][]int32
	// ready[id*k+lane] is lane's earliest dependency-permitted start. Not
	// pre-zeroed: a task's row is written in full by its first incoming
	// edge (detected via the untouched ref count), and root rows — which
	// have no incoming edge — are cleared explicitly before the walk.
	ready []float64
	// free[slot*k+lane] is lane's timeline for slot = 2*device+stream.
	free []float64
	// busy[slot*k+lane] accumulates lane's busy seconds per slot.
	busy []float64
	// classSec[class*k+lane] accumulates lane's busy seconds per class.
	classSec []float64
	// flopsSum[lane] accumulates lane's executed FLOPs.
	flopsSum []float64
	// states[lane] is lane's pooled occupancy ledger under contention
	// (nil for ideal lanes and fully ideal batches).
	states []*contState
	// oversized counts consecutive resets whose pooled capacity exceeded 4x
	// the request (see wantShrink).
	oversized int8
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// reset sizes the scratch for k lanes over a graph with n tasks, devices
// devices, and classes distinct classes, zeroing what the replay reads.
// Oversized pooled storage is shed per the hysteretic policy of wantShrink,
// driven by ready — the scratch's largest buffer.
func (sc *batchScratch) reset(n, devices, classes, k int) {
	drop := wantShrink(cap(sc.ready), n*k, &sc.oversized)
	sc.ref = fitRaw(sc.ref, n, drop)
	if cap(sc.queue) < n || drop {
		sc.queue = make([]int32, 0, n)
	}
	sc.queue = sc.queue[:0]
	if cap(sc.dur) < k {
		sc.dur = make([][]float64, k)
		sc.flops = make([][]float64, k)
		sc.vals = make([][]descVal, k)
		sc.durIdx = make([][]int32, k)
	}
	sc.dur = sc.dur[:k]
	sc.flops = sc.flops[:k]
	sc.vals = sc.vals[:k]
	sc.durIdx = sc.durIdx[:k]
	sc.ready = fitRaw(sc.ready, n*k, drop)
	sc.free = fitZero(sc.free, 2*devices*k, drop)
	sc.busy = fitZero(sc.busy, 2*devices*k, drop)
	sc.classSec = fitZero(sc.classSec, classes*k, drop)
	sc.flopsSum = fitZero(sc.flopsSum, k, drop)
}

// ReplayBatch replays the graph under every table in tables, walking the
// CSR structure once while advancing len(tables) simulated clocks in
// lockstep. Results[i] is bit-identical to Replay(tables[i]): each lane
// performs exactly the floating-point operations of a sequential replay, in
// the same order — batching shares only the structure-determined work (FIFO
// traversal, dependency counting, task decoding), which is identical across
// lanes. Like Replay it never writes to g or the tables, so concurrent
// batches over one graph are safe.
//
// An empty batch returns nil. For hand-built graphs each table must still
// be produced by Bind, which copies the tasks' eager durations.
func (g *Graph) ReplayBatch(tables []*DurationTable) ([]Result, error) {
	return g.replayBatch(tables, nil)
}

// ReplayBatchContended is ReplayBatch under the contention fidelity level:
// cts[i] derates lane i's communication tasks (see ReplayContended). Each
// lane carries its own occupancy ledger — lanes are independent simulated
// clusters and never contend with each other. cts may be nil, and any
// cts[i] may be nil; such lanes replay exactly like ReplayBatch, bit for
// bit, so mixed ideal/contended batches stay well-defined.
func (g *Graph) ReplayBatchContended(tables []*DurationTable, cts []*ContentionTable) ([]Result, error) {
	if cts != nil && len(cts) != len(tables) {
		return nil, fmt.Errorf("taskgraph: batch has %d tables but %d contention tables", len(tables), len(cts))
	}
	return g.replayBatch(tables, cts)
}

func (g *Graph) replayBatch(tables []*DurationTable, cts []*ContentionTable) ([]Result, error) {
	k := len(tables)
	if k == 0 {
		return nil, nil
	}
	n := g.NumTasks()
	if n == 0 {
		return nil, fmt.Errorf("taskgraph: graph has no tasks")
	}
	for i, tbl := range tables {
		if tbl == nil {
			return nil, fmt.Errorf("taskgraph: batch table %d is nil; Bind a DurationTable per lane", i)
		}
		if tbl.Len() != n {
			return nil, fmt.Errorf("taskgraph: batch table %d binds %d tasks, graph has %d", i, tbl.Len(), n)
		}
	}

	sc := batchScratchPool.Get().(*batchScratch)
	sc.reset(n, g.Devices, len(g.classes), k)

	// Occupancy ledgers are per lane: each lane is an independent simulated
	// cluster, so flows contend only within their own lane. states stays nil
	// for fully ideal batches, keeping the hot loops branch-predictable; the
	// ledgers themselves come from the contState pool, like every other
	// piece of replay scratch.
	var states []*contState
	if cts != nil {
		for l, ct := range cts {
			if ct == nil {
				continue
			}
			if states == nil {
				if cap(sc.states) < k {
					sc.states = make([]*contState, k)
				}
				states = sc.states[:k]
			}
			states[l] = getContState(ct)
		}
	}

	for l, tbl := range tables {
		if tbl.byDesc {
			sc.vals[l], sc.durIdx[l] = tbl.vals, tbl.durIdx
			sc.dur[l], sc.flops[l] = nil, nil
		} else {
			sc.dur[l], sc.flops[l] = tbl.dur, tbl.flops
			sc.vals[l], sc.durIdx[l] = nil, nil
		}
	}

	copy(sc.ref, g.indeg)
	queue := append(sc.queue, g.roots...)
	for _, r := range g.roots {
		clear(sc.ready[int(r)*k : int(r)*k+k]) // rows no edge will write
	}

	executed := 0
	if k == 1 {
		// Width-1 batches (a shape group with a single pending plan) skip
		// the lane machinery: the scalar loop below performs the identical
		// float operations on the same columnar state with lane subscripts
		// collapsed away.
		dur, flops := sc.dur[0], sc.flops[0]
		vals, durIdx := sc.vals[0], sc.durIdx[0]
		flopsSum := 0.0
		for head := 0; head < len(queue); head++ {
			id := queue[head]
			slot := g.slotOf[id]
			var d, fl float64
			if vals != nil {
				dv := &vals[durIdx[id]]
				d, fl = dv.dur, dv.flops
			} else {
				d, fl = dur[id], flops[id]
			}
			start := sc.ready[id]
			if f := sc.free[slot]; f > start {
				start = f
			}
			if states != nil && states[0] != nil && int(slot)&1 == int(CommStream) {
				d = cts[0].contend(states[0], int32(slot), g.durIdx[id], start, d)
			}
			finish := start + d
			sc.free[slot] = finish
			sc.busy[slot] += d
			sc.classSec[g.classOf[id]] += d
			flopsSum += fl
			executed++
			for _, cid := range g.Children(int(id)) {
				if sc.ref[cid] == g.indeg[cid] {
					v := 0.0
					if finish > 0 {
						v = finish
					}
					sc.ready[cid] = v
				} else if finish > sc.ready[cid] {
					sc.ready[cid] = finish
				}
				sc.ref[cid]--
				if sc.ref[cid] == 0 {
					queue = append(queue, cid)
				}
			}
		}
		sc.flopsSum[0] = flopsSum
	}
	for head := 0; k > 1 && head < len(queue); head++ {
		id := queue[head] // fetch in FIFO order
		// slotOf keeps the loop off the wide Task values (a cache miss per
		// pop otherwise).
		slot := int(g.slotOf[id])
		// Row subslices fix the bounds once, so the lane loops below are
		// check-free.
		ready := sc.ready[int(id)*k : int(id)*k+k]
		free := sc.free[slot*k : slot*k+k]
		busy := sc.busy[slot*k : slot*k+k]
		classSec := sc.classSec[int(g.classOf[id])*k : int(g.classOf[id])*k+k]
		for l := 0; l < k; l++ {
			var dur, fl float64
			if v := sc.vals[l]; v != nil {
				dv := &v[sc.durIdx[l][id]]
				dur, fl = dv.dur, dv.flops
			} else {
				dur, fl = sc.dur[l][id], sc.flops[l][id]
			}
			start := ready[l]
			if f := free[l]; f > start {
				start = f
			}
			if states != nil && states[l] != nil && slot&1 == int(CommStream) {
				dur = cts[l].contend(states[l], int32(slot), g.durIdx[id], start, dur)
			}
			free[l] = start + dur // proceed lane l's timeline
			busy[l] += dur
			classSec[l] += dur
			sc.flopsSum[l] += fl
		}
		executed++
		for _, cid := range g.Children(int(id)) {
			cready := sc.ready[int(cid)*k : int(cid)*k+k]
			if sc.ref[cid] == g.indeg[cid] {
				// First incoming edge: initialize the child's row as
				// max(0, free) — exactly what folding into a zeroed row
				// computes, without pre-zeroing the whole array.
				for l := 0; l < k; l++ {
					v := 0.0
					if f := free[l]; f > 0 {
						v = f
					}
					cready[l] = v
				}
			} else {
				for l := 0; l < k; l++ {
					if f := free[l]; f > cready[l] {
						cready[l] = f // update the child task, lane l
					}
				}
			}
			sc.ref[cid]--
			if sc.ref[cid] == 0 {
				queue = append(queue, cid) // update the shared task queue
			}
		}
	}

	results := make([]Result, k)
	for l := range results {
		res := &results[l]
		res.ComputeBusy = make([]float64, g.Devices)
		res.CommBusy = make([]float64, g.Devices)
		for d := 0; d < g.Devices; d++ {
			res.ComputeBusy[d] = sc.busy[(2*d+int(ComputeStream))*k+l]
			res.CommBusy[d] = sc.busy[(2*d+int(CommStream))*k+l]
		}
		// Max over slots in slot order, matching the sequential replay.
		for slot := 0; slot < 2*g.Devices; slot++ {
			if f := sc.free[slot*k+l]; f > res.IterTime {
				res.IterTime = f
			}
		}
		res.FLOPs = sc.flopsSum[l]
		res.Executed = executed
		res.ClassSeconds = make(map[string]float64, len(g.classes))
		for c, name := range g.classes {
			res.ClassSeconds[name] = sc.classSec[c*k+l]
		}
	}

	sc.queue = queue[:0]
	for l := range sc.dur {
		sc.dur[l], sc.flops[l] = nil, nil // don't pin released tables
		sc.vals[l], sc.durIdx[l] = nil, nil
	}
	for l := range states {
		putContState(states[l])
		states[l] = nil
	}
	batchScratchPool.Put(sc)

	if executed != n {
		return results, fmt.Errorf("taskgraph: deadlock, executed %d of %d tasks", executed, n)
	}
	return results, nil
}
