package taskgraph

import (
	"reflect"
	"testing"

	"vtrain/internal/comm"
	"vtrain/internal/gpu"
	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/opgraph"
	"vtrain/internal/parallel"
	"vtrain/internal/profiler"
)

// hwInvarianceModel is small enough to lower at TaskLevel quickly but has
// every structural feature: multiple layers per stage, TP+DP+PP, buckets.
func hwInvarianceModel() model.Config {
	return model.Config{Name: "hw-inv", Hidden: 512, Layers: 8, SeqLen: 256, Heads: 8, Vocab: 8192}
}

func hwInvariancePlan() parallel.Plan {
	return parallel.Plan{
		Tensor: 2, Data: 2, Pipeline: 4,
		MicroBatch: 1, GlobalBatch: 16, GradientBuckets: 2,
	}
}

// lowerOn builds and lowers (m, plan) against one concrete cluster, using a
// profiler for that cluster's own GPU generation.
func lowerOn(t *testing.T, m model.Config, plan parallel.Plan, c hw.Cluster, fid Fidelity) (*Graph, *profiler.Profiler) {
	t.Helper()
	og, err := opgraph.Build(m, plan, c)
	if err != nil {
		t.Fatal(err)
	}
	prof := profiler.New(gpu.NewDevice(c.Node.GPU))
	return Lower(og, prof, fid), prof
}

// TestStructureHardwareInvariance pins the contract that makes joint
// (hardware x plan) sweeps cheap: for a fixed plan, lowering against two
// different clusters — different GPU generation, NVLink tier, interconnect,
// and price — must produce byte-identical task structure (task arena, CSR
// edges, descriptors, labels). Only the DurationTable bound at replay may
// differ. core's shape-keyed structural cache is shared across ForCluster
// siblings on the strength of exactly this invariant.
func TestStructureHardwareInvariance(t *testing.T) {
	m := hwInvarianceModel()
	plan := hwInvariancePlan()
	offA, err := hw.LookupOffering("a100-sxm-80gb")
	if err != nil {
		t.Fatal(err)
	}
	offB, err := hw.LookupOffering("h100-sxm-80gb")
	if err != nil {
		t.Fatal(err)
	}
	cA, cB := offA.Cluster(2), offB.Cluster(2)

	for _, fid := range []Fidelity{TaskLevel, OperatorLevel} {
		gA, profA := lowerOn(t, m, plan, cA, fid)
		gB, profB := lowerOn(t, m, plan, cB, fid)

		// Per-task slabs: every task, attribute for attribute. Structural
		// tasks carry no durations, FLOPs, or kernel names, so equality
		// here means the topology and classification are hardware-free.
		if gA.NumTasks() != gB.NumTasks() {
			t.Fatalf("fidelity %v: task counts differ between clusters", fid)
		}
		if gA.Devices != gB.Devices || gA.Model != gB.Model {
			t.Fatalf("fidelity %v: graph headers differ", fid)
		}
		// CSR adjacency, indegrees, roots, class interning, and the
		// deduplicated duration-descriptor table must match exactly.
		for name, pair := range map[string][2]any{
			"childStart": {gA.childStart, gB.childStart},
			"children":   {gA.children, gB.children},
			"indeg":      {gA.indeg, gB.indeg},
			"roots":      {gA.roots, gB.roots},
			"classes":    {gA.classes, gB.classes},
			"classOf":    {gA.classOf, gB.classOf},
			"descs":      {gA.descs, gB.descs},
			"durIdx":     {gA.durIdx, gB.durIdx},
			"slotOf":     {gA.slotOf, gB.slotOf},
			"sources":    {gA.sources, gB.sources},
		} {
			if !reflect.DeepEqual(pair[0], pair[1]) {
				t.Fatalf("fidelity %v: %s differs between clusters", fid, name)
			}
		}
		// Labels resolve through the source operator graph; they must not
		// embed hardware either.
		for id := 0; id < gA.NumTasks(); id++ {
			if la, lb := gA.TaskLabel(id), gB.TaskLabel(id); la != lb {
				t.Fatalf("fidelity %v: task %d label %q != %q", fid, id, la, lb)
			}
		}

		// The *binding* is where hardware enters: the same structure bound
		// against each cluster's profiler and communication model must
		// yield different durations (H100 compute is faster), same length.
		tblA := gA.Bind(profA, comm.NewModel(cA), plan, cA)
		tblB := gB.Bind(profB, comm.NewModel(cB), plan, cB)
		if tblA.Len() != tblB.Len() {
			t.Fatalf("fidelity %v: table lengths differ: %d vs %d", fid, tblA.Len(), tblB.Len())
		}
		differ := 0
		for i := 0; i < tblA.Len(); i++ {
			if tblA.Duration(i) != tblB.Duration(i) {
				differ++
			}
		}
		if differ == 0 {
			t.Fatalf("fidelity %v: binding against different clusters produced identical durations", fid)
		}

		// And cross-binding onto the *other* cluster's structure must be
		// exact: replaying gA under cluster B's table equals replaying gB
		// under it, since the structures are interchangeable.
		resAB, err := gA.Replay(tblB)
		if err != nil {
			t.Fatal(err)
		}
		resBB, err := gB.Replay(tblB)
		if err != nil {
			t.Fatal(err)
		}
		if resAB.IterTime != resBB.IterTime || resAB.Executed != resBB.Executed {
			t.Fatalf("fidelity %v: shared structure not interchangeable across clusters", fid)
		}
		tblA.Release()
		tblB.Release()
	}
}

// TestBindingDiffersAcrossInterconnectTiers isolates the interconnect axis:
// same GPUs, same structure, different fabric tier — only communication
// task durations may change.
func TestBindingDiffersAcrossInterconnectTiers(t *testing.T) {
	m := hwInvarianceModel()
	plan := hwInvariancePlan()
	off, err := hw.LookupOffering("a100-sxm-80gb")
	if err != nil {
		t.Fatal(err)
	}
	cSlow := off.Cluster(2)
	cFast := off.WithInterconnect(hw.IBNDRx8()).Cluster(2)

	g, prof := lowerOn(t, m, plan, cSlow, OperatorLevel)
	tblSlow := g.Bind(prof, comm.NewModel(cSlow), plan, cSlow)
	defer tblSlow.Release()
	tblFast := g.Bind(prof, comm.NewModel(cFast), plan, cFast)
	defer tblFast.Release()

	commDiffer, computeDiffer := 0, 0
	for i := 0; i < g.NumTasks(); i++ {
		if tblSlow.Duration(i) == tblFast.Duration(i) {
			continue
		}
		if g.TaskAt(i).Stream == CommStream {
			commDiffer++
		} else {
			computeDiffer++
		}
	}
	if computeDiffer != 0 {
		t.Errorf("%d compute durations changed with the interconnect tier", computeDiffer)
	}
	if commDiffer == 0 {
		t.Error("no communication duration changed between 4xHDR and 8xNDR")
	}
}
