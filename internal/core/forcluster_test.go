package core

import (
	"sync"
	"testing"

	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/parallel"
	"vtrain/internal/taskgraph"
)

func forClusterModel() model.Config {
	return model.Config{Name: "fc-tiny", Hidden: 512, Layers: 4, SeqLen: 256, Heads: 8, Vocab: 8192}
}

func forClusterPlan() parallel.Plan {
	return parallel.Plan{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 8, GradientBuckets: 2}
}

// TestForClusterSharesStructuralCache pins the joint-sweep economics: a
// hardware-only sweep — one plan shape simulated on every catalog cluster —
// performs exactly one lowering. The siblings share the parent's structural
// cache, and CacheStats on any of them reports the shared counters.
func TestForClusterSharesStructuralCache(t *testing.T) {
	cat := hw.Catalog()
	root, err := New(cat[0].Cluster(2), WithFidelity(taskgraph.OperatorLevel))
	if err != nil {
		t.Fatal(err)
	}
	m, plan := forClusterModel(), forClusterPlan()

	iterTimes := map[string]float64{}
	for _, off := range cat {
		sib, err := root.ForCluster(off.Cluster(2))
		if err != nil {
			t.Fatalf("%s: %v", off.Name, err)
		}
		rep, err := sib.Simulate(m, plan)
		if err != nil {
			t.Fatalf("%s: %v", off.Name, err)
		}
		iterTimes[off.Name] = rep.IterTime
	}

	st := root.CacheStats()
	if st.StructMisses != 1 {
		t.Errorf("hardware-only sweep lowered %d graphs, want exactly 1", st.StructMisses)
	}
	if want := uint64(len(cat) - 1); st.StructHits != want {
		t.Errorf("StructHits = %d, want %d (every cluster after the first)", st.StructHits, want)
	}
	// The shared structure must still produce hardware-specific timings.
	if iterTimes["h100-sxm-80gb"] >= iterTimes["v100-sxm-32gb"] {
		t.Errorf("H100 iteration (%g s) not faster than V100 (%g s)",
			iterTimes["h100-sxm-80gb"], iterTimes["v100-sxm-32gb"])
	}
	distinct := map[float64]bool{}
	for _, it := range iterTimes {
		distinct[it] = true
	}
	if len(distinct) < 3 {
		t.Errorf("only %d distinct iteration times across %d GPU generations", len(distinct), len(cat))
	}
}

// TestForClusterConcurrentDeterministic exercises the shared cache from
// concurrent sweep workers (run under -race in CI): many goroutines
// simulating the same shape on different clusters must single-flight the
// lowering and agree with a sequential run bit-for-bit.
func TestForClusterConcurrentDeterministic(t *testing.T) {
	cat := hw.Catalog()
	m, plan := forClusterModel(), forClusterPlan()

	sequential := func() map[string]float64 {
		root, err := New(cat[0].Cluster(2), WithFidelity(taskgraph.OperatorLevel))
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]float64{}
		for _, off := range cat {
			sib, err := root.ForCluster(off.Cluster(2))
			if err != nil {
				t.Fatal(err)
			}
			rep, err := sib.Simulate(m, plan)
			if err != nil {
				t.Fatal(err)
			}
			out[off.Name] = rep.IterTime
		}
		return out
	}()

	root, err := New(cat[0].Cluster(2), WithFidelity(taskgraph.OperatorLevel))
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu  sync.Mutex
		got = map[string]float64{}
		wg  sync.WaitGroup
	)
	const repeats = 4
	for r := 0; r < repeats; r++ {
		for _, off := range cat {
			wg.Add(1)
			go func(off hw.Offering) {
				defer wg.Done()
				sib, err := root.ForCluster(off.Cluster(2))
				if err != nil {
					t.Error(err)
					return
				}
				rep, err := sib.Simulate(m, plan)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				got[off.Name] = rep.IterTime
				mu.Unlock()
			}(off)
		}
	}
	wg.Wait()
	if st := root.CacheStats(); st.StructMisses != 1 {
		t.Errorf("concurrent hardware sweep lowered %d graphs, want 1 (single-flight)", st.StructMisses)
	}
	for name, want := range sequential {
		if got[name] != want {
			t.Errorf("%s: concurrent IterTime %g != sequential %g", name, got[name], want)
		}
	}
}

// TestForClusterRejections pins the error paths: invalid clusters, fidelity
// changes, and structural-cache resizes are all refused, since each would
// poison or fork the shared cache.
func TestForClusterRejections(t *testing.T) {
	root, err := New(hw.PaperCluster(2))
	if err != nil {
		t.Fatal(err)
	}
	bad := hw.PaperCluster(2)
	bad.NodeCount = 0
	if _, err := root.ForCluster(bad); err == nil {
		t.Error("invalid cluster accepted")
	}
	if _, err := root.ForCluster(hw.PaperCluster(4), WithFidelity(taskgraph.OperatorLevel)); err == nil {
		t.Error("fidelity change accepted; the shared cache is keyed by the parent's fidelity")
	}
	if _, err := root.ForCluster(hw.PaperCluster(4), WithStructCacheSize(1)); err == nil {
		t.Error("structural-cache resize accepted; the cache is shared")
	}
	// Report-cache options remain free per sibling.
	if _, err := root.ForCluster(hw.PaperCluster(4), WithCacheSize(0)); err != nil {
		t.Errorf("report-cache option rejected: %v", err)
	}
}

// TestForClusterSiblingsKeepOwnReports checks the report caches are NOT
// shared: the same (model, plan) on two clusters yields two different
// reports, each served from its own sibling's cache.
func TestForClusterSiblingsKeepOwnReports(t *testing.T) {
	cat := hw.Catalog()
	root, err := New(cat[0].Cluster(2), WithFidelity(taskgraph.OperatorLevel))
	if err != nil {
		t.Fatal(err)
	}
	m, plan := forClusterModel(), forClusterPlan()
	a, err := root.ForCluster(cat[0].Cluster(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := root.ForCluster(cat[3].Cluster(2))
	if err != nil {
		t.Fatal(err)
	}
	repA1, err := a.Simulate(m, plan)
	if err != nil {
		t.Fatal(err)
	}
	repB, err := b.Simulate(m, plan)
	if err != nil {
		t.Fatal(err)
	}
	repA2, err := a.Simulate(m, plan)
	if err != nil {
		t.Fatal(err)
	}
	if repA1.IterTime != repA2.IterTime {
		t.Error("repeated simulation on one sibling disagrees with itself")
	}
	if repA1.IterTime == repB.IterTime {
		t.Error("different clusters produced identical reports — report caches leaked across siblings")
	}
	if st := a.CacheStats(); st.ReportHits == 0 {
		t.Error("sibling report cache never hit on a repeated configuration")
	}
}
