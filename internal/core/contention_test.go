package core

import (
	"reflect"
	"testing"

	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/parallel"
	"vtrain/internal/taskgraph"
)

// contentionPlans spans the shapes that exercise every link class: a
// node-local tensor group (NVSwitch only), a data-parallel group striding
// across nodes (HCA + possibly spine), and a pipeline so send/recv traffic
// overlaps the collectives.
func contentionPlans() []parallel.Plan {
	return []parallel.Plan{
		{Tensor: 4, Data: 4, Pipeline: 2, MicroBatch: 2, GlobalBatch: 16, GradientBuckets: 2},
		{Tensor: 2, Data: 8, Pipeline: 2, MicroBatch: 1, GlobalBatch: 16, GradientBuckets: 2},
		{Tensor: 1, Data: 8, Pipeline: 4, MicroBatch: 1, GlobalBatch: 16, GradientBuckets: 2},
	}
}

// TestContentionOffEquivalence pins the fidelity-knob contract at the
// simulator level: a Simulator built with WithContention(false) — or
// without the option at all — must produce reports and cache counters
// identical to the pre-knob behavior. Contention off is the fast analytic
// path, not a cheaper approximation of the contended one.
func TestContentionOffEquivalence(t *testing.T) {
	m := model.Config{Name: "cont-tiny", Hidden: 256, Layers: 4, SeqLen: 128, Heads: 4, Vocab: 1024}
	plans := contentionPlans()

	def := sim(t, 8, WithFidelity(taskgraph.OperatorLevel))
	off := sim(t, 8, WithFidelity(taskgraph.OperatorLevel), WithContention(false))
	for _, p := range plans {
		want, err := def.Simulate(m, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := off.Simulate(m, p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("plan %s: WithContention(false) report differs from default:\n  off: %+v\n  def: %+v", p, got, want)
		}
	}
	if ds, os := def.CacheStats(), off.CacheStats(); ds != os {
		t.Errorf("cache stats diverge: default %+v, contention-off %+v", ds, os)
	}
}

// TestContentionMonotoneReports pins the direction of the knob: link
// sharing can only slow communication down. Compute time is untouched
// (contention derates comm-stream tasks only), comm busy time and the
// iteration never get faster, and at least one multi-node plan must
// actually pay a congestion tax — otherwise the knob is wired to nothing.
func TestContentionMonotoneReports(t *testing.T) {
	m := model.Config{Name: "cont-tiny", Hidden: 256, Layers: 4, SeqLen: 128, Heads: 4, Vocab: 1024}
	plans := contentionPlans()

	ideal := sim(t, 8, WithFidelity(taskgraph.OperatorLevel))
	cont := sim(t, 8, WithFidelity(taskgraph.OperatorLevel), WithContention(true))
	slowed := 0
	for _, p := range plans {
		base, err := ideal.Simulate(m, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cont.Simulate(m, p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Tasks != base.Tasks {
			t.Errorf("plan %s: contention changed the task count %d -> %d", p, base.Tasks, got.Tasks)
		}
		if got.ComputeSeconds != base.ComputeSeconds {
			t.Errorf("plan %s: contention changed compute busy time %v -> %v", p, base.ComputeSeconds, got.ComputeSeconds)
		}
		if got.CommSeconds < base.CommSeconds {
			t.Errorf("plan %s: contention lowered comm busy time %v -> %v", p, base.CommSeconds, got.CommSeconds)
		}
		if got.IterTime < base.IterTime {
			t.Errorf("plan %s: contention lowered iteration time %v -> %v", p, base.IterTime, got.IterTime)
		}
		if got.CommSeconds > base.CommSeconds {
			slowed++
		}
	}
	if slowed == 0 {
		t.Error("no plan paid any congestion tax — the contention knob is not wired into replay")
	}
}

// TestContentionBatchEquivalence holds SimulateBatch to the sequential
// contract under contention: batched lanes each carry their own occupancy
// ledger, so a contended batch must reproduce individual contended
// Simulate calls bit for bit.
func TestContentionBatchEquivalence(t *testing.T) {
	m := model.Config{Name: "cont-batch", Hidden: 256, Layers: 4, SeqLen: 128, Heads: 4, Vocab: 1024}
	plans := contentionPlans()

	seq := sim(t, 8, WithFidelity(taskgraph.OperatorLevel), WithContention(true))
	want := make([]Report, len(plans))
	for i, p := range plans {
		rep, err := seq.Simulate(m, p)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep
	}

	batch := sim(t, 8, WithFidelity(taskgraph.OperatorLevel), WithContention(true))
	got, err := batch.SimulateBatch(m, plans)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plans {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("plan %s: contended batch report differs from sequential:\n batch: %+v\n   seq: %+v", plans[i], got[i], want[i])
		}
	}
}

// TestForClusterContention pins how the knob travels through sibling
// derivation: siblings inherit the parent's contention level by default,
// an explicit WithContention on ForCluster overrides it, and both cases
// keep sharing the parent's structural cache — contention binds at replay
// time, never into the lowered graph.
func TestForClusterContention(t *testing.T) {
	m := model.Config{Name: "cont-sib", Hidden: 256, Layers: 4, SeqLen: 128, Heads: 4, Vocab: 1024}
	p := parallel.Plan{Tensor: 2, Data: 8, Pipeline: 4, MicroBatch: 1, GlobalBatch: 16, GradientBuckets: 2}
	cl := hw.PaperCluster(8)

	parent := sim(t, 8, WithFidelity(taskgraph.OperatorLevel), WithContention(true))
	inherited, err := parent.ForCluster(cl)
	if err != nil {
		t.Fatal(err)
	}
	overridden, err := parent.ForCluster(cl, WithContention(false))
	if err != nil {
		t.Fatal(err)
	}

	wantOn, err := parent.Simulate(m, p)
	if err != nil {
		t.Fatal(err)
	}
	gotInherited, err := inherited.Simulate(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotInherited, wantOn) {
		t.Fatalf("same-cluster sibling did not inherit contention:\n sib: %+v\n par: %+v", gotInherited, wantOn)
	}

	wantOff, err := sim(t, 8, WithFidelity(taskgraph.OperatorLevel)).Simulate(m, p)
	if err != nil {
		t.Fatal(err)
	}
	gotOverridden, err := overridden.Simulate(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotOverridden, wantOff) {
		t.Fatalf("WithContention(false) override on ForCluster did not take:\n sib: %+v\n ideal: %+v", gotOverridden, wantOff)
	}

	// All three simulators share one structural cache: the shape was
	// lowered exactly once no matter how many contention levels replayed it.
	if st := parent.CacheStats(); st.Lowerings != 1 {
		t.Errorf("expected 1 lowering across contention levels sharing a shape, got %d", st.Lowerings)
	}
}
