package core

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"vtrain/internal/gpu"
	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/parallel"
	"vtrain/internal/taskgraph"
)

func cachePlan(d int) parallel.Plan {
	return parallel.Plan{Tensor: 2, Data: d, Pipeline: 2, MicroBatch: 1, GlobalBatch: 24, GradientBuckets: 2}
}

func TestCacheHitReturnsIdenticalReport(t *testing.T) {
	s := sim(t, 8, WithFidelity(taskgraph.OperatorLevel))
	m := model.Megatron3_6B()
	first, err := s.Simulate(m, cachePlan(2))
	if err != nil {
		t.Fatal(err)
	}
	st := s.CacheStats()
	if st.ReportHits != 0 || st.ReportMisses != 1 {
		t.Fatalf("after one simulation: hits %d misses %d, want 0/1", st.ReportHits, st.ReportMisses)
	}
	second, err := s.Simulate(m, cachePlan(2))
	if err != nil {
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.ReportHits != 1 {
		t.Fatalf("second simulation missed the cache (hits = %d)", st.ReportHits)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cache hit differs from the simulated report:\n%+v\n%+v", first, second)
	}
}

func TestCacheDisabled(t *testing.T) {
	s := sim(t, 8, WithFidelity(taskgraph.OperatorLevel), WithCacheSize(0))
	m := model.Megatron3_6B()
	for i := 0; i < 2; i++ {
		if _, err := s.Simulate(m, cachePlan(2)); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.CacheStats(); st.ReportHits != 0 || st.ReportMisses != 0 {
		t.Fatalf("disabled cache recorded traffic: hits %d misses %d", st.ReportHits, st.ReportMisses)
	}
}

func TestCacheEvictsFIFOWhenFull(t *testing.T) {
	s := sim(t, 8, WithFidelity(taskgraph.OperatorLevel), WithCacheSize(2))
	m := model.Megatron3_6B()
	for _, d := range []int{1, 2, 3} { // d=1 is evicted when d=3 lands
		if _, err := s.Simulate(m, cachePlan(d)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Simulate(m, cachePlan(3)); err != nil { // still resident
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.ReportHits != 1 {
		t.Fatalf("resident entry missed (hits = %d)", st.ReportHits)
	}
	if _, err := s.Simulate(m, cachePlan(1)); err != nil { // evicted: re-simulated
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.ReportMisses != 4 {
		t.Fatalf("evicted entry served from cache (misses = %d, want 4)", st.ReportMisses)
	}
}

func TestDeviceAndCommOptionsDoNotShareCaches(t *testing.T) {
	// Each Simulator owns its cache and builds it after the options are
	// applied, so a differently-configured simulator can never serve
	// another's reports: the slowed device must yield a slower iteration
	// even when the stock simulator has already cached the configuration.
	c := hw.PaperCluster(8)
	m := model.Megatron3_6B()
	plan := cachePlan(2)

	stock := sim(t, 8, WithFidelity(taskgraph.OperatorLevel))
	fast, err := stock.Simulate(m, plan)
	if err != nil {
		t.Fatal(err)
	}

	dev := gpu.NewDevice(c.Node.GPU)
	dev.MaxTensorEff /= 2
	dev.MemEff /= 2
	slowed := sim(t, 8, WithFidelity(taskgraph.OperatorLevel), WithDevice(dev))
	slow, err := slowed.Simulate(m, plan)
	if err != nil {
		t.Fatal(err)
	}
	if slow.IterTime <= fast.IterTime {
		t.Fatalf("slowed device not slower: %.6g vs %.6g", slow.IterTime, fast.IterTime)
	}

	// A custom communication model likewise gets its own cache.
	free := sim(t, 8, WithFidelity(taskgraph.OperatorLevel), WithCommTimer(zeroComm{}))
	noComm, err := free.Simulate(m, plan)
	if err != nil {
		t.Fatal(err)
	}
	if noComm.IterTime >= fast.IterTime {
		t.Fatalf("free communication not faster: %.6g vs %.6g", noComm.IterTime, fast.IterTime)
	}
	if noComm.CommSeconds != 0 {
		t.Fatalf("zero comm timer left %.6g comm seconds", noComm.CommSeconds)
	}
}

// zeroComm prices all communication at zero.
type zeroComm struct{}

func (zeroComm) AllReduce(bytes float64, n int, intraNode bool) float64 { return 0 }
func (zeroComm) SendRecv(bytes float64, sameNode bool) float64          { return 0 }

func TestConcurrentSimulateSharesCacheRaceFree(t *testing.T) {
	// Many goroutines hammer one Simulator with a mix of repeated and
	// distinct configurations; run under -race this exercises the cache's
	// synchronization. Every caller must observe the same reports.
	s := sim(t, 8, WithFidelity(taskgraph.OperatorLevel))
	m := model.Megatron3_6B()

	want := make([]Report, 4)
	for d := 1; d <= 4; d++ {
		rep, err := s.Simulate(m, cachePlan(d))
		if err != nil {
			t.Fatal(err)
		}
		want[d-1] = rep
	}

	const goroutines = 32
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				d := 1 + (i+j)%4
				rep, err := s.Simulate(m, cachePlan(d))
				if err != nil {
					errs[i] = err
					return
				}
				if rep.IterTime != want[d-1].IterTime || rep.Tasks != want[d-1].Tasks {
					errs[i] = errReportMismatch
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := s.CacheStats()
	if st.ReportMisses != 4 {
		t.Fatalf("concurrent load re-simulated cached plans: %d misses, want 4", st.ReportMisses)
	}
	if st.ReportHits != goroutines*8 {
		t.Fatalf("hits = %d, want %d", st.ReportHits, goroutines*8)
	}
}

var errReportMismatch = errMismatch{}

type errMismatch struct{}

func (errMismatch) Error() string { return "cached report differs across goroutines" }

func TestDegenerateIterTimeGuards(t *testing.T) {
	// A degenerate replay with IterTime == 0 must not poison the report
	// with NaN/Inf from the bubble and utilization divisions.
	s := sim(t, 8)
	rep := s.assembleReport(model.Megatron3_6B(), cachePlan(2), taskgraph.Result{
		IterTime:    0,
		ComputeBusy: make([]float64, 2),
		CommBusy:    make([]float64, 2),
	})
	if rep.BubbleFraction != 0 {
		t.Fatalf("BubbleFraction = %v, want 0", rep.BubbleFraction)
	}
	if rep.Utilization != 0 {
		t.Fatalf("Utilization = %v, want 0", rep.Utilization)
	}
	for name, v := range map[string]float64{
		"BubbleFraction": rep.BubbleFraction,
		"Utilization":    rep.Utilization,
		"ComputeSeconds": rep.ComputeSeconds,
		"CommSeconds":    rep.CommSeconds,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s = %v on a degenerate plan", name, v)
		}
	}
}
