// Package core is vTrain's public facade: it wires the profiling module,
// the communication model, the execution-graph builders, and the Algorithm 1
// replay engine into the end-to-end simulation flow of Fig. 4:
//
//	description -> operator graph -> profile -> task graph -> iteration time
//
// A Simulator is safe for concurrent use: design-space exploration runs
// thousands of Simulate calls across goroutines sharing one profile cache,
// which is how the paper evaluates a full (t,d,p) sweep "in tens of minutes
// on a multi-core CPU server".
package core

import (
	"fmt"
	"strconv"
	"sync/atomic"

	"vtrain/internal/artifact"
	"vtrain/internal/comm"
	"vtrain/internal/cost"
	"vtrain/internal/gpu"
	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/opgraph"
	"vtrain/internal/parallel"
	"vtrain/internal/profiler"
	"vtrain/internal/taskgraph"
)

// Simulator predicts LLM training time on a cluster. A Simulator is safe
// for concurrent use: the profiler and the plan-level report cache are
// internally synchronized, and the graphs built per simulation are
// immutable.
type Simulator struct {
	cluster    hw.Cluster
	device     *gpu.Device
	profiler   *profiler.Profiler
	comm       taskgraph.CommTimer
	fidelity   taskgraph.Fidelity
	// contention enables the topology-aware congestion fidelity level:
	// replays derate communication tasks that share fat-tree links with
	// concurrently in-flight ones (see taskgraph.BindContention). Off by
	// default; with it off, reports are byte-identical to a build that
	// predates the knob.
	contention bool
	cacheSize  int
	cache      *reportCache
	structSize int
	structs    *structCache
	batches    *batchStats
	// artifacts is the persistent tier below the in-memory structural
	// cache (nil unless WithArtifactDir/WithArtifactStore is given):
	// memory miss -> disk load -> lowering, with fresh lowerings written
	// back. ForCluster siblings share it, like the structural cache.
	artifactDir string
	artifacts   *artifact.Store
	// lowerings counts actual taskgraph.Lower invocations. It is shared
	// across ForCluster siblings; with a persistent tier it can be smaller
	// than StructMisses, since misses served from disk do not lower.
	lowerings *atomic.Uint64
	// opsSaved tracks the profiler entry count at the last operator-table
	// save, so the table is re-persisted only when it grew. Shared with
	// siblings that share the profiler.
	opsSaved *atomic.Int64
}

// Option configures a Simulator.
type Option func(*Simulator)

// WithFidelity selects the lowering granularity (TaskLevel by default).
func WithFidelity(f taskgraph.Fidelity) Option {
	return func(s *Simulator) { s.fidelity = f }
}

// WithCommTimer overrides the communication model (the testbed injects a
// contention-aware one here).
func WithCommTimer(ct taskgraph.CommTimer) Option {
	return func(s *Simulator) { s.comm = ct }
}

// WithContention toggles the topology-aware congestion fidelity level:
// when on, every replay tracks which communication tasks are simultaneously
// in flight on shared fat-tree links (node NVSwitches, HCA bundles, the
// leaf-spine uplinks) and derates their durations accordingly. When off —
// the default — the replay performs bit-identical float operations to a
// build without the knob, so the fast analytic path is untouched.
// Contention binds at replay time and never changes graph structure, so
// ForCluster siblings may differ in it while still sharing one structural
// cache.
func WithContention(on bool) Option {
	return func(s *Simulator) { s.contention = on }
}

// WithDevice overrides the GPU timing model.
func WithDevice(d *gpu.Device) Option {
	return func(s *Simulator) {
		s.device = d
		s.profiler = profiler.New(d)
	}
}

// WithCacheSize bounds the plan-level result cache to n entries
// (DefaultCacheSize if the option is not given). n <= 0 disables caching —
// useful for one-shot simulators whose configurations never repeat.
func WithCacheSize(n int) Option {
	return func(s *Simulator) { s.cacheSize = n }
}

// WithStructCacheSize bounds the shape-keyed structural-graph cache to n
// entries (DefaultStructCacheSize if the option is not given). n <= 0
// disables structural sharing: every simulation lowers its own graph, the
// pre-cache behavior — useful for one-shot simulators, or as the reference
// side of equivalence tests.
func WithStructCacheSize(n int) Option {
	return func(s *Simulator) { s.structSize = n }
}

// WithArtifactDir enables the persistent artifact tier rooted at dir:
// structural graphs (and the profiler's operator table) missing from the
// in-memory caches are loaded from the content-addressed on-disk store
// before being lowered, and fresh lowerings are written back, so a new
// process starts warm with whatever any previous process already paid for.
// Artifacts are keyed by shape, fidelity, encoding version, and build ID,
// and reports are byte-identical whether a graph was lowered, memory-
// cached, or disk-loaded. An empty dir leaves the tier disabled (the
// default).
func WithArtifactDir(dir string) Option {
	return func(s *Simulator) { s.artifactDir = dir }
}

// WithArtifactStore is WithArtifactDir for callers that already hold an
// open store: the serving layer opens one store and shares it (counters
// included) across its whole simulator pool.
func WithArtifactStore(st *artifact.Store) Option {
	return func(s *Simulator) { s.artifacts = st }
}

// New builds a simulator for the cluster, profiling its intra-node fabric.
func New(c hw.Cluster, opts ...Option) (*Simulator, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	dev := gpu.NewDevice(c.Node.GPU)
	s := &Simulator{
		cluster:    c,
		device:     dev,
		profiler:   profiler.New(dev),
		comm:       comm.NewModel(c),
		fidelity:   taskgraph.TaskLevel,
		cacheSize:  DefaultCacheSize,
		structSize: DefaultStructCacheSize,
	}
	for _, o := range opts {
		o(s)
	}
	// The caches are created after the options so every entry reflects the
	// final device, communication model, and fidelity; each Simulator has
	// its own caches, so differently-configured simulators can never serve
	// each other's reports or structural graphs — except siblings derived
	// with ForCluster, which deliberately share the structural cache
	// (structural graphs are hardware-invariant; see ForCluster).
	s.cache = newReportCache(s.cacheSize)
	s.structs = newStructCache(s.structSize)
	s.batches = new(batchStats)
	s.lowerings = new(atomic.Uint64)
	s.opsSaved = new(atomic.Int64)
	if s.artifacts == nil && s.artifactDir != "" {
		st, err := artifact.Open(s.artifactDir)
		if err != nil {
			return nil, err
		}
		s.artifacts = st
	}
	s.loadOps()
	return s, nil
}

// ForCluster derives a sibling simulator for cluster c that shares s's
// shape-keyed structural cache while owning its own device timing model,
// profiler, communication model, and plan-level report cache.
//
// Sharing is sound because a structural graph is hardware-invariant: Lower
// emits tasks, dependency edges, and duration descriptors only, and
// consults the profiler solely for each operator's kernel count, which is
// fixed per operator kind across GPU generations. Everything a cluster
// changes — kernel durations, collective latencies, link placement, price —
// is bound per plan by Graph.Bind against the sibling's own profiler and
// communication model. This is what makes a joint (hardware x plan) sweep
// cheap: all hardware variants of one plan shape replay a single lowered
// graph (see internal/clusterdse).
//
// Options may tune the sibling's report cache, communication model, device,
// or contention level (contention binds at replay time, never into the
// shared structure), but must not change the fidelity or the structural
// cache size: both are properties of the shared cache, so a mismatch is an
// error. CacheStats on any sibling reports the shared structural counters.
func (s *Simulator) ForCluster(c hw.Cluster, opts ...Option) (*Simulator, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	// Siblings for the same GPU specification (e.g. node-count or
	// interconnect variants of one offering) reuse the parent's device and
	// profiler: the operator-to-task table depends only on the GPU, and the
	// profiler is internally synchronized, so sharing it skips re-profiling
	// every operator shape per candidate.
	dev, prof := s.device, s.profiler
	if c.Node.GPU != s.cluster.Node.GPU {
		dev = gpu.NewDevice(c.Node.GPU)
		prof = profiler.New(dev)
	}
	sib := &Simulator{
		cluster:     c,
		device:      dev,
		profiler:    prof,
		comm:        comm.NewModel(c),
		fidelity:    s.fidelity,
		contention:  s.contention,
		cacheSize:   s.cacheSize,
		structSize:  s.structSize,
		artifactDir: s.artifactDir,
		artifacts:   s.artifacts,
	}
	for _, o := range opts {
		o(sib)
	}
	if sib.fidelity != s.fidelity {
		return nil, fmt.Errorf("core: ForCluster cannot change fidelity: the shared structural cache is keyed by the parent's")
	}
	if sib.structSize != s.structSize {
		return nil, fmt.Errorf("core: ForCluster cannot resize the structural cache: it is shared with the parent")
	}
	if sib.artifacts != s.artifacts || sib.artifactDir != s.artifactDir {
		return nil, fmt.Errorf("core: ForCluster cannot change the artifact store: it is shared with the parent")
	}
	sib.cache = newReportCache(sib.cacheSize)
	sib.structs = s.structs
	// Batch, lowering, and artifact counters are shared like the
	// structural cache, so a multi-cluster sweep's totals are reported in
	// one place.
	sib.batches = s.batches
	sib.lowerings = s.lowerings
	if sib.profiler == s.profiler {
		sib.opsSaved = s.opsSaved
	} else {
		// A different GPU means a fresh profiler and its own persisted
		// operator table.
		sib.opsSaved = new(atomic.Int64)
		sib.loadOps()
	}
	return sib, nil
}

// CacheStats summarizes the simulator's two caches: the plan-level report
// cache (one entry per simulated configuration) and the shape-keyed
// structural cache (one lowered graph per plan topology). StructMisses is
// exactly the number of lowering invocations performed so far; in a
// design-space sweep the hit rate shows how many plans shared a structure.
type CacheStats struct {
	// ReportHits / ReportMisses count plan-level result cache lookups.
	ReportHits, ReportMisses uint64
	// StructHits / StructMisses count structural-graph cache lookups;
	// both are zero while the report cache absorbs a repeated plan.
	StructHits, StructMisses uint64
	// BatchReplays counts batched replay passes (SimulateBatch calls issue
	// one per shape group chunk) and BatchedPlans the plans they carried;
	// BatchedPlans/BatchReplays is the sweep's mean batch width. Shared
	// across ForCluster siblings, like the structural counters.
	BatchReplays, BatchedPlans uint64
	// Lowerings counts actual graph lowerings (taskgraph.Lower runs).
	// Without a persistent tier it equals StructMisses — every miss lowers;
	// with one it can be smaller, since misses served from disk skip the
	// lowering. This is the "cold work actually paid" figure a fully warm
	// disk pins to zero. Shared across ForCluster siblings.
	Lowerings uint64
	// DiskHits / DiskMisses / DiskWrites count the persistent artifact
	// tier's loads and stores (all zero when WithArtifactDir is unset). A
	// corrupt, truncated, or version-skewed artifact counts as a miss and
	// falls back to lowering; it is never an error. The counters live on
	// the artifact store, so simulators sharing one store (ForCluster
	// siblings, a serving pool) report the same store-wide totals.
	DiskHits, DiskMisses, DiskWrites uint64
}

// Add returns the field-wise sum of s and t, for aggregating counters
// across a pool of simulators — the serving layer's /metrics endpoint sums
// every pooled simulator's stats into one scrape.
func (s CacheStats) Add(t CacheStats) CacheStats {
	return CacheStats{
		ReportHits:   s.ReportHits + t.ReportHits,
		ReportMisses: s.ReportMisses + t.ReportMisses,
		StructHits:   s.StructHits + t.StructHits,
		StructMisses: s.StructMisses + t.StructMisses,
		BatchReplays: s.BatchReplays + t.BatchReplays,
		BatchedPlans: s.BatchedPlans + t.BatchedPlans,
		Lowerings:    s.Lowerings + t.Lowerings,
		DiskHits:     s.DiskHits + t.DiskHits,
		DiskMisses:   s.DiskMisses + t.DiskMisses,
		DiskWrites:   s.DiskWrites + t.DiskWrites,
	}
}

// CacheStats reports hit/miss counters for the report cache and the
// structural cache.
func (s *Simulator) CacheStats() CacheStats {
	var st CacheStats
	if s.cache != nil {
		st.ReportHits, st.ReportMisses = s.cache.stats()
	}
	if s.structs != nil {
		st.StructHits, st.StructMisses = s.structs.stats()
	}
	if s.batches != nil {
		st.BatchReplays = s.batches.replays.Load()
		st.BatchedPlans = s.batches.plans.Load()
	}
	if s.lowerings != nil {
		st.Lowerings = s.lowerings.Load()
	}
	if s.artifacts != nil {
		as := s.artifacts.Stats()
		st.DiskHits, st.DiskMisses, st.DiskWrites = as.Hits, as.Misses, as.Writes
	}
	return st
}

// Cluster returns the simulated cluster description.
func (s *Simulator) Cluster() hw.Cluster { return s.cluster }

// Profiler exposes the operator-to-task lookup table.
func (s *Simulator) Profiler() *profiler.Profiler { return s.profiler }

// Report is the outcome of simulating one training iteration.
type Report struct {
	// Model and Plan identify the simulated configuration.
	Model model.Config
	Plan  parallel.Plan
	// IterTime is the predicted single-iteration training time (s).
	IterTime float64
	// Utilization is GPU compute utilization (model FLOPs over peak).
	Utilization float64
	// HardwareFLOPs is the executed arithmetic per iteration across the
	// whole system (includes attention and other non-model FLOPs).
	HardwareFLOPs float64
	// ComputeSeconds and CommSeconds are mean per-device busy times; the
	// remainder of IterTime is pipeline bubble / idle.
	ComputeSeconds float64
	CommSeconds    float64
	// BubbleFraction is the mean idle fraction of the compute streams.
	BubbleFraction float64
	// PeakMemoryBytes is the estimated per-GPU peak memory.
	PeakMemoryBytes uint64
	// FitsMemory reports whether the plan fits device memory.
	FitsMemory bool
	// Tasks is the number of replayed tasks.
	Tasks int
	// Breakdown attributes per-device busy seconds to operator and
	// communication classes ("FwdMHA", "AllReduceTP", ...), summed over
	// all simulated devices.
	Breakdown map[string]float64
}

// Simulate predicts the single-iteration training time of m under plan.
// Results are memoized per (model, plan, fidelity): repeated configurations
// across design-space sweeps, scheduler profiling, and Chinchilla searches
// dedupe to one simulation. Reports served from the cache share their
// Breakdown map; callers must treat it as read-only.
func (s *Simulator) Simulate(m model.Config, plan parallel.Plan) (Report, error) {
	var key cacheKey
	if s.cache != nil {
		key = cacheKey{model: m, plan: plan, fidelity: s.fidelity, contention: s.contention}
		if rep, ok := s.cache.get(key); ok {
			return rep, nil
		}
	}
	rep, _, err := s.simulate(m, plan, false)
	if err == nil && s.cache != nil {
		s.cache.put(key, rep)
	}
	return rep, err
}

// SimulateTrace is Simulate plus the full execution timeline, which
// taskgraph.WriteChromeTrace renders for chrome://tracing or Perfetto.
func (s *Simulator) SimulateTrace(m model.Config, plan parallel.Plan) (Report, []taskgraph.Span, error) {
	return s.simulate(m, plan, true)
}

func (s *Simulator) simulate(m model.Config, plan parallel.Plan, capture bool) (Report, []taskgraph.Span, error) {
	tg, err := s.structural(m, plan)
	if err != nil {
		return Report{}, nil, err
	}
	// Bind the per-plan numbers — operator durations from the profiler,
	// collective and P2P times from the communication model — onto the
	// (possibly shared) structure, then replay. Binding allocates only the
	// pooled table; the structure itself is reused untouched.
	tbl := tg.Bind(s.profiler, s.comm, plan, s.cluster)
	defer tbl.Release()
	var ct *taskgraph.ContentionTable
	if s.contention {
		ct = tg.BindContention(plan, s.cluster, tbl)
	}
	var (
		res   taskgraph.Result
		spans []taskgraph.Span
	)
	if capture {
		res, spans, err = tg.ReplayTraceContended(tbl, ct)
	} else {
		res, err = tg.ReplayContended(tbl, ct)
	}
	if err != nil {
		return Report{}, nil, fmt.Errorf("core: simulating %s under %s: %w", m.Name, plan, err)
	}
	return s.assembleReport(m, plan, res), spans, nil
}

// structural returns the structural task graph for (m, plan) at the
// simulator's fidelity, serving it from the tier chain: shape-keyed
// in-memory cache, then the persistent artifact store, then a fresh
// lowering. The plan is fully validated on every call — a cache or disk
// hit must not skip the per-plan checks that Build would perform.
func (s *Simulator) structural(m model.Config, plan parallel.Plan) (*taskgraph.Graph, error) {
	if s.structs == nil && s.artifacts == nil {
		return s.lower(m, plan)
	}
	if err := opgraph.Validate(m, plan, s.cluster); err != nil {
		return nil, err
	}
	if s.structs == nil {
		return s.buildStructural(m, plan)
	}
	return s.structs.get(shapeOf(m, plan, s.fidelity), func() (*taskgraph.Graph, error) {
		return s.buildStructural(m, plan)
	})
}

// EnsureStructure warms the structural cache for (m, plan) without
// simulating anything: the shape-prefetch planner in dse/clusterdse calls
// it from a bounded pool so cold lowerings (or disk loads) overlap the
// binding and replay of already-resident shapes. It shares the cache's
// single-flight entries, so a concurrent demand miss for the same shape
// joins this build instead of repeating it, and it never perturbs the
// demand hit/miss accounting. A no-op when the structural cache is
// disabled; invalid plans are skipped silently — the demand path surfaces
// their errors.
func (s *Simulator) EnsureStructure(m model.Config, plan parallel.Plan) {
	if s.structs == nil {
		return
	}
	if err := opgraph.Validate(m, plan, s.cluster); err != nil {
		return
	}
	s.structs.ensure(shapeOf(m, plan, s.fidelity), func() (*taskgraph.Graph, error) {
		return s.buildStructural(m, plan)
	})
}

// buildStructural is the tier chain below the in-memory structural cache:
// load from the artifact store when one is configured, otherwise (or on a
// disk miss) lower from scratch and write the result back.
func (s *Simulator) buildStructural(m model.Config, plan parallel.Plan) (*taskgraph.Graph, error) {
	if s.artifacts == nil {
		return s.lower(m, plan)
	}
	key := s.graphKey(m, plan)
	if g, ok := s.artifacts.LoadGraph(key); ok {
		// The structure artifact carries no labels (sweeps never render
		// one); traces fetch them lazily from the companion label file. A
		// missing, corrupt, or short label artifact falls back to a full
		// re-lowering — slow, but correct, and only ever paid by a trace
		// whose label file was damaged after the graph file was written.
		g.SetLabelSource(func() *opgraph.LabelTable {
			if t, ok := s.artifacts.LoadLabels(key); ok && t.Len() >= g.LabelCount() {
				return t
			}
			fresh, err := s.lower(m, plan)
			if err != nil {
				return nil
			}
			return fresh.Labels()
		})
		return g, nil
	}
	g, err := s.lower(m, plan)
	if err != nil {
		return nil, err
	}
	if s.artifacts.SaveGraph(key, g) {
		// Piggyback the operator table on graph writes: by the time a
		// graph is persisted the profiler holds every kernel count the
		// lowering consulted, and re-saving only when the table grew keeps
		// the write traffic bounded.
		s.saveOps()
	}
	return g, nil
}

// lower builds the structural graph from scratch — every cache tier
// missed — counting the lowering.
func (s *Simulator) lower(m model.Config, plan parallel.Plan) (*taskgraph.Graph, error) {
	og, err := opgraph.Build(m, plan, s.cluster)
	if err != nil {
		return nil, err
	}
	tg := taskgraph.Lower(og, s.profiler, s.fidelity)
	// Lower copies everything the task graph needs (structure, label
	// records), so the operator graph goes straight back to the
	// construction pool.
	og.Recycle()
	if s.lowerings != nil {
		s.lowerings.Add(1)
	}
	return tg, nil
}

// graphKey is the artifact store address of (m, plan)'s structural graph:
// the shape key (which embeds the model and fidelity), the payload
// encoding version, and the build ID, so new code or a new encoding misses
// cleanly instead of reading stale structure.
func (s *Simulator) graphKey(m model.Config, plan parallel.Plan) string {
	return artifact.Key(
		"graph",
		strconv.Itoa(taskgraph.EncodingVersion),
		artifact.BuildID(),
		fmt.Sprintf("%+v", shapeOf(m, plan, s.fidelity)),
	)
}

// opsKey is the artifact store address of the profiler's operator table,
// keyed by the full device timing model: a different GPU — or a tuned
// device — must never read another's kernel timings.
func (s *Simulator) opsKey() string {
	return artifact.Key(
		"ops",
		strconv.Itoa(artifact.OpsEncodingVersion),
		artifact.BuildID(),
		fmt.Sprintf("%+v|%g|%g", s.device.Spec, s.device.MaxTensorEff, s.device.MemEff),
	)
}

// loadOps pre-warms the profiler from the persisted operator table, if the
// store has one for this device. Installed entries count as neither hits
// nor misses, so profiler statistics still reflect this process's demand.
func (s *Simulator) loadOps() {
	if s.artifacts == nil {
		return
	}
	if entries, ok := s.artifacts.LoadOperators(s.opsKey()); ok {
		s.profiler.Install(entries)
		s.opsSaved.Store(int64(s.profiler.Entries()))
	}
}

// saveOps persists the operator table when it grew since the last save.
// Concurrent savers may both write; the content is deterministic per
// device, so the duplicate write is harmless.
func (s *Simulator) saveOps() {
	n := int64(s.profiler.Entries())
	if n == 0 || n == s.opsSaved.Load() {
		return
	}
	if s.artifacts.SaveOperators(s.opsKey(), s.profiler.Table()) {
		s.opsSaved.Store(n)
	}
}

// assembleReport derives the Report quantities from a replay result.
func (s *Simulator) assembleReport(m model.Config, plan parallel.Plan, res taskgraph.Result) Report {
	var busyC, busyM float64
	for i := range res.ComputeBusy {
		busyC += res.ComputeBusy[i]
		busyM += res.CommBusy[i]
	}
	stages := float64(len(res.ComputeBusy))
	peakMem := plan.PeakMemoryBytes(m)

	// A degenerate plan (every task priced at zero) yields IterTime == 0;
	// report zero utilization and bubble rather than dividing by it.
	bubble := 0.0
	if res.IterTime > 0 {
		bubble = 1 - busyC/(stages*res.IterTime)
	}

	// The folded graph simulates one (tensor, data) representative per
	// stage; every replica executes the same FLOPs.
	sysFLOPs := res.FLOPs * float64(plan.Tensor) * float64(plan.Data)

	return Report{
		Model:           m,
		Plan:            plan,
		IterTime:        res.IterTime,
		Utilization:     cost.Utilization(m, plan.GlobalBatch, res.IterTime, plan.GPUs(), s.cluster.Node.GPU),
		HardwareFLOPs:   sysFLOPs,
		ComputeSeconds:  busyC / stages,
		CommSeconds:     busyM / stages,
		BubbleFraction:  bubble,
		PeakMemoryBytes: peakMem,
		FitsMemory:      peakMem <= s.cluster.Node.GPU.MemCapacity,
		Tasks:           res.Executed,
		Breakdown:       res.ClassSeconds,
	}
}

// Train extends Simulate with the end-to-end projection for totalTokens:
// days of wall-clock training and its monetary cost.
func (s *Simulator) Train(m model.Config, plan parallel.Plan, totalTokens uint64) (Report, cost.Training, error) {
	rep, err := s.Simulate(m, plan)
	if err != nil {
		return Report{}, cost.Training{}, err
	}
	tr := cost.Train(m, plan.GlobalBatch, rep.IterTime, plan.GPUs(), totalTokens, s.cluster)
	return rep, tr, nil
}
