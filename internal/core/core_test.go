package core

import (
	"math"
	"testing"

	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/parallel"
	"vtrain/internal/taskgraph"
)

func sim(t *testing.T, nodes int, opts ...Option) *Simulator {
	t.Helper()
	s, err := New(hw.PaperCluster(nodes), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewRejectsBadCluster(t *testing.T) {
	c := hw.PaperCluster(4)
	c.Alpha = 0
	if _, err := New(c); err == nil {
		t.Fatal("invalid cluster must be rejected")
	}
}

func TestSimulateRejectsBadPlan(t *testing.T) {
	s := sim(t, 4)
	_, err := s.Simulate(model.Megatron3_6B(), parallel.Plan{})
	if err == nil {
		t.Fatal("zero plan must be rejected")
	}
}

func TestMTNLGTableIBaseline(t *testing.T) {
	// Paper Table I, row 1: MT-NLG (8,8,35) on 2,240 GPUs: 42.59 s
	// iteration, 42.67 % utilization. Our substrate is a device model,
	// not the authors' silicon, so assert the reproduction band: within
	// 15 % on time and 8 points on utilization.
	s := sim(t, 280, WithFidelity(taskgraph.OperatorLevel))
	plan := parallel.Plan{
		Tensor: 8, Data: 8, Pipeline: 35, MicroBatch: 1, GlobalBatch: 1920,
		GradientBuckets: 2, Recompute: true,
	}
	rep, err := s.Simulate(model.MTNLG530B(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.IterTime-42.59)/42.59 > 0.15 {
		t.Errorf("iteration time = %.2f s, paper 42.59 s (outside 15%%)", rep.IterTime)
	}
	if math.Abs(rep.Utilization-0.4267) > 0.08 {
		t.Errorf("utilization = %.3f, paper 0.427 (outside 8 points)", rep.Utilization)
	}
	if !rep.FitsMemory {
		t.Error("recompute plan should fit 80 GiB")
	}
}

func TestVTrainPlanBeatsBaselineOnCost(t *testing.T) {
	// Table I's headline: (8,12,21) with 2,016 GPUs costs less in total
	// dollars than (8,8,35) with 2,240 GPUs despite a slightly longer
	// wall clock.
	s := sim(t, 280, WithFidelity(taskgraph.OperatorLevel))
	m := model.MTNLG530B()
	base := parallel.Plan{Tensor: 8, Data: 8, Pipeline: 35, MicroBatch: 1, GlobalBatch: 1920, GradientBuckets: 2, Recompute: true}
	ours := parallel.Plan{Tensor: 8, Data: 12, Pipeline: 21, MicroBatch: 1, GlobalBatch: 1920, GradientBuckets: 2, Recompute: true}

	_, trBase, err := s.Train(m, base, 270e9)
	if err != nil {
		t.Fatal(err)
	}
	_, trOurs, err := s.Train(m, ours, 270e9)
	if err != nil {
		t.Fatal(err)
	}
	if trOurs.TotalDollars >= trBase.TotalDollars {
		t.Errorf("vTrain plan $%.2fM not cheaper than baseline $%.2fM",
			trOurs.TotalDollars/1e6, trBase.TotalDollars/1e6)
	}
	if trOurs.Utilization <= trBase.Utilization {
		t.Errorf("vTrain plan utilization %.3f not above baseline %.3f",
			trOurs.Utilization, trBase.Utilization)
	}
	// The trade: slightly longer wall-clock (paper: +6.3%).
	if trOurs.Days <= trBase.Days || trOurs.Days > 1.2*trBase.Days {
		t.Errorf("wall-clock trade-off off: ours %.1f days vs base %.1f", trOurs.Days, trBase.Days)
	}
}

func TestUtilizationDecreasesWithData(t *testing.T) {
	// Table I: util drops monotonically as d grows at fixed (t,p).
	s := sim(t, 420, WithFidelity(taskgraph.OperatorLevel))
	m := model.MTNLG530B()
	prev := 1.0
	for _, d := range []int{8, 10, 12} {
		plan := parallel.Plan{Tensor: 8, Data: d, Pipeline: 35, MicroBatch: 1, GlobalBatch: 1920, GradientBuckets: 2, Recompute: true}
		rep, err := s.Simulate(m, plan)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Utilization >= prev {
			t.Fatalf("utilization not decreasing at d=%d: %.3f >= %.3f", d, rep.Utilization, prev)
		}
		prev = rep.Utilization
	}
}

func TestReportInternalConsistency(t *testing.T) {
	s := sim(t, 8)
	plan := parallel.Plan{Tensor: 2, Data: 4, Pipeline: 2, MicroBatch: 1, GlobalBatch: 16, GradientBuckets: 2}
	rep, err := s.Simulate(model.Megatron3_6B(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.IterTime <= 0 || rep.Tasks <= 0 {
		t.Fatal("degenerate report")
	}
	if rep.ComputeSeconds > rep.IterTime {
		t.Errorf("mean compute %.4g exceeds iteration %.4g", rep.ComputeSeconds, rep.IterTime)
	}
	if rep.BubbleFraction < 0 || rep.BubbleFraction > 1 {
		t.Errorf("bubble fraction %.3f out of range", rep.BubbleFraction)
	}
	if rep.Utilization <= 0 || rep.Utilization > 1 {
		t.Errorf("utilization %.3f out of range", rep.Utilization)
	}
	if rep.HardwareFLOPs <= 0 {
		t.Error("hardware FLOPs missing")
	}
	// Hardware FLOPs must exceed the model-FLOPs lower bound ratio
	// implied by utilization accounting.
	modelFLOPs := 6 * float64(rep.Model.Params()) * float64(rep.Model.TokensPerIteration(plan.GlobalBatch))
	if rep.HardwareFLOPs < 0.8*modelFLOPs {
		t.Errorf("hardware FLOPs %.3g below model FLOPs %.3g", rep.HardwareFLOPs, modelFLOPs)
	}
}

func TestSharedProfileCacheAcrossSimulations(t *testing.T) {
	s := sim(t, 8, WithFidelity(taskgraph.OperatorLevel))
	m := model.Megatron3_6B()
	plan := parallel.Plan{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 8}
	if _, err := s.Simulate(m, plan); err != nil {
		t.Fatal(err)
	}
	missesBefore, _ := s.Profiler().CacheStats()
	if _, err := s.Simulate(m, plan); err != nil {
		t.Fatal(err)
	}
	missesAfter, _ := s.Profiler().CacheStats()
	if missesAfter != missesBefore {
		t.Fatalf("second simulation re-profiled: %d -> %d misses", missesBefore, missesAfter)
	}
}

func TestConcurrentSimulations(t *testing.T) {
	// Design-space exploration shares one simulator across goroutines.
	s := sim(t, 8, WithFidelity(taskgraph.OperatorLevel))
	m := model.Megatron3_6B()
	errc := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func(d int) {
			plan := parallel.Plan{Tensor: 2, Data: 1 + d%4, Pipeline: 2, MicroBatch: 1, GlobalBatch: 24}
			_, err := s.Simulate(m, plan)
			errc <- err
		}(i)
	}
	for i := 0; i < 16; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

func TestTrainProjection(t *testing.T) {
	s := sim(t, 8, WithFidelity(taskgraph.OperatorLevel))
	m := model.Megatron3_6B()
	plan := parallel.Plan{Tensor: 2, Data: 4, Pipeline: 2, MicroBatch: 1, GlobalBatch: 16}
	rep, tr, err := s.Train(m, plan, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	wantIters := m.Iterations(1e9, plan.GlobalBatch)
	if tr.Iterations != wantIters {
		t.Fatalf("iterations = %d, want %d", tr.Iterations, wantIters)
	}
	if math.Abs(tr.TotalSeconds-float64(wantIters)*rep.IterTime) > 1e-6 {
		t.Fatal("total time != iterations x iteration time")
	}
}

func TestTensorParallelismReducesIterTimeSmallScale(t *testing.T) {
	// On one node with a compute-heavy model, t=4 should beat t=1 for
	// the same GPU count devoted to TP vs DP at fixed global batch.
	s := sim(t, 1, WithFidelity(taskgraph.OperatorLevel))
	m := model.Megatron3_6B()
	dp := parallel.Plan{Tensor: 1, Data: 4, Pipeline: 1, MicroBatch: 1, GlobalBatch: 8, GradientBuckets: 1}
	tp := parallel.Plan{Tensor: 4, Data: 1, Pipeline: 1, MicroBatch: 2, GlobalBatch: 8}
	rdp, err := s.Simulate(m, dp)
	if err != nil {
		t.Fatal(err)
	}
	rtp, err := s.Simulate(m, tp)
	if err != nil {
		t.Fatal(err)
	}
	// Not asserting the winner (that is the DSE's job), just that both
	// run and produce sane, differing results.
	if rdp.IterTime == rtp.IterTime {
		t.Fatal("distinct plans produced identical times; model too coarse")
	}
}
