package core

import (
	"reflect"
	"sync"
	"testing"

	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/parallel"
	"vtrain/internal/taskgraph"
)

// batchPlans is a mixed workload for the batch-equivalence tests: two
// structural shapes (pipeline depths 2 and 4), a pair of plans that share a
// shape while differing in micro-batch size (d=1,mb=2 vs d=2,mb=1 — same
// micro-batch count), and an exact duplicate, which must resolve through
// the report cache like a repeated Simulate.
func batchPlans() []parallel.Plan {
	return []parallel.Plan{
		{Tensor: 2, Data: 1, Pipeline: 2, MicroBatch: 2, GlobalBatch: 16, GradientBuckets: 2},
		{Tensor: 1, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 16, GradientBuckets: 2},
		{Tensor: 1, Data: 1, Pipeline: 4, MicroBatch: 1, GlobalBatch: 8},
		{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 16, GradientBuckets: 2},
		{Tensor: 2, Data: 1, Pipeline: 2, MicroBatch: 2, GlobalBatch: 16, GradientBuckets: 2}, // duplicate of [0]
	}
}

// TestSimulateBatchEquivalence pins SimulateBatch to the sequential
// contract: over a mixed batch — several shapes, mixed micro-batch sizes
// within one shape, a duplicate plan, and the K=1 edge — it must return
// reports byte-identical to individual Simulate calls and leave the caches
// with identical hit/miss/lowering counters.
func TestSimulateBatchEquivalence(t *testing.T) {
	m := model.Config{Name: "batch-tiny", Hidden: 256, Layers: 4, SeqLen: 128, Heads: 4, Vocab: 1024}
	plans := batchPlans()

	seqSim := sim(t, 8, WithFidelity(taskgraph.OperatorLevel))
	want := make([]Report, len(plans))
	for i, p := range plans {
		rep, err := seqSim.Simulate(m, p)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep
	}
	wantStats := seqSim.CacheStats()

	batchSim := sim(t, 8, WithFidelity(taskgraph.OperatorLevel))
	got, err := batchSim.SimulateBatch(m, plans)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plans {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("plan %s: batched report differs from sequential:\n batch: %+v\n  seq: %+v", plans[i], got[i], want[i])
		}
	}
	gotStats := batchSim.CacheStats()
	// Batching adds its own counters; everything the sequential path also
	// tracks must match exactly.
	gotStats.BatchReplays, gotStats.BatchedPlans = 0, 0
	if gotStats != wantStats {
		t.Errorf("cache stats diverge: batch %+v, sequential %+v", gotStats, wantStats)
	}

	// K=1 on a fresh simulator: one-lane batches take the scalar replay
	// path and must be just as identical.
	oneSim := sim(t, 8, WithFidelity(taskgraph.OperatorLevel))
	for i, p := range plans[:3] {
		reps, err := oneSim.SimulateBatch(m, []parallel.Plan{p})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(reps[0], want[i]) {
			t.Fatalf("plan %s: width-1 batch differs from sequential", p)
		}
	}

	// Empty batch: no reports, no error, no accounting.
	if reps, err := batchSim.SimulateBatch(m, nil); len(reps) != 0 || err != nil {
		t.Fatalf("empty batch: got (%v, %v)", reps, err)
	}
}

// TestSimulateBatchConcurrentSharedShape drives concurrent SimulateBatch
// calls whose plans all share one structural shape, so every goroutine
// binds and batch-replays the same cached graph at once. Run under -race
// this pins the immutability contract of the shared structure; the reports
// must also all agree with the sequential baseline.
func TestSimulateBatchConcurrentSharedShape(t *testing.T) {
	m := model.Config{Name: "batch-race", Hidden: 256, Layers: 4, SeqLen: 128, Heads: 4, Vocab: 1024}
	plans := []parallel.Plan{
		{Tensor: 1, Data: 1, Pipeline: 2, MicroBatch: 2, GlobalBatch: 16, GradientBuckets: 2},
		{Tensor: 2, Data: 1, Pipeline: 2, MicroBatch: 2, GlobalBatch: 16, GradientBuckets: 2},
		{Tensor: 1, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 16, GradientBuckets: 2},
		{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 16, GradientBuckets: 2},
	}

	seqSim := sim(t, 8, WithFidelity(taskgraph.OperatorLevel))
	want := make([]Report, len(plans))
	for i, p := range plans {
		rep, err := seqSim.Simulate(m, p)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep
	}

	// Report caching off so every call re-binds and re-replays the shared
	// structure instead of the first winner short-circuiting the rest.
	s := sim(t, 8, WithFidelity(taskgraph.OperatorLevel), WithCacheSize(0))
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reps, err := s.SimulateBatch(m, plans)
			if err != nil {
				errs <- err
				return
			}
			for i := range plans {
				if !reflect.DeepEqual(reps[i], want[i]) {
					t.Errorf("plan %s: concurrent batch report differs from sequential", plans[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSimulateBatchAcrossMatchesSequential pins the cross-sibling batch
// path: plans simulated on different ForCluster siblings — same structural
// shape, different hardware — must come back byte-identical to each
// sibling's own sequential Simulate, and mismatched input lengths must be
// rejected.
func TestSimulateBatchAcrossMatchesSequential(t *testing.T) {
	m := model.Config{Name: "batch-across", Hidden: 256, Layers: 4, SeqLen: 128, Heads: 4, Vocab: 1024}
	root := sim(t, 8, WithFidelity(taskgraph.OperatorLevel))
	small, err := root.ForCluster(hw.PaperCluster(4))
	if err != nil {
		t.Fatal(err)
	}

	// Same shape everywhere: pipeline depth 2, 8 micro-batches. The two
	// clusters price the same structure differently.
	plans := []parallel.Plan{
		{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 16, GradientBuckets: 2},
		{Tensor: 2, Data: 1, Pipeline: 2, MicroBatch: 2, GlobalBatch: 16, GradientBuckets: 2},
		{Tensor: 1, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 16, GradientBuckets: 2},
		{Tensor: 1, Data: 1, Pipeline: 2, MicroBatch: 2, GlobalBatch: 16, GradientBuckets: 2},
	}
	sims := []*Simulator{root, root, small, small}

	want := make([]Report, len(plans))
	for i := range plans {
		seq := sim(t, 8, WithFidelity(taskgraph.OperatorLevel))
		if sims[i] == small {
			if seq, err = seq.ForCluster(hw.PaperCluster(4)); err != nil {
				t.Fatal(err)
			}
		}
		if want[i], err = seq.Simulate(m, plans[i]); err != nil {
			t.Fatal(err)
		}
	}

	got, err := SimulateBatchAcross(m, sims, plans)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plans {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("plan %s on %d GPUs: cross-sibling report differs from sequential",
				plans[i], sims[i].Cluster().TotalGPUs())
		}
	}

	if _, err := SimulateBatchAcross(m, sims[:2], plans); err == nil {
		t.Fatal("mismatched sims/plans lengths must be rejected")
	}
}
