package core

import (
	"sync"

	"vtrain/internal/model"
	"vtrain/internal/parallel"
	"vtrain/internal/taskgraph"
)

// DefaultCacheSize is the report cache capacity of a new Simulator. A full
// MT-NLG design-space sweep evaluates a few thousand plans; 16Ki entries
// hold several sweeps at ~200 bytes per Report.
const DefaultCacheSize = 16384

// cacheKey identifies one simulated configuration. Both model.Config and
// parallel.Plan are flat comparable structs, so the tuple is a valid map
// key; the fidelity completes the configuration (one Simulator only ever
// uses one, but keying on it keeps the invariant explicit).
type cacheKey struct {
	model    model.Config
	plan     parallel.Plan
	fidelity taskgraph.Fidelity
}

// reportCache is a concurrency-safe, bounded (model, plan, fidelity) →
// Report cache with FIFO eviction. Design-space exploration, the cluster
// scheduler's offline profiling, and the Chinchilla search repeatedly
// evaluate overlapping configurations; deduping them to one simulation is
// the plan-level analogue of the profiler's kernel cache.
type reportCache struct {
	mu      sync.Mutex
	max     int
	entries map[cacheKey]Report
	// order is a FIFO ring of the inserted keys; head indexes the next
	// victim once the cache is full.
	order []cacheKey
	head  int
	hits, misses uint64
}

func newReportCache(max int) *reportCache {
	if max <= 0 {
		return nil
	}
	return &reportCache{
		max:     max,
		entries: make(map[cacheKey]Report, min(max, 1024)),
		order:   make([]cacheKey, 0, min(max, 1024)),
	}
}

func (c *reportCache) get(k cacheKey) (Report, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep, ok := c.entries[k]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return rep, ok
}

func (c *reportCache) put(k cacheKey, rep Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[k]; ok {
		c.entries[k] = rep
		return
	}
	if len(c.entries) < c.max {
		c.entries[k] = rep
		c.order = append(c.order, k)
		return
	}
	delete(c.entries, c.order[c.head])
	c.entries[k] = rep
	c.order[c.head] = k
	c.head = (c.head + 1) % c.max
}

func (c *reportCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
