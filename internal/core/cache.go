package core

import (
	"sync"

	"vtrain/internal/model"
	"vtrain/internal/parallel"
	"vtrain/internal/taskgraph"
)

// DefaultCacheSize is the report cache capacity of a new Simulator. A full
// MT-NLG design-space sweep evaluates a few thousand plans; 16Ki entries
// hold several sweeps at ~200 bytes per Report.
const DefaultCacheSize = 16384

// DefaultStructCacheSize is the structural-graph cache capacity of a new
// Simulator. A design-space sweep's thousands of plans collapse to a few
// dozen structural shapes — (schedule, pipeline depth, micro-batch count,
// interleaving, layer split, fidelity) tuples — but structural graphs are
// much larger than Reports, so the bound is far tighter than the report
// cache's.
const DefaultStructCacheSize = 128

// cacheKey identifies one simulated configuration. Both model.Config and
// parallel.Plan are flat comparable structs, so the tuple is a valid map
// key; the fidelity and contention level complete the configuration (one
// Simulator only ever uses one of each, but keying on them keeps the
// invariant explicit).
type cacheKey struct {
	model      model.Config
	plan       parallel.Plan
	fidelity   taskgraph.Fidelity
	contention bool
}

// reportCache is a concurrency-safe, bounded (model, plan, fidelity) →
// Report cache with FIFO eviction. Design-space exploration, the cluster
// scheduler's offline profiling, and the Chinchilla search repeatedly
// evaluate overlapping configurations; deduping them to one simulation is
// the plan-level analogue of the profiler's kernel cache.
type reportCache struct {
	mu      sync.Mutex
	max     int
	entries map[cacheKey]Report
	// order is a FIFO ring of the inserted keys; head indexes the next
	// victim once the cache is full.
	order        []cacheKey
	head         int
	hits, misses uint64
}

func newReportCache(max int) *reportCache {
	if max <= 0 {
		return nil
	}
	return &reportCache{
		max:     max,
		entries: make(map[cacheKey]Report, min(max, 1024)),
		order:   make([]cacheKey, 0, min(max, 1024)),
	}
}

func (c *reportCache) get(k cacheKey) (Report, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep, ok := c.entries[k]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return rep, ok
}

func (c *reportCache) put(k cacheKey, rep Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[k]; ok {
		c.entries[k] = rep
		return
	}
	if len(c.entries) < c.max {
		c.entries[k] = rep
		c.order = append(c.order, k)
		return
	}
	delete(c.entries, c.order[c.head])
	c.entries[k] = rep
	c.order[c.head] = k
	c.head = (c.head + 1) % c.max
}

func (c *reportCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// shapeKey identifies one structural shape: everything that determines the
// task-graph topology of a plan, and nothing that only determines its
// durations. Two plans with equal shapeKeys lower to identical structural
// graphs; their tensor width, data width, and micro-batch size differ only
// in the DurationTable bound at replay. The key deliberately contains no
// hardware fields: structural graphs are hardware-invariant (pinned by
// taskgraph.TestStructureHardwareInvariance), which is what lets
// ForCluster siblings share one structural cache across clusters.
type shapeKey struct {
	// model matters structurally through its layer count (the per-stage
	// layer split) and, conservatively, its other fields: a simulator may
	// sweep several models, and keying the whole comparable config keeps
	// each model's shapes distinct without a bespoke projection.
	model model.Config
	// schedule, pipeline, microBatches, and virtualStages select the slot
	// order and cross-stage dependency pattern.
	schedule      parallel.Schedule
	pipeline      int
	microBatches  int
	virtualStages int
	// recompute adds the recomputation operator chains to every backward.
	recompute bool
	// tensorPar and dataPar record the *presence* of tensor-parallel
	// All-Reduces and gradient All-Reduces; the widths themselves only
	// scale durations.
	tensorPar, dataPar bool
	// gradientBuckets is the requested bucket count; the effective
	// per-stage count derives from it plus the fields above.
	gradientBuckets int
	// fidelity selects kernel- vs operator-granularity tasks.
	fidelity taskgraph.Fidelity
}

// shapeOf projects a configuration onto its structural shape.
func shapeOf(m model.Config, plan parallel.Plan, fid taskgraph.Fidelity) shapeKey {
	v := plan.VirtualStages
	if v < 1 {
		v = 1
	}
	return shapeKey{
		model:           m,
		schedule:        plan.Schedule,
		pipeline:        plan.Pipeline,
		microBatches:    plan.MicroBatches(),
		virtualStages:   v,
		recompute:       plan.Recompute,
		tensorPar:       plan.Tensor > 1,
		dataPar:         plan.Data > 1,
		gradientBuckets: plan.GradientBuckets,
		fidelity:        fid,
	}
}

// structEntry is one structural-cache slot. The entry is inserted before
// the graph is lowered and built through its sync.Once, so concurrent
// misses on one shape lower exactly once — the others block on the Once and
// share the result (single-flight).
type structEntry struct {
	once sync.Once
	g    *taskgraph.Graph
	err  error
	// prefetched marks an entry inserted by ensure (the shape-prefetch
	// planner) that no demand lookup has seen yet. The first demand get of
	// such an entry counts as a miss — exactly what that get would have
	// recorded had the prefetcher not run — so prefetching never changes
	// the demand hit/miss totals a sweep reports. Guarded by
	// structCache.mu.
	prefetched bool
}

// structCache is the concurrency-safe, bounded shape → structural-graph
// cache with FIFO eviction. It is the lowering-level analogue of the report
// cache: where the report cache dedupes identical (model, plan)
// configurations, the structural cache dedupes the far coarser equivalence
// classes of plans sharing a topology, so a 2,000-point sweep lowers a few
// dozen graphs instead of 2,000.
type structCache struct {
	mu      sync.Mutex
	max     int
	entries map[shapeKey]*structEntry
	order   []shapeKey
	head    int
	hits    uint64
	misses  uint64
}

func newStructCache(max int) *structCache {
	if max <= 0 {
		return nil
	}
	return &structCache{
		max:     max,
		entries: make(map[shapeKey]*structEntry, min(max, 64)),
		order:   make([]shapeKey, 0, min(max, 64)),
	}
}

// get returns the structural graph for k, lowering it via build on the
// first request (and after an eviction). Lowering errors are cached with
// the entry: they are deterministic properties of the shape.
func (c *structCache) get(k shapeKey, build func() (*taskgraph.Graph, error)) (*taskgraph.Graph, error) {
	c.mu.Lock()
	e, ok := c.entries[k]
	if ok {
		if e.prefetched {
			// First demand lookup of a prefetched entry: the prefetcher
			// paid for the lowering, but without it this get would have
			// been the miss — count it as one, so demand accounting is
			// indistinguishable from an unprefetched sweep.
			e.prefetched = false
			c.misses++
		} else {
			c.hits++
		}
	} else {
		c.misses++
		e = new(structEntry)
		if len(c.entries) < c.max {
			c.entries[k] = e
			c.order = append(c.order, k)
		} else {
			delete(c.entries, c.order[c.head])
			c.entries[k] = e
			c.order[c.head] = k
			c.head = (c.head + 1) % c.max
		}
	}
	c.mu.Unlock()
	e.once.Do(func() { e.g, e.err = build() })
	return e.g, e.err
}

// ensure warms the entry for k without touching the demand hit/miss
// counters — the shape-prefetch path. If the entry already exists, ensure
// returns immediately; otherwise it inserts a prefetched entry (normal
// FIFO eviction applies) and runs build through the entry's Once, so a
// concurrent demand get for the same shape single-flights onto this
// lowering instead of repeating it. Build errors are cached on the entry
// exactly as get's are; the demand path surfaces them.
func (c *structCache) ensure(k shapeKey, build func() (*taskgraph.Graph, error)) {
	c.mu.Lock()
	if _, ok := c.entries[k]; ok {
		c.mu.Unlock()
		return
	}
	e := &structEntry{prefetched: true}
	if len(c.entries) < c.max {
		c.entries[k] = e
		c.order = append(c.order, k)
	} else {
		delete(c.entries, c.order[c.head])
		c.entries[k] = e
		c.order[c.head] = k
		c.head = (c.head + 1) % c.max
	}
	c.mu.Unlock()
	e.once.Do(func() { e.g, e.err = build() })
}

func (c *structCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
