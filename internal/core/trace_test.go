package core

import (
	"testing"

	"vtrain/internal/model"
	"vtrain/internal/parallel"
)

func TestSimulateTraceAndBreakdown(t *testing.T) {
	s := sim(t, 8)
	m := model.Megatron3_6B()
	plan := parallel.Plan{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 8, GradientBuckets: 2}
	rep, spans, err := s.SimulateTrace(m, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != rep.Tasks {
		t.Fatalf("spans = %d, tasks = %d", len(spans), rep.Tasks)
	}
	// The breakdown must cover the major classes and sum to the busy
	// time implied by the report.
	for _, class := range []string{"FwdMHA", "FwdFFN", "BwdMHA", "BwdFFN", "AllReduceTP", "AllReduceDP", "P2P", "WeightUpdate"} {
		if rep.Breakdown[class] <= 0 {
			t.Errorf("breakdown missing class %q", class)
		}
	}
	var total float64
	for _, v := range rep.Breakdown {
		total += v
	}
	stages := float64(plan.Pipeline)
	want := (rep.ComputeSeconds + rep.CommSeconds) * stages
	if rel := (total - want) / want; rel > 1e-9 || rel < -1e-9 {
		t.Fatalf("breakdown total %.6g != busy total %.6g", total, want)
	}
}

func TestSimulateTraceMatchesSimulate(t *testing.T) {
	s := sim(t, 8)
	m := model.Megatron3_6B()
	plan := parallel.Plan{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 8}
	plain, err := s.Simulate(m, plan)
	if err != nil {
		t.Fatal(err)
	}
	traced, _, err := s.SimulateTrace(m, plan)
	if err != nil {
		t.Fatal(err)
	}
	if plain.IterTime != traced.IterTime {
		t.Fatal("trace capture perturbed the prediction")
	}
}

func TestInterleavedPlanThroughFacade(t *testing.T) {
	s := sim(t, 8)
	m := model.Config{Name: "i8", Hidden: 512, Layers: 8, SeqLen: 256, Heads: 8, Vocab: 1024}
	base := parallel.Plan{Tensor: 2, Data: 2, Pipeline: 4, MicroBatch: 1, GlobalBatch: 16}
	inter := base
	inter.VirtualStages = 2
	rb, err := s.Simulate(m, base)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := s.Simulate(m, inter)
	if err != nil {
		t.Fatal(err)
	}
	if ri.IterTime >= rb.IterTime {
		t.Fatalf("interleaving did not help a bubble-bound plan: %.4g vs %.4g", ri.IterTime, rb.IterTime)
	}
	if ri.PeakMemoryBytes <= rb.PeakMemoryBytes {
		t.Fatal("interleaving should cost some activation residency")
	}
}
