package core

import (
	"fmt"
	"sync/atomic"

	"vtrain/internal/model"
	"vtrain/internal/parallel"
	"vtrain/internal/taskgraph"
)

// maxBatchWidth bounds the lanes of one batched replay. Batch scratch is
// O(tasks x lanes); sixteen lanes amortize the structural walk almost
// completely while keeping the columnar state cache-resident for the
// sweep-sized graphs batching targets.
const maxBatchWidth = 16

// Shape is an opaque identifier of a plan's structural equivalence class
// under one simulator: two plans with equal Shapes lower to the same
// structural task graph (and therefore batch together in SimulateBatch).
// Shape is comparable, so sweep drivers use it directly as a map key to
// group pending plans before flushing them through SimulateBatch.
type Shape struct {
	key shapeKey
}

// PlanShape projects (m, plan) onto its structural Shape at the simulator's
// fidelity. ForCluster siblings agree on shapes: the projection contains no
// hardware fields, mirroring the shared structural cache.
func (s *Simulator) PlanShape(m model.Config, plan parallel.Plan) Shape {
	return Shape{key: shapeOf(m, plan, s.fidelity)}
}

// PlanError attributes a SimulateBatch failure to the plan that caused it.
// Err is exactly the error an individual Simulate of that plan would have
// returned, so callers that unwrap PlanError can report batched and
// sequential failures identically.
type PlanError struct {
	Plan parallel.Plan
	Err  error
}

// Error implements error.
func (e *PlanError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying simulation error to errors.Is/As.
func (e *PlanError) Unwrap() error { return e.Err }

// batchStats counts batched replay passes and the plans they carried.
// ForCluster siblings share one instance (like the structural cache), so a
// multi-cluster sweep reports its batching behavior in one place.
type batchStats struct {
	replays atomic.Uint64
	plans   atomic.Uint64
}

// SimulateBatch predicts the iteration time of m under every plan in plans,
// returning reports in input order. It is equivalent to len(plans)
// sequential Simulate calls — same reports (bit-identical; each lane of a
// batched replay performs the sequential replay's float operations in the
// same order), same report- and structural-cache accounting, single-flight
// lowering preserved — but plans sharing a structural shape replay the
// shared graph's CSR structure once for up to maxBatchWidth duration tables
// at a time, which is what makes wide design-space sweeps cheap.
//
// On error the returned reports are nil and the error is a *PlanError
// naming the offending plan; reports of plans already simulated may have
// been cached. Concurrent SimulateBatch calls (including ones sharing a
// shape) are safe, like Simulate.
func (s *Simulator) SimulateBatch(m model.Config, plans []parallel.Plan) ([]Report, error) {
	return simulateBatchAcross(m, nil, s, plans)
}

// SimulateBatchAcross is SimulateBatch across ForCluster siblings: sims[i]
// simulates plans[i] on its own cluster, and plans from different siblings
// that share a structural shape batch into one replay — the structure is
// hardware-invariant, only each lane's bound durations differ. Joint
// (hardware x plan) sweeps use it to raise batch width far beyond what any
// single candidate's plan grid allows.
//
// Every sims[i] must derive from one root simulator (see ForCluster) so the
// siblings share a structural cache; unrelated simulators still produce
// correct reports but group into disjoint batches. Reports, caching, and
// errors follow the SimulateBatch contract, with each index served by its
// own simulator.
func SimulateBatchAcross(m model.Config, sims []*Simulator, plans []parallel.Plan) ([]Report, error) {
	if len(sims) != len(plans) {
		return nil, fmt.Errorf("core: SimulateBatchAcross got %d simulators for %d plans", len(sims), len(plans))
	}
	return simulateBatchAcross(m, sims, nil, plans)
}

// simulateBatchAcross implements SimulateBatch and SimulateBatchAcross.
// Exactly one of sims (per-index simulator) and single (one simulator for
// every index) is non-nil.
func simulateBatchAcross(m model.Config, sims []*Simulator, single *Simulator, plans []parallel.Plan) ([]Report, error) {
	simOf := func(i int) *Simulator {
		if sims != nil {
			return sims[i]
		}
		return single
	}
	reports := make([]Report, len(plans))

	// Report-cache pass, in input order. A duplicate of a pending plan on
	// the same simulator is resolved after its first occurrence simulates —
	// through a cache get, so hit/miss totals match the sequential call
	// sequence. (The same plan on different siblings is not a duplicate:
	// their clusters differ, so their reports do.)
	type seenKey struct {
		sim *Simulator
		key cacheKey
	}
	pending := make([]int, 0, len(plans))
	var dups []int
	var seen map[seenKey]bool
	for i, plan := range plans {
		si := simOf(i)
		if si.cache == nil {
			pending = append(pending, i)
			continue
		}
		key := seenKey{sim: si, key: cacheKey{model: m, plan: plan, fidelity: si.fidelity, contention: si.contention}}
		if seen[key] {
			dups = append(dups, i)
			continue
		}
		if rep, ok := si.cache.get(key.key); ok {
			reports[i] = rep
			continue
		}
		if seen == nil {
			seen = make(map[seenKey]bool)
		}
		seen[key] = true
		pending = append(pending, i)
	}

	// Group the pending plans by structural graph. structural() is called
	// per plan in input order — identical validation and structural-cache
	// accounting to sequential Simulates; plans of one shape resolve to one
	// *Graph (single-flight across siblings sharing the cache), which is
	// the grouping key.
	type group struct {
		tg  *taskgraph.Graph
		idx []int
	}
	var groups []group
	var byGraph map[*taskgraph.Graph]int
	for _, i := range pending {
		tg, err := simOf(i).structural(m, plans[i])
		if err != nil {
			return nil, &PlanError{Plan: plans[i], Err: err}
		}
		if byGraph == nil {
			byGraph = make(map[*taskgraph.Graph]int)
		}
		gi, ok := byGraph[tg]
		if !ok {
			gi = len(groups)
			byGraph[tg] = gi
			groups = append(groups, group{tg: tg})
		}
		groups[gi].idx = append(groups[gi].idx, i)
	}

	// Bind each plan's table against its group's shared structure and
	// batch-replay, up to maxBatchWidth lanes per pass. Each lane binds
	// with its own simulator's profiler, comm model, and cluster.
	for _, gr := range groups {
		for lo := 0; lo < len(gr.idx); lo += maxBatchWidth {
			hi := min(lo+maxBatchWidth, len(gr.idx))
			chunk := gr.idx[lo:hi]
			tables := make([]*taskgraph.DurationTable, len(chunk))
			// Contention tables are per lane, like duration tables: siblings
			// in one chunk may differ in contention level, and a fully ideal
			// chunk passes cts == nil so the batch replay stays on the
			// contention-free code path.
			var cts []*taskgraph.ContentionTable
			for j, i := range chunk {
				si := simOf(i)
				tables[j] = gr.tg.Bind(si.profiler, si.comm, plans[i], si.cluster)
				if si.contention {
					if cts == nil {
						cts = make([]*taskgraph.ContentionTable, len(chunk))
					}
					cts[j] = gr.tg.BindContention(plans[i], si.cluster, tables[j])
				}
			}
			results, err := gr.tg.ReplayBatchContended(tables, cts)
			// ForCluster siblings share one batchStats, so counting the
			// chunk against its first lane's simulator records the whole
			// sweep's batching in one place.
			if st := simOf(chunk[0]).batches; st != nil {
				st.replays.Add(1)
				st.plans.Add(uint64(len(chunk)))
			}
			if err != nil {
				for _, t := range tables {
					t.Release()
				}
				// A replay error is structural: it afflicts every lane.
				// Attribute it to the chunk's first plan, wrapped exactly
				// as an individual Simulate would wrap it.
				p := plans[chunk[0]]
				return nil, &PlanError{Plan: p, Err: fmt.Errorf("core: simulating %s under %s: %w", m.Name, p, err)}
			}
			for j, i := range chunk {
				si := simOf(i)
				rep := si.assembleReport(m, plans[i], results[j])
				reports[i] = rep
				if si.cache != nil {
					si.cache.put(cacheKey{model: m, plan: plans[i], fidelity: si.fidelity, contention: si.contention}, rep)
				}
				tables[j].Release()
			}
		}
	}

	// Duplicates resolve through Simulate: normally a cache hit on the
	// report their first occurrence put — exactly the lookup a sequential
	// call sequence would record — and a fresh simulation in the edge case
	// where a tiny cache already evicted it, again like sequential calls.
	for _, i := range dups {
		rep, err := simOf(i).Simulate(m, plans[i])
		if err != nil {
			return nil, &PlanError{Plan: plans[i], Err: err}
		}
		reports[i] = rep
	}
	return reports, nil
}
