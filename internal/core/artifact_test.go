package core

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vtrain/internal/hw"
	"vtrain/internal/parallel"
	"vtrain/internal/taskgraph"
)

// mangleArtifacts flips one byte in the middle of every file in dir.
func mangleArtifacts(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("no artifacts to mangle")
	}
	for _, e := range ents {
		p := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xFF
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEnsureStructurePrefetchAccounting pins the prefetch contract: warming
// a shape ahead of demand must not perturb the demand-side hit/miss
// counters — the first demand get of a prefetched entry counts as the miss
// it would have been, later gets as hits — so sweep statistics are
// byte-identical whether or not the prefetcher ran.
func TestEnsureStructurePrefetchAccounting(t *testing.T) {
	s := sim(t, 4, WithFidelity(taskgraph.OperatorLevel))
	m, plan := forClusterModel(), forClusterPlan()

	s.EnsureStructure(m, plan)
	if st := s.CacheStats(); st.StructHits != 0 || st.StructMisses != 0 {
		t.Fatalf("prefetch counted demand traffic: %+v", st)
	}
	if st := s.CacheStats(); st.Lowerings != 1 {
		t.Fatalf("prefetch lowered %d graphs, want 1", st.Lowerings)
	}

	if _, err := s.Simulate(m, plan); err != nil {
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.StructHits != 0 || st.StructMisses != 1 {
		t.Fatalf("first demand get of a prefetched shape must count as the miss: %+v", st)
	}
	// Same shape (t/d widths don't change structure, microBatches stays
	// 4), different plan: a structural hit.
	plan2 := parallel.Plan{Tensor: 2, Data: 4, Pipeline: 2, MicroBatch: 1, GlobalBatch: 16, GradientBuckets: 2}
	if _, err := s.Simulate(m, plan2); err != nil {
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.StructHits != 1 || st.StructMisses != 1 || st.Lowerings != 1 {
		t.Fatalf("after demand hit: %+v", st)
	}

	// Prefetching an invalid configuration is a silent no-op: the demand
	// path will surface the error to the caller who can handle it.
	s.EnsureStructure(m, parallel.Plan{})
	if st := s.CacheStats(); st.Lowerings != 1 {
		t.Fatalf("invalid prefetch changed counters: %+v", st)
	}
}

// TestArtifactTierWarmStart is the cross-process promise in miniature: a
// second simulator over the same artifact directory must produce an
// identical report with zero lowerings, serving structure and operator
// table from disk.
func TestArtifactTierWarmStart(t *testing.T) {
	dir := t.TempDir()
	m, plan := forClusterModel(), forClusterPlan()

	cold := sim(t, 4, WithFidelity(taskgraph.OperatorLevel), WithArtifactDir(dir))
	repCold, err := cold.Simulate(m, plan)
	if err != nil {
		t.Fatal(err)
	}
	stCold := cold.CacheStats()
	if stCold.Lowerings != 1 {
		t.Fatalf("cold run lowered %d graphs, want 1", stCold.Lowerings)
	}
	if stCold.DiskMisses == 0 || stCold.DiskWrites == 0 {
		t.Fatalf("cold run did not touch the disk tier: %+v", stCold)
	}
	if stCold.DiskHits != 0 {
		t.Fatalf("cold run hit a disk artifact in a fresh directory: %+v", stCold)
	}

	warm := sim(t, 4, WithFidelity(taskgraph.OperatorLevel), WithArtifactDir(dir))
	repWarm, err := warm.Simulate(m, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(repWarm, repCold) {
		t.Fatalf("warm report %+v differs from cold report %+v", repWarm, repCold)
	}
	stWarm := warm.CacheStats()
	if stWarm.Lowerings != 0 {
		t.Fatalf("warm run lowered %d graphs, want 0", stWarm.Lowerings)
	}
	// The graph load must hit. (The operator table may legitimately miss:
	// it is persisted piggyback on later graph writes, and a one-shape cold
	// run never wrote again after profiling filled the table.)
	if stWarm.DiskHits == 0 {
		t.Fatalf("warm run missed the disk tier: %+v", stWarm)
	}
	// Warm demand traffic still reads as a structural miss — the
	// memory-tier counters describe memory, not where the fill came from.
	if stWarm.StructMisses != 1 {
		t.Fatalf("warm StructMisses = %d, want 1", stWarm.StructMisses)
	}
}

// TestArtifactTierDisabledByDefault: without WithArtifactDir the simulator
// never touches the disk counters, pinning the no-behavior-change contract.
func TestArtifactTierDisabledByDefault(t *testing.T) {
	s := sim(t, 4, WithFidelity(taskgraph.OperatorLevel))
	if _, err := s.Simulate(forClusterModel(), forClusterPlan()); err != nil {
		t.Fatal(err)
	}
	st := s.CacheStats()
	if st.DiskHits != 0 || st.DiskMisses != 0 || st.DiskWrites != 0 {
		t.Fatalf("disk counters moved without an artifact dir: %+v", st)
	}
}

// TestForClusterSharesArtifactStore: siblings inherit the parent's store —
// structural artifacts are hardware-invariant, so a joint sweep shares one
// directory — and an attempt to re-point a sibling elsewhere is rejected
// like any other shared-cache mutation.
func TestForClusterSharesArtifactStore(t *testing.T) {
	dir := t.TempDir()
	root, err := New(hw.PaperCluster(4), WithFidelity(taskgraph.OperatorLevel), WithArtifactDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	sib, err := root.ForCluster(hw.Catalog()[0].Cluster(1))
	if err != nil {
		t.Fatal(err)
	}
	if sib.artifacts != root.artifacts {
		t.Fatal("sibling does not share the parent's artifact store")
	}
	if _, err := root.ForCluster(hw.Catalog()[0].Cluster(1), WithArtifactDir(t.TempDir())); err == nil {
		t.Fatal("ForCluster accepted a different artifact dir")
	}

	if _, err := sib.Simulate(forClusterModel(), forClusterPlan()); err != nil {
		t.Fatal(err)
	}
	// The sibling's disk traffic shows up in the parent's stats: one
	// shared store, one set of counters.
	if st := root.CacheStats(); st.DiskWrites == 0 {
		t.Fatalf("sibling write invisible in parent stats: %+v", st)
	}
}

// TestArtifactCorruptionFallsBackToLowering: a mangled on-disk artifact
// must cost a re-lowering, not an error and not a wrong report.
func TestArtifactCorruptionFallsBackToLowering(t *testing.T) {
	dir := t.TempDir()
	m, plan := forClusterModel(), forClusterPlan()

	ref, err := sim(t, 4, WithFidelity(taskgraph.OperatorLevel)).Simulate(m, plan)
	if err != nil {
		t.Fatal(err)
	}
	cold := sim(t, 4, WithFidelity(taskgraph.OperatorLevel), WithArtifactDir(dir))
	if _, err := cold.Simulate(m, plan); err != nil {
		t.Fatal(err)
	}
	mangleArtifacts(t, dir)

	warm := sim(t, 4, WithFidelity(taskgraph.OperatorLevel), WithArtifactDir(dir))
	rep, err := warm.Simulate(m, plan)
	if err != nil {
		t.Fatalf("corrupt artifacts must fall back silently, got %v", err)
	}
	if !reflect.DeepEqual(rep, ref) {
		t.Fatalf("report after corruption %+v differs from reference %+v", rep, ref)
	}
	st := warm.CacheStats()
	if st.Lowerings != 1 {
		t.Fatalf("corrupt graph artifact was not re-lowered: %+v", st)
	}
	if st.DiskHits != 0 {
		t.Fatalf("corrupt artifacts counted as hits: %+v", st)
	}
}
