package core

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"vtrain/internal/model"
	"vtrain/internal/parallel"
	"vtrain/internal/taskgraph"
)

// shapePairs returns, per pipeline schedule, a representative plan and a
// second plan sharing its structural shape but differing in every
// duration-bearing axis the shape admits: tensor width, data width, and
// micro-batch size (with the micro-batch count held fixed).
func shapePairs() []struct {
	name     string
	rep, alt parallel.Plan
} {
	return []struct {
		name     string
		rep, alt parallel.Plan
	}{
		{
			name: "1F1B",
			rep:  parallel.Plan{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 2, GlobalBatch: 16, GradientBuckets: 2},
			alt:  parallel.Plan{Tensor: 4, Data: 4, Pipeline: 2, MicroBatch: 1, GlobalBatch: 16, GradientBuckets: 2},
		},
		{
			name: "GPipe",
			rep:  parallel.Plan{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 2, GlobalBatch: 16, GradientBuckets: 2, Schedule: parallel.GPipe},
			alt:  parallel.Plan{Tensor: 4, Data: 4, Pipeline: 2, MicroBatch: 1, GlobalBatch: 16, GradientBuckets: 2, Schedule: parallel.GPipe},
		},
		{
			name: "interleaved",
			rep:  parallel.Plan{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 2, GlobalBatch: 16, GradientBuckets: 2, VirtualStages: 2},
			alt:  parallel.Plan{Tensor: 4, Data: 4, Pipeline: 2, MicroBatch: 1, GlobalBatch: 16, GradientBuckets: 2, VirtualStages: 2},
		},
	}
}

// TestSharedStructureEquivalence is the refactor's acceptance property: for
// every schedule, replaying a plan through a structural graph lowered from
// a *different* plan of the same shape must produce a Report and Chrome
// trace byte-identical to a from-scratch per-plan lowering.
func TestSharedStructureEquivalence(t *testing.T) {
	m := model.Config{Name: "equiv", Hidden: 256, Layers: 4, SeqLen: 128, Heads: 8, Vocab: 1024}
	for _, fid := range []taskgraph.Fidelity{taskgraph.TaskLevel, taskgraph.OperatorLevel} {
		for _, pair := range shapePairs() {
			// fresh lowers every plan itself; shared is warmed with the
			// representative so pair.alt replays a borrowed structure.
			fresh := sim(t, 8, WithFidelity(fid), WithCacheSize(0), WithStructCacheSize(0))
			shared := sim(t, 8, WithFidelity(fid), WithCacheSize(0))
			if _, err := shared.Simulate(m, pair.rep); err != nil {
				t.Fatalf("%s rep: %v", pair.name, err)
			}

			wantRep, wantSpans, err := fresh.SimulateTrace(m, pair.alt)
			if err != nil {
				t.Fatalf("%s fresh: %v", pair.name, err)
			}
			gotRep, gotSpans, err := shared.SimulateTrace(m, pair.alt)
			if err != nil {
				t.Fatalf("%s shared: %v", pair.name, err)
			}

			st := shared.CacheStats()
			if st.StructHits == 0 {
				t.Fatalf("%s: alt plan did not share the representative's structure (%+v)", pair.name, st)
			}
			if !reflect.DeepEqual(gotRep, wantRep) {
				t.Fatalf("%s: shared-structure report differs from fresh lowering:\n got %+v\nwant %+v",
					pair.name, gotRep, wantRep)
			}
			var want, got bytes.Buffer
			if err := taskgraph.WriteChromeTrace(&want, wantSpans); err != nil {
				t.Fatal(err)
			}
			if err := taskgraph.WriteChromeTrace(&got, gotSpans); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("%s: shared-structure Chrome trace is not byte-identical to fresh lowering", pair.name)
			}
		}
	}
}

// TestStructCacheSharesAcrossPlans verifies the cache accounting: distinct
// plans of one shape lower one graph, and a shape change lowers another.
func TestStructCacheSharesAcrossPlans(t *testing.T) {
	s := sim(t, 8, WithFidelity(taskgraph.OperatorLevel), WithCacheSize(0))
	m := model.Megatron3_6B()
	// Same shape: nmb = 24/(d*mb) = 6 throughout, t/d vary.
	plans := []parallel.Plan{
		{Tensor: 1, Data: 1, Pipeline: 2, MicroBatch: 4, GlobalBatch: 24, GradientBuckets: 2},
		{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 2, GlobalBatch: 24, GradientBuckets: 2},
		{Tensor: 2, Data: 4, Pipeline: 2, MicroBatch: 1, GlobalBatch: 24, GradientBuckets: 2},
	}
	for _, p := range plans {
		if _, err := s.Simulate(m, p); err != nil {
			t.Fatal(err)
		}
	}
	st := s.CacheStats()
	// Plans 2 and 3 share one structure; plan 1 differs (t = d = 1 omits
	// both All-Reduce families).
	if st.StructMisses != 2 || st.StructHits != 1 {
		t.Fatalf("structural cache stats = %+v, want 2 misses / 1 hit", st)
	}
	// A different pipeline depth is a new shape.
	if _, err := s.Simulate(m, parallel.Plan{Tensor: 2, Data: 2, Pipeline: 3, MicroBatch: 2, GlobalBatch: 24, GradientBuckets: 2}); err != nil {
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.StructMisses != 3 {
		t.Fatalf("new pipeline depth did not lower a new structure: %+v", st)
	}
}

// TestStructCacheDisabled pins the opt-out: with WithStructCacheSize(0)
// every simulation lowers from scratch and no structural stats accumulate.
func TestStructCacheDisabled(t *testing.T) {
	s := sim(t, 8, WithFidelity(taskgraph.OperatorLevel), WithCacheSize(0), WithStructCacheSize(0))
	m := model.Megatron3_6B()
	for i := 0; i < 2; i++ {
		if _, err := s.Simulate(m, cachePlan(2)); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.CacheStats(); st.StructHits != 0 || st.StructMisses != 0 {
		t.Fatalf("disabled structural cache recorded traffic: %+v", st)
	}
}

// TestStructCacheValidatesOnHit ensures a structural-cache hit does not
// bypass per-plan validation: an invalid plan sharing a cached shape key
// must still be rejected.
func TestStructCacheValidatesOnHit(t *testing.T) {
	s := sim(t, 8, WithFidelity(taskgraph.OperatorLevel), WithCacheSize(0))
	m := model.Megatron3_6B() // 32 heads
	good := parallel.Plan{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 2, GlobalBatch: 16, GradientBuckets: 2}
	if _, err := s.Simulate(m, good); err != nil {
		t.Fatal(err)
	}
	// Same shape key (t>1, same nmb), but t=3 does not divide the node
	// size: validation must fire even though the structure is cached.
	bad := good
	bad.Tensor = 3
	if _, err := s.Simulate(m, bad); err == nil {
		t.Fatal("invalid plan accepted via structural-cache hit")
	}
}

// TestConcurrentPlansSharingShape floods one simulator with goroutines
// simulating *distinct* plans that all share a single structural shape (run
// under -race). Duration binding must never mutate the shared graph: every
// plan's result must equal its own fresh-simulator reference.
func TestConcurrentPlansSharingShape(t *testing.T) {
	m := model.Config{Name: "race", Hidden: 256, Layers: 4, SeqLen: 128, Heads: 8, Vocab: 1024}
	// Distinct (t, d, mb) with nmb = 48/(d*mb) = 12 held fixed: one shape.
	plans := []parallel.Plan{
		{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 2, GlobalBatch: 48, GradientBuckets: 2},
		{Tensor: 2, Data: 4, Pipeline: 2, MicroBatch: 1, GlobalBatch: 48, GradientBuckets: 2},
		{Tensor: 4, Data: 2, Pipeline: 2, MicroBatch: 2, GlobalBatch: 48, GradientBuckets: 2},
		{Tensor: 4, Data: 4, Pipeline: 2, MicroBatch: 1, GlobalBatch: 48, GradientBuckets: 2},
		{Tensor: 8, Data: 2, Pipeline: 2, MicroBatch: 2, GlobalBatch: 48, GradientBuckets: 2},
		{Tensor: 8, Data: 4, Pipeline: 2, MicroBatch: 1, GlobalBatch: 48, GradientBuckets: 2},
	}

	want := make([]Report, len(plans))
	for i, p := range plans {
		ref := sim(t, 16, WithFidelity(taskgraph.TaskLevel), WithCacheSize(0), WithStructCacheSize(0))
		rep, err := ref.Simulate(m, p)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep
	}

	// Report cache off so every call re-binds against the shared structure.
	s := sim(t, 16, WithFidelity(taskgraph.TaskLevel), WithCacheSize(0))
	const goroutines = 24
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 6; j++ {
				k := (i + j) % len(plans)
				rep, err := s.Simulate(m, plans[k])
				if err != nil {
					errs[i] = err
					return
				}
				if !reflect.DeepEqual(rep, want[k]) {
					errs[i] = errReportMismatch
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := s.CacheStats()
	if st.StructMisses != 1 {
		t.Fatalf("plans of one shape lowered %d structures, want 1 (single-flight)", st.StructMisses)
	}
}
