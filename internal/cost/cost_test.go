package cost

import (
	"math"
	"testing"

	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/resilience"
)

func TestUtilizationMTNLGBaseline(t *testing.T) {
	// Table I row 1: MT-NLG (8,8,35), 42.59 s iterations, 2,240 GPUs,
	// batch 1,920 -> 42.67 % utilization. The definition must reproduce
	// the paper's number from the paper's own iteration time.
	m := model.MTNLG530B()
	got := Utilization(m, 1920, 42.59, 2240, hw.A100SXM80GB())
	if math.Abs(got-0.4267) > 0.01 {
		t.Fatalf("Utilization = %.4f, want ~0.4267 (Table I)", got)
	}
}

func TestUtilizationEdgeCases(t *testing.T) {
	m := model.GPT3175B()
	if Utilization(m, 1024, 0, 8, hw.A100SXM80GB()) != 0 {
		t.Fatal("zero iteration time must yield zero utilization")
	}
	if Utilization(m, 1024, 1, 0, hw.A100SXM80GB()) != 0 {
		t.Fatal("zero GPUs must yield zero utilization")
	}
}

func TestTrainReproducesTableIEconomics(t *testing.T) {
	// Table I row 1: 42.59 s/iter, 270B tokens, 2,240 GPUs at $5/GPU-h
	// -> 33.52 days, $11,200/hour, $9.01M.
	m := model.MTNLG530B()
	c := hw.PaperCluster(280)
	tr := Train(m, 1920, 42.59, 2240, 270e9, c)
	if math.Abs(tr.Days-33.52) > 0.5 {
		t.Errorf("Days = %.2f, want ~33.52", tr.Days)
	}
	if math.Abs(tr.DollarsPerHour-11200) > 1 {
		t.Errorf("DollarsPerHour = %.0f, want 11,200", tr.DollarsPerHour)
	}
	if math.Abs(tr.TotalDollars-9.01e6)/9.01e6 > 0.02 {
		t.Errorf("TotalDollars = %.3g, want ~9.01e6", tr.TotalDollars)
	}
	if tr.Iterations < 65000 || tr.Iterations > 71000 {
		t.Errorf("Iterations = %d, want ~68,000", tr.Iterations)
	}
}

func TestTimeForUtilizationFigure1(t *testing.T) {
	// Fig. 1: GPT-3 175B, 300B tokens, 1,024 A100s. At ~50 % utilization
	// training takes roughly 20-25 days; at 40 % it takes ~8 days more.
	m := model.GPT3175B()
	g := hw.A100SXM80GB()
	d50 := TimeForUtilization(m, 300e9, 1024, 0.50, g)
	d40 := TimeForUtilization(m, 300e9, 1024, 0.40, g)
	if d50 < 18 || d50 > 27 {
		t.Errorf("days at 50%% = %.1f, want ~20-25", d50)
	}
	delta := d40 - d50
	if delta < 4 || delta > 9 {
		t.Errorf("40%% vs 50%% delta = %.1f days, want ~5-8 (Fig. 1's 'additional 8 days at 10%% drop')", delta)
	}
	if TimeForUtilization(m, 300e9, 1024, 0, g) != 0 {
		t.Error("zero utilization must return 0 rather than dividing by zero")
	}
}

func TestTrainingTimeInverseInUtilization(t *testing.T) {
	m := model.GPT3175B()
	g := hw.A100SXM80GB()
	d30 := TimeForUtilization(m, 300e9, 1024, 0.30, g)
	d60 := TimeForUtilization(m, 300e9, 1024, 0.60, g)
	if math.Abs(d30-2*d60) > 1e-9 {
		t.Fatalf("doubling utilization must halve time: %.3f vs %.3f", d30, d60)
	}
}

func TestDuration(t *testing.T) {
	if got := Duration(1.5); got.Seconds() != 1.5 {
		t.Fatalf("Duration(1.5) = %v", got)
	}
}

// TestGPUHoursAndCatalogPricing checks GPUHours accounting and that the
// same training run is priced per the cluster's own catalog rate.
func TestGPUHoursAndCatalogPricing(t *testing.T) {
	m := model.MTNLG530B()
	for _, off := range hw.Catalog() {
		c := off.Cluster(10)
		tr := Train(m, 1920, 60.0, c.TotalGPUs(), 270e9, c)
		wantHours := float64(c.TotalGPUs()) * tr.TotalSeconds / 3600
		if math.Abs(tr.GPUHours-wantHours) > 1e-6*wantHours {
			t.Errorf("%s: GPUHours = %g, want %g", off.Name, tr.GPUHours, wantHours)
		}
		if want := tr.GPUHours * off.DollarsPerGPUHour; math.Abs(tr.TotalDollars-want) > 1e-6*want {
			t.Errorf("%s: TotalDollars = %g, want GPU-hours x catalog rate = %g", off.Name, tr.TotalDollars, want)
		}
	}
}

// TestApplyResilienceStretchesEconomics pins the failure-adjusted report:
// effective time is ideal time divided by goodput, dollars and GPU-hours
// stretch with it, and the ideal Training inside a ResilientTraining is
// byte-identical to what cost.Train returns on its own — resilience is a
// pure post-processing layer.
func TestApplyResilienceStretchesEconomics(t *testing.T) {
	m := model.MTNLG530B()
	c := hw.PaperCluster(280)
	ideal := Train(m, 1920, 44.4, 2240, 270e9, c)

	rt, err := TrainWithResilience(m, 1920, 44.4, 2240, 270e9, c, resilience.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Training != ideal {
		t.Fatalf("embedded Training diverged from cost.Train: %+v vs %+v", rt.Training, ideal)
	}
	g := rt.GoodputFraction
	if g <= 0 || g >= 1 {
		t.Fatalf("goodput = %v, want (0,1) at MT-NLG scale", g)
	}
	if got, want := rt.EffectiveDays, ideal.Days/g; math.Abs(got-want) > 1e-9 {
		t.Errorf("EffectiveDays = %v, want Days/goodput = %v", got, want)
	}
	if got, want := rt.EffectiveDollars, ideal.TotalDollars/g; math.Abs(got/want-1) > 1e-12 {
		t.Errorf("EffectiveDollars = %v, want TotalDollars/goodput = %v", got, want)
	}
	if got, want := rt.EffectiveGPUHours, ideal.GPUHours/g; math.Abs(got/want-1) > 1e-12 {
		t.Errorf("EffectiveGPUHours = %v, want GPUHours/goodput = %v", got, want)
	}
	if rt.EffectiveDollars <= ideal.TotalDollars {
		t.Error("failure-adjusted cost must exceed the ideal cost")
	}
	if rt.ExpectedFailures <= 0 {
		t.Error("a 2,240-GPU month-long run must expect failures")
	}
	sum := rt.CheckpointFraction + rt.ReworkFraction + rt.RestartFraction + g
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("fractions + goodput = %v, want 1", sum)
	}
}

// TestTrainWithResilienceOverridesAndErrors pins the option plumbing and
// the failure modes: overrides shift the goodput the right direction, and
// a cluster with no resilience data errors instead of guessing.
func TestTrainWithResilienceOverridesAndErrors(t *testing.T) {
	m := model.Megatron18_4B()
	c := hw.PaperCluster(16)

	def, err := TrainWithResilience(m, 512, 3.7, 128, 300e9, c, resilience.Options{})
	if err != nil {
		t.Fatal(err)
	}
	flaky, err := TrainWithResilience(m, 512, 3.7, 128, 300e9, c, resilience.Options{MTBF: 100 * 3600})
	if err != nil {
		t.Fatal(err)
	}
	if flaky.GoodputFraction >= def.GoodputFraction {
		t.Errorf("hundred-hour MTBF goodput %v not below catalog %v", flaky.GoodputFraction, def.GoodputFraction)
	}
	slow, err := TrainWithResilience(m, 512, 3.7, 128, 300e9, c, resilience.Options{WriteBandwidth: 100e6})
	if err != nil {
		t.Fatal(err)
	}
	if slow.GoodputFraction >= def.GoodputFraction {
		t.Errorf("slow-storage goodput %v not below catalog %v", slow.GoodputFraction, def.GoodputFraction)
	}

	bare := c
	bare.Node.GPU.MTBF = 0
	if _, err := TrainWithResilience(m, 512, 3.7, 128, 300e9, bare, resilience.Options{}); err == nil {
		t.Error("cluster without MTBF data accepted")
	}
	if _, err := TrainWithResilience(m, 512, 3.7, 128, 300e9, bare, resilience.Options{MTBF: 50000 * 3600}); err != nil {
		t.Errorf("override should substitute for missing catalog data: %v", err)
	}
}
