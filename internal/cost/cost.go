// Package cost converts simulated iteration times into the quantities the
// paper's case studies optimize: end-to-end wall-clock training time, GPU
// compute utilization, and monetary training cost. Pricing follows the
// paper's AWS-proxy method (Table I: EC2 P4d at $5 per GPU-hour) but is not
// fixed to it: every cluster carries its own per-GPU-hour rate, and the
// hardware catalog in internal/hw pins one per GPU generation, so the same
// arithmetic prices V100, A100, and H100 clusters for cluster-design
// exploration.
package cost

import (
	"time"

	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/resilience"
)

// SecondsPerDay converts between iteration seconds and report days.
const SecondsPerDay = 86400.0

// Utilization returns GPU compute utilization as defined in Fig. 1 and
// Table I: achieved model FLOPS relative to aggregate peak FLOPS,
//
//	util = (6 · params · tokensPerIter) / (iterTime · GPUs · peak)
//
// i.e. the standard model-FLOPs utilization with the 6·N·T analytic count.
func Utilization(m model.Config, batchSeqs int, iterTime float64, gpus int, g hw.GPU) float64 {
	if iterTime <= 0 || gpus <= 0 {
		return 0
	}
	modelFLOPs := 6 * float64(m.Params()) * float64(m.TokensPerIteration(batchSeqs))
	return modelFLOPs / (iterTime * float64(gpus) * g.PeakTensorFLOPS)
}

// Training summarizes an end-to-end training run.
type Training struct {
	// Iterations is the total number of training iterations.
	Iterations uint64
	// IterTime is the single-iteration time in seconds.
	IterTime float64
	// TotalSeconds is the end-to-end wall-clock training time.
	TotalSeconds float64
	// Days is TotalSeconds in days.
	Days float64
	// GPUs is the compute budget consumed.
	GPUs int
	// GPUHours is the total GPU time rented: GPUs x wall-clock hours.
	GPUHours float64
	// DollarsPerHour is the cluster rental rate.
	DollarsPerHour float64
	// TotalDollars is the full training cost.
	TotalDollars float64
	// Utilization is the GPU compute utilization in [0,1].
	Utilization float64
}

// Train derives the end-to-end training report for consuming totalTokens at
// a given per-iteration time: the "total FLOPs divided by effective FLOPS"
// calculation behind Fig. 1 and Table I.
func Train(m model.Config, batchSeqs int, iterTime float64, gpus int, totalTokens uint64, c hw.Cluster) Training {
	iters := m.Iterations(totalTokens, batchSeqs)
	total := float64(iters) * iterTime
	perHour := float64(gpus) * c.DollarsPerGPUHour
	return Training{
		Iterations:     iters,
		IterTime:       iterTime,
		TotalSeconds:   total,
		Days:           total / SecondsPerDay,
		GPUs:           gpus,
		GPUHours:       float64(gpus) * total / 3600,
		DollarsPerHour: perHour,
		TotalDollars:   total / 3600 * perHour,
		Utilization:    Utilization(m, batchSeqs, iterTime, gpus, c.Node.GPU),
	}
}

// Resilience augments a Training with the failure-adjusted quantities a
// real operator pays for: with goodput fraction g, an ideal T-second run
// occupies T/g seconds of rented cluster time (see internal/resilience for
// the model). The zero value means "resilience not modeled".
type Resilience struct {
	// GoodputFraction is the effective-throughput multiplier in (0,1):
	// the share of rented wall-clock time that is useful forward
	// progress.
	GoodputFraction float64
	// CheckpointIntervalSeconds is the Young–Daly optimal checkpoint
	// period the model assumes.
	CheckpointIntervalSeconds float64
	// CheckpointSeconds is the time to write one checkpoint.
	CheckpointSeconds float64
	// CheckpointFraction, ReworkFraction, and RestartFraction break the
	// wasted share of wall-clock time into checkpoint writes, replayed
	// work since the last checkpoint, and failure-recovery latency; they
	// sum to 1 - GoodputFraction.
	CheckpointFraction float64
	ReworkFraction     float64
	RestartFraction    float64
	// ExpectedFailures is the expected number of failure events over the
	// effective (failure-adjusted) run.
	ExpectedFailures float64
	// EffectiveDays is the failure-adjusted wall-clock training time.
	EffectiveDays float64
	// EffectiveGPUHours is the failure-adjusted rented GPU time.
	EffectiveGPUHours float64
	// EffectiveDollars is the failure-adjusted training cost.
	EffectiveDollars float64
}

// ResilientTraining pairs the ideal failure-free report with its
// failure-adjusted counterpart.
type ResilientTraining struct {
	Training
	Resilience
}

// ApplyResilience derives the failure-adjusted economics of an ideal
// training report under a computed goodput model: the run stretches by
// 1/goodput, and days, GPU-hours, and dollars stretch with it. The input
// Training is not modified — resilience is a pure post-processing layer.
func ApplyResilience(tr Training, mod resilience.Model) Resilience {
	effective := tr.TotalSeconds / mod.Goodput
	return Resilience{
		GoodputFraction:           mod.Goodput,
		CheckpointIntervalSeconds: mod.Interval,
		CheckpointSeconds:         mod.CheckpointSeconds,
		CheckpointFraction:        mod.CheckpointFraction,
		ReworkFraction:            mod.ReworkFraction,
		RestartFraction:           mod.RestartFraction,
		ExpectedFailures:          mod.FailuresOver(effective),
		EffectiveDays:             effective / SecondsPerDay,
		EffectiveGPUHours:         float64(tr.GPUs) * effective / 3600,
		EffectiveDollars:          effective / 3600 * tr.DollarsPerHour,
	}
}

// TrainWithResilience is Train plus the failure-adjusted view: it builds
// the goodput model from the cluster's catalog-pinned MTBF and checkpoint
// bandwidth (overridable through o) and the model's checkpoint size, and
// reports both the ideal and the effective economics. It errors when the
// cluster lacks resilience data or is too unreliable to make forward
// progress (resilience.ErrUnreliable).
func TrainWithResilience(m model.Config, batchSeqs int, iterTime float64, gpus int, totalTokens uint64, c hw.Cluster, o resilience.Options) (ResilientTraining, error) {
	tr := Train(m, batchSeqs, iterTime, gpus, totalTokens, c)
	mod, err := resilience.For(m, c, gpus, o)
	if err != nil {
		return ResilientTraining{}, err
	}
	return ResilientTraining{Training: tr, Resilience: ApplyResilience(tr, mod)}, nil
}

// Duration renders seconds as a time.Duration for logs.
func Duration(seconds float64) time.Duration {
	return time.Duration(seconds * float64(time.Second))
}

// TimeForUtilization inverts Fig. 1: the wall-clock days needed to train m
// on totalTokens with gpus devices running at the given compute utilization.
func TimeForUtilization(m model.Config, totalTokens uint64, gpus int, util float64, g hw.GPU) float64 {
	if util <= 0 {
		return 0
	}
	totalFLOPs := 6 * float64(m.Params()) * float64(totalTokens)
	effective := float64(gpus) * g.PeakTensorFLOPS * util
	return totalFLOPs / effective / SecondsPerDay
}
