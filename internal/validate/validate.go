// Package validate regenerates the paper's Section IV validation study
// (Fig. 9): vTrain-predicted single-iteration training times compared
// against "measured" times from the high-fidelity testbed, on the same two
// campaigns the paper runs — 1,440 single-node (8-GPU) points and 116
// multi-node (512-GPU) points — reporting MAPE and R².
package validate

import (
	"fmt"
	"runtime"
	"sync"

	"vtrain/internal/comm"
	"vtrain/internal/core"
	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/parallel"
	"vtrain/internal/stats"
	"vtrain/internal/taskgraph"
	"vtrain/internal/testbed"
)

// Case is one validation point: a model and a parallelization plan.
type Case struct {
	Model model.Config
	Plan  parallel.Plan
}

// Result is the outcome of a validation campaign.
type Result struct {
	Cases     []Case
	Predicted []float64
	Measured  []float64
	MAPE      float64
	R2        float64
}

// SingleNodeCases generates the 1,440-point single-node campaign: LLM
// configurations and tensor/data/pipeline plans that fit inside one 8-GPU
// node, mirroring "various LLM model configurations and parallelization
// plans" with measured iteration times up to ~1.8 s.
func SingleNodeCases() []Case {
	hiddens := []struct{ h, heads int }{
		{1024, 16}, {1536, 16}, {2048, 16}, {2560, 32}, {3072, 32},
	}
	layerss := []int{2, 4}
	seqs := []int{1024, 2048}
	micros := []int{1, 2, 4}
	plans := [][3]int{ // (t, d, p) with t*d*p <= 8
		{1, 1, 1}, {1, 2, 1}, {1, 4, 1}, {1, 8, 1},
		{2, 1, 1}, {2, 2, 1}, {2, 4, 1},
		{4, 1, 1}, {4, 2, 1}, {8, 1, 1},
		{1, 2, 2}, {2, 1, 2},
	}
	nmbs := []int{4, 8}

	var cases []Case
	for _, hh := range hiddens {
		for _, l := range layerss {
			for _, s := range seqs {
				for _, mb := range micros {
					for _, tdp := range plans {
						for _, nmb := range nmbs {
							m := model.Config{
								Name:   fmt.Sprintf("val-h%d-L%d-s%d", hh.h, l, s),
								Hidden: hh.h, Layers: l, SeqLen: s,
								Heads: hh.heads, Vocab: 51200,
							}
							p := parallel.Plan{
								Tensor: tdp[0], Data: tdp[1], Pipeline: tdp[2],
								MicroBatch:      mb,
								GlobalBatch:     tdp[1] * mb * nmb,
								GradientBuckets: 1,
							}
							if p.Pipeline > l {
								continue
							}
							cases = append(cases, Case{Model: m, Plan: p})
						}
					}
				}
			}
		}
	}
	return cases
}

// MultiNodeCases generates the 116-point multi-node campaign on 512 GPUs,
// based on the Megatron-LM scale-down model configurations the paper's
// validation data uses.
func MultiNodeCases() []Case {
	models := []model.Config{
		model.Megatron3_6B(),
		model.Megatron18_4B(),
		model.Megatron39_1B(),
	}
	type planShape struct{ t, d, p, m, batch int }
	shapes := []planShape{
		{1, 64, 1, 2, 512}, {1, 64, 1, 4, 512}, {1, 64, 1, 8, 512},
		{2, 32, 1, 4, 512}, {2, 32, 1, 8, 512}, {2, 32, 1, 16, 512},
		{4, 16, 1, 2, 512}, {4, 16, 1, 4, 512}, {4, 32, 1, 4, 1024},
		{8, 8, 1, 2, 512}, {8, 16, 1, 4, 1024}, {8, 32, 1, 4, 1024},
		{8, 32, 1, 8, 1024}, {8, 16, 2, 2, 512}, {8, 16, 2, 4, 1024},
		{8, 32, 2, 4, 1536}, {8, 16, 4, 2, 1024}, {4, 32, 4, 2, 1024},
		{4, 32, 2, 2, 512}, {4, 16, 8, 1, 512}, {2, 32, 8, 1, 512},
		{8, 8, 8, 1, 512}, {4, 64, 2, 2, 1024}, {2, 64, 4, 1, 512},
		{8, 64, 1, 4, 1536}, {4, 64, 1, 4, 1024}, {2, 64, 2, 2, 1024},
		{1, 32, 2, 4, 512}, {8, 4, 16, 1, 512}, {4, 8, 16, 1, 512},
		{2, 16, 16, 1, 512}, {8, 8, 4, 1, 512}, {4, 16, 4, 1, 512},
		{2, 32, 4, 2, 512}, {1, 64, 2, 2, 512}, {8, 16, 1, 8, 1024},
		{4, 8, 2, 4, 512}, {2, 8, 4, 2, 512}, {8, 2, 2, 8, 512},
		{4, 4, 8, 1, 512},
	}
	var cases []Case
	for _, m := range models {
		for _, s := range shapes {
			p := parallel.Plan{
				Tensor: s.t, Data: s.d, Pipeline: s.p,
				MicroBatch:      s.m,
				GlobalBatch:     s.batch,
				GradientBuckets: 2,
			}
			if s.p > m.Layers || m.Heads%s.t != 0 {
				continue
			}
			if s.batch%(s.d*s.m) != 0 {
				continue
			}
			cases = append(cases, Case{Model: m, Plan: p})
		}
	}
	// The paper secured 116 multi-node data points; trim to the same
	// count for a like-for-like campaign.
	if len(cases) > 116 {
		cases = cases[:116]
	}
	return cases
}

// Run executes a campaign: for every case, vTrain predicts the iteration
// time and the testbed measures it; the two series are compared. Cases are
// evaluated in parallel across CPU cores.
func Run(cluster hw.Cluster, cases []Case, tbCfg testbed.Config, seed uint64) (Result, error) {
	sim, err := core.New(cluster, core.WithFidelity(taskgraph.OperatorLevel))
	if err != nil {
		return Result{}, err
	}
	return runWith(cluster, cases, tbCfg, seed, func(Case) (*core.Simulator, error) { return sim, nil })
}

// RunCalibrated repeats a campaign with the contention-calibrated
// communication model (comm.Calibrated) — the paper's future-work
// extension. Because the calibration depends on the plan's tensor width,
// each case gets its own simulator.
func RunCalibrated(cluster hw.Cluster, cases []Case, tbCfg testbed.Config, seed uint64) (Result, error) {
	base := comm.NewModel(cluster)
	return runWith(cluster, cases, tbCfg, seed, func(c Case) (*core.Simulator, error) {
		// One-shot per-case simulator: nothing repeats, skip both the
		// report cache and the structural cache.
		return core.New(cluster,
			core.WithFidelity(taskgraph.OperatorLevel),
			core.WithCommTimer(comm.DefaultCalibration(base, c.Plan.Tensor)),
			core.WithCacheSize(0),
			core.WithStructCacheSize(0),
		)
	})
}

func runWith(cluster hw.Cluster, cases []Case, tbCfg testbed.Config, seed uint64, factory func(Case) (*core.Simulator, error)) (Result, error) {
	tb := testbed.New(cluster, tbCfg, seed)

	res := Result{
		Cases:     cases,
		Predicted: make([]float64, len(cases)),
		Measured:  make([]float64, len(cases)),
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, c := range cases {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, c Case) {
			defer wg.Done()
			defer func() { <-sem }()
			sim, err := factory(c)
			if err == nil {
				var rep core.Report
				rep, err = sim.Simulate(c.Model, c.Plan)
				if err == nil {
					res.Predicted[i] = rep.IterTime
					res.Measured[i], err = tb.Measure(c.Model, c.Plan)
				}
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("case %d (%s %s): %w", i, c.Model.Name, c.Plan, err)
				}
				mu.Unlock()
			}
		}(i, c)
	}
	wg.Wait()
	if firstErr != nil {
		return Result{}, firstErr
	}

	var err error
	if res.MAPE, err = stats.MAPE(res.Predicted, res.Measured); err != nil {
		return Result{}, err
	}
	if res.R2, err = stats.R2(res.Predicted, res.Measured); err != nil {
		return Result{}, err
	}
	return res, nil
}
