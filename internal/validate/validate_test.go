package validate

import (
	"testing"

	"vtrain/internal/hw"
	"vtrain/internal/testbed"
)

func TestSingleNodeCampaignShape(t *testing.T) {
	cases := SingleNodeCases()
	// The paper collects 1,440 single-node data points.
	if len(cases) != 1440 {
		t.Fatalf("single-node cases = %d, want 1440", len(cases))
	}
	cluster := hw.PaperCluster(1)
	for i, c := range cases {
		if err := c.Plan.Validate(c.Model, cluster); err != nil {
			t.Fatalf("case %d invalid: %v", i, err)
		}
		if c.Plan.GPUs() > 8 {
			t.Fatalf("case %d uses %d GPUs, must fit one node", i, c.Plan.GPUs())
		}
	}
}

func TestMultiNodeCampaignShape(t *testing.T) {
	cases := MultiNodeCases()
	// The paper secured 116 multi-node data points.
	if len(cases) != 116 {
		t.Fatalf("multi-node cases = %d, want 116", len(cases))
	}
	cluster := hw.PaperCluster(64)
	for i, c := range cases {
		if err := c.Plan.Validate(c.Model, cluster); err != nil {
			t.Fatalf("case %d (%s %s) invalid: %v", i, c.Model.Name, c.Plan, err)
		}
	}
}

func TestRunSubsetReproducesFig9Bands(t *testing.T) {
	if testing.Short() {
		t.Skip("validation campaign is slow")
	}
	// A deterministic subset keeps the test fast while asserting the
	// headline structure: low MAPE, R^2 near 1.
	cases := SingleNodeCases()
	subset := make([]Case, 0, 180)
	for i := 0; i < len(cases); i += 8 {
		subset = append(subset, cases[i])
	}
	res, err := Run(hw.PaperCluster(1), subset, testbed.DefaultConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.MAPE <= 0 || res.MAPE > 20 {
		t.Errorf("single-node MAPE = %.2f%%, want in (0, 20] (paper: 8.37%%)", res.MAPE)
	}
	if res.R2 < 0.95 {
		t.Errorf("single-node R2 = %.4f, want >= 0.95 (paper: 0.9896)", res.R2)
	}
	for i := range res.Predicted {
		if res.Predicted[i] <= 0 || res.Measured[i] <= 0 {
			t.Fatalf("case %d degenerate: pred %.4g meas %.4g", i, res.Predicted[i], res.Measured[i])
		}
	}
}

func TestMultiNodeErrorExceedsSingleNode(t *testing.T) {
	if testing.Short() {
		t.Skip("validation campaign is slow")
	}
	single := SingleNodeCases()
	subsetS := make([]Case, 0, 90)
	for i := 0; i < len(single); i += 16 {
		subsetS = append(subsetS, single[i])
	}
	rs, err := Run(hw.PaperCluster(1), subsetS, testbed.DefaultConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := Run(hw.PaperCluster(64), MultiNodeCases(), testbed.DefaultConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 9's structure: the analytical inter-node model is less
	// accurate than the profiled intra-node path.
	if rm.MAPE <= rs.MAPE {
		t.Errorf("multi-node MAPE %.2f%% not above single-node %.2f%%", rm.MAPE, rs.MAPE)
	}
	if rm.R2 < 0.9 {
		t.Errorf("multi-node R2 = %.4f, want >= 0.9 (paper: 0.9887)", rm.R2)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	bad := []Case{{Model: SingleNodeCases()[0].Model}} // zero plan
	if _, err := Run(hw.PaperCluster(1), bad, testbed.DefaultConfig(), 1); err == nil {
		t.Fatal("invalid case must propagate an error")
	}
}
