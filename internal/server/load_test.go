package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
)

// mixedSimulateBodies are one-shot configurations across three model
// scales — the "team hammering different models" request mix.
var mixedSimulateBodies = []string{
	`{
  "model": {"preset": "megatron-3.6b"},
  "cluster": {"nodes": 1},
  "plan": {"tensor": 2, "data": 2, "pipeline": 2, "micro_batch": 1, "global_batch": 64},
  "total_tokens": 20000000000
}`,
	`{
  "model": {"preset": "megatron-18.4b"},
  "cluster": {"nodes": 8},
  "plan": {"tensor": 8, "data": 4, "pipeline": 2, "micro_batch": 1, "global_batch": 128},
  "total_tokens": 50000000000
}`,
	`{
  "model": {"preset": "megatron-39.1b"},
  "cluster": {"nodes": 4},
  "plan": {"tensor": 4, "data": 2, "pipeline": 4, "micro_batch": 1, "global_batch": 64},
  "total_tokens": 50000000000
}`,
}

// mixedClusterBodies are small cluster-design sweeps. These are the
// struct-cache exercisers: every request builds fresh per-candidate
// siblings whose report caches start cold, so repeats land in the shared
// root structural cache — unlike repeated simulates, which the report
// cache absorbs without touching the structural counters.
var mixedClusterBodies = []string{
	`{
  "model": {"preset": "megatron-3.6b"},
  "global_batch": 64,
  "total_tokens": 20000000000,
  "node_counts": [1],
  "offerings": ["a100-sxm-80gb"],
  "tensor_widths": [2, 4],
  "data_widths": [2, 4],
  "pipeline_depths": [1],
  "micro_batches": [1]
}`,
	`{
  "model": {"preset": "megatron-3.6b"},
  "global_batch": 64,
  "total_tokens": 20000000000,
  "node_counts": [2],
  "offerings": ["h100-sxm-80gb"],
  "tensor_widths": [2, 4],
  "data_widths": [4, 8],
  "pipeline_depths": [1],
  "micro_batches": [1]
}`,
}

// canonicalPoints drops the final (summary) line of an NDJSON stream and
// sorts the point lines. The summary carries the shared engine's
// cumulative cache counters, which legitimately differ with request
// order; the point lines' order is nondeterministic across structural
// shapes (concurrent batch workers); the point lines' bytes must not
// differ at all.
func canonicalPoints(t *testing.T, stream string) string {
	t.Helper()
	lines := strings.Split(strings.TrimRight(stream, "\n"), "\n")
	if len(lines) < 2 || !strings.Contains(lines[len(lines)-1], `"summary"`) {
		t.Fatalf("stream did not end in a summary line:\n%s", stream)
	}
	points := lines[:len(lines)-1]
	sort.Strings(points)
	return strings.Join(points, "\n")
}

// TestServerCacheConcentration is the serving layer's load lock, run under
// -race in CI: 32 goroutines stream a mixed-model workload at a shared
// server and assert that (a) every response is byte-identical to what a
// sequential one-shot run produces — warm shared caches and single-flight
// dedup must never change results — and (b) the structural cache hit rate
// rises across the stream, the observable signature of requests
// concentrating onto shared lowered graphs.
func TestServerCacheConcentration(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent load test")
	}

	// Sequential one-shot baselines: a fresh engine per request, exactly
	// what the CLIs compute.
	wantSim := make([]string, len(mixedSimulateBodies))
	for i, body := range mixedSimulateBodies {
		_, ts := newTestServer(t, Config{})
		code, resp, _ := post(t, ts, "/v1/simulate", body)
		if code != 200 {
			t.Fatalf("baseline simulate %d: status %d: %s", i, code, resp)
		}
		wantSim[i] = resp
	}
	wantCluster := make([]string, len(mixedClusterBodies))
	for i, body := range mixedClusterBodies {
		_, ts := newTestServer(t, Config{})
		code, resp, _ := post(t, ts, "/v1/clusterdse", body)
		if code != 200 {
			t.Fatalf("baseline clusterdse %d: status %d: %s", i, code, resp)
		}
		wantCluster[i] = canonicalPoints(t, resp)
	}

	srv, ts := newTestServer(t, Config{MaxInflightSweeps: 64})
	structRate := func() float64 {
		st := srv.Engine().CacheStats()
		if st.StructHits+st.StructMisses == 0 {
			return 0
		}
		return float64(st.StructHits) / float64(st.StructHits+st.StructMisses)
	}

	const goroutines = 32
	const waves = 3
	var rates []float64
	for wave := 0; wave < waves; wave++ {
		errs := make(chan error, goroutines)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				// Rotate the order per goroutine so requests interleave
				// across models rather than marching in lockstep.
				for k := 0; k < len(mixedSimulateBodies); k++ {
					i := (g + k) % len(mixedSimulateBodies)
					code, resp, _ := post(t, ts, "/v1/simulate", mixedSimulateBodies[i])
					if code != 200 {
						errs <- fmt.Errorf("simulate %d: status %d: %s", i, code, resp)
						return
					}
					if resp != wantSim[i] {
						errs <- fmt.Errorf("simulate %d: concurrent response diverged from one-shot baseline:\n--- got ---\n%s\n--- want ---\n%s", i, resp, wantSim[i])
						return
					}
				}
				for k := 0; k < len(mixedClusterBodies); k++ {
					i := (g + k) % len(mixedClusterBodies)
					code, resp, _ := post(t, ts, "/v1/clusterdse", mixedClusterBodies[i])
					if code != 200 {
						errs <- fmt.Errorf("clusterdse %d: status %d: %s", i, code, resp)
						return
					}
					if got := canonicalPoints(t, resp); got != wantCluster[i] {
						errs <- fmt.Errorf("clusterdse %d: concurrent points diverged from one-shot baseline:\n--- got ---\n%s\n--- want ---\n%s", i, got, wantCluster[i])
						return
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		rates = append(rates, structRate())
	}

	// The cumulative structural hit rate must rise wave over wave: after
	// the cold wave pays every lowering, warm waves add hits and no
	// misses.
	t.Logf("struct-cache hit rate by wave: %v", rates)
	for i := 1; i < len(rates); i++ {
		if rates[i] <= rates[i-1] {
			t.Errorf("struct hit rate did not rise: wave %d %.4f -> wave %d %.4f",
				i-1, rates[i-1], i, rates[i])
		}
	}
	if final := rates[len(rates)-1]; final < 0.5 {
		t.Errorf("final struct hit rate %.2f%% — warm repeats are not concentrating on shared structures", 100*final)
	}
}
