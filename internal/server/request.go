// Package server is vTrain's serving layer: simulation-as-a-service with
// warm shared caches. It has two halves:
//
//   - Engine is the transport-independent entry point. It owns a pool of
//     core.Simulators whose structural and report caches persist across
//     requests, so concurrent users concentrate onto shared lowered graphs
//     (the single-flight machinery dedupes identical in-flight work). The
//     CLIs (cmd/vtrain, cmd/vtrain-dse, cmd/vtrain-clusterdse) are thin
//     clients of the same Engine methods the HTTP handlers call, so the
//     server path and the CLI path cannot drift.
//
//   - Server wraps an Engine in a long-lived HTTP+JSON service:
//     POST /v1/simulate, /v1/sweep, /v1/clusterdse with descfile-shaped
//     request bodies, GET /healthz and /metrics, NDJSON streaming for
//     sweeps, bounded in-flight sweeps, and graceful shutdown.
//
// Request bodies reuse internal/descfile's sections verbatim: a file that
// `vtrain -f` accepts is, unchanged, a valid /v1/simulate body.
package server

import (
	"fmt"

	"vtrain/internal/core"
	"vtrain/internal/cost"
	"vtrain/internal/descfile"
	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/parallel"
	"vtrain/internal/taskgraph"
)

// SimulateRequest is the /v1/simulate body: exactly a descfile description
// (model + cluster + plan + total_tokens) plus the simulation fidelity.
// Any file cmd/vtrain accepts is a valid request.
type SimulateRequest struct {
	descfile.Description
	// Fidelity selects the lowering granularity: "task" (default) or
	// "operator".
	Fidelity string `json:"fidelity,omitempty"`
	// Contention enables the topology-aware congestion fidelity level:
	// comm tasks sharing fat-tree links with concurrently in-flight ones
	// are derated (see core.WithContention). Off by default.
	Contention bool `json:"contention,omitempty"`
}

// SweepRequest is the /v1/sweep body: the descfile model and cluster
// sections plus the plan-space controls of dse.Space. Empty axis slices
// take the dse.DefaultSpace values for the model and batch.
type SweepRequest struct {
	Model       descfile.ModelSection   `json:"model"`
	Cluster     descfile.ClusterSection `json:"cluster"`
	GlobalBatch int                     `json:"global_batch"`
	// TotalTokens, when positive, adds the end-to-end cost projection to
	// every streamed point.
	TotalTokens uint64 `json:"total_tokens,omitempty"`
	// Fidelity defaults to "operator", the sweep-speed granularity the
	// CLIs use.
	Fidelity string `json:"fidelity,omitempty"`
	// Contention enables topology-aware congestion modeling on every
	// swept point. Off by default.
	Contention bool `json:"contention,omitempty"`
	// TensorWidths .. MicroBatches override the swept plan axes.
	TensorWidths   []int `json:"tensor_widths,omitempty"`
	DataWidths     []int `json:"data_widths,omitempty"`
	PipelineDepths []int `json:"pipeline_depths,omitempty"`
	MicroBatches   []int `json:"micro_batches,omitempty"`
	// MaxGPUs, when positive, caps t*d*p.
	MaxGPUs int `json:"max_gpus,omitempty"`
	// MaxMicroBatches caps the per-pipeline micro-batch count
	// (default 512, matching the CLI sweeps).
	MaxMicroBatches int `json:"max_micro_batches,omitempty"`
}

// ClusterDSERequest is the /v1/clusterdse body: the descfile model and
// resilience sections plus the hardware axes of clusterdse.Space.
type ClusterDSERequest struct {
	Model       descfile.ModelSection `json:"model"`
	GlobalBatch int                   `json:"global_batch"`
	// TotalTokens prices every candidate's full training run; required.
	TotalTokens uint64 `json:"total_tokens"`
	// NodeCounts are the cluster sizes to provision, in nodes; required.
	NodeCounts []int `json:"node_counts"`
	// Offerings names hardware-catalog offerings; empty means the whole
	// catalog.
	Offerings []string `json:"offerings,omitempty"`
	// CrossInterconnects additionally tries every node type with every
	// interconnect tier.
	CrossInterconnects bool `json:"cross_interconnects,omitempty"`
	// Resilience is the descfile resilience section: nil models failures
	// with catalog defaults, "disabled": true ranks by ideal cost.
	Resilience *descfile.ResilienceSection `json:"resilience,omitempty"`
	// Fidelity defaults to "operator".
	Fidelity string `json:"fidelity,omitempty"`
	// Contention enables topology-aware congestion modeling on every
	// candidate's sibling simulator (clusterdse.Space.Contention). Off by
	// default.
	Contention bool `json:"contention,omitempty"`
	// TensorWidths .. MicroBatches override the swept plan axes.
	TensorWidths   []int `json:"tensor_widths,omitempty"`
	DataWidths     []int `json:"data_widths,omitempty"`
	PipelineDepths []int `json:"pipeline_depths,omitempty"`
	MicroBatches   []int `json:"micro_batches,omitempty"`
	// MaxMicroBatches caps the per-pipeline micro-batch count
	// (default 512).
	MaxMicroBatches int `json:"max_micro_batches,omitempty"`
}

// SimulateResult is the wire shape of one simulation: the exact JSON
// cmd/vtrain -json prints, so a /v1/simulate response body and the CLI
// output for the same descfile are byte-identical (equivalence-locked by
// the cmd/vtrain golden tests).
type SimulateResult struct {
	Model         string           `json:"model"`
	Plan          string           `json:"plan"`
	GPUs          int              `json:"gpus"`
	IterTime      float64          `json:"iteration_time_s"`
	Utilization   float64          `json:"gpu_utilization"`
	PeakMemoryGiB float64          `json:"peak_memory_gib"`
	FitsMemory    bool             `json:"fits_memory"`
	Tasks         int              `json:"tasks"`
	Training      *cost.Training   `json:"training,omitempty"`
	Resilience    *cost.Resilience `json:"resilience,omitempty"`
}

// SimulateOutcome is the domain-typed result of Engine.Simulate, carrying
// everything the human-readable CLI output needs; Result projects it onto
// the wire shape.
type SimulateOutcome struct {
	Model      model.Config
	Plan       parallel.Plan
	Cluster    hw.Cluster
	Report     core.Report
	Training   *cost.Training
	Resilience *cost.Resilience
}

// Result projects the outcome onto the wire/JSON shape.
func (o SimulateOutcome) Result() SimulateResult {
	return SimulateResult{
		Model: o.Model.String(), Plan: o.Plan.String(), GPUs: o.Plan.GPUs(),
		IterTime: o.Report.IterTime, Utilization: o.Report.Utilization,
		PeakMemoryGiB: float64(o.Report.PeakMemoryBytes) / (1 << 30),
		FitsMemory:    o.Report.FitsMemory, Tasks: o.Report.Tasks,
		Training: o.Training, Resilience: o.Resilience,
	}
}

// SweepSummary closes a /v1/sweep stream: how many points streamed and the
// serving simulator's cumulative cache counters. The counters are
// cumulative across the server's lifetime on purpose — warm-cache
// concentration across requests is the service's value, and the rising hit
// rate is how operators observe it. In a one-shot CLI process cumulative
// equals per-request.
type SweepSummary struct {
	Points  int
	Cluster hw.Cluster
	Cache   core.CacheStats
}

// ClusterSummary closes a /v1/clusterdse stream.
type ClusterSummary struct {
	Points int
	// Candidates is offerings x node counts, the hardware grid size.
	Candidates int
	// Resilience reports whether failure pricing was applied.
	Resilience bool
	Cache      core.CacheStats
}

// BadRequestError marks an error as the client's fault — a malformed or
// unresolvable request — so the HTTP layer maps it to a 400 rather than a
// 500. Engine methods wrap every request-resolution failure in one.
type BadRequestError struct{ Err error }

// Error implements error.
func (e *BadRequestError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *BadRequestError) Unwrap() error { return e.Err }

func badRequest(err error) error {
	if err == nil {
		return nil
	}
	return &BadRequestError{Err: err}
}

// ParseFidelity maps the wire fidelity names onto taskgraph levels. The
// empty string resolves to def: "task" for one-shot simulation, "operator"
// for sweeps (matching the CLI defaults).
func ParseFidelity(s string, def taskgraph.Fidelity) (taskgraph.Fidelity, error) {
	switch s {
	case "":
		return def, nil
	case "task":
		return taskgraph.TaskLevel, nil
	case "operator":
		return taskgraph.OperatorLevel, nil
	default:
		return 0, fmt.Errorf("server: unknown fidelity %q (want task or operator)", s)
	}
}
