package server

import (
	"vtrain/internal/clusterdse"
	"vtrain/internal/core"
	"vtrain/internal/cost"
	"vtrain/internal/dse"
	"vtrain/internal/hw"
)

// SweepPoint is one NDJSON line of a /v1/sweep stream.
type SweepPoint struct {
	Plan        string  `json:"plan"`
	Tensor      int     `json:"t"`
	Data        int     `json:"d"`
	Pipeline    int     `json:"p"`
	MicroBatch  int     `json:"m"`
	GPUs        int     `json:"gpus"`
	IterTime    float64 `json:"iteration_time_s"`
	Utilization float64 `json:"gpu_utilization"`
	// Training carries the end-to-end cost projection when the request
	// set total_tokens.
	Training *cost.Training `json:"training,omitempty"`
}

// NewSweepPoint projects a dse.Point onto the wire, pricing the full run
// against the sweep's cluster when tokens > 0.
func NewSweepPoint(p dse.Point, c hw.Cluster, tokens uint64) SweepPoint {
	sp := SweepPoint{
		Plan: p.Plan.String(), Tensor: p.Plan.Tensor, Data: p.Plan.Data,
		Pipeline: p.Plan.Pipeline, MicroBatch: p.Plan.MicroBatch,
		GPUs:     p.Plan.GPUs(),
		IterTime: p.Report.IterTime, Utilization: p.Report.Utilization,
	}
	if tokens > 0 {
		tr := cost.Train(p.Report.Model, p.Plan.GlobalBatch, p.Report.IterTime, p.Plan.GPUs(), tokens, c)
		sp.Training = &tr
	}
	return sp
}

// ClusterPoint is one NDJSON line of a /v1/clusterdse stream.
type ClusterPoint struct {
	Offering     string        `json:"offering"`
	Interconnect string        `json:"interconnect"`
	Nodes        int           `json:"nodes"`
	GPUs         int           `json:"gpus"`
	Plan         string        `json:"plan"`
	Tensor       int           `json:"t"`
	Data         int           `json:"d"`
	Pipeline     int           `json:"p"`
	MicroBatch   int           `json:"m"`
	IterTime     float64       `json:"iteration_time_s"`
	Utilization  float64       `json:"gpu_utilization"`
	Training     cost.Training `json:"training"`
	// Resilience is present when the sweep models failures; ranking then
	// uses its effective figures.
	Resilience *cost.Resilience `json:"resilience,omitempty"`
}

// NewClusterPoint projects a clusterdse.Point onto the wire.
func NewClusterPoint(p clusterdse.Point) ClusterPoint {
	cp := ClusterPoint{
		Offering:     p.Offering.Name,
		Interconnect: p.Offering.Interconnect.Name,
		Nodes:        p.Nodes, GPUs: p.GPUs(),
		Plan: p.Plan.String(), Tensor: p.Plan.Tensor, Data: p.Plan.Data,
		Pipeline: p.Plan.Pipeline, MicroBatch: p.Plan.MicroBatch,
		IterTime: p.Report.IterTime, Utilization: p.Report.Utilization,
		Training: p.Training,
	}
	if p.Resilience.GoodputFraction > 0 {
		r := p.Resilience
		cp.Resilience = &r
	}
	return cp
}

// CacheCounters is the wire shape of core.CacheStats.
type CacheCounters struct {
	ReportHits   uint64 `json:"report_hits"`
	ReportMisses uint64 `json:"report_misses"`
	StructHits   uint64 `json:"struct_hits"`
	StructMisses uint64 `json:"struct_misses"`
	BatchReplays uint64 `json:"batch_replays"`
	BatchedPlans uint64 `json:"batched_plans"`
	Lowerings    uint64 `json:"lowerings"`
	DiskHits     uint64 `json:"disk_hits"`
	DiskMisses   uint64 `json:"disk_misses"`
	DiskWrites   uint64 `json:"disk_writes"`
}

func newCacheCounters(st core.CacheStats) CacheCounters {
	return CacheCounters{
		ReportHits: st.ReportHits, ReportMisses: st.ReportMisses,
		StructHits: st.StructHits, StructMisses: st.StructMisses,
		BatchReplays: st.BatchReplays, BatchedPlans: st.BatchedPlans,
		Lowerings: st.Lowerings,
		DiskHits:  st.DiskHits, DiskMisses: st.DiskMisses, DiskWrites: st.DiskWrites,
	}
}

// StreamSummary is the final NDJSON line of a successful sweep stream. The
// cache counters are cumulative across the server's lifetime: the rising
// hit rate across a stream of requests is how operators observe cache
// concentration working.
type StreamSummary struct {
	Points     int           `json:"points"`
	Candidates int           `json:"candidates,omitempty"`
	Cache      CacheCounters `json:"cache"`
}

// streamLine is the envelope of every NDJSON line: exactly one field set.
type streamLine struct {
	Point   any            `json:"point,omitempty"`
	Summary *StreamSummary `json:"summary,omitempty"`
	Error   *wireError     `json:"error,omitempty"`
}

// wireError is the structured error body, both for plain JSON error
// responses and for the terminal line of a failed stream.
type wireError struct {
	Message string `json:"message"`
	Status  int    `json:"status"`
}

type errorBody struct {
	Error wireError `json:"error"`
}
