package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// compareGolden pins got against testdata/name, regenerable with -update —
// the same convention as the CLI golden tests.
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/server -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// newTestServer builds a fresh server (fresh engine, so cache counters in
// response summaries are deterministic) behind an httptest listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b), resp.Header
}

// simulateBody is a complete descfile description: the same JSON a
// `vtrain -f` run accepts is, unchanged, a /v1/simulate body.
const simulateBody = `{
  "model": {"preset": "megatron-3.6b"},
  "cluster": {"nodes": 1},
  "plan": {"tensor": 2, "data": 2, "pipeline": 2, "micro_batch": 1, "global_batch": 64},
  "total_tokens": 20000000000
}`

// sweepBody constrains every plan axis to a single structural shape (t>1,
// d=1, p=1), so the sweep flushes as one batch and the stream order is
// deterministic — what makes an NDJSON golden possible.
const sweepBody = `{
  "model": {"preset": "megatron-3.6b"},
  "cluster": {"nodes": 1},
  "global_batch": 64,
  "total_tokens": 20000000000,
  "tensor_widths": [2, 4],
  "data_widths": [1],
  "pipeline_depths": [1],
  "micro_batches": [1]
}`

// clusterBody provisions one 8-GPU node; cluster sweeps pin ExactGPUs to
// the whole cluster, so the axes must multiply to 8. A single valid plan
// (t=2,d=4) keeps the stream deterministic — plans of different structural
// shapes batch on concurrent workers, so their relative order is not
// goldenable (the sweep golden covers multi-point ordering within one
// shape).
const clusterBody = `{
  "model": {"preset": "megatron-3.6b"},
  "global_batch": 64,
  "total_tokens": 20000000000,
  "node_counts": [1],
  "offerings": ["a100-sxm-80gb"],
  "tensor_widths": [2],
  "data_widths": [4],
  "pipeline_depths": [1],
  "micro_batches": [1]
}`

// TestGoldenSimulate pins the /v1/simulate success protocol: the response
// body is the exact `vtrain -json` report (the CLI equivalence lock lives
// in cmd/vtrain's tests).
func TestGoldenSimulate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body, hdr := post(t, ts, "/v1/simulate", simulateBody)
	if code != http.StatusOK {
		t.Fatalf("status = %d, want 200; body: %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	compareGolden(t, "simulate.golden", []byte(body))
}

// TestGoldenSweepStream pins the /v1/sweep NDJSON protocol: one point line
// per plan, then a summary line carrying the engine's cache counters.
func TestGoldenSweepStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body, hdr := post(t, ts, "/v1/sweep", sweepBody)
	if code != http.StatusOK {
		t.Fatalf("status = %d, want 200; body: %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	compareGolden(t, "sweep.golden", []byte(body))
}

// TestGoldenClusterDSEStream pins the /v1/clusterdse NDJSON protocol,
// including the per-point resilience block (failure pricing defaults on).
func TestGoldenClusterDSEStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body, _ := post(t, ts, "/v1/clusterdse", clusterBody)
	if code != http.StatusOK {
		t.Fatalf("status = %d, want 200; body: %s", code, body)
	}
	compareGolden(t, "clusterdse.golden", []byte(body))
}

// TestGoldenBadDescfile pins the malformed-request protocol: a resolvable
// JSON body with an invalid descfile section must map to a structured 400,
// not a 500 or a stream.
func TestGoldenBadDescfile(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	bad := strings.Replace(simulateBody, `"nodes": 1`, `"nodes": 0`, 1)
	code, body, hdr := post(t, ts, "/v1/simulate", bad)
	if code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body: %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	compareGolden(t, "bad-descfile.golden", []byte(body))
}

// TestGoldenMalformedJSON pins the undecodable-body error shape.
func TestGoldenMalformedJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body, _ := post(t, ts, "/v1/simulate", `{"model": `)
	if code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body: %s", code, body)
	}
	compareGolden(t, "malformed-json.golden", []byte(body))
}

// TestGoldenEmptySweepSpace pins the no-valid-plan error: an impossible
// plan axis must 400 with the dse.ErrNoValidPlan sentinel before any
// stream starts.
func TestGoldenEmptySweepSpace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	impossible := strings.Replace(sweepBody, `"tensor_widths": [2, 4]`, `"tensor_widths": [5]`, 1)
	code, body, _ := post(t, ts, "/v1/sweep", impossible)
	if code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body: %s", code, body)
	}
	compareGolden(t, "empty-space.golden", []byte(body))
}

// TestClusterDSENoFeasible400 locks the lazy stream commit: a cluster
// sweep whose plan axes fit no candidate fails before the first point, so
// the client sees a real 400, not an in-band error inside a 200 stream.
func TestClusterDSENoFeasible400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	impossible := strings.Replace(clusterBody, `"tensor_widths": [2]`, `"tensor_widths": [5]`, 1)
	code, body, _ := post(t, ts, "/v1/clusterdse", impossible)
	if code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body: %s", code, body)
	}
	var eb errorBody
	if err := json.Unmarshal([]byte(body), &eb); err != nil {
		t.Fatalf("error body is not structured JSON: %v\n%s", err, body)
	}
	if !strings.Contains(eb.Error.Message, "no feasible") {
		t.Errorf("error message = %q, want the no-feasible explanation", eb.Error.Message)
	}
}

// TestUnknownFieldRejected locks DisallowUnknownFields: typos in request
// bodies fail loudly instead of being silently ignored.
func TestUnknownFieldRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body, _ := post(t, ts, "/v1/sweep", `{"model": {"preset": "megatron-3.6b"}, "globel_batch": 64}`)
	if code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body: %s", code, body)
	}
	if !strings.Contains(body, "globel_batch") {
		t.Errorf("error does not name the unknown field: %s", body)
	}
}

// TestSweepBackpressure locks the bounded in-flight sweep contract: with a
// single sweep slot taken, the next sweep gets 429 instead of queueing.
func TestSweepBackpressure(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInflightSweeps: 1})
	srv.sweepSem <- struct{}{} // occupy the only slot
	defer func() { <-srv.sweepSem }()
	code, body, _ := post(t, ts, "/v1/sweep", sweepBody)
	if code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body: %s", code, body)
	}
	var eb errorBody
	if err := json.Unmarshal([]byte(body), &eb); err != nil {
		t.Fatalf("429 body is not structured JSON: %v\n%s", err, body)
	}
	if eb.Error.Status != http.StatusTooManyRequests {
		t.Errorf("error.status = %d, want 429", eb.Error.Status)
	}
}

// TestHealthz locks liveness: 200 while serving, 503 once draining — load
// balancers must see the flip before the listener closes.
func TestHealthz(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !srv.Draining() {
		t.Fatal("Draining() = false after Shutdown")
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", resp.StatusCode)
	}
}

// metricValue extracts a single sample's value from Prometheus text.
func metricValue(t *testing.T, text, sample string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, sample+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(sample)+1:], "%g", &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("sample %q not found in metrics:\n%s", sample, text)
	return 0
}

func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMetricsMonotone locks the /metrics contract: per-endpoint request
// counters and engine cache counters are present and only ever rise.
func TestMetricsMonotone(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts, "/v1/simulate", simulateBody)
	m1 := scrape(t, ts)
	c1 := metricValue(t, m1, `vtrain_http_requests_total{endpoint="/v1/simulate",code="200"}`)
	if c1 != 1 {
		t.Errorf("simulate 200 count = %v after one request, want 1", c1)
	}
	misses1 := metricValue(t, m1, "vtrain_cache_report_misses_total")
	if misses1 == 0 {
		t.Error("report misses = 0 after a cold simulate")
	}

	post(t, ts, "/v1/simulate", simulateBody)
	post(t, ts, "/v1/simulate", `{"model": `)
	m2 := scrape(t, ts)
	if c2 := metricValue(t, m2, `vtrain_http_requests_total{endpoint="/v1/simulate",code="200"}`); c2 != c1+1 {
		t.Errorf("simulate 200 count = %v, want %v", c2, c1+1)
	}
	if e := metricValue(t, m2, `vtrain_http_requests_total{endpoint="/v1/simulate",code="400"}`); e != 1 {
		t.Errorf("simulate 400 count = %v, want 1", e)
	}
	if hits := metricValue(t, m2, "vtrain_cache_report_hits_total"); hits == 0 {
		t.Error("report hits = 0 after repeating an identical simulate — the pool is not persisting caches")
	}
	if misses2 := metricValue(t, m2, "vtrain_cache_report_misses_total"); misses2 < misses1 {
		t.Errorf("report misses fell from %v to %v — counters must be monotone", misses1, misses2)
	}
	if n := metricValue(t, m2, `vtrain_http_request_duration_seconds_count{endpoint="/v1/simulate"}`); n != 3 {
		t.Errorf("simulate duration count = %v, want 3", n)
	}
	if n := metricValue(t, m2, `vtrain_http_request_duration_seconds_bucket{endpoint="/v1/simulate",le="+Inf"}`); n != 3 {
		t.Errorf("simulate +Inf bucket = %v, want 3 (histogram must be cumulative)", n)
	}
}

// TestShutdownDrainsInflightSweep locks the graceful-shutdown contract: a
// SIGTERM-triggered Shutdown must let an in-flight streaming sweep finish
// — the client reads a complete stream through the summary line — before
// Serve returns.
func TestShutdownDrainsInflightSweep(t *testing.T) {
	srv := New(Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	// A wide default space (no axis overrides) keeps the stream busy long
	// enough for shutdown to begin mid-flight.
	body := `{
  "model": {"preset": "megatron-3.6b"},
  "cluster": {"nodes": 2},
  "global_batch": 256,
  "total_tokens": 20000000000
}`
	resp, err := http.Post("http://"+l.Addr().String()+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatalf("no first stream line: %v", sc.Err())
	}
	lines := []string{sc.Text()}

	// Shutdown mid-stream, as the SIGTERM handler in cmd/vtrain-server
	// does. It must block until the response above completes.
	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream broke mid-shutdown: %v", err)
	}
	last := lines[len(lines)-1]
	var line struct {
		Summary *StreamSummary `json:"summary"`
	}
	if err := json.Unmarshal([]byte(last), &line); err != nil || line.Summary == nil {
		t.Fatalf("stream did not drain to a summary line, got %q (err %v)", last, err)
	}
	if line.Summary.Points != len(lines)-1 {
		t.Errorf("summary points = %d, streamed %d", line.Summary.Points, len(lines)-1)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("Serve = %v, want http.ErrServerClosed", err)
	}
}

// contendedBody is simulateBody on two nodes with a plan whose data-parallel
// groups stride across them plus an explicit contention knob — the smallest
// request where link congestion has something to derate.
const contendedBody = `{
  "model": {"preset": "megatron-3.6b"},
  "cluster": {"nodes": 2},
  "plan": {"tensor": 2, "data": 4, "pipeline": 2, "micro_batch": 1, "global_batch": 64},
  "total_tokens": 20000000000,
  "contention": true
}`

// TestSimulateContentionKnob pins the serving-layer contract of the
// contention fidelity level: an explicit "contention": false body is
// byte-identical to omitting the field, "contention": true routes to a
// separately pooled simulator whose report is comm-monotone against the
// ideal one, and the two pool entries coexist (the knob is part of the
// simulator key, not mutable state on a shared engine).
func TestSimulateContentionKnob(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	idealBody := strings.Replace(contendedBody, `"contention": true`, `"contention": false`, 1)
	omittedBody := strings.Replace(contendedBody, `,
  "contention": true`, "", 1)

	code, ideal, _ := post(t, ts, "/v1/simulate", idealBody)
	if code != http.StatusOK {
		t.Fatalf("contention=false: status %d, body %s", code, ideal)
	}
	code, omitted, _ := post(t, ts, "/v1/simulate", omittedBody)
	if code != http.StatusOK {
		t.Fatalf("knob omitted: status %d, body %s", code, omitted)
	}
	if ideal != omitted {
		t.Fatalf("explicit contention=false differs from omitting the knob:\n false: %s\n  none: %s", ideal, omitted)
	}

	code, contended, _ := post(t, ts, "/v1/simulate", contendedBody)
	if code != http.StatusOK {
		t.Fatalf("contention=true: status %d, body %s", code, contended)
	}
	var base, cont SimulateResult
	if err := json.Unmarshal([]byte(ideal), &base); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(contended), &cont); err != nil {
		t.Fatal(err)
	}
	if cont.Tasks != base.Tasks || cont.GPUs != base.GPUs || cont.Plan != base.Plan {
		t.Errorf("contention changed the configuration, not just timing: %+v vs %+v", cont, base)
	}
	if cont.IterTime < base.IterTime {
		t.Errorf("contention lowered iteration time %v -> %v", base.IterTime, cont.IterTime)
	}
	if cont.IterTime == base.IterTime {
		t.Errorf("contention=true priced identically to ideal (%v s) — the knob is not reaching replay", base.IterTime)
	}

	// Both contention levels stay warm side by side: same cluster, same
	// fidelity, two pool entries.
	srv.engine.mu.Lock()
	entries := len(srv.engine.sims)
	srv.engine.mu.Unlock()
	if entries != 2 {
		t.Errorf("pool holds %d simulators, want 2 (ideal + contended for one cluster)", entries)
	}
}
