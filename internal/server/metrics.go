package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the request-duration histogram upper bounds in
// seconds: sub-millisecond health checks through multi-minute sweeps.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 30, 120}

// histogram is a fixed-bucket latency histogram with lock-free observes.
// Buckets store per-interval counts; rendering accumulates them into the
// cumulative `le` form Prometheus expects.
type histogram struct {
	buckets  []atomic.Uint64 // len(latencyBuckets)+1; last is +Inf
	count    atomic.Uint64
	sumNanos atomic.Uint64
}

func newHistogram() *histogram {
	return &histogram{buckets: make([]atomic.Uint64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(d time.Duration) {
	sec := d.Seconds()
	i := 0
	for i < len(latencyBuckets) && sec > latencyBuckets[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(uint64(d.Nanoseconds()))
}

// endpointMetrics tracks one endpoint's request counts (by status code)
// and latency histogram. Counters are monotone: they are only ever
// incremented, atomically, so concurrent scrapes see non-decreasing
// values.
type endpointMetrics struct {
	mu    sync.Mutex
	codes map[int]*atomic.Uint64
	hist  *histogram
}

func (em *endpointMetrics) observe(code int, d time.Duration) {
	em.mu.Lock()
	c, ok := em.codes[code]
	if !ok {
		c = new(atomic.Uint64)
		em.codes[code] = c
	}
	em.mu.Unlock()
	c.Add(1)
	em.hist.observe(d)
}

// metrics is the server's Prometheus-style registry: per-endpoint request
// counters and latency histograms, plus an in-flight sweep gauge. The
// cache counters come from the engine at scrape time.
type metrics struct {
	mu             sync.Mutex
	endpoints      map[string]*endpointMetrics
	inflightSweeps atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{endpoints: make(map[string]*endpointMetrics)}
}

func (m *metrics) observe(endpoint string, code int, d time.Duration) {
	m.mu.Lock()
	em, ok := m.endpoints[endpoint]
	if !ok {
		em = &endpointMetrics{codes: make(map[int]*atomic.Uint64), hist: newHistogram()}
		m.endpoints[endpoint] = em
	}
	m.mu.Unlock()
	em.observe(code, d)
}

// write renders the registry in the Prometheus text exposition format,
// deterministically ordered (sorted endpoints and codes) so scrapes are
// stable and testable.
func (m *metrics) write(w io.Writer, e *Engine) {
	st := e.CacheStats()
	fmt.Fprintf(w, "# HELP vtrain_cache_report_hits_total Plan-level report cache hits across the simulator pool.\n")
	fmt.Fprintf(w, "# TYPE vtrain_cache_report_hits_total counter\n")
	fmt.Fprintf(w, "vtrain_cache_report_hits_total %d\n", st.ReportHits)
	fmt.Fprintf(w, "# HELP vtrain_cache_report_misses_total Plan-level report cache misses across the simulator pool.\n")
	fmt.Fprintf(w, "# TYPE vtrain_cache_report_misses_total counter\n")
	fmt.Fprintf(w, "vtrain_cache_report_misses_total %d\n", st.ReportMisses)
	fmt.Fprintf(w, "# HELP vtrain_cache_struct_hits_total Shape-keyed structural cache hits across the simulator pool.\n")
	fmt.Fprintf(w, "# TYPE vtrain_cache_struct_hits_total counter\n")
	fmt.Fprintf(w, "vtrain_cache_struct_hits_total %d\n", st.StructHits)
	fmt.Fprintf(w, "# HELP vtrain_cache_struct_misses_total Structural cache misses (graphs actually lowered).\n")
	fmt.Fprintf(w, "# TYPE vtrain_cache_struct_misses_total counter\n")
	fmt.Fprintf(w, "vtrain_cache_struct_misses_total %d\n", st.StructMisses)
	fmt.Fprintf(w, "# HELP vtrain_batch_replays_total Batched replay passes across the simulator pool.\n")
	fmt.Fprintf(w, "# TYPE vtrain_batch_replays_total counter\n")
	fmt.Fprintf(w, "vtrain_batch_replays_total %d\n", st.BatchReplays)
	fmt.Fprintf(w, "# HELP vtrain_batched_plans_total Plans carried by batched replay passes.\n")
	fmt.Fprintf(w, "# TYPE vtrain_batched_plans_total counter\n")
	fmt.Fprintf(w, "vtrain_batched_plans_total %d\n", st.BatchedPlans)
	fmt.Fprintf(w, "# HELP vtrain_lowerings_total Graph lowerings actually performed (structural misses not served from the artifact tier).\n")
	fmt.Fprintf(w, "# TYPE vtrain_lowerings_total counter\n")
	fmt.Fprintf(w, "vtrain_lowerings_total %d\n", st.Lowerings)
	fmt.Fprintf(w, "# HELP vtrain_cache_disk_hits_total Persistent artifact tier loads served from disk.\n")
	fmt.Fprintf(w, "# TYPE vtrain_cache_disk_hits_total counter\n")
	fmt.Fprintf(w, "vtrain_cache_disk_hits_total %d\n", st.DiskHits)
	fmt.Fprintf(w, "# HELP vtrain_cache_disk_misses_total Persistent artifact tier load attempts that fell back to lowering (absent, corrupt, or version-skewed files).\n")
	fmt.Fprintf(w, "# TYPE vtrain_cache_disk_misses_total counter\n")
	fmt.Fprintf(w, "vtrain_cache_disk_misses_total %d\n", st.DiskMisses)
	fmt.Fprintf(w, "# HELP vtrain_cache_disk_writes_total Artifacts persisted to the artifact tier.\n")
	fmt.Fprintf(w, "# TYPE vtrain_cache_disk_writes_total counter\n")
	fmt.Fprintf(w, "vtrain_cache_disk_writes_total %d\n", st.DiskWrites)

	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	m.mu.Unlock()
	sort.Strings(names)

	fmt.Fprintf(w, "# HELP vtrain_http_requests_total HTTP requests served, by endpoint and status code.\n")
	fmt.Fprintf(w, "# TYPE vtrain_http_requests_total counter\n")
	for _, name := range names {
		m.mu.Lock()
		em := m.endpoints[name]
		m.mu.Unlock()
		em.mu.Lock()
		codes := make([]int, 0, len(em.codes))
		for c := range em.codes {
			codes = append(codes, c)
		}
		em.mu.Unlock()
		sort.Ints(codes)
		for _, c := range codes {
			em.mu.Lock()
			n := em.codes[c].Load()
			em.mu.Unlock()
			fmt.Fprintf(w, "vtrain_http_requests_total{endpoint=%q,code=\"%d\"} %d\n", name, c, n)
		}
	}

	fmt.Fprintf(w, "# HELP vtrain_http_request_duration_seconds HTTP request latency, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE vtrain_http_request_duration_seconds histogram\n")
	for _, name := range names {
		m.mu.Lock()
		h := m.endpoints[name].hist
		m.mu.Unlock()
		var cum uint64
		for i, ub := range latencyBuckets {
			cum += h.buckets[i].Load()
			fmt.Fprintf(w, "vtrain_http_request_duration_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", name, ub, cum)
		}
		cum += h.buckets[len(latencyBuckets)].Load()
		fmt.Fprintf(w, "vtrain_http_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "vtrain_http_request_duration_seconds_sum{endpoint=%q} %g\n", name, float64(h.sumNanos.Load())/1e9)
		fmt.Fprintf(w, "vtrain_http_request_duration_seconds_count{endpoint=%q} %d\n", name, h.count.Load())
	}

	fmt.Fprintf(w, "# HELP vtrain_http_in_flight_sweeps Streaming sweep requests currently executing.\n")
	fmt.Fprintf(w, "# TYPE vtrain_http_in_flight_sweeps gauge\n")
	fmt.Fprintf(w, "vtrain_http_in_flight_sweeps %d\n", m.inflightSweeps.Load())
}
