package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"vtrain/internal/clusterdse"
	"vtrain/internal/dse"
)

// Config holds the server's operational knobs. The zero value of every
// field takes a production default.
type Config struct {
	// Engine serves the requests; nil builds a fresh one.
	Engine *Engine
	// MaxBodyBytes bounds request bodies (default 1 MiB — descfile-shaped
	// JSON is a few hundred bytes).
	MaxBodyBytes int64
	// SimulateTimeout bounds /v1/simulate wall-clock (default 2m). Sweeps
	// are not time-bounded — they stream for as long as the space takes —
	// but are bounded in number by MaxInflightSweeps.
	SimulateTimeout time.Duration
	// MaxInflightSweeps caps concurrently executing sweep streams
	// (default 4); excess requests get 429 rather than queueing, so
	// clients can back off or spread load.
	MaxInflightSweeps int
}

// Server wraps an Engine in the HTTP+JSON service. Create with New, mount
// via Handler (tests) or run with Serve/Shutdown (production).
type Server struct {
	engine   *Engine
	handler  http.Handler
	metrics  *metrics
	sweepSem chan struct{}
	simTO    time.Duration
	maxBody  int64
	draining atomic.Bool
	httpSrv  *http.Server
}

// New builds a Server around cfg.Engine.
func New(cfg Config) *Server {
	if cfg.Engine == nil {
		cfg.Engine = NewEngine()
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.SimulateTimeout <= 0 {
		cfg.SimulateTimeout = 2 * time.Minute
	}
	if cfg.MaxInflightSweeps <= 0 {
		cfg.MaxInflightSweeps = 4
	}
	s := &Server{
		engine:   cfg.Engine,
		metrics:  newMetrics(),
		sweepSem: make(chan struct{}, cfg.MaxInflightSweeps),
		simTO:    cfg.SimulateTimeout,
		maxBody:  cfg.MaxBodyBytes,
	}

	mux := http.NewServeMux()
	// TimeoutHandler buffers the response, which is fine for the one-shot
	// simulate body but would break NDJSON streaming — so only /v1/simulate
	// gets it.
	mux.Handle("POST /v1/simulate", s.instrument("/v1/simulate",
		http.TimeoutHandler(http.HandlerFunc(s.handleSimulate), s.simTO, "simulation timed out")))
	mux.Handle("POST /v1/sweep", s.instrument("/v1/sweep", http.HandlerFunc(s.handleSweep)))
	mux.Handle("POST /v1/clusterdse", s.instrument("/v1/clusterdse", http.HandlerFunc(s.handleClusterDSE)))
	mux.Handle("GET /healthz", s.instrument("/healthz", http.HandlerFunc(s.handleHealthz)))
	mux.Handle("GET /metrics", s.instrument("/metrics", http.HandlerFunc(s.handleMetrics)))
	s.handler = mux
	return s
}

// Engine returns the serving engine (tests inspect its cache counters).
func (s *Server) Engine() *Engine { return s.engine }

// Handler returns the routed handler, for httptest servers and custom
// listeners.
func (s *Server) Handler() http.Handler { return s.handler }

// Serve accepts connections on l until Shutdown. It returns the
// http.Server error (http.ErrServerClosed after a clean shutdown).
func (s *Server) Serve(l net.Listener) error {
	s.httpSrv = &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s.httpSrv.Serve(l)
}

// Shutdown drains the server: health checks start failing (so load
// balancers stop routing here), then the listener closes and Shutdown
// waits for in-flight requests — including streaming sweeps — to finish,
// bounded by ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.httpSrv == nil {
		return nil
	}
	return s.httpSrv.Shutdown(ctx)
}

// Draining reports whether shutdown has begun (healthz then returns 503).
func (s *Server) Draining() bool { return s.draining.Load() }

// statusRecorder captures the response code for metrics while passing
// Flush through so NDJSON lines reach the client as they are written.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps h with per-endpoint request counting and latency
// observation.
func (s *Server) instrument(endpoint string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		h.ServeHTTP(rec, r)
		code := rec.code
		if code == 0 {
			code = http.StatusOK
		}
		s.metrics.observe(endpoint, code, time.Since(start))
	})
}

// statusFor maps engine errors onto HTTP statuses: request-resolution
// failures and empty search spaces are the client's fault.
func statusFor(err error) int {
	var br *BadRequestError
	if errors.As(err, &br) || errors.Is(err, dse.ErrNoValidPlan) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(errorBody{Error: wireError{Message: err.Error(), Status: status}})
}

// decodeJSON reads one strict JSON body into v: bounded size, unknown
// fields rejected, trailing garbage rejected.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("server: malformed request body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("server: request body has trailing data")
	}
	return nil
}

// handleSimulate answers POST /v1/simulate with the exact JSON cmd/vtrain
// -json prints for the same descfile (equivalence-locked by the cmd/vtrain
// golden tests).
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	out, err := s.engine.Simulate(req)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out.Result())
}

// acquireSweep claims a sweep slot without queueing; a full server answers
// 429 so clients back off instead of piling onto the worker pool.
func (s *Server) acquireSweep(w http.ResponseWriter) bool {
	select {
	case s.sweepSem <- struct{}{}:
		s.metrics.inflightSweeps.Add(1)
		return true
	default:
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("server: too many in-flight sweeps, retry later"))
		return false
	}
}

func (s *Server) releaseSweep() {
	s.metrics.inflightSweeps.Add(-1)
	<-s.sweepSem
}

// ndjsonStream writes the line-delimited stream of a sweep response. It
// reuses dse.StreamGate at the HTTP boundary: the first write error latches
// and every later publish is dropped, so a slow or disconnected client
// never observes a partial line after a failure and the sweep's own
// no-emission-after-error contract extends through the socket.
type ndjsonStream struct {
	w       http.ResponseWriter
	flush   http.Flusher
	gate    dse.StreamGate
	started bool
	// werr is the first marshal/write failure. It is only touched inside
	// Publish closures — the gate serializes those — so publishers racing
	// the latch still see the failure and skip the socket.
	werr error
}

func newNDJSONStream(w http.ResponseWriter) *ndjsonStream {
	st := &ndjsonStream{w: w}
	if f, ok := w.(http.Flusher); ok {
		st.flush = f
	}
	return st
}

func (st *ndjsonStream) writeLine(line streamLine) {
	// Fail cannot be called from inside Publish (it would re-enter the
	// gate's lock), so the failure is recorded under the gate and latched
	// right after.
	var failed error
	st.gate.Publish(func() {
		if st.werr != nil {
			return
		}
		// The 200 commits lazily with the first line: a sweep that fails
		// before emitting anything still gets a real error status.
		if !st.started {
			st.w.Header().Set("Content-Type", "application/x-ndjson")
			st.w.WriteHeader(http.StatusOK)
			st.started = true
		}
		b, err := json.Marshal(line)
		if err != nil {
			st.werr, failed = err, err
			return
		}
		if _, err := st.w.Write(append(b, '\n')); err != nil {
			st.werr, failed = err, err
			return
		}
		if st.flush != nil {
			st.flush.Flush()
		}
	})
	if failed != nil {
		st.gate.Fail(failed)
	}
}

// point streams one result line.
func (st *ndjsonStream) point(p any) { st.writeLine(streamLine{Point: p}) }

// finish closes the stream: a summary line on success, an error line (or a
// real error status if nothing has streamed yet) on failure.
func (st *ndjsonStream) finish(sum *StreamSummary, err error) {
	if werr := st.gate.FirstErr(); err == nil && werr != nil {
		err = werr
	}
	if err == nil {
		st.writeLine(streamLine{Summary: sum})
		return
	}
	if !st.started {
		writeError(st.w, statusFor(err), err)
		return
	}
	// The 200 is already on the wire; latch the gate so no point line can
	// race past the terminal error line, then write it directly.
	st.gate.Fail(err)
	b, merr := json.Marshal(streamLine{Error: &wireError{Message: err.Error(), Status: statusFor(err)}})
	if merr != nil {
		return
	}
	st.w.Write(append(b, '\n'))
	if st.flush != nil {
		st.flush.Flush()
	}
}

// handleSweep answers POST /v1/sweep with an NDJSON stream: one line per
// evaluated plan, then a summary line.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !s.acquireSweep(w) {
		return
	}
	defer s.releaseSweep()
	run, err := s.engine.PrepareSweep(req)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	st := newNDJSONStream(w)
	sum, err := run.Run(func(p dse.Point) {
		st.point(NewSweepPoint(p, run.Cluster(), run.TotalTokens()))
	})
	if err != nil {
		st.finish(nil, err)
		return
	}
	st.finish(&StreamSummary{Points: sum.Points, Cache: newCacheCounters(sum.Cache)}, nil)
}

// handleClusterDSE answers POST /v1/clusterdse with an NDJSON stream over
// the joint (hardware, plan) space.
func (s *Server) handleClusterDSE(w http.ResponseWriter, r *http.Request) {
	var req ClusterDSERequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !s.acquireSweep(w) {
		return
	}
	defer s.releaseSweep()
	run, err := s.engine.PrepareClusterDSE(req)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	st := newNDJSONStream(w)
	sum, err := run.Run(func(p clusterdse.Point) {
		st.point(NewClusterPoint(p))
	})
	if err != nil {
		st.finish(nil, err)
		return
	}
	st.finish(&StreamSummary{
		Points: sum.Points, Candidates: sum.Candidates,
		Cache: newCacheCounters(sum.Cache),
	}, nil)
}

// handleHealthz answers GET /healthz: 200 while serving, 503 once shutdown
// begins so load balancers drain this instance before the listener closes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics answers GET /metrics in the Prometheus text exposition
// format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var sb strings.Builder
	s.metrics.write(&sb, s.engine)
	fmt.Fprint(w, sb.String())
}
