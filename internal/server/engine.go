package server

import (
	"fmt"
	"sync"

	"vtrain/internal/artifact"
	"vtrain/internal/clusterdse"
	"vtrain/internal/core"
	"vtrain/internal/cost"
	"vtrain/internal/dse"
	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/resilience"
	"vtrain/internal/taskgraph"
)

// DefaultPoolSize bounds how many distinct (cluster, fidelity) simulators
// the engine keeps warm. Each pooled simulator owns a report cache and a
// structural cache; the bound keeps a hostile request stream (every request
// a new node count) from growing the pool without limit.
const DefaultPoolSize = 64

// Engine is the transport-independent serving core: it resolves requests
// to simulator inputs and routes them to a pool of core.Simulators whose
// structural and report caches persist across requests. Identical
// concurrent work dedupes through the simulators' single-flight lowering;
// repeated configurations across users hit warm caches instead of paying
// cold lowering, which is the whole point of running long-lived.
//
// An Engine is safe for concurrent use.
type Engine struct {
	simOpts  []core.Option
	poolSize int

	// artifactDir, when set, backs every simulator with one shared
	// persistent artifact store: an evicted pool entry's lowered graphs
	// survive on disk, and a restarted server is warm at request one. The
	// store opens lazily on first simulator construction.
	artifactDir  string
	artifactOnce sync.Once
	artifacts    *artifact.Store
	artifactErr  error

	mu    sync.Mutex
	sims  map[simKey]*core.Simulator
	order []simKey // insertion order, for FIFO eviction
	roots map[taskgraph.Fidelity]*core.Simulator
	// retired accumulates the final counters of evicted simulators, so the
	// engine-wide totals (and therefore /metrics) stay monotone when the
	// pool thrashes. Guarded by mu.
	retired core.CacheStats
}

type simKey struct {
	cluster    hw.Cluster
	fidelity   taskgraph.Fidelity
	contention bool
}

// EngineOption configures an Engine.
type EngineOption func(*Engine)

// WithSimulatorOptions appends core options applied to every simulator the
// engine creates. One-shot CLI processes pass core.WithCacheSize(0): their
// configurations never repeat, so the report cache would only hold garbage.
func WithSimulatorOptions(opts ...core.Option) EngineOption {
	return func(e *Engine) { e.simOpts = append(e.simOpts, opts...) }
}

// WithArtifactDir enables the persistent artifact tier for every simulator
// the engine creates: one shared content-addressed store under dir, so
// lowered graphs survive pool eviction and process restarts, and the disk
// counters in /metrics are store-wide totals. An empty dir leaves the tier
// disabled (the default).
func WithArtifactDir(dir string) EngineOption {
	return func(e *Engine) { e.artifactDir = dir }
}

// artifactStore lazily opens the engine's shared store; nil when no
// artifact dir is configured.
func (e *Engine) artifactStore() (*artifact.Store, error) {
	if e.artifactDir == "" {
		return nil, nil
	}
	e.artifactOnce.Do(func() {
		e.artifacts, e.artifactErr = artifact.Open(e.artifactDir)
	})
	return e.artifacts, e.artifactErr
}

// WithPoolSize bounds the simulator pool to n entries (DefaultPoolSize if
// the option is not given; n <= 0 keeps the default).
func WithPoolSize(n int) EngineOption {
	return func(e *Engine) {
		if n > 0 {
			e.poolSize = n
		}
	}
}

// NewEngine builds an empty engine; simulators are created lazily as
// requests arrive and stay warm for the engine's lifetime.
func NewEngine(opts ...EngineOption) *Engine {
	e := &Engine{
		poolSize: DefaultPoolSize,
		sims:     make(map[simKey]*core.Simulator),
		roots:    make(map[taskgraph.Fidelity]*core.Simulator),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// simulator returns the pooled simulator for (c, fid, contention), creating
// it on first use. When the pool is full the oldest entry is dropped: its
// caches are garbage-collected once in-flight requests release it
// (simulators are safe to use after eviction; new requests just build a
// fresh one).
func (e *Engine) simulator(c hw.Cluster, fid taskgraph.Fidelity, contention bool) (*core.Simulator, error) {
	key := simKey{cluster: c, fidelity: fid, contention: contention}
	e.mu.Lock()
	defer e.mu.Unlock()
	if s, ok := e.sims[key]; ok {
		return s, nil
	}
	opts, err := e.coreOptions(fid, contention)
	if err != nil {
		return nil, err
	}
	s, err := core.New(c, opts...)
	if err != nil {
		return nil, badRequest(err)
	}
	if len(e.order) >= e.poolSize {
		if old := e.sims[e.order[0]]; old != nil {
			e.retired = e.retired.Add(old.CacheStats())
		}
		delete(e.sims, e.order[0])
		e.order = e.order[1:]
	}
	e.sims[key] = s
	e.order = append(e.order, key)
	return s, nil
}

// clusterRoot returns the root simulator cluster-design sweeps derive
// their per-candidate siblings from, one per fidelity. The root's own
// cluster is irrelevant — structure is hardware-invariant and every
// candidate binds its own durations — but its shape-keyed structural cache
// is shared by every sibling of every request, so repeated cluster sweeps
// re-lower nothing.
func (e *Engine) clusterRoot(fid taskgraph.Fidelity) (*core.Simulator, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if s, ok := e.roots[fid]; ok {
		return s, nil
	}
	// The root stays contention-off: contention is per-request and flows
	// through clusterdse.Space.Contention to the per-candidate siblings,
	// which may differ from their root (contention binds at replay time,
	// never into the shared structure).
	opts, err := e.coreOptions(fid, false)
	if err != nil {
		return nil, err
	}
	s, err := core.New(hw.Catalog()[0].Cluster(1), opts...)
	if err != nil {
		return nil, err
	}
	e.roots[fid] = s
	return s, nil
}

// coreOptions assembles the option list for a new pooled simulator:
// fidelity, contention level, the engine-wide simulator options, and the
// shared artifact store when one is configured.
func (e *Engine) coreOptions(fid taskgraph.Fidelity, contention bool) ([]core.Option, error) {
	opts := append([]core.Option{core.WithFidelity(fid), core.WithContention(contention)}, e.simOpts...)
	st, err := e.artifactStore()
	if err != nil {
		return nil, err
	}
	if st != nil {
		opts = append(opts, core.WithArtifactStore(st))
	}
	return opts, nil
}

// CacheStats sums the counters of every pooled simulator and cluster-sweep
// root: the serving layer's cache-concentration view, exported by /metrics.
func (e *Engine) CacheStats() core.CacheStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.retired
	for _, s := range e.sims {
		st = st.Add(s.CacheStats())
	}
	for _, s := range e.roots {
		st = st.Add(s.CacheStats())
	}
	// Every pooled simulator shares the engine's one artifact store and
	// therefore reports the same store-wide disk totals; summing them
	// would multiply the counters by the pool size, so take the store's
	// numbers once instead. (It also keeps the totals monotone across
	// pool eviction, unlike per-simulator counters that vanish with their
	// simulator.)
	if st2 := e.artifacts; st2 != nil {
		as := st2.Stats()
		st.DiskHits, st.DiskMisses, st.DiskWrites = as.Hits, as.Misses, as.Writes
	}
	return st
}

// Simulate resolves and runs one simulation request. Request-resolution
// failures (unparseable sections, invalid plans, unknown fidelity) return
// a *BadRequestError; simulation failures return the simulator's error.
func (e *Engine) Simulate(req SimulateRequest) (SimulateOutcome, error) {
	out, sim, err := e.prepareSimulate(req)
	if err != nil {
		return SimulateOutcome{}, err
	}
	out.Report, err = sim.Simulate(out.Model, out.Plan)
	if err != nil {
		return SimulateOutcome{}, err
	}
	if err := e.project(&out, req); err != nil {
		return SimulateOutcome{}, err
	}
	return out, nil
}

// SimulateTrace is Simulate plus the full execution timeline (the CLI's
// -trace path).
func (e *Engine) SimulateTrace(req SimulateRequest) (SimulateOutcome, []taskgraph.Span, error) {
	out, sim, err := e.prepareSimulate(req)
	if err != nil {
		return SimulateOutcome{}, nil, err
	}
	var spans []taskgraph.Span
	out.Report, spans, err = sim.SimulateTrace(out.Model, out.Plan)
	if err != nil {
		return SimulateOutcome{}, nil, err
	}
	if err := e.project(&out, req); err != nil {
		return SimulateOutcome{}, nil, err
	}
	return out, spans, nil
}

func (e *Engine) prepareSimulate(req SimulateRequest) (SimulateOutcome, *core.Simulator, error) {
	m, plan, cluster, err := req.Description.Resolve()
	if err != nil {
		return SimulateOutcome{}, nil, badRequest(err)
	}
	fid, err := ParseFidelity(req.Fidelity, taskgraph.TaskLevel)
	if err != nil {
		return SimulateOutcome{}, nil, badRequest(err)
	}
	sim, err := e.simulator(cluster, fid, req.Contention)
	if err != nil {
		return SimulateOutcome{}, nil, err
	}
	return SimulateOutcome{Model: m, Plan: plan, Cluster: cluster}, sim, nil
}

// project adds the end-to-end training and resilience economics when the
// request carries a token budget.
func (e *Engine) project(out *SimulateOutcome, req SimulateRequest) error {
	if req.TotalTokens == 0 {
		return nil
	}
	tr := cost.Train(out.Model, out.Plan.GlobalBatch, out.Report.IterTime, out.Plan.GPUs(), req.TotalTokens, out.Cluster)
	out.Training = &tr
	if opts, enabled := req.ResilienceOptions(); enabled {
		mod, err := resilience.For(out.Model, out.Cluster, out.Plan.GPUs(), opts)
		if err != nil {
			// The failure environment is part of the request: a cluster
			// that fails faster than it checkpoints, or overrides the
			// catalog cannot complete, is the client's configuration.
			return badRequest(err)
		}
		r := cost.ApplyResilience(tr, mod)
		out.Resilience = &r
	}
	return nil
}

// SweepRun is a resolved /v1/sweep request, ready to execute. Splitting
// preparation from execution lets the HTTP layer reject bad requests with
// a clean 400 before committing to a streamed 200.
type SweepRun struct {
	sim     *core.Simulator
	model   model.Config
	cluster hw.Cluster
	space   dse.Space
	tokens  uint64
}

// PrepareSweep resolves a sweep request against the pool. All failures are
// *BadRequestError: an unresolvable model or cluster, a non-positive
// batch, or a plan space with no valid point.
func (e *Engine) PrepareSweep(req SweepRequest) (*SweepRun, error) {
	m, err := req.Model.Resolve()
	if err != nil {
		return nil, badRequest(err)
	}
	cluster, err := req.Cluster.Resolve()
	if err != nil {
		return nil, badRequest(err)
	}
	if req.GlobalBatch <= 0 {
		return nil, badRequest(fmt.Errorf("server: global_batch must be positive, got %d", req.GlobalBatch))
	}
	fid, err := ParseFidelity(req.Fidelity, taskgraph.OperatorLevel)
	if err != nil {
		return nil, badRequest(err)
	}
	sim, err := e.simulator(cluster, fid, req.Contention)
	if err != nil {
		return nil, err
	}
	space := dse.DefaultSpace(m, req.GlobalBatch)
	space.MaxMicroBatches = 512
	if len(req.TensorWidths) > 0 {
		space.TensorWidths = req.TensorWidths
	}
	if len(req.DataWidths) > 0 {
		space.DataWidths = req.DataWidths
	}
	if len(req.PipelineDepths) > 0 {
		space.PipelineDepths = req.PipelineDepths
	}
	if len(req.MicroBatches) > 0 {
		space.MicroBatches = req.MicroBatches
	}
	if req.MaxGPUs > 0 {
		space.MaxGPUs = req.MaxGPUs
	}
	if req.MaxMicroBatches > 0 {
		space.MaxMicroBatches = req.MaxMicroBatches
	}
	if len(space.Enumerate(m, sim)) == 0 {
		return nil, badRequest(fmt.Errorf("dse: %s: %w", m.Name, dse.ErrNoValidPlan))
	}
	return &SweepRun{sim: sim, model: m, cluster: cluster, space: space, tokens: req.TotalTokens}, nil
}

// Cluster returns the cluster the sweep resolved to.
func (r *SweepRun) Cluster() hw.Cluster { return r.cluster }

// TotalTokens returns the request's token budget (0 = no cost projection).
func (r *SweepRun) TotalTokens() uint64 { return r.tokens }

// CacheStats snapshots the serving simulator's counters; sweep progress
// reporting polls it mid-run.
func (r *SweepRun) CacheStats() core.CacheStats { return r.sim.CacheStats() }

// Run executes the sweep, streaming each evaluated point to fn. Calls to
// fn are serialized and stop at the first error — dse.ExploreFunc's
// StreamGate guarantees no emission follows a failure, including from
// batches already in flight on other workers.
func (r *SweepRun) Run(fn func(dse.Point)) (SweepSummary, error) {
	n := 0
	err := dse.ExploreFunc(r.sim, r.model, r.space, func(p dse.Point) {
		n++
		fn(p)
	})
	if err != nil {
		return SweepSummary{}, err
	}
	return SweepSummary{Points: n, Cluster: r.cluster, Cache: r.sim.CacheStats()}, nil
}

// ClusterRun is a resolved /v1/clusterdse request, ready to execute.
type ClusterRun struct {
	root       *core.Simulator
	model      model.Config
	space      clusterdse.Space
	candidates int
	resilient  bool
}

// PrepareClusterDSE resolves a cluster-design sweep against the per-
// fidelity root simulator; every request's candidate siblings share the
// root's structural cache, so repeated sweeps re-lower nothing.
func (e *Engine) PrepareClusterDSE(req ClusterDSERequest) (*ClusterRun, error) {
	m, err := req.Model.Resolve()
	if err != nil {
		return nil, badRequest(err)
	}
	if req.GlobalBatch <= 0 {
		return nil, badRequest(fmt.Errorf("server: global_batch must be positive, got %d", req.GlobalBatch))
	}
	if req.TotalTokens == 0 {
		return nil, badRequest(fmt.Errorf("server: total_tokens must be positive to price training runs"))
	}
	if len(req.NodeCounts) == 0 {
		return nil, badRequest(fmt.Errorf("server: node_counts must name at least one cluster size"))
	}
	for _, n := range req.NodeCounts {
		if n <= 0 {
			return nil, badRequest(fmt.Errorf("server: node counts must be positive, got %d", n))
		}
	}
	if err := req.Resilience.Validate(); err != nil {
		return nil, badRequest(err)
	}
	offs, err := clusterdse.SelectOfferings(req.Offerings, req.CrossInterconnects)
	if err != nil {
		return nil, badRequest(err)
	}
	fid, err := ParseFidelity(req.Fidelity, taskgraph.OperatorLevel)
	if err != nil {
		return nil, badRequest(err)
	}
	space := clusterdse.DefaultSpace(m, req.GlobalBatch, req.TotalTokens, req.NodeCounts)
	space.Offerings = offs
	space.Contention = req.Contention
	opts, enabled := req.Resilience.Options()
	if enabled {
		space.Resilience = &opts
	} else {
		space.Resilience = nil
	}
	if len(req.TensorWidths) > 0 {
		space.Plans.TensorWidths = req.TensorWidths
	}
	if len(req.DataWidths) > 0 {
		space.Plans.DataWidths = req.DataWidths
	}
	if len(req.PipelineDepths) > 0 {
		space.Plans.PipelineDepths = req.PipelineDepths
	}
	if len(req.MicroBatches) > 0 {
		space.Plans.MicroBatches = req.MicroBatches
	}
	if req.MaxMicroBatches > 0 {
		space.Plans.MaxMicroBatches = req.MaxMicroBatches
	}
	root, err := e.clusterRoot(fid)
	if err != nil {
		return nil, err
	}
	return &ClusterRun{
		root: root, model: m, space: space,
		candidates: len(offs) * len(req.NodeCounts),
		resilient:  enabled,
	}, nil
}

// Model returns the resolved model configuration.
func (r *ClusterRun) Model() model.Config { return r.model }

// Candidates returns the hardware grid size: offerings x node counts.
func (r *ClusterRun) Candidates() int { return r.candidates }

// Resilient reports whether failure pricing is applied to every point.
func (r *ClusterRun) Resilient() bool { return r.resilient }

// CacheStats snapshots the root simulator's shared counters.
func (r *ClusterRun) CacheStats() core.CacheStats { return r.root.CacheStats() }

// Run executes the joint sweep, streaming each evaluated point to fn under
// the same no-emission-after-error discipline as SweepRun.Run.
func (r *ClusterRun) Run(fn func(clusterdse.Point)) (ClusterSummary, error) {
	n := 0
	err := clusterdse.ExploreFunc(r.root, r.model, r.space, func(p clusterdse.Point) {
		n++
		fn(p)
	})
	if err != nil {
		return ClusterSummary{}, err
	}
	return ClusterSummary{
		Points: n, Candidates: r.candidates,
		Resilience: r.resilient, Cache: r.root.CacheStats(),
	}, nil
}
