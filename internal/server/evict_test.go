package server

import (
	"net/http/httptest"
	"testing"
)

// operatorBody is simulateBody at operator fidelity: same cluster, a
// different pool key.
const operatorBody = `{
  "model": {"preset": "megatron-3.6b"},
  "cluster": {"nodes": 1},
  "plan": {"tensor": 2, "data": 2, "pipeline": 2, "micro_batch": 1, "global_batch": 64},
  "total_tokens": 20000000000,
  "fidelity": "operator"
}`

// twoNodeBody is simulateBody on a two-node cluster: a third pool key.
const twoNodeBody = `{
  "model": {"preset": "megatron-3.6b"},
  "cluster": {"nodes": 2},
  "plan": {"tensor": 2, "data": 2, "pipeline": 2, "micro_batch": 1, "global_batch": 64},
  "total_tokens": 20000000000
}`

func poolLen(e *Engine) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.sims)
}

// TestEnginePoolFIFOEviction drives a 2-entry pool through three distinct
// (cluster, fidelity) keys and back: the oldest entry is evicted, the pool
// never exceeds its bound, and a re-warmed evicted configuration answers
// with byte-identical response bodies — eviction may cost time, never
// content.
func TestEnginePoolFIFOEviction(t *testing.T) {
	eng := NewEngine(WithPoolSize(2))
	srv := New(Config{Engine: eng})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	mustPost := func(body string) string {
		t.Helper()
		code, resp, _ := post(t, ts, "/v1/simulate", body)
		if code != 200 {
			t.Fatalf("status %d: %s", code, resp)
		}
		return resp
	}

	respA := mustPost(simulateBody) // key A: (1 node, task)
	mustPost(operatorBody)          // key B: (1 node, operator)
	if n := poolLen(eng); n != 2 {
		t.Fatalf("pool holds %d simulators after two keys, want 2", n)
	}
	respC := mustPost(twoNodeBody) // key C evicts A
	if n := poolLen(eng); n != 2 {
		t.Fatalf("pool holds %d simulators after eviction, want 2", n)
	}
	if got := mustPost(simulateBody); got != respA { // A re-warms (evicts B)
		t.Error("re-warmed response for evicted key A differs from its original bytes")
	}
	if n := poolLen(eng); n != 2 {
		t.Fatalf("pool holds %d simulators after re-warm, want 2", n)
	}
	if got := mustPost(twoNodeBody); got != respC { // C still pooled: warm hit
		t.Error("pooled response for key C drifted")
	}
}

// TestEnginePoolEvictionRewarmsFromDisk is the eviction test with the
// artifact tier on: a single-entry pool thrashes, but the evicted entry's
// lowered graph survives on disk, so the re-warm is a disk hit — visible in
// the tiered counters — and still byte-identical.
func TestEnginePoolEvictionRewarmsFromDisk(t *testing.T) {
	eng := NewEngine(WithPoolSize(1), WithArtifactDir(t.TempDir()))
	srv := New(Config{Engine: eng})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	mustPost := func(body string) string {
		t.Helper()
		code, resp, _ := post(t, ts, "/v1/simulate", body)
		if code != 200 {
			t.Fatalf("status %d: %s", code, resp)
		}
		return resp
	}

	respA := mustPost(simulateBody)
	if st := eng.CacheStats(); st.DiskWrites == 0 {
		t.Fatalf("cold request persisted nothing: %+v", st)
	}
	mustPost(operatorBody) // evicts A's simulator
	hitsBefore := eng.CacheStats().DiskHits

	if got := mustPost(simulateBody); got != respA {
		t.Error("disk-rewarmed response differs from the original bytes")
	}
	st := eng.CacheStats()
	if st.DiskHits <= hitsBefore {
		t.Errorf("re-warm after eviction did not hit the disk tier: hits %d -> %d", hitsBefore, st.DiskHits)
	}

	// The new tiered counters are exported and monotone under further
	// traffic; the pre-existing Prometheus names stay present (locked by
	// TestMetricsMonotone).
	m1 := scrape(t, ts)
	lo1 := metricValue(t, m1, "vtrain_lowerings_total")
	dh1 := metricValue(t, m1, "vtrain_cache_disk_hits_total")
	dm1 := metricValue(t, m1, "vtrain_cache_disk_misses_total")
	dw1 := metricValue(t, m1, "vtrain_cache_disk_writes_total")
	if lo1 == 0 || dh1 == 0 || dw1 == 0 {
		t.Errorf("tiered counters missing activity: lowerings=%v disk_hits=%v disk_writes=%v", lo1, dh1, dw1)
	}
	mustPost(operatorBody) // evict + re-warm once more
	m2 := scrape(t, ts)
	for name, before := range map[string]float64{
		"vtrain_lowerings_total":         lo1,
		"vtrain_cache_disk_hits_total":   dh1,
		"vtrain_cache_disk_misses_total": dm1,
		"vtrain_cache_disk_writes_total": dw1,
	} {
		if after := metricValue(t, m2, name); after < before {
			t.Errorf("%s fell from %v to %v — counters must be monotone across eviction", name, before, after)
		}
	}
}
