package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestStreamNoEmissionAfterError drives the NDJSON stream with a hostile
// runner: many goroutines publishing points race a mid-stream failure,
// exactly the shape of ExploreFunc's worker pool when one batch errors.
// The StreamGate contract must hold at the HTTP boundary — once finish
// latches the error, no point line may reach the response, and the error
// line is the stream's last line.
func TestStreamNoEmissionAfterError(t *testing.T) {
	rec := httptest.NewRecorder()
	st := newNDJSONStream(rec)

	// A few well-ordered points land before the failure.
	st.point(SweepPoint{Plan: "pre-1"})
	st.point(SweepPoint{Plan: "pre-2"})

	boom := errors.New("batch 7 exploded")
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 100; j++ {
				st.point(SweepPoint{Plan: "racing"})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		st.finish(nil, boom)
	}()
	close(start)
	wg.Wait()

	// Racing emissions before the latch are fine; after the error line,
	// nothing.
	lines := strings.Split(strings.TrimRight(rec.Body.String(), "\n"), "\n")
	errIdx := -1
	for i, l := range lines {
		var line struct {
			Error *wireError `json:"error"`
		}
		if err := json.Unmarshal([]byte(l), &line); err != nil {
			t.Fatalf("line %d is not valid JSON: %q", i, l)
		}
		if line.Error != nil {
			if errIdx >= 0 {
				t.Fatalf("two error lines (%d and %d)", errIdx, i)
			}
			errIdx = i
			if line.Error.Message != boom.Error() {
				t.Errorf("error message = %q, want %q", line.Error.Message, boom.Error())
			}
			if line.Error.Status != 500 {
				t.Errorf("error status = %d, want 500", line.Error.Status)
			}
		}
	}
	if errIdx < 0 {
		t.Fatal("no error line in failed stream")
	}
	if errIdx != len(lines)-1 {
		t.Fatalf("error line at %d of %d — %d point lines emitted after the failure latched",
			errIdx, len(lines), len(lines)-1-errIdx)
	}
	if !st.gate.Stopped() {
		t.Error("gate not latched after finish(err)")
	}

	// And the latch holds: later publishes are dropped entirely.
	before := rec.Body.Len()
	st.point(SweepPoint{Plan: "too-late"})
	if rec.Body.Len() != before {
		t.Error("point emitted after the stream finished with an error")
	}
}

// TestStreamPreStartErrorIsRealStatus locks the two-phase error protocol:
// a failure before the first byte must be a plain JSON error response with
// a real status code, not an in-band stream line.
func TestStreamPreStartErrorIsRealStatus(t *testing.T) {
	rec := httptest.NewRecorder()
	st := newNDJSONStream(rec)
	st.finish(nil, badRequest(errors.New("bad axis")))
	if rec.Code != 400 {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatalf("pre-start error body is not structured JSON: %v", err)
	}
	if eb.Error.Message != "bad axis" || eb.Error.Status != 400 {
		t.Errorf("error body = %+v", eb.Error)
	}
}

// TestStreamWriteFailureLatches locks the disconnected-client path: the
// first failed write latches the gate, so a sweep with thousands of
// remaining points stops reaching the socket instead of erroring on every
// line.
func TestStreamWriteFailureLatches(t *testing.T) {
	w := &failingWriter{failAfter: 2, ResponseRecorder: httptest.NewRecorder()}
	st := newNDJSONStream(w)
	for i := 0; i < 10; i++ {
		st.point(SweepPoint{Plan: "p"})
	}
	if !st.gate.Stopped() {
		t.Fatal("gate not latched after write failure")
	}
	if w.writes != 3 { // 2 successes + the failing attempt
		t.Errorf("writes = %d, want 3 (latch must stop further writes)", w.writes)
	}
	if err := st.gate.FirstErr(); err == nil || !strings.Contains(err.Error(), "client gone") {
		t.Errorf("FirstErr = %v, want the write error", err)
	}
}

type failingWriter struct {
	*httptest.ResponseRecorder
	failAfter int
	writes    int
}

func (w *failingWriter) Write(b []byte) (int, error) {
	w.writes++
	if w.writes > w.failAfter {
		return 0, errors.New("client gone")
	}
	return w.ResponseRecorder.Write(b)
}

// TestStreamSummaryLine sanity-checks the happy-path envelope shape that
// the goldens pin byte-for-byte: point lines then exactly one summary.
func TestStreamSummaryLine(t *testing.T) {
	rec := httptest.NewRecorder()
	st := newNDJSONStream(rec)
	st.point(SweepPoint{Plan: "a"})
	st.finish(&StreamSummary{Points: 1}, nil)
	sc := bufio.NewScanner(bytes.NewReader(rec.Body.Bytes()))
	var n int
	for sc.Scan() {
		n++
	}
	if n != 2 {
		t.Fatalf("lines = %d, want 2 (point + summary)", n)
	}
}
