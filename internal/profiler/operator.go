// Package profiler is vTrain's profiling module (Section III-C): it
// determines which low-level kernels ("tasks") each high-level operator
// decomposes into and how long each kernel runs on the target GPU, building
// the operator-to-task lookup table.
//
// On real hardware this is done by executing each operator once under CUPTI
// and attributing kernels to operators with Daydream's task-to-layer
// mapping. Here the target GPU is the analytical device model in
// internal/gpu, so "executing" an operator means asking the device model
// for each kernel the operator's Megatron implementation would launch. The
// decompositions follow Megatron-LM's FP16 transformer blocks.
//
// The necessary-operator optimization is implemented exactly as described:
// operators are cached by their shape key, so a model with L identical
// decoder layers and N micro-batches profiles each distinct operator once
// (O(1) rather than O(L·N)).
package profiler

import (
	"fmt"

	"vtrain/internal/model"
)

// OpKind enumerates the computation operators of a decoder-only LLM's
// training iteration (Fig. 2 / Fig. 4 of the paper).
type OpKind int

const (
	// FwdEmbedding looks up word+position embeddings for a micro-batch.
	FwdEmbedding OpKind = iota
	// BwdEmbedding scatters gradients into the embedding tables.
	BwdEmbedding
	// FwdMHA is the forward multi-head-attention block including its
	// leading LayerNorm, QKV/output projections, and dropout+residual.
	FwdMHA
	// BwdMHA is the corresponding backward pass.
	BwdMHA
	// FwdFFN is the forward feed-forward block including its LayerNorm,
	// the two FC layers, GELU, and dropout+residual.
	FwdFFN
	// BwdFFN is the corresponding backward pass.
	BwdFFN
	// FwdLMHead projects final hidden states onto the vocabulary and
	// evaluates the softmax cross-entropy loss.
	FwdLMHead
	// BwdLMHead is the corresponding backward pass.
	BwdLMHead
	// WeightUpdate is the fused Adam step over a parameter shard.
	WeightUpdate
)

// opKindNames is indexed by OpKind; the kinds are dense from FwdEmbedding.
// An array (not a map) keeps String allocation- and hash-free — lowering
// interns a class string per task, so this sits on the sweep hot path.
var opKindNames = [...]string{
	FwdEmbedding: "FwdEmbedding",
	BwdEmbedding: "BwdEmbedding",
	FwdMHA:       "FwdMHA",
	BwdMHA:       "BwdMHA",
	FwdFFN:       "FwdFFN",
	BwdFFN:       "BwdFFN",
	FwdLMHead:    "FwdLMHead",
	BwdLMHead:    "BwdLMHead",
	WeightUpdate: "WeightUpdate",
}

// String implements fmt.Stringer.
func (k OpKind) String() string {
	if k >= 0 && int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// IsForward reports whether the operator belongs to the forward pass.
func (k OpKind) IsForward() bool {
	switch k {
	case FwdEmbedding, FwdMHA, FwdFFN, FwdLMHead:
		return true
	}
	return false
}

// Operator is a layer-node's computation: one operator instance executed on
// one GPU. Its key fields fully determine the kernel decomposition, which is
// what makes the necessary-operator cache sound.
type Operator struct {
	// Kind selects the decomposition.
	Kind OpKind
	// Model supplies (h, s, n, V).
	Model model.Config
	// MicroBatch is the per-replica micro-batch size in sequences.
	MicroBatch int
	// Tensor is the tensor-parallel width sharding this operator.
	Tensor int
	// Params is the parameter count for WeightUpdate operators (the
	// shard owned by one GPU); zero otherwise.
	Params uint64
}

// Key is the shape signature the profile cache is indexed by. Two operators
// with equal keys launch identical kernel sequences — the paper's
// "identically shaped decoder layer stacked repeatedly" observation.
type Key struct {
	Kind       OpKind
	Hidden     int
	SeqLen     int
	Heads      int
	Vocab      int
	MicroBatch int
	Tensor     int
	Params     uint64
}

// Key returns the cache signature of the operator.
func (o Operator) Key() Key {
	return Key{
		Kind:       o.Kind,
		Hidden:     o.Model.Hidden,
		SeqLen:     o.Model.SeqLen,
		Heads:      o.Model.Heads,
		Vocab:      o.Model.Vocab,
		MicroBatch: o.MicroBatch,
		Tensor:     o.Tensor,
		Params:     o.Params,
	}
}

// String implements fmt.Stringer.
func (o Operator) String() string {
	return fmt.Sprintf("%s[h=%d,s=%d,b=%d,t=%d]", o.Kind, o.Model.Hidden, o.Model.SeqLen, o.MicroBatch, o.Tensor)
}
