package profiler

import (
	"strings"
	"testing"

	"vtrain/internal/gpu"
	"vtrain/internal/hw"
	"vtrain/internal/model"
)

func newProfiler() *Profiler {
	return New(gpu.NewDevice(hw.A100SXM80GB()))
}

func op(kind OpKind, m model.Config, b, t int) Operator {
	return Operator{Kind: kind, Model: m, MicroBatch: b, Tensor: t}
}

func TestDecompositionKernelCounts(t *testing.T) {
	p := newProfiler()
	m := model.Megatron18_4B()
	tests := []struct {
		kind OpKind
		min  int
	}{
		{FwdEmbedding, 2},
		{BwdEmbedding, 2},
		{FwdMHA, 8},  // LN, QKV, QK^T, scale, softmax, dropout, SV, proj, residual
		{BwdMHA, 10}, // each GEMM doubles into dgrad+wgrad
		{FwdFFN, 5},
		{BwdFFN, 6},
		{FwdLMHead, 3},
		{BwdLMHead, 3},
	}
	for _, tc := range tests {
		tasks := p.Profile(op(tc.kind, m, 2, 4))
		if len(tasks) < tc.min {
			t.Errorf("%v: %d kernels, want >= %d", tc.kind, len(tasks), tc.min)
		}
		for _, task := range tasks {
			if task.Duration <= 0 {
				t.Errorf("%v: kernel %s has non-positive duration", tc.kind, task.Kernel.Name)
			}
		}
	}
}

func TestBackwardCostsRoughlyTwiceForward(t *testing.T) {
	p := newProfiler()
	m := model.Megatron39_1B()
	fwd := p.Duration(op(FwdFFN, m, 2, 8))
	bwd := p.Duration(op(BwdFFN, m, 2, 8))
	ratio := bwd / fwd
	if ratio < 1.6 || ratio > 2.6 {
		t.Fatalf("BwdFFN/FwdFFN = %.2f, want ~2 (dgrad + wgrad)", ratio)
	}
}

func TestTensorParallelismShrinksOperators(t *testing.T) {
	p := newProfiler()
	m := model.MTNLG530B()
	t1 := p.Duration(op(FwdMHA, m, 1, 1))
	t8 := p.Duration(op(FwdMHA, m, 1, 8))
	// 8-way sharding should cut the per-GPU time by 4-8x (GEMMs scale,
	// LayerNorm and residual do not).
	if t8 >= t1/3 {
		t.Fatalf("t=8 MHA %.4g not meaningfully faster than t=1 %.4g", t8, t1)
	}
}

func TestNecessaryOperatorCacheIsO1(t *testing.T) {
	// Profiling the same decoder-layer operator for many layers and
	// micro-batches must execute the device model exactly once — the
	// paper's O(1) necessary-operator claim.
	p := newProfiler()
	m := model.GPT3175B()
	for layer := 0; layer < 96; layer++ {
		for micro := 0; micro < 32; micro++ {
			p.Profile(op(FwdMHA, m, 2, 8))
			p.Profile(op(BwdMHA, m, 2, 8))
		}
	}
	misses, hits := p.CacheStats()
	if misses != 2 {
		t.Fatalf("distinct profiles = %d, want 2 (FwdMHA, BwdMHA)", misses)
	}
	if hits != 96*32*2-2 {
		t.Fatalf("cache hits = %d, want %d", hits, 96*32*2-2)
	}
}

func TestDifferentShapesProfileSeparately(t *testing.T) {
	p := newProfiler()
	p.Profile(op(FwdMHA, model.Megatron18_4B(), 1, 1))
	p.Profile(op(FwdMHA, model.Megatron39_1B(), 1, 1))
	p.Profile(op(FwdMHA, model.Megatron18_4B(), 2, 1)) // different micro-batch
	p.Profile(op(FwdMHA, model.Megatron18_4B(), 1, 2)) // different tensor width
	misses, _ := p.CacheStats()
	if misses != 4 {
		t.Fatalf("distinct profiles = %d, want 4", misses)
	}
}

func TestWeightUpdateScalesWithParams(t *testing.T) {
	p := newProfiler()
	m := model.Megatron18_4B()
	small := Operator{Kind: WeightUpdate, Model: m, MicroBatch: 1, Tensor: 1, Params: 1 << 20}
	large := Operator{Kind: WeightUpdate, Model: m, MicroBatch: 1, Tensor: 1, Params: 1 << 30}
	if p.Duration(large) <= p.Duration(small) {
		t.Fatal("Adam step must scale with parameter count")
	}
}

func TestDurationIncludesLaunchOverhead(t *testing.T) {
	dev := gpu.NewDevice(hw.A100SXM80GB())
	p := New(dev)
	o := op(FwdFFN, model.Megatron3_6B(), 1, 1)
	tasks := p.Profile(o)
	for _, task := range tasks {
		if task.Duration < task.Kernel.Duration+dev.Spec.KernelLaunchOverhead-1e-15 {
			t.Fatalf("task %s missing launch overhead", task.Kernel.Name)
		}
	}
}

func TestFLOPsAccounting(t *testing.T) {
	p := newProfiler()
	m := model.Megatron18_4B()
	// Per-layer forward GEMM FLOPs with t=1 are ~ 24·b·s·h² plus the
	// 4·b·s²·h attention terms; the decomposition must land within 20%.
	b, s, h := 1, float64(m.SeqLen), float64(m.Hidden)
	want := 24*float64(b)*s*h*h + 4*float64(b)*s*s*h
	got := p.FLOPs(op(FwdMHA, m, b, 1)) + p.FLOPs(op(FwdFFN, m, b, 1))
	if got < 0.8*want || got > 1.25*want {
		t.Fatalf("layer forward FLOPs = %.3g, want ~%.3g", got, want)
	}
}

func TestTableSortedAndComplete(t *testing.T) {
	p := newProfiler()
	m := model.Megatron3_6B()
	p.Profile(op(FwdFFN, m, 1, 1))
	p.Profile(op(FwdMHA, m, 1, 1))
	entries := p.Table()
	if len(entries) != 2 {
		t.Fatalf("table has %d entries, want 2", len(entries))
	}
	if entries[0].Key.Kind > entries[1].Key.Kind {
		t.Fatal("table not sorted by operator kind")
	}
}

func TestOpKindString(t *testing.T) {
	if FwdMHA.String() != "FwdMHA" || WeightUpdate.String() != "WeightUpdate" {
		t.Fatal("operator kind names changed")
	}
	if !strings.Contains(OpKind(42).String(), "42") {
		t.Fatal("unknown kind formatting changed")
	}
	if !FwdEmbedding.IsForward() || BwdMHA.IsForward() {
		t.Fatal("IsForward misclassifies")
	}
}

func TestKernelNamesLookLikeCUDA(t *testing.T) {
	p := newProfiler()
	tasks := p.Profile(op(FwdMHA, model.Megatron3_6B(), 1, 1))
	foundGEMM := false
	for _, task := range tasks {
		if strings.Contains(task.Kernel.Name, "gemm") {
			foundGEMM = true
		}
	}
	if !foundGEMM {
		t.Fatal("MHA decomposition must contain GEMM kernels")
	}
}

func TestUnknownOperatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown operator kind must panic")
		}
	}()
	newProfiler().Profile(Operator{Kind: OpKind(99), Model: model.Megatron3_6B(), MicroBatch: 1, Tensor: 1})
}
