package profiler

import (
	"fmt"
	"sort"
	"sync"

	"vtrain/internal/gpu"
)

// Task is one profiled kernel execution — a row in the operator-to-task
// lookup table. Duration includes the kernel-launch overhead the host pays
// per launch, matching what end-to-end CUPTI timestamps capture.
type Task struct {
	// Kernel is the simulated CUPTI record.
	Kernel gpu.Kernel
	// Duration is the effective cost charged on the device timeline.
	Duration float64
}

// Profiler executes operators on the target device model and caches their
// kernel decompositions.
type Profiler struct {
	dev *gpu.Device

	mu     sync.Mutex
	cache  map[Key][]Task
	misses int
	hits   int
}

// New builds a profiler for the device.
func New(dev *gpu.Device) *Profiler {
	return &Profiler{dev: dev, cache: make(map[Key][]Task)}
}

// Profile returns the kernel tasks of an operator, executing (i.e.
// evaluating the device model for) the operator only on the first request
// for its shape — the necessary-operator optimization.
func (p *Profiler) Profile(op Operator) []Task {
	key := op.Key()
	p.mu.Lock()
	if ts, ok := p.cache[key]; ok {
		p.hits++
		p.mu.Unlock()
		return ts
	}
	p.misses++
	p.mu.Unlock()

	kernels := p.decompose(op)
	tasks := make([]Task, len(kernels))
	for i, k := range kernels {
		tasks[i] = Task{Kernel: k, Duration: k.Duration + p.dev.Spec.KernelLaunchOverhead}
	}

	p.mu.Lock()
	p.cache[key] = tasks
	p.mu.Unlock()
	return tasks
}

// Duration returns the summed task durations of an operator — the
// operator-granularity cost used by the fast simulation fidelity.
func (p *Profiler) Duration(op Operator) float64 {
	var sum float64
	for _, t := range p.Profile(op) {
		sum += t.Duration
	}
	return sum
}

// FLOPs returns the arithmetic work of one execution of the operator.
func (p *Profiler) FLOPs(op Operator) float64 {
	var sum float64
	for _, t := range p.Profile(op) {
		sum += t.Kernel.FLOPs
	}
	return sum
}

// CacheStats reports (distinct operators profiled, cache hits) — the paper's
// O(1) claim is observable here: misses stays constant as L and the number
// of micro-batches grow.
func (p *Profiler) CacheStats() (misses, hits int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.misses, p.hits
}

// Table materializes the operator-to-task lookup table for inspection,
// sorted by operator kind then hidden size.
func (p *Profiler) Table() []TableEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]TableEntry, 0, len(p.cache))
	for k, ts := range p.cache {
		out = append(out, TableEntry{Key: k, Tasks: ts})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Kind != out[j].Key.Kind {
			return out[i].Key.Kind < out[j].Key.Kind
		}
		return out[i].Key.Hidden < out[j].Key.Hidden
	})
	return out
}

// TableEntry is one operator-to-task lookup table row.
type TableEntry struct {
	Key   Key
	Tasks []Task
}

// Install pre-populates the cache with previously profiled entries — the
// persistent artifact tier loading the operator table an earlier process
// saved. Installed entries count as neither hits nor misses, so cache
// statistics keep reporting only this process's demand. Entries already
// present are kept: profiling is deterministic per device, so both sides
// are identical anyway.
func (p *Profiler) Install(entries []TableEntry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range entries {
		if _, ok := p.cache[e.Key]; !ok {
			p.cache[e.Key] = e.Tasks
		}
	}
}

// Entries reports the number of cached operator decompositions, installed
// or profiled.
func (p *Profiler) Entries() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.cache)
}

// decompose maps an operator to the kernel sequence its Megatron
// implementation launches on one GPU, with tensor-parallel sharding t.
func (p *Profiler) decompose(op Operator) []gpu.Kernel {
	m := op.Model
	b := op.MicroBatch
	t := op.Tensor
	if t < 1 {
		t = 1
	}
	s := m.SeqLen
	h := m.Hidden
	n := m.Heads
	rows := b * s // token rows in the micro-batch
	headsLocal := n / t
	if headsLocal < 1 {
		headsLocal = 1
	}
	dHead := m.HeadDim()
	d := p.dev

	switch op.Kind {
	case FwdEmbedding:
		return []gpu.Kernel{
			d.Embedding(rows, h),
			d.Elementwise("pos_embed_add", rows*h, 6, 1),
			d.Elementwise("embed_dropout", rows*h, 5, 1),
		}
	case BwdEmbedding:
		return []gpu.Kernel{
			d.Elementwise("embed_dropout_bwd", rows*h, 4, 1),
			d.Embedding(rows, h), // scatter-add of gradients
		}
	case FwdMHA:
		return []gpu.Kernel{
			d.LayerNorm(rows, h),
			d.GEMM(1, rows, 3*h/t, h),         // QKV projection
			d.GEMM(b*headsLocal, s, s, dHead), // Q x K^T
			d.Elementwise("scale_mask", b*headsLocal*s*s, 4, 2),
			d.Softmax(b*headsLocal*s, s),
			d.Elementwise("attn_dropout", b*headsLocal*s*s, 5, 1),
			d.GEMM(b*headsLocal, s, dHead, s), // scores x V
			d.GEMM(1, rows, h, h/t),           // output projection
			d.Elementwise("proj_dropout_residual", rows*h, 8, 2),
		}
	case BwdMHA:
		return []gpu.Kernel{
			d.Elementwise("proj_dropout_residual_bwd", rows*h, 6, 2),
			d.GEMM(1, rows, h/t, h),           // output projection dgrad
			d.GEMM(1, h/t, h, rows),           // output projection wgrad
			d.GEMM(b*headsLocal, s, s, dHead), // dScores = dCtx x V^T
			d.GEMM(b*headsLocal, dHead, s, s), // dV = scores^T x dCtx
			d.Elementwise("attn_dropout_bwd", b*headsLocal*s*s, 4, 1),
			d.Softmax(b*headsLocal*s, s), // softmax backward
			d.Elementwise("scale_mask_bwd", b*headsLocal*s*s, 4, 1),
			d.GEMM(b*headsLocal, s, dHead, s), // dQ
			d.GEMM(b*headsLocal, dHead, s, s), // dK
			d.GEMM(1, rows, h, 3*h/t),         // QKV dgrad
			d.GEMM(1, h, 3*h/t, rows),         // QKV wgrad
			d.LayerNorm(rows, h),              // LayerNorm backward
		}
	case FwdFFN:
		return []gpu.Kernel{
			d.LayerNorm(rows, h),
			d.GEMM(1, rows, 4*h/t, h), // FC1
			d.Elementwise("gelu", rows*4*h/t, 4, 8),
			d.GEMM(1, rows, h, 4*h/t), // FC2
			d.Elementwise("ffn_dropout_residual", rows*h, 8, 2),
		}
	case BwdFFN:
		return []gpu.Kernel{
			d.Elementwise("ffn_dropout_residual_bwd", rows*h, 6, 2),
			d.GEMM(1, rows, 4*h/t, h), // FC2 dgrad
			d.GEMM(1, 4*h/t, h, rows), // FC2 wgrad (reduced dims swapped)
			d.Elementwise("gelu_bwd", rows*4*h/t, 6, 10),
			d.GEMM(1, rows, h, 4*h/t), // FC1 dgrad
			d.GEMM(1, h, 4*h/t, rows), // FC1 wgrad
			d.LayerNorm(rows, h),      // LayerNorm backward
		}
	case FwdLMHead:
		vShard := m.Vocab / t
		return []gpu.Kernel{
			d.LayerNorm(rows, h),
			d.GEMM(1, rows, vShard, h), // logits = X x E^T
			d.Softmax(rows, vShard),    // vocab-parallel cross entropy
			d.Elementwise("ce_loss", rows, 16, 4),
		}
	case BwdLMHead:
		vShard := m.Vocab / t
		return []gpu.Kernel{
			d.Elementwise("ce_loss_bwd", rows*vShard, 4, 2),
			d.GEMM(1, rows, h, vShard), // dX
			d.GEMM(1, vShard, h, rows), // dE (tied embedding gradient)
			d.LayerNorm(rows, h),
		}
	case WeightUpdate:
		return []gpu.Kernel{d.AdamStep(op.Params)}
	default:
		panic(fmt.Sprintf("profiler: unknown operator kind %v", op.Kind))
	}
}
