// Package descfile parses vTrain's input description file (step 1 of
// Fig. 4): a JSON document naming the target LLM, the training system
// configuration, and the parallelization strategy to evaluate.
//
// Model and cluster sections accept either a preset name (the paper's
// catalog) or explicit hyperparameters:
//
// The cluster section defaults to the paper's A100 testbed; "offering"
// selects any hardware-catalog entry (hw.Catalog) instead:
//
//	{
//	  "model":  {"preset": "mt-nlg-530b"},
//	  "cluster":{"nodes": 280, "offering": "a100-sxm-80gb"},
//	  "plan":   {"tensor": 8, "data": 8, "pipeline": 35,
//	             "micro_batch": 1, "global_batch": 1920,
//	             "schedule": "1f1b", "gradient_buckets": 2,
//	             "recompute": true},
//	  "total_tokens": 270000000000
//	}
package descfile

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/parallel"
	"vtrain/internal/resilience"
)

// Description is the parsed input file.
type Description struct {
	Model       ModelSection   `json:"model"`
	Cluster     ClusterSection `json:"cluster"`
	Plan        PlanSection    `json:"plan"`
	TotalTokens uint64         `json:"total_tokens"`
}

// ModelSection selects the target LLM.
type ModelSection struct {
	Preset string `json:"preset"`
	Name   string `json:"name"`
	Hidden int    `json:"hidden"`
	Layers int    `json:"layers"`
	SeqLen int    `json:"seq_len"`
	Heads  int    `json:"heads"`
	Vocab  int    `json:"vocab"`
}

// ClusterSection selects the training system.
type ClusterSection struct {
	Nodes int `json:"nodes"`
	// Offering names a hardware-catalog offering (see hw.Catalog) to
	// materialize instead of the paper's default A100 testbed.
	Offering string `json:"offering"`
	// Alpha overrides the bandwidth-effectiveness factor when nonzero.
	Alpha float64 `json:"alpha"`
	// DollarsPerGPUHour overrides pricing when nonzero.
	DollarsPerGPUHour float64 `json:"dollars_per_gpu_hour"`
	// Resilience overrides the failure/checkpoint-restart environment
	// (catalog-pinned per GPU generation by default) or disables
	// resilience modeling for this run.
	Resilience *ResilienceSection `json:"resilience"`
}

// ResilienceSection tunes goodput modeling (see internal/resilience). A
// missing section means "model resilience with the cluster's catalog
// defaults"; "disabled": true turns the modeling off entirely.
type ResilienceSection struct {
	// Disabled turns off failure/checkpoint-restart modeling.
	Disabled bool `json:"disabled"`
	// MTBFHours overrides the per-GPU mean time between failures, in
	// hours, when positive.
	MTBFHours float64 `json:"mtbf_hours"`
	// CheckpointBandwidthGBs overrides the aggregate checkpoint-storage
	// write bandwidth, in GB/s, when positive.
	CheckpointBandwidthGBs float64 `json:"checkpoint_bandwidth_gbs"`
	// RestartSeconds overrides the failure-recovery latency when
	// positive.
	RestartSeconds float64 `json:"restart_seconds"`
}

// Validate reports an error for meaningless override values.
func (r *ResilienceSection) Validate() error {
	if r == nil {
		return nil
	}
	if r.MTBFHours < 0 {
		return fmt.Errorf("descfile: resilience.mtbf_hours must be non-negative, got %v", r.MTBFHours)
	}
	if r.CheckpointBandwidthGBs < 0 {
		return fmt.Errorf("descfile: resilience.checkpoint_bandwidth_gbs must be non-negative, got %v", r.CheckpointBandwidthGBs)
	}
	if r.RestartSeconds < 0 {
		return fmt.Errorf("descfile: resilience.restart_seconds must be non-negative, got %v", r.RestartSeconds)
	}
	return nil
}

// PlanSection selects the 3D-parallel plan.
type PlanSection struct {
	Tensor          int    `json:"tensor"`
	Data            int    `json:"data"`
	Pipeline        int    `json:"pipeline"`
	MicroBatch      int    `json:"micro_batch"`
	GlobalBatch     int    `json:"global_batch"`
	Schedule        string `json:"schedule"`
	GradientBuckets int    `json:"gradient_buckets"`
	Recompute       bool   `json:"recompute"`
	VirtualStages   int    `json:"virtual_stages"`
}

// presets maps preset names to catalog models.
var presets = map[string]func() model.Config{
	"gpt3-175b":      model.GPT3175B,
	"mt-nlg-530b":    model.MTNLG530B,
	"megatron-3.6b":  model.Megatron3_6B,
	"megatron-18.4b": model.Megatron18_4B,
	"megatron-39.1b": model.Megatron39_1B,
	"megatron-81.2b": model.Megatron81_2B,
}

// Presets lists the accepted model preset names.
func Presets() []string {
	out := make([]string, 0, len(presets))
	for k := range presets {
		out = append(out, k)
	}
	return out
}

// LookupModel resolves a preset name (case-insensitive).
func LookupModel(preset string) (model.Config, error) {
	f, ok := presets[strings.ToLower(preset)]
	if !ok {
		return model.Config{}, fmt.Errorf("descfile: unknown model preset %q (have %v)", preset, Presets())
	}
	return f(), nil
}

// Parse reads a description from r.
func Parse(r io.Reader) (Description, error) {
	var d Description
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return Description{}, fmt.Errorf("descfile: %w", err)
	}
	return d, nil
}

// Load reads a description file from disk.
func Load(path string) (Description, error) {
	f, err := os.Open(path)
	if err != nil {
		return Description{}, fmt.Errorf("descfile: %w", err)
	}
	defer f.Close()
	return Parse(f)
}

// Resolve converts the model section into a validated model configuration:
// the preset when named, the explicit hyperparameters otherwise.
func (s ModelSection) Resolve() (model.Config, error) {
	var m model.Config
	if s.Preset != "" {
		var err error
		if m, err = LookupModel(s.Preset); err != nil {
			return model.Config{}, err
		}
	} else {
		m = model.Config{
			Name:   s.Name,
			Hidden: s.Hidden, Layers: s.Layers,
			SeqLen: s.SeqLen, Heads: s.Heads, Vocab: s.Vocab,
		}
		if m.Name == "" {
			m.Name = "custom"
		}
	}
	if err := m.Validate(); err != nil {
		return model.Config{}, err
	}
	return m, nil
}

// Resolve materializes the cluster section: the paper's A100 testbed by
// default, any hardware-catalog offering when named, with the alpha and
// pricing overrides applied and the resilience overrides validated.
func (s ClusterSection) Resolve() (hw.Cluster, error) {
	if s.Nodes <= 0 {
		return hw.Cluster{}, fmt.Errorf("descfile: cluster.nodes must be positive")
	}
	c := hw.PaperCluster(s.Nodes)
	if s.Offering != "" {
		off, err := hw.LookupOffering(s.Offering)
		if err != nil {
			return hw.Cluster{}, fmt.Errorf("descfile: %w", err)
		}
		c = off.Cluster(s.Nodes)
	}
	if s.Alpha > 0 {
		c.Alpha = s.Alpha
	}
	if s.DollarsPerGPUHour > 0 {
		c.DollarsPerGPUHour = s.DollarsPerGPUHour
	}
	if err := s.Resilience.Validate(); err != nil {
		return hw.Cluster{}, err
	}
	return c, nil
}

// Resolve converts the plan section into a 3D-parallel plan validated
// against the model and cluster it will simulate on.
func (s PlanSection) Resolve(m model.Config, c hw.Cluster) (parallel.Plan, error) {
	sched := parallel.OneFOneB
	switch strings.ToLower(s.Schedule) {
	case "", "1f1b":
	case "gpipe":
		sched = parallel.GPipe
	default:
		return parallel.Plan{}, fmt.Errorf("descfile: unknown schedule %q (want 1f1b or gpipe)", s.Schedule)
	}
	plan := parallel.Plan{
		Tensor: s.Tensor, Data: s.Data, Pipeline: s.Pipeline,
		MicroBatch: s.MicroBatch, GlobalBatch: s.GlobalBatch,
		Schedule: sched, GradientBuckets: s.GradientBuckets,
		Recompute: s.Recompute, VirtualStages: s.VirtualStages,
	}
	if err := plan.Validate(m, c); err != nil {
		return parallel.Plan{}, err
	}
	return plan, nil
}

// Resolve converts the parsed description into simulator inputs.
func (d Description) Resolve() (model.Config, parallel.Plan, hw.Cluster, error) {
	m, err := d.Model.Resolve()
	if err != nil {
		return model.Config{}, parallel.Plan{}, hw.Cluster{}, err
	}
	c, err := d.Cluster.Resolve()
	if err != nil {
		return model.Config{}, parallel.Plan{}, hw.Cluster{}, err
	}
	plan, err := d.Plan.Resolve(m, c)
	if err != nil {
		return model.Config{}, parallel.Plan{}, hw.Cluster{}, err
	}
	return m, plan, c, nil
}

// Options converts the resilience section into the overrides
// internal/resilience consumes. enabled is false when the section sets
// "disabled": true; a nil section enables modeling with the cluster's
// catalog defaults.
func (r *ResilienceSection) Options() (o resilience.Options, enabled bool) {
	if r == nil {
		return resilience.Options{}, true
	}
	if r.Disabled {
		return resilience.Options{}, false
	}
	return resilience.Options{
		MTBF:           r.MTBFHours * 3600,
		WriteBandwidth: r.CheckpointBandwidthGBs * 1e9,
		Restart:        r.RestartSeconds,
	}, true
}

// ResilienceOptions converts the description's resilience section into the
// overrides internal/resilience consumes. enabled is false when the
// section sets "disabled": true; a missing section enables modeling with
// the cluster's catalog defaults.
func (d Description) ResilienceOptions() (o resilience.Options, enabled bool) {
	return d.Cluster.Resilience.Options()
}
