package descfile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vtrain/internal/parallel"
	"vtrain/internal/resilience"
)

const mtnlgDesc = `{
  "model":  {"preset": "mt-nlg-530b"},
  "cluster":{"nodes": 280},
  "plan":   {"tensor": 8, "data": 8, "pipeline": 35,
             "micro_batch": 1, "global_batch": 1920,
             "schedule": "1f1b", "gradient_buckets": 2,
             "recompute": true},
  "total_tokens": 270000000000
}`

func TestParseAndResolvePreset(t *testing.T) {
	d, err := Parse(strings.NewReader(mtnlgDesc))
	if err != nil {
		t.Fatal(err)
	}
	m, plan, c, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if m.Hidden != 20480 || m.Layers != 105 {
		t.Fatalf("preset resolved wrong model: %s", m)
	}
	if plan.Tensor != 8 || plan.Pipeline != 35 || !plan.Recompute {
		t.Fatalf("plan mis-parsed: %s", plan)
	}
	if c.TotalGPUs() != 2240 {
		t.Fatalf("cluster GPUs = %d, want 2240", c.TotalGPUs())
	}
	if d.TotalTokens != 270e9 {
		t.Fatalf("tokens = %d", d.TotalTokens)
	}
}

func TestParseCustomModel(t *testing.T) {
	in := `{
	  "model": {"hidden": 1024, "layers": 4, "seq_len": 512, "heads": 16, "vocab": 32000},
	  "cluster": {"nodes": 1},
	  "plan": {"tensor": 2, "data": 2, "pipeline": 2, "micro_batch": 1, "global_batch": 8}
	}`
	d, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	m, plan, _, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "custom" || m.Hidden != 1024 {
		t.Fatalf("custom model mis-parsed: %s", m)
	}
	if plan.Schedule != parallel.OneFOneB {
		t.Fatal("default schedule must be 1F1B")
	}
}

func TestGPipeSchedule(t *testing.T) {
	in := strings.Replace(mtnlgDesc, `"1f1b"`, `"gpipe"`, 1)
	d, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	_, plan, _, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Schedule != parallel.GPipe {
		t.Fatal("gpipe schedule not honored")
	}
}

func TestRejections(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"unknown field", `{"modell": {}}`},
		{"bad json", `{`},
		{"unknown preset", `{"model":{"preset":"nope"},"cluster":{"nodes":1},"plan":{"tensor":1,"data":1,"pipeline":1,"micro_batch":1,"global_batch":1}}`},
		{"bad schedule", `{"model":{"preset":"gpt3-175b"},"cluster":{"nodes":1},"plan":{"tensor":1,"data":1,"pipeline":1,"micro_batch":1,"global_batch":1,"schedule":"zigzag"}}`},
		{"zero nodes", `{"model":{"preset":"gpt3-175b"},"cluster":{},"plan":{"tensor":1,"data":1,"pipeline":1,"micro_batch":1,"global_batch":1}}`},
		{"invalid model", `{"model":{"hidden":10,"layers":0,"seq_len":1,"heads":1,"vocab":1},"cluster":{"nodes":1},"plan":{"tensor":1,"data":1,"pipeline":1,"micro_batch":1,"global_batch":1}}`},
		{"invalid plan", `{"model":{"preset":"gpt3-175b"},"cluster":{"nodes":1},"plan":{}}`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Parse(strings.NewReader(tc.in))
			if err != nil {
				return // parse-time rejection is fine
			}
			if _, _, _, err := d.Resolve(); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestOverrides(t *testing.T) {
	in := `{
	  "model": {"preset": "megatron-3.6b"},
	  "cluster": {"nodes": 2, "alpha": 0.5, "dollars_per_gpu_hour": 3.25},
	  "plan": {"tensor": 1, "data": 16, "pipeline": 1, "micro_batch": 1, "global_batch": 32, "gradient_buckets": 1}
	}`
	d, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	_, _, c, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if c.Alpha != 0.5 || c.DollarsPerGPUHour != 3.25 {
		t.Fatalf("overrides not applied: alpha=%v $=%v", c.Alpha, c.DollarsPerGPUHour)
	}
}

func TestVirtualStages(t *testing.T) {
	in := `{
	  "model": {"hidden": 1024, "layers": 8, "seq_len": 512, "heads": 16, "vocab": 32000},
	  "cluster": {"nodes": 1},
	  "plan": {"tensor": 1, "data": 1, "pipeline": 2, "micro_batch": 1, "global_batch": 4, "virtual_stages": 2}
	}`
	d, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	_, plan, _, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if plan.VirtualStages != 2 || !plan.Interleaved() {
		t.Fatalf("virtual stages not honored: %s", plan)
	}
}

func TestLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "desc.json")
	if err := os.WriteFile(path, []byte(mtnlgDesc), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Model.Preset != "mt-nlg-530b" {
		t.Fatal("loaded file mis-parsed")
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestPresetsComplete(t *testing.T) {
	if len(Presets()) != 6 {
		t.Fatalf("presets = %d, want 6", len(Presets()))
	}
	for _, p := range Presets() {
		if _, err := LookupModel(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := LookupModel("MT-NLG-530B"); err != nil {
		t.Fatal("preset lookup must be case-insensitive")
	}
}

// TestClusterOffering selects a hardware-catalog offering in the cluster
// section and checks the materialized cluster carries the offering's GPU,
// fabric, and price; overrides still apply on top.
func TestClusterOffering(t *testing.T) {
	const doc = `{
	  "model":  {"preset": "megatron-3.6b"},
	  "cluster":{"nodes": 4, "offering": "h100-sxm-80gb"},
	  "plan":   {"tensor": 2, "data": 8, "pipeline": 2,
	             "micro_batch": 1, "global_batch": 512}
	}`
	d, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	_, _, c, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if c.Node.GPU.Name != "H100-SXM5-80GB" {
		t.Errorf("GPU = %q, want the offering's H100", c.Node.GPU.Name)
	}
	if c.InterNodeBandwidth != 400e9 {
		t.Errorf("InterNodeBandwidth = %g, want 400e9 (8xNDR)", c.InterNodeBandwidth)
	}
	if c.DollarsPerGPUHour != 12.29 {
		t.Errorf("price = %v, want the catalog's 12.29", c.DollarsPerGPUHour)
	}

	d.Cluster.DollarsPerGPUHour = 9.99
	if _, _, c, err = d.Resolve(); err != nil {
		t.Fatal(err)
	}
	if c.DollarsPerGPUHour != 9.99 {
		t.Errorf("price override ignored: %v", c.DollarsPerGPUHour)
	}

	d.Cluster.Offering = "tpu-v5"
	if _, _, _, err := d.Resolve(); err == nil {
		t.Error("unknown offering accepted")
	}
}

// TestResilienceSection pins the resilience section's semantics: a missing
// section enables modeling with catalog defaults, "disabled" turns it off,
// overrides convert units (hours -> seconds, GB/s -> bytes/s), and
// negative values are rejected by Resolve.
func TestResilienceSection(t *testing.T) {
	d, err := Parse(strings.NewReader(mtnlgDesc))
	if err != nil {
		t.Fatal(err)
	}
	opts, enabled := d.ResilienceOptions()
	if !enabled {
		t.Fatal("missing resilience section should enable modeling with defaults")
	}
	if opts != (resilience.Options{}) {
		t.Fatalf("missing section produced overrides: %+v", opts)
	}

	const doc = `{
	  "model":  {"preset": "megatron-3.6b"},
	  "cluster":{"nodes": 2,
	             "resilience": {"mtbf_hours": 40000,
	                            "checkpoint_bandwidth_gbs": 80,
	                            "restart_seconds": 300}},
	  "plan":   {"tensor": 2, "data": 4, "pipeline": 2,
	             "micro_batch": 1, "global_batch": 512}
	}`
	if d, err = Parse(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := d.Resolve(); err != nil {
		t.Fatal(err)
	}
	opts, enabled = d.ResilienceOptions()
	if !enabled {
		t.Fatal("override section should keep modeling enabled")
	}
	if opts.MTBF != 40000*3600 || opts.WriteBandwidth != 80e9 || opts.Restart != 300 {
		t.Fatalf("unit conversion wrong: %+v", opts)
	}

	d.Cluster.Resilience = &ResilienceSection{Disabled: true}
	if _, enabled = d.ResilienceOptions(); enabled {
		t.Error("disabled section still enabled")
	}
	if _, _, _, err := d.Resolve(); err != nil {
		t.Errorf("disabled section should still resolve: %v", err)
	}

	for _, bad := range []*ResilienceSection{
		{MTBFHours: -1},
		{CheckpointBandwidthGBs: -2},
		{RestartSeconds: -3},
	} {
		d.Cluster.Resilience = bad
		if _, _, _, err := d.Resolve(); err == nil {
			t.Errorf("negative override accepted: %+v", bad)
		}
	}
}

// TestExampleDescfilesResolve keeps the shipped example descriptions (also
// the FuzzParse seed corpus) loadable and resolvable.
func TestExampleDescfilesResolve(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "descfiles", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example descfiles found")
	}
	for _, path := range paths {
		d, err := Load(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if _, _, _, err := d.Resolve(); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
	}
}
