package descfile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzParse asserts the package's robustness contract: malformed input must
// return an error, never panic, and an input that parses must also survive
// Resolve and ResilienceOptions without panicking (simulation-level
// validation may still reject it with an error). The corpus seeds are every
// descfile shipped under examples/descfiles plus hand-written edge cases
// around the resilience section; CI replays the generated corpus with
// -fuzztime=0 (see .github/workflows/ci.yml).
func FuzzParse(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("..", "..", "examples", "descfiles", "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	if len(seeds) == 0 {
		f.Fatal("no descfile seeds under examples/descfiles — the fuzz corpus lost its anchor")
	}
	for _, path := range seeds {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	for _, s := range []string{
		``,
		`{}`,
		`null`,
		`[]`,
		`{"model":{}}`,
		`{"model":{"preset":"gpt3-175b"},"cluster":{"nodes":1},"plan":{}}`,
		`{"cluster":{"nodes":-1,"resilience":{}}}`,
		`{"cluster":{"resilience":{"disabled":true}}}`,
		`{"cluster":{"resilience":{"mtbf_hours":-5}}}`,
		`{"cluster":{"resilience":{"mtbf_hours":1e308,"checkpoint_bandwidth_gbs":1e-308}}}`,
		`{"cluster":{"resilience":null}}`,
		`{"cluster":{"resilience":{"restart_seconds":}}}`,
		`{"model":{"hidden":9e99},"total_tokens":18446744073709551615}`,
		`{"total_tokens":-1}`,
		`{"plan":{"schedule":"gpipe","virtual_stages":2}}`,
		`{"model":{"preset":"MT-NLG-530B"},"cluster":{"nodes":280,"offering":"H100-SXM-80GB"}}`,
		"{\"model\":{\"name\":\"\\u0000\",\"hidden\":1}}",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		d, err := Parse(strings.NewReader(input))
		if err != nil {
			return // rejected, as malformed input should be
		}
		// Accepted descriptions must flow through the rest of the API
		// without panicking; errors are fine.
		_, _, _, _ = d.Resolve()
		_, _ = d.ResilienceOptions()
	})
}
