package clusterdse

import (
	"errors"
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"

	"vtrain/internal/core"
	"vtrain/internal/cost"
	"vtrain/internal/dse"
	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/parallel"
	"vtrain/internal/resilience"
	"vtrain/internal/taskgraph"
)

func tinyModel() model.Config {
	return model.Config{Name: "cd-tiny", Hidden: 512, Layers: 4, SeqLen: 256, Heads: 8, Vocab: 8192}
}

// testSpace is a small joint sweep: the full catalog (4 offerings, 3 GPU generations) at
// two cluster sizes with a handful of plans per candidate.
func testSpace() Space {
	return Space{
		Offerings:  hw.Catalog(),
		NodeCounts: []int{1, 2},
		Plans: dse.Space{
			TensorWidths:    []int{1, 2},
			DataWidths:      []int{1, 2, 4},
			PipelineDepths:  []int{1, 2},
			MicroBatches:    []int{1},
			GlobalBatch:     8,
			GradientBuckets: 2,
		},
		TotalTokens: 10e9,
	}
}

func newTestSim(t *testing.T, s Space) *core.Simulator {
	t.Helper()
	sim, err := NewSimulator(s, core.WithFidelity(taskgraph.OperatorLevel))
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// TestJointSweepGolden pins the sweep's ranking contract: the returned
// order is exactly the Point.Better order, repeated sweeps (fresh simulator
// each time, nondeterministic worker completion inside) are byte-identical,
// and the points cover every hardware generation and cluster size.
func TestJointSweepGolden(t *testing.T) {
	m, s := tinyModel(), testSpace()

	run := func() []Point {
		points, err := Explore(newTestSim(t, s), m, s)
		if err != nil {
			t.Fatal(err)
		}
		return points
	}
	points := run()
	if len(points) == 0 {
		t.Fatal("empty sweep")
	}
	for i := 1; i < len(points); i++ {
		if points[i].Better(points[i-1]) {
			t.Fatalf("point %d ranks above its predecessor; sort does not follow Better", i)
		}
	}
	again := run()
	if !reflect.DeepEqual(points, again) {
		t.Error("repeated sweeps disagree; ranking is not deterministic")
	}

	offerings, sizes := map[string]bool{}, map[int]bool{}
	for _, p := range points {
		offerings[p.Offering.Name] = true
		sizes[p.Nodes] = true
		if p.Plan.GPUs() != p.GPUs() {
			t.Fatalf("plan %s uses %d GPUs on a %d-GPU cluster; candidates must be fully used",
				p.Plan, p.Plan.GPUs(), p.GPUs())
		}
		if p.Training.TotalDollars <= 0 || p.Training.Days <= 0 {
			t.Fatalf("non-positive economics: %+v", p.Training)
		}
		wantRate := float64(p.GPUs()) * p.Offering.DollarsPerGPUHour
		if p.Training.DollarsPerHour != wantRate {
			t.Fatalf("%s priced at $%g/h, want %g (catalog rate x GPUs)",
				p.Candidate, p.Training.DollarsPerHour, wantRate)
		}
	}
	if len(offerings) < 3 {
		t.Errorf("sweep covered %d GPU generations, want >= 3", len(offerings))
	}
	if len(sizes) != 2 {
		t.Errorf("sweep covered %d cluster sizes, want 2", len(sizes))
	}
}

// TestParetoFrontierGolden pins the frontier semantics: cost strictly
// ascending, days strictly descending, no frontier point dominated, every
// non-frontier point dominated by a frontier point, and the computation
// independent of input order.
func TestParetoFrontierGolden(t *testing.T) {
	m, s := tinyModel(), testSpace()
	points, err := Explore(newTestSim(t, s), m, s)
	if err != nil {
		t.Fatal(err)
	}
	front := ParetoFrontier(points)
	if len(front) == 0 {
		t.Fatal("empty frontier from a non-empty sweep")
	}
	for i := 1; i < len(front); i++ {
		if front[i].Training.TotalDollars <= front[i-1].Training.TotalDollars {
			t.Errorf("frontier cost not strictly ascending at %d", i)
		}
		if front[i].Training.Days >= front[i-1].Training.Days {
			t.Errorf("frontier days not strictly descending at %d", i)
		}
	}
	dominated := func(p Point) bool {
		for _, q := range front {
			if q.Training.TotalDollars <= p.Training.TotalDollars && q.Training.Days <= p.Training.Days &&
				(q.Training.TotalDollars < p.Training.TotalDollars || q.Training.Days < p.Training.Days) {
				return true
			}
		}
		return false
	}
	onFront := func(p Point) bool {
		for _, q := range front {
			if q.Candidate == p.Candidate && q.Plan == p.Plan {
				return true
			}
		}
		return false
	}
	for _, p := range points {
		if !onFront(p) && !dominated(p) {
			t.Errorf("point %s ($%.0f, %.2fd) is neither on the frontier nor dominated",
				p.Candidate, p.Training.TotalDollars, p.Training.Days)
		}
	}
	// Input order must not matter.
	shuffled := append([]Point(nil), points...)
	sort.Slice(shuffled, func(i, j int) bool { return shuffled[j].Better(shuffled[i]) }) // reversed
	if !reflect.DeepEqual(ParetoFrontier(shuffled), front) {
		t.Error("frontier depends on input order")
	}
}

// TestCheapestWithinDeadline pins the deadline selection against a
// brute-force reference and covers the no-feasible-deadline path.
func TestCheapestWithinDeadline(t *testing.T) {
	m, s := tinyModel(), testSpace()
	points, err := Explore(newTestSim(t, s), m, s)
	if err != nil {
		t.Fatal(err)
	}
	// Use the median days as the deadline so both branches are exercised.
	days := make([]float64, len(points))
	for i, p := range points {
		days[i] = p.Training.Days
	}
	sort.Float64s(days)
	deadline := days[len(days)/2]

	best, ok := CheapestWithinDeadline(points, deadline)
	if !ok {
		t.Fatal("no point within the median deadline")
	}
	var ref Point
	refOK := false
	for _, p := range points {
		if p.Training.Days <= deadline && (!refOK || p.Better(ref)) {
			ref, refOK = p, true
		}
	}
	if best.Candidate != ref.Candidate || best.Plan != ref.Plan {
		t.Errorf("CheapestWithinDeadline = %s, brute force says %s", best.Candidate, ref.Candidate)
	}
	if best.Training.Days > deadline {
		t.Errorf("winner misses the deadline: %.2f > %.2f days", best.Training.Days, deadline)
	}
	// Input order must not change the winner (Better tie-breaks).
	reversed := append([]Point(nil), points...)
	for i, j := 0, len(reversed)-1; i < j; i, j = i+1, j-1 {
		reversed[i], reversed[j] = reversed[j], reversed[i]
	}
	if again, _ := CheapestWithinDeadline(reversed, deadline); again.Candidate != best.Candidate || again.Plan != best.Plan {
		t.Error("deadline winner depends on input order")
	}
	if _, ok := CheapestWithinDeadline(points, days[0]/2); ok {
		t.Error("impossible deadline reported a winner")
	}
}

// TestBetterTieBreakStable pins the documented tie-break chain on
// hand-built points with identical economics.
func TestBetterTieBreakStable(t *testing.T) {
	mk := func(name string, nodes, tensor int) Point {
		p := Point{Candidate: Candidate{Offering: hw.Offering{Name: name}, Nodes: nodes}}
		p.Plan = parallel.Plan{Tensor: tensor, Data: 1, Pipeline: 1, MicroBatch: 1}
		p.Training.TotalDollars = 100
		p.Training.Days = 10
		return p
	}
	a, b := mk("a100", 2, 1), mk("h100", 2, 1)
	if !a.Better(b) || b.Better(a) {
		t.Error("offering-name tie-break not lexicographic and strict")
	}
	c, d := mk("a100", 2, 1), mk("a100", 4, 1)
	if !c.Better(d) {
		t.Error("node-count tie-break not ascending")
	}
	e, f := mk("a100", 2, 1), mk("a100", 2, 2)
	if !e.Better(f) {
		t.Error("plan-tuple tie-break not ascending")
	}
	cheaper := mk("z-worst-name", 8, 8)
	cheaper.Training.TotalDollars = 99
	if !cheaper.Better(a) {
		t.Error("cost must dominate every tie-break")
	}
}

// TestHardwareOnlySweepLowersOnce is the cache-invariant the subsystem is
// built on: one plan shape across every catalog cluster performs exactly
// one lowering, no matter how many hardware candidates are compared.
func TestHardwareOnlySweepLowersOnce(t *testing.T) {
	m := tinyModel()
	s := testSpace()
	s.NodeCounts = []int{1}
	s.Plans.TensorWidths = []int{2}
	s.Plans.DataWidths = []int{2}
	s.Plans.PipelineDepths = []int{2}

	sim := newTestSim(t, s)
	points, err := Explore(sim, m, s)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(s.Offerings); len(points) != want {
		t.Fatalf("hardware-only sweep yielded %d points, want %d (one per offering)", len(points), want)
	}
	st := sim.CacheStats()
	if st.StructMisses != 1 {
		t.Errorf("hardware-only sweep lowered %d graphs, want exactly 1", st.StructMisses)
	}
	if want := uint64(len(points) - 1); st.StructHits != want {
		t.Errorf("StructHits = %d, want %d", st.StructHits, want)
	}
}

// TestZeroFeasibleConfigs pins the error paths: a model no candidate can
// run, an empty space, and an unpriced space all fail loudly instead of
// returning an empty ranking.
func TestZeroFeasibleConfigs(t *testing.T) {
	s := testSpace()
	sim := newTestSim(t, s)

	// MT-NLG 530B cannot fit 8-16 GPUs even with recomputation: every
	// candidate is skipped, and the sweep must say so.
	_, err := Explore(sim, model.MTNLG530B(), s)
	if err == nil || !strings.Contains(err.Error(), "no feasible") {
		t.Errorf("oversized model: err = %v, want 'no feasible ...'", err)
	}

	empty := s
	empty.Offerings = nil
	if _, err := Explore(sim, tinyModel(), empty); err == nil {
		t.Error("empty offering list accepted")
	}
	unpriced := s
	unpriced.TotalTokens = 0
	if _, err := Explore(sim, tinyModel(), unpriced); err == nil {
		t.Error("zero TotalTokens accepted")
	}
	malformed := s
	malformed.Offerings = []hw.Offering{{Name: "freebie", Node: hw.DGXA100(), Interconnect: hw.IBHDRx4()}}
	if _, err := Explore(sim, tinyModel(), malformed); err == nil {
		t.Error("unpriced offering accepted")
	}
}

// TestNewerGPUFasterSameCluster sanity-checks the threaded generation
// knobs end to end: on identical cluster shapes and plans, H100 trains in
// fewer days than A100, which beats V100.
func TestNewerGPUFasterSameCluster(t *testing.T) {
	m := tinyModel()
	s := testSpace()
	s.NodeCounts = []int{2}
	sim := newTestSim(t, s)
	points, err := Explore(sim, m, s)
	if err != nil {
		t.Fatal(err)
	}
	bestDays := map[string]float64{}
	for _, p := range points {
		if d, ok := bestDays[p.Offering.Name]; !ok || p.Training.Days < d {
			bestDays[p.Offering.Name] = p.Training.Days
		}
	}
	if !(bestDays["h100-sxm-80gb"] < bestDays["a100-sxm-80gb"] &&
		bestDays["a100-sxm-80gb"] < bestDays["v100-sxm-32gb"]) {
		t.Errorf("generation ordering violated: %v", bestDays)
	}
}

// resilientSpace is testSpace with failure modeling on catalog defaults.
func resilientSpace() Space {
	s := testSpace()
	s.Resilience = &resilience.Options{}
	return s
}

// TestResilientSweepRanking pins the failure-adjusted sweep: every point
// carries a goodput in (0,1), effective cost strictly above ideal cost,
// ranking follows Better over the effective figures, and within one
// offering the larger cluster always has the lower goodput — the
// reliability tax that motivates the whole layer.
func TestResilientSweepRanking(t *testing.T) {
	m, s := tinyModel(), resilientSpace()
	points, err := Explore(newTestSim(t, s), m, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("empty sweep")
	}
	for i, p := range points {
		g := p.Resilience.GoodputFraction
		if !(g > 0 && g < 1) {
			t.Fatalf("point %d: goodput %v outside (0,1)", i, g)
		}
		if p.Resilience.EffectiveDollars <= p.Training.TotalDollars {
			t.Fatalf("point %d: effective cost %v not above ideal %v", i,
				p.Resilience.EffectiveDollars, p.Training.TotalDollars)
		}
		if p.EffectiveDollars() != p.Resilience.EffectiveDollars || p.EffectiveDays() != p.Resilience.EffectiveDays {
			t.Fatalf("point %d: Effective accessors ignore the resilience view", i)
		}
		if i > 0 && points[i].Better(points[i-1]) {
			t.Fatalf("point %d ranks above its predecessor", i)
		}
	}
	goodput := map[string]map[int]float64{}
	for _, p := range points {
		if goodput[p.Offering.Name] == nil {
			goodput[p.Offering.Name] = map[int]float64{}
		}
		goodput[p.Offering.Name][p.Nodes] = p.Resilience.GoodputFraction
	}
	for off, byNodes := range goodput {
		if len(byNodes) == 2 && byNodes[2] >= byNodes[1] {
			t.Errorf("%s: 2-node goodput %v not below 1-node %v", off, byNodes[2], byNodes[1])
		}
	}
}

// TestResilienceIsPurePostProcessing is the equivalence lock: with
// resilience disabled the sweep must be byte-identical to the pre-PR
// behavior, and enabling it must change neither the simulated reports, the
// ideal economics, nor the structural-cache behavior — only the extra
// Resilience view and the ranking that reads it.
func TestResilienceIsPurePostProcessing(t *testing.T) {
	m := tinyModel()

	ideal, idealSpace := []Point{}, testSpace()
	idealSim := newTestSim(t, idealSpace)
	idealPoints, err := Explore(idealSim, m, idealSpace)
	if err != nil {
		t.Fatal(err)
	}
	ideal = idealPoints

	resSpace := resilientSpace()
	resSim := newTestSim(t, resSpace)
	resPoints, err := Explore(resSim, m, resSpace)
	if err != nil {
		t.Fatal(err)
	}

	if len(ideal) != len(resPoints) {
		t.Fatalf("point counts differ: %d ideal vs %d resilient", len(ideal), len(resPoints))
	}

	// The structural cache must not notice resilience at all.
	if is, rs := idealSim.CacheStats(), resSim.CacheStats(); is != rs {
		t.Errorf("cache stats differ: ideal %+v vs resilient %+v", is, rs)
	}

	// Stripping the resilience view and re-ranking must reproduce the
	// disabled sweep exactly — same points, same order, same bytes.
	stripped := append([]Point(nil), resPoints...)
	for i := range stripped {
		stripped[i].Resilience = cost.Resilience{}
	}
	sort.Slice(stripped, func(i, j int) bool { return stripped[i].Better(stripped[j]) })
	if !reflect.DeepEqual(ideal, stripped) {
		t.Fatal("disabled-resilience sweep is not byte-identical to the stripped resilient sweep")
	}

	// And the disabled ranking itself must follow the raw-cost order the
	// pre-resilience Better used.
	for i := 1; i < len(ideal); i++ {
		p, q := ideal[i-1], ideal[i]
		if q.Training.TotalDollars < p.Training.TotalDollars {
			t.Fatalf("disabled ranking not by raw dollars at %d", i)
		}
		if q.Training.TotalDollars == p.Training.TotalDollars && q.Training.Days < p.Training.Days {
			t.Fatalf("disabled ranking not by raw days at %d", i)
		}
	}
}

// TestUnreliableCandidatesSkipped pins the infeasibility semantics: with a
// pathological failure environment the doomed candidates drop out like
// memory-infeasible plans, and when every candidate is doomed the sweep
// errors rather than returning an empty ranking.
func TestUnreliableCandidatesSkipped(t *testing.T) {
	m := tinyModel()

	// One second of per-GPU MTBF with one byte/s of checkpoint bandwidth:
	// nothing survives.
	s := testSpace()
	s.Resilience = &resilience.Options{MTBF: 1, WriteBandwidth: 1}
	if _, err := Explore(newTestSim(t, s), m, s); err == nil {
		t.Fatal("all-unreliable sweep returned points")
	}

	// A borderline environment keeps small clusters and drops large ones:
	// goodput gates feasibility per candidate, not globally. The tiny
	// model checkpoints ~237 MB, so at 160 kB/s a checkpoint takes
	// ~1,482 s: with 30,000 s of per-GPU MTBF the Young–Daly waste
	// sqrt(2CG/MTBF) is ~0.89 at 8 GPUs but ~1.26 at 16.
	s = testSpace()
	s.Resilience = &resilience.Options{MTBF: 3e4, WriteBandwidth: 160e3, Restart: 1}
	points, err := Explore(newTestSim(t, s), m, s)
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[int]bool{}
	for _, p := range points {
		sizes[p.Nodes] = true
	}
	if !sizes[1] || sizes[2] {
		t.Fatalf("want only 1-node candidates to survive, got sizes %v", sizes)
	}

	// Broken overrides are an error, not a silent skip.
	s = testSpace()
	s.Resilience = &resilience.Options{MTBF: math.Inf(1)}
	if _, err := Explore(newTestSim(t, s), m, s); err == nil ||
		errors.Is(err, resilience.ErrUnreliable) {
		t.Fatalf("invalid override should fail loudly, got %v", err)
	}
}

// TestResilientFrontierAndDeadline pins that the frontier and deadline
// helpers read the effective figures: a deadline between a point's ideal
// and effective days must reject it once failures are priced.
func TestResilientFrontierAndDeadline(t *testing.T) {
	m, s := tinyModel(), resilientSpace()
	points, err := Explore(newTestSim(t, s), m, s)
	if err != nil {
		t.Fatal(err)
	}
	front := ParetoFrontier(points)
	if len(front) == 0 {
		t.Fatal("empty frontier")
	}
	for i := 1; i < len(front); i++ {
		if front[i].EffectiveDollars() <= front[i-1].EffectiveDollars() {
			t.Errorf("frontier effective cost not strictly ascending at %d", i)
		}
		if front[i].EffectiveDays() >= front[i-1].EffectiveDays() {
			t.Errorf("frontier effective days not strictly descending at %d", i)
		}
	}

	fastest := points[0]
	for _, p := range points {
		if p.EffectiveDays() < fastest.EffectiveDays() {
			fastest = p
		}
	}
	// A deadline squeezed between the fastest point's ideal and effective
	// days is only satisfiable if failures are ignored.
	if fastest.Training.Days < fastest.EffectiveDays() {
		deadline := (fastest.Training.Days + fastest.EffectiveDays()) / 2
		if best, ok := CheapestWithinDeadline(points, deadline); ok {
			t.Errorf("deadline %v below every effective time, but got %v (eff %v days)",
				deadline, best.Candidate, best.EffectiveDays())
		}
	}
}

// TestContentionOffIsByteIdentical is the contention equivalence lock,
// mirroring TestResilienceIsPurePostProcessing: with the knob off the
// sweep must be byte-identical to the default space — same points, same
// order, same lowering and batching counters — and turning it on must
// change only comm-side timing: same candidate/plan coverage, identical
// structural-cache behavior (structure is contention-invariant), compute
// time untouched, and no point ever gets faster.
func TestContentionOffIsByteIdentical(t *testing.T) {
	m := tinyModel()

	def := testSpace()
	defSim := newTestSim(t, def)
	defPoints, err := Explore(defSim, m, def)
	if err != nil {
		t.Fatal(err)
	}

	off := testSpace()
	off.Contention = false
	offSim := newTestSim(t, off)
	offPoints, err := Explore(offSim, m, off)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(defPoints, offPoints) {
		t.Fatal("Contention:false sweep is not byte-identical to the default sweep")
	}
	if ds, os := defSim.CacheStats(), offSim.CacheStats(); ds != os {
		t.Errorf("cache stats differ: default %+v vs contention-off %+v", ds, os)
	}

	on := testSpace()
	on.Contention = true
	onSim := newTestSim(t, on)
	onPoints, err := Explore(onSim, m, on)
	if err != nil {
		t.Fatal(err)
	}
	if len(onPoints) != len(defPoints) {
		t.Fatalf("point counts differ: %d ideal vs %d contended", len(defPoints), len(onPoints))
	}
	// Contention binds at replay time, never into the structure: the two
	// sweeps lower, hit, and batch exactly alike.
	if ds, cs := defSim.CacheStats(), onSim.CacheStats(); ds != cs {
		t.Errorf("cache stats differ: ideal %+v vs contended %+v", ds, cs)
	}

	type key struct {
		offering string
		nodes    int
		plan     parallel.Plan
	}
	ideal := make(map[key]Point, len(defPoints))
	for _, p := range defPoints {
		ideal[key{p.Offering.Name, p.Nodes, p.Plan}] = p
	}
	slowed := 0
	for _, p := range onPoints {
		base, ok := ideal[key{p.Offering.Name, p.Nodes, p.Plan}]
		if !ok {
			t.Fatalf("contended sweep visited %v %d nodes %s, ideal sweep did not", p.Offering.Name, p.Nodes, p.Plan)
		}
		if p.Report.ComputeSeconds != base.Report.ComputeSeconds {
			t.Errorf("%s/%d/%s: contention changed compute time %v -> %v",
				p.Offering.Name, p.Nodes, p.Plan, base.Report.ComputeSeconds, p.Report.ComputeSeconds)
		}
		if p.Report.CommSeconds < base.Report.CommSeconds {
			t.Errorf("%s/%d/%s: contention lowered comm time %v -> %v",
				p.Offering.Name, p.Nodes, p.Plan, base.Report.CommSeconds, p.Report.CommSeconds)
		}
		if p.Report.IterTime < base.Report.IterTime {
			t.Errorf("%s/%d/%s: contention lowered iteration time %v -> %v",
				p.Offering.Name, p.Nodes, p.Plan, base.Report.IterTime, p.Report.IterTime)
		}
		if p.Report.CommSeconds > base.Report.CommSeconds {
			slowed++
		}
	}
	if slowed == 0 {
		t.Error("no design point paid any congestion tax — Space.Contention is not wired through ForCluster")
	}
}
