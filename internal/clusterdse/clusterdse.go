// Package clusterdse performs joint cluster-design exploration — the
// question behind the paper's third case study (Section V-C, Table II):
// which cluster trains a model most cost-effectively, and which is the
// cheapest that still meets a deadline?
//
// Where internal/dse sweeps the parallel-plan axes (t, d, p, m) on one
// fixed cluster, this package additionally sweeps the hardware axes of the
// catalog in internal/hw: GPU generation, node count, and interconnect
// tier, each candidate carrying its own per-GPU-hour price. Every candidate
// cluster is required to be fully used (the plan's t·d·p equals the
// cluster's GPU count, as in Table II's 64/256/512-GPU comparisons), so a
// candidate's training cost is the price of the whole provisioned cluster
// for the whole run.
//
// The sweep's cost structure leans on the structure/timing split: task-graph
// structure is hardware-invariant, so all hardware variants of one plan
// shape share a single lowered graph. ExploreFunc derives one sibling
// simulator per candidate cluster from a single root via
// core.Simulator.ForCluster — they share the shape-keyed structural cache —
// and a hardware-only sweep therefore pays for exactly one lowering no
// matter how many clusters it compares (pinned by the package tests and
// BenchmarkClusterSweep).
package clusterdse

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"vtrain/internal/core"
	"vtrain/internal/cost"
	"vtrain/internal/dse"
	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/parallel"
	"vtrain/internal/resilience"
)

// Space describes a joint (hardware x plan) sweep.
type Space struct {
	// Offerings are the hardware candidates: GPU generation + node type +
	// interconnect tier + price (see hw.Catalog).
	Offerings []hw.Offering
	// NodeCounts are the cluster sizes to provision, in nodes.
	NodeCounts []int
	// Plans carries the parallel-plan axes swept inside each candidate
	// cluster. Its ExactGPUs field is overwritten per candidate so every
	// plan uses the whole provisioned cluster; MaxGPUs is ignored.
	Plans dse.Space
	// TotalTokens is the training-run length the costs are projected over.
	TotalTokens uint64
	// Resilience, when non-nil, prices failures and checkpoint-restart
	// into every point (see internal/resilience): each candidate gets a
	// goodput model from its catalog-pinned MTBF and checkpoint
	// bandwidth (overridable through the options), points carry the
	// failure-adjusted economics, and ranking uses effective rather than
	// ideal cost. Candidates whose goodput is non-positive — they fail
	// faster than they can checkpoint — are skipped like
	// memory-infeasible plans. Nil disables resilience entirely: points
	// carry a zero Resilience and the sweep is byte-identical to the
	// resilience-free ranking.
	Resilience *resilience.Options
	// Contention enables the topology-aware congestion fidelity level on
	// every candidate's sibling simulator (see core.WithContention):
	// replays derate communication tasks sharing fat-tree links with
	// concurrently in-flight ones. Off by default; with it off the sweep is
	// byte-identical to a build without the knob — same points, same
	// lowering and batching counters — mirroring the Resilience nil
	// contract.
	Contention bool
}

// DefaultSpace sweeps the full catalog over the given node counts with the
// standard plan space of dse.DefaultSpace.
func DefaultSpace(m model.Config, globalBatch int, totalTokens uint64, nodeCounts []int) Space {
	plans := dse.DefaultSpace(m, globalBatch)
	plans.MaxMicroBatches = 512
	return Space{
		Offerings:   hw.Catalog(),
		NodeCounts:  nodeCounts,
		Plans:       plans,
		TotalTokens: totalTokens,
		Resilience:  &resilience.Options{},
	}
}

// SelectOfferings resolves offering names against the hardware catalog:
// empty names mean the whole catalog. cross additionally pairs every node
// type with every interconnect tier, keeping the node's price — the "same
// machines, different network" axis. The CLI and the serving layer both
// build their sweep spaces through it.
func SelectOfferings(names []string, cross bool) ([]hw.Offering, error) {
	var base []hw.Offering
	if len(names) == 0 {
		base = hw.Catalog()
	} else {
		for _, n := range names {
			o, err := hw.LookupOffering(strings.TrimSpace(n))
			if err != nil {
				return nil, err
			}
			base = append(base, o)
		}
	}
	if !cross {
		return base, nil
	}
	var out []hw.Offering
	for _, o := range base {
		out = append(out, o)
		for _, ic := range hw.Interconnects() {
			if ic.Name == o.Interconnect.Name {
				continue
			}
			out = append(out, o.WithInterconnect(ic))
		}
	}
	return out, nil
}

// Candidate is one hardware configuration of the sweep.
type Candidate struct {
	Offering hw.Offering
	Nodes    int
}

// Cluster materializes the candidate.
func (c Candidate) Cluster() hw.Cluster { return c.Offering.Cluster(c.Nodes) }

// GPUs returns the candidate's total GPU count.
func (c Candidate) GPUs() int { return c.Nodes * c.Offering.Node.GPUsPerNode }

// String implements fmt.Stringer.
func (c Candidate) String() string {
	return fmt.Sprintf("%s x%d nodes (%d GPUs, %s)", c.Offering.Name, c.Nodes, c.GPUs(), c.Offering.Interconnect.Name)
}

// Point is one evaluated (hardware, plan) design point. Every streamed
// point is feasible: infeasible plans are excluded during enumeration, and
// candidates the model cannot run on at all are skipped.
type Point struct {
	Candidate
	Plan     parallel.Plan
	Report   core.Report
	Training cost.Training
	// Resilience carries the failure-adjusted economics when the space
	// enables resilience modeling; it is the zero value otherwise, and
	// the Effective* accessors fall back to the ideal figures.
	Resilience cost.Resilience
}

// EffectiveDollars returns the cost the ranking uses: the failure-adjusted
// training cost when resilience is modeled, the ideal cost otherwise.
func (p Point) EffectiveDollars() float64 {
	if p.Resilience.GoodputFraction > 0 {
		return p.Resilience.EffectiveDollars
	}
	return p.Training.TotalDollars
}

// EffectiveDays returns the wall-clock days the ranking and deadline
// checks use: failure-adjusted when resilience is modeled, ideal
// otherwise.
func (p Point) EffectiveDays() float64 {
	if p.Resilience.GoodputFraction > 0 {
		return p.Resilience.EffectiveDays
	}
	return p.Training.Days
}

// Better reports whether p should rank ahead of q: lower effective
// training cost (failure-adjusted when resilience is modeled, ideal
// otherwise — bigger-but-faster clusters pay a visible reliability tax),
// then fewer effective days, then the (offering, nodes, t, d, p, m) tuple
// as a deterministic tie-break — the ranking analogue of dse.Point.Better,
// with cost in iteration time's role. With resilience disabled the
// comparison reduces exactly to the raw (dollars, days) ranking.
func (p Point) Better(q Point) bool {
	if pd, qd := p.EffectiveDollars(), q.EffectiveDollars(); pd != qd {
		return pd < qd
	}
	if pd, qd := p.EffectiveDays(), q.EffectiveDays(); pd != qd {
		return pd < qd
	}
	if p.Offering.Name != q.Offering.Name {
		return p.Offering.Name < q.Offering.Name
	}
	if p.Nodes != q.Nodes {
		return p.Nodes < q.Nodes
	}
	a, b := p.Plan, q.Plan
	switch {
	case a.Tensor != b.Tensor:
		return a.Tensor < b.Tensor
	case a.Data != b.Data:
		return a.Data < b.Data
	case a.Pipeline != b.Pipeline:
		return a.Pipeline < b.Pipeline
	default:
		return a.MicroBatch < b.MicroBatch
	}
}

// NewSimulator builds the root simulator a sweep derives its per-cluster
// siblings from, using the space's first candidate as the root cluster.
// Pass core.WithFidelity(taskgraph.OperatorLevel) for sweep-speed fidelity;
// the option set otherwise mirrors core.New.
func NewSimulator(s Space, opts ...core.Option) (*core.Simulator, error) {
	if len(s.Offerings) == 0 || len(s.NodeCounts) == 0 {
		return nil, fmt.Errorf("clusterdse: space needs at least one offering and one node count")
	}
	return core.New(s.Offerings[0].Cluster(s.NodeCounts[0]), opts...)
}

// ExploreFunc evaluates every feasible (offering, node count, plan)
// configuration of the space and streams each Point to fn as it completes.
// Calls to fn are serialized; completion order is nondeterministic (bounded
// worker pool over shape batches), so rank with Point.Better.
//
// All candidates are simulated through siblings of sim (see
// core.Simulator.ForCluster) so they share one structural cache: the
// hardware axes add design points but no lowerings. The sweep batches by
// structural shape across candidates, not per candidate: every feasible
// (candidate, plan) pair is enumerated up front, pairs sharing a shape —
// regardless of which cluster they price — flush through
// core.SimulateBatchAcross, and one lowered graph replays up to a full
// batch of duration tables per pass. Within one candidate only a handful
// of plans share a shape (t·d·p must equal the cluster's GPU count), so
// cross-candidate grouping is what makes the batches wide;
// sim.CacheStats reports the shared structural and batching counters
// after the sweep.
//
// Candidates on which the model has no valid, memory-feasible plan are
// skipped; if every candidate is skipped the sweep returns an error. On a
// simulation error the sweep stops without streaming any further point to
// fn — in-flight batches suppress their output after a failure (see
// dse.StreamGate).
func ExploreFunc(sim *core.Simulator, m model.Config, s Space, fn func(Point)) error {
	if len(s.Offerings) == 0 || len(s.NodeCounts) == 0 {
		return fmt.Errorf("clusterdse: space needs at least one offering and one node count")
	}
	if s.TotalTokens == 0 {
		return fmt.Errorf("clusterdse: space needs TotalTokens to price training runs")
	}

	// Pass 1: materialize every feasible (candidate, plan) pair in
	// deterministic candidate-then-enumeration order, each carrying its
	// sibling simulator and per-candidate pricing context.
	type entry struct {
		sim  *core.Simulator
		cand Candidate
		cl   hw.Cluster
		res  resilience.Model
		plan parallel.Plan
	}
	var entries []entry
	for _, off := range s.Offerings {
		if err := off.Validate(); err != nil {
			return fmt.Errorf("clusterdse: %w", err)
		}
		// Derive the offering's node-count variants from its first sibling
		// rather than the root: ForCluster reuses the parent's profiler for
		// an identical GPU spec, so one offering profiles its operators once
		// across all cluster sizes.
		parent := sim
		for _, nodes := range s.NodeCounts {
			cand := Candidate{Offering: off, Nodes: nodes}
			cl := cand.Cluster()
			// The goodput model depends only on (model, cluster), not the
			// plan: compute it once per candidate. A candidate that fails
			// faster than it can checkpoint is skipped exactly like one
			// with no memory-feasible plan; anything else (missing catalog
			// data, malformed overrides) fails the sweep loudly.
			var resMod resilience.Model
			if s.Resilience != nil {
				var err error
				resMod, err = resilience.For(m, cl, cl.TotalGPUs(), *s.Resilience)
				if errors.Is(err, resilience.ErrUnreliable) {
					continue
				}
				if err != nil {
					return fmt.Errorf("clusterdse: %s: %w", cand, err)
				}
			}
			sib, err := parent.ForCluster(cl, core.WithContention(s.Contention))
			if err != nil {
				return fmt.Errorf("clusterdse: %s: %w", cand, err)
			}
			parent = sib
			ps := s.Plans
			ps.MaxGPUs = 0
			ps.ExactGPUs = cl.TotalGPUs()
			for _, plan := range ps.Enumerate(m, sib) {
				entries = append(entries, entry{sim: sib, cand: cand, cl: cl, res: resMod, plan: plan})
			}
		}
	}
	if len(entries) == 0 {
		return fmt.Errorf("clusterdse: no feasible (offering, node count, plan) configuration for %s: %w", m.Name, dse.ErrNoValidPlan)
	}

	// Pass 2: group entries by structural shape across candidates,
	// preserving entry order within and across groups so the batch
	// composition is deterministic.
	var (
		batches  [][]int
		shapeIdx = make(map[core.Shape]int)
	)
	for i, e := range entries {
		sh := e.sim.PlanShape(m, e.plan)
		bi, ok := shapeIdx[sh]
		if !ok {
			bi = len(batches)
			shapeIdx[sh] = bi
			batches = append(batches, nil)
		}
		batches[bi] = append(batches[bi], i)
	}

	// Pass 3: evaluate shape batches on a bounded worker pool, streaming
	// each batch's points under the gate. A shape-prefetch pool walks the
	// batches alongside the workers and warms the shared structural cache
	// through each batch's first entry, so cold lowerings (or persistent-
	// tier disk loads) overlap the binding and replay of resident shapes;
	// EnsureStructure shares the cache's single-flight entries, so no shape
	// is ever lowered twice.
	workers := runtime.GOMAXPROCS(0)
	if workers > len(batches) {
		workers = len(batches)
	}
	var gate dse.StreamGate
	waitWarm := dse.WarmShapes(len(batches), workers, gate.Stopped, func(bi int) {
		e := entries[batches[bi][0]]
		e.sim.EnsureStructure(m, e.plan)
	})
	defer waitWarm()
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !gate.Stopped() {
				bi := int(next.Add(1)) - 1
				if bi >= len(batches) {
					return
				}
				idx := batches[bi]
				sims := make([]*core.Simulator, len(idx))
				group := make([]parallel.Plan, len(idx))
				for j, i := range idx {
					sims[j], group[j] = entries[i].sim, entries[i].plan
				}
				reps, err := core.SimulateBatchAcross(m, sims, group)
				if err != nil {
					// Attribute the failure to its (candidate, plan); the
					// unwrapped Err reads exactly like a sequential
					// Simulate failure.
					plan, cand := group[0], entries[idx[0]].cand
					var pe *core.PlanError
					if errors.As(err, &pe) {
						plan, err = pe.Plan, pe.Err
						for _, i := range idx {
							if entries[i].plan == plan {
								cand = entries[i].cand
								break
							}
						}
					}
					gate.Fail(fmt.Errorf("clusterdse: %s under %s: %w", cand, plan, err))
					return
				}
				gate.Publish(func() {
					for j, i := range idx {
						e := entries[i]
						tr := cost.Train(m, e.plan.GlobalBatch, reps[j].IterTime, e.plan.GPUs(), s.TotalTokens, e.cl)
						pt := Point{Candidate: e.cand, Plan: e.plan, Report: reps[j], Training: tr}
						if s.Resilience != nil {
							pt.Resilience = cost.ApplyResilience(tr, e.res)
						}
						fn(pt)
					}
				})
			}
		}()
	}
	wg.Wait()
	return gate.FirstErr()
}

// Explore runs the sweep and returns every point ranked cheapest-first
// (see Point.Better).
func Explore(sim *core.Simulator, m model.Config, s Space) ([]Point, error) {
	var points []Point
	if err := ExploreFunc(sim, m, s, func(p Point) { points = append(points, p) }); err != nil {
		return nil, err
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Better(points[j]) })
	return points, nil
}

// ParetoFrontier returns the (training cost, training days) frontier over
// the effective (failure-adjusted when modeled) figures: the cost-ascending
// sequence of points with strictly decreasing days, i.e. for every point no
// other point is at most as expensive AND at most as slow with one of the
// two strict. Ties resolve by Point.Better, so the frontier is
// deterministic regardless of input order.
func ParetoFrontier(points []Point) []Point {
	if len(points) == 0 {
		return nil
	}
	sorted := append([]Point(nil), points...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Better(sorted[j]) })
	var front []Point
	bestDays := sorted[0].EffectiveDays() + 1
	for _, p := range sorted {
		if p.EffectiveDays() < bestDays {
			front = append(front, p)
			bestDays = p.EffectiveDays()
		}
	}
	return front
}

// CheapestWithinDeadline returns the cheapest point whose end-to-end
// effective training time (failure-adjusted when modeled) does not exceed
// maxDays, ranking candidates by Point.Better (so equal-cost ties break
// deterministically). ok is false when no point meets the deadline.
func CheapestWithinDeadline(points []Point, maxDays float64) (best Point, ok bool) {
	for _, p := range points {
		if p.EffectiveDays() > maxDays {
			continue
		}
		if !ok || p.Better(best) {
			best, ok = p, true
		}
	}
	return best, ok
}
