package testbed

import (
	"testing"

	"vtrain/internal/core"
	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/parallel"
	"vtrain/internal/taskgraph"
)

func plan() parallel.Plan {
	return parallel.Plan{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 8, GradientBuckets: 1}
}

func TestMeasureDeterministicPerConfig(t *testing.T) {
	// The paper observes real kernel times are highly deterministic;
	// repeated measurements of the same configuration must agree.
	tb := New(hw.PaperCluster(8), DefaultConfig(), 99)
	m := model.Megatron3_6B()
	a, err := tb.Measure(m, plan())
	if err != nil {
		t.Fatal(err)
	}
	b, err := tb.Measure(m, plan())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("repeated measurement diverged: %v vs %v", a, b)
	}
}

func TestDistinctConfigsVaryIndependently(t *testing.T) {
	tb := New(hw.PaperCluster(8), DefaultConfig(), 99)
	m := model.Megatron3_6B()
	p2 := plan()
	p2.MicroBatch = 2
	p2.GlobalBatch = 16
	a, _ := tb.Measure(m, plan())
	b, _ := tb.Measure(m, p2)
	if a == b {
		t.Fatal("different configurations should not share noise draws")
	}
}

func TestMeasuredSlowerThanPredicted(t *testing.T) {
	// All injected effects add latency; the testbed "measurement" must
	// exceed vTrain's isolated-environment prediction for comm-heavy
	// configurations (the paper reports vTrain underestimates).
	cluster := hw.PaperCluster(8)
	tb := New(cluster, DefaultConfig(), 12345)
	sim, err := core.New(cluster, core.WithFidelity(taskgraph.OperatorLevel))
	if err != nil {
		t.Fatal(err)
	}
	m := model.Megatron18_4B()
	p := parallel.Plan{Tensor: 8, Data: 4, Pipeline: 2, MicroBatch: 1, GlobalBatch: 16, GradientBuckets: 2}
	rep, err := sim.Simulate(m, p)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := tb.Measure(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if meas <= rep.IterTime {
		t.Fatalf("measured %.4g not above predicted %.4g for TP-heavy config", meas, rep.IterTime)
	}
	// But within a sane band (< 40 % off).
	if meas > 1.4*rep.IterTime {
		t.Fatalf("measured %.4g implausibly above predicted %.4g", meas, rep.IterTime)
	}
}

func TestTensorParallelErrorMorePronounced(t *testing.T) {
	// Section IV: the isolated-vs-training NCCL discrepancy "was
	// especially more pronounced when tensor parallelism is employed".
	cluster := hw.PaperCluster(8)
	tb := New(cluster, DefaultConfig(), 7)
	sim, err := core.New(cluster, core.WithFidelity(taskgraph.OperatorLevel))
	if err != nil {
		t.Fatal(err)
	}
	m := model.Megatron18_4B()
	relErr := func(p parallel.Plan) float64 {
		rep, err := sim.Simulate(m, p)
		if err != nil {
			t.Fatal(err)
		}
		meas, err := tb.Measure(m, p)
		if err != nil {
			t.Fatal(err)
		}
		return (meas - rep.IterTime) / meas
	}
	tpHeavy := relErr(parallel.Plan{Tensor: 8, Data: 1, Pipeline: 1, MicroBatch: 1, GlobalBatch: 8})
	dpOnly := relErr(parallel.Plan{Tensor: 1, Data: 8, Pipeline: 1, MicroBatch: 1, GlobalBatch: 8, GradientBuckets: 1})
	if tpHeavy <= dpOnly {
		t.Fatalf("TP-heavy error %.3f not above DP-only error %.3f", tpHeavy, dpOnly)
	}
}

func TestStragglerGrowsWithScale(t *testing.T) {
	// The same per-GPU workload across more nodes must suffer a larger
	// straggler penalty relative to prediction. Isolate the effect: all
	// other noise sources off.
	m := model.Megatron18_4B()
	cfg := Config{StragglerSigma: 0.03}
	ratio := func(nodes, d int) float64 {
		cluster := hw.PaperCluster(nodes)
		tb := New(cluster, cfg, 21)
		sim, err := core.New(cluster, core.WithFidelity(taskgraph.OperatorLevel))
		if err != nil {
			t.Fatal(err)
		}
		p := parallel.Plan{Tensor: 8, Data: d, Pipeline: 1, MicroBatch: 1, GlobalBatch: 4 * d, GradientBuckets: 1}
		rep, err := sim.Simulate(m, p)
		if err != nil {
			t.Fatal(err)
		}
		meas, err := tb.Measure(m, p)
		if err != nil {
			t.Fatal(err)
		}
		return meas / rep.IterTime
	}
	small := ratio(2, 2)
	large := ratio(64, 64)
	if large <= small {
		t.Fatalf("straggler ratio at 64 nodes (%.4f) not above 2 nodes (%.4f)", large, small)
	}
}

func TestZeroEffectConfigMatchesPrediction(t *testing.T) {
	// With every effect disabled the testbed must agree with vTrain
	// bit-for-bit: same device model, same comm model, same engine.
	cluster := hw.PaperCluster(8)
	tb := New(cluster, Config{}, 42)
	sim, err := core.New(cluster, core.WithFidelity(taskgraph.OperatorLevel))
	if err != nil {
		t.Fatal(err)
	}
	m := model.Megatron3_6B()
	p := plan()
	rep, err := sim.Simulate(m, p)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := tb.Measure(m, p)
	if err != nil {
		t.Fatal(err)
	}
	// KernelSigma 0 still leaves the drift-clamp path; allow 1e-9.
	if rel := (meas - rep.IterTime) / rep.IterTime; rel > 1e-9 || rel < -1e-9 {
		t.Fatalf("zero-effect testbed deviates: measured %.9g vs predicted %.9g", meas, rep.IterTime)
	}
}

func TestMeasureRejectsInvalidPlan(t *testing.T) {
	tb := New(hw.PaperCluster(1), DefaultConfig(), 1)
	if _, err := tb.Measure(model.Megatron3_6B(), parallel.Plan{}); err == nil {
		t.Fatal("invalid plan must propagate an error")
	}
}
