// Package testbed is the "real hardware" stand-in used to validate vTrain
// (Section IV / Fig. 9). The paper compares vTrain's predictions against
// measured iteration times on AWS p4d nodes and a 512-GPU InfiniBand
// cluster; those machines are replaced here by a higher-fidelity reference
// simulator that injects exactly the dynamic effects the paper identifies
// as vTrain's error sources:
//
//   - NCCL primitives run ~30 % slower under real training than in the
//     isolated environment vTrain profiles, most pronounced for tensor
//     parallelism (the paper's stated single-node error source);
//   - inter-node collectives from different data-parallel groups share
//     ToR switches and interfere with each other, and NCCL kernel launches
//     add latency (the paper's stated multi-node error sources);
//   - straggler nodes skew synchronization points: the slowest of N nodes
//     sets the pace;
//   - run-to-run kernel variance perturbs the compute time slightly.
//
// vTrain itself never sees these effects — that is the point: the gap
// between vTrain's prediction and the testbed's "measurement" reproduces
// the paper's validation error structure (single-node MAPE < multi-node
// MAPE, R^2 close to 1).
package testbed

import (
	"math"
	"sync"

	"vtrain/internal/comm"
	"vtrain/internal/core"
	"vtrain/internal/gpu"
	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/parallel"
	"vtrain/internal/stats"
	"vtrain/internal/taskgraph"
)

// Config tunes the injected dynamic effects.
type Config struct {
	// NCCLContention is the mean slowdown of intra-node collectives
	// under overlapping compute (paper: ~30 %).
	NCCLContention float64
	// InterferencePerGroup is the per-doubling slowdown of inter-node
	// collectives from data-parallel groups sharing switches.
	InterferencePerGroup float64
	// NCCLLaunchOverhead is the extra per-collective kernel-launch
	// latency vTrain's analytical model ignores.
	NCCLLaunchOverhead float64
	// StragglerSigma is the per-node relative compute jitter; the
	// slowest of the participating nodes paces every synchronization.
	StragglerSigma float64
	// KernelSigma is the run-to-run relative variance of kernel times.
	KernelSigma float64
}

// DefaultConfig matches the error magnitudes reported in Section IV.
func DefaultConfig() Config {
	return Config{
		NCCLContention:       0.45,
		InterferencePerGroup: 0.12,
		NCCLLaunchOverhead:   15e-6,
		StragglerSigma:       0.030,
		KernelSigma:          0.065,
	}
}

// Testbed measures iteration times on the simulated hardware.
type Testbed struct {
	cluster hw.Cluster
	cfg     Config
	seed    uint64
	base    *comm.Model
	// measured memoizes Measure per configuration: the per-configuration
	// noise seed makes repeated measurements of one point identical (the
	// paper's "little variance" observation), so validation campaigns
	// that revisit a point pay for one simulation.
	measured sync.Map // measureKey -> float64
}

// measureKey identifies one measured configuration.
type measureKey struct {
	model model.Config
	plan  parallel.Plan
}

// New builds a testbed for the cluster. The seed makes all injected noise
// reproducible.
func New(c hw.Cluster, cfg Config, seed uint64) *Testbed {
	return &Testbed{cluster: c, cfg: cfg, seed: seed, base: comm.NewModel(c)}
}

// contendedComm wraps the isolated-environment communication model with
// the contention effects of real training.
type contendedComm struct {
	base       *comm.Model
	cfg        Config
	interferer float64 // multiplicative inter-node interference
	rng        *stats.Rand
}

func (c *contendedComm) AllReduce(bytes float64, n int, intraNode bool) float64 {
	t := c.base.AllReduce(bytes, n, intraNode)
	if intraNode {
		// Compute-overlap contention, with run-to-run spread.
		factor := 1 + c.cfg.NCCLContention*(0.9+0.2*c.rng.Float64())
		return t*factor + c.cfg.NCCLLaunchOverhead
	}
	return t*c.interferer + c.cfg.NCCLLaunchOverhead
}

func (c *contendedComm) SendRecv(bytes float64, sameNode bool) float64 {
	return c.base.SendRecv(bytes, sameNode) + c.cfg.NCCLLaunchOverhead
}

// configSeed derives a deterministic per-configuration seed so repeated
// measurements of the same point agree (the paper's "little variance"
// observation) while distinct points vary independently.
func (t *Testbed) configSeed(m model.Config, plan parallel.Plan) uint64 {
	h := t.seed
	mix := func(v uint64) {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	}
	mix(uint64(m.Hidden))
	mix(uint64(m.Layers))
	mix(uint64(m.SeqLen))
	mix(uint64(m.Heads))
	mix(uint64(plan.Tensor))
	mix(uint64(plan.Data))
	mix(uint64(plan.Pipeline))
	mix(uint64(plan.MicroBatch))
	mix(uint64(plan.GlobalBatch))
	return h
}

// Measure returns the "measured" single-iteration training time of m under
// plan — what a real run on this cluster would report. Measurements are
// deterministic per configuration and memoized, so Measure is safe and
// cheap to call concurrently and repeatedly.
func (t *Testbed) Measure(m model.Config, plan parallel.Plan) (float64, error) {
	key := measureKey{model: m, plan: plan}
	if v, ok := t.measured.Load(key); ok {
		return v.(float64), nil
	}
	v, err := t.measure(m, plan)
	if err != nil {
		return 0, err
	}
	t.measured.Store(key, v)
	return v, nil
}

func (t *Testbed) measure(m model.Config, plan parallel.Plan) (float64, error) {
	rng := stats.NewRand(t.configSeed(m, plan))

	// Run-to-run kernel variance: the whole compute profile drifts by a
	// small factor for this run.
	dev := gpu.NewDevice(t.cluster.Node.GPU)
	drift := rng.Normal(1, t.cfg.KernelSigma)
	if drift < 0.9 {
		drift = 0.9
	}
	dev.MaxTensorEff /= drift
	dev.MemEff /= drift

	// Inter-node interference grows with the number of data-parallel
	// groups sharing the fabric (one group per tensor rank, Fig. 3).
	groups := float64(plan.Tensor)
	interferer := 1 + t.cfg.InterferencePerGroup*math.Log2(math.Max(groups, 1)+1)

	// One-shot simulator: the drifted device and stateful contended comm
	// model are unique to this measurement, so plan-level caching would
	// only hold stale entries and a structural cache would only retain a
	// graph nobody revisits — disable both. The contended model's noise
	// stays reproducible because duration binding prices communication
	// tasks in task order, the same rng-draw sequence a from-scratch
	// lowering presents.
	cc := &contendedComm{base: t.base, cfg: t.cfg, interferer: interferer, rng: rng}
	sim, err := core.New(t.cluster,
		core.WithDevice(dev),
		core.WithCommTimer(cc),
		core.WithFidelity(taskgraph.OperatorLevel),
		core.WithCacheSize(0),
		core.WithStructCacheSize(0),
	)
	if err != nil {
		return 0, err
	}
	rep, err := sim.Simulate(m, plan)
	if err != nil {
		return 0, err
	}

	// Straggler effect: every pipeline flush and gradient synchronization
	// is paced by the slowest of the participating nodes. The expected
	// maximum of N Gaussian node speeds grows ~ sqrt(2 ln N).
	nodes := float64(plan.GPUs()) / float64(t.cluster.Node.GPUsPerNode)
	if nodes > 1 {
		straggler := 1 + t.cfg.StragglerSigma*math.Sqrt(2*math.Log(nodes))*(0.8+0.4*rng.Float64())
		return rep.IterTime * straggler, nil
	}
	return rep.IterTime, nil
}

// Cluster returns the testbed's hardware description.
func (t *Testbed) Cluster() hw.Cluster { return t.cluster }
