package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMAPE(t *testing.T) {
	got, err := MAPE([]float64{90, 110}, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-12 {
		t.Fatalf("MAPE = %v, want 10", got)
	}
}

func TestMAPEPerfect(t *testing.T) {
	got, err := MAPE([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || got != 0 {
		t.Fatalf("perfect MAPE = %v, %v", got, err)
	}
}

func TestMAPEErrors(t *testing.T) {
	if _, err := MAPE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := MAPE(nil, nil); err == nil {
		t.Fatal("empty sample must error")
	}
	if _, err := MAPE([]float64{1}, []float64{0}); err == nil {
		t.Fatal("zero measurement must error")
	}
}

func TestR2PerfectAndPoor(t *testing.T) {
	meas := []float64{1, 2, 3, 4, 5}
	if r, err := R2(meas, meas); err != nil || math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect R2 = %v, %v", r, err)
	}
	// Predicting the mean gives R2 = 0.
	mean := []float64{3, 3, 3, 3, 3}
	if r, err := R2(mean, meas); err != nil || math.Abs(r) > 1e-12 {
		t.Fatalf("mean-prediction R2 = %v, %v", r, err)
	}
}

func TestR2Errors(t *testing.T) {
	if _, err := R2([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single sample must error")
	}
	if _, err := R2([]float64{1, 2}, []float64{5, 5}); err == nil {
		t.Fatal("zero-variance measurements must error")
	}
	if _, err := R2([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Mean = %v, want 2", got)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	if NewRand(1).Uint64() == NewRand(2).Uint64() {
		t.Fatal("different seeds should diverge immediately")
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 100; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	r.Intn(0)
}

func TestUniform(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 100; i++ {
		v := r.Uniform(0.5, 1.5)
		if v < 0.5 || v >= 1.5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRand(11)
	n := 20000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Normal(5, 2)
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean-5) > 0.1 {
		t.Fatalf("Normal mean = %.3f, want ~5", mean)
	}
	if math.Abs(variance-4) > 0.3 {
		t.Fatalf("Normal variance = %.3f, want ~4", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRand(13)
	for i := 0; i < 1000; i++ {
		if r.LogNormal(0, 1) <= 0 {
			t.Fatal("LogNormal must be positive")
		}
	}
}
