// Package stats provides the accuracy metrics the paper reports (mean
// absolute percentage error, coefficient of determination) and a small
// deterministic random-number helper used by the synthetic workloads.
package stats

import (
	"fmt"
	"math"
)

// MAPE returns the mean absolute percentage error of predictions against
// measurements, in percent — the headline metric of Fig. 9 (8.37 % single
// node, 14.73 % multi node).
func MAPE(predicted, measured []float64) (float64, error) {
	if len(predicted) != len(measured) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(predicted), len(measured))
	}
	if len(predicted) == 0 {
		return 0, fmt.Errorf("stats: empty sample")
	}
	var sum float64
	for i := range predicted {
		if measured[i] == 0 {
			return 0, fmt.Errorf("stats: zero measurement at index %d", i)
		}
		sum += math.Abs(predicted[i]-measured[i]) / math.Abs(measured[i])
	}
	return 100 * sum / float64(len(predicted)), nil
}

// R2 returns the coefficient of determination of predictions against
// measurements (1 - SS_res/SS_tot), as used in Fig. 9's scatter plots.
func R2(predicted, measured []float64) (float64, error) {
	if len(predicted) != len(measured) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(predicted), len(measured))
	}
	if len(predicted) < 2 {
		return 0, fmt.Errorf("stats: need at least two samples")
	}
	var mean float64
	for _, y := range measured {
		mean += y
	}
	mean /= float64(len(measured))
	var ssRes, ssTot float64
	for i := range measured {
		d := measured[i] - predicted[i]
		ssRes += d * d
		t := measured[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		return 0, fmt.Errorf("stats: measurements have zero variance")
	}
	return 1 - ssRes/ssTot, nil
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Rand is a small deterministic PRNG (splitmix64) used for synthetic
// workloads so every experiment is reproducible without math/rand seeding
// ambiguity across Go versions.
type Rand struct{ state uint64 }

// NewRand seeds a generator.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 advances the generator.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform sample in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform sample in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform sample in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal returns a sample from N(mu, sigma) via Box-Muller.
func (r *Rand) Normal(mu, sigma float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return mu + sigma*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
}

// LogNormal returns a sample whose logarithm is N(mu, sigma) — the
// heavy-tailed shape of cluster job inter-arrival times.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}
