package cluster

import (
	"testing"

	"vtrain/internal/trace"
)

func TestPolicyString(t *testing.T) {
	if EDF.String() != "EDF" || FIFO.String() != "FIFO" || SRTF.String() != "SRTF" {
		t.Fatal("policy names changed")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Fatal("unknown policy formatting changed")
	}
}

func runPolicy(t *testing.T, pol Policy, jobs []trace.Job, set *ProfileSet) Outcome {
	t.Helper()
	sched := NewScheduler(1024, set)
	sched.Policy = pol
	out, err := sched.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestEDFMeetsMostDeadlines(t *testing.T) {
	// Under deadline pressure, the deadline-aware policy must satisfy at
	// least as many deadlines as FIFO — the reason ElasticFlow uses it.
	_, _, vt := profiles(t)
	jobs, err := trace.Generate(2, trace.DefaultOptions(128))
	if err != nil {
		t.Fatal(err)
	}
	edf := runPolicy(t, EDF, jobs, vt)
	fifo := runPolicy(t, FIFO, jobs, vt)
	if edf.DeadlineSatisfactoryRatio < fifo.DeadlineSatisfactoryRatio {
		t.Fatalf("EDF ratio %.3f below FIFO %.3f", edf.DeadlineSatisfactoryRatio, fifo.DeadlineSatisfactoryRatio)
	}
}

func TestSRTFImprovesJCTOverFIFO(t *testing.T) {
	// Classic scheduling result: shortest-remaining-first minimizes mean
	// completion time relative to FIFO under contention.
	_, _, vt := profiles(t)
	opts := trace.DefaultOptions(48)
	opts.WithDeadlines = false
	jobs, err := trace.Generate(3, opts)
	if err != nil {
		t.Fatal(err)
	}
	srtf := runPolicy(t, SRTF, jobs, vt)
	fifo := runPolicy(t, FIFO, jobs, vt)
	if srtf.AvgJCT > fifo.AvgJCT*1.001 {
		t.Fatalf("SRTF JCT %.0f above FIFO %.0f", srtf.AvgJCT, fifo.AvgJCT)
	}
}

func TestAllPoliciesCompleteAllJobsWhenLenient(t *testing.T) {
	_, _, vt := profiles(t)
	opts := trace.DefaultOptions(16)
	opts.WithDeadlines = false
	jobs, err := trace.Generate(4, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []Policy{EDF, FIFO, SRTF} {
		out := runPolicy(t, pol, jobs, vt)
		for _, r := range out.Jobs {
			if !r.Completed {
				t.Fatalf("%v: job %d never completed", pol, r.Job.ID)
			}
		}
	}
}
