package cluster

import (
	"fmt"
	"math"
	"sort"

	"vtrain/internal/trace"
)

// JobResult records one job's fate.
type JobResult struct {
	Job trace.Job
	// Admitted is false when admission control rejected the job because
	// its deadline was already infeasible.
	Admitted bool
	// Completed reports whether the job ran to completion.
	Completed bool
	// CompletionTime is the absolute finish time (valid if Completed).
	CompletionTime float64
	// Deadline is the absolute deadline (0 = none).
	Deadline float64
	// DeadlineMet reports deadline satisfaction (only meaningful for
	// jobs with deadlines).
	DeadlineMet bool
}

// Outcome aggregates one simulated trace.
type Outcome struct {
	Jobs []JobResult
	// DeadlineSatisfactoryRatio is the fraction of deadline-carrying
	// jobs that met their deadlines (Fig. 12's metric).
	DeadlineSatisfactoryRatio float64
	// AvgJCT is the mean completion-minus-arrival over completed jobs
	// (Fig. 13's metric).
	AvgJCT float64
	// Makespan is the time until every admitted job finished (Fig. 14's
	// metric).
	Makespan float64
	// GPUSeconds is the integral of allocated GPUs over time, for
	// utilization accounting.
	GPUSeconds float64
}

// Policy orders jobs for the minimum-grant phase of each scheduling
// instant. ElasticFlow's deadline-aware policy is EDF; FIFO and SRTF are
// the classic baselines from the multi-tenant scheduling literature the
// paper surveys.
type Policy int

const (
	// EDF grants earliest-deadline-first (deadline-free jobs last).
	EDF Policy = iota
	// FIFO grants in arrival order.
	FIFO
	// SRTF grants shortest-remaining-work-first (by remaining seconds
	// at the job's largest feasible allocation).
	SRTF
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case EDF:
		return "EDF"
	case FIFO:
		return "FIFO"
	case SRTF:
		return "SRTF"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Scheduler is the ElasticFlow-style deadline-aware elastic scheduler. The
// identical algorithm serves both systems; only the profiles differ.
type Scheduler struct {
	TotalGPUs int
	Profiles  *ProfileSet
	// Policy orders the minimum-grant phase (EDF by default).
	Policy Policy
	// ReferenceAllocation sizes each job's "duration" for converting
	// slack factors into absolute deadlines (a mid-size grant).
	ReferenceAllocation int
}

// NewScheduler builds a scheduler over a profile set.
func NewScheduler(totalGPUs int, profiles *ProfileSet) *Scheduler {
	return &Scheduler{TotalGPUs: totalGPUs, Profiles: profiles, ReferenceAllocation: 128}
}

// jobState tracks a running job.
type jobState struct {
	job       trace.Job
	profile   *Profile
	remaining float64 // iterations left
	deadline  float64 // absolute; 0 = none
	alloc     int     // current GPU grant
	result    *JobResult
}

// referenceDuration is the job's exclusive-run duration at the reference
// allocation (clamped to the profile's feasible sizes), used for deadlines.
func (s *Scheduler) referenceDuration(p *Profile, iters uint64) float64 {
	sizes := p.Sizes()
	g := sizes[0]
	for _, c := range sizes {
		if c <= s.ReferenceAllocation {
			g = c
		}
	}
	return float64(iters) * p.IterTime[g]
}

// minAllocFor returns the smallest allocation that finishes work iterations
// within slack seconds, or 0 if even the largest feasible grant cannot.
func minAllocFor(p *Profile, work, slack float64) int {
	for _, g := range p.Sizes() {
		if slack <= 0 {
			return 0
		}
		if work/p.Rate(g) <= slack {
			return g
		}
	}
	return 0
}

// Run simulates the full lifetime of a trace and reports the outcome.
func (s *Scheduler) Run(jobs []trace.Job) (Outcome, error) {
	results := make([]JobResult, len(jobs))
	states := make([]*jobState, 0, len(jobs))

	pending := make([]trace.Job, len(jobs))
	copy(pending, jobs)
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].Arrival < pending[j].Arrival })

	now := 0.0
	next := 0
	out := Outcome{}
	var firstArrival float64
	if len(pending) > 0 {
		firstArrival = pending[0].Arrival
	}

	// activeBuf is reused across scheduling instants: the event loop asks
	// for the active set twice per event, and traces run tens of
	// thousands of events.
	var activeBuf []*jobState
	active := func() []*jobState {
		activeBuf = activeBuf[:0]
		for _, st := range states {
			if st.remaining > 0 {
				activeBuf = append(activeBuf, st)
			}
		}
		return activeBuf
	}

	for {
		// Admit arrivals at the current time.
		for next < len(pending) && pending[next].Arrival <= now+1e-9 {
			j := pending[next]
			next++
			prof, err := s.Profiles.For(j.Model)
			if err != nil {
				return Outcome{}, err
			}
			res := &results[j.ID]
			*res = JobResult{Job: j}
			st := &jobState{job: j, profile: prof, remaining: float64(j.Iterations), result: res}
			if j.SlackFactor > 0 {
				st.deadline = j.Arrival + j.SlackFactor*s.referenceDuration(prof, j.Iterations)
				res.Deadline = st.deadline
			}
			// ElasticFlow admission control: reject jobs whose
			// deadline cannot be met even with the largest grant on
			// an empty cluster.
			if st.deadline > 0 && minAllocFor(prof, st.remaining, st.deadline-now) == 0 {
				res.Admitted = false
				continue
			}
			res.Admitted = true
			states = append(states, st)
		}

		// Reallocate: EDF minimum grants, then spare GPUs by marginal
		// throughput gain.
		s.reallocate(active(), now)

		// Advance to the next event: arrival or earliest completion.
		tArrival := math.Inf(1)
		if next < len(pending) {
			tArrival = pending[next].Arrival
		}
		tComplete := math.Inf(1)
		for _, st := range active() {
			if st.alloc == 0 {
				continue
			}
			eta := now + st.remaining/st.profile.Rate(st.alloc)
			if eta < tComplete {
				tComplete = eta
			}
		}
		tNext := math.Min(tArrival, tComplete)
		if math.IsInf(tNext, 1) {
			break // no arrivals left, nothing allocatable
		}
		dt := tNext - now
		if dt < 0 {
			dt = 0
		}
		// Progress every allocated job by dt.
		for _, st := range active() {
			if st.alloc == 0 {
				continue
			}
			out.GPUSeconds += float64(st.alloc) * dt
			st.remaining -= dt * st.profile.Rate(st.alloc)
			if st.remaining <= 1e-6 {
				st.remaining = 0
				st.result.Completed = true
				st.result.CompletionTime = tNext
				if st.deadline > 0 {
					st.result.DeadlineMet = tNext <= st.deadline+1e-6
				}
				st.alloc = 0
			}
		}
		now = tNext
	}

	// Unfinished jobs (starved of GPUs) remain incomplete.
	out.Jobs = results
	s.aggregate(&out, firstArrival)
	return out, nil
}

// remainingSeconds estimates a job's remaining run time at its largest
// feasible allocation (the SRTF key).
func remainingSeconds(st *jobState) float64 {
	sizes := st.profile.Sizes()
	best := sizes[len(sizes)-1]
	return st.remaining / st.profile.Rate(best)
}

// reallocate implements the elastic policy at one scheduling instant.
func (s *Scheduler) reallocate(active []*jobState, now float64) {
	switch s.Policy {
	case FIFO:
		sort.SliceStable(active, func(i, j int) bool {
			return active[i].job.Arrival < active[j].job.Arrival
		})
	case SRTF:
		sort.SliceStable(active, func(i, j int) bool {
			return remainingSeconds(active[i]) < remainingSeconds(active[j])
		})
	default:
		// EDF: earliest deadline first; deadline-free jobs last in
		// arrival order.
		sort.SliceStable(active, func(i, j int) bool {
			di, dj := active[i].deadline, active[j].deadline
			switch {
			case di > 0 && dj > 0:
				return di < dj
			case di > 0:
				return true
			case dj > 0:
				return false
			default:
				return active[i].job.Arrival < active[j].job.Arrival
			}
		})
	}

	free := s.TotalGPUs
	for _, st := range active {
		st.alloc = 0
	}
	// Phase 1: minimum grants.
	for _, st := range active {
		var want int
		if st.deadline > 0 {
			want = minAllocFor(st.profile, st.remaining, st.deadline-now)
			if want == 0 {
				// Deadline already blown: ElasticFlow terminates
				// such jobs; grant nothing and let it starve. It
				// still counts as a violation in the metrics.
				continue
			}
		} else {
			want = st.profile.MinSize()
		}
		if want <= free {
			st.alloc = want
			free -= want
		}
	}
	// Phase 2: distribute spare GPUs by marginal iterations/sec per GPU.
	for {
		best := -1
		bestGain := 0.0
		var bestNext int
		for i, st := range active {
			if st.alloc == 0 && st.deadline > 0 {
				continue // terminated or unadmitted at this instant
			}
			nxt := nextSize(st.profile, st.alloc)
			if nxt == 0 || nxt-st.alloc > free {
				continue
			}
			gain := (st.profile.Rate(nxt) - st.profile.Rate(st.alloc)) / float64(nxt-st.alloc)
			if gain > bestGain {
				bestGain, best, bestNext = gain, i, nxt
			}
		}
		if best < 0 {
			return
		}
		free -= bestNext - active[best].alloc
		active[best].alloc = bestNext
	}
}

// nextSize returns the next larger feasible allocation after cur (0 if cur
// is already the largest).
func nextSize(p *Profile, cur int) int {
	for _, g := range p.Sizes() {
		if g > cur {
			return g
		}
	}
	return 0
}

func (s *Scheduler) aggregate(out *Outcome, firstArrival float64) {
	deadlineJobs, met := 0, 0
	completed := 0
	var jctSum, lastFinish float64
	for _, r := range out.Jobs {
		if r.Deadline > 0 {
			deadlineJobs++
			if r.Completed && r.DeadlineMet {
				met++
			}
		}
		if r.Completed {
			completed++
			jctSum += r.CompletionTime - r.Job.Arrival
			if r.CompletionTime > lastFinish {
				lastFinish = r.CompletionTime
			}
		}
	}
	if deadlineJobs > 0 {
		out.DeadlineSatisfactoryRatio = float64(met) / float64(deadlineJobs)
	}
	if completed > 0 {
		out.AvgJCT = jctSum / float64(completed)
		out.Makespan = lastFinish - firstArrival
	}
}

// Validate sanity-checks the scheduler configuration.
func (s *Scheduler) Validate() error {
	if s.TotalGPUs < 8 {
		return fmt.Errorf("cluster: need at least one node of GPUs, got %d", s.TotalGPUs)
	}
	if s.Profiles == nil {
		return fmt.Errorf("cluster: scheduler needs profiles")
	}
	return nil
}
