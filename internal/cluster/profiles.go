// Package cluster implements case study 2 (Section V-B): multi-tenant GPU
// cluster scheduling of concurrent LLM training jobs with ElasticFlow-style
// deadline-aware elastic resource scaling.
//
// The scheduler is identical for both compared systems; what differs is the
// throughput profile it consults:
//
//   - Baseline (ElasticFlow): each model keeps the minimum tensor/pipeline
//     degree it needs to fit memory and scales only the data-parallel
//     dimension — the restriction the paper identifies as the source of
//     ElasticFlow's sub-optimal decisions;
//   - VTrainEnabled: for every allocation size, the profile holds the best
//     (t, d, p, m) plan found by vTrain's full design-space exploration,
//     guaranteed at least as fast as the baseline.
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"vtrain/internal/core"
	"vtrain/internal/dse"
	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/parallel"
	"vtrain/internal/resilience"
)

// System selects how job throughput profiles are obtained.
type System int

const (
	// Baseline is ElasticFlow's data-parallel-only scaling.
	Baseline System = iota
	// VTrainEnabled uses vTrain's optimal parallelization per size.
	VTrainEnabled
)

// String implements fmt.Stringer.
func (s System) String() string {
	if s == Baseline {
		return "ElasticFlow"
	}
	return "vTrain"
}

// Allocations are the GPU grant sizes the scheduler works with: powers of
// two from one node (8 GPUs) to the full 1,024-GPU cluster, matching
// ElasticFlow's power-of-two allocation policy.
func Allocations(totalGPUs int) []int {
	var out []int
	for g := 8; g <= totalGPUs; g *= 2 {
		out = append(out, g)
	}
	return out
}

// minimalTP returns the baseline's fixed (tensor, pipeline) degrees for a
// model: the smallest memory-feasible footprint, e.g. (8, 2) for the 39.1B
// model as stated in the paper.
func minimalTP(m model.Config, sim *core.Simulator) (t, p int, err error) {
	gpu := sim.Cluster().Node.GPU
	for _, tp := range [][2]int{{1, 1}, {2, 1}, {4, 1}, {8, 1}, {8, 2}, {8, 4}, {8, 8}, {8, 16}} {
		plan := parallel.Plan{
			Tensor: tp[0], Data: 1, Pipeline: tp[1],
			MicroBatch: 1, GlobalBatch: 1, Recompute: true,
		}
		if plan.PeakMemoryBytes(m) <= gpu.MemCapacity {
			return tp[0], tp[1], nil
		}
	}
	return 0, 0, fmt.Errorf("cluster: %s does not fit any baseline footprint", m.Name)
}

// Profile maps allocation size to simulated iteration time for one model.
type Profile struct {
	// Model and GlobalBatch identify the job class.
	Model       model.Config
	GlobalBatch int
	// IterTime[g] is the single-iteration time with g GPUs; only
	// feasible allocations appear.
	IterTime map[int]float64
	// Plans records the plan behind each allocation, for reports.
	Plans map[int]parallel.Plan
}

// Sizes returns the feasible allocation sizes in ascending order.
func (p *Profile) Sizes() []int {
	out := make([]int, 0, len(p.IterTime))
	for g := range p.IterTime {
		out = append(out, g)
	}
	sort.Ints(out)
	return out
}

// Rate returns iterations per second at allocation g (zero if infeasible).
func (p *Profile) Rate(g int) float64 {
	t, ok := p.IterTime[g]
	if !ok || t <= 0 {
		return 0
	}
	return 1 / t
}

// MinSize returns the smallest feasible allocation, or 0 if none.
func (p *Profile) MinSize() int {
	sizes := p.Sizes()
	if len(sizes) == 0 {
		return 0
	}
	return sizes[0]
}

// BuildProfile computes the offline throughput profile of one model class
// under the given system, across the allocation sizes. Profile building is
// where the simulator's caches earn their keep: the VTrainEnabled sweeps
// revisit overlapping (model, plan) points across allocation sizes (report
// cache), and the many plans of each sweep share a handful of structural
// shapes (shape-keyed lowering cache), so only duration binding and replay
// scale with the sweep size.
func BuildProfile(sim *core.Simulator, system System, m model.Config, globalBatch int, allocs []int) (*Profile, error) {
	prof := &Profile{
		Model:       m,
		GlobalBatch: globalBatch,
		IterTime:    make(map[int]float64),
		Plans:       make(map[int]parallel.Plan),
	}
	switch system {
	case Baseline:
		t, p, err := minimalTP(m, sim)
		if err != nil {
			return nil, err
		}
		for _, g := range allocs {
			if g%(t*p) != 0 {
				continue
			}
			d := g / (t * p)
			// ElasticFlow scales d and keeps the micro-batch at the
			// largest memory-feasible power of two.
			for _, mb := range []int{8, 4, 2, 1} {
				plan := parallel.Plan{
					Tensor: t, Data: d, Pipeline: p,
					MicroBatch: mb, GlobalBatch: globalBatch,
					GradientBuckets: 2, Recompute: true,
				}
				if globalBatch%(d*mb) != 0 {
					continue
				}
				if err := plan.Validate(m, sim.Cluster()); err != nil {
					continue
				}
				if !plan.FitsMemory(m, sim.Cluster().Node.GPU) {
					continue
				}
				rep, err := sim.Simulate(m, plan)
				if err != nil {
					return nil, err
				}
				prof.IterTime[g] = rep.IterTime
				prof.Plans[g] = plan
				break
			}
		}
	case VTrainEnabled:
		for _, g := range allocs {
			space := dse.DefaultSpace(m, globalBatch)
			space.ExactGPUs = g
			// Offline profiling across many allocation sizes: cap the
			// pathological tiny-d plans and the cross-node TP degree
			// that never wins at this scale.
			space.TensorWidths = []int{1, 2, 4, 8}
			space.MaxMicroBatches = 256
			// Stream the sweep and keep only the fastest plan; the
			// simulator's plan-level cache dedupes configurations that
			// recur across allocation sizes, systems, and job classes.
			best, found, err := dse.ExploreBest(sim, m, space)
			if err != nil || !found {
				continue // no feasible plan at this size
			}
			prof.IterTime[g] = best.Report.IterTime
			prof.Plans[g] = best.Plan
		}
	default:
		return nil, fmt.Errorf("cluster: unknown system %d", system)
	}
	if len(prof.IterTime) == 0 {
		return nil, fmt.Errorf("cluster: %s has no feasible allocation under %v", m.Name, system)
	}
	return prof, nil
}

// ProfileSet holds the offline profiles for every job class.
type ProfileSet struct {
	System   System
	profiles map[string]*Profile
}

// BuildProfiles profiles the Table III model zoo for a system.
func BuildProfiles(sim *core.Simulator, system System, totalGPUs int) (*ProfileSet, error) {
	allocs := Allocations(totalGPUs)
	set := &ProfileSet{System: system, profiles: make(map[string]*Profile)}
	for _, row := range model.TableIII() {
		p, err := BuildProfile(sim, system, row.Config, row.Batch, allocs)
		if err != nil {
			return nil, err
		}
		set.profiles[row.Config.Name] = p
	}
	return set, nil
}

// WithResilience returns a derated copy of the profile set: every
// allocation's iteration time is divided by the goodput fraction the
// resilience model predicts for that model at that GPU count on cluster c
// (failures scale with the allocation, checkpoint size with the model), so
// the scheduler's admission, deadline, and allocation decisions account
// for failures and checkpoint-restart overhead. Allocations whose goodput
// is non-positive — the job would fail faster than it can checkpoint — are
// dropped like memory-infeasible ones; a model class that loses every
// allocation is an error. The receiver is not modified.
func (s *ProfileSet) WithResilience(c hw.Cluster, o resilience.Options) (*ProfileSet, error) {
	out := &ProfileSet{System: s.System, profiles: make(map[string]*Profile, len(s.profiles))}
	for name, p := range s.profiles {
		np := &Profile{
			Model:       p.Model,
			GlobalBatch: p.GlobalBatch,
			IterTime:    make(map[int]float64, len(p.IterTime)),
			Plans:       make(map[int]parallel.Plan, len(p.Plans)),
		}
		for g, it := range p.IterTime {
			mod, err := resilience.For(p.Model, c, g, o)
			if errors.Is(err, resilience.ErrUnreliable) {
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("cluster: derating %s at %d GPUs: %w", name, g, err)
			}
			np.IterTime[g] = it / mod.Goodput
			np.Plans[g] = p.Plans[g]
		}
		if len(np.IterTime) == 0 {
			return nil, fmt.Errorf("cluster: %s has no allocation with positive goodput on this cluster", name)
		}
		out.profiles[name] = np
	}
	return out, nil
}

// For returns the profile of a model class.
func (s *ProfileSet) For(m model.Config) (*Profile, error) {
	p, ok := s.profiles[m.Name]
	if !ok {
		return nil, fmt.Errorf("cluster: no profile for model %q", m.Name)
	}
	return p, nil
}
