package cluster

import (
	"math"
	"sync"
	"testing"

	"vtrain/internal/core"
	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/resilience"
	"vtrain/internal/taskgraph"
	"vtrain/internal/trace"
)

// Profiles are expensive to build; share them across tests.
var (
	profOnce sync.Once
	profSim  *core.Simulator
	profBase *ProfileSet
	profVT   *ProfileSet
	profErr  error
)

func profiles(t *testing.T) (*core.Simulator, *ProfileSet, *ProfileSet) {
	t.Helper()
	profOnce.Do(func() {
		profSim, profErr = core.New(hw.PaperCluster(128), core.WithFidelity(taskgraph.OperatorLevel))
		if profErr != nil {
			return
		}
		profBase, profErr = BuildProfiles(profSim, Baseline, 1024)
		if profErr != nil {
			return
		}
		profVT, profErr = BuildProfiles(profSim, VTrainEnabled, 1024)
	})
	if profErr != nil {
		t.Fatal(profErr)
	}
	return profSim, profBase, profVT
}

func TestAllocations(t *testing.T) {
	got := Allocations(1024)
	want := []int{8, 16, 32, 64, 128, 256, 512, 1024}
	if len(got) != len(want) {
		t.Fatalf("Allocations = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Allocations = %v, want %v", got, want)
		}
	}
}

func TestMinimalTPMatchesPaper(t *testing.T) {
	sim, _, _ := profiles(t)
	// The paper states the baseline parallelizes the 39.1B model with
	// 8-way tensor and 2-way pipeline parallelism.
	tp, pp, err := minimalTP(model.Megatron39_1B(), sim)
	if err != nil {
		t.Fatal(err)
	}
	if tp != 8 || pp != 2 {
		t.Fatalf("39.1B minimal footprint = (%d, %d), want (8, 2)", tp, pp)
	}
}

func TestProfilesMonotoneInGPUs(t *testing.T) {
	_, base, vt := profiles(t)
	for _, set := range []*ProfileSet{base, vt} {
		for _, row := range model.TableIII() {
			p, err := set.For(row.Config)
			if err != nil {
				t.Fatal(err)
			}
			sizes := p.Sizes()
			if len(sizes) == 0 {
				t.Fatalf("%v %s: empty profile", set.System, row.Config.Name)
			}
			for i := 1; i < len(sizes); i++ {
				if p.IterTime[sizes[i]] >= p.IterTime[sizes[i-1]] {
					t.Errorf("%v %s: more GPUs slower (%d: %.3f vs %d: %.3f)",
						set.System, row.Config.Name,
						sizes[i], p.IterTime[sizes[i]], sizes[i-1], p.IterTime[sizes[i-1]])
				}
			}
		}
	}
}

func TestVTrainProfileDominatesBaseline(t *testing.T) {
	// vTrain's per-size plan search can never be slower than the
	// DP-only baseline at any allocation both can use — the mechanism
	// behind every Fig. 12-14 improvement.
	_, base, vt := profiles(t)
	for _, row := range model.TableIII() {
		pb, err := base.For(row.Config)
		if err != nil {
			t.Fatal(err)
		}
		pv, err := vt.For(row.Config)
		if err != nil {
			t.Fatal(err)
		}
		for g, tb := range pb.IterTime {
			tv, ok := pv.IterTime[g]
			if !ok {
				t.Errorf("%s: vTrain misses allocation %d the baseline supports", row.Config.Name, g)
				continue
			}
			if tv > tb*1.0001 {
				t.Errorf("%s at %d GPUs: vTrain %.3f slower than baseline %.3f", row.Config.Name, g, tv, tb)
			}
		}
		// And vTrain can use small allocations the baseline cannot
		// (the 81.2B model needs 32 baseline GPUs minimum).
		if pv.MinSize() > pb.MinSize() {
			t.Errorf("%s: vTrain min %d above baseline min %d", row.Config.Name, pv.MinSize(), pb.MinSize())
		}
	}
}

func TestProfileSetUnknownModel(t *testing.T) {
	_, base, _ := profiles(t)
	if _, err := base.For(model.GPT3175B()); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestSchedulerDeadlineRatios(t *testing.T) {
	// Fig. 12: the vTrain-enabled scheduler satisfies at least as many
	// deadlines as ElasticFlow on every trace, and the 128-job traces
	// violate more deadlines than the 64-job traces.
	_, base, vt := profiles(t)
	for traceID := 1; traceID <= 3; traceID++ {
		ratios := map[string]map[int]float64{"base": {}, "vt": {}}
		for _, n := range []int{64, 128} {
			jobs, err := trace.Generate(traceID, trace.DefaultOptions(n))
			if err != nil {
				t.Fatal(err)
			}
			ob, err := NewScheduler(1024, base).Run(jobs)
			if err != nil {
				t.Fatal(err)
			}
			ov, err := NewScheduler(1024, vt).Run(jobs)
			if err != nil {
				t.Fatal(err)
			}
			if ov.DeadlineSatisfactoryRatio < ob.DeadlineSatisfactoryRatio {
				t.Errorf("trace %d (%d jobs): vTrain ratio %.3f below baseline %.3f",
					traceID, n, ov.DeadlineSatisfactoryRatio, ob.DeadlineSatisfactoryRatio)
			}
			ratios["base"][n] = ob.DeadlineSatisfactoryRatio
			ratios["vt"][n] = ov.DeadlineSatisfactoryRatio
		}
		if ratios["base"][128] > ratios["base"][64] {
			t.Errorf("trace %d: baseline handled 128 jobs better than 64 — load model broken", traceID)
		}
	}
}

func TestSchedulerJCT(t *testing.T) {
	// Fig. 13: deadline-free 32-job traces; vTrain reduces average JCT.
	_, base, vt := profiles(t)
	opts := trace.DefaultOptions(32)
	opts.WithDeadlines = false
	for traceID := 1; traceID <= 3; traceID++ {
		jobs, err := trace.Generate(traceID, opts)
		if err != nil {
			t.Fatal(err)
		}
		ob, err := NewScheduler(1024, base).Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		ov, err := NewScheduler(1024, vt).Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		if ov.AvgJCT > ob.AvgJCT {
			t.Errorf("trace %d: vTrain JCT %.0f above baseline %.0f", traceID, ov.AvgJCT, ob.AvgJCT)
		}
		// All jobs complete in the lenient deadline-free setting.
		for _, r := range ov.Jobs {
			if !r.Completed {
				t.Errorf("trace %d: job %d never completed", traceID, r.Job.ID)
			}
		}
	}
}

func TestSchedulerMakespan(t *testing.T) {
	// Fig. 14: simultaneous submissions; vTrain shortens the makespan
	// and the gap tends to grow with the job count.
	_, base, vt := profiles(t)
	for _, n := range []int{16, 48} {
		jobs, err := trace.Generate(5, trace.Options{Jobs: n, MinIterations: 500, MaxIterations: 5000})
		if err != nil {
			t.Fatal(err)
		}
		ob, err := NewScheduler(1024, base).Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		ov, err := NewScheduler(1024, vt).Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		if ov.Makespan > ob.Makespan {
			t.Errorf("%d jobs: vTrain makespan %.0f above baseline %.0f", n, ov.Makespan, ob.Makespan)
		}
	}
}

func TestSchedulerNeverOversubscribes(t *testing.T) {
	// GPU-seconds must not exceed cluster capacity times the horizon.
	_, _, vt := profiles(t)
	jobs, err := trace.Generate(2, trace.DefaultOptions(64))
	if err != nil {
		t.Fatal(err)
	}
	out, err := NewScheduler(1024, vt).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	var horizon float64
	for _, r := range out.Jobs {
		if r.Completed && r.CompletionTime > horizon {
			horizon = r.CompletionTime
		}
	}
	if out.GPUSeconds > 1024*horizon*1.0001 {
		t.Fatalf("GPU-seconds %.0f exceed capacity %.0f", out.GPUSeconds, 1024*horizon)
	}
}

func TestSchedulerDeterministic(t *testing.T) {
	_, base, _ := profiles(t)
	jobs, _ := trace.Generate(4, trace.DefaultOptions(64))
	a, err := NewScheduler(1024, base).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewScheduler(1024, base).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if a.DeadlineSatisfactoryRatio != b.DeadlineSatisfactoryRatio || a.AvgJCT != b.AvgJCT || a.Makespan != b.Makespan {
		t.Fatal("scheduler is not deterministic")
	}
}

func TestSchedulerValidate(t *testing.T) {
	if err := (&Scheduler{TotalGPUs: 4}).Validate(); err == nil {
		t.Fatal("sub-node cluster must be rejected")
	}
	if err := (&Scheduler{TotalGPUs: 1024}).Validate(); err == nil {
		t.Fatal("missing profiles must be rejected")
	}
	_, base, _ := profiles(t)
	if err := NewScheduler(1024, base).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSystemString(t *testing.T) {
	if Baseline.String() != "ElasticFlow" || VTrainEnabled.String() != "vTrain" {
		t.Fatal("system names changed")
	}
}

func TestInfeasibleDeadlineRejectedAtAdmission(t *testing.T) {
	// A job whose deadline is impossible even with the whole cluster
	// must be rejected by admission control and counted as a violation.
	_, base, _ := profiles(t)
	jobs, _ := trace.Generate(6, trace.DefaultOptions(4))
	jobs[0].SlackFactor = 1e-9 // hopeless deadline
	out, err := NewScheduler(1024, base).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	r := out.Jobs[jobs[0].ID]
	if r.Admitted {
		t.Fatal("hopeless job should be rejected at admission")
	}
	if out.DeadlineSatisfactoryRatio >= 1 {
		t.Fatal("rejected job must count as a deadline violation")
	}
}

// TestProfilesWithResilience pins the scheduler-facing derating: every
// allocation's iteration time grows by exactly 1/goodput, larger
// allocations are derated harder (more GPUs, more failures), the original
// set is untouched, and missing failure data errors instead of silently
// scheduling against ideal profiles.
func TestProfilesWithResilience(t *testing.T) {
	sim, base, _ := profiles(t)
	cl := sim.Cluster()
	der, err := base.WithResilience(cl, resilience.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range model.TableIII() {
		orig, err := base.For(row.Config)
		if err != nil {
			t.Fatal(err)
		}
		d, err := der.For(row.Config)
		if err != nil {
			t.Fatal(err)
		}
		prevRatio := 1.0
		for _, g := range orig.Sizes() {
			mod, err := resilience.For(row.Config, cl, g, resilience.Options{})
			if err != nil {
				t.Fatalf("%s at %d GPUs: %v", row.Config.Name, g, err)
			}
			want := orig.IterTime[g] / mod.Goodput
			if got := d.IterTime[g]; math.Abs(got/want-1) > 1e-12 {
				t.Errorf("%s at %d GPUs: derated %v, want %v", row.Config.Name, g, got, want)
			}
			ratio := d.IterTime[g] / orig.IterTime[g]
			if ratio <= prevRatio-1e-12 {
				t.Errorf("%s: derating ratio shrank at %d GPUs (%v -> %v); failures must grow with allocation",
					row.Config.Name, g, prevRatio, ratio)
			}
			prevRatio = ratio
			if d.Plans[g] != orig.Plans[g] {
				t.Errorf("%s at %d GPUs: derating changed the plan", row.Config.Name, g)
			}
		}
	}

	// A cluster with no MTBF data cannot be derated silently.
	bare := cl
	bare.Node.GPU.MTBF = 0
	if _, err := base.WithResilience(bare, resilience.Options{}); err == nil {
		t.Error("derating without failure data accepted")
	}

	// An absurdly failure-prone environment drops every allocation and
	// says so.
	if _, err := base.WithResilience(cl, resilience.Options{MTBF: 1, WriteBandwidth: 1}); err == nil {
		t.Error("zero-goodput derating should error")
	}
}
