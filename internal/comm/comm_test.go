package comm

import (
	"math"
	"testing"
	"testing/quick"

	"vtrain/internal/hw"
)

func TestNVSwitchFabricBasics(t *testing.T) {
	f := NVSwitchFabric{Node: hw.DGXA100()}
	if got := f.AllReduce(1<<20, 1); got != 0 {
		t.Fatalf("single-GPU All-Reduce = %g, want 0", got)
	}
	small := f.AllReduce(1<<20, 8)
	big := f.AllReduce(1<<30, 8)
	if big <= small {
		t.Fatal("All-Reduce latency must grow with size")
	}
	// Large transfers approach the 2(n-1)/n bandwidth bound.
	bound := float64(1<<30) / 8 * 14 / hw.DGXA100().NVLinkBandwidth
	if big < bound {
		t.Fatalf("1 GiB All-Reduce %.4g below physical bound %.4g", big, bound)
	}
	if big > 1.2*bound {
		t.Fatalf("1 GiB All-Reduce %.4g too far above bound %.4g", big, bound)
	}
}

func TestProfileSizesSpanPaperRange(t *testing.T) {
	sizes := ProfileSizes()
	if sizes[0] != 1<<20 || sizes[len(sizes)-1] != 1<<30 {
		t.Fatalf("profile sizes must span 1 MB..1024 MB, got %v..%v", sizes[0], sizes[len(sizes)-1])
	}
	if len(sizes) != 11 {
		t.Fatalf("want 11 power-of-two sizes, got %d", len(sizes))
	}
}

func TestProfileTableInterpolation(t *testing.T) {
	fabric := NVSwitchFabric{Node: hw.DGXA100()}
	table := Profile(fabric, []int{2, 4, 8})

	// Exact profile points round-trip.
	for _, s := range ProfileSizes() {
		got, err := table.Lookup(s, 8)
		if err != nil {
			t.Fatal(err)
		}
		want := fabric.AllReduce(s, 8)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("Lookup(%g) = %g, want %g", s, got, want)
		}
	}

	// Midpoints interpolate between neighbors.
	mid, err := table.Lookup(1.5*(1<<20), 8)
	if err != nil {
		t.Fatal(err)
	}
	lo := fabric.AllReduce(1<<20, 8)
	hi := fabric.AllReduce(2<<20, 8)
	if mid <= lo || mid >= hi {
		t.Fatalf("interpolated %g not strictly between %g and %g", mid, lo, hi)
	}

	// Below-range and above-range sizes extrapolate without going
	// negative.
	under, _ := table.Lookup(1<<10, 8)
	if under < 0 {
		t.Fatalf("extrapolation below range went negative: %g", under)
	}
	over, _ := table.Lookup(4<<30, 8)
	if over <= hi {
		t.Fatalf("extrapolation above range should exceed in-range latency, got %g", over)
	}
}

func TestProfileTableUnknownCount(t *testing.T) {
	table := Profile(NVSwitchFabric{Node: hw.DGXA100()}, []int{2, 4, 8})
	if _, err := table.Lookup(1<<20, 6); err == nil {
		t.Fatal("lookup with unprofiled GPU count must error")
	}
	if got := table.Counts(); len(got) != 3 || got[0] != 2 || got[2] != 8 {
		t.Fatalf("Counts() = %v, want [2 4 8]", got)
	}
}

func TestZeroBytesLookup(t *testing.T) {
	table := Profile(NVSwitchFabric{Node: hw.DGXA100()}, []int{8})
	got, err := table.Lookup(0, 8)
	if err != nil || got != 0 {
		t.Fatalf("Lookup(0) = %g, %v; want 0, nil", got, err)
	}
}

func TestEquationOne(t *testing.T) {
	// Eq. 1: t = S/B * 2(n-1)/n with B = alpha * Bmax.
	c := hw.PaperCluster(64)
	m := NewModel(c)
	s := 512.0 * (1 << 20)
	n := 64
	want := s/(c.Alpha*c.InterNodeBandwidth)*2*float64(n-1)/float64(n) + c.InterNodeLatency
	if got := m.AllReduceInter(s, n); math.Abs(got-want) > 1e-12 {
		t.Fatalf("AllReduceInter = %g, want %g", got, want)
	}
	if got := m.AllReduceInter(s, 1); got != 0 {
		t.Fatalf("single participant inter All-Reduce = %g, want 0", got)
	}
}

func TestAlphaScalesInterLatency(t *testing.T) {
	// Halving alpha must roughly double the transfer-dominated latency.
	c := hw.PaperCluster(64)
	full := NewModel(c)
	c2 := c
	c2.Alpha = 0.5
	half := NewModel(c2)
	s := 1024.0 * (1 << 20)
	r := half.AllReduceInter(s, 16) / full.AllReduceInter(s, 16)
	if r < 1.9 || r > 2.1 {
		t.Fatalf("alpha 0.5 latency ratio = %.3f, want ~2", r)
	}
}

func TestModelDispatch(t *testing.T) {
	m := NewModel(hw.PaperCluster(64))
	s := 64.0 * (1 << 20)
	intra := m.AllReduce(s, 8, true)
	inter := m.AllReduce(s, 8, false)
	if intra >= inter {
		t.Fatalf("NVLink All-Reduce (%.4g) should beat InfiniBand (%.4g) at 64 MB", intra, inter)
	}
}

func TestModelFallbackForUnprofiledCount(t *testing.T) {
	m := NewModel(hw.PaperCluster(64))
	// 6-GPU collectives are not in the power-of-two profile; the model
	// must fall back to the fabric rather than fail.
	got := m.AllReduceIntra(64<<20, 6)
	if got <= 0 {
		t.Fatalf("fallback latency = %g, want > 0", got)
	}
}

func TestSendRecv(t *testing.T) {
	m := NewModel(hw.PaperCluster(64))
	bytes := 8.0 * (1 << 20)
	intra := m.SendRecv(bytes, true)
	inter := m.SendRecv(bytes, false)
	if intra >= inter {
		t.Fatal("NVLink P2P should beat inter-node P2P")
	}
	if inter <= 0 || intra <= 0 {
		t.Fatal("P2P latencies must be positive")
	}
}

func TestAllReduceMonotoneInSizeProperty(t *testing.T) {
	m := NewModel(hw.PaperCluster(64))
	f := func(mb uint8, intra bool) bool {
		s := (float64(mb%200) + 1) * (1 << 20)
		return m.AllReduce(s+1<<20, 8, intra) >= m.AllReduce(s, 8, intra)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceGrowsWithParticipants(t *testing.T) {
	m := NewModel(hw.PaperCluster(64))
	s := 256.0 * (1 << 20)
	if m.AllReduceInter(s, 64) <= m.AllReduceInter(s, 2) {
		t.Fatal("2(n-1)/n factor must grow with n")
	}
}

// TestFabricGenerationsOrdered threads the catalog's per-link NVLink tiers
// through the profiled fabric: a large intra-node All-Reduce must get
// strictly faster from NVLink 2 (DGX-1V) through NVSwitch (DGX A100) to
// NVLink 4 (DGX H100), and the inter-node model must follow the
// interconnect tiers the same way.
func TestFabricGenerationsOrdered(t *testing.T) {
	s := 256.0 * (1 << 20)
	v := NVSwitchFabric{Node: hw.DGX1V()}.AllReduce(s, 8)
	a := NVSwitchFabric{Node: hw.DGXA100()}.AllReduce(s, 8)
	h := NVSwitchFabric{Node: hw.DGXH100()}.AllReduce(s, 8)
	if !(h < a && a < v) {
		t.Fatalf("intra-node All-Reduce not ordered H100 < A100 < V100: %g, %g, %g", h, a, v)
	}

	off, err := hw.LookupOffering("a100-sxm-80gb")
	if err != nil {
		t.Fatal(err)
	}
	slow := NewModel(off.Cluster(4))
	fast := NewModel(off.WithInterconnect(hw.IBNDRx8()).Cluster(4))
	if fast.AllReduceInter(s, 32) >= slow.AllReduceInter(s, 32) {
		t.Fatal("8xNDR inter-node All-Reduce not faster than 4xHDR")
	}
	// The intra-node profile must be untouched by the interconnect tier.
	if fast.AllReduceIntra(s, 8) != slow.AllReduceIntra(s, 8) {
		t.Fatal("interconnect tier leaked into the intra-node profile")
	}
}
