package comm

import (
	"testing"

	"vtrain/internal/hw"
)

func TestCalibratedInflatesIntraNode(t *testing.T) {
	base := NewModel(hw.PaperCluster(8))
	cal := DefaultCalibration(base, 8)
	s := 64.0 * (1 << 20)
	plain := base.AllReduce(s, 8, true)
	corrected := cal.AllReduce(s, 8, true)
	if corrected <= plain {
		t.Fatal("calibrated intra-node latency must exceed the isolated profile")
	}
	// The correction is the ~1.3-1.5x contention band, not an order of
	// magnitude.
	if corrected > 2*plain {
		t.Fatalf("correction too large: %.4g vs %.4g", corrected, plain)
	}
}

func TestCalibratedInterferenceGrowsWithGroups(t *testing.T) {
	base := NewModel(hw.PaperCluster(64))
	s := 256.0 * (1 << 20)
	one := DefaultCalibration(base, 1).AllReduce(s, 64, false)
	eight := DefaultCalibration(base, 8).AllReduce(s, 64, false)
	if eight <= one {
		t.Fatal("more contending DP groups must slow inter-node collectives")
	}
}

func TestCalibratedClampsDegenerateInputs(t *testing.T) {
	base := NewModel(hw.PaperCluster(8))
	c := Calibrated{Base: base, OverlapFactor: 0.5, Groups: 0}
	s := 8.0 * (1 << 20)
	if c.AllReduce(s, 8, true) < base.AllReduce(s, 8, true) {
		t.Fatal("overlap factor below 1 must clamp, never speed up")
	}
	if got := c.AllReduce(s, 8, false); got < base.AllReduce(s, 8, false) {
		t.Fatal("zero groups must clamp to one")
	}
}

func TestCalibratedSendRecvAddsLaunch(t *testing.T) {
	base := NewModel(hw.PaperCluster(8))
	cal := DefaultCalibration(base, 4)
	s := 4.0 * (1 << 20)
	if cal.SendRecv(s, true) <= base.SendRecv(s, true) {
		t.Fatal("calibrated P2P must include launch overhead")
	}
}
