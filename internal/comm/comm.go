// Package comm models the communication primitives of 3D-parallel LLM
// training, mirroring Section III-D of the paper:
//
//   - intra-node collectives (tensor-parallel All-Reduce over
//     NVLink/NVSwitch) use a *profiled* latency table: vTrain measures NCCL
//     All-Reduce across data sizes (1 MB .. 1024 MB) and GPU counts, then
//     interpolates. Our profile is collected from a simulated NVSwitch
//     fabric (the CUDA-free substitute), but the lookup path is identical;
//   - inter-node collectives (data-parallel gradient All-Reduce) use the
//     NCCL analytical latency-bandwidth model of Eq. 1:
//     t = S/B · 2(n-1)/n with B = alpha·Bmax;
//   - pipeline Send-Receive uses a simple point-to-point transfer model;
//     as the paper notes, inter-stage latency is small and insensitive to
//     bandwidth.
//
// The model is generation-agnostic: every per-link quantity — NVLink-tier
// bandwidth and hop latency, per-HCA rate and link count — arrives through
// the hw.Node / hw.Cluster description, so the hardware catalog's V100,
// A100, and H100 fabrics (NVLink 2/NVSwitch/NVLink 4, EDR through NDR
// InfiniBand) each profile and price collectives with their own numbers
// (pinned by TestFabricGenerationsOrdered).
package comm

import (
	"fmt"
	"math"
	"sort"

	"vtrain/internal/hw"
)

// Fabric is the measured medium the profiler runs NCCL primitives on. The
// production implementation is the simulated NVSwitch fabric below;
// the testbed package wraps one with contention effects.
type Fabric interface {
	// AllReduce returns the wall-clock seconds of a ring All-Reduce of
	// size bytes across n participants.
	AllReduce(bytes float64, n int) float64
}

// NVSwitchFabric simulates NCCL ring All-Reduce over an intra-node
// NVLink/NVSwitch fabric in an isolated environment (no contention): each of
// the 2(n-1) ring steps moves S/n bytes per GPU at the per-GPU link
// bandwidth and pays the per-step fabric latency plus one NCCL kernel
// launch.
type NVSwitchFabric struct {
	Node hw.Node
}

// AllReduce implements Fabric.
func (f NVSwitchFabric) AllReduce(bytes float64, n int) float64 {
	if n <= 1 {
		return 0
	}
	steps := float64(2 * (n - 1))
	transfer := bytes / float64(n) * steps / f.Node.NVLinkBandwidth
	latency := steps*f.Node.NVLinkLatency + f.Node.GPU.KernelLaunchOverhead
	return transfer + latency
}

// ProfilePoint is one measured (size, latency) sample.
type ProfilePoint struct {
	Bytes   float64
	Latency float64
}

// ProfileTable is the profiled intra-node collective latency table, indexed
// by participant count with size interpolation — vTrain's NCCL profile.
type ProfileTable struct {
	points map[int][]ProfilePoint // sorted by Bytes
}

// ProfileSizes returns the data sizes the paper profiles: 1 MB to 1024 MB
// in powers of two.
func ProfileSizes() []float64 {
	out := make([]float64, 0, 11)
	for s := 1 << 20; s <= 1<<30; s <<= 1 {
		out = append(out, float64(s))
	}
	return out
}

// Profile measures fabric across the given GPU counts and standard sizes,
// building the lookup table.
func Profile(fabric Fabric, gpuCounts []int) *ProfileTable {
	t := &ProfileTable{points: make(map[int][]ProfilePoint)}
	for _, n := range gpuCounts {
		var pts []ProfilePoint
		for _, s := range ProfileSizes() {
			pts = append(pts, ProfilePoint{Bytes: s, Latency: fabric.AllReduce(s, n)})
		}
		t.points[n] = pts
	}
	return t
}

// Lookup interpolates the profiled latency for an All-Reduce of size bytes
// across n GPUs. Sizes outside the profiled range extrapolate linearly from
// the nearest segment, matching how vTrain applies its table.
func (t *ProfileTable) Lookup(bytes float64, n int) (float64, error) {
	pts, ok := t.points[n]
	if !ok || len(pts) < 2 {
		return 0, fmt.Errorf("comm: no profile for %d-GPU collective", n)
	}
	if bytes <= 0 {
		return 0, nil
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Bytes >= bytes })
	var lo, hi ProfilePoint
	switch {
	case i == 0:
		lo, hi = pts[0], pts[1]
	case i == len(pts):
		lo, hi = pts[len(pts)-2], pts[len(pts)-1]
	default:
		lo, hi = pts[i-1], pts[i]
	}
	frac := (bytes - lo.Bytes) / (hi.Bytes - lo.Bytes)
	lat := lo.Latency + frac*(hi.Latency-lo.Latency)
	return math.Max(lat, 0), nil
}

// Counts returns the profiled GPU counts, sorted.
func (t *ProfileTable) Counts() []int {
	out := make([]int, 0, len(t.points))
	for n := range t.points {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Model prices every communication operator vTrain inserts into the
// execution graph.
type Model struct {
	cluster hw.Cluster
	table   *ProfileTable
}

// NewModel profiles the cluster's intra-node fabric and returns the
// complete communication model.
func NewModel(c hw.Cluster) *Model {
	counts := []int{}
	for n := 2; n <= c.Node.GPUsPerNode; n *= 2 {
		counts = append(counts, n)
	}
	return &Model{
		cluster: c,
		table:   Profile(NVSwitchFabric{Node: c.Node}, counts),
	}
}

// Table exposes the profiled intra-node table (used by reports and tests).
func (m *Model) Table() *ProfileTable { return m.table }

// AllReduceIntra returns the profiled latency of an intra-node All-Reduce
// (tensor parallelism) of size bytes across n GPUs.
func (m *Model) AllReduceIntra(bytes float64, n int) float64 {
	if n <= 1 {
		return 0
	}
	lat, err := m.table.Lookup(bytes, n)
	if err != nil {
		// Counts outside the profile (non power of two) fall back to
		// the fabric model directly, as a real deployment would
		// profile on demand.
		return NVSwitchFabric{Node: m.cluster.Node}.AllReduce(bytes, n)
	}
	return lat
}

// AllReduceInter returns the Eq. 1 analytical latency for an inter-node
// All-Reduce of size bytes across n participants:
//
//	t = S/B · 2(n-1)/n,  B = alpha · Bmax
//
// plus the base network latency per step.
func (m *Model) AllReduceInter(bytes float64, n int) float64 {
	if n <= 1 {
		return 0
	}
	b := m.cluster.Alpha * m.cluster.InterNodeBandwidth
	t := bytes / b * 2 * float64(n-1) / float64(n)
	return t + m.cluster.InterNodeLatency
}

// AllReduce dispatches on scope: collectives fully inside one node use the
// profiled table; anything crossing nodes uses the analytical model. A
// hierarchical collective (e.g. d-way data parallelism with several ranks
// per node) is dominated by its inter-node phase, which Eq. 1 captures.
func (m *Model) AllReduce(bytes float64, n int, intraNode bool) float64 {
	if intraNode {
		return m.AllReduceIntra(bytes, n)
	}
	return m.AllReduceInter(bytes, n)
}

// SendRecv returns the latency of a pipeline-parallel point-to-point
// activation transfer of size bytes.
func (m *Model) SendRecv(bytes float64, sameNode bool) float64 {
	if sameNode {
		return bytes/m.cluster.Node.NVLinkBandwidth + m.cluster.Node.NVLinkLatency
	}
	return bytes/(m.cluster.Alpha*m.cluster.InterNodeBandwidth) + m.cluster.InterNodeLatency
}

// StatelessComm marks the model as a pure function of its arguments: both
// AllReduce and SendRecv depend only on (bytes, n, locality), never on call
// history. Duration binding uses the marker (taskgraph.StatelessCommTimer)
// to price each distinct communication descriptor once instead of once per
// task. Wrappers that inject per-call state (e.g. sampled congestion) must
// not forward this method.
func (m *Model) StatelessComm() {}
