package comm

import "math"

// Calibrated wraps the isolated-environment communication model with the
// training-time corrections the paper leaves as future work (Section IV):
// NCCL primitives measured during real training run ~30 % slower than in
// the isolated profiling environment — worst under tensor parallelism —
// and inter-node collectives from data-parallel groups sharing ToR switches
// interfere with each other.
//
// The correction factors are calibrated against measured campaigns (in this
// repository, the testbed); applying them shrinks vTrain's validation error
// at the cost of tying the model to one deployment's congestion behavior,
// which is exactly the trade-off the paper discusses.
type Calibrated struct {
	// Base is the isolated-environment model.
	Base *Model
	// OverlapFactor multiplies intra-node collective latency to account
	// for compute-overlap contention (~1.3-1.5 on A100 nodes).
	OverlapFactor float64
	// InterferencePerGroup is the per-log2(groups) slowdown of
	// inter-node collectives sharing the fabric.
	InterferencePerGroup float64
	// Groups is the number of data-parallel groups contending for the
	// inter-node fabric (one per tensor rank under Megatron placement).
	Groups int
	// LaunchOverhead is the per-collective NCCL kernel-launch latency
	// the analytical model ignores.
	LaunchOverhead float64
}

// DefaultCalibration returns factors fitted against the measured campaigns
// of Section IV for a training run with the given tensor-parallel width.
func DefaultCalibration(base *Model, tensorWidth int) Calibrated {
	return Calibrated{
		Base:                 base,
		OverlapFactor:        1.45,
		InterferencePerGroup: 0.12,
		Groups:               tensorWidth,
		LaunchOverhead:       15e-6,
	}
}

// AllReduce implements the taskgraph.CommTimer shape.
func (c Calibrated) AllReduce(bytes float64, n int, intraNode bool) float64 {
	t := c.Base.AllReduce(bytes, n, intraNode)
	if intraNode {
		f := c.OverlapFactor
		if f < 1 {
			f = 1
		}
		return t*f + c.LaunchOverhead
	}
	groups := float64(c.Groups)
	if groups < 1 {
		groups = 1
	}
	interferer := 1 + c.InterferencePerGroup*math.Log2(groups+1)
	return t*interferer + c.LaunchOverhead
}

// SendRecv implements the taskgraph.CommTimer shape.
func (c Calibrated) SendRecv(bytes float64, sameNode bool) float64 {
	return c.Base.SendRecv(bytes, sameNode) + c.LaunchOverhead
}

// StatelessComm marks the calibrated model as a pure function of its
// arguments, like the base model it wraps: every correction factor is a
// fixed field, never per-call state, so two calls with equal arguments
// always price equally. Without the marker, duration binding fell back to
// pricing every communication task individually in task-ID order — the
// stateful-timer path — instead of once per distinct descriptor
// (equivalence-locked by taskgraph.TestCalibratedStatelessEquivalence).
func (c Calibrated) StatelessComm() {}
