package comm

import (
	"testing"

	"vtrain/internal/hw"
)

func TestNewCongestionDefaults(t *testing.T) {
	// A cluster that predates the topology fields (all zero) resolves to
	// one aggregated link, a single leaf, and a non-blocking spine.
	var bare hw.Cluster
	cg := NewCongestion(bare)
	if cg.Links != 1 || cg.HCAShare != 1 || cg.SpineShare != 0 {
		t.Errorf("zero-topology defaults: %+v", cg)
	}
	if cg.NVShare != DefaultNVShare {
		t.Errorf("NVShare = %v, want %v", cg.NVShare, DefaultNVShare)
	}

	paper := hw.PaperCluster(4)
	cg = NewCongestion(paper)
	if cg.Links != paper.NetworkLinks {
		t.Errorf("Links = %d, want %d", cg.Links, paper.NetworkLinks)
	}
	if cg.HCAShare != 1/float64(paper.NetworkLinks) {
		t.Errorf("HCAShare = %v, want 1/%d", cg.HCAShare, paper.NetworkLinks)
	}
	// The paper testbed is non-blocking: spine contention is free.
	if cg.SpineShare != 0 {
		t.Errorf("SpineShare = %v on a non-blocking tree", cg.SpineShare)
	}

	over := paper
	over.Oversubscription = 3
	cg = NewCongestion(over)
	if want := (3.0 - 1) / float64(paper.NetworkLinks); cg.SpineShare != want {
		t.Errorf("3:1 oversubscribed SpineShare = %v, want %v", cg.SpineShare, want)
	}
}

func TestCollectivePath(t *testing.T) {
	cg := NewCongestion(hw.PaperCluster(64)) // NodesPerLeaf = 20
	if p := cg.CollectivePath(3, 1); p.NVNode != 3 || p.HCANodes[0] != -1 || p.Spine {
		t.Errorf("single-node collective path: %+v", p)
	}
	// Spanning nodes within one leaf: HCAs yes, spine no.
	if p := cg.CollectivePath(5, 8); p.NVNode != -1 || p.HCANodes != [2]int{5, -1} || p.Spine {
		t.Errorf("intra-leaf collective path: %+v", p)
	}
	// Outgrowing the leaf radix crosses the spine.
	if p := cg.CollectivePath(5, 21); !p.Spine {
		t.Errorf("leaf-spanning collective path: %+v", p)
	}
	// A single-leaf topology (NodesPerLeaf 0) never reaches the spine.
	flat := cg
	flat.NodesPerLeaf = 0
	if p := flat.CollectivePath(5, 64); p.Spine {
		t.Errorf("single-leaf topology crossed the spine: %+v", p)
	}
}

func TestSendRecvPath(t *testing.T) {
	cg := NewCongestion(hw.PaperCluster(64))
	if p := cg.SendRecvPath(7, 7); p.NVNode != 7 || p.HCANodes[0] != -1 || p.Spine {
		t.Errorf("same-node transfer path: %+v", p)
	}
	// Both leaves under one switch: two HCA bundles, no spine.
	if p := cg.SendRecvPath(2, 9); p.HCANodes != [2]int{2, 9} || p.Spine {
		t.Errorf("intra-leaf transfer path: %+v", p)
	}
	// Crossing leaves (nodes 19 and 20 with radix 20) adds the spine.
	if p := cg.SendRecvPath(19, 20); p.HCANodes != [2]int{19, 20} || !p.Spine {
		t.Errorf("cross-leaf transfer path: %+v", p)
	}
}

func TestDerateMonotone(t *testing.T) {
	cg := NewCongestion(hw.PaperCluster(4))
	cg.SpineShare = 0.1
	if d := cg.Derate(0, 0, 0); d != 1 {
		t.Fatalf("Derate(0,0,0) = %v, want exactly 1", d)
	}
	prev := 1.0
	for i := 1; i <= 8; i++ {
		d := cg.Derate(i, i, i)
		if d <= prev {
			t.Fatalf("Derate not strictly increasing at %d: %v <= %v", i, d, prev)
		}
		prev = d
	}
	if got, want := cg.Derate(2, 4, 8), 1+2*cg.NVShare+4*cg.HCAShare+8*cg.SpineShare; got != want {
		t.Errorf("Derate(2,4,8) = %v, want %v", got, want)
	}
}
