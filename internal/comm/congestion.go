package comm

import "vtrain/internal/hw"

// This file resolves which physical links of the cluster's two-level
// fat tree a communication task occupies, and how sharing those links with
// concurrent flows derates it. The isolated-environment model (comm.Model)
// prices every collective on an uncontended link — the fidelity gap the
// paper itself measures (Section IV: NCCL primitives run ~30% slower during
// real training than in isolation). The contention fidelity level closes it
// at replay time: taskgraph.BindContention classifies every communication
// descriptor into a Path here, and the replay counts which paths are
// simultaneously in flight on each link class, multiplying durations by
// Congestion.Derate.
//
// The topology is the paper's testbed generalized: each node's GPUs share
// one NVSwitch fabric; each node attaches to a leaf switch through
// hw.Cluster.NetworkLinks HCAs; leaves connect through a spine layer with
// an hw.Cluster.Oversubscription uplink ratio. Three link classes follow:
//
//   - the NVSwitch of each node (intra-node collectives and same-node P2P);
//   - the HCA bundle of each node (every inter-node flow enters and leaves
//     through its endpoints' HCAs);
//   - the shared spine (flows whose endpoints sit under different leaves).

// Path is the set of fat-tree link classes one communication task occupies.
// Node indices refer to the replayed graph's folded representative replica
// set (stage*stride/GPUsPerNode); a negative index means "class unused".
type Path struct {
	// NVNode is the node whose NVSwitch the flow traverses, for flows that
	// never leave a node; -1 otherwise.
	NVNode int
	// HCANodes are the nodes whose HCA bundles an inter-node flow occupies:
	// one entry for a collective (its representative node), two for a
	// cross-node point-to-point transfer. -1 = unused.
	HCANodes [2]int
	// Spine reports whether the flow crosses leaf switches.
	Spine bool
}

// None reports whether the path occupies no shared link at all.
func (p Path) None() bool { return p.NVNode < 0 && p.HCANodes[0] < 0 }

// Congestion holds the per-link-class derate weights of one cluster's
// fat tree: the fractional slowdown each *additional* concurrent flow on a
// shared link class inflicts. All weights are non-negative, so derating is
// monotone — more concurrent flows never speed a transfer up.
type Congestion struct {
	// Links is the per-node HCA count (at least 1).
	Links int
	// NodesPerLeaf is the leaf radix; 0 means one leaf spans the cluster.
	NodesPerLeaf int
	// NVShare is the slowdown per concurrent flow on a node's NVSwitch.
	// The default is calibrated to the paper's Section IV observation that
	// NCCL collectives run ~30% slower under real training contention.
	NVShare float64
	// HCAShare is the slowdown per concurrent flow on a node's HCA bundle:
	// with L links, a second flow can route over an idle HCA, so each
	// additional flow costs 1/L of the bundle.
	HCAShare float64
	// SpineShare is the slowdown per concurrent flow crossing the spine:
	// zero on a non-blocking tree, (ratio-1)/Links per flow when the
	// uplinks are oversubscribed.
	SpineShare float64
}

// DefaultNVShare anchors NVSwitch contention to the paper's measured ~30%
// training-time collective slowdown.
const DefaultNVShare = 0.3

// NewCongestion derives the derate weights from the cluster's topology
// description, applying the documented defaults for zero-valued fields
// (one aggregated link, single leaf, non-blocking spine).
func NewCongestion(c hw.Cluster) Congestion {
	links := c.NetworkLinks
	if links <= 0 {
		links = 1
	}
	over := c.Oversubscription
	if over <= 0 {
		over = 1
	}
	spine := 0.0
	if over > 1 {
		spine = (over - 1) / float64(links)
	}
	return Congestion{
		Links:        links,
		NodesPerLeaf: c.NodesPerLeaf,
		NVShare:      DefaultNVShare,
		HCAShare:     1 / float64(links),
		SpineShare:   spine,
	}
}

// leaf returns the leaf switch a node attaches to.
func (cg Congestion) leaf(node int) int {
	if cg.NodesPerLeaf <= 0 {
		return 0
	}
	return node / cg.NodesPerLeaf
}

// CollectivePath resolves the links an All-Reduce at representative node
// occupies. spanNodes is the number of nodes the collective's participants
// cover: 1 keeps the flow on the node's NVSwitch; more pushes it through
// the node's HCAs, and through the spine once the span outgrows one leaf.
func (cg Congestion) CollectivePath(node, spanNodes int) Path {
	if spanNodes <= 1 {
		return Path{NVNode: node, HCANodes: [2]int{-1, -1}}
	}
	return Path{
		NVNode:   -1,
		HCANodes: [2]int{node, -1},
		Spine:    cg.NodesPerLeaf > 0 && spanNodes > cg.NodesPerLeaf,
	}
}

// SendRecvPath resolves the links a point-to-point pipeline transfer from
// one node to another occupies: the NVSwitch when both stages share a node,
// both endpoints' HCA bundles otherwise, plus the spine when the endpoints
// sit under different leaves.
func (cg Congestion) SendRecvPath(fromNode, toNode int) Path {
	if fromNode == toNode {
		return Path{NVNode: fromNode, HCANodes: [2]int{-1, -1}}
	}
	return Path{
		NVNode:   -1,
		HCANodes: [2]int{fromNode, toNode},
		Spine:    cg.leaf(fromNode) != cg.leaf(toNode),
	}
}

// Derate returns the multiplicative slowdown of a flow that shares its
// link classes with nv concurrent NVSwitch flows, hca concurrent HCA-bundle
// flows, and spine concurrent spine flows. Zero concurrency returns exactly
// 1, and the factor is nondecreasing in every count — the monotonicity the
// contention property tests pin.
func (cg Congestion) Derate(nv, hca, spine int) float64 {
	return 1 + cg.NVShare*float64(nv) + cg.HCAShare*float64(hca) + cg.SpineShare*float64(spine)
}
