// Package resilience models the goodput a training cluster loses to
// hardware failures and checkpoint-restart, so that cost projections and
// cluster-design rankings reflect what an operator actually pays rather
// than an uninterrupted ideal run.
//
// The model is the classical deterministic checkpoint-restart analysis:
// failures arrive independently per GPU with a per-device mean time between
// failures, so a cluster of G devices fails every MTBF/G seconds on
// average. The job periodically writes a checkpoint of the model and
// optimizer state to persistent storage (C seconds per checkpoint at the
// cluster's storage write bandwidth); on a failure it restarts (R seconds
// of relaunch + state load) and replays the work since the last checkpoint
// (on average half a checkpoint interval). The Young–Daly first-order
// optimal checkpoint interval
//
//	tau = sqrt(2 * C * M)          (M = cluster MTBF)
//
// balances the two losses, and the resulting fraction of wall-clock time
// that is NOT useful forward progress is
//
//	waste = C/tau + tau/(2M) + R/M = sqrt(2C/M) + R/M
//
// Goodput = 1 - waste is the effective-throughput multiplier the rest of
// the stack applies: an ideal T-second run occupies T/goodput seconds of
// rented cluster time. The model is deliberately deterministic (expected
// values, no sampled failure traces) so design-space sweeps stay exactly
// reproducible; it sits strictly after simulation — iteration times,
// task graphs, and caches are untouched by it (see docs/ARCHITECTURE.md).
//
// References: Young (1974) and Daly (2006) for the interval; the
// distributed-training survey arXiv:2407.20018 and the LLM TCO analysis
// arXiv:2506.09275 for treating fault tolerance as a first-class
// determinant of effective throughput and cost.
package resilience

import (
	"errors"
	"fmt"
	"math"

	"vtrain/internal/hw"
	"vtrain/internal/model"
)

// DefaultRestartSeconds is the assumed failure-recovery latency when the
// caller does not override it: job teardown, node replacement or cordon,
// relaunch, and loading the checkpoint back — about ten minutes, in line
// with published large-scale training postmortems.
const DefaultRestartSeconds = 600

// ErrUnreliable is returned (wrapped) by Compute when the predicted waste
// reaches or exceeds the whole run: the cluster fails faster than it can
// checkpoint and recover, so the first-order model has no positive
// goodput. Sweeps treat such candidates like memory-infeasible plans.
var ErrUnreliable = errors.New("goodput is non-positive: cluster fails faster than it can checkpoint and recover")

// Params describes one failure/checkpoint environment. All fields must be
// positive and finite (Restart may be zero); Compute validates and never
// returns NaN or Inf.
type Params struct {
	// GPUs is the number of devices sharing the job's fate: any single
	// failure stops the whole synchronous training run.
	GPUs int
	// MTBF is the per-GPU mean time between failures in seconds
	// (catalog-pinned per generation in internal/hw).
	MTBF float64
	// CheckpointBytes is the size of one full checkpoint: the model's
	// persistent state (weights + optimizer moments), independent of how
	// it is sharded across the cluster.
	CheckpointBytes uint64
	// WriteBandwidth is the aggregate bytes/s the cluster sustains when
	// writing a checkpoint to persistent storage.
	WriteBandwidth float64
	// Restart is the fixed failure-recovery latency in seconds (relaunch
	// plus checkpoint load). Zero is allowed; rollback rework is modeled
	// separately as half a checkpoint interval.
	Restart float64
}

// Validate reports an error for physically meaningless parameters — the
// degenerate inputs (zero MTBF, zero bandwidth, ...) that would otherwise
// surface as NaN or Inf in the closed forms.
func (p Params) Validate() error {
	if p.GPUs <= 0 {
		return fmt.Errorf("resilience: GPU count must be positive, got %d", p.GPUs)
	}
	if p.MTBF <= 0 || math.IsInf(p.MTBF, 0) || math.IsNaN(p.MTBF) {
		return fmt.Errorf("resilience: per-GPU MTBF must be positive and finite, got %v", p.MTBF)
	}
	if p.CheckpointBytes == 0 {
		return fmt.Errorf("resilience: checkpoint size must be positive")
	}
	if p.WriteBandwidth <= 0 || math.IsInf(p.WriteBandwidth, 0) || math.IsNaN(p.WriteBandwidth) {
		return fmt.Errorf("resilience: checkpoint write bandwidth must be positive and finite, got %v", p.WriteBandwidth)
	}
	if p.Restart < 0 || math.IsInf(p.Restart, 0) || math.IsNaN(p.Restart) {
		return fmt.Errorf("resilience: restart latency must be non-negative and finite, got %v", p.Restart)
	}
	return nil
}

// Model is the computed goodput model for one environment. All times are
// seconds; the three fractions partition the wasted share of wall-clock
// time, so Goodput + CheckpointFraction + ReworkFraction + RestartFraction
// equals 1 exactly.
type Model struct {
	// ClusterMTBF is the whole-cluster mean time between failures:
	// per-GPU MTBF divided by the device count.
	ClusterMTBF float64
	// CheckpointSeconds is the time to write one checkpoint.
	CheckpointSeconds float64
	// Interval is the Young–Daly optimal checkpoint interval
	// sqrt(2 · CheckpointSeconds · ClusterMTBF).
	Interval float64
	// CheckpointFraction is the share of wall-clock time spent writing
	// checkpoints: CheckpointSeconds / Interval.
	CheckpointFraction float64
	// ReworkFraction is the share lost to replaying work since the last
	// checkpoint: Interval / (2 · ClusterMTBF).
	ReworkFraction float64
	// RestartFraction is the share lost to failure-recovery latency:
	// Restart / ClusterMTBF.
	RestartFraction float64
	// Goodput is the effective-throughput multiplier in (0, 1): the
	// fraction of rented wall-clock time that is useful forward progress.
	Goodput float64
}

// WasteFraction returns the total non-goodput share, 1 - Goodput.
func (m Model) WasteFraction() float64 {
	return m.CheckpointFraction + m.ReworkFraction + m.RestartFraction
}

// FailuresOver returns the expected number of failures during wallSeconds
// of cluster time.
func (m Model) FailuresOver(wallSeconds float64) float64 {
	return wallSeconds / m.ClusterMTBF
}

// Compute evaluates the goodput model. It returns an error for invalid
// parameters (Params.Validate) and a wrapped ErrUnreliable when the
// predicted waste reaches 100% — in particular it never returns NaN, Inf,
// or a goodput outside (0, 1).
func Compute(p Params) (Model, error) {
	if err := p.Validate(); err != nil {
		return Model{}, err
	}
	mtbf := p.MTBF / float64(p.GPUs)
	ckpt := float64(p.CheckpointBytes) / p.WriteBandwidth
	// A denormal-small bandwidth passes Validate (positive and finite)
	// but overflows the write time to +Inf, which would poison the
	// fractions with Inf/Inf = NaN below.
	if math.IsInf(ckpt, 0) {
		return Model{}, fmt.Errorf("resilience: checkpoint write time overflows (%d bytes at %v B/s)",
			p.CheckpointBytes, p.WriteBandwidth)
	}
	interval := math.Sqrt(2 * ckpt * mtbf)
	m := Model{
		ClusterMTBF:        mtbf,
		CheckpointSeconds:  ckpt,
		Interval:           interval,
		CheckpointFraction: ckpt / interval,
		ReworkFraction:     interval / (2 * mtbf),
		RestartFraction:    p.Restart / mtbf,
	}
	m.Goodput = 1 - m.WasteFraction()
	// !(> 0) rather than <= 0 so a NaN from any future arithmetic edge
	// case is treated as unreliable instead of escaping the contract.
	if !(m.Goodput > 0) {
		return Model{}, fmt.Errorf("resilience: %d GPUs at %v s cluster MTBF vs %.1f s checkpoints: %w",
			p.GPUs, mtbf, ckpt, ErrUnreliable)
	}
	return m, nil
}

// Options carries the caller-facing overrides of the environment the
// hardware catalog pins. The zero value means "use the cluster's catalog
// values with the default restart latency".
type Options struct {
	// MTBF overrides the per-GPU mean time between failures in seconds
	// when positive.
	MTBF float64
	// WriteBandwidth overrides the checkpoint storage write bandwidth in
	// bytes/s when positive.
	WriteBandwidth float64
	// Restart overrides the failure-recovery latency in seconds when
	// positive (DefaultRestartSeconds otherwise).
	Restart float64
}

// ParamsFor assembles the goodput parameters for training m on gpus
// devices of cluster c: MTBF from the cluster's GPU generation, checkpoint
// size from the model's persistent optimizer state
// (model.Config.CheckpointBytes), and write bandwidth from the cluster's
// storage, each overridable through o. It does not validate — Compute
// does — so missing catalog data surfaces as a descriptive error there.
func ParamsFor(m model.Config, c hw.Cluster, gpus int, o Options) Params {
	p := Params{
		GPUs:            gpus,
		MTBF:            c.Node.GPU.MTBF,
		CheckpointBytes: m.CheckpointBytes(),
		WriteBandwidth:  c.CheckpointBandwidth,
		Restart:         DefaultRestartSeconds,
	}
	if o.MTBF > 0 {
		p.MTBF = o.MTBF
	}
	if o.WriteBandwidth > 0 {
		p.WriteBandwidth = o.WriteBandwidth
	}
	if o.Restart > 0 {
		p.Restart = o.Restart
	}
	return p
}

// For computes the goodput model for training m on gpus devices of
// cluster c — the one-call form of ParamsFor + Compute.
func For(m model.Config, c hw.Cluster, gpus int, o Options) (Model, error) {
	return Compute(ParamsFor(m, c, gpus, o))
}
