package resilience

import (
	"errors"
	"math"
	"testing"

	"vtrain/internal/hw"
	"vtrain/internal/model"
)

func validParams() Params {
	return Params{
		GPUs:            512,
		MTBF:            50000 * 3600,
		CheckpointBytes: 1 << 40, // 1 TiB
		WriteBandwidth:  25e9,
		Restart:         600,
	}
}

// TestYoungDalyClosedForm pins the model against hand-computed fixtures:
// with M = MTBF/G and C = bytes/bw, the interval is sqrt(2CM) and the
// waste is sqrt(2C/M) + R/M.
func TestYoungDalyClosedForm(t *testing.T) {
	cases := []struct {
		name string
		p    Params
	}{
		{"paper-scale", validParams()},
		// Round numbers, checkable by hand: M = 3600s, C = 50s,
		// tau = sqrt(2*50*3600) = 600s, waste = 50/600 + 600/7200 + 36/3600
		// = 1/12 + 1/12 + 1/100 = 0.17666...
		{"round", Params{GPUs: 100, MTBF: 360000, CheckpointBytes: 500e9, WriteBandwidth: 10e9, Restart: 36}},
		{"single-gpu", Params{GPUs: 1, MTBF: 30000 * 3600, CheckpointBytes: 100 << 30, WriteBandwidth: 2e9, Restart: 120}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := Compute(tc.p)
			if err != nil {
				t.Fatal(err)
			}
			M := tc.p.MTBF / float64(tc.p.GPUs)
			C := float64(tc.p.CheckpointBytes) / tc.p.WriteBandwidth
			if want := math.Sqrt(2 * C * M); m.Interval != want {
				t.Errorf("Interval = %v, want sqrt(2CM) = %v", m.Interval, want)
			}
			if m.ClusterMTBF != M || m.CheckpointSeconds != C {
				t.Errorf("MTBF/ckpt = %v/%v, want %v/%v", m.ClusterMTBF, m.CheckpointSeconds, M, C)
			}
			wantWaste := math.Sqrt(2*C/M) + tc.p.Restart/M
			if got := m.WasteFraction(); math.Abs(got-wantWaste) > 1e-12 {
				t.Errorf("waste = %v, want sqrt(2C/M)+R/M = %v", got, wantWaste)
			}
			// At the Young–Daly optimum the checkpoint and rework losses
			// are exactly equal.
			if math.Abs(m.CheckpointFraction-m.ReworkFraction) > 1e-12 {
				t.Errorf("checkpoint fraction %v != rework fraction %v at the optimal interval",
					m.CheckpointFraction, m.ReworkFraction)
			}
			if sum := m.Goodput + m.WasteFraction(); math.Abs(sum-1) > 1e-12 {
				t.Errorf("goodput + waste = %v, want 1", sum)
			}
		})
	}
	// The "round" fixture's literal value.
	m, err := Compute(cases[1].p)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 - (1.0/12 + 1.0/12 + 1.0/100); math.Abs(m.Goodput-want) > 1e-12 {
		t.Errorf("round-fixture goodput = %v, want %v", m.Goodput, want)
	}
	if m.Interval != 600 {
		t.Errorf("round-fixture interval = %v, want 600", m.Interval)
	}
}

// TestGoodputInUnitInterval sweeps a broad parameter grid and checks the
// advertised range invariant: every successful Compute yields a goodput in
// (0, 1], every field finite, and the failure mode is an explicit
// ErrUnreliable — never NaN, Inf, or a silent out-of-range value.
func TestGoodputInUnitInterval(t *testing.T) {
	gpuCounts := []int{1, 8, 64, 1024, 16384, 1 << 20}
	mtbfs := []float64{1000, 3600 * 100, 3600 * 30000, 3600 * 55000, 3600 * 1e6}
	sizes := []uint64{1 << 20, 1 << 30, 1 << 40, 1 << 44}
	bws := []float64{1e6, 1e9, 25e9, 1e12}
	restarts := []float64{0, 60, 600, 86400}
	checked, unreliable := 0, 0
	for _, g := range gpuCounts {
		for _, mt := range mtbfs {
			for _, sz := range sizes {
				for _, bw := range bws {
					for _, r := range restarts {
						m, err := Compute(Params{GPUs: g, MTBF: mt, CheckpointBytes: sz, WriteBandwidth: bw, Restart: r})
						if err != nil {
							if !errors.Is(err, ErrUnreliable) {
								t.Fatalf("valid params rejected with %v", err)
							}
							unreliable++
							continue
						}
						checked++
						if !(m.Goodput > 0 && m.Goodput <= 1) {
							t.Fatalf("goodput %v outside (0,1] for %+v", m.Goodput, Params{GPUs: g, MTBF: mt, CheckpointBytes: sz, WriteBandwidth: bw, Restart: r})
						}
						for _, v := range []float64{m.ClusterMTBF, m.CheckpointSeconds, m.Interval,
							m.CheckpointFraction, m.ReworkFraction, m.RestartFraction} {
							if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
								t.Fatalf("non-finite or negative field %v in %+v", v, m)
							}
						}
					}
				}
			}
		}
	}
	if checked == 0 || unreliable == 0 {
		t.Fatalf("grid exercised only one outcome (ok=%d unreliable=%d); widen it", checked, unreliable)
	}
}

// TestGoodputMonotone pins the two monotonicity properties the ranking
// relies on: goodput never increases when the cluster grows or when the
// checkpoint grows, all else equal.
func TestGoodputMonotone(t *testing.T) {
	base := validParams()
	prev := math.Inf(1)
	for _, g := range []int{1, 2, 8, 64, 512, 4096, 32768} {
		p := base
		p.GPUs = g
		m, err := Compute(p)
		if err != nil {
			// Larger clusters may tip into unreliability; that is the
			// monotone endpoint — nothing after it may succeed.
			for _, g2 := range []int{g * 2, g * 8} {
				p.GPUs = g2
				if _, err2 := Compute(p); err2 == nil {
					t.Fatalf("goodput undefined at %d GPUs but defined at %d", g, g2)
				}
			}
			break
		}
		if m.Goodput > prev {
			t.Fatalf("goodput increased from %v to %v when GPUs grew to %d", prev, m.Goodput, g)
		}
		prev = m.Goodput
	}

	prev = math.Inf(1)
	for _, sz := range []uint64{1 << 30, 1 << 33, 1 << 36, 1 << 40, 1 << 44} {
		p := base
		p.CheckpointBytes = sz
		m, err := Compute(p)
		if err != nil {
			break
		}
		if m.Goodput > prev {
			t.Fatalf("goodput increased from %v to %v when checkpoint grew to %d bytes", prev, m.Goodput, sz)
		}
		prev = m.Goodput
	}
}

// TestDegenerateInputsError pins that physically meaningless inputs are
// rejected with an error — the NaN/Inf-producing degenerate cases named in
// the model's contract.
func TestDegenerateInputsError(t *testing.T) {
	mutations := map[string]func(*Params){
		"zero GPUs":        func(p *Params) { p.GPUs = 0 },
		"negative GPUs":    func(p *Params) { p.GPUs = -4 },
		"zero MTBF":        func(p *Params) { p.MTBF = 0 },
		"negative MTBF":    func(p *Params) { p.MTBF = -1 },
		"inf MTBF":         func(p *Params) { p.MTBF = math.Inf(1) },
		"NaN MTBF":         func(p *Params) { p.MTBF = math.NaN() },
		"zero checkpoint":  func(p *Params) { p.CheckpointBytes = 0 },
		"zero bandwidth":   func(p *Params) { p.WriteBandwidth = 0 },
		"negative bw":      func(p *Params) { p.WriteBandwidth = -5 },
		"inf bandwidth":    func(p *Params) { p.WriteBandwidth = math.Inf(1) },
		"NaN bandwidth":    func(p *Params) { p.WriteBandwidth = math.NaN() },
		"negative restart": func(p *Params) { p.Restart = -1 },
		"inf restart":      func(p *Params) { p.Restart = math.Inf(1) },
		"NaN restart":      func(p *Params) { p.Restart = math.NaN() },
	}
	for name, mutate := range mutations {
		p := validParams()
		mutate(&p)
		if _, err := Compute(p); err == nil {
			t.Errorf("%s: Compute accepted %+v", name, p)
		} else if errors.Is(err, ErrUnreliable) {
			t.Errorf("%s: got ErrUnreliable, want a validation error", name)
		}
	}
}

// TestUnreliableCluster pins the explicit failure mode: a cluster that
// fails faster than it can checkpoint returns ErrUnreliable rather than a
// zero or negative goodput.
func TestUnreliableCluster(t *testing.T) {
	p := Params{GPUs: 1 << 20, MTBF: 1000, CheckpointBytes: 1 << 44, WriteBandwidth: 1e6, Restart: 600}
	if _, err := Compute(p); !errors.Is(err, ErrUnreliable) {
		t.Fatalf("Compute = %v, want ErrUnreliable", err)
	}
}

// TestDenormalBandwidthOverflow pins the overflow edge: a denormal-small
// bandwidth is positive and finite — it passes Validate — but would
// overflow the checkpoint write time to +Inf and poison the fractions
// with NaN. Compute must error instead (regression for a NaN that once
// escaped with a nil error).
func TestDenormalBandwidthOverflow(t *testing.T) {
	p := validParams()
	p.WriteBandwidth = 1e-308
	m, err := Compute(p)
	if err == nil {
		t.Fatalf("Compute accepted an overflowing write time: %+v", m)
	}
	if errors.Is(err, ErrUnreliable) {
		t.Fatalf("overflow misreported as ErrUnreliable: %v", err)
	}
}

// TestParamsForCatalogDefaults pins the wiring: the catalog's MTBF and
// checkpoint bandwidth flow into the params, the model's checkpoint size
// is CheckpointBytes, and every Options field overrides its default.
func TestParamsForCatalogDefaults(t *testing.T) {
	m := model.Megatron18_4B()
	c := hw.PaperCluster(16)
	p := ParamsFor(m, c, 128, Options{})
	if p.MTBF != hw.AmpereMTBF {
		t.Errorf("MTBF = %v, want catalog Ampere %v", p.MTBF, hw.AmpereMTBF)
	}
	if p.WriteBandwidth != hw.AmpereCheckpointBandwidth {
		t.Errorf("bandwidth = %v, want catalog %v", p.WriteBandwidth, hw.AmpereCheckpointBandwidth)
	}
	if p.CheckpointBytes != m.CheckpointBytes() {
		t.Errorf("checkpoint = %d, want model.CheckpointBytes %d", p.CheckpointBytes, m.CheckpointBytes())
	}
	if p.Restart != DefaultRestartSeconds || p.GPUs != 128 {
		t.Errorf("restart/GPUs = %v/%d, want %v/128", p.Restart, p.GPUs, DefaultRestartSeconds)
	}

	o := Options{MTBF: 1234, WriteBandwidth: 5678, Restart: 42}
	p = ParamsFor(m, c, 8, o)
	if p.MTBF != 1234 || p.WriteBandwidth != 5678 || p.Restart != 42 {
		t.Errorf("overrides not applied: %+v", p)
	}

	// Every catalog offering carries enough data for the model to work.
	for _, off := range hw.Catalog() {
		if _, err := For(m, off.Cluster(4), 32, Options{}); err != nil {
			t.Errorf("offering %s: %v", off.Name, err)
		}
	}
}
