package parallel

import (
	"strings"
	"testing"

	"vtrain/internal/hw"
	"vtrain/internal/model"
)

func TestInterleavedValidation(t *testing.T) {
	m := model.Config{Name: "i", Hidden: 256, Layers: 8, SeqLen: 128, Heads: 4, Vocab: 512}
	c := hw.PaperCluster(2)
	base := Plan{Tensor: 1, Data: 1, Pipeline: 2, MicroBatch: 1, GlobalBatch: 4, VirtualStages: 2}
	if err := base.Validate(m, c); err != nil {
		t.Fatalf("valid interleaved plan rejected: %v", err)
	}

	tests := []struct {
		name   string
		mutate func(*Plan)
	}{
		{"gpipe", func(p *Plan) { p.Schedule = GPipe }},
		{"negative v", func(p *Plan) { p.VirtualStages = -1 }},
		{"no pipeline", func(p *Plan) { p.Pipeline = 1; p.VirtualStages = 2 }},
		{"layers not divisible", func(p *Plan) { p.VirtualStages = 3 }},
		{"micro-batches not divisible by p", func(p *Plan) { p.GlobalBatch = 3 }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := base
			tc.mutate(&p)
			if err := p.Validate(m, c); err == nil {
				t.Fatalf("plan %s should be rejected", p)
			}
		})
	}
}

func TestInterleavedHelpers(t *testing.T) {
	p := Plan{Tensor: 1, Data: 1, Pipeline: 2, MicroBatch: 1, GlobalBatch: 8, VirtualStages: 2}
	if !p.Interleaved() {
		t.Fatal("v=2 must report interleaved")
	}
	if (Plan{VirtualStages: 1}).Interleaved() || (Plan{}).Interleaved() {
		t.Fatal("v<=1 must not report interleaved")
	}
	m := model.Config{Name: "i", Hidden: 256, Layers: 8, SeqLen: 128, Heads: 4, Vocab: 512}
	if got := p.ChunkLayers(m); got != 2 { // 8 / (2*2)
		t.Fatalf("ChunkLayers = %d, want 2", got)
	}
	flat := Plan{Tensor: 1, Data: 1, Pipeline: 2}
	if got := flat.ChunkLayers(m); got != 4 {
		t.Fatalf("non-interleaved ChunkLayers = %d, want 4", got)
	}
	if !strings.Contains(p.String(), "v=2") {
		t.Fatalf("String() = %q, should mention v", p.String())
	}
}

func TestInterleavedInFlight(t *testing.T) {
	// p=4, v=2, plenty of micro-batches: in-flight = ceil((p*v+p-1)/v)
	// = ceil(11/2) = 6 whole-stage activations, vs 4 without
	// interleaving.
	p := Plan{Tensor: 1, Data: 1, Pipeline: 4, MicroBatch: 1, GlobalBatch: 32, VirtualStages: 2}
	if got := p.InFlight(); got != 6 {
		t.Fatalf("interleaved InFlight = %d, want 6", got)
	}
	p.VirtualStages = 0
	if got := p.InFlight(); got != 4 {
		t.Fatalf("plain InFlight = %d, want 4", got)
	}
	// Still capped by the micro-batch count.
	p.VirtualStages = 2
	p.GlobalBatch = 4
	if got := p.InFlight(); got != 4 {
		t.Fatalf("capped InFlight = %d, want 4", got)
	}
}
