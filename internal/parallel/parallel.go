// Package parallel describes 3D-parallel training plans: (t, d, p)-way
// tensor/data/pipeline parallelism with micro-batched pipeline schedules,
// following Section II-B of the paper.
//
// A Plan is validated against a model and a cluster: the product t·d·p must
// equal the GPU count, tensor parallelism must divide attention heads and
// stay within a node (the paper places TP intra-node on NVLink), pipeline
// parallelism must not exceed the layer count, and the global batch must
// decompose into micro-batches.
package parallel

import (
	"fmt"

	"vtrain/internal/hw"
	"vtrain/internal/model"
)

// Schedule selects the pipeline scheduling policy of Fig. 7.
type Schedule int

const (
	// OneFOneB is PipeDream's one-forward-one-backward schedule; each
	// stage holds at most p micro-batches in flight.
	OneFOneB Schedule = iota
	// GPipe runs all forward passes then all backward passes; all
	// micro-batches are in flight at the peak.
	GPipe
)

// String implements fmt.Stringer.
func (s Schedule) String() string {
	switch s {
	case OneFOneB:
		return "1F1B"
	case GPipe:
		return "GPipe"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// Plan is a complete 3D-parallel training configuration.
type Plan struct {
	// Tensor is t, the tensor-parallel width (intra-node).
	Tensor int
	// Data is d, the data-parallel width.
	Data int
	// Pipeline is p, the pipeline-parallel depth.
	Pipeline int
	// MicroBatch is m, the per-micro-batch size in sequences per
	// data-parallel replica.
	MicroBatch int
	// GlobalBatch is the iteration batch size in sequences across the
	// whole system.
	GlobalBatch int
	// Schedule is the pipeline schedule (1F1B by default; the zero value
	// is 1F1B which is what Megatron-DeepSpeed uses).
	Schedule Schedule
	// GradientBuckets is the number of data-parallel gradient buckets
	// (Fig. 5). Zero disables bucketing: a single All-Reduce at the end
	// of the backward pass.
	GradientBuckets int
	// Recompute enables full activation recomputation (Megatron
	// "--recompute-granularity full"): each stage stores only layer
	// inputs and re-executes the forward pass during backward, trading
	// ~1/3 extra compute for a much smaller activation footprint.
	Recompute bool
	// VirtualStages is Megatron-LM's interleaved pipeline schedule: each
	// device hosts v model chunks, shrinking the pipeline bubble from
	// (p-1)/(n+p-1) toward (p-1)/(v·n+p-1) at the cost of v times more
	// inter-stage communication. Values 0 and 1 mean no interleaving.
	// Requires the 1F1B schedule, layers divisible by p·v, and a
	// micro-batch count divisible by p.
	VirtualStages int
}

// GPUs returns the total GPU count t·d·p.
func (p Plan) GPUs() int { return p.Tensor * p.Data * p.Pipeline }

// MicroBatches returns the number of micro-batches each pipeline executes
// per iteration: GlobalBatch / (Data · MicroBatch).
func (p Plan) MicroBatches() int {
	den := p.Data * p.MicroBatch
	if den == 0 {
		return 0
	}
	return p.GlobalBatch / den
}

// Interleaved reports whether the plan uses virtual pipeline stages.
func (p Plan) Interleaved() bool { return p.VirtualStages > 1 }

// InFlight returns the peak number of in-flight micro-batches per stage
// under the plan's schedule, used by the memory model. Interleaving keeps
// roughly p + (p-1)/v whole-stage activations resident (p·v + p - 1 chunk
// activations, each 1/v of a stage).
func (p Plan) InFlight() int {
	nmb := p.MicroBatches()
	if p.Schedule == GPipe {
		return nmb
	}
	inflight := p.Pipeline
	if p.Interleaved() {
		v := p.VirtualStages
		inflight = (p.Pipeline*v + p.Pipeline - 1 + v - 1) / v
	}
	if inflight > nmb {
		inflight = nmb
	}
	return inflight
}

// String implements fmt.Stringer in the paper's (t,d,p) notation.
func (p Plan) String() string {
	if p.Interleaved() {
		return fmt.Sprintf("(t=%d,d=%d,p=%d,m=%d,B=%d,%s,v=%d)",
			p.Tensor, p.Data, p.Pipeline, p.MicroBatch, p.GlobalBatch, p.Schedule, p.VirtualStages)
	}
	return fmt.Sprintf("(t=%d,d=%d,p=%d,m=%d,B=%d,%s)",
		p.Tensor, p.Data, p.Pipeline, p.MicroBatch, p.GlobalBatch, p.Schedule)
}

// ChunkLayers returns the decoder layers per model chunk under
// interleaving (stage layers when not interleaved). Valid plans divide
// evenly.
func (p Plan) ChunkLayers(m model.Config) int {
	if !p.Interleaved() {
		return p.MaxStageLayers(m)
	}
	return m.Layers / (p.Pipeline * p.VirtualStages)
}

// Validate checks the plan against a model and cluster. It enforces the
// structural rules only; memory feasibility is checked separately so design
// space exploration can report OOM points distinctly.
func (p Plan) Validate(m model.Config, c hw.Cluster) error {
	if p.Tensor < 1 || p.Data < 1 || p.Pipeline < 1 {
		return fmt.Errorf("parallel: degrees must be >= 1, got %s", p)
	}
	if p.MicroBatch < 1 {
		return fmt.Errorf("parallel: micro-batch must be >= 1, got %d", p.MicroBatch)
	}
	if p.GlobalBatch < 1 {
		return fmt.Errorf("parallel: global batch must be >= 1, got %d", p.GlobalBatch)
	}
	if got, want := p.GPUs(), c.TotalGPUs(); got > want {
		return fmt.Errorf("parallel: plan %s needs %d GPUs but cluster has %d", p, got, want)
	}
	// Tensor parallelism normally stays on NVLink; the paper's design
	// space additionally explores t up to 16 (two full nodes), which we
	// allow as whole-node multiples — the communication model then prices
	// those All-Reduces with the inter-node analytical model.
	if p.Tensor <= c.Node.GPUsPerNode {
		if c.Node.GPUsPerNode%p.Tensor != 0 {
			return fmt.Errorf("parallel: tensor parallelism %d does not divide node size %d",
				p.Tensor, c.Node.GPUsPerNode)
		}
	} else if p.Tensor%c.Node.GPUsPerNode != 0 {
		return fmt.Errorf("parallel: tensor parallelism %d spanning nodes must be a multiple of node size %d",
			p.Tensor, c.Node.GPUsPerNode)
	}
	if m.Heads%p.Tensor != 0 {
		return fmt.Errorf("parallel: tensor parallelism %d does not divide %d attention heads",
			p.Tensor, m.Heads)
	}
	if p.Pipeline > m.Layers {
		return fmt.Errorf("parallel: pipeline depth %d exceeds %d layers", p.Pipeline, m.Layers)
	}
	if p.GlobalBatch%(p.Data*p.MicroBatch) != 0 {
		return fmt.Errorf("parallel: global batch %d not divisible by data-parallel %d x micro-batch %d",
			p.GlobalBatch, p.Data, p.MicroBatch)
	}
	if p.GradientBuckets < 0 {
		return fmt.Errorf("parallel: gradient buckets must be >= 0, got %d", p.GradientBuckets)
	}
	if p.VirtualStages < 0 {
		return fmt.Errorf("parallel: virtual stages must be >= 0, got %d", p.VirtualStages)
	}
	if p.Interleaved() {
		v := p.VirtualStages
		if p.Schedule != OneFOneB {
			return fmt.Errorf("parallel: interleaving requires the 1F1B schedule")
		}
		if p.Pipeline < 2 {
			return fmt.Errorf("parallel: interleaving requires pipeline parallelism, got p=%d", p.Pipeline)
		}
		if m.Layers%(p.Pipeline*v) != 0 {
			return fmt.Errorf("parallel: %d layers not divisible by p*v = %d", m.Layers, p.Pipeline*v)
		}
		if p.MicroBatches()%p.Pipeline != 0 {
			return fmt.Errorf("parallel: interleaving requires micro-batch count %d divisible by pipeline depth %d",
				p.MicroBatches(), p.Pipeline)
		}
	}
	return nil
}

// StageLayers returns the number of decoder layers assigned to pipeline
// stage idx (0-based) for a model with L layers: layers are distributed as
// evenly as possible with earlier stages taking the remainder, matching
// Megatron's partitioning.
func (p Plan) StageLayers(m model.Config, idx int) int {
	base := m.Layers / p.Pipeline
	rem := m.Layers % p.Pipeline
	if idx < rem {
		return base + 1
	}
	return base
}

// MaxStageLayers returns the layer count of the most loaded stage.
func (p Plan) MaxStageLayers(m model.Config) int { return p.StageLayers(m, 0) }

// PeakMemoryBytes returns the plan's estimated per-GPU peak memory,
// honoring activation recomputation.
func (p Plan) PeakMemoryBytes(m model.Config) uint64 {
	if p.Recompute {
		return m.PeakMemoryBytesRecompute(p.MicroBatch, p.Tensor, p.Pipeline, p.InFlight())
	}
	return m.PeakMemoryBytes(p.MicroBatch, p.Tensor, p.Pipeline, p.InFlight())
}

// FitsMemory reports whether the plan's peak per-GPU memory fits the
// device, using the Megatron-style memory model.
func (p Plan) FitsMemory(m model.Config, g hw.GPU) bool {
	return p.PeakMemoryBytes(m) <= g.MemCapacity
}
