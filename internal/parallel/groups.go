package parallel

// Rank topology: how the t·d·p logical ranks map onto physical GPUs and
// which communication groups each rank belongs to. Megatron-LM orders ranks
// tensor-fastest, then data, then pipeline, so that tensor-parallel groups
// are contiguous GPUs inside one node (Fig. 3 of the paper).

// Rank identifies one GPU's coordinates in the 3D-parallel grid.
type Rank struct {
	// Tensor is the tensor-parallel index in [0, t).
	Tensor int
	// Data is the data-parallel index in [0, d).
	Data int
	// Pipeline is the pipeline-stage index in [0, p).
	Pipeline int
}

// Grid precomputes the rank layout of a plan.
type Grid struct {
	t, d, p int
}

// NewGrid builds the rank grid of a plan.
func NewGrid(p Plan) Grid { return Grid{t: p.Tensor, d: p.Data, p: p.Pipeline} }

// Size returns the total rank count.
func (g Grid) Size() int { return g.t * g.d * g.p }

// GlobalRank flattens coordinates (tensor-fastest order).
func (g Grid) GlobalRank(r Rank) int {
	return r.Tensor + g.t*(r.Data+g.d*r.Pipeline)
}

// RankOf inverts GlobalRank.
func (g Grid) RankOf(global int) Rank {
	t := global % g.t
	rest := global / g.t
	return Rank{Tensor: t, Data: rest % g.d, Pipeline: rest / g.d}
}

// TensorGroup returns the global ranks in r's tensor-parallel group (the
// ranks that All-Reduce activations over NVLink).
func (g Grid) TensorGroup(r Rank) []int {
	out := make([]int, g.t)
	for i := 0; i < g.t; i++ {
		out[i] = g.GlobalRank(Rank{Tensor: i, Data: r.Data, Pipeline: r.Pipeline})
	}
	return out
}

// DataGroup returns the global ranks in r's data-parallel group (the ranks
// that All-Reduce weight gradients).
func (g Grid) DataGroup(r Rank) []int {
	out := make([]int, g.d)
	for i := 0; i < g.d; i++ {
		out[i] = g.GlobalRank(Rank{Tensor: r.Tensor, Data: i, Pipeline: r.Pipeline})
	}
	return out
}

// PipelineGroup returns the global ranks in r's pipeline, stage order (the
// ranks that exchange Send-Receive activations).
func (g Grid) PipelineGroup(r Rank) []int {
	out := make([]int, g.p)
	for i := 0; i < g.p; i++ {
		out[i] = g.GlobalRank(Rank{Tensor: r.Tensor, Data: r.Data, Pipeline: i})
	}
	return out
}

// NodeOf returns the node index hosting a global rank given gpusPerNode,
// under the contiguous placement Megatron uses.
func NodeOf(global, gpusPerNode int) int { return global / gpusPerNode }

// DataGroupSpansNodes reports whether a data-parallel group crosses node
// boundaries (and therefore uses the inter-node analytical model rather
// than the NVLink profile).
func (g Grid) DataGroupSpansNodes(r Rank, gpusPerNode int) bool {
	group := g.DataGroup(r)
	first := NodeOf(group[0], gpusPerNode)
	for _, gr := range group[1:] {
		if NodeOf(gr, gpusPerNode) != first {
			return true
		}
	}
	return false
}
