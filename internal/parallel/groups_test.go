package parallel

import (
	"testing"
	"testing/quick"
)

func TestGridRoundTrip(t *testing.T) {
	g := NewGrid(Plan{Tensor: 4, Data: 2, Pipeline: 3})
	for r := 0; r < g.Size(); r++ {
		if got := g.GlobalRank(g.RankOf(r)); got != r {
			t.Fatalf("round trip %d -> %v -> %d", r, g.RankOf(r), got)
		}
	}
}

func TestTensorGroupContiguous(t *testing.T) {
	// Tensor-parallel groups must be contiguous GPU ranks (intra-node
	// NVLink placement, Fig. 3).
	g := NewGrid(Plan{Tensor: 4, Data: 2, Pipeline: 3})
	group := g.TensorGroup(Rank{Tensor: 1, Data: 1, Pipeline: 2})
	for i := 1; i < len(group); i++ {
		if group[i] != group[i-1]+1 {
			t.Fatalf("tensor group not contiguous: %v", group)
		}
	}
}

func TestGroupSizesAndMembership(t *testing.T) {
	p := Plan{Tensor: 2, Data: 3, Pipeline: 4}
	g := NewGrid(p)
	r := Rank{Tensor: 1, Data: 2, Pipeline: 3}
	if got := len(g.TensorGroup(r)); got != 2 {
		t.Errorf("tensor group size %d, want 2", got)
	}
	if got := len(g.DataGroup(r)); got != 3 {
		t.Errorf("data group size %d, want 3", got)
	}
	if got := len(g.PipelineGroup(r)); got != 4 {
		t.Errorf("pipeline group size %d, want 4", got)
	}
	self := g.GlobalRank(r)
	found := false
	for _, m := range g.DataGroup(r) {
		if m == self {
			found = true
		}
	}
	if !found {
		t.Fatal("rank missing from its own data group")
	}
}

func TestGroupsPartitionAllRanks(t *testing.T) {
	// Property: tensor groups partition the rank space (every rank in
	// exactly one group).
	f := func(t8, d8, p8 uint8) bool {
		plan := Plan{Tensor: int(t8)%4 + 1, Data: int(d8)%4 + 1, Pipeline: int(p8)%4 + 1}
		g := NewGrid(plan)
		seen := make(map[int]int)
		for dd := 0; dd < plan.Data; dd++ {
			for pp := 0; pp < plan.Pipeline; pp++ {
				for _, m := range g.TensorGroup(Rank{Data: dd, Pipeline: pp}) {
					seen[m]++
				}
			}
		}
		if len(seen) != g.Size() {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDataGroupSpansNodes(t *testing.T) {
	// t=8, d=2 on 8-GPU nodes: the DP group strides across nodes.
	g := NewGrid(Plan{Tensor: 8, Data: 2, Pipeline: 1})
	if !g.DataGroupSpansNodes(Rank{}, 8) {
		t.Fatal("t=8,d=2 data group must span nodes")
	}
	// t=2, d=4 fits inside one 8-GPU node.
	g = NewGrid(Plan{Tensor: 2, Data: 4, Pipeline: 1})
	if g.DataGroupSpansNodes(Rank{}, 8) {
		t.Fatal("t=2,d=4 data group must stay inside a node")
	}
}

func TestNodeOf(t *testing.T) {
	if NodeOf(0, 8) != 0 || NodeOf(7, 8) != 0 || NodeOf(8, 8) != 1 || NodeOf(63, 8) != 7 {
		t.Fatal("NodeOf contiguous placement broken")
	}
}
