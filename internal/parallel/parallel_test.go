package parallel

import (
	"testing"
	"testing/quick"

	"vtrain/internal/hw"
	"vtrain/internal/model"
)

func validPlan() Plan {
	return Plan{Tensor: 8, Data: 8, Pipeline: 8, MicroBatch: 1, GlobalBatch: 512}
}

func TestPlanGPUs(t *testing.T) {
	p := Plan{Tensor: 8, Data: 12, Pipeline: 21}
	if got, want := p.GPUs(), 2016; got != want {
		t.Fatalf("GPUs() = %d, want %d (Table I 'our findings' row 1)", got, want)
	}
}

func TestMicroBatches(t *testing.T) {
	// MT-NLG: batch 1920 sequences, d=8, m=1 -> 240 micro-batches.
	p := Plan{Tensor: 8, Data: 8, Pipeline: 35, MicroBatch: 1, GlobalBatch: 1920}
	if got := p.MicroBatches(); got != 240 {
		t.Fatalf("MicroBatches() = %d, want 240", got)
	}
	if z := (Plan{}).MicroBatches(); z != 0 {
		t.Fatalf("zero plan MicroBatches() = %d, want 0", z)
	}
}

func TestInFlight(t *testing.T) {
	p := Plan{Tensor: 1, Data: 1, Pipeline: 4, MicroBatch: 1, GlobalBatch: 16}
	if got := p.InFlight(); got != 4 { // 1F1B caps at pipeline depth
		t.Fatalf("1F1B InFlight = %d, want 4", got)
	}
	p.Schedule = GPipe
	if got := p.InFlight(); got != 16 { // GPipe holds all micro-batches
		t.Fatalf("GPipe InFlight = %d, want 16", got)
	}
	p.Schedule = OneFOneB
	p.Pipeline = 32 // deeper than micro-batch count
	if got := p.InFlight(); got != 16 {
		t.Fatalf("shallow-batch InFlight = %d, want 16", got)
	}
}

func TestValidate(t *testing.T) {
	m := model.Megatron18_4B()
	c := hw.PaperCluster(64)
	tests := []struct {
		name    string
		mutate  func(*Plan)
		wantErr bool
	}{
		{"valid", func(p *Plan) {}, false},
		{"zero tensor", func(p *Plan) { p.Tensor = 0 }, true},
		{"zero micro", func(p *Plan) { p.MicroBatch = 0 }, true},
		{"zero batch", func(p *Plan) { p.GlobalBatch = 0 }, true},
		{"too many gpus", func(p *Plan) { p.Data = 1000 }, true},
		{"tensor not dividing node", func(p *Plan) { p.Tensor = 3; p.Data = 4 }, true},
		{"tensor not dividing heads", func(p *Plan) { p.Tensor = 32; p.Data = 2 }, true}, // 48 heads % 32 != 0
		{"pipeline deeper than layers", func(p *Plan) { p.Pipeline = 41; p.Data = 1 }, true},
		{"batch not divisible", func(p *Plan) { p.GlobalBatch = 513 }, true},
		{"negative buckets", func(p *Plan) { p.GradientBuckets = -1 }, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := validPlan()
			tc.mutate(&p)
			err := p.Validate(m, c)
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate(%s) error = %v, wantErr %v", p, err, tc.wantErr)
			}
		})
	}
}

func TestValidateTensorAcrossNodes(t *testing.T) {
	// The Fig. 10 design space sweeps t up to 16 = two full nodes.
	m := model.MTNLG530B() // 128 heads: divisible by 16
	c := hw.PaperCluster(420)
	p := Plan{Tensor: 16, Data: 8, Pipeline: 15, MicroBatch: 1, GlobalBatch: 1920}
	if err := p.Validate(m, c); err != nil {
		t.Fatalf("t=16 spanning two nodes should validate: %v", err)
	}
	p.Tensor = 12 // not a node multiple
	p.Data = 1
	if err := p.Validate(m, c); err == nil {
		t.Fatal("t=12 spanning nodes should be rejected")
	}
}

func TestStageLayersPartition(t *testing.T) {
	m := model.MTNLG530B() // 105 layers
	p := Plan{Tensor: 8, Data: 8, Pipeline: 35}
	total := 0
	for i := 0; i < p.Pipeline; i++ {
		total += p.StageLayers(m, i)
	}
	if total != m.Layers {
		t.Fatalf("stage layers sum to %d, want %d", total, m.Layers)
	}
	if got := p.StageLayers(m, 0); got != 3 {
		t.Fatalf("105/35: StageLayers(0) = %d, want 3", got)
	}
}

func TestStageLayersUnevenPartition(t *testing.T) {
	m := model.Config{Name: "u", Hidden: 128, Layers: 10, SeqLen: 64, Heads: 2, Vocab: 100}
	p := Plan{Tensor: 1, Data: 1, Pipeline: 4}
	want := []int{3, 3, 2, 2}
	total := 0
	for i, w := range want {
		if got := p.StageLayers(m, i); got != w {
			t.Errorf("StageLayers(%d) = %d, want %d", i, got, w)
		}
		total += p.StageLayers(m, i)
	}
	if total != m.Layers {
		t.Fatalf("uneven partition sums to %d, want %d", total, m.Layers)
	}
	if p.MaxStageLayers(m) != 3 {
		t.Fatalf("MaxStageLayers = %d, want 3", p.MaxStageLayers(m))
	}
}

func TestStageLayersAlwaysPartition(t *testing.T) {
	// Property: for any (L, p) with p <= L, stage layers are a partition
	// with max-min <= 1.
	f := func(l8, p8 uint8) bool {
		layers := int(l8)%120 + 1
		depth := int(p8)%layers + 1
		m := model.Config{Name: "q", Hidden: 64, Layers: layers, SeqLen: 8, Heads: 1, Vocab: 10}
		pl := Plan{Tensor: 1, Data: 1, Pipeline: depth}
		sum, mn, mx := 0, layers+1, 0
		for i := 0; i < depth; i++ {
			s := pl.StageLayers(m, i)
			sum += s
			if s < mn {
				mn = s
			}
			if s > mx {
				mx = s
			}
		}
		return sum == layers && mx-mn <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFitsMemoryRecomputeRescuesMTNLG(t *testing.T) {
	m := model.MTNLG530B()
	g := hw.A100SXM80GB()
	p := Plan{Tensor: 8, Data: 8, Pipeline: 35, MicroBatch: 1, GlobalBatch: 1920}
	if p.FitsMemory(m, g) {
		t.Fatal("MT-NLG (8,8,35) without recompute should not fit 80 GiB")
	}
	p.Recompute = true
	if !p.FitsMemory(m, g) {
		t.Fatal("MT-NLG (8,8,35) with recompute should fit 80 GiB")
	}
}

func TestScheduleString(t *testing.T) {
	if OneFOneB.String() != "1F1B" || GPipe.String() != "GPipe" {
		t.Fatal("schedule names changed")
	}
	if Schedule(9).String() != "Schedule(9)" {
		t.Fatal("unknown schedule formatting changed")
	}
}
