package artifact

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vtrain/internal/comm"
	"vtrain/internal/gpu"
	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/opgraph"
	"vtrain/internal/parallel"
	"vtrain/internal/profiler"
	"vtrain/internal/taskgraph"
)

// testGraph lowers one real structural graph — corruption tests must
// exercise the decoder against genuine encodings, not synthetic byte
// strings.
func testGraph(t testing.TB) *taskgraph.Graph {
	t.Helper()
	c := hw.PaperCluster(8)
	m := model.Config{Name: "tiny", Hidden: 256, Layers: 4, SeqLen: 128, Heads: 4, Vocab: 1024}
	plan := parallel.Plan{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 8, GradientBuckets: 2}
	og, err := opgraph.Build(m, plan, c)
	if err != nil {
		t.Fatal(err)
	}
	return taskgraph.Lower(og, profiler.New(gpu.NewDevice(c.Node.GPU)), taskgraph.OperatorLevel)
}

// TestStoreContentionEquivalence locks the contention fidelity level over
// the disk tier end to end: a graph saved to and reloaded from a Store
// must replay byte-identically to the original under contention — the
// store path adds framing, checksums, and zero-copy aliasing on top of the
// codec, and none of it may perturb the contended schedule.
func TestStoreContentionEquivalence(t *testing.T) {
	c := hw.PaperCluster(8)
	m := model.Config{Name: "tiny", Hidden: 256, Layers: 4, SeqLen: 128, Heads: 4, Vocab: 1024}
	plan := parallel.Plan{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 8, GradientBuckets: 2}
	og, err := opgraph.Build(m, plan, c)
	if err != nil {
		t.Fatal(err)
	}
	prof := profiler.New(gpu.NewDevice(c.Node.GPU))
	g := taskgraph.Lower(og, prof, taskgraph.OperatorLevel)

	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("contention-equivalence")
	if !st.SaveGraph(key, g) {
		t.Fatal("SaveGraph failed")
	}
	got, ok := st.LoadGraph(key)
	if !ok {
		t.Fatal("LoadGraph failed")
	}

	cm := comm.NewModel(c)
	tbl := g.Bind(prof, cm, plan, c)
	defer tbl.Release()
	gtbl := got.Bind(prof, cm, plan, c)
	defer gtbl.Release()
	ref, err := g.ReplayContended(tbl, g.BindContention(plan, c, tbl))
	if err != nil {
		t.Fatal(err)
	}
	res, err := got.ReplayContended(gtbl, got.BindContention(plan, c, gtbl))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, ref) {
		t.Fatalf("contended replay of store-loaded graph = %+v, want %+v", res, ref)
	}
}

func TestKeyIsLengthPrefixed(t *testing.T) {
	if Key("a", "b") != Key("a", "b") {
		t.Fatal("Key is not deterministic")
	}
	if Key("a", "b") == Key("ab") {
		t.Fatal("concatenation collides")
	}
	if Key("a", "b") == Key("a", "b", "") {
		t.Fatal("trailing empty part collides")
	}
}

// assertGraphEquivalent verifies a store-loaded graph reproduces the saved
// one task for task, edge for edge, and label for label, fetching labels
// through the store's companion label artifact exactly as a trace would.
func assertGraphEquivalent(t *testing.T, st *Store, key string, got, want *taskgraph.Graph) {
	t.Helper()
	if got.NumTasks() != want.NumTasks() || got.LabelCount() != want.LabelCount() {
		t.Fatalf("loaded graph has %d tasks / %d labels, want %d / %d",
			got.NumTasks(), got.LabelCount(), want.NumTasks(), want.LabelCount())
	}
	got.SetLabelSource(func() *opgraph.LabelTable {
		lt, _ := st.LoadLabels(key)
		return lt
	})
	for id := 0; id < want.NumTasks(); id++ {
		if got.TaskAt(id) != want.TaskAt(id) ||
			got.TaskLabel(id) != want.TaskLabel(id) ||
			!reflect.DeepEqual(got.Children(id), want.Children(id)) {
			t.Fatalf("loaded graph differs from the saved one at task %d", id)
		}
	}
}

func TestGraphRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t)
	key := Key("graph", "test")

	if _, ok := st.LoadGraph(key); ok {
		t.Fatal("load from an empty store succeeded")
	}
	if !st.SaveGraph(key, g) {
		t.Fatal("save failed")
	}
	got, ok := st.LoadGraph(key)
	if !ok {
		t.Fatal("load after save missed")
	}
	// One graph save writes two artifacts: structure and labels. The label
	// load below (through assertGraphEquivalent's source) adds a hit.
	if s := st.Stats(); s != (Stats{Hits: 1, Misses: 1, Writes: 2}) {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 2 writes", s)
	}
	assertGraphEquivalent(t, st, key, got, g)
	if s := st.Stats(); s != (Stats{Hits: 2, Misses: 1, Writes: 2}) {
		t.Fatalf("stats after label load = %+v, want 2 hits / 1 miss / 2 writes", s)
	}

	// A second store over the same directory starts cold on counters but
	// warm on content: the cross-process case.
	st2, err := Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st2.LoadGraph(key); !ok {
		t.Fatal("fresh store over the same directory missed")
	}
}

func TestOperatorsRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	entries := []profiler.TableEntry{
		{
			Key: profiler.Key{Kind: profiler.FwdMHA, Hidden: 256, SeqLen: 128, Heads: 4, MicroBatch: 1, Tensor: 2},
			Tasks: []profiler.Task{
				{Kernel: gpu.Kernel{Name: "gemm_qkv", Duration: 1e-5, FLOPs: 3e9, Bytes: 2e6}, Duration: 1.5e-5},
				{Kernel: gpu.Kernel{Name: "softmax", Duration: 2e-6, Bytes: 1e6}, Duration: 2e-6},
			},
		},
		{
			Key:   profiler.Key{Kind: profiler.WeightUpdate, Params: 1 << 30},
			Tasks: []profiler.Task{{Kernel: gpu.Kernel{Name: "adam"}, Duration: 4e-4}},
		},
	}
	key := Key("ops", "test")
	if _, ok := st.LoadOperators(key); ok {
		t.Fatal("load from an empty store succeeded")
	}
	if !st.SaveOperators(key, entries) {
		t.Fatal("save failed")
	}
	got, ok := st.LoadOperators(key)
	if !ok {
		t.Fatal("load after save missed")
	}
	if !reflect.DeepEqual(got, entries) {
		t.Fatalf("loaded table = %+v, want %+v", got, entries)
	}
}

// TestCorruptArtifactsAreMisses mangles every byte region of a stored
// artifact — magic, container version, kind tag, length, checksum, payload,
// truncations — and requires each mangled file to load as a silent miss,
// after which a re-save must fully recover the entry. A corrupt cache may
// cost time; it must never cost correctness or crash the process.
func TestCorruptArtifactsAreMisses(t *testing.T) {
	g := testGraph(t)
	key := Key("graph", "corruption")
	path := func(st *Store) string { return filepath.Join(st.Dir(), graphFile(key)) }

	mangles := []struct {
		name string
		fn   func(data []byte) []byte
	}{
		{"empty file", func(data []byte) []byte { return nil }},
		{"truncated header", func(data []byte) []byte { return data[:headerSize-1] }},
		{"truncated payload", func(data []byte) []byte { return data[:len(data)-1] }},
		{"flipped magic", flipByte(0)},
		{"flipped container version", flipByte(8)},
		{"flipped kind tag", flipByte(12)},
		{"flipped payload length", flipByte(16)},
		{"flipped checksum", flipByte(24)},
		{"flipped payload start", flipByte(headerSize)},
		{"flipped payload middle", func(data []byte) []byte {
			data[headerSize+(len(data)-headerSize)/2] ^= 0x40
			return data
		}},
		{"flipped payload end", func(data []byte) []byte {
			data[len(data)-1] ^= 0x01
			return data
		}},
	}
	for _, m := range mangles {
		t.Run(m.name, func(t *testing.T) {
			st, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if !st.SaveGraph(key, g) {
				t.Fatal("save failed")
			}
			data, err := os.ReadFile(path(st))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path(st), m.fn(data), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := st.LoadGraph(key); ok {
				t.Fatal("corrupt artifact loaded successfully")
			}
			// Recovery: the slot is re-writable and serves again.
			if !st.SaveGraph(key, g) {
				t.Fatal("re-save over the corrupt file failed")
			}
			got, ok := st.LoadGraph(key)
			if !ok {
				t.Fatal("re-saved artifact did not recover")
			}
			assertGraphEquivalent(t, st, key, got, g)
		})
	}
}

// TestCorruptLabelArtifactIsMiss mangles the companion label file of an
// intact graph artifact: the graph must still load (labels are not on the
// sweeping path), the label load must be a silent miss, and a re-save must
// recover it.
func TestCorruptLabelArtifactIsMiss(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t)
	key := Key("graph", "labels")
	if !st.SaveGraph(key, g) {
		t.Fatal("save failed")
	}
	lpath := filepath.Join(st.Dir(), labelsFile(key))
	data, err := os.ReadFile(lpath)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+(len(data)-headerSize)/2] ^= 0x40
	if err := os.WriteFile(lpath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.LoadGraph(key); !ok {
		t.Fatal("graph load should not depend on the label artifact")
	}
	if _, ok := st.LoadLabels(key); ok {
		t.Fatal("corrupt label artifact loaded successfully")
	}
	if !st.SaveGraph(key, g) {
		t.Fatal("re-save failed")
	}
	lt, ok := st.LoadLabels(key)
	if !ok || lt.Len() != g.LabelCount() {
		t.Fatal("re-saved label artifact did not recover")
	}
}

func flipByte(off int) func([]byte) []byte {
	return func(data []byte) []byte {
		data[off] ^= 0x80
		return data
	}
}

// TestPayloadVersionSkewIsMiss re-frames a payload whose *encoding* version
// is from the future with a correct container checksum: the container
// validates, the payload decoder must still reject it as a miss.
func TestPayloadVersionSkewIsMiss(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t)
	payload, err := g.MarshalArtifact()
	if err != nil {
		t.Fatal(err)
	}
	payload[0] ^= 0xFF // encoding version is the payload's first u32
	if !st.write(graphFile("skew"), kindGraph, payload) {
		t.Fatal("framed write failed")
	}
	if _, ok := st.LoadGraph("skew"); ok {
		t.Fatal("version-skewed payload loaded successfully")
	}
}

// TestKindConfusionIsMiss stores an operator table, then asks for it as a
// graph: the kind tag must keep the two namespaces apart even under a key
// collision.
func TestKindConfusionIsMiss(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := encodeOps(nil)
	if !st.write(graphFile("confused"), kindOps, payload) {
		t.Fatal("framed write failed")
	}
	if _, ok := st.LoadGraph("confused"); ok {
		t.Fatal("ops-kind artifact loaded as a graph")
	}
}
