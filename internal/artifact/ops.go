package artifact

// Operator-table persistence: the profiler's cache of operator-to-kernel
// decompositions, saved alongside the structural graphs so a warm-start
// process skips analytic profiling as well as lowering. The table is tiny
// (one entry per distinct operator shape the sweep touched) and keyed by
// the device it was profiled on, so a different GPU never reads another's
// timings.

import (
	"encoding/binary"
	"math"

	"vtrain/internal/gpu"
	"vtrain/internal/profiler"
)

// OpsEncodingVersion identifies the operator-table payload layout.
const OpsEncodingVersion = 1

// LoadOperators loads the operator table stored under key, reporting false
// — and counting a miss — on absence, corruption, or version skew.
func (s *Store) LoadOperators(key string) ([]profiler.TableEntry, bool) {
	payload, ok := s.read(opsFile(key), kindOps)
	if ok {
		if entries, ok := decodeOps(payload); ok {
			s.hits.Add(1)
			return entries, true
		}
	}
	s.misses.Add(1)
	return nil, false
}

// SaveOperators persists the operator table under key. Like SaveGraph,
// failures are reported but never returned as errors.
func (s *Store) SaveOperators(key string, entries []profiler.TableEntry) bool {
	if !s.write(opsFile(key), kindOps, encodeOps(entries)) {
		return false
	}
	s.writes.Add(1)
	return true
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func encodeOps(entries []profiler.TableEntry) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, OpsEncodingVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		for _, v := range []int{int(e.Key.Kind), e.Key.Hidden, e.Key.SeqLen, e.Key.Heads, e.Key.Vocab, e.Key.MicroBatch, e.Key.Tensor} {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(v)))
		}
		buf = binary.LittleEndian.AppendUint64(buf, e.Key.Params)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.Tasks)))
		for _, t := range e.Tasks {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.Kernel.Name)))
			buf = append(buf, t.Kernel.Name...)
			buf = appendF64(buf, t.Kernel.Duration)
			buf = appendF64(buf, t.Kernel.FLOPs)
			buf = appendF64(buf, t.Kernel.Bytes)
			buf = appendF64(buf, t.Duration)
		}
	}
	return buf
}

func decodeOps(payload []byte) ([]profiler.TableEntry, bool) {
	off := 0
	u32 := func() (uint32, bool) {
		if off+4 > len(payload) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(payload[off:])
		off += 4
		return v, true
	}
	u64 := func() (uint64, bool) {
		if off+8 > len(payload) {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(payload[off:])
		off += 8
		return v, true
	}
	ver, ok := u32()
	if !ok || ver != OpsEncodingVersion {
		return nil, false
	}
	n, ok := u32()
	if !ok || uint64(n) > uint64(len(payload)-off) {
		return nil, false
	}
	entries := make([]profiler.TableEntry, 0, n)
	for i := uint32(0); i < n; i++ {
		var e profiler.TableEntry
		ints := make([]int64, 7)
		for j := range ints {
			v, ok := u64()
			if !ok {
				return nil, false
			}
			ints[j] = int64(v)
		}
		e.Key.Kind = profiler.OpKind(ints[0])
		if e.Key.Kind < 0 || e.Key.Kind > profiler.WeightUpdate {
			return nil, false
		}
		e.Key.Hidden, e.Key.SeqLen, e.Key.Heads = int(ints[1]), int(ints[2]), int(ints[3])
		e.Key.Vocab, e.Key.MicroBatch, e.Key.Tensor = int(ints[4]), int(ints[5]), int(ints[6])
		params, ok := u64()
		if !ok {
			return nil, false
		}
		e.Key.Params = params
		nt, ok := u32()
		if !ok || uint64(nt) > uint64(len(payload)-off) {
			return nil, false
		}
		e.Tasks = make([]profiler.Task, 0, nt)
		for j := uint32(0); j < nt; j++ {
			nameLen, ok := u32()
			if !ok || int(nameLen) > len(payload)-off {
				return nil, false
			}
			name := string(payload[off : off+int(nameLen)])
			off += int(nameLen)
			var f [4]float64
			for k := range f {
				v, ok := u64()
				if !ok {
					return nil, false
				}
				f[k] = math.Float64frombits(v)
			}
			e.Tasks = append(e.Tasks, profiler.Task{
				Kernel:   gpu.Kernel{Name: name, Duration: f[0], FLOPs: f[1], Bytes: f[2]},
				Duration: f[3],
			})
		}
		entries = append(entries, e)
	}
	if off != len(payload) {
		return nil, false
	}
	return entries, true
}
