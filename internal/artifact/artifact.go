// Package artifact implements the persistent, content-addressed tier of
// the simulator's structural cache: lowered task graphs and the profiler's
// operator table, serialized to flat checksummed files so a fresh process
// (a restarted vtrain-server, a one-shot CLI run) starts warm instead of
// re-paying work any prior process already did — the same idea as the
// compiled-artifact caches of production ML compilers.
//
// Files are addressed by the hex SHA-256 of their logical key (shape key,
// fidelity, encoding version, build ID), so a key change — new code, new
// encoding — simply misses and re-lowers; nothing is ever invalidated in
// place. Every file carries a magic, a container format version, a kind
// tag, and a CRC-32C of its payload (corruption detection, not
// authentication: loads must run at memory speed, and Castagnoli CRC is
// hardware-accelerated while still catching truncation, bit flips, and
// torn writes). Any mismatch — truncation, bit flips, version skew, a
// concurrent writer's partial file — makes the load a silent miss, never
// an error: the caller falls back to lowering, exactly as if the file did
// not exist.
package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"vtrain/internal/opgraph"
	"vtrain/internal/taskgraph"
)

// FormatVersion is the on-disk container version: magic, header, checksum
// framing. The payload encodings carry their own versions on top
// (taskgraph.EncodingVersion, OpsEncodingVersion).
const FormatVersion = 1

const (
	magic      = "VTRNART\x01"
	headerSize = 8 + 4 + 4 + 8 + 4

	kindGraph  uint32 = 1
	kindOps    uint32 = 2
	kindLabels uint32 = 3
)

// castagnoli is the CRC-32C table; SSE4.2 / ARMv8 hosts compute it in
// hardware, so checksumming never dominates a warm load.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Store is one on-disk artifact directory plus its load/store counters.
// All methods are safe for concurrent use; a Store is shared by every
// simulator of a serving pool, so the counters are store-wide totals.
type Store struct {
	dir                  string
	hits, misses, writes atomic.Uint64
}

// Stats is a snapshot of the store's counters. Hits and misses count load
// attempts (a corrupt or version-skewed file is a miss); writes count
// successfully persisted artifacts.
type Stats struct {
	Hits, Misses, Writes uint64
}

// Open creates (if needed) and opens the artifact directory. Unlike loads
// and saves, an unusable directory is a loud error: the caller asked for
// persistence and should hear that it cannot have it.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the directory the store persists into.
func (s *Store) Dir() string { return s.dir }

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	return Stats{Hits: s.hits.Load(), Misses: s.misses.Load(), Writes: s.writes.Load()}
}

// Key hashes the given key parts into the store's content address. Parts
// are length-prefixed before hashing, so no two distinct part lists
// collide by concatenation.
func Key(parts ...string) string {
	h := sha256.New()
	var lenbuf [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(lenbuf[:], uint64(len(p)))
		h.Write(lenbuf[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

var buildIDOnce = sync.OnceValue(func() string {
	id := runtime.Version()
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, st := range bi.Settings {
			switch st.Key {
			case "vcs.revision":
				id += "-" + st.Value
			case "vcs.modified":
				if st.Value == "true" {
					id += "-dirty"
				}
			}
		}
	}
	return id
})

// BuildID identifies the running binary for cache-key purposes: the Go
// toolchain version plus the VCS revision (and a dirty marker) when the
// binary carries build info. Two binaries built from the same revision
// lower identical structures, so their artifacts are interchangeable;
// anything else gets a different key and misses.
func BuildID() string { return buildIDOnce() }

// LoadGraph loads the structural graph stored under key, reporting false
// — and counting a miss — if the file is absent, corrupt, or from a
// different format/encoding version.
func (s *Store) LoadGraph(key string) (*taskgraph.Graph, bool) {
	payload, ok := s.read(graphFile(key), kindGraph)
	if ok {
		if g, err := taskgraph.UnmarshalArtifact(payload); err == nil {
			s.hits.Add(1)
			return g, true
		}
	}
	s.misses.Add(1)
	return nil, false
}

// SaveGraph persists a lowered structural graph under key: the structure
// payload in one file, the label table in a companion file (labels are
// over half the bytes and only traces read them, so warm sweeps load pure
// structure). Failures are reported, not returned as errors: persistence
// is an optimization, and a full disk must not fail the simulation that
// produced the graph.
func (s *Store) SaveGraph(key string, g *taskgraph.Graph) bool {
	payload, err := g.MarshalArtifact()
	if err != nil {
		return false
	}
	if !s.write(graphFile(key), kindGraph, payload) {
		return false
	}
	s.writes.Add(1)
	if labels, err := g.MarshalLabels(); err == nil && s.write(labelsFile(key), kindLabels, labels) {
		s.writes.Add(1)
	}
	return true
}

// LoadLabels loads the label table stored under key, reporting false — and
// counting a miss — if the file is absent, corrupt, or version-skewed.
// Only trace rendering ever calls it, through the lazy label source a
// loaded graph carries.
func (s *Store) LoadLabels(key string) (*opgraph.LabelTable, bool) {
	payload, ok := s.read(labelsFile(key), kindLabels)
	if ok {
		if t, err := taskgraph.UnmarshalLabels(payload); err == nil {
			s.hits.Add(1)
			return t, true
		}
	}
	s.misses.Add(1)
	return nil, false
}

func graphFile(key string) string  { return "g-" + key }
func opsFile(key string) string    { return "ops-" + key }
func labelsFile(key string) string { return "l-" + key }

// read loads and unframes one artifact file; any problem is a silent miss.
func (s *Store) read(name string, kind uint32) ([]byte, bool) {
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		return nil, false
	}
	if len(data) < headerSize || string(data[:8]) != magic {
		return nil, false
	}
	ver := binary.LittleEndian.Uint32(data[8:12])
	k := binary.LittleEndian.Uint32(data[12:16])
	plen := binary.LittleEndian.Uint64(data[16:24])
	if ver != FormatVersion || k != kind {
		return nil, false
	}
	payload := data[headerSize:]
	if uint64(len(payload)) != plen {
		return nil, false
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[24:headerSize]) {
		return nil, false
	}
	return payload, true
}

// write frames and atomically persists one artifact file (temp file +
// rename), so concurrent readers only ever see complete files.
func (s *Store) write(name string, kind uint32, payload []byte) bool {
	buf := make([]byte, headerSize, headerSize+len(payload))
	copy(buf, magic)
	binary.LittleEndian.PutUint32(buf[8:12], FormatVersion)
	binary.LittleEndian.PutUint32(buf[12:16], kind)
	binary.LittleEndian.PutUint64(buf[16:24], uint64(len(payload)))
	binary.LittleEndian.PutUint32(buf[24:headerSize], crc32.Checksum(payload, castagnoli))
	buf = append(buf, payload...)

	f, err := os.CreateTemp(s.dir, name+".tmp-*")
	if err != nil {
		return false
	}
	_, werr := f.Write(buf)
	cerr := f.Close()
	if werr != nil || cerr != nil {
		os.Remove(f.Name())
		return false
	}
	if err := os.Rename(f.Name(), filepath.Join(s.dir, name)); err != nil {
		os.Remove(f.Name())
		return false
	}
	return true
}
