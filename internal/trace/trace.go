// Package trace generates the multi-tenant workload traces of Section V-B.
//
// The paper samples job inter-arrival times from Microsoft's internal ITP
// cluster traces; those are not public, so this package synthesizes traces
// with the published shape — bursty, heavy-tailed (log-normal)
// inter-arrival gaps — with every trace fully determined by its ID, so the
// nine traces of Fig. 12/13 are reproducible. Each arriving job draws one
// of the three Table III model configurations, a training length, and
// (optionally) a deadline-slack factor λ ~ U[0.5, 1.5] exactly as the paper
// does.
package trace

import (
	"fmt"

	"vtrain/internal/model"
	"vtrain/internal/stats"
)

// Job is one LLM training job submitted to the cluster.
type Job struct {
	// ID is unique within the trace.
	ID int
	// Arrival is the submission time in seconds from trace start.
	Arrival float64
	// Model is the LLM to train (one of Table III).
	Model model.Config
	// GlobalBatch is the job's iteration batch in sequences (Table III).
	GlobalBatch int
	// Iterations is the number of training iterations requested.
	Iterations uint64
	// SlackFactor is the deadline slack λ drawn from U[0.5, 1.5]; the
	// scheduler converts it into an absolute deadline using the job's
	// reference duration. Zero means the job has no deadline.
	SlackFactor float64
}

// Options shape a synthetic trace.
type Options struct {
	// Jobs is the number of jobs (paper: 16-128).
	Jobs int
	// ArrivalWindow is the span in seconds during which all jobs arrive
	// (the paper fixes a window so bigger traces stress the cluster
	// harder). Zero makes all jobs arrive at time zero (the makespan
	// experiments).
	ArrivalWindow float64
	// WithDeadlines draws λ ~ U[0.5, 1.5] per job.
	WithDeadlines bool
	// MinIterations / MaxIterations bound the training length.
	MinIterations, MaxIterations uint64
}

// DefaultOptions matches the Fig. 12 experiments: jobs arriving across a
// 200-hour window with deadlines.
func DefaultOptions(jobs int) Options {
	return Options{
		Jobs:          jobs,
		ArrivalWindow: 200 * 3600,
		WithDeadlines: true,
		MinIterations: 500,
		MaxIterations: 5000,
	}
}

// Generate synthesizes trace number id with the given options. The same
// (id, opts) always yields the same jobs.
func Generate(id int, opts Options) ([]Job, error) {
	if opts.Jobs <= 0 {
		return nil, fmt.Errorf("trace: need at least one job, got %d", opts.Jobs)
	}
	if opts.MaxIterations < opts.MinIterations {
		return nil, fmt.Errorf("trace: iteration bounds inverted [%d, %d]", opts.MinIterations, opts.MaxIterations)
	}
	rng := stats.NewRand(0xC0FFEE ^ uint64(id)*0x9E3779B97F4A7C15)
	zoo := model.TableIII()

	// Heavy-tailed inter-arrival gaps, normalized to the window.
	gaps := make([]float64, opts.Jobs)
	var total float64
	for i := range gaps {
		gaps[i] = rng.LogNormal(0, 1.2)
		total += gaps[i]
	}

	jobs := make([]Job, opts.Jobs)
	arrival := 0.0
	for i := range jobs {
		if opts.ArrivalWindow > 0 {
			arrival += gaps[i] / total * opts.ArrivalWindow
		}
		pick := zoo[rng.Intn(len(zoo))]
		span := opts.MaxIterations - opts.MinIterations + 1
		iters := opts.MinIterations + rng.Uint64()%span
		j := Job{
			ID:          i,
			Arrival:     arrival,
			Model:       pick.Config,
			GlobalBatch: pick.Batch,
			Iterations:  iters,
		}
		if opts.WithDeadlines {
			j.SlackFactor = rng.Uniform(0.5, 1.5)
		}
		jobs[i] = j
	}
	return jobs, nil
}
