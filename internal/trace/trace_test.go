package trace

import (
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(3, DefaultOptions(64))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(3, DefaultOptions(64))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("non-deterministic job count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs between identical generations", i)
		}
	}
}

func TestTracesDifferByID(t *testing.T) {
	a, _ := Generate(1, DefaultOptions(64))
	b, _ := Generate(2, DefaultOptions(64))
	same := true
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].Iterations != b[i].Iterations {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different trace IDs produced identical traces")
	}
}

func TestArrivalsOrderedWithinWindow(t *testing.T) {
	opts := DefaultOptions(128)
	jobs, err := Generate(7, opts)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, j := range jobs {
		if j.Arrival < prev {
			t.Fatal("arrivals not monotone")
		}
		prev = j.Arrival
	}
	if last := jobs[len(jobs)-1].Arrival; last > opts.ArrivalWindow+1e-6 {
		t.Fatalf("last arrival %.0f outside window %.0f", last, opts.ArrivalWindow)
	}
}

func TestFixedWindowStressesWithMoreJobs(t *testing.T) {
	// The paper fixes the arrival window, so 128-job traces stress the
	// cluster harder than 64-job traces: mean inter-arrival must shrink.
	j64, _ := Generate(5, DefaultOptions(64))
	j128, _ := Generate(5, DefaultOptions(128))
	gap := func(js []Job) float64 { return js[len(js)-1].Arrival / float64(len(js)) }
	if gap(j128) >= gap(j64) {
		t.Fatalf("128-job trace not denser: %.0f vs %.0f", gap(j128), gap(j64))
	}
}

func TestBatchArrivalForMakespan(t *testing.T) {
	opts := Options{Jobs: 16, MinIterations: 10, MaxIterations: 20}
	jobs, err := Generate(1, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.Arrival != 0 {
			t.Fatal("zero window must mean simultaneous arrival")
		}
		if j.SlackFactor != 0 {
			t.Fatal("deadlines must be off by default")
		}
	}
}

func TestJobFieldsWithinBounds(t *testing.T) {
	f := func(id uint8, n uint8) bool {
		opts := DefaultOptions(int(n)%64 + 1)
		jobs, err := Generate(int(id), opts)
		if err != nil {
			return false
		}
		for _, j := range jobs {
			if j.Iterations < opts.MinIterations || j.Iterations > opts.MaxIterations {
				return false
			}
			if j.SlackFactor < 0.5 || j.SlackFactor >= 1.5 {
				return false
			}
			if j.GlobalBatch <= 0 || j.Model.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestModelMixCoversTableIII(t *testing.T) {
	jobs, _ := Generate(11, DefaultOptions(128))
	seen := map[string]bool{}
	for _, j := range jobs {
		seen[j.Model.Name] = true
	}
	if len(seen) != 3 {
		t.Fatalf("job mix covers %d models, want all 3 of Table III", len(seen))
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(1, Options{Jobs: 0}); err == nil {
		t.Fatal("zero jobs must error")
	}
	if _, err := Generate(1, Options{Jobs: 1, MinIterations: 10, MaxIterations: 5}); err == nil {
		t.Fatal("inverted iteration bounds must error")
	}
}

func TestUniqueIDs(t *testing.T) {
	jobs, _ := Generate(9, DefaultOptions(64))
	seen := map[int]bool{}
	for _, j := range jobs {
		if seen[j.ID] {
			t.Fatalf("duplicate job ID %d", j.ID)
		}
		seen[j.ID] = true
	}
}
