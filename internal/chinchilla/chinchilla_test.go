package chinchilla

import (
	"math"
	"testing"

	"vtrain/internal/core"
	"vtrain/internal/hw"
	"vtrain/internal/taskgraph"
)

func TestBudgetMatchesPaper(t *testing.T) {
	// Section V-C: 3,360 A100s for 30 days at 100 % utility is a budget
	// of C = 2.72e24 FLOPs.
	c := Budget(3360, 30, 312e12)
	if math.Abs(c-2.72e24)/2.72e24 > 0.01 {
		t.Fatalf("Budget = %.3g, want ~2.72e24", c)
	}
}

func TestNaivePointMatchesPaper(t *testing.T) {
	// Paper: N = 145.61B parameters, T = 2,912B tokens at C = 2.72e24.
	n, tok := NaivePoint(Budget(3360, 30, 312e12))
	if math.Abs(n-145.61e9)/145.61e9 > 0.02 {
		t.Fatalf("naive N = %.4g, want ~145.61e9", n)
	}
	if math.Abs(tok-2912e9)/2912e9 > 0.02 {
		t.Fatalf("naive T = %.4g, want ~2912e9", tok)
	}
	if math.Abs(tok/n-TokensPerParam) > 1e-9 {
		t.Fatal("T must equal 20·N")
	}
}

func TestNaiveDaysRoundTrips(t *testing.T) {
	c := Budget(3360, 30, 312e12)
	n, tok := NaivePoint(c)
	// Chinchilla uses C = 6·N·T, and alpha·beta ~ 1/6, so training the
	// naive point at 100 % utility takes approximately the full budget.
	days := NaiveDays(n, tok, 3360, 312e12)
	if math.Abs(days-30)/30 > 0.05 {
		t.Fatalf("naive round trip = %.2f days, want ~30", days)
	}
}

func TestCandidatesMatchTableIV(t *testing.T) {
	cands := Candidates()
	if len(cands) != 7 {
		t.Fatalf("candidates = %d, want 7 (Table IV rows)", len(cands))
	}
	// Parameter counts must match the table's Parameters column.
	wantB := []float64{145.61, 127.49, 109.37, 88.62, 76.04, 82.03, 71.83}
	for i, c := range cands {
		if err := c.Validate(); err != nil {
			t.Fatalf("candidate %d: %v", i, err)
		}
		got := c.ParamsBillions()
		if math.Abs(got-wantB[i])/wantB[i] > 0.01 {
			t.Errorf("candidate %d: %.2fB params, want %.2fB", i, got, wantB[i])
		}
	}
	// Largest first, so Search picks the biggest feasible model.
	if cands[0].ParamsBillions() < cands[1].ParamsBillions() {
		t.Fatal("candidates must be ordered largest first")
	}
}

func TestEvaluateSmallScale(t *testing.T) {
	// A scaled-down evaluation exercises the full path quickly.
	sim, err := core.New(hw.PaperCluster(8), core.WithFidelity(taskgraph.OperatorLevel))
	if err != nil {
		t.Fatal(err)
	}
	m := Candidates()[6] // 71.83B, the smallest
	pt, err := Evaluate(sim, m, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Plan.GPUs() != 64 {
		t.Fatalf("plan %s does not use exactly 64 GPUs", pt.Plan)
	}
	if pt.IterTime <= 0 || pt.Days <= 0 {
		t.Fatal("degenerate evaluation")
	}
	if math.Abs(pt.Tokens-TokensPerParam*pt.Params) > 1 {
		t.Fatal("tokens must be 20x params")
	}
	if pt.Utilization <= 0.05 || pt.Utilization >= 1 {
		t.Fatalf("utilization %.3f implausible", pt.Utilization)
	}
}

func TestSearchTableIV(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table IV search is slow")
	}
	sim, err := core.New(hw.PaperCluster(420), core.WithFidelity(taskgraph.OperatorLevel))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Search(sim, 3360, 3360, 30)
	if err != nil {
		t.Fatal(err)
	}
	// The realistic optimum must be substantially smaller than the
	// naive point (paper: 76B vs 146B, i.e. ~48 % smaller; our device
	// model is somewhat more optimistic — accept 30-60 % smaller).
	shrink := 1 - res.Optimal.Params/res.NaiveParams
	if shrink < 0.3 || shrink > 0.65 {
		t.Errorf("realistic optimum %.1fB is %.0f%% below naive %.1fB, want 30-65%%",
			res.Optimal.Params/1e9, 100*shrink, res.NaiveParams/1e9)
	}
	if res.Optimal.Days > 30 {
		t.Errorf("optimal point takes %.1f days, budget 30", res.Optimal.Days)
	}
	// The naive point must blow the budget badly when evaluated
	// realistically (paper: 85 days vs the expected 30).
	naive := res.Points[0]
	if naive.Days < 40 {
		t.Errorf("naive 146B model trains in %.1f days — should far exceed the 30-day budget", naive.Days)
	}
	// Training time decreases with model size within a hidden width.
	if res.Points[1].Days >= res.Points[0].Days {
		t.Error("smaller model at same width should train faster")
	}
	// Effective utilization is far from the naive 100 % assumption.
	for _, p := range res.Points {
		if p.Utilization > 0.7 {
			t.Errorf("%s: utilization %.2f implausibly close to the naive assumption", p.Model.Name, p.Utilization)
		}
	}
}

func TestSearchImpossibleBudget(t *testing.T) {
	sim, err := core.New(hw.PaperCluster(8), core.WithFidelity(taskgraph.OperatorLevel))
	if err != nil {
		t.Fatal(err)
	}
	// 64 GPUs cannot train any Table IV candidate in a day.
	if _, err := Search(sim, 64, 64, 1); err == nil {
		t.Fatal("impossible budget must error")
	}
}
