// Package chinchilla implements case study 3 (Section V-C): determining a
// compute-optimal LLM model size under a fixed compute budget, first
// naively (assuming 100 % GPU utility, as a practitioner without vTrain
// would) and then realistically, using vTrain's effective-utilization
// estimates to find the largest model whose 20-tokens-per-parameter
// training run actually finishes within the wall-clock budget (Table IV).
package chinchilla

import (
	"fmt"
	"math"

	"vtrain/internal/core"
	"vtrain/internal/cost"
	"vtrain/internal/dse"
	"vtrain/internal/model"
	"vtrain/internal/parallel"
)

// Alpha is the Chinchilla coefficient in N = alpha * C^0.5 (params from
// FLOPs), from Hoffmann et al. as quoted in Section V-C.
const Alpha = 0.089

// TokensPerParam is the compute-optimal token multiplier: T = 20·N
// (equivalently beta = 1.875 ~ 20·alpha in T = beta * C^0.5).
const TokensPerParam = 20.0

// Budget returns the compute budget C in FLOPs of running gpus devices at
// their full peak for days of wall-clock time.
func Budget(gpus int, days, peakFLOPS float64) float64 {
	return float64(gpus) * peakFLOPS * days * cost.SecondsPerDay
}

// NaivePoint applies the scaling law at face value: the compute-optimal
// parameter count and token count for budget C assuming every FLOP of C is
// realized.
func NaivePoint(c float64) (params, tokens float64) {
	params = Alpha * math.Sqrt(c)
	return params, TokensPerParam * params
}

// NaiveDays inverts the budget: the days needed to push 6·N·T FLOPs through
// gpus devices at 100 % utility — what the naive practitioner believes.
func NaiveDays(params, tokens float64, gpus int, peakFLOPS float64) float64 {
	return 6 * params * tokens / (float64(gpus) * peakFLOPS) / cost.SecondsPerDay
}

// Point is one evaluated Chinchilla candidate: a model, its best
// parallelization on the full cluster, and the realistic end-to-end days to
// train its 20·N tokens.
type Point struct {
	Model model.Config
	// Params and Tokens are the candidate's scaling-law quantities.
	Params float64
	Tokens float64
	// Plan is the fastest feasible (t,d,p,m) plan using every GPU.
	Plan parallel.Plan
	// IterTime is the plan's simulated iteration time.
	IterTime float64
	// Utilization is the plan's GPU compute utilization.
	Utilization float64
	// Days is the realistic wall-clock training time for Tokens.
	Days float64
}

// Candidates returns Table IV's (h, L) sweep, largest first.
func Candidates() []model.Config {
	shapes := []struct{ h, l int }{
		{12288, 80}, {12288, 70}, {12288, 60},
		{10240, 70}, {10240, 60},
		{9216, 80}, {9216, 70},
	}
	out := make([]model.Config, len(shapes))
	for i, s := range shapes {
		c := model.Custom(s.h, s.l, 2048, s.h/128)
		c.Name = fmt.Sprintf("chinchilla-h%d-L%d", s.h, s.l)
		out[i] = c
	}
	return out
}

// Evaluate finds the fastest plan for m that uses exactly gpus devices and
// projects the wall-clock days to train m's compute-optimal token count.
func Evaluate(sim *core.Simulator, m model.Config, gpus, globalBatch int) (Point, error) {
	space := dse.DefaultSpace(m, globalBatch)
	space.TensorWidths = []int{4, 8, 16}
	space.ExactGPUs = gpus
	// Exact-GPU searches need wider data-parallel widths (Table IV's
	// optima use d up to 84) and non-divisor pipeline depths.
	space.DataWidths = nil
	for d := 1; d <= 128; d++ {
		if globalBatch%d == 0 {
			space.DataWidths = append(space.DataWidths, d)
		}
	}
	space.PipelineDepths = nil
	for p := 1; p <= m.Layers; p++ {
		space.PipelineDepths = append(space.PipelineDepths, p)
	}
	space.MaxMicroBatches = 128
	// Exact-GPU spaces hold thousands of candidates and only the fastest
	// survives, so stream the sweep instead of collecting and sorting.
	best, ok, err := dse.ExploreBest(sim, m, space)
	if err != nil {
		return Point{}, err
	}
	if !ok {
		return Point{}, fmt.Errorf("chinchilla: no feasible plan for %s on %d GPUs", m.Name, gpus)
	}
	params := float64(m.Params())
	tokens := TokensPerParam * params
	iters := m.Iterations(uint64(tokens), globalBatch)
	return Point{
		Model:       m,
		Params:      params,
		Tokens:      tokens,
		Plan:        best.Plan,
		IterTime:    best.Report.IterTime,
		Utilization: best.Report.Utilization,
		Days:        float64(iters) * best.Report.IterTime / cost.SecondsPerDay,
	}, nil
}

// Result is the outcome of the compute-optimal search.
type Result struct {
	// Naive is the face-value scaling-law point (100 % utility).
	NaiveParams float64
	NaiveTokens float64
	// Points are all evaluated candidates, in Candidates() order.
	Points []Point
	// Optimal is the largest candidate whose realistic training time
	// fits the wall-clock budget.
	Optimal Point
}

// Search reproduces Table IV: evaluate every candidate on the full cluster
// and pick the largest model that trains its 20·N tokens within budgetDays.
// Each candidate model runs a full design-space exploration; within one
// candidate the sweep's plans share structural shapes through the
// simulator's lowering cache (shapes are model-keyed, so candidates never
// share graphs, only the profiler's kernel table).
func Search(sim *core.Simulator, gpus, globalBatch int, budgetDays float64) (Result, error) {
	c := Budget(gpus, budgetDays, sim.Cluster().Node.GPU.PeakTensorFLOPS)
	res := Result{}
	res.NaiveParams, res.NaiveTokens = NaivePoint(c)

	found := false
	for _, m := range Candidates() {
		pt, err := Evaluate(sim, m, gpus, globalBatch)
		if err != nil {
			return Result{}, err
		}
		res.Points = append(res.Points, pt)
		if !found && pt.Days <= budgetDays {
			res.Optimal = pt
			found = true
		}
	}
	if !found {
		return res, fmt.Errorf("chinchilla: no candidate fits %v days on %d GPUs", budgetDays, gpus)
	}
	return res, nil
}
