package dse

import (
	"errors"
	"sync"
	"testing"
)

// TestStreamGateSuppressesAfterFailure pins the streaming discipline both
// sweep drivers rely on: the moment one worker latches an error, no further
// point reaches the caller — including points from batches that were
// already in flight — and the sweep reports the first error latched.
func TestStreamGateSuppressesAfterFailure(t *testing.T) {
	var g StreamGate

	if g.Stopped() {
		t.Fatal("fresh gate reports stopped")
	}
	if g.FirstErr() != nil {
		t.Fatal("fresh gate reports an error")
	}
	emitted := 0
	if !g.Publish(func() { emitted++ }) {
		t.Fatal("publish before any failure must run")
	}
	if emitted != 1 {
		t.Fatalf("emitted %d, want 1", emitted)
	}

	first := errors.New("first failure")
	g.Fail(first)
	g.Fail(errors.New("second failure"))
	if !g.Stopped() {
		t.Fatal("gate not stopped after Fail")
	}
	if g.Publish(func() { emitted++ }) || emitted != 1 {
		t.Fatalf("publish after failure ran (emitted %d)", emitted)
	}
	if err := g.FirstErr(); !errors.Is(err, first) {
		t.Fatalf("FirstErr = %v, want the first latched error", err)
	}
}

// TestStreamGateConcurrentFail races publishers against a failing worker:
// whatever interleaving the scheduler picks, every emission must have been
// admitted before the failure latched, and none after. Run under -race this
// also pins the gate's internal synchronization.
func TestStreamGateConcurrentFail(t *testing.T) {
	var g StreamGate
	var mu sync.Mutex
	published := 0

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if w == 0 && i == 50 {
					g.Fail(errors.New("boom"))
				}
				g.Publish(func() {
					mu.Lock()
					published++
					mu.Unlock()
				})
			}
		}(w)
	}
	wg.Wait()

	if !g.Stopped() || g.FirstErr() == nil {
		t.Fatal("failure not latched")
	}
	// Re-check the invariant after all workers drained: the gate stays
	// closed forever.
	before := published
	if g.Publish(func() { published++ }) || published != before {
		t.Fatal("gate reopened after workers drained")
	}
}
