package dse

import (
	"testing"

	"vtrain/internal/core"
	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/taskgraph"
)

func newSim(t *testing.T, nodes int) *core.Simulator {
	t.Helper()
	s, err := core.New(hw.PaperCluster(nodes), core.WithFidelity(taskgraph.OperatorLevel))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// smallSpace keeps unit-test sweeps quick.
func smallSpace(batch int) Space {
	return Space{
		TensorWidths:    []int{1, 2, 4, 8},
		DataWidths:      []int{1, 2, 4, 8},
		PipelineDepths:  []int{1, 2, 4},
		MicroBatches:    []int{1, 2},
		GlobalBatch:     batch,
		GradientBuckets: 2,
	}
}

func TestDefaultSpaceShape(t *testing.T) {
	m := model.MTNLG530B()
	s := DefaultSpace(m, 1920)
	// tmax = 16 per the paper's sweep.
	if got := s.TensorWidths[len(s.TensorWidths)-1]; got != 16 {
		t.Fatalf("tmax = %d, want 16", got)
	}
	// Pipeline depths are divisors of L=105 up to 105.
	for _, p := range s.PipelineDepths {
		if m.Layers%p != 0 {
			t.Fatalf("pipeline depth %d does not divide %d layers", p, m.Layers)
		}
	}
	if got := s.PipelineDepths[len(s.PipelineDepths)-1]; got != 105 {
		t.Fatalf("pmax = %d, want 105", got)
	}
	// Data widths divide the global batch, dmax = 32.
	for _, d := range s.DataWidths {
		if 1920%d != 0 {
			t.Fatalf("data width %d does not divide batch", d)
		}
	}
}

func TestEnumerateRespectsConstraints(t *testing.T) {
	sim := newSim(t, 8)
	m := model.Megatron3_6B()
	s := smallSpace(16)
	s.MaxGPUs = 16
	plans := s.Enumerate(m, sim)
	if len(plans) == 0 {
		t.Fatal("no plans enumerated")
	}
	for _, p := range plans {
		if p.GPUs() > 16 {
			t.Fatalf("plan %s exceeds MaxGPUs", p)
		}
		if err := p.Validate(m, sim.Cluster()); err != nil {
			t.Fatalf("enumerated invalid plan: %v", err)
		}
		if !p.FitsMemory(m, sim.Cluster().Node.GPU) {
			t.Fatalf("enumerated OOM plan %s", p)
		}
	}
}

func TestEnumerateExactGPUs(t *testing.T) {
	sim := newSim(t, 8)
	s := smallSpace(16)
	s.ExactGPUs = 16
	for _, p := range s.Enumerate(model.Megatron3_6B(), sim) {
		if p.GPUs() != 16 {
			t.Fatalf("plan %s does not use exactly 16 GPUs", p)
		}
	}
}

func TestEnumerateMaxMicroBatches(t *testing.T) {
	sim := newSim(t, 8)
	s := smallSpace(64)
	s.MaxMicroBatches = 8
	for _, p := range s.Enumerate(model.Megatron3_6B(), sim) {
		if p.MicroBatches() > 8 {
			t.Fatalf("plan %s has %d micro-batches, cap 8", p, p.MicroBatches())
		}
	}
}

func TestEnumerateAutoRecompute(t *testing.T) {
	// MT-NLG plans on one node's worth of parallelism never fit without
	// recomputation; Enumerate must flip the flag rather than drop them.
	sim := newSim(t, 280)
	m := model.MTNLG530B()
	s := Space{
		TensorWidths:   []int{8},
		DataWidths:     []int{8},
		PipelineDepths: []int{35},
		MicroBatches:   []int{1},
		GlobalBatch:    1920,
	}
	plans := s.Enumerate(m, sim)
	if len(plans) != 1 {
		t.Fatalf("plans = %d, want 1", len(plans))
	}
	if !plans[0].Recompute {
		t.Fatal("MT-NLG (8,8,35) must auto-enable recomputation")
	}
}

func TestExploreSortedAndFeasible(t *testing.T) {
	sim := newSim(t, 8)
	points, err := Explore(sim, model.Megatron3_6B(), smallSpace(16))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 5 {
		t.Fatalf("explored only %d points", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Report.IterTime < points[i-1].Report.IterTime {
			t.Fatal("points not sorted by iteration time")
		}
	}
	best, ok := Fastest(points)
	if !ok {
		t.Fatal("no fastest point")
	}
	if best.Report.IterTime != points[0].Report.IterTime {
		t.Fatal("Fastest disagrees with sort order")
	}
}

func TestExploreBestMatchesFastest(t *testing.T) {
	sim := newSim(t, 8)
	m := model.Megatron3_6B()
	points, err := Explore(sim, m, smallSpace(16))
	if err != nil {
		t.Fatal(err)
	}
	fast, _ := Fastest(points)
	best, ok, err := ExploreBest(sim, m, smallSpace(16))
	if err != nil || !ok {
		t.Fatalf("ExploreBest: ok=%v err=%v", ok, err)
	}
	if best.Plan != fast.Plan || best.Report.IterTime != fast.Report.IterTime {
		t.Fatalf("ExploreBest %s disagrees with Fastest %s", best.Plan, fast.Plan)
	}
	// An empty space errors with ok false.
	empty := smallSpace(16)
	empty.ExactGPUs = 7
	if _, ok, err := ExploreBest(sim, m, empty); ok || err == nil {
		t.Fatal("empty space must error with ok=false")
	}
}

func TestExploreEmptySpace(t *testing.T) {
	sim := newSim(t, 8)
	s := smallSpace(16)
	s.ExactGPUs = 7 // unreachable with power-of-two factors
	if _, err := Explore(sim, model.Megatron3_6B(), s); err == nil {
		t.Fatal("empty space must error")
	}
}

func TestCheapestPrefersFewerGPUs(t *testing.T) {
	sim := newSim(t, 8)
	m := model.Megatron3_6B()
	points, err := Explore(sim, m, smallSpace(16))
	if err != nil {
		t.Fatal(err)
	}
	best, tr, ok := Cheapest(sim, points, 1e9)
	if !ok {
		t.Fatal("no cheapest point")
	}
	fast, _ := Fastest(points)
	// The cheapest plan should never use more dollars than the fastest.
	_, trFast, _ := Cheapest(sim, []Point{fast}, 1e9)
	if tr.TotalDollars > trFast.TotalDollars {
		t.Fatalf("cheapest $%.0f above fastest's $%.0f", tr.TotalDollars, trFast.TotalDollars)
	}
	if !best.Feasible {
		t.Fatal("cheapest point must be feasible")
	}
}

func TestCheapestWithinDeadline(t *testing.T) {
	sim := newSim(t, 8)
	m := model.Megatron3_6B()
	points, err := Explore(sim, m, smallSpace(16))
	if err != nil {
		t.Fatal(err)
	}
	_, trAny, _ := Cheapest(sim, points, 1e9)
	pt, tr, ok := CheapestWithin(sim, points, 1e9, trAny.Days*0.9)
	if ok {
		if tr.Days > trAny.Days*0.9 {
			t.Fatalf("CheapestWithin exceeded the budget: %.2f > %.2f", tr.Days, trAny.Days*0.9)
		}
		if tr.TotalDollars < trAny.TotalDollars {
			t.Fatal("tighter deadline cannot be cheaper than the unconstrained optimum")
		}
		_ = pt
	}
	// An impossible deadline yields no plan.
	if _, _, ok := CheapestWithin(sim, points, 1e9, 1e-9); ok {
		t.Fatal("impossible deadline must return no plan")
	}
}

func TestParetoFront(t *testing.T) {
	sim := newSim(t, 8)
	points, err := Explore(sim, model.Megatron3_6B(), smallSpace(16))
	if err != nil {
		t.Fatal(err)
	}
	front := ParetoFront(points)
	if len(front) == 0 || len(front) > len(points) {
		t.Fatalf("front size %d out of range", len(front))
	}
	// No front point is dominated by any other point.
	for _, f := range front {
		for _, q := range points {
			if q.Report.IterTime < f.Report.IterTime && q.Plan.GPUs() <= f.Plan.GPUs() {
				t.Fatalf("front point %s dominated by %s", f.Plan, q.Plan)
			}
		}
	}
}

func TestMoreGPUsNeverHurtIterationTime(t *testing.T) {
	// Fig. 10's headline: performance is best with the most GPUs. The
	// fastest plan overall should use at least as many GPUs as the
	// fastest plan under a tighter GPU cap.
	sim := newSim(t, 8)
	m := model.Megatron3_6B()
	wide, err := Explore(sim, m, smallSpace(16))
	if err != nil {
		t.Fatal(err)
	}
	capped := smallSpace(16)
	capped.MaxGPUs = 8
	narrow, err := Explore(sim, m, capped)
	if err != nil {
		t.Fatal(err)
	}
	fw, _ := Fastest(wide)
	fn, _ := Fastest(narrow)
	if fw.Report.IterTime > fn.Report.IterTime {
		t.Fatalf("wider space slower: %.4g vs %.4g", fw.Report.IterTime, fn.Report.IterTime)
	}
}

func TestExploreDeterministic(t *testing.T) {
	sim := newSim(t, 8)
	m := model.Megatron3_6B()
	a, err := Explore(sim, m, smallSpace(16))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(sim, m, smallSpace(16))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("non-deterministic point count")
	}
	for i := range a {
		if a[i].Report.IterTime != b[i].Report.IterTime {
			t.Fatal("non-deterministic exploration results")
		}
	}
}
