package dse

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"testing"

	"vtrain/internal/core"
	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/parallel"
	"vtrain/internal/taskgraph"
)

// populateEnv names the artifact directory the re-exec'd populate helper
// writes into; unset in normal test runs, so the helper is a no-op there.
const populateEnv = "VTRAIN_TEST_POPULATE_DIR"

// crossProcessSweep runs the fixed sweep-and-trace workload against an
// artifact directory and serializes its outputs: the ranked design points
// as JSON and the best plan's execution timeline as a Chrome trace. Both
// the populate helper (cold, separate process) and the warm verification
// run the same function, so any byte difference is the disk tier's fault.
func crossProcessSweep(dir string) (report, trace []byte, st core.CacheStats, err error) {
	sim, err := core.New(hw.PaperCluster(8),
		core.WithFidelity(taskgraph.OperatorLevel), core.WithArtifactDir(dir))
	if err != nil {
		return nil, nil, st, err
	}
	m := model.Megatron3_6B()
	points, err := Explore(sim, m, smallSpace(16))
	if err != nil {
		return nil, nil, st, err
	}
	// Rank with a deterministic total order: Better, then the plan string
	// as a tie-break, so completion order cannot leak into the bytes.
	sort.Slice(points, func(i, j int) bool {
		if points[i].Better(points[j]) {
			return true
		}
		if points[j].Better(points[i]) {
			return false
		}
		return points[i].Plan.String() < points[j].Plan.String()
	})
	report, err = json.MarshalIndent(points, "", " ")
	if err != nil {
		return nil, nil, st, err
	}
	tracePlan := parallel.Plan{Tensor: 2, Data: 2, Pipeline: 2, MicroBatch: 1, GlobalBatch: 16, GradientBuckets: 2}
	_, spans, err := sim.SimulateTrace(m, tracePlan)
	if err != nil {
		return nil, nil, st, err
	}
	var buf bytes.Buffer
	if err := taskgraph.WriteChromeTrace(&buf, spans); err != nil {
		return nil, nil, st, err
	}
	return report, buf.Bytes(), sim.CacheStats(), nil
}

// TestCrossProcessPopulateHelper is not a test: it is the cold half of
// TestCrossProcessWarmEquivalence, re-exec'd as a separate process so the
// artifact directory is populated by a genuinely different simulator
// lifetime (fresh memory caches, fresh profiler).
func TestCrossProcessPopulateHelper(t *testing.T) {
	dir := os.Getenv(populateEnv)
	if dir == "" {
		t.Skip("populate helper: only runs re-exec'd")
	}
	report, trace, st, err := crossProcessSweep(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.DiskWrites == 0 {
		t.Fatalf("cold populate wrote nothing: %+v", st)
	}
	if err := os.WriteFile(filepath.Join(dir, "report.json"), report, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "trace.json"), trace, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCrossProcessWarmEquivalence is the tentpole's contract test: a sweep
// served from a disk populated by another process must produce
// byte-identical ranked reports and Chrome traces, without performing a
// single lowering.
func TestCrossProcessWarmEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrossProcessPopulateHelper$", "-test.v")
	cmd.Env = append(os.Environ(), populateEnv+"="+dir)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("populate process failed: %v\n%s", err, out)
	}
	wantReport, err := os.ReadFile(filepath.Join(dir, "report.json"))
	if err != nil {
		t.Fatal(err)
	}
	wantTrace, err := os.ReadFile(filepath.Join(dir, "trace.json"))
	if err != nil {
		t.Fatal(err)
	}

	report, trace, st, err := crossProcessSweep(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Lowerings != 0 {
		t.Errorf("warm sweep lowered %d graphs, want 0", st.Lowerings)
	}
	if st.DiskMisses != 0 {
		t.Errorf("warm sweep missed the disk tier %d times, want 0", st.DiskMisses)
	}
	if !bytes.Equal(report, wantReport) {
		t.Error("warm ranked report differs from the cold process's bytes")
	}
	if !bytes.Equal(trace, wantTrace) {
		t.Error("warm Chrome trace differs from the cold process's bytes")
	}
}
