// Package dse performs the design-space exploration of Section V-A: given a
// model, a cluster, and a global batch, it enumerates every valid
// (t, d, p, m)-way 3D-parallel plan, simulates each with vTrain, and ranks
// the candidates by iteration time, GPU utilization, or end-to-end training
// cost — the search that produced Fig. 10, Fig. 11, Table I, and Table II.
//
// Plans whose activations exceed device memory automatically retry with
// full activation recomputation (exactly what a practitioner would do);
// plans that still do not fit are reported as infeasible rather than
// silently dropped.
package dse

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"vtrain/internal/core"
	"vtrain/internal/cost"
	"vtrain/internal/model"
	"vtrain/internal/parallel"
)

// Space describes the sweep.
type Space struct {
	// TensorWidths are the tensor-parallel degrees to explore
	// (Fig. 10 uses 4, 8, 16; tmax = 16).
	TensorWidths []int
	// DataWidths are the data-parallel degrees (Fig. 10: up to 32).
	DataWidths []int
	// PipelineDepths are the pipeline degrees (Fig. 10: up to 105).
	PipelineDepths []int
	// MicroBatches are the per-replica micro-batch sizes.
	MicroBatches []int
	// GlobalBatch is the iteration batch in sequences.
	GlobalBatch int
	// GradientBuckets configures DP overlap for every candidate.
	GradientBuckets int
	// Schedule is the pipeline schedule for every candidate.
	Schedule parallel.Schedule
	// MaxGPUs, when positive, caps t*d*p.
	MaxGPUs int
	// ExactGPUs, when positive, requires t*d*p to match exactly (used
	// for the fixed-budget comparisons of Table II).
	ExactGPUs int
	// MaxMicroBatches, when positive, skips plans whose per-pipeline
	// micro-batch count exceeds the limit. Very large counts arise only
	// for tiny data-parallel widths, are essentially never optimal, and
	// dominate simulation cost; offline profile builders cap them.
	MaxMicroBatches int
}

// DefaultSpace mirrors the paper's MT-NLG sweep: tmax=16, dmax=32,
// pipeline over the divisors of the layer count up to pmax=L.
func DefaultSpace(m model.Config, globalBatch int) Space {
	var depths []int
	for p := 1; p <= m.Layers; p++ {
		if m.Layers%p == 0 {
			depths = append(depths, p)
		}
	}
	var data []int
	for d := 1; d <= 32; d++ {
		if globalBatch%d == 0 {
			data = append(data, d)
		}
	}
	return Space{
		TensorWidths:    []int{1, 2, 4, 8, 16},
		DataWidths:      data,
		PipelineDepths:  depths,
		MicroBatches:    []int{1, 2, 4, 8, 16},
		GlobalBatch:     globalBatch,
		GradientBuckets: 2,
	}
}

// Point is one evaluated design point.
type Point struct {
	Plan   parallel.Plan
	Report core.Report
	// Feasible is false when the plan cannot fit device memory even
	// with recomputation (Report is zero) or fails validation.
	Feasible bool
	// Reason explains infeasibility.
	Reason string
}

// Enumerate lists the valid plans of the space for m on sim's cluster,
// choosing recomputation automatically where required for memory.
func (s Space) Enumerate(m model.Config, sim *core.Simulator) []parallel.Plan {
	cluster := sim.Cluster()
	gpu := cluster.Node.GPU
	var plans []parallel.Plan
	for _, t := range s.TensorWidths {
		for _, d := range s.DataWidths {
			for _, p := range s.PipelineDepths {
				gpus := t * d * p
				if s.MaxGPUs > 0 && gpus > s.MaxGPUs {
					continue
				}
				if s.ExactGPUs > 0 && gpus != s.ExactGPUs {
					continue
				}
				for _, mb := range s.MicroBatches {
					plan := parallel.Plan{
						Tensor: t, Data: d, Pipeline: p,
						MicroBatch:      mb,
						GlobalBatch:     s.GlobalBatch,
						Schedule:        s.Schedule,
						GradientBuckets: s.GradientBuckets,
					}
					if err := plan.Validate(m, cluster); err != nil {
						continue
					}
					if s.MaxMicroBatches > 0 && plan.MicroBatches() > s.MaxMicroBatches {
						continue
					}
					if !plan.FitsMemory(m, gpu) {
						plan.Recompute = true
						if !plan.FitsMemory(m, gpu) {
							continue // reported via Explore's infeasible path
						}
					}
					plans = append(plans, plan)
				}
			}
		}
	}
	return plans
}

// Explore simulates every plan of the space in parallel and returns the
// evaluated points sorted by iteration time (fastest first).
func Explore(sim *core.Simulator, m model.Config, s Space) ([]Point, error) {
	plans := s.Enumerate(m, sim)
	if len(plans) == 0 {
		return nil, fmt.Errorf("dse: no valid plan in the search space for %s", m.Name)
	}
	points := make([]Point, len(plans))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, plan := range plans {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, plan parallel.Plan) {
			defer wg.Done()
			defer func() { <-sem }()
			rep, err := sim.Simulate(m, plan)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("dse: %s: %w", plan, err)
				}
				mu.Unlock()
				return
			}
			points[i] = Point{Plan: plan, Report: rep, Feasible: true}
		}(i, plan)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	sort.Slice(points, func(i, j int) bool {
		return points[i].Report.IterTime < points[j].Report.IterTime
	})
	return points, nil
}

// Fastest returns the feasible point with the lowest iteration time.
func Fastest(points []Point) (Point, bool) {
	for _, p := range points {
		if p.Feasible {
			return p, true
		}
	}
	return Point{}, false
}

// Cheapest returns the feasible point minimizing end-to-end training cost
// for totalTokens, pricing each plan's GPU count at the cluster rate.
func Cheapest(sim *core.Simulator, points []Point, totalTokens uint64) (Point, cost.Training, bool) {
	var (
		best   Point
		bestTr cost.Training
		found  bool
	)
	for _, p := range points {
		if !p.Feasible {
			continue
		}
		tr := cost.Train(p.Report.Model, p.Plan.GlobalBatch, p.Report.IterTime, p.Plan.GPUs(), totalTokens, sim.Cluster())
		if !found || tr.TotalDollars < bestTr.TotalDollars {
			best, bestTr, found = p, tr, true
		}
	}
	return best, bestTr, found
}

// CheapestWithin returns the cheapest feasible point whose end-to-end days
// do not exceed maxDays — the "balance training time and cost" objective of
// case study 1.
func CheapestWithin(sim *core.Simulator, points []Point, totalTokens uint64, maxDays float64) (Point, cost.Training, bool) {
	var (
		best   Point
		bestTr cost.Training
		found  bool
	)
	for _, p := range points {
		if !p.Feasible {
			continue
		}
		tr := cost.Train(p.Report.Model, p.Plan.GlobalBatch, p.Report.IterTime, p.Plan.GPUs(), totalTokens, sim.Cluster())
		if tr.Days > maxDays {
			continue
		}
		if !found || tr.TotalDollars < bestTr.TotalDollars {
			best, bestTr, found = p, tr, true
		}
	}
	return best, bestTr, found
}

// ParetoFront returns the points not dominated in (iteration time, GPU
// count): no other feasible point is both faster and smaller — the frontier
// a practitioner inspects in Fig. 11.
func ParetoFront(points []Point) []Point {
	var front []Point
	for _, p := range points {
		if !p.Feasible {
			continue
		}
		dominated := false
		for _, q := range points {
			if !q.Feasible {
				continue
			}
			if q.Report.IterTime < p.Report.IterTime && q.Plan.GPUs() <= p.Plan.GPUs() ||
				q.Report.IterTime <= p.Report.IterTime && q.Plan.GPUs() < p.Plan.GPUs() {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	return front
}
