// Package dse performs the design-space exploration of Section V-A: given a
// model, a cluster, and a global batch, it enumerates every valid
// (t, d, p, m)-way 3D-parallel plan, simulates each with vTrain, and ranks
// the candidates by iteration time, GPU utilization, or end-to-end training
// cost — the search that produced Fig. 10, Fig. 11, Table I, and Table II.
//
// Plans whose activations exceed device memory automatically retry with
// full activation recomputation (exactly what a practitioner would do);
// plans that still do not fit are excluded during enumeration, so every
// explored point is memory-feasible.
//
// A sweep's cost structure leans on the simulator's two cache levels: the
// plan-level report cache dedupes repeated (model, plan) configurations,
// and the shape-keyed structural cache lets the thousands of enumerated
// plans share a few dozen lowered task graphs — each point then pays only
// duration binding and replay, not graph construction. Simulator.CacheStats
// exposes both hit rates for sweep diagnostics.
package dse

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"vtrain/internal/core"
	"vtrain/internal/cost"
	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/parallel"
)

// Space describes the sweep.
type Space struct {
	// TensorWidths are the tensor-parallel degrees to explore
	// (Fig. 10 uses 4, 8, 16; tmax = 16).
	TensorWidths []int
	// DataWidths are the data-parallel degrees (Fig. 10: up to 32).
	DataWidths []int
	// PipelineDepths are the pipeline degrees (Fig. 10: up to 105).
	PipelineDepths []int
	// MicroBatches are the per-replica micro-batch sizes.
	MicroBatches []int
	// GlobalBatch is the iteration batch in sequences.
	GlobalBatch int
	// GradientBuckets configures DP overlap for every candidate.
	GradientBuckets int
	// Schedule is the pipeline schedule for every candidate.
	Schedule parallel.Schedule
	// MaxGPUs, when positive, caps t*d*p.
	MaxGPUs int
	// ExactGPUs, when positive, requires t*d*p to match exactly (used
	// for the fixed-budget comparisons of Table II).
	ExactGPUs int
	// MaxMicroBatches, when positive, skips plans whose per-pipeline
	// micro-batch count exceeds the limit. Very large counts arise only
	// for tiny data-parallel widths, are essentially never optimal, and
	// dominate simulation cost; offline profile builders cap them.
	MaxMicroBatches int
}

// DefaultSpace mirrors the paper's MT-NLG sweep: tmax=16, dmax=32,
// pipeline over the divisors of the layer count up to pmax=L.
func DefaultSpace(m model.Config, globalBatch int) Space {
	var depths []int
	for p := 1; p <= m.Layers; p++ {
		if m.Layers%p == 0 {
			depths = append(depths, p)
		}
	}
	var data []int
	for d := 1; d <= 32; d++ {
		if globalBatch%d == 0 {
			data = append(data, d)
		}
	}
	return Space{
		TensorWidths:    []int{1, 2, 4, 8, 16},
		DataWidths:      data,
		PipelineDepths:  depths,
		MicroBatches:    []int{1, 2, 4, 8, 16},
		GlobalBatch:     globalBatch,
		GradientBuckets: 2,
	}
}

// ErrNoValidPlan is returned (wrapped) by ExploreFunc when the search space
// contains no plan that validates and fits memory on the simulator's
// cluster. Multi-cluster searches (internal/clusterdse) detect it with
// errors.Is to skip hardware candidates the model cannot run on at all.
var ErrNoValidPlan = errors.New("no valid plan in the search space")

// Point is one evaluated design point.
type Point struct {
	Plan   parallel.Plan
	Report core.Report
	// Feasible is false when the plan cannot fit device memory even
	// with recomputation (Report is zero) or fails validation.
	Feasible bool
	// Reason explains infeasibility.
	Reason string
}

// Enumerate lists the valid plans of the space for m on sim's cluster,
// choosing recomputation automatically where required for memory.
func (s Space) Enumerate(m model.Config, sim *core.Simulator) []parallel.Plan {
	cluster := sim.Cluster()
	gpu := cluster.Node.GPU
	var plans []parallel.Plan
	for _, t := range s.TensorWidths {
		for _, d := range s.DataWidths {
			for _, p := range s.PipelineDepths {
				gpus := t * d * p
				if s.MaxGPUs > 0 && gpus > s.MaxGPUs {
					continue
				}
				if s.ExactGPUs > 0 && gpus != s.ExactGPUs {
					continue
				}
				for _, mb := range s.MicroBatches {
					plan := parallel.Plan{
						Tensor: t, Data: d, Pipeline: p,
						MicroBatch:      mb,
						GlobalBatch:     s.GlobalBatch,
						Schedule:        s.Schedule,
						GradientBuckets: s.GradientBuckets,
					}
					if err := plan.Validate(m, cluster); err != nil {
						continue
					}
					if s.MaxMicroBatches > 0 && plan.MicroBatches() > s.MaxMicroBatches {
						continue
					}
					if !plan.FitsMemory(m, gpu) {
						plan.Recompute = true
						if !plan.FitsMemory(m, gpu) {
							continue // does not fit even with recomputation
						}
					}
					plans = append(plans, plan)
				}
			}
		}
	}
	return plans
}

// Better reports whether p should rank ahead of q: feasible before
// infeasible, then lower iteration time, with the (t, d, p, m) tuple as a
// deterministic tie-break so rankings are stable regardless of the order
// points were evaluated in. (Points produced by this package are always
// feasible — Enumerate excludes memory-infeasible plans — so the
// feasibility branch matters only for hand-built Points.)
func (p Point) Better(q Point) bool {
	if p.Feasible != q.Feasible {
		return p.Feasible
	}
	if p.Report.IterTime != q.Report.IterTime {
		return p.Report.IterTime < q.Report.IterTime
	}
	a, b := p.Plan, q.Plan
	switch {
	case a.Tensor != b.Tensor:
		return a.Tensor < b.Tensor
	case a.Data != b.Data:
		return a.Data < b.Data
	case a.Pipeline != b.Pipeline:
		return a.Pipeline < b.Pipeline
	default:
		return a.MicroBatch < b.MicroBatch
	}
}

// StreamGate is the streaming discipline shared by the sweep drivers (this
// package and clusterdse). It serializes point streaming and latches a
// sweep's first error:
// once fail records an error, publish refuses every subsequent emission, so
// callers never observe output after a failure — including output from
// batches that were already in flight on other workers when the error hit.
type StreamGate struct {
	mu     sync.Mutex
	failed bool
	err    error
}

// publish runs emit under the gate's lock, unless a failure has been
// recorded; it reports whether emit ran.
func (g *StreamGate) Publish(emit func()) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.failed {
		return false
	}
	emit()
	return true
}

// fail latches err as the sweep's error; only the first call wins.
func (g *StreamGate) Fail(err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.failed {
		g.failed, g.err = true, err
	}
}

// stopped reports whether a failure has been latched.
func (g *StreamGate) Stopped() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.failed
}

// firstErr returns the latched error, nil if none.
func (g *StreamGate) FirstErr() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// WarmShapes runs warm(0..n-1) across a bounded pool of workers, in
// ascending order, and returns a wait function the caller must invoke
// before returning, so no warming goroutine outlives its sweep. It is the
// shape-prefetch planner shared by this package and clusterdse: each warm
// call drives one distinct structural shape through
// core.Simulator.EnsureStructure, so cold lowerings (and persistent-tier
// disk loads) proceed in parallel with the binding and replay of shapes
// that are already resident. stopped is polled between items and aborts
// the remaining work — sweeps pass their StreamGate so a failed sweep does
// not keep warming shapes nobody will replay.
func WarmShapes(n, workers int, stopped func() bool, warm func(batch int)) (wait func()) {
	if workers > n {
		workers = n
	}
	if workers <= 0 {
		return func() {}
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stopped() {
				bi := int(next.Add(1)) - 1
				if bi >= n {
					return
				}
				warm(bi)
			}
		}()
	}
	return wg.Wait
}

// ExploreFunc simulates every plan of the space with a bounded worker pool
// and streams each evaluated Point to fn as it completes. Every streamed
// point is feasible (Enumerate excludes plans that cannot fit memory).
// Calls to fn are serialized (one at a time), so callers can rank
// incrementally — keep a running best, feed a top-k heap — without holding
// every point in memory. Completion order is nondeterministic; use
// Point.Better for deterministic ranking.
//
// Plans are grouped by structural shape (core.Simulator.PlanShape) and each
// group flushes through one SimulateBatch call, so every plan of a shape
// replays the shared lowered graph in columnar lockstep instead of
// one-at-a-time; the workers additionally share the simulator's caches, so
// repeated configurations across sweeps cost one simulation and concurrent
// first requests for a shape single-flight onto one lowering.
//
// On a simulation error the sweep stops and the error is returned; no
// point is streamed to fn after the failure, even from worker batches that
// were still in flight when it occurred.
func ExploreFunc(sim *core.Simulator, m model.Config, s Space, fn func(Point)) error {
	plans := s.Enumerate(m, sim)
	if len(plans) == 0 {
		return fmt.Errorf("dse: %s: %w", m.Name, ErrNoValidPlan)
	}
	// Group plan indices by structural shape, preserving enumeration order
	// within and across groups so the batch composition is deterministic.
	var (
		batches  [][]int
		shapeIdx = make(map[core.Shape]int)
	)
	for i, p := range plans {
		sh := sim.PlanShape(m, p)
		bi, ok := shapeIdx[sh]
		if !ok {
			bi = len(batches)
			shapeIdx[sh] = bi
			batches = append(batches, nil)
		}
		batches[bi] = append(batches[bi], i)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(batches) {
		workers = len(batches)
	}
	var gate StreamGate
	// Shape-prefetch planner: the distinct shapes of the space are known up
	// front, so a second bounded pool walks them in batch order and warms
	// the structural cache while the workers below bind and replay whatever
	// is already resident — cold lowering (or disk loading) overlaps replay
	// instead of serializing inside whichever worker first misses.
	// EnsureStructure shares the cache's single-flight entries, so the two
	// pools never lower one shape twice.
	waitWarm := WarmShapes(len(batches), workers, gate.Stopped, func(bi int) {
		sim.EnsureStructure(m, plans[batches[bi][0]])
	})
	defer waitWarm()
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !gate.Stopped() {
				bi := int(next.Add(1)) - 1
				if bi >= len(batches) {
					return
				}
				idx := batches[bi]
				group := make([]parallel.Plan, len(idx))
				for j, i := range idx {
					group[j] = plans[i]
				}
				reps, err := sim.SimulateBatch(m, group)
				if err != nil {
					// SimulateBatch attributes failures to a plan; unwrap
					// so the sweep error reads exactly like the sequential
					// path's.
					plan := group[0]
					var pe *core.PlanError
					if errors.As(err, &pe) {
						plan, err = pe.Plan, pe.Err
					}
					gate.Fail(fmt.Errorf("dse: %s: %w", plan, err))
					return
				}
				gate.Publish(func() {
					for j := range idx {
						fn(Point{Plan: group[j], Report: reps[j], Feasible: true})
					}
				})
			}
		}()
	}
	wg.Wait()
	return gate.FirstErr()
}

// Explore simulates every plan of the space in parallel and returns the
// evaluated points sorted fastest-first (see Point.Better).
func Explore(sim *core.Simulator, m model.Config, s Space) ([]Point, error) {
	points := make([]Point, 0, 64)
	if err := ExploreFunc(sim, m, s, func(p Point) {
		points = append(points, p)
	}); err != nil {
		return nil, err
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Better(points[j]) })
	return points, nil
}

// ExploreBest streams the sweep and returns only the best-ranked point
// (per Point.Better), for callers that need one winner from a large space
// without holding every point in memory. ok is false when no point was
// evaluated or an error occurred.
func ExploreBest(sim *core.Simulator, m model.Config, s Space) (best Point, ok bool, err error) {
	err = ExploreFunc(sim, m, s, func(p Point) {
		if !ok || p.Better(best) {
			best, ok = p, true
		}
	})
	if err != nil {
		return Point{}, false, err
	}
	return best, ok, nil
}

// Fastest returns the feasible point with the lowest iteration time.
func Fastest(points []Point) (Point, bool) {
	for _, p := range points {
		if p.Feasible {
			return p, true
		}
	}
	return Point{}, false
}

// Cheapest returns the feasible point minimizing end-to-end training cost
// for totalTokens, pricing each plan's GPU count at the cluster rate.
func Cheapest(sim *core.Simulator, points []Point, totalTokens uint64) (Point, cost.Training, bool) {
	return CheapestOn(sim.Cluster(), points, totalTokens)
}

// CheapestOn is Cheapest for callers holding only the cluster description
// rather than a simulator — the serving layer's thin CLI clients rank
// streamed points against the cluster their sweep resolved to.
func CheapestOn(c hw.Cluster, points []Point, totalTokens uint64) (Point, cost.Training, bool) {
	var (
		best   Point
		bestTr cost.Training
		found  bool
	)
	for _, p := range points {
		if !p.Feasible {
			continue
		}
		tr := cost.Train(p.Report.Model, p.Plan.GlobalBatch, p.Report.IterTime, p.Plan.GPUs(), totalTokens, c)
		if !found || tr.TotalDollars < bestTr.TotalDollars {
			best, bestTr, found = p, tr, true
		}
	}
	return best, bestTr, found
}

// CheapestWithin returns the cheapest feasible point whose end-to-end days
// do not exceed maxDays — the "balance training time and cost" objective of
// case study 1.
func CheapestWithin(sim *core.Simulator, points []Point, totalTokens uint64, maxDays float64) (Point, cost.Training, bool) {
	var (
		best   Point
		bestTr cost.Training
		found  bool
	)
	for _, p := range points {
		if !p.Feasible {
			continue
		}
		tr := cost.Train(p.Report.Model, p.Plan.GlobalBatch, p.Report.IterTime, p.Plan.GPUs(), totalTokens, sim.Cluster())
		if tr.Days > maxDays {
			continue
		}
		if !found || tr.TotalDollars < bestTr.TotalDollars {
			best, bestTr, found = p, tr, true
		}
	}
	return best, bestTr, found
}

// ParetoFront returns the points not dominated in (iteration time, GPU
// count): no other feasible point is both faster and smaller — the frontier
// a practitioner inspects in Fig. 11.
func ParetoFront(points []Point) []Point {
	var front []Point
	for _, p := range points {
		if !p.Feasible {
			continue
		}
		dominated := false
		for _, q := range points {
			if !q.Feasible {
				continue
			}
			if q.Report.IterTime < p.Report.IterTime && q.Plan.GPUs() <= p.Plan.GPUs() ||
				q.Report.IterTime <= p.Report.IterTime && q.Plan.GPUs() < p.Plan.GPUs() {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	return front
}
