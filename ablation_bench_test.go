package vtrain_bench

// Ablation benchmarks for the design choices DESIGN.md calls out. These go
// beyond the paper's exhibits: they isolate the contribution of individual
// graph-construction features to the predicted iteration time.

import (
	"fmt"
	"testing"
	"time"

	"vtrain/internal/core"
	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/parallel"
	"vtrain/internal/taskgraph"
	"vtrain/internal/testbed"
	"vtrain/internal/validate"
)

// BenchmarkAblationGradientBucketing quantifies Fig. 5: overlapping the
// data-parallel gradient All-Reduce with the backward pass versus a single
// synchronization at the end.
func BenchmarkAblationGradientBucketing(b *testing.B) {
	sim := newSim(b, 32)
	m := model.Megatron18_4B()
	base := parallel.Plan{Tensor: 8, Data: 32, Pipeline: 1, MicroBatch: 4, GlobalBatch: 1024, Recompute: true}
	var with, without float64
	for i := 0; i < b.N; i++ {
		p := base
		p.GradientBuckets = 4
		rep, err := sim.Simulate(m, p)
		if err != nil {
			b.Fatal(err)
		}
		with = rep.IterTime
		p.GradientBuckets = 0
		rep, err = sim.Simulate(m, p)
		if err != nil {
			b.Fatal(err)
		}
		without = rep.IterTime
	}
	once("abl-bucket", func() {
		fmt.Printf("\nAblation — gradient bucketing (18.4B, (8,32,1)): bucketed %.3fs, single All-Reduce %.3fs (%.1f%% saved)\n",
			with, without, 100*(1-with/without))
	})
	if with > without {
		b.Fatalf("bucketing slower than single All-Reduce: %.4g vs %.4g", with, without)
	}
	b.ReportMetric(100*(1-with/without), "overlap_gain_pct")
}

// BenchmarkAblationSchedule quantifies Fig. 7: GPipe versus 1F1B at equal
// micro-batch counts — same bubble, very different memory.
func BenchmarkAblationSchedule(b *testing.B) {
	sim := newSim(b, 32)
	m := model.Megatron18_4B()
	base := parallel.Plan{Tensor: 8, Data: 2, Pipeline: 8, MicroBatch: 1, GlobalBatch: 64, GradientBuckets: 2}
	var r1, r2 core.Report
	for i := 0; i < b.N; i++ {
		p := base
		var err error
		if r1, err = sim.Simulate(m, p); err != nil {
			b.Fatal(err)
		}
		p.Schedule = parallel.GPipe
		if r2, err = sim.Simulate(m, p); err != nil {
			b.Fatal(err)
		}
	}
	once("abl-sched", func() {
		fmt.Printf("\nAblation — pipeline schedule (18.4B, (8,2,8), 32 micro-batches):\n")
		fmt.Printf("  1F1B : %.3fs, peak %.1f GiB\n", r1.IterTime, float64(r1.PeakMemoryBytes)/(1<<30))
		fmt.Printf("  GPipe: %.3fs, peak %.1f GiB (%.1fx the activation residency)\n",
			r2.IterTime, float64(r2.PeakMemoryBytes)/(1<<30),
			float64(r2.PeakMemoryBytes)/float64(r1.PeakMemoryBytes))
	})
	if r2.PeakMemoryBytes <= r1.PeakMemoryBytes {
		b.Fatal("GPipe must hold more activations than 1F1B")
	}
	b.ReportMetric(float64(r2.PeakMemoryBytes)/float64(r1.PeakMemoryBytes), "gpipe_memory_ratio")
}

// BenchmarkAblationRecompute quantifies the time/memory trade of full
// activation recomputation.
func BenchmarkAblationRecompute(b *testing.B) {
	sim := newSim(b, 32)
	m := model.Megatron18_4B()
	base := parallel.Plan{Tensor: 8, Data: 4, Pipeline: 8, MicroBatch: 1, GlobalBatch: 128, GradientBuckets: 2}
	var off, on core.Report
	for i := 0; i < b.N; i++ {
		p := base
		var err error
		if off, err = sim.Simulate(m, p); err != nil {
			b.Fatal(err)
		}
		p.Recompute = true
		if on, err = sim.Simulate(m, p); err != nil {
			b.Fatal(err)
		}
	}
	once("abl-recompute", func() {
		fmt.Printf("\nAblation — activation recomputation (18.4B, (8,4,8)):\n")
		fmt.Printf("  off: %.3fs, peak %.1f GiB\n", off.IterTime, float64(off.PeakMemoryBytes)/(1<<30))
		fmt.Printf("  on : %.3fs (+%.1f%%), peak %.1f GiB (%.1f%% of the un-checkpointed footprint)\n",
			on.IterTime, 100*(on.IterTime/off.IterTime-1),
			float64(on.PeakMemoryBytes)/(1<<30),
			100*float64(on.PeakMemoryBytes)/float64(off.PeakMemoryBytes))
	})
	overhead := on.IterTime/off.IterTime - 1
	if overhead <= 0 || overhead > 0.6 {
		b.Fatalf("recompute overhead %.2f outside the plausible (0, 0.6] band", overhead)
	}
	b.ReportMetric(100*overhead, "time_overhead_pct")
	b.ReportMetric(float64(off.PeakMemoryBytes-on.PeakMemoryBytes)/(1<<30), "memory_saved_GiB")
}

// BenchmarkAblationAlpha sweeps the bandwidth-effectiveness factor of
// Eq. 1 from 0.1 to 1.0, as Section IV does when fitting it.
func BenchmarkAblationAlpha(b *testing.B) {
	m := model.Megatron39_1B()
	plan := parallel.Plan{Tensor: 8, Data: 32, Pipeline: 2, MicroBatch: 4, GlobalBatch: 1536, GradientBuckets: 1, Recompute: true}
	alphas := []float64{0.1, 0.25, 0.5, 0.75, 1.0}
	times := make([]float64, len(alphas))
	for i := 0; i < b.N; i++ {
		for j, a := range alphas {
			c := hw.PaperCluster(64)
			c.Alpha = a
			sim, err := core.New(c, core.WithFidelity(taskgraph.OperatorLevel))
			if err != nil {
				b.Fatal(err)
			}
			rep, err := sim.Simulate(m, plan)
			if err != nil {
				b.Fatal(err)
			}
			times[j] = rep.IterTime
		}
	}
	once("abl-alpha", func() {
		fmt.Printf("\nAblation — bandwidth-effectiveness factor alpha (39.1B, (8,32,2) on 512 GPUs):\n")
		for j, a := range alphas {
			fmt.Printf("  alpha %.2f: %.3fs\n", a, times[j])
		}
	})
	for j := 1; j < len(times); j++ {
		if times[j] > times[j-1]+1e-12 {
			b.Fatal("iteration time must be non-increasing in alpha")
		}
	}
	b.ReportMetric(times[0]/times[len(times)-1], "alpha0.1_vs_1.0_slowdown")
}

// BenchmarkAblationCalibratedComm quantifies the paper's future-work
// communication extension: re-running the Fig. 9 campaigns with the
// contention-calibrated model shrinks the validation error.
func BenchmarkAblationCalibratedComm(b *testing.B) {
	single := validate.SingleNodeCases()
	subset := make([]validate.Case, 0, 180)
	for i := 0; i < len(single); i += 8 {
		subset = append(subset, single[i])
	}
	var plain, calibrated validate.Result
	var err error
	for i := 0; i < b.N; i++ {
		if plain, err = validate.Run(hw.PaperCluster(1), subset, testbed.DefaultConfig(), 42); err != nil {
			b.Fatal(err)
		}
		if calibrated, err = validate.RunCalibrated(hw.PaperCluster(1), subset, testbed.DefaultConfig(), 42); err != nil {
			b.Fatal(err)
		}
	}
	once("abl-calibrated", func() {
		fmt.Printf("\nAblation — calibrated communication model (single-node campaign, %d points):\n", len(subset))
		fmt.Printf("  isolated profile (paper's vTrain): MAPE %.2f%%, R² %.4f\n", plain.MAPE, plain.R2)
		fmt.Printf("  contention-calibrated (future work): MAPE %.2f%%, R² %.4f\n", calibrated.MAPE, calibrated.R2)
	})
	if calibrated.MAPE >= plain.MAPE {
		b.Fatalf("calibration did not reduce MAPE: %.2f%% vs %.2f%%", calibrated.MAPE, plain.MAPE)
	}
	b.ReportMetric(plain.MAPE-calibrated.MAPE, "MAPE_reduction_points")
}

// BenchmarkAblationInterleaving quantifies Megatron-LM's virtual pipeline
// stages: bubble reduction per extra chunk at fixed (p, nmb).
func BenchmarkAblationInterleaving(b *testing.B) {
	sim := newSim(b, 64)
	m := model.Megatron39_1B() // 48 layers: divisible by p*v for v in {1,2,4}
	vs := []int{1, 2, 4}
	iters := make([]float64, len(vs))
	bubbles := make([]float64, len(vs))
	for i := 0; i < b.N; i++ {
		for j, v := range vs {
			plan := parallel.Plan{
				Tensor: 8, Data: 4, Pipeline: 4, MicroBatch: 1, GlobalBatch: 32,
				GradientBuckets: 2, Recompute: true,
			}
			if v > 1 {
				plan.VirtualStages = v
			}
			rep, err := sim.Simulate(m, plan)
			if err != nil {
				b.Fatal(err)
			}
			iters[j] = rep.IterTime
			bubbles[j] = rep.BubbleFraction
		}
	}
	once("abl-interleave", func() {
		fmt.Printf("\nAblation — interleaved pipeline schedule (39.1B, (8,4,4), 8 micro-batches):\n")
		for j, v := range vs {
			fmt.Printf("  v=%d: %.3fs, bubble %.1f%%\n", v, iters[j], 100*bubbles[j])
		}
	})
	if iters[1] >= iters[0] {
		b.Fatalf("v=2 (%.4g) not faster than v=1 (%.4g)", iters[1], iters[0])
	}
	b.ReportMetric(100*(1-iters[1]/iters[0]), "v2_speedup_pct")
	b.ReportMetric(100*(1-iters[2]/iters[0]), "v4_speedup_pct")
}

// BenchmarkAblationFidelity compares task-level and operator-level
// lowering: identical predictions, very different simulation cost.
func BenchmarkAblationFidelity(b *testing.B) {
	c := hw.PaperCluster(32)
	m := model.Megatron18_4B()
	plan := parallel.Plan{Tensor: 8, Data: 4, Pipeline: 8, MicroBatch: 1, GlobalBatch: 64, GradientBuckets: 2}
	var tTask, tOp time.Duration
	var iterTask, iterOp float64
	for i := 0; i < b.N; i++ {
		simT, err := core.New(c) // TaskLevel
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		repT, err := simT.Simulate(m, plan)
		if err != nil {
			b.Fatal(err)
		}
		tTask = time.Since(start)

		simO, err := core.New(c, core.WithFidelity(taskgraph.OperatorLevel))
		if err != nil {
			b.Fatal(err)
		}
		start = time.Now()
		repO, err := simO.Simulate(m, plan)
		if err != nil {
			b.Fatal(err)
		}
		tOp = time.Since(start)
		iterTask, iterOp = repT.IterTime, repO.IterTime
	}
	once("abl-fidelity", func() {
		fmt.Printf("\nAblation — lowering fidelity (18.4B, (8,4,8)): task-level %.4fs pred in %v, operator-level %.4fs pred in %v\n",
			iterTask, tTask.Round(time.Microsecond), iterOp, tOp.Round(time.Microsecond))
	})
	if d := iterTask - iterOp; d > 1e-9 || d < -1e-9 {
		b.Fatalf("fidelities disagree: %.9g vs %.9g", iterTask, iterOp)
	}
	b.ReportMetric(float64(tTask)/float64(tOp), "task_vs_operator_sim_cost")
}
