// Command mtnlg_plan reproduces case study 1 (Section V-A / Table I) as an
// example of the library's plan-search workflow: it evaluates the three
// heuristic MT-NLG training plans, runs a design-space exploration around
// the same GPU budgets, and prints the cost-effective alternatives vTrain
// uncovers.
package main

import (
	"fmt"
	"log"

	"vtrain/internal/core"
	"vtrain/internal/cost"
	"vtrain/internal/dse"
	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/parallel"
	"vtrain/internal/taskgraph"
)

const (
	globalBatch = 1920
	totalTokens = 270e9
)

func main() {
	cluster := hw.PaperCluster(420) // up to 3,360 GPUs
	sim, err := core.New(cluster, core.WithFidelity(taskgraph.OperatorLevel))
	if err != nil {
		log.Fatal(err)
	}
	m := model.MTNLG530B()

	// The three heuristic plans the MT-NLG authors used (Table I left).
	baselines := []parallel.Plan{
		{Tensor: 8, Data: 8, Pipeline: 35, MicroBatch: 1, GlobalBatch: globalBatch, GradientBuckets: 2, Recompute: true},
		{Tensor: 8, Data: 10, Pipeline: 35, MicroBatch: 1, GlobalBatch: globalBatch, GradientBuckets: 2, Recompute: true},
		{Tensor: 8, Data: 12, Pipeline: 35, MicroBatch: 1, GlobalBatch: globalBatch, GradientBuckets: 2, Recompute: true},
	}
	// The cost-effective alternatives vTrain's sweep uncovers (right).
	findings := []parallel.Plan{
		{Tensor: 8, Data: 12, Pipeline: 21, MicroBatch: 1, GlobalBatch: globalBatch, GradientBuckets: 2, Recompute: true},
		{Tensor: 8, Data: 16, Pipeline: 21, MicroBatch: 1, GlobalBatch: globalBatch, GradientBuckets: 2, Recompute: true},
		{Tensor: 8, Data: 20, Pipeline: 21, MicroBatch: 1, GlobalBatch: globalBatch, GradientBuckets: 2, Recompute: true},
	}

	fmt.Println("Table I — MT-NLG heuristic plans vs. vTrain-uncovered plans")
	fmt.Printf("%-14s %-16s %8s %8s %7s %7s %9s %10s\n",
		"", "(t,d,p)", "GPUs", "iter(s)", "days", "util%", "$/hour", "$total(M)")
	for i := range baselines {
		b := row(sim, m, baselines[i])
		f := row(sim, m, findings[i])
		fmt.Printf("%-14s %-16s %8d %8.2f %7.2f %7.2f %9.0f %10.2f\n",
			"MT-NLG", tdp(baselines[i]), baselines[i].GPUs(), b.IterTime, b.Days, 100*b.Utilization, b.DollarsPerHour, b.TotalDollars/1e6)
		fmt.Printf("%-14s %-16s %8d %8.2f %7.2f %7.2f %9.0f %10.2f\n",
			"  our finding", tdp(findings[i]), findings[i].GPUs(), f.IterTime, f.Days, 100*f.Utilization, f.DollarsPerHour, f.TotalDollars/1e6)
		fmt.Printf("%-14s savings: $%.2fM (%.1f%%), %+.1f utilization points, %+.1f days\n\n", "",
			(b.TotalDollars-f.TotalDollars)/1e6, 100*(1-f.TotalDollars/b.TotalDollars),
			100*(f.Utilization-b.Utilization), f.Days-b.Days)
	}

	// A fresh search over a reduced space demonstrates how the findings
	// were obtained (the full Fig. 10 sweep lives in cmd/vtrain-dse).
	space := dse.Space{
		TensorWidths:    []int{8},
		DataWidths:      []int{8, 10, 12, 16, 20},
		PipelineDepths:  []int{15, 21, 35},
		MicroBatches:    []int{1},
		GlobalBatch:     globalBatch,
		GradientBuckets: 2,
		MaxGPUs:         3360,
	}
	points, err := dse.Explore(sim, m, space)
	if err != nil {
		log.Fatal(err)
	}
	best, tr, ok := dse.Cheapest(sim, points, totalTokens)
	if !ok {
		log.Fatal("no feasible plan found")
	}
	fmt.Printf("cheapest plan in the sweep: %s — $%.2fM over %.1f days at %.1f%% utilization\n",
		best.Plan, tr.TotalDollars/1e6, tr.Days, 100*tr.Utilization)
}

func tdp(p parallel.Plan) string {
	return fmt.Sprintf("(%d, %d, %d)", p.Tensor, p.Data, p.Pipeline)
}

func row(sim *core.Simulator, m model.Config, p parallel.Plan) cost.Training {
	rep, err := sim.Simulate(m, p)
	if err != nil {
		log.Fatal(err)
	}
	return cost.Train(m, p.GlobalBatch, rep.IterTime, p.GPUs(), totalTokens, sim.Cluster())
}
