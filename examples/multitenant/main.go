// Command multitenant reproduces a slice of case study 2 (Section V-B) as
// an example of the cluster-scheduling API: it profiles the Table III model
// zoo offline for both systems (ElasticFlow's data-parallel-only scaling
// vs. vTrain's optimal plans), replays one synthetic 64-job trace on a
// 1,024-GPU cluster, and compares deadline satisfaction.
package main

import (
	"fmt"
	"log"

	"vtrain/internal/cluster"
	"vtrain/internal/core"
	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/taskgraph"
	"vtrain/internal/trace"
)

func main() {
	const gpus = 1024
	sim, err := core.New(hw.PaperCluster(gpus/8), core.WithFidelity(taskgraph.OperatorLevel))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("building offline throughput profiles (Table III models)...")
	base, err := cluster.BuildProfiles(sim, cluster.Baseline, gpus)
	if err != nil {
		log.Fatal(err)
	}
	vt, err := cluster.BuildProfiles(sim, cluster.VTrainEnabled, gpus)
	if err != nil {
		log.Fatal(err)
	}

	// Show why vTrain helps: iteration time by allocation size.
	for _, row := range model.TableIII() {
		pb, _ := base.For(row.Config)
		pv, _ := vt.For(row.Config)
		fmt.Printf("\n%s (batch %d): iteration seconds by GPU allocation\n", row.Config.Name, row.Batch)
		fmt.Printf("%8s %14s %14s %12s\n", "GPUs", "ElasticFlow", "vTrain", "speedup")
		for _, g := range cluster.Allocations(gpus) {
			tb, okB := pb.IterTime[g]
			tv, okV := pv.IterTime[g]
			switch {
			case okB && okV:
				fmt.Printf("%8d %14.2f %14.2f %11.2fx\n", g, tb, tv, tb/tv)
			case okV:
				fmt.Printf("%8d %14s %14.2f %12s\n", g, "infeasible", tv, "-")
			}
		}
	}

	jobs, err := trace.Generate(1, trace.DefaultOptions(64))
	if err != nil {
		log.Fatal(err)
	}
	ob, err := cluster.NewScheduler(gpus, base).Run(jobs)
	if err != nil {
		log.Fatal(err)
	}
	ov, err := cluster.NewScheduler(gpus, vt).Run(jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n64-job trace on %d GPUs:\n", gpus)
	fmt.Printf("  deadline satisfactory ratio: ElasticFlow %.3f, vTrain %.3f (%.2fx)\n",
		ob.DeadlineSatisfactoryRatio, ov.DeadlineSatisfactoryRatio,
		ov.DeadlineSatisfactoryRatio/ob.DeadlineSatisfactoryRatio)
	fmt.Printf("  cluster GPU-hours consumed:  ElasticFlow %.0f, vTrain %.0f\n",
		ob.GPUSeconds/3600, ov.GPUSeconds/3600)
}
