// Command quickstart simulates one training iteration of GPT-3 175B on a
// 128-node (1,024 GPU) A100 cluster — the scenario of the paper's Fig. 1 —
// and prints the predicted iteration time, utilization, and end-to-end
// training projection for 300B tokens.
//
// Under the hood, core.Simulator runs the full pipeline per simulation:
// opgraph.Build assembles the immutable operator graph (arena nodes, lazy
// labels), taskgraph.Lower expands it through the profiler's
// operator-to-task table into an immutable task graph via
// taskgraph.Builder, and the Algorithm 1 replay engine walks that graph
// with pooled scratch state. Results are memoized per (model, plan,
// fidelity), so re-simulating this configuration is a cache hit. See
// docs/ARCHITECTURE.md for the layer contracts.
package main

import (
	"fmt"
	"log"
	"sort"

	"vtrain/internal/core"
	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/parallel"
)

func main() {
	cluster := hw.PaperCluster(128) // 128 nodes x 8 A100 = 1,024 GPUs
	sim, err := core.New(cluster)
	if err != nil {
		log.Fatal(err)
	}

	m := model.GPT3175B()
	plan := parallel.Plan{
		Tensor:          8,
		Data:            16,
		Pipeline:        8,
		MicroBatch:      2,
		GlobalBatch:     1536,
		Schedule:        parallel.OneFOneB,
		GradientBuckets: 2,
		// GPT-3-scale activations exceed 80 GB without checkpointing —
		// the same trade real Megatron runs make.
		Recompute: true,
	}

	rep, train, err := sim.Train(m, plan, 300e9)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model:            %s\n", m)
	fmt.Printf("plan:             %s  (%d GPUs)\n", plan, plan.GPUs())
	fmt.Printf("iteration time:   %.3f s  (%d tasks replayed)\n", rep.IterTime, rep.Tasks)
	fmt.Printf("GPU utilization:  %.1f %%\n", 100*rep.Utilization)
	fmt.Printf("compute/comm:     %.3f s / %.3f s per stage (bubble %.1f %%)\n",
		rep.ComputeSeconds, rep.CommSeconds, 100*rep.BubbleFraction)
	fmt.Printf("peak memory:      %.1f GiB per GPU (fits: %v)\n",
		float64(rep.PeakMemoryBytes)/(1<<30), rep.FitsMemory)
	fmt.Printf("300B tokens:      %d iterations, %.1f days, $%.2fM\n",
		train.Iterations, train.Days, train.TotalDollars/1e6)

	fmt.Println("\nper-class busy time across all stages (one data replica):")
	classes := make([]string, 0, len(rep.Breakdown))
	for c := range rep.Breakdown {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return rep.Breakdown[classes[i]] > rep.Breakdown[classes[j]] })
	for _, c := range classes {
		fmt.Printf("  %-14s %8.3f s\n", c, rep.Breakdown[c])
	}
}
