// Command clusterdesign is a self-contained walkthrough of the joint
// cluster-design exploration: given a model and a training budget in
// tokens, it asks the Table II question — which GPU generation, cluster
// size, and interconnect trains the model most cost-effectively, and which
// is the cheapest that still meets a deadline?
//
// The sweep compares every catalog offering (V100, A100-40/80, H100, each
// with its era's InfiniBand tier and rental price) at several cluster
// sizes, exploring the full 3D-parallel plan space on each. All hardware
// candidates share one structural-graph cache — task-graph structure is
// hardware-invariant — so the hardware axis adds design points but almost
// no lowerings; the run prints the cache counters so the sharing is
// visible.
package main

import (
	"fmt"
	"log"

	"vtrain/internal/clusterdse"
	"vtrain/internal/core"
	"vtrain/internal/model"
	"vtrain/internal/taskgraph"
)

func main() {
	log.SetFlags(0)

	m := model.Megatron3_6B()
	const (
		globalBatch  = 512
		totalTokens  = 300e9
		deadlineDays = 40.0
	)
	space := clusterdse.DefaultSpace(m, globalBatch, totalTokens, []int{2, 4, 8})

	sim, err := clusterdse.NewSimulator(space, core.WithFidelity(taskgraph.OperatorLevel))
	if err != nil {
		log.Fatal(err)
	}
	points, err := clusterdse.Explore(sim, m, space)
	if err != nil {
		log.Fatal(err)
	}

	st := sim.CacheStats()
	fmt.Printf("cluster design for %s, %.0fB tokens — %d design points, %d graphs lowered (%.1f%% structural-cache hit rate)\n\n",
		m, totalTokens/1e9, len(points), st.StructMisses,
		100*float64(st.StructHits)/float64(st.StructHits+st.StructMisses))

	// The cheapest configuration per hardware candidate, cheapest first —
	// the Table II-style ranking across GPU generations and sizes.
	seen := map[string]bool{}
	fmt.Println("cheapest plan per hardware candidate:")
	for _, p := range points { // points arrive cheapest-first
		key := fmt.Sprintf("%s/%d", p.Offering.Name, p.Nodes)
		if seen[key] {
			continue
		}
		seen[key] = true
		fmt.Printf("  %-14s %2d nodes %4d GPUs  %-22s  %6.2f days  $%6.2fM  util %5.2f%%\n",
			p.Offering.Name, p.Nodes, p.GPUs(), p.Plan.String(),
			p.Training.Days, p.Training.TotalDollars/1e6, 100*p.Report.Utilization)
	}

	front := clusterdse.ParetoFrontier(points) // already in Better order
	fmt.Println("\nPareto frontier (training cost vs. training days):")
	for _, p := range front {
		fmt.Printf("  $%6.2fM  %6.2f days  %-14s %2d nodes  %s\n",
			p.Training.TotalDollars/1e6, p.Training.Days, p.Offering.Name, p.Nodes, p.Plan)
	}

	if best, ok := clusterdse.CheapestWithinDeadline(points, deadlineDays); ok {
		fmt.Printf("\ncheapest cluster meeting a %.0f-day deadline: %s — $%.2fM, %.2f days\n",
			deadlineDays, best.Candidate, best.Training.TotalDollars/1e6, best.Training.Days)
	} else {
		fmt.Printf("\nno candidate trains %s within %.0f days\n", m.Name, deadlineDays)
	}
}
