// Command clusterdesign is a self-contained walkthrough of the joint
// cluster-design exploration: given a model and a training budget in
// tokens, it asks the Table II question — which GPU generation, cluster
// size, and interconnect trains the model most cost-effectively, and which
// is the cheapest that still meets a deadline?
//
// The sweep compares every catalog offering (V100, A100-40/80, H100, each
// with its era's InfiniBand tier and rental price) at several cluster
// sizes, exploring the full 3D-parallel plan space on each. All hardware
// candidates share one structural-graph cache — task-graph structure is
// hardware-invariant — so the hardware axis adds design points but almost
// no lowerings; the run prints the cache counters so the sharing is
// visible.
//
// By default the sweep prices failures and checkpoint-restart (see
// internal/resilience): every point carries both the ideal and the
// failure-adjusted economics, and the walkthrough prints the Pareto
// frontier both ways to show how the ranking shifts once reliability is
// priced — large fast clusters lose goodput to failures, slow storage
// stretches checkpoint stalls.
package main

import (
	"fmt"
	"log"
	"sort"

	"vtrain/internal/clusterdse"
	"vtrain/internal/core"
	"vtrain/internal/cost"
	"vtrain/internal/model"
	"vtrain/internal/taskgraph"
)

func main() {
	log.SetFlags(0)

	m := model.Megatron3_6B()
	const (
		globalBatch  = 512
		totalTokens  = 300e9
		deadlineDays = 40.0
	)
	// DefaultSpace enables resilience modeling; each point then carries
	// the ideal economics in Training and the failure-adjusted ones in
	// Resilience, so one sweep answers both rankings.
	space := clusterdse.DefaultSpace(m, globalBatch, totalTokens, []int{2, 4, 8})

	sim, err := clusterdse.NewSimulator(space, core.WithFidelity(taskgraph.OperatorLevel))
	if err != nil {
		log.Fatal(err)
	}
	points, err := clusterdse.Explore(sim, m, space)
	if err != nil {
		log.Fatal(err)
	}

	st := sim.CacheStats()
	fmt.Printf("cluster design for %s, %.0fB tokens — %d design points, %d graphs lowered (%.1f%% structural-cache hit rate)\n\n",
		m, totalTokens/1e9, len(points), st.StructMisses,
		100*float64(st.StructHits)/float64(st.StructHits+st.StructMisses))

	// The cheapest configuration per hardware candidate, cheapest first —
	// the Table II-style ranking across GPU generations and sizes, now by
	// failure-adjusted cost with the goodput that caused the adjustment.
	seen := map[string]bool{}
	fmt.Println("cheapest plan per hardware candidate (failure-adjusted):")
	for _, p := range points { // points arrive cheapest-first
		key := fmt.Sprintf("%s/%d", p.Offering.Name, p.Nodes)
		if seen[key] {
			continue
		}
		seen[key] = true
		fmt.Printf("  %-14s %2d nodes %4d GPUs  %-22s  %6.2f days  $%6.2fM  good %5.2f%%  util %5.2f%%\n",
			p.Offering.Name, p.Nodes, p.GPUs(), p.Plan.String(),
			p.EffectiveDays(), p.EffectiveDollars()/1e6,
			100*p.Resilience.GoodputFraction, 100*p.Report.Utilization)
	}

	// Resilience is a pure post-processing layer: stripping the
	// failure-adjusted view from the very same points reproduces the
	// ideal failure-free frontier, no re-simulation needed.
	ideal := append([]clusterdse.Point(nil), points...)
	for i := range ideal {
		ideal[i].Resilience = cost.Resilience{}
	}
	sort.Slice(ideal, func(i, j int) bool { return ideal[i].Better(ideal[j]) })

	fmt.Println("\nPareto frontier, ideal (failures ignored):")
	for _, p := range clusterdse.ParetoFrontier(ideal) {
		fmt.Printf("  $%6.2fM  %6.2f days  %-14s %2d nodes  %s\n",
			p.Training.TotalDollars/1e6, p.Training.Days, p.Offering.Name, p.Nodes, p.Plan)
	}

	fmt.Println("\nPareto frontier, failure-adjusted (what an operator pays):")
	for _, p := range clusterdse.ParetoFrontier(points) {
		fmt.Printf("  $%6.2fM  %6.2f days  %-14s %2d nodes  good %5.2f%%  %s\n",
			p.EffectiveDollars()/1e6, p.EffectiveDays(), p.Offering.Name, p.Nodes,
			100*p.Resilience.GoodputFraction, p.Plan)
	}

	if best, ok := clusterdse.CheapestWithinDeadline(points, deadlineDays); ok {
		fmt.Printf("\ncheapest cluster meeting a %.0f-day deadline (failures included): %s — $%.2fM, %.2f days\n",
			deadlineDays, best.Candidate, best.EffectiveDollars()/1e6, best.EffectiveDays())
	} else {
		fmt.Printf("\nno candidate trains %s within %.0f days\n", m.Name, deadlineDays)
	}
}
