// Command chinchilla reproduces case study 3 (Section V-C) as an example of
// the compute-optimal sizing API, at a reduced scale that runs in seconds:
// given a 512-GPU budget for 30 days, how large an LLM can actually be
// trained once effective (not peak) GPU throughput is accounted for?
package main

import (
	"fmt"
	"log"

	"vtrain/internal/chinchilla"
	"vtrain/internal/core"
	"vtrain/internal/hw"
	"vtrain/internal/model"
	"vtrain/internal/taskgraph"
)

func main() {
	const (
		gpus  = 512
		days  = 30.0
		batch = 512
	)
	sim, err := core.New(hw.PaperCluster(gpus/8), core.WithFidelity(taskgraph.OperatorLevel))
	if err != nil {
		log.Fatal(err)
	}

	c := chinchilla.Budget(gpus, days, sim.Cluster().Node.GPU.PeakTensorFLOPS)
	naiveN, naiveT := chinchilla.NaivePoint(c)
	fmt.Printf("budget: %d A100s for %.0f days = %.3g FLOPs at face value\n", gpus, days, c)
	fmt.Printf("naive Chinchilla point: %.1fB params, %.0fB tokens\n\n", naiveN/1e9, naiveT/1e9)

	// Sweep candidate architectures below the naive point and find the
	// largest one that realistically finishes in the budget.
	shapes := []struct{ h, l int }{
		{7168, 48}, {6144, 48}, {6144, 40}, {5120, 40}, {4096, 36}, {3072, 30},
	}
	fmt.Printf("%7s %4s %10s %-20s %7s %8s %8s\n", "h", "L", "params(B)", "best plan", "util%", "days", "fits?")
	var best *chinchilla.Point
	for _, s := range shapes {
		m := model.Custom(s.h, s.l, 2048, s.h/128)
		m.Name = fmt.Sprintf("candidate-h%d-L%d", s.h, s.l)
		pt, err := chinchilla.Evaluate(sim, m, gpus, batch)
		if err != nil {
			log.Fatal(err)
		}
		fits := pt.Days <= days
		fmt.Printf("%7d %4d %10.2f %-20s %7.1f %8.1f %8v\n",
			s.h, s.l, pt.Params/1e9,
			fmt.Sprintf("(%d,%d,%d,%d)", pt.Plan.Tensor, pt.Plan.Data, pt.Plan.Pipeline, pt.Plan.MicroBatch),
			100*pt.Utilization, pt.Days, fits)
		if fits && best == nil {
			p := pt
			best = &p
		}
	}
	if best == nil {
		log.Fatal("no candidate fits the budget — widen the sweep")
	}
	fmt.Printf("\nrealistic compute-optimal model: %.2fB params (naive estimate was %.1fB, %.0f%% larger than achievable)\n",
		best.Params/1e9, naiveN/1e9, 100*(naiveN/best.Params-1))
	fmt.Printf("it trains %.0fB tokens in %.1f days at %.1f%% utilization with plan %s\n",
		best.Tokens/1e9, best.Days, 100*best.Utilization, best.Plan)
}
